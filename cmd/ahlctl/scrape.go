package main

// ahlctl scrape: cluster-wide observability aggregation. Pulls every
// replica's /snapshot (and optionally /trace) over HTTP, merges the
// per-node registries — counters and gauges sum, histograms merge
// bucket-by-bucket — and prints a latency-breakdown table for the live
// stack's stage histograms plus a trace-derived span breakdown.

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// latencyTable lists the duration histograms the breakdown table renders,
// in pipeline order. Histograms a deployment never touched (e.g. 2PC
// metrics without a reference committee) are skipped.
var latencyTable = []string{
	"pbft_commit_latency",
	"pbft_exec_latency",
	"pbft_wal_append_latency",
	"storage_wal_append_latency",
	"storage_wal_fsync_latency",
	"storage_snapshot_save_latency",
	"txn_2pc_prepare_wait",
	"txn_2pc_lock_hold",
	"txn_2pc_decide_wait",
	"txn_2pc_commit_latency",
}

func runScrape(args []string) {
	fs := flag.NewFlagSet("scrape", flag.ExitOnError)
	var (
		topoPath = fs.String("topo", "", "cluster topology JSON (required)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-node HTTP timeout")
		traces   = fs.Bool("traces", true, "also pull /trace and print the span breakdown")
	)
	fs.Parse(args)
	if *topoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg, err := core.LoadClusterConfig(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Timeout: *timeout}

	merged := obs.Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]obs.HistogramSnapshot),
	}
	var events []obs.Event
	scraped, skipped := 0, 0
	for _, n := range cfg.ReplicaNodes() {
		if n.MetricsAddr == "" {
			skipped++
			continue
		}
		snap, err := fetchSnapshot(client, n.MetricsAddr)
		if err != nil {
			log.Printf("ahlctl scrape: node %d (%s): %v", n.ID, n.MetricsAddr, err)
			skipped++
			continue
		}
		mergeSnapshot(&merged, snap)
		if *traces {
			evs, err := fetchTrace(client, n.MetricsAddr)
			if err != nil {
				log.Printf("ahlctl scrape: node %d (%s): trace: %v", n.ID, n.MetricsAddr, err)
			} else {
				events = append(events, evs...)
			}
		}
		scraped++
	}
	if scraped == 0 {
		log.Fatal("ahlctl scrape: no node with a metrics_addr answered")
	}
	fmt.Printf("ahlctl scrape: %d nodes aggregated, %d skipped\n\n", scraped, skipped)

	printLatencyTable(merged)
	printCountersOfInterest(merged, cfg)
	if *traces && len(events) > 0 {
		printSpanBreakdown(events)
	}
}

func fetchSnapshot(client *http.Client, addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get("http://" + addr + "/snapshot")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %s", resp.Status)
	}
	return obs.ReadSnapshot(resp.Body)
}

func fetchTrace(client *http.Client, addr string) ([]obs.Event, error) {
	resp, err := client.Get("http://" + addr + "/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return obs.ParseTraceJSON(resp.Body)
}

func mergeSnapshot(dst *obs.Snapshot, src obs.Snapshot) {
	for name, v := range src.Counters {
		dst.Counters[name] += v
	}
	for name, v := range src.Gauges {
		dst.Gauges[name] += v
	}
	for name, h := range src.Histograms {
		m := dst.Histograms[name]
		m.Merge(h)
		dst.Histograms[name] = m
	}
}

func printLatencyTable(s obs.Snapshot) {
	fmt.Printf("latency breakdown (cluster-wide)\n")
	fmt.Printf("  %-32s %10s %10s %10s %10s\n", "histogram", "count", "p50", "p95", "p99")
	for _, name := range latencyTable {
		h, ok := s.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Printf("  %-32s %10d %10s %10s %10s\n", name, h.Count,
			fmtUs(h.Quantile(0.50)), fmtUs(h.Quantile(0.95)), fmtUs(h.Quantile(0.99)))
	}
	fmt.Println()
}

// printCountersOfInterest surfaces the cluster's health counters: batch
// cuts, executed totals, 2PC outcomes, retries, transport overflows.
func printCountersOfInterest(s obs.Snapshot, cfg *core.ClusterConfig) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("counters (cluster-wide, nonzero)\n")
	for _, name := range names {
		if v := s.Counters[name]; v != 0 && !strings.HasPrefix(name, "transport_peer_") {
			fmt.Printf("  %-40s %d\n", name, v)
		}
	}
	if v, ok := s.Gauges["pbft_pipeline_occupancy_peak"]; ok {
		fmt.Printf("  %-40s %d (summed peaks)\n", "pbft_pipeline_occupancy_peak", v)
	}
	// Per-node occupancy/checkpoint state is meaningful individually, not
	// summed; point at the node endpoints for drill-down.
	var addrs []string
	for _, n := range cfg.ReplicaNodes() {
		if n.MetricsAddr != "" {
			addrs = append(addrs, fmt.Sprintf("%d=%s", simnet.NodeID(n.ID), n.MetricsAddr))
		}
	}
	if len(addrs) > 0 {
		fmt.Printf("  per-node endpoints: %s\n", strings.Join(addrs, " "))
	}
	fmt.Println()
}

func printSpanBreakdown(events []obs.Event) {
	spans := obs.SpanDurations(events)
	fmt.Printf("trace span breakdown (%d events sampled)\n", len(events))
	fmt.Printf("  %-16s %10s %10s %10s %10s\n", "span", "count", "p50", "p95", "max")
	for _, name := range obs.SpanNames() {
		ds := spans[name]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pct := func(p float64) int64 {
			i := int(p*float64(len(ds))) - 1
			if i < 0 {
				i = 0
			}
			return ds[i]
		}
		fmt.Printf("  %-16s %10d %10s %10s %10s\n", name, len(ds),
			fmtNs(pct(0.50)), fmtNs(pct(0.95)), fmtNs(pct(1.0)))
	}
}

// fmtUs renders a histogram quantile (µs) compactly.
func fmtUs(us float64) string { return fmtNs(int64(us * 1e3)) }

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
