// Command ahlctl is the live-cluster client toolbox: it attaches to a
// running ahlnode deployment as a client gateway and drives or inspects
// it. Subcommands:
//
//	ahlctl load   -topo topology.json -txs 500 -cross 0.3 -outstanding 16
//	ahlctl query  -topo topology.json -expect 32000000
//	ahlctl status -topo topology.json
//	ahlctl scrape -topo topology.json
//
// load seeds SmallBank accounts, submits a closed-loop mix of
// single-shard and cross-shard transactions, and reports committed
// throughput and latency percentiles. Cross-shard transactions are §6.3
// sendPayment transfers driven through the reference committee's 2PC
// (Figure 5); single-shard transactions are smallbank queries
// acknowledged by f+1 replica replies.
//
// query runs the height-consistent balance-conservation sweep through
// the scatter-gather query layer: committed checking + savings totals at
// one pinned cut of per-shard versions, with in-flight 2PC residues
// resolved against that cut. -expect asserts the total (exit 4 on
// mismatch), which turns a live cluster under load into its own
// consistency check.
//
// status pins every shard at its latest sealed version and reports the
// per-shard heights and account count — a cheap liveness/height probe.
//
// scrape aggregates a running cluster's observability endpoints (each
// node's metrics_addr) into one latency-breakdown table.
//
// A bare flag invocation (ahlctl -topo ...) still runs load for one
// release; migrate scripts to the subcommand form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/txn"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: ahlctl <command> [flags]

commands:
  load    seed accounts and drive a closed-loop transaction mix
  query   height-consistent balance-conservation sweep (-expect asserts the total)
  status  per-shard pinned heights and account count
  scrape  aggregate cluster metrics endpoints into one table

Run 'ahlctl <command> -h' for per-command flags.
`)
}

func main() {
	args := os.Args[1:]
	cmd := "load"
	if len(args) > 0 {
		switch args[0] {
		case "load", "query", "status", "scrape":
			cmd, args = args[0], args[1:]
		case "-h", "-help", "--help", "help":
			usage()
			return
		default:
			if !strings.HasPrefix(args[0], "-") {
				fmt.Fprintf(os.Stderr, "ahlctl: unknown command %q\n\n", args[0])
				usage()
				os.Exit(2)
			}
			// Legacy flat invocation predating subcommands: run load.
			log.Printf("ahlctl: note: bare flags are deprecated; use 'ahlctl load %s'", strings.Join(args, " "))
		}
	}
	switch cmd {
	case "load":
		runLoad(args)
	case "query":
		runQuery(args)
	case "status":
		runStatus(args)
	case "scrape":
		runScrape(args)
	}
}

// connectClient attaches to the cluster described by topoPath as client
// gateway id (-1 selects the topology's first client entry). The caller
// owns both returned handles.
func connectClient(topoPath string, id int) (*core.ClusterConfig, *core.LiveClient, *transport.TCP) {
	cfg, err := core.LoadClusterConfig(topoPath)
	if err != nil {
		log.Fatal(err)
	}
	if id < 0 {
		if len(cfg.Clients) == 0 {
			log.Fatal("ahlctl: topology has no client entries")
		}
		id = cfg.Clients[0].ID
	}
	clientID := simnet.NodeID(id)
	tr, err := transport.NewTCP(transport.TCPConfig{
		Listen: cfg.PeerAddrs()[clientID],
		Peers:  cfg.PeerAddrs(),
	})
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.StartLiveClient(cfg, clientID, tr)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	return cfg, client, tr
}

// runQuery is the ahlctl query subcommand: one conservation sweep through
// the streaming query layer, optionally asserted against -expect.
func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		topoPath = fs.String("topo", "", "cluster topology JSON (required)")
		id       = fs.Int("id", -1, "client node id (default: first client in the topology)")
		expect   = fs.Int64("expect", -1, "assert the conserved total equals this value (exit 4 on mismatch)")
		attempts = fs.Int("attempts", 5, "re-pin retries when a checkpoint overtakes the cut")
		timeout  = fs.Duration("timeout", time.Minute, "overall query deadline")
	)
	fs.Parse(args)
	if *topoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	_, client, tr := connectClient(*topoPath, *id)
	defer tr.Close()
	defer client.Stop()

	res, err := client.Conservation(*attempts, *timeout)
	if err != nil {
		log.Fatalf("ahlctl: conservation query: %v", err)
	}
	fmt.Printf("ahlctl conservation sweep\n")
	fmt.Printf("  pins          %v\n", res.Pins)
	fmt.Printf("  accounts      %d\n", res.Accounts)
	fmt.Printf("  checking      %d\n", res.Checking)
	fmt.Printf("  savings       %d\n", res.Savings)
	fmt.Printf("  residues      %d staged deltas, %d applied (committed at the cut)\n",
		len(res.Residues), res.Applied)
	fmt.Printf("  total         %d\n", res.Total)
	if *expect >= 0 && res.Total != *expect {
		fmt.Printf("  MISMATCH      total %d != expected %d\n", res.Total, *expect)
		os.Exit(4)
	}
	if *expect >= 0 {
		fmt.Printf("  ok            total matches expected %d\n", *expect)
	}
}

// runStatus is the ahlctl status subcommand: pin each shard at its latest
// sealed version and count the seeded accounts, as a liveness probe.
func runStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	var (
		topoPath = fs.String("topo", "", "cluster topology JSON (required)")
		id       = fs.Int("id", -1, "client node id (default: first client in the topology)")
		timeout  = fs.Duration("timeout", time.Minute, "overall probe deadline")
	)
	fs.Parse(args)
	if *topoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	_, client, tr := connectClient(*topoPath, *id)
	defer tr.Close()
	defer client.Stop()

	// Each attempt is a fresh one-shot probe: the query protocol sends
	// every page exactly once, so a sub-query lost over TCP (e.g. the
	// first reply after this client id's previous process exited) is
	// recovered by re-issuing, not by waiting.
	type probe struct {
		res *query.Result
		err error
	}
	const attempts = 3
	out := make(chan probe, attempts) // late results from abandoned attempts must not block
	var res *query.Result
	var qerr error
	for i := 0; i < attempts; i++ {
		q := &query.Query{
			Spec: query.Spec{Kind: query.KindScan,
				Start: "c_", End: chain.PrefixEnd("c_"), Proj: query.ProjKV, Agg: query.AggCount},
			OnDone: func(r *query.Result, err error) { out <- probe{r, err} },
		}
		if err := client.Query(q); err != nil {
			log.Fatalf("ahlctl: status: %v", err)
		}
		select {
		case o := <-out:
			res, qerr = o.res, o.err
			if qerr == nil {
				i = attempts // done
			}
		case <-time.After(*timeout / attempts):
			qerr = fmt.Errorf("status probe timed out")
		}
	}
	if qerr != nil {
		log.Fatalf("ahlctl: status: %v", qerr)
	}
	fmt.Printf("ahlctl status\n")
	for s, pin := range res.Pins {
		fmt.Printf("  shard %-2d      sealed version %d\n", s, pin)
	}
	fmt.Printf("  accounts      %d\n", res.Count)
}

// liveReport is one BENCH_live_*.json row: the measured (post-warmup)
// throughput and latency distribution of a run, comparable across PRs by
// the -compare gate.
type liveReport struct {
	Label       string  `json:"label"`
	Timestamp   string  `json:"timestamp"`
	Txs         int     `json:"txs"`
	Warmup      int     `json:"warmup_excluded"`
	Committed   int     `json:"committed"`
	Aborted     int     `json:"aborted"`
	Cross       float64 `json:"cross_fraction"`
	Outstanding int     `json:"outstanding"`
	ElapsedS    float64 `json:"elapsed_s"`
	TPS         float64 `json:"tps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
}

func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var (
		topoPath    = fs.String("topo", "", "cluster topology JSON (required)")
		id          = fs.Int("id", -1, "client node id (default: first client in the topology)")
		accounts    = fs.Int("accounts", 32, "SmallBank accounts to seed")
		balance     = fs.Int64("balance", 1_000_000, "initial checking balance per account")
		txs         = fs.Int("txs", 200, "transactions to run after seeding")
		cross       = fs.Float64("cross", 0.3, "fraction of cross-shard transactions")
		outstanding = fs.Int("outstanding", 16, "closed-loop window (in-flight transactions)")
		seed        = fs.Int64("seed", 1, "workload RNG seed")
		timeout     = fs.Duration("timeout", 5*time.Minute, "overall run deadline")
		warmup      = fs.Int("warmup", -1, "completed transactions excluded from the measurement window (-1 = txs/10)")
		label       = fs.String("label", "live", "label recorded in the -json report")
		jsonOut     = fs.String("json", "", "write the measured report as a BENCH_live JSON row to this file")
		compare     = fs.String("compare", "", "baseline BENCH_live JSON to compare throughput against")
		gate        = fs.Float64("gate", 0, "with -compare: exit 3 if measured tps regresses more than this percent")
	)
	fs.Parse(args)
	if *topoPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	cfg, client, tr := connectClient(*topoPath, *id)
	defer tr.Close()
	defer client.Stop()
	shards := len(cfg.Shards)
	deadline := time.After(*timeout)

	// Group accounts by owning shard so the driver can build guaranteed
	// cross-shard pairs.
	perShard := make([][]string, shards)
	all := make([]string, *accounts)
	for i := range all {
		acc := "acc" + strconv.Itoa(i)
		all[i] = acc
		s := client.ShardOf(acc)
		perShard[s] = append(perShard[s], acc)
	}
	for s, accs := range perShard {
		if len(accs) == 0 {
			log.Fatalf("ahlctl: no accounts hash to shard %d; raise -accounts", s)
		}
	}

	log.Printf("ahlctl: seeding %d accounts across %d shards", *accounts, shards)
	seedDone := make(chan txn.Result, len(all))
	for _, acc := range all {
		tx := chain.Tx{
			ID:        client.NextTxID(),
			Chaincode: "smallbank-sharded",
			Fn:        "create",
			Args:      []string{acc, strconv.FormatInt(*balance, 10), "0"},
		}
		if err := client.SubmitSingle(client.ShardOf(acc), tx, func(r txn.Result) { seedDone <- r }); err != nil {
			log.Fatal(err)
		}
	}
	for range all {
		select {
		case r := <-seedDone:
			if !r.Committed {
				log.Fatalf("ahlctl: seeding %s failed", r.TxID)
			}
		case <-deadline:
			log.Fatal("ahlctl: seeding timed out")
		}
	}

	log.Printf("ahlctl: running %d transactions (%.0f%% cross-shard, window %d)",
		*txs, *cross*100, *outstanding)
	rng := rand.New(rand.NewSource(*seed))
	results := make(chan txn.Result, *outstanding)
	runTag := client.RunTag()
	var txSeq int
	submit := func() {
		txSeq++
		if rng.Float64() < *cross && shards > 1 {
			// Transfer between two different shards.
			s1 := rng.Intn(shards)
			s2 := (s1 + 1 + rng.Intn(shards-1)) % shards
			from := perShard[s1][rng.Intn(len(perShard[s1]))]
			to := perShard[s2][rng.Intn(len(perShard[s2]))]
			d := core.PaymentDTx(shards, fmt.Sprintf("ctl%s-%d", runTag, txSeq), from, to, int64(1+rng.Intn(50)))
			if err := client.SubmitDistributed(d, func(r txn.Result) { results <- r }); err != nil {
				log.Fatal(err)
			}
			return
		}
		acc := all[rng.Intn(len(all))]
		tx := chain.Tx{
			ID:        client.NextTxID(),
			Chaincode: "smallbank-sharded",
			Fn:        "query",
			Args:      []string{acc},
		}
		if err := client.SubmitSingle(client.ShardOf(acc), tx, func(r txn.Result) { results <- r }); err != nil {
			log.Fatal(err)
		}
	}

	// The first completions pay cold costs (TCP dials, first pre-prepares,
	// empty caches) that say nothing about steady state; exclude them from
	// the measurement window so pipeline tail effects are visible in the
	// percentiles instead of being drowned by startup noise.
	wu := *warmup
	if wu < 0 {
		wu = *txs / 10
	}
	if wu >= *txs {
		log.Fatalf("ahlctl: -warmup %d leaves no measured transactions (txs %d)", wu, *txs)
	}

	start := time.Now()
	measStart := start
	inFlight := 0
	for inFlight < *outstanding && txSeq < *txs {
		submit()
		inFlight++
	}
	var committed, aborted int
	var lats []time.Duration
	for done := 0; done < *txs; {
		select {
		case r := <-results:
			done++
			inFlight--
			if r.Committed {
				committed++
			} else {
				aborted++
			}
			if done > wu {
				lats = append(lats, r.Latency)
			}
			if done == wu {
				measStart = time.Now()
			}
			if txSeq < *txs {
				submit()
				inFlight++
			}
		case <-deadline:
			log.Fatalf("ahlctl: timed out with %d/%d done", committed+aborted, *txs)
		}
	}
	elapsed := time.Since(start)
	measured := time.Since(measStart)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	tps := float64(*txs-wu) / measured.Seconds()
	st := tr.Stats()
	fmt.Printf("ahlctl report\n")
	fmt.Printf("  transactions  %d committed, %d aborted in %.2fs (%d warmup excluded from measurement)\n",
		committed, aborted, elapsed.Seconds(), wu)
	fmt.Printf("  throughput    %.1f tx/s (measured window %.2fs)\n", tps, measured.Seconds())
	fmt.Printf("  latency       p50 %s  p95 %s  p99 %s  p99.9 %s  max %s\n",
		pct(0.50).Round(time.Millisecond), pct(0.95).Round(time.Millisecond),
		pct(0.99).Round(time.Millisecond), pct(0.999).Round(time.Millisecond),
		pct(1.0).Round(time.Millisecond))
	fmt.Printf("  transport     sent %d frames / %d B, recv %d frames / %d B, dropped %d\n",
		st.SentFrames, st.SentBytes, st.RecvFrames, st.RecvBytes, st.Dropped)
	if aborted > 0 {
		// Contended accounts legitimately abort under 2PL; nonzero aborts
		// are a workload property, not an error.
		fmt.Printf("  note          aborts are lock conflicts (2PL); rerun with more -accounts to reduce contention\n")
	}

	rep := liveReport{
		Label:       *label,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Txs:         *txs,
		Warmup:      wu,
		Committed:   committed,
		Aborted:     aborted,
		Cross:       *cross,
		Outstanding: *outstanding,
		ElapsedS:    elapsed.Seconds(),
		TPS:         tps,
		P50Ms:       ms(pct(0.50)),
		P95Ms:       ms(pct(0.95)),
		P99Ms:       ms(pct(0.99)),
		P999Ms:      ms(pct(0.999)),
		MaxMs:       ms(pct(1.0)),
	}
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("ahlctl: wrote %s", *jsonOut)
	}
	if *compare != "" {
		os.Exit(compareBaseline(*compare, rep, *gate))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// compareBaseline prints measured-vs-baseline throughput and returns the
// process exit code: 3 when gate > 0 and throughput regressed by more
// than gate percent (the same contract as shardsim -compare -gate).
func compareBaseline(path string, rep liveReport, gate float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Printf("ahlctl: compare: %v", err)
		return 1
	}
	var base liveReport
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Printf("ahlctl: compare: parse %s: %v", path, err)
		return 1
	}
	if base.TPS <= 0 {
		log.Printf("ahlctl: compare: baseline %s has no tps", path)
		return 1
	}
	delta := (rep.TPS - base.TPS) / base.TPS * 100
	fmt.Printf("  baseline      %.1f tx/s (%s); delta %+.1f%%\n", base.TPS, base.Label, delta)
	if gate > 0 && delta < -gate {
		fmt.Printf("  GATE FAILED   throughput regressed %.1f%% (> %.0f%% allowed)\n", -delta, gate)
		return 3
	}
	return 0
}
