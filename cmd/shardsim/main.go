// Command shardsim regenerates the paper's tables and figures on the
// discrete-event simulator.
//
// Usage:
//
//	shardsim -list
//	shardsim -exp fig8 [-scale quick|standard|full]
//	shardsim -exp all  [-scale ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id (e.g. fig8, table2, eq1) or 'all'")
		scale = flag.String("scale", "standard", "quick | standard | full")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun one with: shardsim -exp <id>")
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick()
	case "standard":
		s = bench.Standard()
	case "full":
		s = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		t := e.Run(s)
		t.Fprint(os.Stdout)
		fmt.Printf("  (%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *expID == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Get(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
		os.Exit(2)
	}
	run(e)
}
