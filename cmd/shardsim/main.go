// Command shardsim regenerates the paper's tables and figures on the
// discrete-event simulator.
//
// Usage:
//
//	shardsim -list
//	shardsim -exp fig8 [-scale quick|standard|full] [-workers N] [-json out.json]
//	shardsim -exp all  [-scale ...]
//
// Independent sweep points of an experiment run concurrently on a bounded
// worker pool (default GOMAXPROCS; see -workers); results are bit-identical
// at any width. -json writes a machine-readable BENCH_*.json report of the
// session for performance tracking.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (e.g. fig8, table2, eq1) or 'all'")
		scale    = flag.String("scale", "standard", "quick | standard | full")
		list     = flag.Bool("list", false, "list experiments")
		workers  = flag.Int("workers", 0, "experiment worker pool width (0 = GOMAXPROCS)")
		jsonPath = flag.String("json", "", "write a machine-readable benchmark report to this path")
	)
	flag.Parse()
	bench.SetWorkers(*workers)

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *expID == "" && !*list {
			fmt.Println("\nrun one with: shardsim -exp <id>")
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "quick":
		s = bench.Quick()
	case "standard":
		s = bench.Standard()
	case "full":
		s = bench.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	report := bench.NewReport("shardsim -exp " + *expID)
	report.Scale = *scale

	run := func(e bench.Experiment) {
		start := time.Now()
		t := e.Run(s)
		elapsed := time.Since(start)
		t.Fprint(os.Stdout)
		fmt.Printf("  (%s regenerated in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		report.AddExperiment(e.ID, e.Title, elapsed, len(t.Rows))
	}

	if *expID == "all" {
		for _, e := range bench.All() {
			run(e)
		}
	} else {
		e, ok := bench.Get(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
		run(e)
	}
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
			os.Exit(1)
		}
	}
}
