// Command shardsim regenerates the paper's tables and figures on the
// discrete-event simulator and renders/compares the resulting reports.
//
// Usage:
//
//	shardsim -list
//	shardsim -exp fig8[,fig9,...] [-scale smoke|quick|standard|full] [-workers N] [-json out.json]
//	shardsim -exp all  [-scale ...]
//	shardsim -report out.json[,more.json...] [-o EXPERIMENTS.md]
//	shardsim -compare old.json new.json [-gate 15] [-o diff.md]
//
// Independent sweep points of an experiment run concurrently on a bounded
// worker pool (default GOMAXPROCS; see -workers); results are bit-identical
// at any width. -json writes a machine-readable BENCH_*.json report of the
// session, including every table's content, so -report can render the
// figure-keyed EXPERIMENTS.md and -compare can diff two sessions offline.
// With -gate G, -compare exits with status 3 when any gated throughput
// metric regressed by more than G percent — the CI perf-trajectory gate.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/consensus/pbft"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the CLI's exit codes and
// output are unit-testable. Exit codes: 0 ok, 1 I/O failure, 2 usage
// error, 3 regression gate tripped.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shardsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("exp", "", "comma-separated experiment ids (e.g. fig8,table2) or 'all'")
		scale    = fs.String("scale", "standard", strings.Join(bench.ScaleNames(), " | "))
		list     = fs.Bool("list", false, "list experiments")
		workers  = fs.Int("workers", 0, "experiment worker pool width (0 = GOMAXPROCS)")
		jsonPath = fs.String("json", "", "write a machine-readable benchmark report to this path")
		repPath  = fs.String("report", "", "render comma-separated BENCH_*.json files as markdown (EXPERIMENTS.md) instead of running experiments")
		cmpPath  = fs.String("compare", "", "compare this baseline BENCH_*.json against the report given as the next argument")
		outPath  = fs.String("o", "", "output path for -report/-compare markdown (default stdout)")
		gate     = fs.Float64("gate", 0, "with -compare: exit 3 if any gated throughput metric regressed more than this percent")
		label    = fs.String("label", "", "label recorded in the -json report (default \"shardsim -exp <ids>\")")
		execWk   = fs.Int("execworkers", 0, "parallel execution workers per replica (0 = serial, matching the published baselines)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The flag package stops at the first positional argument; keep
	// consuming so `-compare old.json new.json -gate 15` parses the
	// trailing flags too. A bare "-" is a positional to flag.Parse, so it
	// must be consumed here as one — classifying it as a flag would
	// re-parse the same slice forever.
	var positionals []string
	for rest := fs.Args(); len(rest) > 0; rest = fs.Args() {
		if len(rest[0]) > 1 && strings.HasPrefix(rest[0], "-") {
			if err := fs.Parse(rest); err != nil {
				return 2
			}
			continue
		}
		positionals = append(positionals, rest[0])
		if err := fs.Parse(rest[1:]); err != nil {
			return 2
		}
	}
	bench.SetWorkers(*workers)
	pbft.SetDefaultExecWorkers(*execWk)

	switch {
	case *repPath != "":
		return runReport(append(strings.Split(*repPath, ","), positionals...), *outPath, stdout, stderr)
	case *cmpPath != "":
		paths := append(strings.Split(*cmpPath, ","), positionals...)
		if len(paths) != 2 {
			fmt.Fprintf(stderr, "-compare needs exactly two reports: -compare old.json new.json\n")
			return 2
		}
		return runCompare(paths[0], paths[1], *outPath, *gate, stdout, stderr)
	}
	if len(positionals) > 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", positionals)
		return 2
	}

	if *list || *expID == "" {
		printExperiments(stdout)
		if *expID == "" && !*list {
			fmt.Fprintln(stdout, "\nrun one with: shardsim -exp <id>")
		}
		return 0
	}

	s, ok := bench.ScaleByName(*scale)
	if !ok {
		fmt.Fprintf(stderr, "unknown scale %q (valid: %s)\n", *scale, strings.Join(bench.ScaleNames(), ", "))
		return 2
	}

	// Resolve every requested experiment before running any, so a typo
	// fails fast with the valid list instead of exiting 0 after partial
	// (or no) work.
	var exps []bench.Experiment
	for _, id := range strings.Split(*expID, ",") {
		id = strings.TrimSpace(id)
		if id == "all" {
			exps = append(exps, bench.All()...)
			continue
		}
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; valid experiments:\n", id)
			printExperimentList(stderr)
			return 2
		}
		exps = append(exps, e)
	}

	if *label == "" {
		*label = "shardsim -exp " + *expID
	}
	rep := bench.NewReport(*label)
	rep.SetScale(s)
	for _, e := range exps {
		start := time.Now()
		t := e.Run(s)
		elapsed := time.Since(start)
		t.Fprint(stdout)
		fmt.Fprintf(stdout, "  (%s regenerated in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		rep.AddTable(e.ID, e.Title, elapsed, t)
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(stderr, "writing report: %v\n", err)
			return 1
		}
	}
	return 0
}

func runReport(paths []string, outPath string, stdout, stderr io.Writer) int {
	reports, err := report.LoadAll(paths...)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 1
	}
	var buf bytes.Buffer
	if err := report.Render(&buf, reports...); err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 1
	}
	return emit(&buf, outPath, stdout, stderr)
}

func runCompare(oldPath, newPath, outPath string, gate float64, stdout, stderr io.Writer) int {
	reports, err := report.LoadAll(oldPath, newPath)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 1
	}
	d := report.Compare(reports[0], reports[1])
	var buf bytes.Buffer
	d.WriteMarkdown(&buf, gate)
	if code := emit(&buf, outPath, stdout, stderr); code != 0 {
		return code
	}
	if gate > 0 {
		if reg := d.Regressions(gate); len(reg) > 0 {
			fmt.Fprintf(stderr, "regression gate: %d metric(s) worsened more than %.0f%%:\n", len(reg), gate)
			for _, m := range reg {
				fmt.Fprintf(stderr, "  %s %s: %.4g -> %.4g (%+.1f%%)\n",
					m.ID, m.Metric, m.Old, m.New, m.DeltaPct)
			}
			return 3
		}
	}
	return 0
}

// emit writes rendered markdown to outPath (or stdout when empty),
// surfacing short writes — a silently truncated EXPERIMENTS.md would
// defeat the CI staleness check.
func emit(buf *bytes.Buffer, outPath string, stdout, stderr io.Writer) int {
	if outPath == "" {
		_, err := stdout.Write(buf.Bytes())
		if err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 1
	}
	return 0
}

func printExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	printExperimentList(w)
}

func printExperimentList(w io.Writer) {
	for _, e := range bench.All() {
		fmt.Fprintf(w, "  %-8s %s\n", e.ID, e.Title)
	}
}
