package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// Unknown experiment names must fail loudly (exit 2) and print the valid
// experiment list — a typo'd -exp exiting 0 would let CI pass while
// benchmarking nothing.
func TestUnknownExperimentErrors(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", "fig99"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown experiment "fig99"`) {
		t.Fatalf("stderr missing error: %s", errOut.String())
	}
	for _, id := range []string{"fig8", "table2", "eq1"} {
		if !strings.Contains(errOut.String(), id) {
			t.Fatalf("stderr missing valid experiment %s:\n%s", id, errOut.String())
		}
	}
	// A bad id buried in a comma list fails the same way, before any
	// experiment runs.
	if code := run([]string{"-exp", "table2,nope"}, &out, &errOut); code != 2 {
		t.Fatalf("comma-list exit code = %d, want 2", code)
	}
}

func TestUnknownScaleErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "table2", "-scale", "paper"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "smoke") {
		t.Fatalf("stderr should list valid scales: %s", errOut.String())
	}
}

// A bare "-" is a positional to flag.Parse; the re-parse loop must
// consume it instead of spinning on an unchanging argument list.
func TestBareDashDoesNotHang(t *testing.T) {
	done := make(chan int, 1)
	go func() {
		var out, errOut strings.Builder
		done <- run([]string{"-list", "-"}, &out, &errOut)
	}()
	select {
	case code := <-done:
		if code != 2 {
			t.Fatalf("exit code = %d, want 2 (unexpected positional)", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run hung on a bare '-' argument")
	}
}

func TestListExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "fig8") {
		t.Fatalf("list missing experiments:\n%s", out.String())
	}
}

// End to end: run a static experiment, write JSON, render it, compare it
// against a degraded copy with the gate armed.
func TestRunReportCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "out.json")
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "eq1,eq2", "-scale", "smoke", "-json", jsonPath},
		&out, &errOut); code != 0 {
		t.Fatalf("run failed (%d): %s", code, errOut.String())
	}

	mdPath := filepath.Join(dir, "EXPERIMENTS.md")
	if code := run([]string{"-report", jsonPath, "-o", mdPath}, &out, &errOut); code != 0 {
		t.Fatalf("-report failed (%d): %s", code, errOut.String())
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# EXPERIMENTS", "Equation 1", "% of paper"} {
		if !strings.Contains(string(md), want) {
			t.Fatalf("rendered EXPERIMENTS.md missing %q:\n%s", want, md)
		}
	}

	// Degrade a copy: inflate eq2's transition fault probability so the
	// (ungated) metric moves, and check compare still exits 0; then gate
	// a fabricated throughput regression via the report package's own
	// fixtures in internal/report tests — here we only assert exit codes.
	rep, err := bench.ReadReportFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	degradedPath := filepath.Join(dir, "degraded.json")
	if err := rep.WriteFile(degradedPath); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-compare", jsonPath, degradedPath, "-gate", "15"},
		&out, &errOut); code != 0 {
		t.Fatalf("identical compare should exit 0, got %d: %s", code, errOut.String())
	}

	// -compare with one path is a usage error.
	if code := run([]string{"-compare", jsonPath}, &out, &errOut); code != 2 {
		t.Fatalf("-compare with one report: exit %d, want 2", code)
	}
}

// The regression gate must exit 3 when a gated throughput metric drops
// beyond the threshold (the CI contract).
func TestCompareGateExitCode(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, tps string) string {
		r := bench.NewReport(name)
		r.Scale = "smoke"
		r.AddTable("fig8", "t", time.Millisecond, &bench.Table{
			ID:   "fig8",
			Cols: []string{"mode", "x", "HL", "AHL", "AHL+", "AHLR"},
			Rows: [][]string{{"N", "7", "500", "500", tps, "600"}},
		})
		path := filepath.Join(dir, name+".json")
		if err := r.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := mk("old", "1000")
	newPath := mk("new", "700") // -30%
	var out, errOut strings.Builder
	if code := run([]string{"-compare", oldPath, newPath, "-gate", "15"}, &out, &errOut); code != 3 {
		t.Fatalf("exit code = %d, want 3 (regression gate)", code)
	}
	if !strings.Contains(errOut.String(), "regression gate") {
		t.Fatalf("stderr missing gate message: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("markdown missing REGRESSION flag: %s", out.String())
	}
	// Same drop with the gate off: informational only.
	if code := run([]string{"-compare", oldPath, newPath}, &out, &errOut); code != 0 {
		t.Fatalf("ungated compare exit = %d, want 0", code)
	}
}
