// Command ahlnode runs one committee replica of a live AHL deployment: a
// shard-committee or reference-committee member as a standalone process,
// speaking the internal/wire protocol over TCP.
//
// Every process of a deployment loads the same JSON topology file (see
// core.ClusterConfig and examples/livecluster/), which fixes committee
// membership, listen addresses and protocol parameters:
//
//	ahlnode -topo topology.json -id 3
//
// With a data directory (topology data_dir or -data) the replica keeps a
// write-ahead log and periodic state snapshots under <dir>/node-<id>/ and
// recovers from them at startup — a killed process rejoins with its
// pre-crash state instead of an empty one. Unrecoverable storage errors
// make the process exit non-zero (a replica that cannot journal must not
// keep executing).
//
// With a metrics address (topology metrics_addr or -metrics-addr) the
// process serves its observability endpoints over HTTP: Prometheus
// /metrics, JSON /snapshot, the recent-transaction /trace ring, and
// net/http/pprof under /debug/pprof/.
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully
// (event loop stopped, storage flushed and closed, outbound queues
// flushed).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func main() {
	var (
		topoPath    = flag.String("topo", "", "cluster topology JSON (required)")
		id          = flag.Int("id", -1, "this node's id in the topology (required)")
		listen      = flag.String("listen", "", "listen address override (default: this node's topology address)")
		dataDir     = flag.String("data", "", "durable-state root override (default: topology data_dir; empty = memory-only)")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP address override (default: this node's topology metrics_addr; empty = off)")
		statusIv    = flag.Duration("status", 10*time.Second, "status log interval (0 disables)")
		verbose     = flag.Bool("v", false, "log transport diagnostics")
	)
	flag.Parse()
	if *topoPath == "" || *id < 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := core.LoadClusterConfig(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		cfg.DataDir = *dataDir
	}
	nodeID := simnet.NodeID(*id)
	place, ok := cfg.Place(nodeID)
	if !ok {
		log.Fatalf("ahlnode: node %d not in %s", *id, *topoPath)
	}
	addr := *listen
	if addr == "" {
		addr = cfg.PeerAddrs()[nodeID]
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	tr, err := transport.NewTCP(transport.TCPConfig{
		Listen: addr,
		Peers:  cfg.PeerAddrs(),
		Logf:   logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	node, err := core.StartLiveNode(cfg, nodeID, tr)
	if err != nil {
		tr.Close()
		log.Fatal(err)
	}
	// All transport health (queue depth per peer, overflows, reconnects)
	// lives in the registry; the periodic status line and /metrics render
	// the same counters.
	tr.RegisterMetrics(node.Obs().Reg)

	obsAddr := *metricsAddr
	if obsAddr == "" {
		obsAddr = cfg.MetricsAddr(nodeID)
	}
	if obsAddr != "" {
		srv := &http.Server{Addr: obsAddr, Handler: obs.NewHTTPHandler(node.Obs())}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("ahlnode %d: metrics server: %v", *id, err)
			}
		}()
		defer srv.Close()
	}

	var desc string
	if place.Role == core.RoleShardReplica {
		desc = fmt.Sprintf("shard %d replica %d", place.Shard, place.Index)
	} else {
		desc = fmt.Sprintf("reference replica %d", place.Index)
	}
	durable := "memory-only"
	if dir := cfg.NodeDataDir(nodeID); dir != "" {
		durable = "data " + dir
	}
	obsDesc := ""
	if obsAddr != "" {
		obsDesc = ", metrics on " + obsAddr
	}
	log.Printf("ahlnode %d: %s, listening on %s, %s%s", *id, desc, tr.Addr(), durable, obsDesc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var status <-chan time.Time
	if *statusIv > 0 {
		tk := time.NewTicker(*statusIv)
		defer tk.Stop()
		status = tk.C
	}
	for {
		select {
		case <-status:
			// One line per interval, straight from the registry: the same
			// counters /metrics serves, so the log and the scrape never
			// disagree.
			log.Printf("ahlnode %d: %s", *id, node.Obs().Reg.Snapshot().Summary())
		case err := <-node.Fatal():
			// The replica stopped executing the moment its journal failed;
			// exit non-zero so a supervisor restarts the process into the
			// recovery path.
			log.Printf("ahlnode %d: fatal storage error: %v", *id, err)
			tr.Close()
			os.Exit(1)
		case s := <-sig:
			log.Printf("ahlnode %d: %v, shutting down", *id, s)
			exit := 0
			if err := node.Stop(); err != nil {
				log.Printf("ahlnode %d: %v", *id, err)
				exit = 1
			}
			tr.Close()
			os.Exit(exit)
		}
	}
}
