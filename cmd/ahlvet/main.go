// Command ahlvet runs the repository's determinism-and-safety analyzer
// suite (maporder, walltime, wireexhaust, journalbarrier — see
// internal/analysis) over Go packages.
//
// Standalone mode loads packages itself and reports every unsuppressed
// finding:
//
//	ahlvet ./...
//
// It exits 0 on a clean tree and 1 on findings — the contract CI's lint
// job and the repo-wide meta-test both rely on.
//
// The binary also speaks the `go vet` unit-checker protocol (it accepts
// a *.cfg argument plus the -V/-flags probe flags), so it can run as
//
//	go vet -vettool=$(which ahlvet) ./...
//
// In that mode the go command drives one invocation per package; test
// variants are skipped (the dynamic harnesses own test determinism, and
// the analyzers target the replicated runtime).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ahlvet"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet probe; use -V=full)")
	flagsFlag := flag.Bool("flags", false, "print registered flags as JSON (go vet probe)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ahlvet [packages]   (default ./...)\n       ahlvet <unit>.cfg   (go vet -vettool mode)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		// The go command caches vet results keyed on this line.
		fmt.Printf("ahlvet version 1\n")
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	if flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg") {
		os.Exit(unitCheck(flag.Arg(0)))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := ahlvet.Check(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ahlvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "ahlvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// unitConfig is the subset of the go vet unit-checker config ahlvet
// reads (the go command writes one per package).
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package under the go vet protocol and returns
// the process exit code: 0 clean, 2 findings (matching go vet's
// expectation that a failing tool exits non-zero after printing
// file:line:col: message diagnostics to stderr).
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ahlvet:", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ahlvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist for the go command's action graph even
	// though this suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ahlvet:", err)
			return 2
		}
	}
	if cfg.VetxOnly || testVariant(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue // test determinism is owned by the dynamic harnesses
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ahlvet:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ahlvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}
	for _, f := range files {
		pkg.CollectSuppressions(f)
	}
	findings, err := ahlvet.CheckPackage(pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ahlvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// testVariant reports whether the unit package is a test build ("p
// [p.test]", "p.test", or an external _test package).
func testVariant(importPath string) bool {
	return strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test") ||
		strings.Contains(importPath, " [")
}
