package repro

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Seed: 1, Shards: 2, ShardSize: 3, RefSize: 3,
		Variant: VariantAHLPlus, Clients: 1, SendReplies: true,
	})
	sys.Seed(10, 1000)
	from, to := "", ""
	for i := 0; i < 10 && to == ""; i++ {
		for j := 0; j < 10; j++ {
			a, b := "acc"+string(rune('0'+i)), "acc"+string(rune('0'+j))
			if i != j && sys.ShardOfKey(a) != sys.ShardOfKey(b) {
				from, to = a, b
			}
		}
	}
	var got *TxResult
	d := sys.PaymentDTx("t", from, to, 100)
	sys.Engine.Schedule(0, func() {
		sys.Client(0).SubmitDistributed(d, func(r TxResult) { got = &r })
	})
	sys.Run(60 * time.Second)
	if got == nil || !got.Committed {
		t.Fatalf("facade payment failed: %+v", got)
	}
	fb, _ := sys.BalanceOnShard(from)
	if fb != 900 {
		t.Fatalf("balance = %d, want 900", fb)
	}
}

// TestFacadeAutoShardAndRouter exercises the §6.4 extension surface
// exactly as a library user would: a custom contract written against the
// KV interface, transformed with AutoShard, installed through the system
// config, and driven through the transparent router.
func TestFacadeAutoShardAndRouter(t *testing.T) {
	counter := func(kv KV, fn string, args []string) error {
		switch fn {
		case "bump": // bump name — increment a per-name counter
			if len(args) != 1 {
				return errBadCall
			}
			n := int64(0)
			if v, ok := kv.Get("n_" + args[0]); ok {
				n = int64(v[0])
			}
			kv.Put("n_"+args[0], []byte{byte(n + 1)})
			return nil
		case "bumpAll": // bumpAll a b — increment two counters atomically
			if len(args) != 2 {
				return errBadCall
			}
			if err := counterLogic(kv, "bump", args[:1]); err != nil {
				return err
			}
			return counterLogic(kv, "bump", args[1:])
		default:
			return errBadCall
		}
	}
	counterLogic = counter

	sys := NewSystem(SystemConfig{
		Seed: 2, Shards: 2, ShardSize: 3, RefSize: 3,
		Variant: VariantAHLPlus, Clients: 1, SendReplies: true,
		ExtraShardCodes: func() []Chaincode {
			return []Chaincode{AutoShard("counter", counter)}
		},
	})
	router := sys.NewRouter(0)
	router.Register("counter", "bumpAll", func(args []string) ([]SubCall, error) {
		if len(args) != 2 {
			return nil, errBadCall
		}
		return []SubCall{
			{PlacementKey: args[0], Fn: "bump", Args: args[:1]},
			{PlacementKey: args[1], Fn: "bump", Args: args[1:]},
		}, nil
	})

	// Find a cross-shard name pair.
	a, b := "x0", ""
	for i := 1; b == ""; i++ {
		c := "x" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		if sys.ShardOfKey(c) != sys.ShardOfKey(a) {
			b = c
		}
	}

	var res *TxResult
	sys.Engine.Schedule(0, func() {
		if _, err := router.Submit("counter", "bumpAll", []string{a, b},
			func(r TxResult) { res = &r }); err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	sys.Run(60 * time.Second)

	if res == nil || !res.Committed {
		t.Fatalf("bumpAll failed: %+v", res)
	}
	for _, name := range []string{a, b} {
		store := sys.ShardCommittees[sys.ShardOfKey(name)].Replicas[0].Store()
		v, ok := store.Get("n_" + name)
		if !ok || v[0] != 1 {
			t.Fatalf("counter %s = %v,%v; want 1", name, v, ok)
		}
	}
}

var (
	counterLogic Logic
	errBadCall   = errorString("counter: bad call")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func TestFacadeAccountName(t *testing.T) {
	if AccountName(7) != "acc7" {
		t.Fatalf("AccountName(7) = %q", AccountName(7))
	}
}

func TestFacadeRefGroups(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Seed: 3, Shards: 2, ShardSize: 3, RefSize: 3, RefGroups: 2,
		Variant: VariantAHLPlus, Clients: 1, SendReplies: true,
	})
	if len(sys.RefCommittees) != 2 {
		t.Fatalf("RefCommittees = %d, want 2", len(sys.RefCommittees))
	}
	if sys.Topology.NumRefGroups() != 2 {
		t.Fatalf("NumRefGroups = %d, want 2", sys.Topology.NumRefGroups())
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) < 25 {
		t.Fatalf("only %d experiments exposed", len(exps))
	}
	var sb strings.Builder
	if !RunExperiment("table2", ScaleQuick(), &sb) {
		t.Fatal("table2 not found")
	}
	if !strings.Contains(sb.String(), "ECDSA") {
		t.Fatal("table2 output wrong")
	}
	if RunExperiment("bogus", ScaleQuick(), &sb) {
		t.Fatal("unknown experiment ran")
	}
}
