// Consortium reproduces the paper's running example (§3.1): a consortium
// of financial institutions offering cross-border services over a shared,
// sharded ledger. A quarter of the members actively collude; the demo
// shows that (a) the committee-size mathematics keeps every shard safe,
// (b) payments commit across shards despite the Byzantine members, and
// (c) a malicious transaction coordinator cannot freeze anyone's funds —
// the failure OmniLedger's client-driven protocol suffers (§6.1).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/consensus/pbft"
	"repro/internal/sharding"
	"repro/internal/simnet"
)

func main() {
	// The paper's example: N=400 institutions, s=25% colluding. With AHL's
	// f=(n-1)/2 rule, what committee size keeps shards safe for 2^-20?
	fmt.Println("— committee sizing for the consortium (N=400, s=25%) —")
	n := sharding.CommitteeSize(400, 0.25, sharding.HalfRule, sharding.NeglProb)
	pbftN := sharding.CommitteeSize(400, 0.25, sharding.ThirdRule, sharding.NeglProb)
	fmt.Printf("AHL+ committees need n=%d members; plain PBFT would need n=%d (>N means impossible)\n", n, pbftN)

	// Scaled-down deployment for the demo: 4 committees, 25% of members
	// Byzantine-silent (worst case for liveness).
	const shards, per = 4, 9
	byz := map[simnet.NodeID]pbft.Behavior{}
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < shards; s++ {
		// 2 of 9 members per committee misbehave (under f=4).
		for k := 0; k < 2; k++ {
			byz[simnet.NodeID(s*per+rng.Intn(per))] = pbft.BehaviorEquivocate
		}
	}
	sys := repro.NewSystem(repro.SystemConfig{
		Seed: 2, Shards: shards, ShardSize: per, RefSize: per,
		Variant: repro.VariantAHLPlus, Clients: 2, SendReplies: true,
		Behaviors: byz,
	})
	sys.Seed(40, 10_000)

	fmt.Println("\n— cross-border settlements with Byzantine members present —")
	type payment struct{ from, to string }
	var payments []payment
	used := map[string]bool{}
	for i := 0; i < 6; i++ {
		from := fmt.Sprintf("acc%d", i)
		// Pick a distinct payee on a different shard (cross-border
		// settlement; distinct so the demo payments don't contend on 2PL
		// locks).
		to := ""
		for j := 20; j < 40; j++ {
			cand := fmt.Sprintf("acc%d", j)
			if !used[cand] && sys.ShardOfKey(cand) != sys.ShardOfKey(from) {
				to = cand
				used[cand] = true
				break
			}
		}
		payments = append(payments, payment{from, to})
	}
	done := 0
	sys.Engine.Schedule(0, func() {
		for i, p := range payments {
			d := sys.PaymentDTx(fmt.Sprintf("settle-%d", i), p.from, p.to, 100)
			sys.Client(i%2).SubmitDistributed(d, func(r repro.TxResult) {
				done++
				fmt.Printf("  settlement %s: committed=%v latency=%v\n", r.TxID, r.Committed, r.Latency)
			})
		}
	})
	sys.Run(60 * time.Second)
	fmt.Printf("%d/%d settlements completed\n", done, len(payments))

	fmt.Println("\n— a coordinator that crashes mid-protocol cannot freeze funds —")
	payee := ""
	for j := 20; j < 40; j++ {
		cand := fmt.Sprintf("acc%d", j)
		if sys.ShardOfKey(cand) != sys.ShardOfKey("acc7") {
			payee = cand
			break
		}
	}
	d := sys.PaymentDTx("orphaned", "acc7", payee, 50)
	sys.Engine.Schedule(0, func() {
		c := sys.Client(0)
		c.SubmitDistributed(d, nil)
		sys.Net.Endpoint(c.ID()).SetDown(true) // the client vanishes
	})
	sys.Run(60 * time.Second)
	fb, _ := sys.BalanceOnShard("acc7")
	fmt.Printf("acc7 balance after the orphaned transaction: %d\n", fb)
	store := sys.ShardCommittees[sys.ShardOfKey("acc7")].Replicas[0].Store()
	_, locked := store.Get("L_c_acc7")
	fmt.Printf("lock on acc7 still held: %v (the BFT reference committee completed the 2PC)\n", locked)
}
