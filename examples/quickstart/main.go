// Quickstart: build a 3-shard deployment with a reference committee, seed
// SmallBank accounts, and run one cross-shard payment end to end — the
// paper's core scenario in miniature: AHL+ committees (§4) under the
// BFT-replicated 2PC/2PL coordinator (§6, Figure 6), on the simulated
// cluster environment of §7.
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	sys := repro.NewSystem(repro.SystemConfig{
		Seed:        1,
		Shards:      3,
		ShardSize:   4, // AHL+ committees: tolerate 1 Byzantine node each
		RefSize:     4, // BFT reference committee coordinating 2PC
		Variant:     repro.VariantAHLPlus,
		Clients:     1,
		SendReplies: true,
	})

	// Create 20 accounts with balance 1000, routed to their owning shards.
	sys.Seed(20, 1000)

	// Find two accounts on different shards.
	from, to := "", ""
	for i := 0; i < 20 && to == ""; i++ {
		for j := 0; j < 20; j++ {
			a, b := fmt.Sprintf("acc%d", i), fmt.Sprintf("acc%d", j)
			if i != j && sys.ShardOfKey(a) != sys.ShardOfKey(b) {
				from, to = a, b
				break
			}
		}
	}
	fmt.Printf("paying 250 from %s (shard %d) to %s (shard %d)\n",
		from, sys.ShardOfKey(from), to, sys.ShardOfKey(to))

	d := sys.PaymentDTx("payment-1", from, to, 250)
	sys.Engine.Schedule(0, func() {
		sys.Client(0).SubmitDistributed(d, func(r repro.TxResult) {
			fmt.Printf("outcome: committed=%v latency=%v\n", r.Committed, r.Latency)
		})
	})
	sys.Run(30 * time.Second)

	fb, _ := sys.BalanceOnShard(from)
	tb, _ := sys.BalanceOnShard(to)
	fmt.Printf("final balances: %s=%d %s=%d (conserved: %v)\n", from, fb, to, tb, fb+tb == 2000)
}
