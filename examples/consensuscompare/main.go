// Consensuscompare runs the §4 consensus protocols side by side on the
// same simulated cluster and prints a small version of Figures 2 and 8:
// the stock-Hyperledger PBFT (HL), the trusted-log variants (AHL, AHL+,
// AHLR), and the lockstep baselines (Tendermint, IBFT, Quorum-Raft).
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/consensus/pbft"
)

func main() {
	dur := 4 * time.Second
	fmt.Println("protocol     N=7        N=19   (tps, KVStore, 10 open-loop clients, LAN)")
	for _, p := range []string{"hl", "ahl", "ahl+", "ahlr", "tendermint", "ibft", "raft"} {
		fmt.Printf("%-11s", p)
		for _, n := range []int{7, 19} {
			r := bench.RunConsensus(bench.ConsensusCfg{
				Protocol: p, N: n, Clients: 10, Duration: dur, Seed: 42,
			})
			fmt.Printf("  %7.0f", r.Tps)
		}
		fmt.Println()
	}

	fmt.Println("\nwith f equivocating Byzantine replicas (HL runs N=3f+1; attested variants N=2f+1):")
	fmt.Println("protocol     f=1        f=3")
	for _, p := range []string{"hl", "ahl", "ahl+", "ahlr"} {
		fmt.Printf("%-11s", p)
		for _, f := range []int{1, 3} {
			n := 2*f + 1
			if p == "hl" {
				n = 3*f + 1
			}
			r := bench.RunConsensus(bench.ConsensusCfg{
				Protocol: p, N: n, Clients: 10, Duration: dur, Seed: 42,
				Failures: f, FailureMode: pbft.BehaviorEquivocate,
			})
			fmt.Printf("  %7.0f", r.Tps)
		}
		fmt.Println()
	}
}
