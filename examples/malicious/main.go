// Malicious demonstrates the §6.1/§6.2 liveness argument side by side:
//
//  1. Under OmniLedger's client-driven lock/unlock protocol, a malicious
//     coordinator (the client itself) that "pretends to crash" after the
//     prepare phase freezes the payer's funds forever — no other party
//     may decide the transaction's fate.
//  2. Under this system's protocol, the client only initiates the
//     transaction; the 2PC coordinator state machine is replicated across
//     a BFT reference committee, so the transaction commits (or aborts)
//     and releases its locks even if the client vanishes immediately
//     after submitting.
//
// This is the payment-channel scenario of §6.1: "a malicious payee may
// pretend to crash indefinitely during the lock/unlock protocol, hence,
// the payer's funds are locked forever."
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/txn"
)

func newSystem(refSize int) *repro.System {
	return repro.NewSystem(repro.SystemConfig{
		Seed:        5,
		Shards:      3,
		ShardSize:   4,
		RefSize:     refSize,
		Variant:     repro.VariantAHLPlus,
		Clients:     2,
		SendReplies: true,
	})
}

func crossShardPair(sys *repro.System, accounts int) (string, string) {
	for i := 0; i < accounts; i++ {
		for j := 0; j < accounts; j++ {
			a, b := repro.AccountName(i), repro.AccountName(j)
			if i != j && sys.ShardOfKey(a) != sys.ShardOfKey(b) {
				return a, b
			}
		}
	}
	panic("no cross-shard pair")
}

func lockStuck(sys *repro.System, acc string) bool {
	store := sys.ShardCommittees[sys.ShardOfKey(acc)].Replicas[0].Store()
	_, locked := store.Get("L_c_" + acc)
	return locked
}

func main() {
	fmt.Println("— OmniLedger-style client-driven coordination (baseline) —")
	{
		sys := newSystem(0) // no reference committee: the client coordinates
		sys.Seed(20, 100)
		payer, payee := crossShardPair(sys, 20)

		evil := txn.NewOmniClient(sys.Client(0), sys.Topology)
		evil.MaliciousStopAfterPrepare = true
		d := sys.PaymentDTx("evil-payment", payer, payee, 10)
		sys.Engine.Schedule(0, func() { evil.Run(d, nil) })
		sys.Run(5 * time.Minute) // give it every chance to resolve

		fmt.Printf("after 5 minutes: payer %s lock stuck = %v\n", payer, lockStuck(sys, payer))

		// An honest payment touching the frozen account can never commit.
		var honestOutcome *bool
		honest := txn.NewOmniClient(sys.Client(1), sys.Topology)
		d2 := sys.PaymentDTx("honest-payment", payer, payee, 5)
		sys.Engine.Schedule(0, func() {
			honest.Run(d2, func(ok bool) { honestOutcome = &ok })
		})
		sys.Run(2 * time.Minute)
		if honestOutcome == nil {
			fmt.Println("honest payment on the same account: no outcome (blocked)")
		} else {
			fmt.Printf("honest payment on the same account: committed=%v (aborted by stuck lock)\n", *honestOutcome)
		}
		bal, _ := sys.BalanceOnShard(payer)
		fmt.Printf("payer balance frozen at %d\n\n", bal)
	}

	fmt.Println("— this system: BFT reference committee as coordinator —")
	{
		sys := newSystem(4) // 4-node AHL+ reference committee
		sys.Seed(20, 100)
		payer, payee := crossShardPair(sys, 20)

		d := sys.PaymentDTx("orphan-payment", payer, payee, 10)
		sys.Engine.Schedule(0, func() {
			c := sys.Client(0)
			c.SubmitDistributed(d, nil)
			// The client vanishes immediately after submitting — the most
			// malicious thing the §6.2 protocol lets a client do.
			sys.Net.Endpoint(c.ID()).SetDown(true)
		})
		sys.Run(2 * time.Minute)

		payerBal, _ := sys.BalanceOnShard(payer)
		payeeBal, _ := sys.BalanceOnShard(payee)
		fmt.Printf("payment completed without the client: payer=%d payee=%d\n", payerBal, payeeBal)
		fmt.Printf("locks stuck: payer=%v payee=%v\n", lockStuck(sys, payer), lockStuck(sys, payee))

		// The account remains fully usable by honest clients.
		var res *repro.TxResult
		d2 := sys.PaymentDTx("followup-payment", payer, payee, 5)
		sys.Engine.Schedule(0, func() {
			sys.Client(1).SubmitDistributed(d2, func(r repro.TxResult) { res = &r })
		})
		sys.Run(time.Minute)
		if res != nil {
			fmt.Printf("follow-up honest payment: committed=%v latency=%v\n", res.Committed, res.Latency)
		} else {
			fmt.Println("follow-up honest payment: no outcome")
		}
	}
}
