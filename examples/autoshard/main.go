// Autoshard demonstrates the §6.4 extensions end to end: a custom escrow
// contract is written ONCE as plain single-shard logic against the KV
// interface, automatically transformed for multi-shard execution with
// repro.AutoShard, installed on every shard, and driven through the
// transparent Router — the application never sees prepare/commit/abort,
// locks, or the reference committee.
//
// The contract models the consortium scenario of §3.1: institutions hold
// asset positions; a settlement atomically moves an asset position from
// one institution to another while collecting a fee for the operator.
// Institutions are placed on shards by hash, so most settlements are
// cross-shard (Appendix B).
package main

import (
	"fmt"
	"strconv"
	"time"

	"repro"
)

// escrowLogic is the custom contract: plain business logic with no
// knowledge of sharding. State keys: "pos_<institution>" holds the asset
// position, "fees" accumulates operator fees.
func escrowLogic(kv repro.KV, fn string, args []string) error {
	get := func(key string) int64 {
		v, ok := kv.Get(key)
		if !ok {
			return 0
		}
		n, _ := strconv.ParseInt(string(v), 10, 64)
		return n
	}
	put := func(key string, n int64) { kv.Put(key, []byte(strconv.FormatInt(n, 10))) }

	switch fn {
	case "fund": // fund inst amount — single-shard
		if len(args) != 2 {
			return fmt.Errorf("escrow: fund wants 2 args")
		}
		amt, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil || amt < 0 {
			return fmt.Errorf("escrow: bad amount %q", args[1])
		}
		put("pos_"+args[0], get("pos_"+args[0])+amt)
		return nil

	case "debit": // debit inst amount — one side of a settlement
		if len(args) != 2 {
			return fmt.Errorf("escrow: debit wants 2 args")
		}
		amt, _ := strconv.ParseInt(args[1], 10, 64)
		bal := get("pos_" + args[0])
		if bal < amt {
			return fmt.Errorf("escrow: %s holds %d < %d", args[0], bal, amt)
		}
		put("pos_"+args[0], bal-amt)
		return nil

	case "credit": // credit inst amount fee — the other side, fee withheld
		if len(args) != 3 {
			return fmt.Errorf("escrow: credit wants 3 args")
		}
		amt, _ := strconv.ParseInt(args[1], 10, 64)
		fee, _ := strconv.ParseInt(args[2], 10, 64)
		if fee > amt {
			return fmt.Errorf("escrow: fee %d exceeds amount %d", fee, amt)
		}
		put("pos_"+args[0], get("pos_"+args[0])+amt-fee)
		put("fees_"+args[0], get("fees_"+args[0])+fee)
		return nil

	case "settle": // settle from to amount fee — the composed operation,
		// executed directly when both parties share a shard (the router's
		// single-shard fast path). Must be equivalent to debit+credit.
		if len(args) != 4 {
			return fmt.Errorf("escrow: settle wants 4 args")
		}
		if err := escrowLogic(kv, "debit", []string{args[0], args[2]}); err != nil {
			return err
		}
		return escrowLogic(kv, "credit", []string{args[1], args[2], args[3]})

	case "position": // position inst — read
		if len(args) != 1 {
			return fmt.Errorf("escrow: position wants 1 arg")
		}
		if _, ok := kv.Get("pos_" + args[0]); !ok {
			return fmt.Errorf("escrow: unknown institution %s", args[0])
		}
		return nil

	default:
		return fmt.Errorf("escrow: unknown fn %s", fn)
	}
}

func main() {
	sys := repro.NewSystem(repro.SystemConfig{
		Seed:        7,
		Shards:      3,
		ShardSize:   4,
		RefSize:     4,
		Variant:     repro.VariantAHLPlus,
		Clients:     1,
		SendReplies: true,
		// Install the automatically transformed escrow contract on every
		// shard alongside the benchmark chaincodes.
		ExtraShardCodes: func() []repro.Chaincode {
			return []repro.Chaincode{repro.AutoShard("escrow", escrowLogic)}
		},
	})

	// The router hides all coordination. "settle" decomposes into a debit
	// on the seller's shard and a credit (with fee) on the buyer's shard.
	router := sys.NewRouter(0)
	router.Register("escrow", "settle", func(args []string) ([]repro.SubCall, error) {
		if len(args) != 4 {
			return nil, fmt.Errorf("settle wants: from to amount fee")
		}
		from, to, amount, fee := args[0], args[1], args[2], args[3]
		return []repro.SubCall{
			{PlacementKey: from, Fn: "debit", Args: []string{from, amount}},
			{PlacementKey: to, Fn: "credit", Args: []string{to, amount, fee}},
		}, nil
	})

	// Fund institutions (single-shard fast path: no 2PC involved).
	institutions := []string{"alpha", "bravo", "credo", "delta", "echo"}
	for _, inst := range institutions {
		inst := inst
		sys.Engine.Schedule(0, func() {
			router.Submit("escrow", "fund", []string{inst, "1000"}, func(r repro.TxResult) {
				fmt.Printf("funded %-6s committed=%v (single-shard fast path)\n", inst, r.Committed)
			})
		})
	}
	sys.Run(15 * time.Second)

	for _, inst := range institutions {
		fmt.Printf("  %s on shard %d\n", inst, sys.ShardOfKey(inst))
	}

	// Settlements — the application just states intent; the router builds
	// the distributed transaction when the parties live on different
	// shards.
	settlements := [][4]string{
		{"alpha", "bravo", "400", "4"},
		{"credo", "delta", "250", "2"},
		{"echo", "alpha", "999", "9"},
		{"bravo", "echo", "5000", "0"}, // overdraft: must abort atomically
	}
	// Settlements are staggered so the demo shows protocol outcomes rather
	// than 2PL lock races (concurrent conflicting settlements simply abort
	// and would be retried by a real client).
	for i, s := range settlements {
		i, s := i, s
		sys.Engine.Schedule(time.Duration(i)*5*time.Second, func() {
			router.Submit("escrow", "settle", s[:], func(r repro.TxResult) {
				fmt.Printf("settle#%d %s->%s %s (fee %s): committed=%v latency=%v\n",
					i, s[0], s[1], s[2], s[3], r.Committed, r.Latency)
			})
		})
	}
	sys.Run(60 * time.Second)

	// Verify conservation: positions + fees must equal the funding total.
	var total int64
	for _, inst := range institutions {
		store := sys.ShardCommittees[sys.ShardOfKey(inst)].Replicas[0].Store()
		for _, prefix := range []string{"pos_", "fees_"} {
			if v, ok := store.Get(prefix + inst); ok {
				n, _ := strconv.ParseInt(string(v), 10, 64)
				total += n
				fmt.Printf("  %s%s = %d\n", prefix, inst, n)
			}
		}
	}
	fmt.Printf("total across all shards = %d (funded 5000, conserved: %v)\n", total, total == 5000)
}
