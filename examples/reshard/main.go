// Reshard demonstrates epoch transitions (§5): the trusted randomness
// beacon agrees on an unbiased seed, the node-to-committee assignment is
// recomputed, and the system reconfigures while serving traffic —
// comparing the naive swap-all strategy against the paper's batched
// swap of B = log(n) nodes at a time (Figure 12).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/sharding"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	fmt.Println("— distributed randomness generation (32 nodes, LAN) —")
	res := sharding.RunBeaconProtocol(3, 32, sharding.DefaultLBits(32),
		sharding.DeltaFor(simnet.LAN()), simnet.LAN())
	fmt.Printf("beacon: rnd=%x after %d round(s) in %v (%d messages)\n",
		res.Rnd, res.Rounds, res.Elapsed, res.Messages)
	rh := sharding.RunRandHound(3, 32, 16, simnet.LAN())
	fmt.Printf("RandHound baseline on the same network: %v (%.0fx slower)\n\n",
		rh, float64(rh)/float64(res.Elapsed))

	for _, mode := range []struct {
		label string
		m     repro.ReshardMode
	}{{"swap-all (naive)", repro.ReshardSwapAll}, {"swap log(n) (paper)", repro.ReshardSwapBatch}} {
		sys := repro.NewSystem(repro.SystemConfig{
			Seed: 4, Shards: 2, ShardSize: 11, Variant: repro.VariantAHLPlus, Clients: 1,
		})
		drv := &workload.OpenLoopShardedDriver{Sys: sys, Benchmark: "kvstore",
			Rate: 150, Rng: rand.New(rand.NewSource(9))}
		drv.Start(110 * time.Second)
		sampler := sys.SampleThroughput(10*time.Second, 120*time.Second)
		sys.ReshardAt(40*time.Second, res.Rnd, core.DefaultReshardConfig(core.ReshardMode(mode.m)))
		sys.Run(120 * time.Second)
		fmt.Printf("%-20s tps per 10s window: ", mode.label)
		for _, v := range sampler.Samples {
			fmt.Printf("%4.0f ", v)
		}
		fmt.Println()
	}
	fmt.Println("\n(the reconfiguration starts at t=40s; note swap-all's outage vs the batched swap)")

	// Recurring epochs (§5.3: "shard reconfiguration occurs at every
	// epoch"): the system reshuffles itself on a schedule, each epoch
	// seeded by a fresh beacon value, while traffic keeps flowing.
	fmt.Println("\n— recurring epochs: reconfiguring every 60s under load —")
	sys := repro.NewSystem(repro.SystemConfig{
		Seed: 4, Shards: 2, ShardSize: 11, Variant: repro.VariantAHLPlus, Clients: 1,
	})
	drv := &workload.OpenLoopShardedDriver{Sys: sys, Benchmark: "kvstore",
		Rate: 150, Rng: rand.New(rand.NewSource(9))}
	drv.Start(170 * time.Second)
	sampler := sys.SampleThroughput(10*time.Second, 180*time.Second)
	sys.EnableEpochs(repro.EpochConfig{
		Interval: 60 * time.Second,
		Reshard:  core.DefaultReshardConfig(core.ReshardSwapBatch),
		OnEpoch: func(e, rnd uint64) {
			fmt.Printf("epoch %d locked rnd=%x at t=%v\n", e, rnd, sys.Engine.Now())
		},
	})
	sys.Run(180 * time.Second)
	fmt.Printf("%-20s tps per 10s window: ", "recurring epochs")
	for _, v := range sampler.Samples {
		fmt.Printf("%4.0f ", v)
	}
	fmt.Println()
}
