// Scaleout demonstrates the §6.2 remark that "the reference committee is
// not a bottleneck in cross-shard transaction processing, for we can
// scale it out by running multiple instances of R in parallel": the same
// cross-shard payment burst is pushed through deployments with 1, 2 and
// 4 parallel reference committee instances, and the completion throughput
// rises with the instance count until the shards themselves saturate.
//
// Transactions are routed to instances by hashing their ids, so every
// honest party agrees on each transaction's unique coordinator and no two
// instances can decide the same transaction differently.
package main

import (
	"fmt"
	"time"

	"repro"
)

func run(groups int) (resolved int, committed int, avgLatency time.Duration) {
	sys := repro.NewSystem(repro.SystemConfig{
		Seed:        3,
		Shards:      4,
		ShardSize:   3,
		RefSize:     3,
		RefGroups:   groups,
		Variant:     repro.VariantAHLPlus,
		Clients:     4,
		SendReplies: true,
	})
	const accounts = 360
	sys.Seed(accounts, 1_000_000)

	// A burst of cross-shard payments on pairwise-disjoint account pairs,
	// so 2PL conflicts don't mask the coordination cost being measured.
	var totalLatency time.Duration
	pair := 0
	for n := 0; n < 120; n++ {
		var from, to string
		for {
			from = repro.AccountName(2 * pair)
			to = repro.AccountName(2*pair + 1)
			pair++
			if sys.ShardOfKey(from) != sys.ShardOfKey(to) {
				break
			}
		}
		d := sys.PaymentDTx(fmt.Sprintf("burst%d", n), from, to, 1)
		cl := sys.Client(n % sys.Clients())
		sys.Engine.Schedule(0, func() {
			cl.SubmitDistributed(d, func(r repro.TxResult) {
				resolved++
				if r.Committed {
					committed++
				}
				totalLatency += r.Latency
			})
		})
	}
	sys.Run(120 * time.Second)
	if resolved > 0 {
		avgLatency = totalLatency / time.Duration(resolved)
	}
	return resolved, committed, avgLatency
}

func main() {
	fmt.Println("cross-shard payment burst (120 txs, 4 shards) vs parallel R instances")
	fmt.Printf("%-12s %-10s %-10s %s\n", "R instances", "resolved", "committed", "avg latency")
	for _, groups := range []int{1, 2, 4} {
		resolved, committed, lat := run(groups)
		fmt.Printf("%-12d %-10d %-10d %v\n", groups, resolved, committed, lat)
	}
}
