#!/usr/bin/env sh
# One-command local cluster: builds ahlnode/ahlctl, starts the
# 2-shard (4 replicas each) + reference-committee topology from
# topology.json as 12 real processes on loopback, drives a SmallBank
# workload through ahlctl, and tears everything down.
#
#   ./examples/livecluster/run.sh [--wipe] [extra ahlctl flags]
#
# Each replica keeps a write-ahead log and snapshots under
# $AHL_DATA/node-<id>/ (default examples/livecluster/data), so a rerun
# recovers the previous run's ledger state; pass --wipe to start from a
# clean slate instead. Run from the repository root.
set -e

TOPO="examples/livecluster/topology.json"
DATA="${AHL_DATA:-examples/livecluster/data}"
BIN="$(mktemp -d)"
PIDS=""
# POSIX sh: $(jobs -p) is empty inside a command substitution, so track
# the replica PIDs explicitly for the cleanup trap.
trap 'kill $PIDS 2>/dev/null; rm -rf "$BIN"' EXIT INT TERM

if [ "$1" = "--wipe" ]; then
  shift
  echo "== wiping $DATA"
  rm -rf "$DATA"
fi
mkdir -p "$DATA"

echo "== building ahlnode + ahlctl"
go build -o "$BIN/ahlnode" ./cmd/ahlnode
go build -o "$BIN/ahlctl" ./cmd/ahlctl

echo "== starting 12 replicas (2 shards x 4 + reference committee of 4)"
for id in 0 1 2 3 4 5 6 7 8 9 10 11; do
  "$BIN/ahlnode" -topo "$TOPO" -id "$id" -data "$DATA" -status 0 2>"$BIN/node$id.log" &
  PIDS="$PIDS $!"
done
sleep 1

echo "== driving workload"
"$BIN/ahlctl" load -topo "$TOPO" -accounts 32 -txs 200 -cross 0.3 "$@"

echo "== height-consistent cluster status + conservation query"
"$BIN/ahlctl" status -topo "$TOPO" || true
"$BIN/ahlctl" query -topo "$TOPO" || true

echo "== scraping cluster observability (per-node metrics_addr endpoints)"
"$BIN/ahlctl" scrape -topo "$TOPO" || true

echo "== done; stopping cluster (state kept in $DATA; rerun with --wipe for a clean slate)"
