#!/usr/bin/env bash
# Crash-restart smoke on the real-process cluster: start the 12-replica
# loopback topology with durable data dirs, drive ahlctl load, kill -9 one
# shard replica mid-load, restart it, and assert that
#   (a) the load run completes despite the crash (f=1 tolerated),
#   (b) the restarted process recovers from its snapshot+WAL (greppable
#       "recovered snapshot" marker) and rejoins (executed counter moves),
#   (c) a second load run over the recovered cluster completes cleanly.
# The exact per-replica balance-conservation check lives in the in-process
# equivalent, TestLiveClusterReplicaRestartRecovery (internal/core), which
# CI runs under -race; this script proves the same story end-to-end with
# real processes and a real SIGKILL. Run from the repository root.
set -euo pipefail

TOPO="examples/livecluster/topology.json"
BIN="$(mktemp -d)"
DATA="$BIN/data"
VICTIM=3 # shard 0, replica index 3 — never the initial leader
VICTIM_PID=""
LAST_PID=""
PIDS=()
# The victim pid is already dead when the trap fires, so the kill must
# not abort the trap under set -e.
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

# build_tool compiles one command into $BIN and refuses to continue on
# failure: a stale or missing binary would invalidate the whole smoke.
build_tool() {
  local pkg="$1" out="$2"
  if ! go build -o "$out" "$pkg"; then
    echo "FAIL: go build $pkg failed — refusing to run with a stale/missing binary" >&2
    exit 1
  fi
  if [ ! -x "$out" ]; then
    echo "FAIL: $out not produced by go build $pkg" >&2
    exit 1
  fi
}

echo "== building ahlnode + ahlctl"
build_tool ./cmd/ahlnode "$BIN/ahlnode"
build_tool ./cmd/ahlctl "$BIN/ahlctl"

start_node() {
  "$BIN/ahlnode" -topo "$TOPO" -id "$1" -data "$DATA" -status 1s 2>"$BIN/node$1$2.log" &
  LAST_PID=$!
  PIDS+=("$LAST_PID")
}

echo "== starting 12 replicas with data dirs under $DATA"
for id in 0 1 2 3 4 5 6 7 8 9 10 11; do
  start_node "$id" ""
  if [ "$id" = "$VICTIM" ]; then VICTIM_PID="$LAST_PID"; fi
done
sleep 1

echo "== driving load (background)"
"$BIN/ahlctl" load -topo "$TOPO" -accounts 32 -txs 1000 -outstanding 8 -cross 0.5 \
  -timeout 180s >"$BIN/ctl1.log" 2>&1 &
CTL=$!

sleep 2
echo "== kill -9 node $VICTIM (pid $VICTIM_PID) mid-load"
kill -9 "$VICTIM_PID"
sleep 2

echo "== restarting node $VICTIM"
start_node "$VICTIM" "-restarted"

echo "== waiting for the load run"
if ! wait "$CTL"; then
  echo "FAIL: ahlctl load run failed despite single-replica crash" >&2
  cat "$BIN/ctl1.log" >&2
  exit 1
fi
if ! grep '^  transactions' "$BIN/ctl1.log"; then
  echo "FAIL: no transaction summary in the first load run" >&2
  cat "$BIN/ctl1.log" >&2
  exit 1
fi

echo "== checking recovery markers on node $VICTIM"
if ! grep -q "recovered snapshot" "$BIN/node$VICTIM-restarted.log"; then
  echo "FAIL: restarted node never ran boot recovery" >&2
  cat "$BIN/node$VICTIM-restarted.log" >&2
  exit 1
fi

# Rejoin: the restarted replica's executed counter must advance past its
# boot-replay value (statesync + new traffic), visible in -status lines.
rejoined=""
execd=""
for _ in $(seq 1 30); do
  execd="$(sed -n 's/.*executed=\([0-9]*\).*/\1/p' "$BIN/node$VICTIM-restarted.log" | tail -1)"
  if [ -n "$execd" ] && [ "$execd" -gt 0 ]; then rejoined=yes; break; fi
  sleep 1
done
if [ -z "$rejoined" ]; then
  echo "FAIL: restarted node never executed anything (no rejoin)" >&2
  cat "$BIN/node$VICTIM-restarted.log" >&2
  exit 1
fi
echo "   node $VICTIM rejoined (executed=$execd)"

echo "== second load run over the recovered cluster"
if ! "$BIN/ahlctl" load -topo "$TOPO" -accounts 32 -txs 200 -cross 0.5 -seed 2 \
  -timeout 120s >"$BIN/ctl2.log" 2>&1; then
  echo "FAIL: post-recovery load run failed" >&2
  cat "$BIN/ctl2.log" >&2
  exit 1
fi
if ! grep '^  transactions' "$BIN/ctl2.log"; then
  echo "FAIL: no transaction summary in the second load run" >&2
  cat "$BIN/ctl2.log" >&2
  exit 1
fi

echo "restart smoke OK"
