#!/usr/bin/env bash
# Live-throughput perf smoke: start the 12-replica loopback topology with
# the WAL on (fsync: interval — the deployment-recommended group-commit
# mode PERFORMANCE.md tracks), drive a closed-loop SmallBank mix through
# ahlctl, and write the measured tx/s + latency percentiles as a
# BENCH_live JSON row. When a baseline row exists, the run is gated:
# >LIVE_PERF_GATE percent throughput regression fails the script (exit 3,
# the same contract as shardsim -compare -gate).
#
# Environment knobs (all optional):
#   LIVE_PERF_TXS          transactions to measure       (default 3000)
#   LIVE_PERF_OUTSTANDING  closed-loop window            (default 128)
#   LIVE_PERF_JSON         output row path               (default BENCH_live_smoke.json)
#   LIVE_PERF_BASELINE     baseline row to gate against  (default BENCH_live_pr7.json)
#   LIVE_PERF_GATE         allowed regression, percent   (default 15; 0 disables)
#   LIVE_PERF_LABEL        label recorded in the row     (default live-smoke)
#   LIVE_PERF_OBS_DIR      observability artifact dir    (default BENCH_live_obs)
#
# After the measured run, while the cluster is still up, the script
# scrapes every replica's /metrics (plus node 0's /snapshot, /trace, and
# a 1s pprof CPU profile) into LIVE_PERF_OBS_DIR as a CI artifact, and
# fails if no replica reports a nonzero pbft_pipeline_occupancy_peak —
# a load run that never overlapped consensus instances means the
# pipeline (or its instrumentation) is broken.
#
# Run from the repository root.
set -euo pipefail

TXS="${LIVE_PERF_TXS:-3000}"
OUTSTANDING="${LIVE_PERF_OUTSTANDING:-128}"
OUT="${LIVE_PERF_JSON:-BENCH_live_smoke.json}"
BASELINE="${LIVE_PERF_BASELINE:-BENCH_live_pr7.json}"
GATE="${LIVE_PERF_GATE:-15}"
LABEL="${LIVE_PERF_LABEL:-live-smoke}"
OBS_DIR="${LIVE_PERF_OBS_DIR:-BENCH_live_obs}"

BIN="$(mktemp -d)"
DATA="$BIN/data"
TOPO="$BIN/topology.json"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$BIN"' EXIT INT TERM

# build_tool compiles one command into $BIN and refuses to continue on
# failure: a stale or missing binary must never masquerade as a perf
# result.
build_tool() {
  local pkg="$1" out="$2"
  if ! go build -o "$out" "$pkg"; then
    echo "FAIL: go build $pkg failed — refusing to run with a stale/missing binary" >&2
    exit 1
  fi
  if [ ! -x "$out" ]; then
    echo "FAIL: $out not produced by go build $pkg" >&2
    exit 1
  fi
}

# The perf topology mirrors examples/livecluster/topology.json (2 shards
# of 4 + reference committee of 4 + 1 client) but journals every replica
# with interval fsync, and uses its own port range so it can run next to
# the example cluster.
cat >"$TOPO" <<'EOF'
{
  "seed": 42,
  "variant": "ahl+",
  "batch_timeout_ms": 20,
  "fsync": "interval",
  "shards": [
    [
      {"id": 0, "addr": "127.0.0.1:7200", "metrics_addr": "127.0.0.1:7240"},
      {"id": 1, "addr": "127.0.0.1:7201", "metrics_addr": "127.0.0.1:7241"},
      {"id": 2, "addr": "127.0.0.1:7202", "metrics_addr": "127.0.0.1:7242"},
      {"id": 3, "addr": "127.0.0.1:7203", "metrics_addr": "127.0.0.1:7243"}
    ],
    [
      {"id": 4, "addr": "127.0.0.1:7210", "metrics_addr": "127.0.0.1:7250"},
      {"id": 5, "addr": "127.0.0.1:7211", "metrics_addr": "127.0.0.1:7251"},
      {"id": 6, "addr": "127.0.0.1:7212", "metrics_addr": "127.0.0.1:7252"},
      {"id": 7, "addr": "127.0.0.1:7213", "metrics_addr": "127.0.0.1:7253"}
    ]
  ],
  "reference": [
    {"id": 8, "addr": "127.0.0.1:7220", "metrics_addr": "127.0.0.1:7260"},
    {"id": 9, "addr": "127.0.0.1:7221", "metrics_addr": "127.0.0.1:7261"},
    {"id": 10, "addr": "127.0.0.1:7222", "metrics_addr": "127.0.0.1:7262"},
    {"id": 11, "addr": "127.0.0.1:7223", "metrics_addr": "127.0.0.1:7263"}
  ],
  "clients": [
    {"id": 12, "addr": "127.0.0.1:7230"}
  ]
}
EOF

echo "== building ahlnode + ahlctl"
build_tool ./cmd/ahlnode "$BIN/ahlnode"
build_tool ./cmd/ahlctl "$BIN/ahlctl"

echo "== starting 12 replicas (WAL on, fsync=interval) under $DATA"
for id in 0 1 2 3 4 5 6 7 8 9 10 11; do
  "$BIN/ahlnode" -topo "$TOPO" -id "$id" -data "$DATA" 2>"$BIN/node$id.log" &
  PIDS+=("$!")
done
sleep 1

echo "== driving $TXS transactions (30% cross-shard, window $OUTSTANDING)"
GATE_ARGS=()
if [ "$GATE" != "0" ] && [ -f "$BASELINE" ]; then
  GATE_ARGS=(-compare "$BASELINE" -gate "$GATE")
  echo "== gating against $BASELINE (allowed regression ${GATE}%)"
fi
code=0
"$BIN/ahlctl" load -topo "$TOPO" -accounts 32 -txs "$TXS" -outstanding "$OUTSTANDING" \
  -cross 0.3 -timeout 300s -label "$LABEL" -json "$OUT" "${GATE_ARGS[@]}" \
  2>"$BIN/ctl.log" || code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: live perf run failed (exit $code; 3 = regression gate)" >&2
  cat "$BIN/ctl.log" >&2
  exit "$code"
fi

# Consistency assertion through the streaming query layer: the load run
# seeded 32 accounts with 1,000,000 each and transfers only move money,
# so a height-consistent conservation sweep must account for exactly
# 32,000,000 — anything else means a cross-shard read anomaly (or lost
# money). Exit 4 is ahlctl's -expect mismatch code.
echo "== conservation query (expect total 32000000)"
code=0
"$BIN/ahlctl" query -topo "$TOPO" -expect 32000000 -timeout 60s \
  2>"$BIN/query.log" | tee "$BIN/query.out" || code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: conservation query failed (exit $code; 4 = total mismatch)" >&2
  cat "$BIN/query.log" >&2
  exit "$code"
fi

# Flight-recorder capture: the cluster is still running, so pull every
# replica's /metrics, node 0's JSON snapshot + trace, and a short pprof
# CPU profile into the artifact dir, then assert the load actually
# overlapped consensus instances (nonzero pipeline-occupancy peak).
echo "== capturing observability artifacts into $OBS_DIR"
rm -rf "$OBS_DIR"
mkdir -p "$OBS_DIR"
occupancy_seen=0
for id in 0 1 2 3 4 5 6 7 8 9 10 11; do
  case "$id" in
    [0-3]) maddr="127.0.0.1:724$id" ;;
    [4-7]) maddr="127.0.0.1:725$((id - 4))" ;;
    *)     maddr="127.0.0.1:726$((id - 8))" ;;
  esac
  if ! curl -fsS "http://$maddr/metrics" >"$OBS_DIR/node$id.metrics.txt"; then
    echo "FAIL: /metrics unreachable on node $id ($maddr)" >&2
    exit 1
  fi
  peak="$(awk '$1 == "pbft_pipeline_occupancy_peak" {print $2}' "$OBS_DIR/node$id.metrics.txt")"
  if [ -n "$peak" ] && [ "$peak" -gt 0 ] 2>/dev/null; then
    occupancy_seen=1
  fi
done
curl -fsS "http://127.0.0.1:7240/snapshot" >"$OBS_DIR/node0.snapshot.json"
curl -fsS "http://127.0.0.1:7240/trace" >"$OBS_DIR/node0.trace.json"
curl -fsS "http://127.0.0.1:7240/debug/pprof/profile?seconds=1" >"$OBS_DIR/node0.cpu.pprof"
"$BIN/ahlctl" scrape -topo "$TOPO" | tee "$OBS_DIR/scrape.txt"
if [ "$occupancy_seen" -ne 1 ]; then
  echo "FAIL: no replica reported pbft_pipeline_occupancy_peak > 0 under load" >&2
  exit 1
fi

echo "live perf smoke OK ($OUT; observability artifacts in $OBS_DIR)"
