// Package repro is a from-scratch Go reproduction of "Towards Scaling
// Blockchain Systems via Sharding" (Dang, Dinh, Loghin, Chang, Lin, Ooi —
// SIGMOD 2019): a TEE-assisted, sharded, permissioned blockchain.
//
// The facade re-exports the system's main entry points:
//
//   - NewSystem builds a complete sharded deployment (shard committees
//     running the AHL+ consensus family, an optional BFT reference
//     committee coordinating cross-shard 2PC/2PL transactions, client
//     gateways) on a deterministic discrete-event simulator standing in
//     for the paper's 100-server cluster / 1,400-node GCP testbed.
//   - RunExperiment regenerates any table or figure from the paper's
//     evaluation; see DESIGN.md for the experiment index.
//
// Quick start:
//
//	sys := repro.NewSystem(repro.SystemConfig{
//	    Seed: 1, Shards: 3, ShardSize: 4, RefSize: 4,
//	    Variant: repro.VariantAHLPlus, Clients: 1, SendReplies: true,
//	})
//	sys.Seed(100, 1000) // 100 SmallBank accounts, balance 1000
//	d := sys.PaymentDTx("tx1", "acc1", "acc2", 50)
//	sys.Client(0).SubmitDistributed(d, func(r repro.TxResult) {
//	    fmt.Println(r.TxID, r.Committed, r.Latency)
//	})
//	sys.Run(30 * time.Second)
//
// See examples/ for runnable programs and internal/bench for the full
// benchmark harness.
package repro

import (
	"io"

	"repro/internal/bench"
	"repro/internal/chaincode"
	"repro/internal/chaincode/shardlib"
	"repro/internal/consensus/pbft"
	"repro/internal/core"
	"repro/internal/txn"
)

// System is a running sharded blockchain deployment.
type System = core.System

// SystemConfig configures a deployment.
type SystemConfig = core.Config

// Environment selects LAN-cluster or GCP-style networking.
type Environment = core.Environment

// DTx describes a distributed (cross-shard) transaction.
type DTx = txn.DTx

// TxOp is one shard's part of a distributed transaction.
type TxOp = txn.Op

// TxResult reports a completed transaction to the submitting client.
type TxResult = txn.Result

// Client is a client gateway attached to a System.
type Client = txn.Client

// Variant selects the consensus protocol of each committee.
type Variant = pbft.Variant

// The consensus variants of §4.1, in ablation order.
const (
	VariantHL      = pbft.VariantHL
	VariantAHL     = pbft.VariantAHL
	VariantAHLOpt1 = pbft.VariantAHLOpt1
	VariantAHLPlus = pbft.VariantAHLPlus
	VariantAHLR    = pbft.VariantAHLR
)

// ReshardMode selects the §5.3 reconfiguration strategy.
type ReshardMode = core.ReshardMode

// EpochConfig configures the recurring §5.3 epoch loop
// (System.EnableEpochs): every Interval the beacon locks a fresh rnd and
// the batched node transition runs.
type EpochConfig = core.EpochConfig

// ReshardConfig tunes one reconfiguration (batch size, state-transfer
// costs).
type ReshardConfig = core.ReshardConfig

// The Figure 12 strategies.
const (
	ReshardSwapAll   = core.ReshardSwapAll
	ReshardSwapBatch = core.ReshardSwapBatch
)

// NewSystem builds and wires a sharded blockchain deployment.
func NewSystem(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// The §6.4 usability extensions: write chaincode logic once against the
// KV interface, transform it with AutoShard, and submit logical
// transactions through a Router that hides sharding and coordination.

// Chaincode is a deterministic smart contract installable on shards via
// SystemConfig.ExtraShardCodes.
type Chaincode = chaincode.Chaincode

// KV is the state interface chaincode business logic is written against.
type KV = chaincode.KV

// Logic is single-shard chaincode business logic over KV.
type Logic = chaincode.Logic

// AutoShard transforms single-shard chaincode logic into a sharded
// chaincode exposing derived prepare/commit/abort functions (§6.4's
// automatic transformation).
func AutoShard(name string, logic Logic) Chaincode { return shardlib.AutoShard(name, logic) }

// Router is the §6.4 transparent client: it decomposes logical
// transactions, batches per-shard sub-calls, and picks the single-shard
// fast path or the distributed protocol automatically.
type Router = txn.Router

// SubCall is one shard-local piece of a decomposed logical invocation.
type SubCall = txn.SubCall

// SplitFunc decomposes a logical function's arguments into SubCalls.
type SplitFunc = txn.SplitFunc

// Names of the automatically transformed benchmark chaincodes installed
// on every shard.
const (
	AutoSmallBank = core.AutoSmallBank
	AutoKVStore   = core.AutoKVStore
)

// AccountName formats the canonical benchmark account name for index i
// (the accounts System.Seed creates).
func AccountName(i int) string { return core.Account(i) }

// BenchScale controls experiment sizes.
type BenchScale = bench.Scale

// Experiment scales, smallest to largest. ScaleSmoke is the CI tier;
// ScaleFull reaches the paper's N=79 committees and 972-node systems.
var (
	ScaleSmoke    = bench.Smoke
	ScaleQuick    = bench.Quick
	ScaleStandard = bench.Standard
	ScaleFull     = bench.Full
)

// RunExperiment regenerates the given paper table/figure (e.g. "fig8",
// "table2", "eq1") at the given scale, writing the result to w. It returns
// false if the experiment id is unknown.
func RunExperiment(id string, s BenchScale, w io.Writer) bool {
	e, ok := bench.Get(id)
	if !ok {
		return false
	}
	e.Run(s).Fprint(w)
	return true
}

// Experiments lists all experiment ids with their titles.
func Experiments() map[string]string {
	out := make(map[string]string)
	for _, e := range bench.All() {
		out[e.ID] = e.Title
	}
	return out
}
