package repro

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its artifact at quick scale; run the CLI
// (cmd/shardsim) with -scale full for paper-scale sweeps.
//
//	go test -bench=. -benchmem
//
// The reported ns/op is the wall-clock cost of regenerating the artifact
// once; the artifact itself is written to benchmark output via b.Log at
// verbosity, and recorded in EXPERIMENTS.md.

import (
	"io"
	"strings"
	"testing"

	"repro/internal/bench"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		t := e.Run(bench.Quick())
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
		if i == 0 && testing.Verbose() {
			var sb strings.Builder
			t.Fprint(&sb)
			b.Log("\n" + sb.String())
		}
		_ = io.Discard
	}
}

func BenchmarkExpTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkExpTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkExpTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkExpFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkExpFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkExpFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkExpFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkExpFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkExpFig11x(b *testing.B) { benchExperiment(b, "fig11x") }
func BenchmarkExpFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkExpFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkExpFig13x(b *testing.B) { benchExperiment(b, "fig13x") }
func BenchmarkExpFig13r(b *testing.B) { benchExperiment(b, "fig13r") }
func BenchmarkExpFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkExpFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkExpFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkExpFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkExpFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkExpFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkExpFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkExpFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkExpFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkExpEq1(b *testing.B)    { benchExperiment(b, "eq1") }
func BenchmarkExpEq2(b *testing.B)    { benchExperiment(b, "eq2") }
func BenchmarkExpEq3(b *testing.B)    { benchExperiment(b, "eq3") }
