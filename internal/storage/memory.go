package storage

import "repro/internal/wire"

// Memory is the in-memory Backend: the same append/snapshot/recover
// contract as the disk engine with RAM for stable storage. It exists for
// tests and for embedding scenarios that want restart-within-process
// semantics without touching the filesystem; the deterministic simulator
// uses no backend at all.
//
// Records and snapshots are stored in their wire encoding, so a Memory
// backend exercises the exact codec path the disk engine persists and is
// isolated from callers mutating blocks after Append returns.
type Memory struct {
	records [][]byte // encoded WAL tail, oldest first
	snap    []byte   // encoded body of the latest snapshot, nil if none
	mark    int      // records appended before the latest snapshot
	closed  bool
	enc     wire.Encoder
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Append implements Backend.
func (m *Memory) Append(rec Record) error {
	if m.closed {
		return ErrClosed
	}
	m.enc.Reset()
	if err := encodeRecord(&m.enc, rec); err != nil {
		return err
	}
	m.records = append(m.records, append([]byte(nil), m.enc.Bytes()...))
	return nil
}

// SaveSnapshot implements Backend.
func (m *Memory) SaveSnapshot(snap Snapshot) error {
	if m.closed {
		return ErrClosed
	}
	m.enc.Reset()
	encodeSnapshotBody(&m.enc, snap, 0, 0)
	m.snap = append([]byte(nil), m.enc.Bytes()...)
	m.mark = len(m.records)
	return nil
}

// Recover implements Backend.
func (m *Memory) Recover() (*Snapshot, []Record, error) {
	if m.closed {
		return nil, nil, ErrClosed
	}
	var snap *Snapshot
	if m.snap != nil {
		s, _, _, err := decodeSnapshotBody(m.snap)
		if err != nil {
			return nil, nil, err
		}
		snap = &s
	}
	tail := make([]Record, 0, len(m.records)-m.mark)
	for _, raw := range m.records[m.mark:] {
		rec, err := decodeRecord(raw)
		if err != nil {
			return nil, nil, err
		}
		tail = append(tail, rec)
	}
	return snap, tail, nil
}

// TruncateBefore implements Backend.
func (m *Memory) TruncateBefore(uint64) error {
	if m.closed {
		return ErrClosed
	}
	m.records = append([][]byte(nil), m.records[m.mark:]...)
	m.mark = 0
	return nil
}

// Sync implements Backend.
func (m *Memory) Sync() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.closed = true
	return nil
}
