package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWALTornWriteEveryOffset is the torn-write property test: a WAL cut
// off at EVERY byte offset must either recover cleanly to a record prefix
// or fail with a typed corruption error — never panic, and never return
// records that were not a prefix of what was appended.
//
// Cuts in the final segment model a crash mid-write, so they must succeed
// with the longest whole-frame prefix and truncate the rest. A shortened
// non-final segment with records after it is a mid-log gap — the recovered
// history would not be a prefix — so those cuts must surface ErrCorrupt
// (mid-frame cuts via the CRC/length checks, exact-frame-boundary cuts via
// the record-ordinal continuity check). When everything after the cut
// segment is empty the cut IS the log's tail, and the usual torn-tail
// rules apply.
func TestWALTornWriteEveryOffset(t *testing.T) {
	master := t.TempDir()
	d, err := OpenDisk(master, DiskOptions{SegmentBytes: 300})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(8)
	for _, r := range recs {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	segs, err := listNumbered(filepath.Join(master, "wal"), walSuffix, 10)
	if err != nil {
		t.Fatalf("list segments: %v", err)
	}
	if len(segs) < 2 {
		t.Fatalf("want a multi-segment log, got %d segment(s)", len(segs))
	}

	// frameEnds[i] = number of whole records contained in the first i
	// bytes of the concatenated log, per segment.
	type segInfo struct {
		name   string
		data   []byte
		counts []int        // counts[off] = whole records ending at or before off
		ends   map[int]bool // offsets that fall exactly between frames
	}
	var infos []segInfo
	totalRecords := 0
	for _, s := range segs {
		name := filepath.Join(master, "wal", segName(s))
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		counts := make([]int, len(data)+1)
		ends := map[int]bool{0: true}
		n, off := 0, 0
		for off < len(data) {
			sz, _, _, err := parseFrame(data[off:])
			if err != nil {
				t.Fatalf("master log unparseable at %s+%d: %v", filepath.Base(name), off, err)
			}
			for i := off + 1; i <= off+sz; i++ {
				counts[i] = n
			}
			off += sz
			n++
			counts[off] = n
			ends[off] = true
		}
		infos = append(infos, segInfo{name: name, data: data, counts: counts, ends: ends})
		totalRecords += n
	}

	recordsBefore := 0
	for si, info := range infos {
		final := si == len(infos)-1
		for off := 0; off < len(info.data); off++ {
			dir := t.TempDir()
			copyTree(t, master, dir)
			seg := filepath.Join(dir, "wal", filepath.Base(info.name))
			if err := os.Truncate(seg, int64(off)); err != nil {
				t.Fatalf("truncate copy: %v", err)
			}
			// Segments after the cut one would make the cut mid-log; to
			// model a genuine torn tail, delete them.
			if final {
				checkTornTail(t, dir, recs[:recordsBefore+info.counts[off]], off)
			} else {
				for _, later := range infos[si+1:] {
					os.Remove(filepath.Join(dir, "wal", filepath.Base(later.name)))
				}
				checkTornTail(t, dir, recs[:recordsBefore+info.counts[off]], off)

				// With the later segments still present: if any of them
				// holds a record the result would not be a prefix, so the
				// open must fail typed. If they are all empty the cut is
				// in effect the log tail — a boundary cut recovers the
				// prefix cleanly, a mid-frame cut is still reported as
				// corruption because a torn write cannot land mid-log.
				dir2 := t.TempDir()
				copyTree(t, master, dir2)
				if err := os.Truncate(filepath.Join(dir2, "wal", filepath.Base(info.name)), int64(off)); err != nil {
					t.Fatalf("truncate copy: %v", err)
				}
				laterRecords := totalRecords - recordsBefore - info.counts[len(info.data)]
				if laterRecords == 0 && info.ends[off] {
					checkTornTail(t, dir2, recs[:recordsBefore+info.counts[off]], off)
				} else if _, err := OpenDisk(dir2, DiskOptions{SegmentBytes: 300}); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("cut at %s+%d with later segments: err=%v, want ErrCorrupt",
						filepath.Base(info.name), off, err)
				}
			}
		}
		recordsBefore += info.counts[len(info.data)]
	}
}

// TestWALUnsyncedSuffixWritebackDamage models what an OS or power crash
// can leave behind under fsync=interval/off: the unsynced suffix's pages
// are written back out of order, so a damaged frame sits in the MIDDLE of
// the final segment with intact frames after it. That damage is a crash
// artifact, not corruption — recovery must truncate at the first bad
// frame (dropping only records that were never acknowledged as durable;
// peers re-supply them), boot cleanly, and accept new appends. The same
// damage in a non-final segment cannot be a crash artifact (segments are
// synced when they roll, under every fsync policy) and stays fatal; that
// side is covered by TestDiskMidLogCorruption and the every-offset test
// above.
func TestWALUnsyncedSuffixWritebackDamage(t *testing.T) {
	master := t.TempDir()
	d, err := OpenDisk(master, DiskOptions{Fsync: FsyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(6)
	for _, r := range recs {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	d.Abandon() // crash: nothing explicitly synced

	seg := filepath.Join(master, "wal", segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	var starts []int
	off := 0
	for off < len(data) {
		n, _, _, err := parseFrame(data[off:])
		if err != nil {
			t.Fatalf("master segment unparseable at %d: %v", off, err)
		}
		starts = append(starts, off)
		off += n
	}
	starts = append(starts, off)
	if len(starts) != len(recs)+1 {
		t.Fatalf("parsed %d frames, want %d", len(starts)-1, len(recs))
	}

	// Damage frame 3 of 6: two whole intact frames follow it.
	const target = 3
	cases := []struct {
		name  string
		wreck func(frame []byte)
	}{
		// A whole data page that never reached the platter reads as
		// zeros under the extended file size.
		{"lost-page", func(frame []byte) {
			for i := range frame {
				frame[i] = 0
			}
		}},
		// A garbled partial write: the frame is present but its CRC no
		// longer matches.
		{"garbled-payload", func(frame []byte) { frame[8] ^= 0x40 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, master, dir)
			path := filepath.Join(dir, "wal", segName(0))
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read copy: %v", err)
			}
			tc.wreck(b[starts[target]:starts[target+1]])
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatalf("write damage: %v", err)
			}
			// Must boot by truncating at the damage — never ErrCorrupt —
			// and the repair must survive a reopen round-trip.
			checkTornTail(t, dir, recs[:target], starts[target])
		})
	}
}

// checkTornTail opens the store at dir expecting a clean recovery of
// exactly want, and that a subsequent append-reopen round-trip works (the
// torn bytes really were truncated away).
func checkTornTail(t *testing.T, dir string, want []Record, off int) {
	t.Helper()
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 300})
	if err != nil {
		t.Fatalf("open after cut at %d: %v", off, err)
	}
	_, tail, err := d.Recover()
	if err != nil {
		t.Fatalf("recover after cut at %d: %v", off, err)
	}
	if len(tail) != len(want) {
		t.Fatalf("cut at %d: recovered %d records, want prefix of %d", off, len(tail), len(want))
	}
	wantRecords(t, tail, want)
	probe := Record{Kind: KindStage, Stage: []byte{0xAB}}
	if err := d.Append(probe); err != nil {
		t.Fatalf("append after cut at %d: %v", off, err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d, err = OpenDisk(dir, DiskOptions{SegmentBytes: 300})
	if err != nil {
		t.Fatalf("reopen after cut at %d: %v", off, err)
	}
	_, tail, err = d.Recover()
	if err != nil {
		t.Fatalf("re-recover after cut at %d: %v", off, err)
	}
	if len(tail) != len(want)+1 {
		t.Fatalf("cut at %d: post-append recovery has %d records, want %d", off, len(tail), len(want)+1)
	}
	d.Close()
}

func segName(seg uint64) string {
	return fmt.Sprintf("%08d%s", seg, walSuffix)
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.OpenFile(target, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy tree: %v", err)
	}
}
