// Package storage is the durability layer under a live replica: a narrow
// Backend interface with two engines behind it — a trivial in-memory one
// (the simulator's path, and the contract-test reference) and a persistent
// one built on a length-prefixed, CRC-checksummed, fsync-on-commit
// write-ahead log plus periodic state snapshot files.
//
// The protocol layers write through the interface at three points:
//
//   - a pbft replica appends every decided batch before executing it;
//   - the transaction manager appends opaque 2PC stage-transition records
//     (write-ahead of acting on them);
//   - at every stable checkpoint the replica saves a Snapshot — world
//     state, execution dedup set, checkpoint certificate, and the
//     manager's live stage state — after which the WAL prefix it covers
//     is truncated.
//
// Recovery is the inverse: load the newest snapshot that passes its CRC
// (falling back to the previous one on corruption), then replay the WAL
// tail in append order, truncating the final segment at the first frame
// crash damage made unreadable. Anything decided
// while the process was down is fetched from peers by the existing pbft
// state-sync/replay protocols — the backend only has to bring the node
// back to a state the committee once agreed on.
package storage

import (
	"errors"

	"repro/internal/chain"
)

// Kind tags a WAL record.
type Kind byte

// The WAL record kinds.
const (
	// KindBlock is a decided batch, appended before execution.
	KindBlock Kind = 1
	// KindStage is an opaque 2PC stage-transition record owned by the
	// transaction layer; the backend never interprets its payload.
	KindStage Kind = 2
)

// Record is one WAL entry.
type Record struct {
	Kind Kind
	// Seq is the consensus sequence number (KindBlock only).
	Seq uint64
	// Block is the decided batch (KindBlock only).
	Block *chain.Block
	// Stage is the opaque stage payload (KindStage only).
	Stage []byte
}

// Snapshot is the recovery root a replica persists at a stable
// checkpoint. State and the id sets are interpreted by the replica; Cert
// and Stage are opaque owner-encoded blobs (the checkpoint certificate
// and the transaction manager's live stage state).
type Snapshot struct {
	// Seq is the stable checkpoint sequence number Cert covers.
	Seq uint64
	// ExecutedThrough is the highest decided sequence State reflects. It
	// can exceed Seq: a checkpoint quorum may form after the replica has
	// executed further blocks that happened not to mutate state (only
	// deduplicated or failed transactions), and the capture always
	// reflects everything executed so far. Recovery must resume replay at
	// ExecutedThrough+1, not Seq+1. Zero means "same as Seq".
	ExecutedThrough uint64
	// View is the replica's view at capture time.
	View uint64
	// State is the world state.
	State chain.Snapshot
	// ExecIDs is the executed-transaction dedup set at Seq, sorted.
	ExecIDs []uint64
	// OKIDs is the subset of ExecIDs whose execution succeeded, sorted.
	OKIDs []uint64
	// FailIDs is the subset of ExecIDs that executed locally with an
	// error, sorted. Ids in ExecIDs but in neither OKIDs nor FailIDs were
	// learned through a network snapshot, so this replica never observed
	// their result — the three-way split survives restart because it
	// drives client re-replies (answered only for locally-known results).
	FailIDs []uint64
	// Cert is the checkpoint certificate that made Seq stable, encoded by
	// the consensus layer.
	Cert []byte
	// Stage is the transaction manager's serialized in-flight 2PC state.
	Stage []byte
}

// Typed failures. Recovery code switches on these; they are never
// panics.
var (
	// ErrCorrupt reports WAL or snapshot bytes that fail structural
	// validation (bad magic, CRC mismatch, or an undecodable record) at a
	// position that cannot be explained as a torn final write.
	ErrCorrupt = errors.New("storage: corrupt data")
	// ErrClosed reports use of a closed backend.
	ErrClosed = errors.New("storage: backend closed")
)

// Backend is the durability interface. Implementations are not
// goroutine-safe: the live runtime calls them from the node's
// single-threaded engine loop (plus one recovery pass before it starts).
type Backend interface {
	// Append durably adds one record to the WAL. When the backend's
	// commit policy is fsync-on-commit the record has reached stable
	// storage when Append returns.
	Append(rec Record) error

	// SaveSnapshot durably replaces the recovery root. After it returns,
	// Recover will prefer this snapshot, and WAL records appended before
	// the call are no longer needed for recovery (TruncateBefore may
	// reclaim them).
	SaveSnapshot(snap Snapshot) error

	// Recover loads the newest valid snapshot (nil if none was ever
	// saved) and the WAL tail to replay after it, in append order. Crash
	// damage in the log's unsynced suffix (a torn tail, or a bad frame
	// the OS wrote back out of order) is truncated away along with what
	// followed it, not returned; a snapshot that fails
	// validation is skipped in favor of its predecessor. The returned
	// error is non-nil only when the data is damaged beyond the
	// torn-tail/fallback rules (ErrCorrupt) or the store is unreadable.
	Recover() (*Snapshot, []Record, error)

	// TruncateBefore reclaims WAL storage made obsolete by the latest
	// saved snapshot. seq is advisory (the snapshot's sequence number,
	// for diagnostics); the truncation point is the position SaveSnapshot
	// recorded.
	TruncateBefore(seq uint64) error

	// Sync flushes any buffered writes to stable storage.
	Sync() error

	// Close flushes and releases the backend.
	Close() error
}
