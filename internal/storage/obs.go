package storage

import "repro/internal/obs"

// stallThreshold classifies an fsync as a stall: device-level hiccups
// (queue saturation, FTL garbage collection) show up as syncs orders of
// magnitude above the norm, and the stall counter makes them visible
// without staring at the latency histogram's tail.
const stallThreshold = 100e6 // ns

// Metrics is the durable store's observability sink. All methods are
// nil-receiver-safe, so an uninstrumented Disk (the default, and every
// simulator run) pays only a nil check.
type Metrics struct {
	appendLatency *obs.Histogram
	fsyncLatency  *obs.Histogram
	fsyncs        *obs.Counter
	stalls        *obs.Counter
	segmentRolls  *obs.Counter
	snapshotSave  *obs.Histogram
}

// NewMetrics registers the storage metric family on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		appendLatency: reg.Histogram("storage_wal_append_latency"),
		fsyncLatency:  reg.Histogram("storage_wal_fsync_latency"),
		fsyncs:        reg.Counter("storage_wal_fsync_total"),
		stalls:        reg.Counter("storage_wal_stall_total"),
		segmentRolls:  reg.Counter("storage_wal_segment_rolls_total"),
		snapshotSave:  reg.Histogram("storage_snapshot_save_latency"),
	}
}

func (m *Metrics) observeAppend(ns int64) {
	if m == nil {
		return
	}
	m.appendLatency.Observe(ns)
}

func (m *Metrics) observeFsync(ns int64) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncLatency.Observe(ns)
	if ns >= stallThreshold {
		m.stalls.Inc()
	}
}

func (m *Metrics) observeRoll() {
	if m == nil {
		return
	}
	m.segmentRolls.Inc()
}

func (m *Metrics) observeSnapshot(ns int64) {
	if m == nil {
		return
	}
	m.snapshotSave.Observe(ns)
}
