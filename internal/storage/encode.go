package storage

import (
	"fmt"

	"repro/internal/wire"
)

// On-disk encodings for WAL records and snapshot bodies, built from the
// shared internal/wire helpers so blocks and transactions have exactly one
// byte representation whether they travel over TCP or land on disk. Both
// backends use these: the disk engine for real files, the memory engine to
// isolate stored records from later caller mutation (and to keep the two
// engines behaviorally interchangeable under the contract tests).

func encodeRecord(e *wire.Encoder, rec Record) error {
	e.Byte(byte(rec.Kind))
	switch rec.Kind {
	case KindBlock:
		e.Uvarint(rec.Seq)
		wire.PutBlock(e, rec.Block)
	case KindStage:
		e.ByteSlice(rec.Stage)
	default:
		return fmt.Errorf("storage: append of unknown record kind %d", rec.Kind)
	}
	return nil
}

func decodeRecord(data []byte) (Record, error) {
	d := wire.NewDecoder(data)
	var rec Record
	rec.Kind = Kind(d.Byte())
	switch rec.Kind {
	case KindBlock:
		rec.Seq = d.Uvarint()
		rec.Block = wire.Block(d)
	case KindStage:
		rec.Stage = d.ByteSlice()
	default:
		return Record{}, fmt.Errorf("%w: unknown WAL record kind %d", ErrCorrupt, rec.Kind)
	}
	if err := d.Finish(); err != nil {
		return Record{}, fmt.Errorf("%w: WAL record: %v", ErrCorrupt, err)
	}
	return rec, nil
}

// encodeSnapshotBody appends the snapshot payload. segBase is the index of
// the WAL segment opened alongside this snapshot: recovery replays only
// segments >= segBase, and truncation may delete everything below it.
// ord is the log ordinal the first record after the snapshot will carry;
// replay verifies the tail's ordinals run contiguously from it, which is
// what turns a missing or shortened middle segment into a detected
// corruption instead of a silently shorter history.
func encodeSnapshotBody(e *wire.Encoder, snap Snapshot, segBase, ord uint64) {
	e.Uvarint(segBase)
	e.Uvarint(ord)
	e.Uvarint(snap.Seq)
	e.Uvarint(snap.ExecutedThrough)
	e.Uvarint(snap.View)
	wire.PutSnapshot(e, snap.State)
	wire.PutUint64s(e, snap.ExecIDs)
	wire.PutUint64s(e, snap.OKIDs)
	wire.PutUint64s(e, snap.FailIDs)
	e.ByteSlice(snap.Cert)
	e.ByteSlice(snap.Stage)
}

func decodeSnapshotBody(data []byte) (Snapshot, uint64, uint64, error) {
	d := wire.NewDecoder(data)
	segBase := d.Uvarint()
	ord := d.Uvarint()
	snap := Snapshot{
		Seq:             d.Uvarint(),
		ExecutedThrough: d.Uvarint(),
		View:            d.Uvarint(),
		State:           wire.Snapshot(d),
		ExecIDs:         wire.Uint64s(d),
		OKIDs:           wire.Uint64s(d),
		FailIDs:         wire.Uint64s(d),
		Cert:            d.ByteSlice(),
		Stage:           d.ByteSlice(),
	}
	if err := d.Finish(); err != nil {
		return Snapshot{}, 0, 0, fmt.Errorf("%w: snapshot body: %v", ErrCorrupt, err)
	}
	return snap, segBase, ord, nil
}
