package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
)

func testBlock(seq uint64) *chain.Block {
	return &chain.Block{
		Header: chain.Header{
			Height:   seq,
			PrevHash: blockcrypto.Hash([]byte{byte(seq)}),
			TxRoot:   blockcrypto.Hash([]byte{byte(seq), 1}),
			Proposer: blockcrypto.KeyID(seq % 4),
			View:     seq / 7,
		},
		Txs: []chain.Tx{
			{ID: seq*10 + 1, Chaincode: "smallbank-sharded", Fn: "pay", Args: []string{"a", "b", "5"}, Client: 9},
			{ID: seq*10 + 2, Chaincode: "kvstore", Fn: "put", Args: []string{"k"}},
		},
	}
}

func testRecords(n int) []Record {
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			out = append(out, Record{Kind: KindStage, Stage: []byte{byte(i), 0xEE, byte(i >> 4)}})
		} else {
			out = append(out, Record{Kind: KindBlock, Seq: uint64(i + 1), Block: testBlock(uint64(i + 1))})
		}
	}
	return out
}

func testSnapshot(seq uint64) Snapshot {
	return Snapshot{
		Seq: seq,
		// Deliberately ahead of Seq: execution past the checkpoint must
		// round-trip, it is what recovery resumes from.
		ExecutedThrough: seq + 2,
		View:            2,
		State: chain.Snapshot{
			KV:      map[string][]byte{"c_alice": []byte("100"), "c_bob": []byte("42")},
			Version: seq * 3,
			Digest:  blockcrypto.Hash([]byte{byte(seq), 7}),
		},
		ExecIDs: []uint64{11, 12, 21},
		OKIDs:   []uint64{11, 21},
		FailIDs: []uint64{12},
		Cert:    []byte{1, 2, 3},
		Stage:   []byte{4, 5},
	}
}

func wantRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func wantSnapshot(t *testing.T, got *Snapshot, want Snapshot) {
	t.Helper()
	if got == nil {
		t.Fatal("recovered nil snapshot")
	}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("snapshot mismatch:\n got %+v\nwant %+v", *got, want)
	}
}

// contract drives any Backend through append → snapshot → append →
// recover and checks the recovered tail is exactly what followed the
// snapshot. reopen rebuilds the backend between write and read phases
// (nil for engines without cross-instance persistence).
func contract(t *testing.T, open func(t *testing.T) Backend, reopen func(t *testing.T) Backend) {
	recs := testRecords(7)
	snap := testSnapshot(4)

	b := open(t)
	for _, r := range recs[:3] {
		if err := b.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := b.SaveSnapshot(snap); err != nil {
		t.Fatalf("save snapshot: %v", err)
	}
	if err := b.TruncateBefore(snap.Seq); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	for _, r := range recs[3:] {
		if err := b.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if reopen != nil {
		if err := b.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		b = reopen(t)
	}
	gotSnap, tail, err := b.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	wantSnapshot(t, gotSnap, snap)
	wantRecords(t, tail, recs[3:])
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := b.Append(recs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestMemoryContract(t *testing.T) {
	contract(t, func(t *testing.T) Backend { return NewMemory() }, nil)
}

func TestDiskContract(t *testing.T) {
	dir := t.TempDir()
	open := func(t *testing.T) Backend {
		d, err := OpenDisk(dir, DiskOptions{Logf: t.Logf})
		if err != nil {
			t.Fatalf("open disk: %v", err)
		}
		return d
	}
	contract(t, open, open)
}

func TestDiskEmptyRecover(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	snap, tail, err := d.Recover()
	if err != nil || snap != nil || len(tail) != 0 {
		t.Fatalf("empty recover = (%v, %v, %v), want (nil, empty, nil)", snap, tail, err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestDiskFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir, DiskOptions{Fsync: mode})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			recs := testRecords(4)
			for _, r := range recs {
				if err := d.Append(r); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			d, err = OpenDisk(dir, DiskOptions{Fsync: mode})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			_, tail, err := d.Recover()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			wantRecords(t, tail, recs)
			d.Close()
		})
	}
}

// TestDiskSegmentRollAndTruncate forces multi-segment logs with a tiny
// roll threshold and checks truncation deletes only segments below every
// retained snapshot's base.
func TestDiskSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	opts := DiskOptions{SegmentBytes: 256, Logf: t.Logf}
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(12)
	for _, r := range recs[:6] {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.SaveSnapshot(testSnapshot(6)); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := d.TruncateBefore(6); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	// Only one snapshot is retained, so truncation may reclaim everything
	// below its base; the log must still hold the tail.
	for _, r := range recs[6:] {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.SaveSnapshot(testSnapshot(12)); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := d.TruncateBefore(12); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	// Two snapshots retained: segments at or above the OLDER base must
	// survive so a fallback recovery can still replay.
	segs, err := listNumbered(d.walDir, walSuffix, 10)
	if err != nil {
		t.Fatalf("list segments: %v", err)
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments left after truncation")
	}
	if segs[0] < d.truncFloor() {
		t.Fatalf("segment %d survived below truncation floor %d", segs[0], d.truncFloor())
	}
	if base, ok := d.snapBases[6]; !ok {
		t.Fatal("older snapshot base not tracked")
	} else if segs[0] > base {
		t.Fatalf("oldest segment %d is above fallback snapshot base %d", segs[0], base)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d, err = OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	snap, tail, err := d.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	wantSnapshot(t, snap, testSnapshot(12))
	wantRecords(t, tail, nil)
	d.Close()
}

// TestDiskSnapshotCRCFallback damages the newest snapshot file and checks
// recovery falls back to the previous one and replays the WAL records
// that followed it — including the span the damaged snapshot covered.
func TestDiskSnapshotCRCFallback(t *testing.T) {
	dir := t.TempDir()
	opts := DiskOptions{SegmentBytes: 256, Logf: t.Logf}
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := testRecords(9)
	for _, r := range recs[:3] {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.SaveSnapshot(testSnapshot(3)); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, r := range recs[3:6] {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.SaveSnapshot(testSnapshot(6)); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := d.TruncateBefore(6); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	for _, r := range recs[6:] {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip one byte in the newest snapshot's body.
	newest := filepath.Join(dir, "snap", "0000000000000006.snap")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatalf("rewrite snapshot: %v", err)
	}

	d, err = OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("reopen after damage: %v", err)
	}
	snap, tail, err := d.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	wantSnapshot(t, snap, testSnapshot(3))
	wantRecords(t, tail, recs[3:])
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("damaged snapshot file not removed (stat err %v)", err)
	}
	d.Close()
}

// TestDiskAllSnapshotsCorrupt checks that when every snapshot fails
// validation the open reports ErrCorrupt rather than silently starting
// from an empty state.
func TestDiskAllSnapshotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.SaveSnapshot(testSnapshot(5)); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(dir, "snap", "0000000000000005.snap")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := OpenDisk(dir, DiskOptions{Logf: t.Logf}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with all snapshots corrupt: %v, want ErrCorrupt", err)
	}
}

// TestDiskMidLogCorruption flips a byte in a non-final segment: that is
// not explainable as a torn write, so the open must fail typed, not
// truncate.
func TestDiskMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	opts := DiskOptions{SegmentBytes: 200}
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, r := range testRecords(10) {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	segs, err := listNumbered(d.walDir, walSuffix, 10)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err %v)", segs, err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	first := filepath.Join(dir, "wal", "00000000.wal")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	if _, err := OpenDisk(dir, DiskOptions{SegmentBytes: 200, Logf: t.Logf}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log damage: %v, want ErrCorrupt", err)
	}
}
