package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/wire"
)

// Disk layout under the node's data directory:
//
//	<dir>/wal/00000000.wal   WAL segments, numbered, append-only
//	<dir>/snap/<seq>.snap    snapshot files, named by sequence number
//
// A WAL frame is [u32 length][u32 crc32c][payload]; the payload is one
// wire-encoded Record. Appends go to the highest segment; a segment rolls
// when it exceeds SegmentBytes, and SaveSnapshot always rolls so the new
// snapshot's replay range starts on a segment boundary (its segBase).
//
// A snapshot file is [8-byte magic][u32 bodyLen][u32 crc32c][body],
// written to a temp name, fsynced, renamed, and the directory fsynced —
// so a *.snap file is either complete or absent, and a bad CRC means
// damage after the fact, handled by falling back to the previous file.
//
// Crash damage: only the highest segment can hold unsynced bytes — roll
// syncs a segment before creating its successor under EVERY fsync policy
// (including FsyncOff), which is what confines crash damage to the final
// segment. A crash mid-append tears the tail; with fsync=interval/off an
// OS or power crash can additionally write the unsynced suffix's pages
// back out of order, leaving a bad frame ahead of intact ones. Recovery
// therefore truncates the final segment at the FIRST damaged frame, at
// any offset — the dropped records were never acknowledged as durable
// under those policies, and peers re-supply them — and fsyncs the repair.
// The same damage in a non-final segment, or a frame whose CRC passes but
// whose payload does not decode, cannot be a crash artifact and is
// reported as ErrCorrupt, never repaired silently.

const (
	walSuffix    = ".wal"
	snapSuffix   = ".snap"
	snapTmp      = ".tmp"
	maxFrameSize = 1 << 30
)

var (
	snapMagic = [8]byte{'A', 'H', 'L', 'S', 'N', 'A', 'P', 1}
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

// FsyncMode names a WAL commit policy.
type FsyncMode string

// The WAL fsync policies.
const (
	// FsyncAlways syncs after every append: a decided batch is on stable
	// storage before it executes. The default.
	FsyncAlways FsyncMode = "always"
	// FsyncInterval syncs at most once per interval; a crash can lose the
	// records appended since the last sync (peers re-supply them).
	FsyncInterval FsyncMode = "interval"
	// FsyncOff never syncs on append; the OS decides when data lands.
	// Benchmarks only. Segment rolls still sync (see roll), preserving
	// recovery's ability to tell crash damage from real corruption.
	FsyncOff FsyncMode = "off"
)

// DiskOptions tunes the persistent engine. The zero value gives
// fsync-always, 4 MiB segments, and two retained snapshots.
type DiskOptions struct {
	// SegmentBytes rolls a WAL segment once it exceeds this size.
	SegmentBytes int64
	// Fsync selects the commit policy (default FsyncAlways).
	Fsync FsyncMode
	// Interval is the maximum sync lag under FsyncInterval (default 50ms).
	Interval time.Duration
	// Keep is how many snapshot files to retain (default 2: the live one
	// plus a fallback for CRC damage).
	Keep int
	// Logf, when set, receives one-line recovery and damage notices.
	Logf func(format string, args ...any)
	// Metrics, when set, receives append/fsync/snapshot timings (see
	// NewMetrics). nil disables instrumentation.
	Metrics *Metrics
}

func (o *DiskOptions) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Disk is the persistent Backend. Open it with OpenDisk; the open itself
// performs the recovery scan (validating snapshots, truncating a torn WAL
// tail) so the writer starts on a clean log, and Recover returns the scan
// result.
type Disk struct {
	walDir  string
	snapDir string
	opts    DiskOptions

	cur      *os.File
	curSeg   uint64
	curSize  int64
	dirty    bool
	lastSync time.Time

	segBase   uint64            // replay floor recorded by the latest valid snapshot
	snapOrd   uint64            // log ordinal of the first record after that snapshot
	nextOrd   uint64            // ordinal the next Append will stamp
	snapBases map[uint64]uint64 // seq → segBase of every retained valid snapshot
	recSnap   *Snapshot
	recTail   []Record

	closed bool
	enc    wire.Encoder
	hdr    [8]byte
}

// OpenDisk opens (creating if needed) the durable store rooted at dir and
// runs the recovery scan. It fails with an error wrapping ErrCorrupt when
// the data on disk is damaged beyond the torn-tail and snapshot-fallback
// rules.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	opts.fill()
	d := &Disk{
		walDir:   filepath.Join(dir, "wal"),
		snapDir:  filepath.Join(dir, "snap"),
		opts:     opts,
		lastSync: time.Now(),
	}
	for _, p := range []string{d.walDir, d.snapDir} {
		if err := os.MkdirAll(p, 0o755); err != nil {
			return nil, fmt.Errorf("storage: create %s: %w", p, err)
		}
	}
	if err := d.recoverSnapshots(); err != nil {
		return nil, err
	}
	if err := d.recoverWAL(); err != nil {
		return nil, err
	}
	if err := d.openWriter(); err != nil {
		return nil, err
	}
	return d, nil
}

// listNumbered returns the numeric values of dir entries named
// <number><suffix>, sorted ascending. Snapshot names are hex, WAL names
// decimal; base selects which. Stray files (temp files, editors) are
// ignored.
func listNumbered(dir, suffix string, base int) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: read %s: %w", dir, err)
	}
	var out []uint64
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), base, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (d *Disk) segPath(seg uint64) string {
	return filepath.Join(d.walDir, fmt.Sprintf("%08d%s", seg, walSuffix))
}

func (d *Disk) snapPath(seq uint64) string {
	return filepath.Join(d.snapDir, fmt.Sprintf("%016x%s", seq, snapSuffix))
}

// recoverSnapshots validates every retained snapshot file (there are at
// most Keep), deleting leftover temp files from an interrupted save and
// any file that fails validation — a damaged "newest" file must not shadow
// the good fallback under the pruning logic. The newest valid snapshot
// becomes the recovery root; if snapshots exist but none validates, the
// store is corrupt (the WAL below their segBase is gone).
func (d *Disk) recoverSnapshots() error {
	ents, err := os.ReadDir(d.snapDir)
	if err != nil {
		return fmt.Errorf("storage: read %s: %w", d.snapDir, err)
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), snapTmp) {
			os.Remove(filepath.Join(d.snapDir, ent.Name()))
		}
	}
	seqs, err := listNumbered(d.snapDir, snapSuffix, 16)
	if err != nil {
		return err
	}
	d.snapBases = make(map[uint64]uint64)
	sawDamage := false
	for i := len(seqs) - 1; i >= 0; i-- {
		path := d.snapPath(seqs[i])
		snap, segBase, ord, err := readSnapshotFile(path)
		if err != nil {
			d.opts.Logf("storage: snapshot %s unusable (%v), falling back", filepath.Base(path), err)
			os.Remove(path)
			sawDamage = true
			continue
		}
		d.snapBases[seqs[i]] = segBase
		if d.recSnap == nil {
			d.recSnap = &snap
			d.segBase = segBase
			d.snapOrd = ord
			if sawDamage {
				d.opts.Logf("storage: recovered from fallback snapshot seq=%d", snap.Seq)
			}
		}
	}
	if d.recSnap == nil && len(seqs) > 0 {
		return fmt.Errorf("%w: all %d snapshot files failed validation", ErrCorrupt, len(seqs))
	}
	return nil
}

func readSnapshotFile(path string) (Snapshot, uint64, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, 0, 0, err
	}
	if len(data) < len(snapMagic)+8 {
		return Snapshot{}, 0, 0, fmt.Errorf("%w: snapshot file too short", ErrCorrupt)
	}
	if string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return Snapshot{}, 0, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	bodyLen := binary.LittleEndian.Uint32(data[8:12])
	sum := binary.LittleEndian.Uint32(data[12:16])
	body := data[16:]
	if uint64(bodyLen) != uint64(len(body)) {
		return Snapshot{}, 0, 0, fmt.Errorf("%w: snapshot length mismatch", ErrCorrupt)
	}
	if crc32.Checksum(body, crcTable) != sum {
		return Snapshot{}, 0, 0, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	return decodeSnapshotBody(body)
}

// recoverWAL replays every segment at or above the snapshot's segBase, in
// order, truncating a torn final record in the final segment.
func (d *Disk) recoverWAL() error {
	segs, err := listNumbered(d.walDir, walSuffix, 10)
	if err != nil {
		return err
	}
	var replay []uint64
	for _, s := range segs {
		if s >= d.segBase {
			replay = append(replay, s)
		}
	}
	if d.recSnap != nil && (len(replay) == 0 || replay[0] != d.segBase) {
		// SaveSnapshot creates the segBase segment before publishing the
		// snapshot, and truncation floors at the oldest retained
		// snapshot's base — a missing head segment is real damage.
		return fmt.Errorf("%w: WAL segment %d named by snapshot is missing", ErrCorrupt, d.segBase)
	}
	expect := d.snapOrd
	for i, s := range replay {
		if i > 0 && s != replay[i-1]+1 {
			return fmt.Errorf("%w: WAL segment gap: %d then %d", ErrCorrupt, replay[i-1], s)
		}
		if err := d.replaySegment(s, i == len(replay)-1, &expect); err != nil {
			return err
		}
	}
	d.nextOrd = expect
	return nil
}

// replaySegment appends the segment's records to recTail. In the final
// segment, structural damage (short header, short payload, CRC mismatch)
// at ANY offset is a crash artifact — an interrupted append at the tail,
// or pages of the unsynced suffix written back out of order, which can
// leave a bad frame ahead of intact ones — so the file is truncated at
// the first damaged frame and the records beyond it (never acknowledged
// as durable) are dropped for peers to re-supply. Non-final segments were
// fully synced when they rolled, so the same damage there is ErrCorrupt.
func (d *Disk) replaySegment(seg uint64, last bool, expect *uint64) error {
	path := d.segPath(seg)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("storage: read %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		n, ord, rec, err := parseFrame(data[off:])
		if err != nil {
			if last && isTorn(err) {
				d.opts.Logf("storage: truncating torn WAL tail in %s at offset %d (%v)",
					filepath.Base(path), off, err)
				return truncateDurably(path, int64(off))
			}
			if isTorn(err) {
				// Damage shaped like a torn write, but not at the log's
				// end: an interrupted append cannot explain it.
				err = fmt.Errorf("%w: %v in non-final segment", ErrCorrupt, err)
			}
			return fmt.Errorf("%s offset %d: %w", filepath.Base(path), off, err)
		}
		if ord != *expect {
			// A CRC-valid frame with the wrong ordinal means whole records
			// vanished (or were duplicated) upstream of this point.
			return fmt.Errorf("%w: %s offset %d: record ordinal %d, want %d",
				ErrCorrupt, filepath.Base(path), off, ord, *expect)
		}
		*expect++
		d.recTail = append(d.recTail, rec)
		off += n
	}
	return nil
}

// truncateDurably cuts the file at off and fsyncs the repair, so the
// removed bytes cannot resurface if the machine crashes again before the
// next WAL sync.
func truncateDurably(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("storage: open for truncation: %w", err)
	}
	err = f.Truncate(off)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: truncate torn WAL tail: %w", err)
	}
	return nil
}

// tornError marks frame damage explainable as an interrupted final write.
type tornError struct{ msg string }

func (e tornError) Error() string { return e.msg }

func isTorn(err error) bool {
	_, ok := err.(tornError)
	return ok
}

// parseFrame reads one frame from the head of data, returning its total
// size and the record's log ordinal. Structural damage that truncation
// could cause is a tornError; a frame whose CRC passes but whose payload
// does not decode is ErrCorrupt (truncation cannot manufacture a valid
// checksum over partial bytes).
func parseFrame(data []byte) (int, uint64, Record, error) {
	if len(data) < 8 {
		return 0, 0, Record{}, tornError{fmt.Sprintf("partial frame header (%d bytes)", len(data))}
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if length == 0 || length > maxFrameSize {
		return 0, 0, Record{}, tornError{fmt.Sprintf("implausible frame length %d", length)}
	}
	if uint64(len(data)-8) < uint64(length) {
		return 0, 0, Record{}, tornError{fmt.Sprintf("partial frame payload (%d of %d bytes)", len(data)-8, length)}
	}
	payload := data[8 : 8+length]
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, 0, Record{}, tornError{"frame CRC mismatch"}
	}
	dec := wire.NewDecoder(payload)
	ord := dec.Uvarint()
	if dec.Err() != nil {
		return 0, 0, Record{}, fmt.Errorf("%w: frame ordinal: %v", ErrCorrupt, dec.Err())
	}
	rec, err := decodeRecord(payload[len(payload)-dec.Remaining():])
	if err != nil {
		return 0, 0, Record{}, err
	}
	return 8 + int(length), ord, rec, nil
}

// openWriter positions the append point: the highest existing segment, or
// a fresh one at segBase when the log is empty.
func (d *Disk) openWriter() error {
	segs, err := listNumbered(d.walDir, walSuffix, 10)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return d.createSegment(d.segBase)
	}
	seg := segs[len(segs)-1]
	f, err := os.OpenFile(d.segPath(seg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open WAL segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: stat WAL segment: %w", err)
	}
	d.cur, d.curSeg, d.curSize = f, seg, st.Size()
	return nil
}

func (d *Disk) createSegment(seg uint64) error {
	f, err := os.OpenFile(d.segPath(seg), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create WAL segment: %w", err)
	}
	if err := syncDir(d.walDir); err != nil {
		f.Close()
		return err
	}
	d.cur, d.curSeg, d.curSize = f, seg, 0
	return nil
}

// roll closes the current segment and starts the next one. The sync here
// is unconditional — even under FsyncInterval/FsyncOff — and is a load-
// bearing recovery invariant: because no segment gains a successor until
// its bytes are durable, unsynced data (and so crash damage) can only
// ever live in the final segment, which is exactly where replaySegment
// is willing to truncate instead of failing.
func (d *Disk) roll() error {
	if err := d.cur.Sync(); err != nil {
		return fmt.Errorf("storage: sync WAL segment: %w", err)
	}
	if err := d.cur.Close(); err != nil {
		return fmt.Errorf("storage: close WAL segment: %w", err)
	}
	d.dirty = false
	d.opts.Metrics.observeRoll()
	return d.createSegment(d.curSeg + 1)
}

// Append implements Backend.
func (d *Disk) Append(rec Record) error {
	if d.closed {
		return ErrClosed
	}
	if m := d.opts.Metrics; m != nil {
		t0 := time.Now()
		defer func() { m.observeAppend(time.Since(t0).Nanoseconds()) }()
	}
	d.enc.Reset()
	d.enc.Uvarint(d.nextOrd)
	if err := encodeRecord(&d.enc, rec); err != nil {
		return err
	}
	payload := d.enc.Bytes()
	if len(payload) > maxFrameSize {
		return fmt.Errorf("storage: record of %d bytes exceeds frame limit", len(payload))
	}
	binary.LittleEndian.PutUint32(d.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(d.hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := d.cur.Write(d.hdr[:]); err != nil {
		return fmt.Errorf("storage: append WAL frame: %w", err)
	}
	if _, err := d.cur.Write(payload); err != nil {
		return fmt.Errorf("storage: append WAL frame: %w", err)
	}
	d.curSize += int64(8 + len(payload))
	d.dirty = true
	d.nextOrd++
	switch d.opts.Fsync {
	case FsyncAlways:
		if err := d.Sync(); err != nil {
			return err
		}
	case FsyncInterval:
		if now := time.Now(); now.Sub(d.lastSync) >= d.opts.Interval {
			if err := d.Sync(); err != nil {
				return err
			}
		}
	}
	if d.curSize >= d.opts.SegmentBytes {
		return d.roll()
	}
	return nil
}

// SaveSnapshot implements Backend. The segment is rolled first so the
// snapshot's replay range starts at a segment boundary; the snapshot file
// then lands via temp-write → fsync → rename → dir fsync, making it
// atomic with respect to crashes. Older snapshots beyond Keep are pruned.
func (d *Disk) SaveSnapshot(snap Snapshot) error {
	if d.closed {
		return ErrClosed
	}
	if m := d.opts.Metrics; m != nil {
		t0 := time.Now()
		defer func() { m.observeSnapshot(time.Since(t0).Nanoseconds()) }()
	}
	if err := d.roll(); err != nil {
		return err
	}
	segBase := d.curSeg

	d.enc.Reset()
	encodeSnapshotBody(&d.enc, snap, segBase, d.nextOrd)
	body := d.enc.Bytes()
	var hdr [16]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(body, crcTable))

	final := d.snapPath(snap.Seq)
	tmp := final + snapTmp
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create snapshot temp: %w", err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if err := syncDir(d.snapDir); err != nil {
		return err
	}
	d.segBase = segBase
	d.snapBases[snap.Seq] = segBase
	d.pruneSnapshots()
	return nil
}

func (d *Disk) pruneSnapshots() {
	seqs, err := listNumbered(d.snapDir, snapSuffix, 16)
	if err != nil {
		return
	}
	for len(seqs) > d.opts.Keep {
		os.Remove(d.snapPath(seqs[0]))
		delete(d.snapBases, seqs[0])
		seqs = seqs[1:]
	}
}

// truncFloor is the WAL segment index below which no retained snapshot —
// including the fallback ones — needs records: the minimum segBase over
// the kept snapshot files. Truncating at the newest snapshot's base alone
// would strand a CRC-damaged-snapshot recovery with no log to replay.
func (d *Disk) truncFloor() uint64 {
	floor := d.segBase
	for _, base := range d.snapBases {
		if base < floor {
			floor = base
		}
	}
	return floor
}

// TruncateBefore implements Backend: deletes WAL segments wholly below
// every retained snapshot's segBase. The current segment is never deleted.
func (d *Disk) TruncateBefore(uint64) error {
	if d.closed {
		return ErrClosed
	}
	segs, err := listNumbered(d.walDir, walSuffix, 10)
	if err != nil {
		return err
	}
	floor := d.truncFloor()
	removed := false
	for _, s := range segs {
		if s < floor && s != d.curSeg {
			if err := os.Remove(d.segPath(s)); err != nil {
				return fmt.Errorf("storage: truncate WAL: %w", err)
			}
			removed = true
		}
	}
	if removed {
		return syncDir(d.walDir)
	}
	return nil
}

// Recover implements Backend, returning the result of the scan performed
// at OpenDisk.
func (d *Disk) Recover() (*Snapshot, []Record, error) {
	if d.closed {
		return nil, nil, ErrClosed
	}
	return d.recSnap, d.recTail, nil
}

// Sync implements Backend.
func (d *Disk) Sync() error {
	if d.closed {
		return ErrClosed
	}
	if !d.dirty {
		return nil
	}
	var t0 time.Time
	m := d.opts.Metrics
	if m != nil {
		t0 = time.Now()
	}
	if err := d.cur.Sync(); err != nil {
		return fmt.Errorf("storage: sync WAL: %w", err)
	}
	if m != nil {
		m.observeFsync(time.Since(t0).Nanoseconds())
	}
	d.dirty = false
	d.lastSync = time.Now()
	return nil
}

// Abandon releases the backend's file handles without any final flush —
// the in-process stand-in for a crash. What survives on disk is exactly
// what the configured fsync policy (plus the OS page cache, for an
// in-process "crash") already holds; restart tests reopen the directory
// to exercise the recovery path.
func (d *Disk) Abandon() {
	if d.closed {
		return
	}
	d.closed = true
	d.cur.Close()
}

// Close implements Backend.
func (d *Disk) Close() error {
	if d.closed {
		return nil
	}
	err := d.Sync()
	if cerr := d.cur.Close(); err == nil {
		err = cerr
	}
	d.closed = true
	return err
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: sync dir %s: %w", dir, err)
	}
	return nil
}
