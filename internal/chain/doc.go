// Package chain holds the replicated data structures of one shard: the
// block ledger, the transaction format, Merkle commitments, and the world
// state (Store).
//
// # Read API
//
// Store has two faces. The mutable head is what the execution path talks
// to: Apply(writeSet) advances the version and folds the write-set into
// the state digest; Get/Len/Version/Digest read the latest state under a
// short read-lock. Everything else reads through immutable, height-pinned
// views:
//
//	r, err := store.ReaderAt(h) // sealed block boundary h
//	it := r.IterPrefix("c_")    // ordered, allocation-light
//	for k, v, ok := it.Next(); ok; k, v, ok = it.Next() { ... }
//
// A Reader never observes writes applied after its height, is safe for
// concurrent use from any goroutine, and costs O(1) to create — no
// copying. Reader.Snapshot() materializes the full state for transfer or
// durable persistence without ever stalling the writer.
//
// # MVCC retention rule
//
// The store keeps a bounded window of sealed versions. The executor calls
// Seal() once per executed block, which freezes the current tree
// generation: later Applies clone only the chunks they touch
// (copy-on-write over a two-level chunked index), so sealing is O(1) and
// write amplification stays proportional to the write-set, not the state.
// The window is pruned from below by SetFloor(v) — the PBFT stable
// checkpoint calls it, so retention spans exactly [stable checkpoint,
// head] — and capped at a fixed depth for configurations that never
// checkpoint. ReaderAt below the floor fails with the typed
// ErrHeightPruned (retryable at a newer pin); a height that is not a
// sealed boundary fails with ErrHeightUnknown. Protocols that never call
// Seal pay no copy-on-write overhead at all.
//
// # Consistency guarantee
//
// A pinned Reader is immutable: every Get/Iter observes the single
// version it was created at, byte-for-byte, regardless of concurrent
// Apply/Seal/SetFloor activity — there is no torn read in which parts of
// two versions mix. Cross-shard consistency (one pin per shard forming a
// coherent global cut) is layered above in internal/query, which uses the
// store's commit-record index (RecordCommit/CommittedAt) to resolve
// transactions that straddle the per-shard pins.
package chain
