// Package chain implements the blockchain substrate each committee
// maintains: a hash-chained ledger of blocks, a Merkle tree over block
// transactions, and the versioned key-value state store that chaincodes
// (smart contracts) read and write — the parts of Hyperledger Fabric v0.6
// the paper's system is built on.
package chain

import (
	"fmt"
	"sort"

	"repro/internal/blockcrypto"
)

// Store is the world state of one shard: a key-value map with a running
// version counter and an incrementally-maintained state digest.
//
// The digest is a chain over applied write-sets rather than a full Merkle
// root over all keys; recomputing a whole-state Merkle root per block is
// what Fabric avoids too. Two stores that applied the same write-set
// sequence from the same genesis have equal digests, which is all the
// protocols need (state transfer verification at resharding, §5.3).
type Store struct {
	kv      map[string][]byte
	version uint64
	digest  blockcrypto.Digest
}

// NewStore returns an empty state store.
func NewStore() *Store {
	return &Store{kv: make(map[string][]byte)}
}

// Get returns the value for key and whether it exists.
func (s *Store) Get(key string) ([]byte, bool) {
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.kv) }

// KeysWithPrefix returns every live key starting with prefix, sorted.
// Invariant checks (e.g. "no 2PL lock keys survive a terminal
// transaction") are built on it.
func (s *Store) KeysWithPrefix(prefix string) []string {
	var out []string
	for k := range s.kv {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Version returns the number of write-sets applied.
func (s *Store) Version() uint64 { return s.version }

// Digest returns the current state digest.
func (s *Store) Digest() blockcrypto.Digest { return s.digest }

// Write is a single key mutation; a nil Value deletes the key.
type Write struct {
	Key   string
	Value []byte
}

// WriteSet is an ordered set of mutations produced by executing one
// transaction.
type WriteSet []Write

// Digest returns a canonical digest of the write-set (sorted by key so
// semantically equal sets hash equally).
func (ws WriteSet) Digest() blockcrypto.Digest {
	sorted := append(WriteSet(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	chunks := make([][]byte, 0, len(sorted)*3)
	for _, w := range sorted {
		chunks = append(chunks, []byte(fmt.Sprintf("%d:", len(w.Key))), []byte(w.Key), w.Value)
	}
	return blockcrypto.Hash(chunks...)
}

// Apply applies the write-set and folds it into the state digest.
func (s *Store) Apply(ws WriteSet) {
	if len(ws) == 0 {
		return
	}
	for _, w := range ws {
		if w.Value == nil {
			delete(s.kv, w.Key)
		} else {
			s.kv[w.Key] = append([]byte(nil), w.Value...)
		}
	}
	s.version++
	s.digest = blockcrypto.HashOfDigests(s.digest, ws.Digest())
}

// Snapshot captures the full state for transfer to a node joining the
// shard. The returned snapshot is independent of future mutations.
type Snapshot struct {
	KV      map[string][]byte
	Version uint64
	Digest  blockcrypto.Digest
}

// Snapshot returns a deep copy of the current state.
func (s *Store) Snapshot() Snapshot {
	kv := make(map[string][]byte, len(s.kv))
	for k, v := range s.kv {
		kv[k] = append([]byte(nil), v...)
	}
	return Snapshot{KV: kv, Version: s.version, Digest: s.digest}
}

// SizeBytes estimates the serialized size of the snapshot, used to model
// state-transfer time during shard reconfiguration.
func (sn Snapshot) SizeBytes() int {
	n := 48
	for k, v := range sn.KV {
		n += len(k) + len(v) + 16
	}
	return n
}

// Restore replaces the store contents with the snapshot.
func (s *Store) Restore(sn Snapshot) {
	s.kv = make(map[string][]byte, len(sn.KV))
	for k, v := range sn.KV {
		s.kv[k] = append([]byte(nil), v...)
	}
	s.version = sn.Version
	s.digest = sn.Digest
}
