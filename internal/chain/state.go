package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/blockcrypto"
)

// Store is the world state of one shard: an ordered key-value index with a
// running version counter, an incrementally-maintained state digest, and a
// small MVCC retention window of recent sealed versions.
//
// The digest is a chain over applied write-sets rather than a full Merkle
// root over all keys; recomputing a whole-state Merkle root per block is
// what Fabric avoids too. Two stores that applied the same write-set
// sequence from the same genesis have equal digests, which is all the
// protocols need (state transfer verification at resharding, §5.3).
//
// Reads and writes are decoupled copy-on-write style: the index is a
// two-level structure (a spine of small sorted chunks) whose nodes are
// tagged with the generation that created them. Sealing a version (one
// Seal per executed block) freezes the current generation; later writes
// clone only the chunks they touch, so a sealed version is an immutable
// O(1) snapshot that concurrent readers traverse without locks while the
// execution path keeps mutating the head in place. See doc.go for the
// retention rule and the read-consistency guarantee.
type Store struct {
	mu      sync.RWMutex
	t       *tree
	gen     uint64 // generation new mutations must own
	version uint64
	digest  blockcrypto.Digest

	// sealed is the MVCC retention window: block-boundary versions in
	// ascending order, pruned by SetFloor (stable checkpoint) and capped
	// at maxRetain as a backstop for stores that never checkpoint.
	sealed    []sealedView
	maxRetain int

	// commits indexes distributed-transaction ids by the store version
	// whose write-set applied their staged values (CommitStaged). The
	// index is resolution metadata for height-pinned readers — it is not
	// part of replicated state, never enters the digest, and is bounded
	// FIFO at commitCap entries.
	commits map[string]uint64
	commitQ []string
}

type sealedView struct {
	version uint64
	digest  blockcrypto.Digest
	t       *tree
}

// defaultMaxRetain bounds the sealed-version window when no checkpoint
// ever advances the floor (simulation baselines without checkpoints).
const defaultMaxRetain = 1024

// commitCap bounds the commit-record index. Resolution of residues older
// than the cap degrades to "unknown" (see CommittedAt).
const commitCap = 1 << 16

// Typed read-API errors.
var (
	// ErrHeightPruned reports a pin below the retention floor: the stable
	// checkpoint (or the retention cap) advanced past it.
	ErrHeightPruned = errors.New("chain: height pruned from the retention window")
	// ErrHeightUnknown reports a pin that is not a sealed block boundary
	// (including heights the store has not reached yet).
	ErrHeightUnknown = errors.New("chain: height is not a sealed version")
)

// NewStore returns an empty state store.
func NewStore() *Store {
	return &Store{
		t:         &tree{},
		maxRetain: defaultMaxRetain,
		commits:   make(map[string]uint64),
	}
}

// --- ordered chunked index ---

// chunkMax is the split threshold; chunks hold at most this many keys.
const chunkMax = 128

// chunk is one sorted run of keys. A chunk whose gen matches the store's
// current generation is private to the head and mutated in place; any
// other chunk may be shared with sealed readers and is cloned on write.
type chunk struct {
	gen  uint64
	keys []string
	vals [][]byte
}

func (c *chunk) last() string { return c.keys[len(c.keys)-1] }

// find returns the insertion index for key and whether it is present.
func (c *chunk) find(key string) (int, bool) {
	i := sort.SearchStrings(c.keys, key)
	return i, i < len(c.keys) && c.keys[i] == key
}

// tree is the spine over chunks, itself generation-tagged and cloned on
// first write after a seal.
type tree struct {
	gen    uint64
	chunks []*chunk
	size   int
}

// locate returns the index of the chunk that does or would contain key.
// With n chunks it may return n when key sorts after every stored key.
func (t *tree) locate(key string) int {
	return sort.Search(len(t.chunks), func(i int) bool { return t.chunks[i].last() >= key })
}

func (t *tree) get(key string) ([]byte, bool) {
	ci := t.locate(key)
	if ci == len(t.chunks) {
		return nil, false
	}
	if i, ok := t.chunks[ci].find(key); ok {
		return t.chunks[ci].vals[i], true
	}
	return nil, false
}

// writable returns the head tree, cloning the spine if it is still shared
// with the last sealed version. Callers hold the write lock.
func (s *Store) writable() *tree {
	if s.t.gen != s.gen {
		s.t = &tree{gen: s.gen, chunks: append([]*chunk(nil), s.t.chunks...), size: s.t.size}
	}
	return s.t
}

// writableChunk makes chunk ci of t privately owned by the current
// generation, cloning it if it is shared with a sealed reader.
func (s *Store) writableChunk(t *tree, ci int) *chunk {
	c := t.chunks[ci]
	if c.gen == s.gen {
		return c
	}
	nc := &chunk{
		gen:  s.gen,
		keys: append(make([]string, 0, len(c.keys)+1), c.keys...),
		vals: append(make([][]byte, 0, len(c.vals)+1), c.vals...),
	}
	t.chunks[ci] = nc
	return nc
}

func (s *Store) put(key string, val []byte) {
	t := s.writable()
	if len(t.chunks) == 0 {
		t.chunks = append(t.chunks, &chunk{gen: s.gen, keys: []string{key}, vals: [][]byte{val}})
		t.size = 1
		return
	}
	ci := t.locate(key)
	if ci == len(t.chunks) {
		ci-- // sorts after everything: extend the last chunk
	}
	c := s.writableChunk(t, ci)
	i, ok := c.find(key)
	if ok {
		c.vals[i] = val
		return
	}
	c.keys = append(c.keys, "")
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = key
	c.vals = append(c.vals, nil)
	copy(c.vals[i+1:], c.vals[i:])
	c.vals[i] = val
	t.size++
	if len(c.keys) > chunkMax {
		s.split(t, ci)
	}
}

// split divides chunk ci in half, keeping both halves current-generation.
func (s *Store) split(t *tree, ci int) {
	c := t.chunks[ci]
	mid := len(c.keys) / 2
	right := &chunk{
		gen:  s.gen,
		keys: append([]string(nil), c.keys[mid:]...),
		vals: append([][]byte(nil), c.vals[mid:]...),
	}
	c.keys = c.keys[:mid:mid]
	c.vals = c.vals[:mid:mid]
	t.chunks = append(t.chunks, nil)
	copy(t.chunks[ci+2:], t.chunks[ci+1:])
	t.chunks[ci+1] = right
}

func (s *Store) del(key string) {
	t := s.writable()
	ci := t.locate(key)
	if ci == len(t.chunks) {
		return
	}
	if _, ok := t.chunks[ci].find(key); !ok {
		return
	}
	c := s.writableChunk(t, ci)
	i, _ := c.find(key)
	c.keys = append(c.keys[:i], c.keys[i+1:]...)
	c.vals = append(c.vals[:i], c.vals[i+1:]...)
	t.size--
	if len(c.keys) == 0 {
		t.chunks = append(t.chunks[:ci], t.chunks[ci+1:]...)
	}
}

// --- mutable-head API ---

// Get returns the value for key and whether it exists. The returned slice
// is a copy the caller owns.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	v, ok := s.t.get(key)
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.size
}

// Version returns the number of write-sets applied.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Digest returns the current state digest.
func (s *Store) Digest() blockcrypto.Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.digest
}

// Write is a single key mutation; a nil Value deletes the key.
type Write struct {
	Key   string
	Value []byte
}

// WriteSet is an ordered set of mutations produced by executing one
// transaction.
type WriteSet []Write

// Digest returns a canonical digest of the write-set (sorted by key so
// semantically equal sets hash equally).
func (ws WriteSet) Digest() blockcrypto.Digest {
	sorted := append(WriteSet(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	chunks := make([][]byte, 0, len(sorted)*3)
	for _, w := range sorted {
		chunks = append(chunks, []byte(fmt.Sprintf("%d:", len(w.Key))), []byte(w.Key), w.Value)
	}
	return blockcrypto.Hash(chunks...)
}

// Apply applies the write-set and folds it into the state digest.
func (s *Store) Apply(ws WriteSet) {
	if len(ws) == 0 {
		return
	}
	s.mu.Lock()
	for _, w := range ws {
		if w.Value == nil {
			s.del(w.Key)
		} else {
			// Fresh copy: stored value slices are never mutated afterwards,
			// which is what lets sealed readers hand them out by reference.
			s.put(w.Key, append([]byte(nil), w.Value...))
		}
	}
	s.version++
	s.digest = blockcrypto.HashOfDigests(s.digest, ws.Digest())
	s.mu.Unlock()
}

// --- MVCC retention window ---

// Seal publishes the current version into the retention window: a block
// boundary height-pinned readers may attach to. The execution path calls
// it once per executed block; sealing an already-sealed version is a
// no-op. Oldest sealed versions beyond the retention cap are pruned.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.sealed); n > 0 && s.sealed[n-1].version == s.version {
		return
	}
	s.sealed = append(s.sealed, sealedView{version: s.version, digest: s.digest, t: s.t})
	s.gen++ // future writes clone what they touch
	if over := len(s.sealed) - s.maxRetain; over > 0 {
		s.sealed = append(s.sealed[:0:0], s.sealed[over:]...)
	}
}

// SetFloor prunes sealed versions below h — the retention rule hook: the
// stable checkpoint calls it so the window spans exactly
// [stable checkpoint, head]. Pinned readers created earlier stay valid
// (their trees are immutable); only new ReaderAt calls below the floor
// fail, with ErrHeightPruned.
func (s *Store) SetFloor(h uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.sealed) && s.sealed[i].version < h {
		i++
	}
	if i > 0 {
		s.sealed = append(s.sealed[:0:0], s.sealed[i:]...)
	}
}

// ReaderAt returns the immutable view sealed at height h, or a typed
// error: ErrHeightPruned when h fell out of the retention window,
// ErrHeightUnknown when h is not a sealed block boundary.
func (s *Store) ReaderAt(h uint64) (*Reader, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := sort.Search(len(s.sealed), func(i int) bool { return s.sealed[i].version >= h })
	if i < len(s.sealed) && s.sealed[i].version == h {
		sv := s.sealed[i]
		return &Reader{t: sv.t, version: sv.version, digest: sv.digest}, nil
	}
	if len(s.sealed) == 0 || h < s.sealed[0].version {
		return nil, fmt.Errorf("%w: height %d", ErrHeightPruned, h)
	}
	return nil, fmt.Errorf("%w: height %d", ErrHeightUnknown, h)
}

// LatestSealed reports the newest version in the retention window; ok is
// false before the first Seal.
func (s *Store) LatestSealed() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.sealed) == 0 {
		return 0, false
	}
	return s.sealed[len(s.sealed)-1].version, true
}

// OldestRetained reports the retention floor; ok is false before the
// first Seal.
func (s *Store) OldestRetained() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.sealed) == 0 {
		return 0, false
	}
	return s.sealed[0].version, true
}

// Head freezes and returns the current state as an immutable reader,
// without entering it into the retention window. Later writes clone what
// they touch. Unlike ReaderAt it must be called from the mutating
// goroutine (the execution path or a quiesced test).
func (s *Store) Head() *Reader {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Reader{t: s.t, version: s.version, digest: s.digest}
	s.gen++
	return r
}

// --- commit-record index ---

// RecordCommit notes that txid's staged values were applied by the
// write-set that produced the current version. The executor calls it
// right after applying a transaction whose invocation committed staged
// state (see chaincode.Result.Committed). Idempotent per txid, so WAL
// replay after a restart does not double-enter the FIFO.
func (s *Store) RecordCommit(txid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.commits[txid]; dup {
		return
	}
	s.commits[txid] = s.version
	s.commitQ = append(s.commitQ, txid)
	if len(s.commitQ) > commitCap {
		drop := s.commitQ[0]
		s.commitQ = append(s.commitQ[:0:0], s.commitQ[1:]...)
		delete(s.commits, drop)
	}
}

// CommittedAt reports the version at which txid's staged values were
// applied on this store. ok is false when the store never saw the commit
// or the record aged out of the FIFO index — callers must treat that as
// "unknown", not "aborted".
func (s *Store) CommittedAt(txid string) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.commits[txid]
	return v, ok
}

// --- immutable readers ---

// Reader is an immutable, height-pinned view of the store. It is safe for
// concurrent use from any goroutine while the store keeps executing, and
// it never observes later writes. Returned value slices are the store's
// immutable internal storage: callers must not modify them (Get copies;
// iterators do not).
type Reader struct {
	t       *tree
	version uint64
	digest  blockcrypto.Digest
}

// Version returns the pinned height.
func (r *Reader) Version() uint64 { return r.version }

// Digest returns the state digest at the pinned height.
func (r *Reader) Digest() blockcrypto.Digest { return r.digest }

// Len returns the number of live keys at the pinned height.
func (r *Reader) Len() int { return r.t.size }

// Get returns the value for key at the pinned height. The returned slice
// is a copy the caller owns.
func (r *Reader) Get(key string) ([]byte, bool) {
	v, ok := r.t.get(key)
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// GetRef is Get without the defensive copy: the returned slice aliases
// the store's immutable storage and must not be modified. The streaming
// query scan uses it to keep the read path allocation-light.
func (r *Reader) GetRef(key string) ([]byte, bool) { return r.t.get(key) }

// Iter returns an ordered iterator over [start, end); an empty end means
// "to the last key". Values alias immutable storage (see Reader).
func (r *Reader) Iter(start, end string) *Iter {
	it := &Iter{t: r.t, end: end}
	it.ci = r.t.locate(start)
	if it.ci < len(r.t.chunks) {
		it.i, _ = r.t.chunks[it.ci].find(start)
	}
	return it
}

// IterPrefix returns an ordered iterator over every key starting with
// prefix.
func (r *Reader) IterPrefix(prefix string) *Iter {
	return r.Iter(prefix, PrefixEnd(prefix))
}

// PrefixEnd returns the smallest key greater than every key with the
// given prefix ("" when no such key exists, i.e. an unbounded range).
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Keys returns every key in [start, end) — the migration helper for
// callers of the removed KeysWithPrefix that really want a slice.
func (r *Reader) Keys(start, end string) []string {
	var out []string
	for it := r.Iter(start, end); ; {
		k, _, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

// KeysWithPrefix returns every key starting with prefix, sorted.
func (r *Reader) KeysWithPrefix(prefix string) []string {
	return r.Keys(prefix, PrefixEnd(prefix))
}

// Snapshot materializes the full pinned state for transfer or durable
// persistence. The returned snapshot is independent of the store.
func (r *Reader) Snapshot() Snapshot {
	kv := make(map[string][]byte, r.t.size)
	for _, c := range r.t.chunks {
		for i, k := range c.keys {
			kv[k] = append([]byte(nil), c.vals[i]...)
		}
	}
	return Snapshot{KV: kv, Version: r.version, Digest: r.digest}
}

// Iter is an ordered cursor over a Reader's key range.
type Iter struct {
	t   *tree
	end string
	ci  int
	i   int
}

// Next returns the next key/value in order; ok is false at the end of the
// range. The value aliases immutable storage and must not be modified.
func (it *Iter) Next() (string, []byte, bool) {
	for it.ci < len(it.t.chunks) {
		c := it.t.chunks[it.ci]
		if it.i >= len(c.keys) {
			it.ci++
			it.i = 0
			continue
		}
		k := c.keys[it.i]
		if it.end != "" && k >= it.end {
			return "", nil, false
		}
		v := c.vals[it.i]
		it.i++
		return k, v, true
	}
	return "", nil, false
}

// --- snapshots ---

// Snapshot captures the full state for transfer to a node joining the
// shard. The snapshot is independent of future mutations.
type Snapshot struct {
	KV      map[string][]byte
	Version uint64
	Digest  blockcrypto.Digest
}

// SizeBytes estimates the serialized size of the snapshot, used to model
// state-transfer time during shard reconfiguration.
func (sn Snapshot) SizeBytes() int {
	n := 48
	for k, v := range sn.KV {
		n += len(k) + len(v) + 16
	}
	return n
}

// Restore replaces the store contents with the snapshot. The retention
// window and the commit-record index are reset: sealed versions of the
// discarded history are not valid views of the restored one. Callers
// re-seal after restoring.
func (s *Store) Restore(sn Snapshot) {
	keys := make([]string, 0, len(sn.KV))
	for k := range sn.KV {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	t := &tree{gen: s.gen, size: len(keys)}
	for start := 0; start < len(keys); start += chunkMax / 2 {
		stop := start + chunkMax/2
		if stop > len(keys) {
			stop = len(keys)
		}
		c := &chunk{gen: s.gen, keys: append([]string(nil), keys[start:stop]...)}
		c.vals = make([][]byte, 0, stop-start)
		for _, k := range c.keys {
			c.vals = append(c.vals, append([]byte(nil), sn.KV[k]...))
		}
		t.chunks = append(t.chunks, c)
	}
	s.t = t
	s.version = sn.Version
	s.digest = sn.Digest
	s.sealed = nil
	s.commits = make(map[string]uint64)
	s.commitQ = nil
}
