package chain

import (
	"repro/internal/blockcrypto"
)

// MerkleRoot computes the Merkle root of the given leaf digests. An odd
// level duplicates its last element (Bitcoin-style). The root of zero
// leaves is the zero digest.
func MerkleRoot(leaves []blockcrypto.Digest) blockcrypto.Digest {
	if len(leaves) == 0 {
		return blockcrypto.Digest{}
	}
	level := append([]blockcrypto.Digest(nil), leaves...)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := level[:0:cap(level)]
		for i := 0; i < len(level); i += 2 {
			next = append(next, blockcrypto.HashOfDigests(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// MerkleStep is one step of an inclusion proof: the sibling digest and
// whether it sits to the left of the running hash.
type MerkleStep struct {
	Sibling blockcrypto.Digest
	Left    bool
}

// MerkleProof is an inclusion proof for one leaf.
type MerkleProof struct {
	Index int
	Steps []MerkleStep
}

// BuildMerkleProof returns the inclusion proof for leaf index i.
func BuildMerkleProof(leaves []blockcrypto.Digest, i int) MerkleProof {
	if i < 0 || i >= len(leaves) {
		panic("chain: merkle proof index out of range")
	}
	proof := MerkleProof{Index: i}
	level := append([]blockcrypto.Digest(nil), leaves...)
	pos := i
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sib := pos ^ 1
		proof.Steps = append(proof.Steps, MerkleStep{Sibling: level[sib], Left: sib < pos})
		next := make([]blockcrypto.Digest, 0, len(level)/2)
		for j := 0; j < len(level); j += 2 {
			next = append(next, blockcrypto.HashOfDigests(level[j], level[j+1]))
		}
		level = next
		pos /= 2
	}
	return proof
}

// VerifyMerkleProof checks that leaf is included under root via proof.
func VerifyMerkleProof(root blockcrypto.Digest, leaf blockcrypto.Digest, proof MerkleProof) bool {
	h := leaf
	for _, st := range proof.Steps {
		if st.Left {
			h = blockcrypto.HashOfDigests(st.Sibling, h)
		} else {
			h = blockcrypto.HashOfDigests(h, st.Sibling)
		}
	}
	return h == root
}
