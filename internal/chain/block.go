package chain

import (
	"encoding/binary"
	"fmt"

	"repro/internal/blockcrypto"
)

// Tx is a transaction as ordered by consensus: an invocation of a
// chaincode function. ID is assigned by the submitting client and must be
// unique; committees deduplicate on it.
type Tx struct {
	ID        uint64
	Chaincode string
	Fn        string
	Args      []string
	// Client is the submitting client's key id, used for replies.
	Client blockcrypto.KeyID
}

// Digest returns the canonical transaction digest.
func (t Tx) Digest() blockcrypto.Digest {
	var idb [16]byte
	binary.BigEndian.PutUint64(idb[:8], t.ID)
	binary.BigEndian.PutUint64(idb[8:], uint64(t.Client))
	chunks := [][]byte{idb[:], []byte(t.Chaincode), []byte(t.Fn)}
	for _, a := range t.Args {
		chunks = append(chunks, []byte{0}, []byte(a))
	}
	return blockcrypto.Hash(chunks...)
}

// SizeBytes estimates the serialized transaction size for network
// modelling.
func (t Tx) SizeBytes() int {
	n := 64 + len(t.Chaincode) + len(t.Fn)
	for _, a := range t.Args {
		n += len(a) + 4
	}
	return n
}

// Header is a block header.
type Header struct {
	Height    uint64
	PrevHash  blockcrypto.Digest
	TxRoot    blockcrypto.Digest
	StateRoot blockcrypto.Digest
	Proposer  blockcrypto.KeyID
	View      uint64
}

// Block is a batch of transactions agreed on by a committee.
type Block struct {
	Header Header
	Txs    []Tx
}

// TxRoot computes the Merkle root over the block's transactions.
func TxRoot(txs []Tx) blockcrypto.Digest {
	leaves := make([]blockcrypto.Digest, len(txs))
	for i, t := range txs {
		leaves[i] = t.Digest()
	}
	return MerkleRoot(leaves)
}

// Digest returns the block digest (over the header; the header commits to
// the transactions through TxRoot).
func (b *Block) Digest() blockcrypto.Digest {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], b.Header.Height)
	binary.BigEndian.PutUint64(buf[8:16], uint64(b.Header.Proposer))
	binary.BigEndian.PutUint64(buf[16:], b.Header.View)
	return blockcrypto.Hash(buf[:], b.Header.PrevHash[:], b.Header.TxRoot[:], b.Header.StateRoot[:])
}

// SizeBytes estimates the serialized block size.
func (b *Block) SizeBytes() int {
	n := 160
	for _, t := range b.Txs {
		n += t.SizeBytes()
	}
	return n
}

// Ledger is a shard's append-only chain of blocks.
type Ledger struct {
	blocks []*Block
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Height returns the number of appended blocks.
func (l *Ledger) Height() uint64 { return uint64(len(l.blocks)) }

// Tip returns the last block, or nil when empty.
func (l *Ledger) Tip() *Block {
	if len(l.blocks) == 0 {
		return nil
	}
	return l.blocks[len(l.blocks)-1]
}

// TipHash returns the digest of the last block (zero digest when empty).
func (l *Ledger) TipHash() blockcrypto.Digest {
	tip := l.Tip()
	if tip == nil {
		return blockcrypto.Digest{}
	}
	return tip.Digest()
}

// Block returns the block at height h (0-based), or nil.
func (l *Ledger) Block(h uint64) *Block {
	if h >= uint64(len(l.blocks)) {
		return nil
	}
	return l.blocks[h]
}

// Append validates the chain linkage and appends b.
func (l *Ledger) Append(b *Block) error {
	if b.Header.Height != l.Height() {
		return fmt.Errorf("chain: block height %d, want %d", b.Header.Height, l.Height())
	}
	if b.Header.PrevHash != l.TipHash() {
		return fmt.Errorf("chain: block %d prev-hash mismatch", b.Header.Height)
	}
	if got := TxRoot(b.Txs); got != b.Header.TxRoot {
		return fmt.Errorf("chain: block %d tx-root mismatch", b.Header.Height)
	}
	l.blocks = append(l.blocks, b)
	return nil
}

// VerifyChain re-validates all hash links; used in tests and after state
// transfer.
func (l *Ledger) VerifyChain() error {
	prev := blockcrypto.Digest{}
	for i, b := range l.blocks {
		if b.Header.Height != uint64(i) {
			return fmt.Errorf("chain: height %d at index %d", b.Header.Height, i)
		}
		if b.Header.PrevHash != prev {
			return fmt.Errorf("chain: broken link at height %d", i)
		}
		if TxRoot(b.Txs) != b.Header.TxRoot {
			return fmt.Errorf("chain: tx-root mismatch at height %d", i)
		}
		prev = b.Digest()
	}
	return nil
}
