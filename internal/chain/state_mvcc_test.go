package chain

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

func TestReaderIterOrderedAndBounded(t *testing.T) {
	s := NewStore()
	var ws WriteSet
	for i := 0; i < 500; i++ {
		ws = append(ws, Write{Key: fmt.Sprintf("k%04d", i*2), Value: []byte(strconv.Itoa(i))})
	}
	s.Apply(ws)
	r := s.Head()

	var prev string
	n := 0
	for it := r.Iter("", ""); ; {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		if n > 0 && k <= prev {
			t.Fatalf("iterator out of order: %q after %q", k, prev)
		}
		prev, n = k, n+1
	}
	if n != 500 {
		t.Fatalf("full scan saw %d keys, want 500", n)
	}

	// Half-open range [k0100, k0200).
	n = 0
	for it := r.Iter("k0100", "k0200"); ; {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		if k < "k0100" || k >= "k0200" {
			t.Fatalf("range leak: %q", k)
		}
		n++
	}
	if n != 50 {
		t.Fatalf("range scan saw %d keys, want 50", n)
	}

	// Seek to a key that is absent starts at the successor.
	it := r.Iter("k0099", "")
	if k, _, ok := it.Next(); !ok || k != "k0100" {
		t.Fatalf("seek to absent key gave %q ok=%v, want k0100", k, ok)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := map[string]string{
		"abc":        "abd",
		"a\xff":      "b",
		"\xff\xff":   "",
		"":           "",
		"L_":         "L`",
		"S_tx\x00k]": "S_tx\x00k^",
	}
	for in, want := range cases {
		if got := PrefixEnd(in); got != want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", in, got, want)
		}
	}
	s := NewStore()
	s.Apply(WriteSet{
		{Key: "L_a", Value: []byte("1")},
		{Key: "L_z", Value: []byte("2")},
		{Key: "L`", Value: []byte("3")}, // '`' == '_'+1: just past the prefix range
		{Key: "M_a", Value: []byte("4")},
	})
	got := s.Head().KeysWithPrefix("L_")
	if len(got) != 2 || got[0] != "L_a" || got[1] != "L_z" {
		t.Fatalf("KeysWithPrefix(L_) = %v", got)
	}
}

func TestSealReaderAtAndFloor(t *testing.T) {
	s := NewStore()
	var digests []string
	for i := 1; i <= 5; i++ {
		s.Apply(WriteSet{{Key: "k", Value: []byte(strconv.Itoa(i))}, {Key: "h" + strconv.Itoa(i), Value: []byte("x")}})
		s.Seal()
		digests = append(digests, s.Digest().String())
	}
	if v, ok := s.LatestSealed(); !ok || v != 5 {
		t.Fatalf("LatestSealed = %d ok=%v", v, ok)
	}
	for h := uint64(1); h <= 5; h++ {
		r, err := s.ReaderAt(h)
		if err != nil {
			t.Fatalf("ReaderAt(%d): %v", h, err)
		}
		if v, _ := r.Get("k"); string(v) != strconv.FormatUint(h, 10) {
			t.Fatalf("ReaderAt(%d).Get(k) = %q", h, v)
		}
		if r.Version() != h || r.Digest().String() != digests[h-1] {
			t.Fatalf("ReaderAt(%d) version/digest mismatch", h)
		}
		if r.Len() != 1+int(h) {
			t.Fatalf("ReaderAt(%d).Len = %d, want %d", h, r.Len(), 1+h)
		}
	}

	// Pins taken before the floor advances stay readable; new pins below
	// the floor fail typed.
	pinned, err := s.ReaderAt(2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFloor(4)
	if v, _ := pinned.Get("k"); string(v) != "2" {
		t.Fatal("existing pin invalidated by SetFloor")
	}
	if _, err := s.ReaderAt(2); !errors.Is(err, ErrHeightPruned) {
		t.Fatalf("ReaderAt below floor: %v, want ErrHeightPruned", err)
	}
	if _, err := s.ReaderAt(99); !errors.Is(err, ErrHeightUnknown) {
		t.Fatalf("ReaderAt above head: %v, want ErrHeightUnknown", err)
	}
	if f, ok := s.OldestRetained(); !ok || f != 4 {
		t.Fatalf("OldestRetained = %d ok=%v, want 4", f, ok)
	}

	// Sealing an unchanged version is a no-op.
	s.Seal()
	s.Seal()
	if v, _ := s.LatestSealed(); v != 5 {
		t.Fatalf("duplicate Seal changed window: %d", v)
	}
}

func TestRetentionCap(t *testing.T) {
	s := NewStore()
	s.maxRetain = 8
	for i := 0; i < 40; i++ {
		s.Apply(WriteSet{{Key: "k" + strconv.Itoa(i%4), Value: []byte{byte(i)}}})
		s.Seal()
	}
	if f, _ := s.OldestRetained(); f != 33 {
		t.Fatalf("floor after cap = %d, want 33", f)
	}
	if _, err := s.ReaderAt(1); !errors.Is(err, ErrHeightPruned) {
		t.Fatalf("capped-out height: %v", err)
	}
}

func TestCommitRecordIndex(t *testing.T) {
	s := NewStore()
	s.Apply(WriteSet{{Key: "a", Value: []byte("1")}})
	s.RecordCommit("tx1")
	s.Apply(WriteSet{{Key: "a", Value: []byte("2")}})
	s.RecordCommit("tx2")
	s.RecordCommit("tx2") // replay must be idempotent
	if v, ok := s.CommittedAt("tx1"); !ok || v != 1 {
		t.Fatalf("tx1 at %d ok=%v", v, ok)
	}
	if v, ok := s.CommittedAt("tx2"); !ok || v != 2 {
		t.Fatalf("tx2 at %d ok=%v", v, ok)
	}
	if _, ok := s.CommittedAt("nope"); ok {
		t.Fatal("unknown txid reported committed")
	}
	if len(s.commitQ) != 2 {
		t.Fatalf("commitQ len %d after idempotent re-record", len(s.commitQ))
	}
}

func TestRestoreResetsRetention(t *testing.T) {
	s := NewStore()
	s.Apply(WriteSet{{Key: "a", Value: []byte("1")}})
	s.Seal()
	s.RecordCommit("tx1")
	sn := s.Head().Snapshot()

	r := NewStore()
	r.Apply(WriteSet{{Key: "z", Value: []byte("9")}})
	r.Seal()
	r.Restore(sn)
	if _, ok := r.LatestSealed(); ok {
		t.Fatal("Restore kept a sealed window from the discarded history")
	}
	if _, ok := r.CommittedAt("tx1"); ok {
		t.Fatal("Restore kept commit records")
	}
	if v, _ := r.Get("a"); string(v) != "1" {
		t.Fatalf("restored a = %q", v)
	}
	if r.Digest() != sn.Digest || r.Version() != sn.Version {
		t.Fatal("restore did not carry digest/version")
	}
	// Restored store seals and serves readers normally.
	r.Seal()
	rd, err := r.ReaderAt(sn.Version)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != 1 {
		t.Fatalf("restored reader len %d", rd.Len())
	}
}

// Property (satellite 4): a height-pinned reader returns byte-identical
// results while concurrent blocks commit and the checkpoint advances past
// the pinned height — a new pin below the floor fails with the typed
// ErrHeightPruned, and an existing pin never mixes versions.
func TestPinnedReaderStableUnderConcurrentCommits(t *testing.T) {
	const (
		keys   = 64
		blocks = 400
		pinned = 20
	)
	s := NewStore()
	rng := rand.New(rand.NewSource(7))

	// Build history up to the pin height, remembering the expected bytes.
	expect := make(map[string]string)
	applyBlock := func(i int) {
		var ws WriteSet
		for n := 0; n < 1+rng.Intn(4); n++ {
			k := "acct" + strconv.Itoa(rng.Intn(keys))
			if rng.Intn(8) == 0 {
				ws = append(ws, Write{Key: k, Value: nil})
			} else {
				ws = append(ws, Write{Key: k, Value: []byte(fmt.Sprintf("v%d-%d", i, n))})
			}
		}
		s.Apply(ws)
		s.Seal()
	}
	for i := 0; i < pinned; i++ {
		applyBlock(i)
	}
	pinReader, err := s.ReaderAt(uint64(pinned))
	if err != nil {
		t.Fatal(err)
	}
	for it := pinReader.Iter("", ""); ; {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		expect[k] = string(v)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 4)
	// Readers hammer the pinned view while the writer commits blocks and
	// advances the checkpoint floor past the pin.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r.Intn(2) == 0 {
					got := make(map[string]string, len(expect))
					for it := pinReader.Iter("", ""); ; {
						k, v, ok := it.Next()
						if !ok {
							break
						}
						got[k] = string(v)
					}
					if len(got) != len(expect) {
						fail <- fmt.Sprintf("pinned scan saw %d keys, want %d", len(got), len(expect))
						return
					}
					for k, v := range expect {
						if got[k] != v {
							fail <- fmt.Sprintf("pinned scan %s = %q, want %q", k, got[k], v)
							return
						}
					}
				} else {
					k := "acct" + strconv.Itoa(r.Intn(keys))
					v, ok := pinReader.Get(k)
					want, wantOK := expect[k]
					if ok != wantOK || (ok && string(v) != want) {
						fail <- fmt.Sprintf("pinned get %s = %q/%v, want %q/%v", k, v, ok, want, wantOK)
						return
					}
				}
				// Re-pinning must be all-or-nothing: either the height is
				// still sealed (and byte-identical) or it is typed-pruned.
				re, err := s.ReaderAt(uint64(pinned))
				switch {
				case err == nil:
					if re.Version() != uint64(pinned) {
						fail <- "re-pin returned wrong version"
						return
					}
					if v, ok := re.Get("acct0"); ok != (expect["acct0"] != "") && string(v) != expect["acct0"] {
						fail <- "re-pin mixed versions"
						return
					}
				case errors.Is(err, ErrHeightPruned):
					// Checkpoint passed the pin: the typed contract.
				default:
					fail <- fmt.Sprintf("re-pin unexpected error: %v", err)
					return
				}
			}
		}(int64(100 + w))
	}

	for i := pinned; i < blocks; i++ {
		applyBlock(i)
		if i%10 == 0 {
			s.SetFloor(s.Version() - 5) // checkpoint advances past the pin
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if _, err := s.ReaderAt(uint64(pinned)); !errors.Is(err, ErrHeightPruned) {
		t.Fatalf("pin after checkpoint advance: %v, want ErrHeightPruned", err)
	}

	// The pinned view is still byte-identical after all 400 blocks.
	for k, want := range expect {
		if v, ok := pinReader.Get(k); !ok || string(v) != want {
			t.Fatalf("after history: pinned %s = %q/%v, want %q", k, v, ok, want)
		}
	}
}

// The chunked index must agree with a plain map across random workloads,
// and sealed views must be isolated from later mutation.
func TestStoreMatchesModelAcrossSeals(t *testing.T) {
	s := NewStore()
	model := make(map[string]string)
	sealedModels := make(map[uint64]map[string]string)
	rng := rand.New(rand.NewSource(42))

	for step := 0; step < 2000; step++ {
		k := "key" + strconv.Itoa(rng.Intn(300))
		if rng.Intn(5) == 0 {
			s.Apply(WriteSet{{Key: k, Value: nil}})
			delete(model, k)
		} else {
			v := strconv.Itoa(step)
			s.Apply(WriteSet{{Key: k, Value: []byte(v)}})
			model[k] = v
		}
		if rng.Intn(20) == 0 {
			s.Seal()
			snap := make(map[string]string, len(model))
			for mk, mv := range model {
				snap[mk] = mv
			}
			sealedModels[s.Version()] = snap
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("live len %d, model %d", s.Len(), len(model))
	}
	for k, v := range model {
		if got, ok := s.Get(k); !ok || string(got) != v {
			t.Fatalf("live %s = %q/%v, want %q", k, got, ok, v)
		}
	}
	checked := 0
	for ver, m := range sealedModels {
		r, err := s.ReaderAt(ver)
		if errors.Is(err, ErrHeightPruned) {
			continue
		}
		if err != nil {
			t.Fatalf("ReaderAt(%d): %v", ver, err)
		}
		if r.Len() != len(m) {
			t.Fatalf("sealed %d len %d, model %d", ver, r.Len(), len(m))
		}
		for it := r.Iter("", ""); ; {
			k, v, ok := it.Next()
			if !ok {
				break
			}
			if m[k] != string(v) {
				t.Fatalf("sealed %d: %s = %q, model %q", ver, k, v, m[k])
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no sealed versions survived to be checked")
	}
}
