package chain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockcrypto"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Apply(WriteSet{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}})
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q ok=%v", v, ok)
	}
	if s.Len() != 2 || s.Version() != 1 {
		t.Fatalf("len=%d version=%d, want 2/1", s.Len(), s.Version())
	}
	s.Apply(WriteSet{{Key: "a", Value: nil}})
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	// Returned values must be copies.
	s.Apply(WriteSet{{Key: "c", Value: []byte("x")}})
	v, _ := s.Get("c")
	v[0] = 'y'
	v2, _ := s.Get("c")
	if string(v2) != "x" {
		t.Fatal("Get returned aliased storage")
	}
}

func TestStoreDigestTracksHistory(t *testing.T) {
	a, b := NewStore(), NewStore()
	ws1 := WriteSet{{Key: "k", Value: []byte("v")}}
	ws2 := WriteSet{{Key: "k", Value: []byte("w")}}
	a.Apply(ws1)
	a.Apply(ws2)
	b.Apply(ws1)
	if a.Digest() == b.Digest() {
		t.Fatal("different histories gave same digest")
	}
	b.Apply(ws2)
	if a.Digest() != b.Digest() {
		t.Fatal("same histories gave different digests")
	}
	// Empty write-set is a no-op.
	d := a.Digest()
	a.Apply(nil)
	if a.Digest() != d || a.Version() != 2 {
		t.Fatal("empty write-set changed state")
	}
}

func TestWriteSetDigestCanonical(t *testing.T) {
	ws1 := WriteSet{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}}
	ws2 := WriteSet{{Key: "b", Value: []byte("2")}, {Key: "a", Value: []byte("1")}}
	if ws1.Digest() != ws2.Digest() {
		t.Fatal("write-set digest depends on order")
	}
	// Key/value boundary must be unambiguous.
	ws3 := WriteSet{{Key: "ab", Value: []byte("c")}}
	ws4 := WriteSet{{Key: "a", Value: []byte("bc")}}
	if ws3.Digest() == ws4.Digest() {
		t.Fatal("write-set digest boundary ambiguity")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore()
	s.Apply(WriteSet{{Key: "a", Value: []byte("1")}, {Key: "b", Value: []byte("2")}})
	sn := s.Head().Snapshot()
	s.Apply(WriteSet{{Key: "a", Value: []byte("9")}})

	r := NewStore()
	r.Restore(sn)
	if v, _ := r.Get("a"); string(v) != "1" {
		t.Fatalf("restored a = %q, want 1", v)
	}
	if r.Digest() != sn.Digest || r.Version() != sn.Version {
		t.Fatal("restore did not carry digest/version")
	}
	// Snapshot is independent of subsequent mutation.
	if v, _ := s.Get("a"); string(v) != "9" {
		t.Fatal("original store lost its mutation")
	}
	if sn.SizeBytes() <= 0 {
		t.Fatal("snapshot size must be positive")
	}
}

func TestMerkleRootAndProofs(t *testing.T) {
	var leaves []blockcrypto.Digest
	for i := 0; i < 7; i++ {
		leaves = append(leaves, blockcrypto.Hash([]byte{byte(i)}))
	}
	root := MerkleRoot(leaves)
	if root.IsZero() {
		t.Fatal("zero root for nonempty leaves")
	}
	for i := range leaves {
		p := BuildMerkleProof(leaves, i)
		if !VerifyMerkleProof(root, leaves[i], p) {
			t.Fatalf("proof %d rejected", i)
		}
		if VerifyMerkleProof(root, blockcrypto.Hash([]byte("evil")), p) {
			t.Fatalf("proof %d accepted wrong leaf", i)
		}
	}
	if !MerkleRoot(nil).IsZero() {
		t.Fatal("root of zero leaves should be zero")
	}
	one := []blockcrypto.Digest{blockcrypto.Hash([]byte("x"))}
	if MerkleRoot(one) != one[0] {
		t.Fatal("root of single leaf should be the leaf")
	}
}

// Property: Merkle proofs verify for every index across random leaf counts,
// and the root changes if any leaf changes.
func TestMerkleProperty(t *testing.T) {
	f := func(n uint8, flip uint8) bool {
		count := int(n%32) + 1
		leaves := make([]blockcrypto.Digest, count)
		for i := range leaves {
			leaves[i] = blockcrypto.Hash([]byte{byte(i), n})
		}
		root := MerkleRoot(leaves)
		for i := range leaves {
			if !VerifyMerkleProof(root, leaves[i], BuildMerkleProof(leaves, i)) {
				return false
			}
		}
		j := int(flip) % count
		mut := append([]blockcrypto.Digest(nil), leaves...)
		mut[j] = blockcrypto.Hash([]byte("mut"))
		return MerkleRoot(mut) != root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func mkBlock(l *Ledger, txs []Tx) *Block {
	return &Block{Header: Header{
		Height:   l.Height(),
		PrevHash: l.TipHash(),
		TxRoot:   TxRoot(txs),
	}, Txs: txs}
}

func TestLedgerAppendAndVerify(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 5; i++ {
		txs := []Tx{{ID: uint64(i), Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}}}
		if err := l.Append(mkBlock(l, txs)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Height() != 5 {
		t.Fatalf("height = %d, want 5", l.Height())
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if l.Block(2).Header.Height != 2 {
		t.Fatal("Block(2) wrong")
	}
	if l.Block(99) != nil {
		t.Fatal("out-of-range Block not nil")
	}
}

func TestLedgerRejectsBadBlocks(t *testing.T) {
	l := NewLedger()
	if err := l.Append(mkBlock(l, nil)); err != nil {
		t.Fatal(err)
	}
	// Wrong height.
	b := mkBlock(l, nil)
	b.Header.Height = 7
	if err := l.Append(b); err == nil {
		t.Fatal("accepted wrong height")
	}
	// Wrong prev hash.
	b = mkBlock(l, nil)
	b.Header.PrevHash = blockcrypto.Hash([]byte("bogus"))
	if err := l.Append(b); err == nil {
		t.Fatal("accepted wrong prev hash")
	}
	// Tx root mismatch.
	b = mkBlock(l, []Tx{{ID: 1}})
	b.Txs = append(b.Txs, Tx{ID: 2})
	if err := l.Append(b); err == nil {
		t.Fatal("accepted tx-root mismatch")
	}
}

func TestTxDigestBindsFields(t *testing.T) {
	base := Tx{ID: 1, Chaincode: "cc", Fn: "f", Args: []string{"a", "b"}, Client: 9}
	variants := []Tx{
		{ID: 2, Chaincode: "cc", Fn: "f", Args: []string{"a", "b"}, Client: 9},
		{ID: 1, Chaincode: "cd", Fn: "f", Args: []string{"a", "b"}, Client: 9},
		{ID: 1, Chaincode: "cc", Fn: "g", Args: []string{"a", "b"}, Client: 9},
		{ID: 1, Chaincode: "cc", Fn: "f", Args: []string{"ab"}, Client: 9},
		{ID: 1, Chaincode: "cc", Fn: "f", Args: []string{"a", "b"}, Client: 8},
	}
	for i, v := range variants {
		if v.Digest() == base.Digest() {
			t.Fatalf("variant %d collides with base", i)
		}
	}
	if base.SizeBytes() <= 0 {
		t.Fatal("tx size must be positive")
	}
}

func TestBlockDigestCommitsToTxs(t *testing.T) {
	l := NewLedger()
	b1 := mkBlock(l, []Tx{{ID: 1}})
	b2 := mkBlock(l, []Tx{{ID: 2}})
	if b1.Digest() == b2.Digest() {
		t.Fatal("blocks with different txs share digest")
	}
}
