package sharding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simnet"
)

func TestHypergeomBasics(t *testing.T) {
	// Sum over support equals 1.
	sum := 0.0
	for x := 0; x <= 20; x++ {
		sum += HypergeomPMF(100, 25, 20, x)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", sum)
	}
	// Degenerate cases.
	if HypergeomPMF(10, 5, 3, 4) != 0 {
		t.Fatal("x > n should have zero mass")
	}
	if HypergeomPMF(10, 2, 3, 3) != 0 {
		t.Fatal("x > F should have zero mass")
	}
	// Known value: drawing 2 from N=4 with F=2, P[X=1] = 2*2/(4 choose 2)=2/3.
	if got := HypergeomPMF(4, 2, 2, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("pmf = %v, want 2/3", got)
	}
}

func TestFaultyProbMonotonicity(t *testing.T) {
	// More Byzantine nodes in the population -> higher faulty probability.
	p1 := FaultyProb(1000, 100, 80, 40)
	p2 := FaultyProb(1000, 250, 80, 40)
	if p2 <= p1 {
		t.Fatalf("faulty prob not monotone in F: %v vs %v", p1, p2)
	}
	// Larger committees (same rule fraction) -> lower probability.
	p3 := FaultyProb(1000, 250, 40, 20)
	p4 := FaultyProb(1000, 250, 80, 40)
	if p4 >= p3 {
		t.Fatalf("faulty prob not decreasing in n: n=40 %v vs n=80 %v", p3, p4)
	}
}

func TestCommitteeSizesMatchPaper(t *testing.T) {
	// §5.2: against a 25% adversary, AHL's f=(n-1)/2 rule needs ~80-node
	// committees for 2^-20 failure probability, whereas PBFT's
	// f=(n-1)/3 rule needs 600+ nodes. Exact values depend on N; the
	// paper's framing uses a large network.
	N := 2000
	ahl := CommitteeSize(N, 0.25, HalfRule, NeglProb)
	pbft := CommitteeSize(N, 0.25, ThirdRule, NeglProb)
	if ahl < 60 || ahl > 110 {
		t.Fatalf("AHL committee size = %d, want ~80", ahl)
	}
	if pbft < 450 {
		t.Fatalf("PBFT committee size = %d, want 600+ (at least >450)", pbft)
	}
	if pbft < 5*ahl {
		t.Fatalf("expected ~an order of magnitude gap: ahl=%d pbft=%d", ahl, pbft)
	}
}

func TestCommitteeSizeSmallerAdversary(t *testing.T) {
	N := 2000
	n125 := CommitteeSize(N, 0.125, HalfRule, NeglProb)
	n25 := CommitteeSize(N, 0.25, HalfRule, NeglProb)
	if n125 >= n25 {
		t.Fatalf("12.5%% adversary should need smaller committees: %d vs %d", n125, n25)
	}
	// §7.3 reports 27 and 79 for 12.5% and 25%.
	if n125 < 18 || n125 > 40 {
		t.Fatalf("12.5%% committee size = %d, want ~27", n125)
	}
}

func TestEpochTransitionBound(t *testing.T) {
	// §5.3 example: n=80, f=(n-1)/2, k=10, B=log(n)~6 gives ~1e-5.
	N, s := 2000, 0.25
	F := int(s * float64(N))
	p := EpochTransitionFaultProb(N, F, 80, 39, 10, 6)
	if p <= 0 || p > 1e-3 {
		t.Fatalf("transition fault prob = %v, want small (~1e-5)", p)
	}
	// Larger B -> fewer intermediate committees -> smaller bound.
	pBig := EpochTransitionFaultProb(N, F, 80, 39, 10, 20)
	if pBig > p {
		t.Fatalf("bound should shrink with B: B=6 %v vs B=20 %v", p, pBig)
	}
}

func TestCrossShardProb(t *testing.T) {
	// d=1 always lands in exactly one shard.
	if got := CrossShardProb(1, 8, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("d=1 x=1 = %v, want 1", got)
	}
	// Distribution over x sums to 1.
	for _, d := range []int{2, 3, 5} {
		sum := 0.0
		for x := 1; x <= d; x++ {
			sum += CrossShardProb(d, 8, x)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("d=%d: probabilities sum to %v", d, sum)
		}
	}
	// d=2, k shards: P(single shard) = 1/k.
	if got := CrossShardProb(2, 10, 1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("P = %v, want 0.1", got)
	}
	// Appendix B's claim: the vast majority of multi-argument txs are
	// cross-shard once there are several shards.
	if f := CrossShardFraction(3, 12); f < 0.8 {
		t.Fatalf("cross-shard fraction = %v, want > 0.8", f)
	}
}

func TestAssignIsPartition(t *testing.T) {
	nodes := make([]simnet.NodeID, 100)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	a := Assign(1, 12345, nodes, 7)
	if len(a.Committees) != 7 {
		t.Fatalf("committees = %d, want 7", len(a.Committees))
	}
	seen := make(map[simnet.NodeID]bool)
	for _, c := range a.Committees {
		if len(c) < 100/7 || len(c) > 100/7+1 {
			t.Fatalf("committee size %d not balanced", len(c))
		}
		for _, m := range c {
			if seen[m] {
				t.Fatalf("node %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("%d nodes assigned, want 100", len(seen))
	}
}

func TestAssignDeterministicAndSeedSensitive(t *testing.T) {
	nodes := []simnet.NodeID{5, 3, 1, 9, 7, 2, 8, 0, 4, 6}
	a := Assign(1, 42, nodes, 3)
	shuffled := []simnet.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := Assign(1, 42, shuffled, 3)
	for c := range a.Committees {
		for i := range a.Committees[c] {
			if a.Committees[c][i] != b.Committees[c][i] {
				t.Fatal("assignment depends on input order")
			}
		}
	}
	c := Assign(1, 43, nodes, 3)
	same := true
	for ci := range a.Committees {
		for i := range a.Committees[ci] {
			if a.Committees[ci][i] != c.Committees[ci][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical assignment")
	}
	if a.CommitteeOf(5) == -1 || a.CommitteeOf(99) != -1 {
		t.Fatal("CommitteeOf wrong")
	}
}

// Property: any (rnd, node count, k) yields a partition.
func TestAssignPartitionProperty(t *testing.T) {
	f := func(rnd uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw%8) + 1
		if k > n {
			k = n
		}
		nodes := make([]simnet.NodeID, n)
		for i := range nodes {
			nodes[i] = simnet.NodeID(i * 3)
		}
		a := Assign(1, rnd, nodes, k)
		seen := make(map[simnet.NodeID]bool)
		total := 0
		for _, c := range a.Committees {
			for _, m := range c {
				if seen[m] {
					return false
				}
				seen[m] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanTransitionRespectsBatchSize(t *testing.T) {
	nodes := make([]simnet.NodeID, 60)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	old := Assign(1, 100, nodes, 4)
	next := Assign(2, 200, nodes, 4)
	b := 3
	steps := PlanTransition(old, next, b)
	moved := make(map[simnet.NodeID]bool)
	for _, step := range steps {
		perSource := make(map[int]int)
		for _, mv := range step.Moves {
			perSource[mv.From]++
			if moved[mv.Node] {
				t.Fatalf("node %d moved twice", mv.Node)
			}
			moved[mv.Node] = true
			if old.CommitteeOf(mv.Node) != mv.From || next.CommitteeOf(mv.Node) != mv.To {
				t.Fatal("move endpoints inconsistent with assignments")
			}
		}
		for src, cnt := range perSource {
			if cnt > b {
				t.Fatalf("step moves %d nodes out of committee %d, cap %d", cnt, src, b)
			}
		}
	}
	// Every node whose committee changed must move exactly once.
	for _, id := range nodes {
		if old.CommitteeOf(id) != next.CommitteeOf(id) && !moved[id] {
			t.Fatalf("transitioning node %d never moved", id)
		}
		if old.CommitteeOf(id) == next.CommitteeOf(id) && moved[id] {
			t.Fatalf("stationary node %d moved", id)
		}
	}
}

func TestBeaconProtocolAgreesQuickly(t *testing.T) {
	res := RunBeaconProtocol(1, 32, DefaultLBits(32), 2*time.Second, simnet.LAN())
	if res.Rnd == 0 && res.Rounds == 0 {
		t.Fatal("no beacon output")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	// With l = log2(32) - log2(5) ~ 2.7 bits, a round succeeds with
	// overwhelming probability; a handful of rounds at most.
	if res.Rounds > 4 {
		t.Fatalf("took %d rounds, expected <= 4", res.Rounds)
	}
	// Deterministic given the seed.
	res2 := RunBeaconProtocol(1, 32, DefaultLBits(32), 2*time.Second, simnet.LAN())
	if res2.Rnd != res.Rnd {
		t.Fatal("beacon protocol not deterministic per seed")
	}
}

func TestBeaconCommunicationScalesWithL(t *testing.T) {
	// l=0: every node broadcasts -> O(N^2) messages. l=DefaultLBits:
	// O(N log N).
	all := RunBeaconProtocol(2, 64, 0, time.Second, simnet.LAN())
	some := RunBeaconProtocol(2, 64, DefaultLBits(64), time.Second, simnet.LAN())
	if some.Messages >= all.Messages {
		t.Fatalf("q-filter should cut messages: %d vs %d", some.Messages, all.Messages)
	}
}

func TestRandHoundSlowerThanBeacon(t *testing.T) {
	n := 128
	beacon := RunBeaconProtocol(3, n, DefaultLBits(n), 2*time.Second, simnet.LAN())
	rh := RunRandHound(3, n, 16, simnet.LAN())
	if rh <= beacon.Elapsed {
		t.Fatalf("RandHound (%v) should be slower than the TEE beacon (%v)", rh, beacon.Elapsed)
	}
	// Figure 11 reports up to ~32x; with leader-side O(N·c) verification
	// the gap must be at least several-fold at 128 nodes.
	if float64(rh) < 3*float64(beacon.Elapsed) {
		t.Fatalf("gap too small: rh=%v beacon=%v", rh, beacon.Elapsed)
	}
}

func TestRandHoundScalesSuperlinearly(t *testing.T) {
	small := RunRandHound(4, 64, 16, simnet.LAN())
	big := RunRandHound(4, 256, 16, simnet.LAN())
	if big <= small {
		t.Fatalf("RandHound should slow down with N: %v vs %v", small, big)
	}
}

func TestDefaultLBits(t *testing.T) {
	if DefaultLBits(2) != 0 {
		t.Fatal("tiny networks should use l=0")
	}
	l512 := DefaultLBits(512)
	if l512 < 5 || l512 > 6 {
		t.Fatalf("l(512) = %d, want ~ log2(512)-log2(9) ~ 5.8 -> 5", l512)
	}
}

func TestDeltaFor(t *testing.T) {
	lan := DeltaFor(simnet.LAN())
	if lan <= 0 {
		t.Fatal("no delta for LAN")
	}
	ids := []simnet.NodeID{0, 1, 2, 3}
	gcp := DeltaFor(simnet.GCP(8, ids))
	if gcp <= lan {
		t.Fatal("GCP delta should exceed LAN delta")
	}
	// Paper: Δ ranges 5.9–15 s on GCP and 2–4.5 s on the cluster.
	if gcp < 5*time.Second || gcp > 16*time.Second {
		t.Fatalf("gcp delta = %v, want within the paper's 5.9-15s range", gcp)
	}
	if lan < 2*time.Second || lan > 5*time.Second {
		t.Fatalf("lan delta = %v, want within the paper's 2-4.5s range", lan)
	}
}

func TestRepeatProbProperties(t *testing.T) {
	// l=0: every node broadcasts, a repeat is impossible.
	if p := RepeatProb(100, 0); p != 0 {
		t.Fatalf("RepeatProb(100, 0) = %g, want 0", p)
	}
	// l=log2(N): Prepeat -> (1-1/N)^N ~ 1/e.
	if p := RepeatProb(1024, 10); math.Abs(p-1/math.E) > 0.01 {
		t.Fatalf("RepeatProb(1024, 10) = %g, want ~1/e", p)
	}
	// Monotone in l: fewer broadcasters, more repeats.
	prev := -1.0
	for l := uint(0); l <= 12; l++ {
		p := RepeatProb(256, l)
		if p < prev {
			t.Fatalf("RepeatProb not monotone at l=%d", l)
		}
		if p < 0 || p > 1 {
			t.Fatalf("RepeatProb(256, %d) = %g out of [0,1]", l, p)
		}
		prev = p
	}
	// The paper's default keeps Prepeat < 2^-11.
	n := 1000
	if p := RepeatProb(n, DefaultLBits(n)); p > math.Pow(2, -11) {
		t.Fatalf("default l gives Prepeat %g > 2^-11", p)
	}
}

func TestExpectedBroadcasters(t *testing.T) {
	if got := ExpectedBroadcasters(128, 0); got != 128 {
		t.Fatalf("l=0: %g broadcasters, want 128", got)
	}
	if got := ExpectedBroadcasters(128, 7); got != 1 {
		t.Fatalf("l=log2(128): %g broadcasters, want 1", got)
	}
	if got := ExpectedBroadcasters(100, 2); got != 25 {
		t.Fatalf("l=2: %g, want 25", got)
	}
}

func TestBeaconMessagesShrinkWithL(t *testing.T) {
	lat := simnet.LAN()
	delta := DeltaFor(lat)
	loose := RunBeaconProtocol(7, 64, 0, delta, lat)
	tight := RunBeaconProtocol(7, 64, 5, delta, lat)
	if tight.Messages >= loose.Messages {
		t.Fatalf("l=5 used %d messages, l=0 used %d; filter saved nothing",
			tight.Messages, loose.Messages)
	}
	if loose.Rounds != 1 {
		t.Fatalf("l=0 must finish in one round, took %d", loose.Rounds)
	}
}
