package sharding

import (
	"math"
)

// logChoose returns log C(n, k) computed in log-space for stability.
func logChoose(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(n + 1)
	ln2, _ := math.Lgamma(k + 1)
	ln3, _ := math.Lgamma(n - k + 1)
	return ln1 - ln2 - ln3
}

// HypergeomPMF returns Pr[X = x] for X ~ Hypergeometric(N, F, n): drawing
// n nodes without replacement from a population of N containing F
// Byzantine ones.
func HypergeomPMF(N, F, n, x int) float64 {
	if x < 0 || x > n || x > F || n-x > N-F {
		return 0
	}
	l := logChoose(float64(F), float64(x)) +
		logChoose(float64(N-F), float64(n-x)) -
		logChoose(float64(N), float64(n))
	return math.Exp(l)
}

// FaultyProb returns Equation 1: the probability that a randomly sampled
// committee of size n contains at least f Byzantine nodes, out of a
// network of N nodes of which F are Byzantine.
func FaultyProb(N, F, n, f int) float64 {
	p := 0.0
	for x := f; x <= n; x++ {
		p += HypergeomPMF(N, F, n, x)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ResilienceRule maps a committee size to the failure threshold its
// consensus protocol tolerates.
type ResilienceRule func(n int) int

// ThirdRule is PBFT's f = floor((n-1)/3).
func ThirdRule(n int) int { return (n - 1) / 3 }

// HalfRule is AHL's f = floor((n-1)/2).
func HalfRule(n int) int { return (n - 1) / 2 }

// CommitteeSize returns the smallest committee size n such that the
// probability of sampling a faulty committee (Equation 1, with the
// protocol's threshold f = rule(n)) is at most maxProb, for a network of
// N nodes with adversarial fraction s. It returns 0 if no n <= N
// satisfies the bound.
func CommitteeSize(N int, s float64, rule ResilienceRule, maxProb float64) int {
	F := int(s * float64(N))
	for n := 1; n <= N; n++ {
		f := rule(n)
		if f < 1 {
			continue
		}
		if FaultyProb(N, F, n, f) <= maxProb {
			return n
		}
	}
	return 0
}

// NeglProb is the paper's negligibility target, 2^-20.
var NeglProb = math.Pow(2, -20)

// RepeatProb returns the probability that a beacon round produces no
// certificate at all, Prepeat = (1 - 2^-l)^N (§5.1): the epoch number is
// then incremented and the protocol repeats.
func RepeatProb(n int, l uint) float64 {
	return math.Pow(1-math.Pow(2, -float64(l)), float64(n))
}

// ExpectedBroadcasters returns the expected number of nodes whose enclave
// emits a certificate in one round, N·2^-l — the factor by which the
// l-bit filter cuts the O(N²) all-broadcast communication (§5.1).
func ExpectedBroadcasters(n int, l uint) float64 {
	return float64(n) * math.Pow(2, -float64(l))
}

// EpochTransitionFaultProb returns Equation 2's Boole bound on the
// probability that any intermediate committee during one shard's epoch
// transition is faulty, when B nodes swap at a time: there are about
// n(k-1)/(kB) intermediate committees, each faulty with Equation 1's
// probability.
func EpochTransitionFaultProb(N, F, n, f, k, B int) float64 {
	if B < 1 {
		B = 1
	}
	steps := int(math.Ceil(float64(n*(k-1)) / float64(k*B)))
	p := float64(steps) * FaultyProb(N, F, n, f)
	if p > 1 {
		p = 1
	}
	return p
}

// CrossShardProb returns Equation 3 (Appendix B): the probability that a
// transaction touching d uniformly-hashed arguments spans exactly x of k
// shards.
func CrossShardProb(d, k, x int) float64 {
	if x < 1 || x > d || x > k {
		return 0
	}
	// C(k, x) ways to pick the shards, times the number of surjections
	// from d arguments onto the x shards, over k^d total mappings.
	surj := 0.0
	for j := 0; j <= x; j++ {
		sign := 1.0
		if j%2 == 1 {
			sign = -1
		}
		surj += sign * math.Exp(logChoose(float64(x), float64(j))+float64(d)*math.Log(float64(x-j)))
	}
	l := logChoose(float64(k), float64(x)) + math.Log(surj) - float64(d)*math.Log(float64(k))
	return math.Exp(l)
}

// CrossShardFraction returns the probability that a d-argument transaction
// is distributed (touches more than one shard).
func CrossShardFraction(d, k int) float64 {
	if k <= 1 || d <= 1 {
		return 0
	}
	return 1 - CrossShardProb(d, k, 1)
}
