package sharding

import (
	"math"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/tee/beacon"
)

// This file implements the distributed randomness generation protocol of
// §5.1 over the simulated network. At each epoch every node invokes its
// RandomnessBeacon enclave; the (expected N·2^-l) lucky nodes broadcast
// their certificates; after the synchrony bound Δ every node locks in the
// lowest rnd it received. If nobody was lucky the epoch number is
// incremented and the protocol repeats.

// DefaultLBits returns the paper's choice l = log2(N) - log2(log2(N)),
// giving O(N log N) communication with repeat probability below 2^-11.
func DefaultLBits(n int) uint {
	if n < 4 {
		return 0
	}
	l := math.Log2(float64(n)) - math.Log2(math.Log2(float64(n)))
	if l < 0 {
		return 0
	}
	return uint(l)
}

// DeltaFor derives the synchrony bound Δ the way the paper does (§7.2):
// conservatively 3x the maximum propagation delay of a 1 KB message. The
// paper's empirical measurements include queueing under load, giving
// Δ = 2–4.5 s on the cluster and 5.9–15 s on GCP; we floor the bound
// accordingly rather than trust the unloaded link latency.
func DeltaFor(latency simnet.LatencyModel) time.Duration {
	switch m := latency.(type) {
	case *simnet.Regional:
		d := 20 * m.MaxDelay()
		if d < 6*time.Second {
			d = 6 * time.Second
		}
		return d
	case simnet.Uniform:
		d := 3 * (m.Base + m.Jitter)
		if d < 2*time.Second {
			d = 2 * time.Second
		}
		return d
	default:
		return 3 * time.Second
	}
}

// BeaconRunResult reports one distributed randomness generation.
type BeaconRunResult struct {
	Rnd      uint64
	Epoch    uint64
	Rounds   int           // 1 + number of repeats
	Elapsed  time.Duration // virtual time to lock-in
	Messages int           // network messages exchanged
}

const msgCert = "beacon/cert"

type beaconNode struct {
	ep      *simnet.Endpoint
	enclave *beacon.Beacon
	scheme  blockcrypto.Verifier
	costs   tee.CostModel

	best    uint64
	haveAny bool
}

func (b *beaconNode) Cost(m simnet.Message) time.Duration { return b.costs.Verify }

func (b *beaconNode) Handle(m simnet.Message) {
	cert := m.Payload.(beacon.Cert)
	if !cert.Verify(b.scheme) {
		return
	}
	if !b.haveAny || cert.Rnd < b.best {
		b.best = cert.Rnd
		b.haveAny = true
	}
}

// RunBeaconProtocol executes the full protocol on n fresh nodes and
// returns the agreed value, as seen by node 0. All nodes lock the same
// value because every certificate reaches every node within Δ.
func RunBeaconProtocol(seed int64, n int, lBits uint, delta time.Duration, latency simnet.LatencyModel) BeaconRunResult {
	engine := sim.NewEngine(seed)
	net := simnet.New(engine, latency)
	scheme := blockcrypto.NewSimScheme()
	nodes := make([]*beaconNode, n)
	costs := tee.DefaultCosts()
	for i := 0; i < n; i++ {
		ep := net.Attach(simnet.NodeID(i), simnet.DefaultSplitQueue())
		signer := scheme.NewSigner(blockcrypto.KeyID(i), engine.Rand())
		platform := tee.NewPlatform(engine, ep.CPU(), costs, signer, engine.Rand().Int63())
		nodes[i] = &beaconNode{
			ep:      ep,
			enclave: beacon.New(platform, lBits, delta),
			scheme:  scheme,
			costs:   costs,
		}
		ep.SetHandler(nodes[i])
	}

	var result BeaconRunResult
	var round func(epoch uint64)
	round = func(epoch uint64) {
		result.Rounds++
		for _, nd := range nodes {
			cert, err := nd.enclave.Generate(epoch)
			if err != nil {
				continue
			}
			if !nd.haveAny || cert.Rnd < nd.best {
				nd.best = cert.Rnd
				nd.haveAny = true
			}
			for _, to := range net.NodeIDs() {
				if to != nd.ep.ID() {
					nd.ep.Send(simnet.Message{To: to, Class: simnet.ClassConsensus,
						Type: msgCert, Payload: cert, Size: 1024})
				}
			}
		}
		engine.Schedule(delta, func() {
			if nodes[0].haveAny {
				result.Rnd = nodes[0].best
				result.Epoch = epoch
				result.Elapsed = time.Duration(engine.Now())
				engine.Stop()
				return
			}
			round(epoch + 1)
		})
	}
	// The genesis epoch may be invoked immediately; later epochs respect
	// the enclave cooldown, which the Δ pacing naturally satisfies.
	round(0)
	engine.Run(sim.Time(time.Hour))
	result.Messages = net.Messages
	return result
}
