package sharding

import (
	"repro/internal/simnet"
	"repro/internal/tee/beacon"
	"repro/internal/wire"
)

// Wire codecs for the shard-formation traffic: the trusted-beacon
// certificate broadcast and the RandHound baseline's protocol rounds
// (whose payloads the simulation models by size only — the wire frames
// carry just the envelope).

func init() {
	wire.Register(msgCert, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			c := p.(beacon.Cert)
			e.Uvarint(c.Epoch)
			e.Uvarint(c.Rnd)
			wire.PutReport(e, c.Report)
		},
		Decode: func(d *wire.Decoder) any {
			return beacon.Cert{Epoch: d.Uvarint(), Rnd: d.Uvarint(), Report: wire.Report(d)}
		},
	})
	for _, typ := range []string{msgRHInit, msgRHShare, msgRHResponse, msgRHFinal} {
		wire.Register(typ, wire.NilCodec())
	}
}

// WireSamples returns one populated message per sharding wire type; test
// support for the wire package's round-trip and fuzz corpus.
func WireSamples() []simnet.Message {
	msg := func(typ string, payload any) simnet.Message {
		return simnet.Message{From: 0, To: 1, Class: simnet.ClassConsensus, Type: typ, Payload: payload}
	}
	return []simnet.Message{
		msg(msgCert, beacon.Cert{Epoch: 3, Rnd: 12345}),
		msg(msgRHInit, nil),
		msg(msgRHShare, nil),
		msg(msgRHResponse, nil),
		msg(msgRHFinal, nil),
	}
}
