// Package sharding implements the shard formation machinery of §5: the
// committee-size mathematics (Equation 1), the epoch-transition safety
// bound (Equation 2), the cross-shard transaction probability (Appendix B,
// Equation 3), the distributed randomness-beacon protocol, node-to-
// committee assignment, and the RandHound baseline used in Figure 11.
//
// Role in the AHL design: a sharded blockchain is only as safe as its
// worst committee, so forming committees is a security problem before it
// is a performance one. Because the TEE-hardened consensus layer
// (internal/consensus/pbft) tolerates f < n/2 faults instead of PBFT's
// f < n/3, the hypergeometric sizing of Equation 1 yields ~80-node
// committees at a 25% adversary where 1/3-resilient designs need 600+ —
// the single biggest lever behind the paper's scalability. The TEE also
// supplies an unbiased randomness beacon (§5.1), replacing heavyweight
// distributed randomness (RandHound) with an l-bit-filtered broadcast
// that is up to 32× faster. Epoch transitions swap B = log(n) nodes per
// batch (Equation 2) so the system reconfigures while staying live —
// internal/core drives that schedule during resharding (Figure 12).
package sharding
