package sharding

import (
	"math/rand"
	"sort"

	"repro/internal/simnet"
)

// Assignment maps nodes to committees for one epoch.
type Assignment struct {
	Epoch      uint64
	Rnd        uint64
	Committees [][]simnet.NodeID
}

// Assign computes the epoch's node-to-committee assignment from the beacon
// output rnd (§5.1): a random permutation of the nodes seeded by rnd,
// divided into k approximately equal chunks.
func Assign(epoch uint64, rnd uint64, nodes []simnet.NodeID, k int) Assignment {
	if k < 1 {
		panic("sharding: k must be >= 1")
	}
	perm := append([]simnet.NodeID(nil), nodes...)
	// Deterministic base order regardless of caller's slice order.
	sort.Slice(perm, func(i, j int) bool { return perm[i] < perm[j] })
	rng := rand.New(rand.NewSource(int64(rnd)))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	committees := make([][]simnet.NodeID, k)
	base := len(perm) / k
	extra := len(perm) % k
	idx := 0
	for c := 0; c < k; c++ {
		size := base
		if c < extra {
			size++
		}
		committees[c] = append([]simnet.NodeID(nil), perm[idx:idx+size]...)
		idx += size
	}
	return Assignment{Epoch: epoch, Rnd: rnd, Committees: committees}
}

// CommitteeOf returns the committee index containing node id, or -1.
func (a Assignment) CommitteeOf(id simnet.NodeID) int {
	for c, members := range a.Committees {
		for _, m := range members {
			if m == id {
				return c
			}
		}
	}
	return -1
}

// TransitionStep is one batch of node moves during an epoch transition.
type TransitionStep struct {
	// Moves lists (node, from-committee, to-committee).
	Moves []Move
}

// Move relocates one node between committees.
type Move struct {
	Node simnet.NodeID
	From int
	To   int
}

// PlanTransition computes the batched reconfiguration schedule from old to
// new (§5.3): per step, at most B transitioning nodes leave each
// committee, in an order derived from the beacon value (unbiased). Nodes
// whose committee does not change never move.
func PlanTransition(old, next Assignment, b int) []TransitionStep {
	if b < 1 {
		b = 1
	}
	// Collect transitioning nodes per source committee, deterministically
	// ordered by the new epoch's randomness.
	perSource := make(map[int][]Move)
	for c, members := range old.Committees {
		for _, m := range members {
			to := next.CommitteeOf(m)
			if to != -1 && to != c {
				perSource[c] = append(perSource[c], Move{Node: m, From: c, To: to})
			}
		}
	}
	// Shuffle in committee-index order: the rng is shared, so iterating
	// the map here would consume its stream in a run-dependent order and
	// break the simulator's determinism guarantee.
	rng := rand.New(rand.NewSource(int64(next.Rnd) ^ 0x5eed))
	for c := 0; c < len(old.Committees); c++ {
		ms := perSource[c]
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
	}

	var steps []TransitionStep
	for {
		var step TransitionStep
		for c := 0; c < len(old.Committees); c++ {
			ms := perSource[c]
			take := b
			if take > len(ms) {
				take = len(ms)
			}
			step.Moves = append(step.Moves, ms[:take]...)
			perSource[c] = ms[take:]
		}
		if len(step.Moves) == 0 {
			return steps
		}
		steps = append(steps, step)
	}
}
