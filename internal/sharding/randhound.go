package sharding

import (
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// This file is a cost-faithful, message-level model of RandHound (Syta et
// al., IEEE S&P'17), the distributed randomness protocol OmniLedger uses
// for shard formation and the baseline of Figure 11 (right). RandHound
// partitions the N servers into groups of c (OmniLedger suggests c = 16)
// and runs publicly-verifiable secret sharing inside each group, with the
// client/leader verifying every share and transcript — O(N·c²)
// communication and a leader-side verification bottleneck.
//
// We model the protocol's three structural phases (share distribution
// inside groups, response collection, leader aggregation + transcript
// broadcast) with per-operation cryptographic costs calibrated so a
// 512-node run on LAN takes minutes, matching the runtimes reported by
// the RandHound paper and reproduced in the paper's Figure 11.

// RandHound per-operation costs.
const (
	rhShareCost  = 5 * time.Millisecond  // create one PVSS share + proof
	rhVerifyCost = 20 * time.Millisecond // verify one share/response (multi-exp)
)

// Message types.
const (
	msgRHInit     = "rh/init"
	msgRHShare    = "rh/share"
	msgRHResponse = "rh/response"
	msgRHFinal    = "rh/final"
)

type rhNode struct {
	ep     *simnet.Endpoint
	engine *sim.Engine
	all    []simnet.NodeID
	group  []simnet.NodeID
	leader simnet.NodeID
	c      int

	responded bool

	// Leader state.
	isLeader  bool
	responses int
	needed    int
	done      bool
	doneAt    time.Duration
}

func (r *rhNode) Cost(m simnet.Message) time.Duration {
	switch m.Type {
	case msgRHInit:
		// Derive group parameters and create c shares with proofs.
		return time.Duration(r.c) * rhShareCost
	case msgRHShare:
		return rhVerifyCost
	case msgRHResponse:
		// The leader verifies each response's c share proofs — the
		// O(N·c²) bottleneck of the protocol.
		return time.Duration(r.c) * rhVerifyCost
	case msgRHFinal:
		// Verify the published transcript for the node's own group.
		return time.Duration(r.c*r.c/64) * rhVerifyCost
	default:
		return 0
	}
}

func (r *rhNode) Handle(m simnet.Message) {
	switch m.Type {
	case msgRHInit:
		// Distribute one share to each group member.
		for _, to := range r.group {
			if to != r.ep.ID() {
				r.ep.Send(simnet.Message{To: to, Class: simnet.ClassConsensus,
					Type: msgRHShare, Payload: nil, Size: 512})
			}
		}
		// A group of one has nothing to wait for.
		if len(r.group) == 1 {
			r.respond()
		}
	case msgRHShare:
		// Respond to the leader after verifying the first share; the
		// verification cost of later shares still accrues on the CPU.
		r.respond()
	case msgRHResponse:
		if !r.isLeader || r.done {
			return
		}
		r.responses++
		if r.responses >= r.needed {
			r.done = true
			r.doneAt = time.Duration(r.engine.Now())
			// Aggregate + broadcast the final transcript.
			for _, to := range r.all {
				if to != r.ep.ID() {
					r.ep.Send(simnet.Message{To: to, Class: simnet.ClassConsensus,
						Type: msgRHFinal, Payload: nil, Size: 4096})
				}
			}
		}
	case msgRHFinal:
		// Non-leader nodes verify the transcript; nothing further.
	}
}

func (r *rhNode) respond() {
	if r.responded || r.isLeader {
		return
	}
	r.responded = true
	r.ep.Send(simnet.Message{To: r.leader, Class: simnet.ClassConsensus,
		Type: msgRHResponse, Payload: nil, Size: 2048})
}

// RunRandHound simulates one RandHound run over n nodes with group size c
// and returns the elapsed virtual time until the leader publishes the
// final randomness.
func RunRandHound(seed int64, n, c int, latency simnet.LatencyModel) time.Duration {
	engine := sim.NewEngine(seed)
	net := simnet.New(engine, latency)
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	leader := ids[0]
	nodes := make([]*rhNode, n)
	for i := range ids {
		ep := net.Attach(ids[i], simnet.DefaultSplitQueue())
		gStart := (i / c) * c
		gEnd := gStart + c
		if gEnd > n {
			gEnd = n
		}
		nodes[i] = &rhNode{
			ep:       ep,
			engine:   engine,
			all:      ids,
			group:    ids[gStart:gEnd],
			leader:   leader,
			c:        c,
			isLeader: ids[i] == leader,
			needed:   n - 1,
		}
		ep.SetHandler(nodes[i])
	}
	// Leader initiates: announce groups to everyone (including itself).
	engine.Schedule(0, func() {
		for _, nd := range nodes {
			if nd.ep.ID() == leader {
				nd.Handle(simnet.Message{Type: msgRHInit})
				continue
			}
			nodes[0].ep.Send(simnet.Message{To: nd.ep.ID(), Class: simnet.ClassConsensus,
				Type: msgRHInit, Payload: nil, Size: 1024})
		}
	})
	engine.RunUntilIdle()
	if !nodes[0].done {
		return time.Duration(engine.Now())
	}
	return nodes[0].doneAt
}
