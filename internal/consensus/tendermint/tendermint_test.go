package tendermint

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

func buildNet(n int, lockBug bool, tune func(*Options)) (*sim.Engine, *simnet.Network, []*Replica) {
	engine := sim.NewEngine(1)
	net := simnet.New(engine, simnet.LAN())
	nodes := make([]simnet.NodeID, n)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	committee := consensus.BFTCommittee(nodes)
	reps := make([]*Replica, n)
	for i := range nodes {
		ep := net.Attach(nodes[i], simnet.DefaultSplitQueue())
		opts := DefaultOptions(committee, i)
		opts.LockBug = lockBug
		opts.Costs = tee.FreeCosts()
		if tune != nil {
			tune(&opts)
		}
		reps[i] = New(opts, ep, chaincode.NewRegistry(chaincode.KVStore{}))
	}
	for _, r := range reps {
		r.Start(engine)
	}
	return engine, net, reps
}

func submitKV(reps []*Replica, to, count int, base uint64) {
	for i := 0; i < count; i++ {
		reps[to].SubmitLocal(chain.Tx{
			ID: base + uint64(i), Chaincode: "kvstore", Fn: "put",
			Args: []string{fmt.Sprintf("k%d", base+uint64(i)), "v"},
		})
	}
}

func TestTendermintCommitsBlocks(t *testing.T) {
	engine, _, reps := buildNet(4, false, nil)
	engine.Schedule(0, func() { submitKV(reps, 1, 50, 1) })
	engine.Run(sim.Time(60 * time.Second))
	for i, r := range reps {
		if r.Executed() != 50 {
			t.Fatalf("replica %d executed %d, want 50", i, r.Executed())
		}
		if err := r.Ledger().VerifyChain(); err != nil {
			t.Fatal(err)
		}
	}
	// Agreement on every height.
	for h := uint64(0); h < reps[0].Ledger().Height(); h++ {
		want := reps[0].Ledger().Block(h).Digest()
		for i := 1; i < len(reps); i++ {
			if b := reps[i].Ledger().Block(h); b == nil || b.Digest() != want {
				t.Fatalf("replica %d disagrees at height %d", i, h)
			}
		}
	}
}

func TestTendermintLockstep(t *testing.T) {
	// With batch size 1 the protocol must advance height-by-height:
	// 20 txs -> 20 heights.
	engine, _, reps := buildNet(4, false, func(o *Options) { o.BatchSize = 1 })
	engine.Schedule(0, func() { submitKV(reps, 0, 20, 1) })
	engine.Run(sim.Time(120 * time.Second))
	if reps[0].Height() < 20 {
		t.Fatalf("height = %d, want >= 20", reps[0].Height())
	}
}

func TestTendermintProposerRotation(t *testing.T) {
	engine, _, reps := buildNet(4, false, func(o *Options) { o.BatchSize = 1 })
	engine.Schedule(0, func() { submitKV(reps, 0, 8, 1) })
	engine.Run(sim.Time(60 * time.Second))
	// With rotation, proposers of consecutive heights differ.
	led := reps[0].Ledger()
	if led.Height() < 4 {
		t.Fatalf("too few blocks: %d", led.Height())
	}
	seen := make(map[uint64]bool)
	for h := uint64(0); h < led.Height(); h++ {
		seen[uint64(led.Block(h).Header.Proposer)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only %d distinct proposers, want rotation", len(seen))
	}
}

func TestTendermintRecoversFromRoundChange(t *testing.T) {
	// Proposer of (h=0, r=0) is node 0. Make the step timeout tiny so a
	// round change fires before consensus completes; correct Tendermint
	// must still commit via later rounds.
	engine, _, reps := buildNet(4, false, func(o *Options) {
		o.StepTimeout = 3 * time.Millisecond
	})
	engine.Schedule(0, func() { submitKV(reps, 3, 5, 1) })
	engine.Run(sim.Time(120 * time.Second))
	done := 0
	for _, r := range reps {
		if r.Executed() == 5 {
			done++
		}
	}
	if done < 3 { // quorum of 4
		t.Fatalf("only %d replicas executed all txs after round changes", done)
	}
	if reps[0].ViewChanges() == 0 {
		t.Fatal("expected round changes with tiny timeout")
	}
}

func TestIBFTLockBugDeadlocks(t *testing.T) {
	// Construct the partial-lock interleaving the paper observed wedging
	// IBFT (§C.2): in height 0 round 0, replicas 0 and 1 assemble a
	// prevote quorum and lock, but replicas 2 and 3 see no prevotes (the
	// adversarial network drops round-0 votes addressed to them), and no
	// commit forms. After the round change:
	//
	//   - correct Tendermint: the next proposer re-proposes its locked
	//     block, unlocked replicas prevote it, the height commits;
	//   - IBFT's defect: the proposer proposes a fresh block while locked
	//     replicas keep prevoting their lock — 2 votes vs 2 votes, no
	//     quorum, forever. The height deadlocks.
	run := func(lockBug bool) int {
		engine, net, reps := buildNet(4, lockBug, func(o *Options) {
			o.StepTimeout = 50 * time.Millisecond
		})
		net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
			if v, ok := m.Payload.(*voteMsg); ok && v.Round == 0 && v.Height == 0 && m.To >= 2 {
				return 0, false
			}
			return 0, true
		})
		engine.Schedule(0, func() { submitKV(reps, 0, 5, 1) })
		engine.Run(sim.Time(120 * time.Second))
		best := 0
		for _, r := range reps {
			if r.Executed() > best {
				best = r.Executed()
			}
		}
		return best
	}
	if got := run(false); got != 5 {
		t.Fatalf("correct Tendermint executed %d, want 5 (must recover)", got)
	}
	if got := run(true); got != 0 {
		t.Fatalf("IBFT lock defect executed %d, want 0 (deadlock)", got)
	}
}
