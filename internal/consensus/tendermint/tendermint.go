// Package tendermint implements the lockstep BFT baseline of Figure 2 and
// Appendix C.2: a Tendermint-style protocol with rotating proposers,
// per-round locking, and strictly sequential heights — a new block can only
// be proposed once the previous one is finalized. This lockstep execution
// is precisely why it falls behind Hyperledger's pipelined PBFT as N and
// load grow (§C.2).
//
// The same engine also models Istanbul BFT (Quorum) through the LockBug
// option: the paper observed that IBFT "suffers from deadlock, because its
// locks are not released properly". With LockBug set, a replica that
// locked on a block keeps prevoting its lock in later rounds while new
// proposers propose fresh blocks — with enough locked replicas neither
// side reaches a quorum and the height deadlocks, which is what the paper
// saw under load. Package ibft wraps this option.
package tendermint

import (
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

// Message types.
const (
	msgRequest   = "tm/request"
	msgProposal  = "tm/proposal"
	msgPrevote   = "tm/prevote"
	msgPrecommit = "tm/precommit"
)

type proposalMsg struct {
	Height uint64
	Round  uint64
	Block  *chain.Block
}

type voteMsg struct {
	Height  uint64
	Round   uint64
	Digest  blockcrypto.Digest // zero = nil vote
	Replica int
	Commit  bool // false = prevote, true = precommit
}

// Options configures a replica.
type Options struct {
	Committee consensus.Committee
	Index     int
	// LockBug enables the IBFT misbehavior described in the package
	// comment.
	LockBug bool
	// BatchSize is the maximum transactions per block.
	BatchSize int
	// StepTimeout is the per-step timer before a round change.
	StepTimeout time.Duration
	// CommitWait is Tendermint's timeout_commit: the fixed pause after a
	// height commits before the next proposal. Together with the strictly
	// sequential heights this is the "lockstep execution" the paper blames
	// for Tendermint's throughput gap vs pipelined PBFT (§C.2).
	CommitWait time.Duration
	// ExecPerTx is the per-transaction execution cost. The paper notes
	// Tendermint's benchmark executes trivial in-memory puts while
	// Quorum pays EVM + Merkle costs; calibrate accordingly.
	ExecPerTx time.Duration
	Costs     tee.CostModel
}

// DefaultOptions returns LAN-calibrated options.
func DefaultOptions(committee consensus.Committee, index int) Options {
	return Options{
		Committee:   committee,
		Index:       index,
		BatchSize:   500,
		StepTimeout: 3 * time.Second,
		CommitWait:  time.Second, // Tendermint's default timeout_commit
		ExecPerTx:   5 * time.Microsecond,
		Costs:       tee.DefaultCosts(),
	}
}

// Replica is one lockstep-BFT replica.
type Replica struct {
	opts   Options
	ep     *simnet.Endpoint
	engine *sim.Engine

	registry *chaincode.Registry
	store    *chain.Store
	ledger   *chain.Ledger

	height uint64
	round  uint64

	lockedDigest blockcrypto.Digest
	lockedBlock  *chain.Block
	lockedSet    bool

	proposals     map[uint64]*chain.Block                        // round -> proposed block (current height)
	prevotes      map[uint64]map[blockcrypto.Digest]map[int]bool // round -> digest -> voters
	precommits    map[uint64]map[blockcrypto.Digest]map[int]bool
	sentPrevote   map[uint64]bool
	sentPrecommit map[uint64]bool

	pending      map[uint64]chain.Tx
	pendingOrder []uint64
	executedIDs  map[uint64]bool

	stepTimer *sim.Timer
	// betweenHeights is set while the replica executes a committed block
	// and sits out the commit wait; no proposals or round changes happen
	// until the next height starts.
	betweenHeights bool

	onExec        func(consensus.BlockEvent)
	executedCount int
	roundChanges  int
}

// New wires a replica onto its endpoint.
func New(opts Options, ep *simnet.Endpoint, registry *chaincode.Registry) *Replica {
	r := &Replica{
		opts:          opts,
		ep:            ep,
		registry:      registry,
		store:         chain.NewStore(),
		ledger:        chain.NewLedger(),
		proposals:     make(map[uint64]*chain.Block),
		prevotes:      make(map[uint64]map[blockcrypto.Digest]map[int]bool),
		precommits:    make(map[uint64]map[blockcrypto.Digest]map[int]bool),
		sentPrevote:   make(map[uint64]bool),
		sentPrecommit: make(map[uint64]bool),
		pending:       make(map[uint64]chain.Tx),
		executedIDs:   make(map[uint64]bool),
	}
	ep.SetHandler(r)
	return r
}

// Start begins height 0 round 0; call once after the committee is built,
// with the engine available.
func (r *Replica) Start(engine *sim.Engine) {
	r.engine = engine
	r.stepTimer = engine.NewTimer()
	r.startRound()
}

// Executed implements consensus.Replica.
func (r *Replica) Executed() int { return r.executedCount }

// ViewChanges implements consensus.Replica (round changes here).
func (r *Replica) ViewChanges() int { return r.roundChanges }

// OnExecute implements consensus.Replica.
func (r *Replica) OnExecute(fn func(consensus.BlockEvent)) { r.onExec = fn }

// Height returns the current consensus height.
func (r *Replica) Height() uint64 { return r.height }

// Ledger exposes the local chain for tests.
func (r *Replica) Ledger() *chain.Ledger { return r.ledger }

func (r *Replica) isProposer() bool {
	return r.opts.Committee.Nodes[int(r.height+r.round)%r.opts.Committee.N()] == r.ep.ID()
}

func (r *Replica) broadcast(typ string, payload any, size int, class simnet.Class) {
	for _, id := range r.opts.Committee.Nodes {
		if id != r.ep.ID() {
			r.ep.Send(simnet.Message{To: id, Class: class, Type: typ, Payload: payload, Size: size})
		}
	}
}

// SubmitLocal implements consensus.Replica. Tendermint gossips
// transactions via its mempool; we broadcast once on admission.
func (r *Replica) SubmitLocal(tx chain.Tx) {
	if r.admit(tx) {
		r.broadcast(msgRequest, tx, tx.SizeBytes(), simnet.ClassRequest)
	}
}

func (r *Replica) admit(tx chain.Tx) bool {
	if r.executedIDs[tx.ID] {
		return false
	}
	if _, ok := r.pending[tx.ID]; ok {
		return false
	}
	r.pending[tx.ID] = tx
	r.pendingOrder = append(r.pendingOrder, tx.ID)
	if r.engine != nil && r.isProposer() && r.proposals[r.round] == nil {
		r.propose()
	}
	return true
}

// Cost implements simnet.Handler.
func (r *Replica) Cost(m simnet.Message) time.Duration {
	switch m.Type {
	case msgRequest:
		return 20 * time.Microsecond
	case msgProposal:
		p := m.Payload.(*proposalMsg)
		return r.opts.Costs.Verify + time.Duration(len(p.Block.Txs))*r.opts.Costs.SHA256
	case msgPrevote, msgPrecommit:
		return r.opts.Costs.Verify
	default:
		return 0
	}
}

// Handle implements simnet.Handler.
func (r *Replica) Handle(m simnet.Message) {
	switch m.Type {
	case msgRequest:
		r.admit(m.Payload.(chain.Tx))
	case msgProposal:
		r.handleProposal(m.Payload.(*proposalMsg))
	case msgPrevote, msgPrecommit:
		r.handleVote(m.Payload.(*voteMsg))
	}
}

func (r *Replica) startRound() {
	r.betweenHeights = false
	r.stepTimer.Reset(r.opts.StepTimeout, r.onStepTimeout)
	if r.isProposer() {
		r.propose()
	}
}

func (r *Replica) onStepTimeout() {
	if r.betweenHeights {
		return
	}
	// Round change: rotate proposer, keep (or buggily keep) locks.
	r.round++
	r.roundChanges++
	r.startRound()
}

func (r *Replica) takeBatch() []chain.Tx {
	batch := make([]chain.Tx, 0, r.opts.BatchSize)
	kept := r.pendingOrder[:0]
	for _, id := range r.pendingOrder {
		tx, ok := r.pending[id]
		if !ok {
			continue
		}
		kept = append(kept, id)
		if len(batch) < r.opts.BatchSize {
			batch = append(batch, tx)
		}
	}
	r.pendingOrder = kept
	return batch
}

func (r *Replica) propose() {
	if r.proposals[r.round] != nil || r.betweenHeights {
		return
	}
	var block *chain.Block
	switch {
	case r.lockedSet && !r.opts.LockBug:
		// A correct proposer re-proposes its locked block, letting the
		// committee converge on it.
		block = r.lockedBlock
	default:
		// The IBFT defect: a locked proposer still proposes a fresh
		// block (and honest-but-unlocked proposers always do).
		txs := r.takeBatch()
		if len(txs) == 0 {
			return
		}
		block = &chain.Block{Header: chain.Header{
			Height:   r.height,
			TxRoot:   chain.TxRoot(txs),
			Proposer: blockcrypto.KeyID(r.ep.ID()),
			View:     r.round,
		}, Txs: txs}
	}
	r.ep.CPU().Charge(r.opts.Costs.Sign)
	m := &proposalMsg{Height: r.height, Round: r.round, Block: block}
	r.broadcast(msgProposal, m, block.SizeBytes()+96, simnet.ClassConsensus)
	r.handleProposal(m)
}

func (r *Replica) handleProposal(m *proposalMsg) {
	if m.Height != r.height || m.Round != r.round {
		return
	}
	if r.proposals[m.Round] == nil {
		r.proposals[m.Round] = m.Block
	}
	if r.sentPrevote[m.Round] {
		return
	}
	r.sentPrevote[m.Round] = true
	d := m.Block.Digest()
	var vote blockcrypto.Digest
	switch {
	case !r.lockedSet:
		vote = d
	case r.lockedDigest == d:
		vote = d
	case r.opts.LockBug:
		vote = r.lockedDigest // stubbornly prevote the lock: the defect
	default:
		vote = blockcrypto.Digest{} // nil prevote (Tendermint rule)
	}
	r.castVote(vote, false)
}

func (r *Replica) castVote(d blockcrypto.Digest, commit bool) {
	r.ep.CPU().Charge(r.opts.Costs.Sign)
	m := &voteMsg{Height: r.height, Round: r.round, Digest: d, Replica: r.opts.Index, Commit: commit}
	typ := msgPrevote
	if commit {
		typ = msgPrecommit
	}
	r.broadcast(typ, m, 128, simnet.ClassConsensus)
	r.handleVote(m)
}

func (r *Replica) handleVote(m *voteMsg) {
	if m.Height != r.height {
		return
	}
	table := r.prevotes
	if m.Commit {
		table = r.precommits
	}
	byDigest := table[m.Round]
	if byDigest == nil {
		byDigest = make(map[blockcrypto.Digest]map[int]bool)
		table[m.Round] = byDigest
	}
	voters := byDigest[m.Digest]
	if voters == nil {
		voters = make(map[int]bool)
		byDigest[m.Digest] = voters
	}
	if voters[m.Replica] {
		return
	}
	voters[m.Replica] = true
	if len(voters) < r.opts.Committee.Quorum {
		return
	}
	if !m.Commit {
		r.onPrevoteQuorum(m.Round, m.Digest)
	} else {
		r.onPrecommitQuorum(m.Round, m.Digest)
	}
}

func (r *Replica) onPrevoteQuorum(round uint64, d blockcrypto.Digest) {
	if r.sentPrecommit[round] || round != r.round {
		return
	}
	if d.IsZero() {
		r.sentPrecommit[round] = true
		r.castVote(blockcrypto.Digest{}, true)
		return
	}
	block := r.proposals[round]
	if block == nil || block.Digest() != d {
		if r.lockedSet && r.lockedDigest == d {
			block = r.lockedBlock
		} else {
			return
		}
	}
	r.lockedSet, r.lockedDigest, r.lockedBlock = true, d, block
	r.sentPrecommit[round] = true
	r.castVote(d, true)
}

func (r *Replica) onPrecommitQuorum(round uint64, d blockcrypto.Digest) {
	if d.IsZero() {
		// Quorum agrees this round failed; move on immediately.
		if round == r.round {
			r.round++
			r.roundChanges++
			r.startRound()
		}
		return
	}
	var block *chain.Block
	if b := r.proposals[round]; b != nil && b.Digest() == d {
		block = b
	} else if r.lockedSet && r.lockedDigest == d {
		block = r.lockedBlock
	} else {
		return
	}
	r.commit(block)
}

func (r *Replica) commit(block *chain.Block) {
	cost := time.Duration(len(block.Txs)) * r.opts.ExecPerTx
	height := r.height
	r.betweenHeights = true
	r.stepTimer.Stop()

	// Advance consensus state immediately; execution occupies the CPU.
	r.height++
	r.round = 0
	r.lockedSet = false
	r.lockedBlock = nil
	r.lockedDigest = blockcrypto.Digest{}
	r.proposals = make(map[uint64]*chain.Block)
	r.prevotes = make(map[uint64]map[blockcrypto.Digest]map[int]bool)
	r.precommits = make(map[uint64]map[blockcrypto.Digest]map[int]bool)
	r.sentPrevote = make(map[uint64]bool)
	r.sentPrecommit = make(map[uint64]bool)

	r.ep.CPU().Exec(cost, func() {
		linked := &chain.Block{Header: block.Header, Txs: block.Txs}
		linked.Header.Height = r.ledger.Height()
		linked.Header.PrevHash = r.ledger.TipHash()
		if err := r.ledger.Append(linked); err != nil {
			panic("tendermint: " + err.Error())
		}
		results := make([]chaincode.Result, 0, len(block.Txs))
		for _, tx := range block.Txs {
			if r.executedIDs[tx.ID] {
				continue
			}
			r.executedIDs[tx.ID] = true
			results = append(results, r.registry.Execute(r.store, tx))
			delete(r.pending, tx.ID)
			r.executedCount++
		}
		if r.onExec != nil {
			r.onExec(consensus.BlockEvent{Block: linked, Results: results, Time: r.engine.Now()})
		}
		_ = height
		if r.opts.CommitWait > 0 {
			r.engine.Schedule(r.opts.CommitWait, r.startRound)
		} else {
			r.startRound()
		}
	})
}
