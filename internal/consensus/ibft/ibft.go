// Package ibft models Istanbul BFT as shipped in Quorum, for the Figure 2
// baseline comparison. Structurally it is the same lockstep rotating-
// proposer protocol as package tendermint; the differences the paper
// highlights (§C.2) are the lock-handling defect — "IBFT suffers from
// deadlock, because its locks are not released properly" — plus Quorum's
// heavyweight EVM + Merkle-tree execution path.
package ibft

import (
	"time"

	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/consensus/tendermint"
	"repro/internal/simnet"
)

// Replica is an IBFT replica: a tendermint-style engine with the lock
// defect and Quorum's execution cost.
type Replica = tendermint.Replica

// Options returns the IBFT configuration for a committee member.
func Options(committee consensus.Committee, index int) tendermint.Options {
	opts := tendermint.DefaultOptions(committee, index)
	opts.LockBug = true
	// Quorum executes transactions in the EVM and updates Merkle tries;
	// the paper contrasts this with Tendermint's bare key-value store
	// (§C.2, last paragraph).
	opts.ExecPerTx = 500 * time.Microsecond
	return opts
}

// New wires an IBFT replica onto ep.
func New(committee consensus.Committee, index int, ep *simnet.Endpoint, registry *chaincode.Registry) *Replica {
	return tendermint.New(Options(committee, index), ep, registry)
}
