package ibft

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/simnet"
)

func TestOptionsCarryTheDefect(t *testing.T) {
	nodes := []simnet.NodeID{0, 1, 2, 3}
	opts := Options(consensus.BFTCommittee(nodes), 1)
	if !opts.LockBug {
		t.Fatal("IBFT options must enable the lock defect")
	}
	if opts.ExecPerTx != 500*time.Microsecond {
		t.Fatalf("exec cost = %v, want Quorum's EVM-grade 500us", opts.ExecPerTx)
	}
	if opts.Index != 1 || opts.Committee.N() != 4 {
		t.Fatal("committee wiring wrong")
	}
}
