package raft

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

func buildNet(n int, tune func(*Options)) (*sim.Engine, *simnet.Network, []*Replica) {
	engine := sim.NewEngine(1)
	net := simnet.New(engine, simnet.LAN())
	nodes := make([]simnet.NodeID, n)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	committee := consensus.CrashCommittee(nodes)
	reps := make([]*Replica, n)
	for i := range nodes {
		ep := net.Attach(nodes[i], simnet.DefaultSplitQueue())
		opts := DefaultOptions(committee, i)
		opts.Costs = tee.FreeCosts()
		opts.ExecPerTx = 0
		if tune != nil {
			tune(&opts)
		}
		reps[i] = New(opts, ep, chaincode.NewRegistry(chaincode.KVStore{}))
	}
	for _, r := range reps {
		r.Start(engine)
	}
	return engine, net, reps
}

func TestRaftReplicatesBlocks(t *testing.T) {
	engine, _, reps := buildNet(5, nil)
	engine.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			reps[i%5].SubmitLocal(chain.Tx{
				ID: uint64(i + 1), Chaincode: "kvstore", Fn: "put",
				Args: []string{fmt.Sprintf("k%d", i), "v"},
			})
		}
	})
	engine.Run(sim.Time(30 * time.Second))
	if got := reps[0].Executed(); got != 50 {
		t.Fatalf("leader executed %d, want 50", got)
	}
	// Followers replicate the exact chain.
	for i := 1; i < len(reps); i++ {
		if reps[i].Executed() != 50 {
			t.Fatalf("follower %d executed %d, want 50", i, reps[i].Executed())
		}
		if err := reps[i].Ledger().VerifyChain(); err != nil {
			t.Fatal(err)
		}
		for h := uint64(0); h < reps[0].Ledger().Height(); h++ {
			if reps[i].Ledger().Block(h).Header.TxRoot != reps[0].Ledger().Block(h).Header.TxRoot {
				t.Fatalf("follower %d diverges at height %d", i, h)
			}
		}
	}
}

func TestRaftLockstepNoPipelining(t *testing.T) {
	// The naive Quorum integration finalizes one block before building
	// the next: with batch 1 and a 1 ms round trip, 10 txs need >= 10
	// sequential round trips.
	engine, _, reps := buildNet(3, func(o *Options) { o.BatchSize = 1 })
	start := engine.Now()
	engine.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			reps[0].SubmitLocal(chain.Tx{ID: uint64(i + 1), Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}})
		}
	})
	end := engine.Run(sim.Time(30 * time.Second))
	if reps[0].Executed() != 10 {
		t.Fatalf("executed %d, want 10", reps[0].Executed())
	}
	if reps[0].Ledger().Height() != 10 {
		t.Fatalf("height %d, want 10 blocks (batch=1)", reps[0].Ledger().Height())
	}
	_ = start
	_ = end
}

func TestRaftToleratesMinorityCrash(t *testing.T) {
	engine, net, reps := buildNet(5, nil)
	engine.Schedule(0, func() {
		// Crash two followers: quorum 3 (leader + 2) is still reachable.
		net.Endpoint(3).SetDown(true)
		net.Endpoint(4).SetDown(true)
		for i := 0; i < 20; i++ {
			reps[0].SubmitLocal(chain.Tx{ID: uint64(i + 1), Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}})
		}
	})
	engine.Run(sim.Time(30 * time.Second))
	if reps[0].Executed() != 20 {
		t.Fatalf("executed %d, want 20 with minority down", reps[0].Executed())
	}
	if reps[4].Executed() != 0 {
		t.Fatal("crashed follower executed transactions")
	}
}

func TestRaftMajorityCrashStallsProgress(t *testing.T) {
	engine, net, reps := buildNet(5, nil)
	engine.Schedule(0, func() {
		net.Endpoint(2).SetDown(true)
		net.Endpoint(3).SetDown(true)
		net.Endpoint(4).SetDown(true)
		reps[0].SubmitLocal(chain.Tx{ID: 1, Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}})
	})
	engine.Run(sim.Time(30 * time.Second))
	if reps[0].Executed() != 0 {
		t.Fatal("leader committed without a majority")
	}
}
