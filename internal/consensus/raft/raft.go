// Package raft models the Raft-based ordering service of Quorum, the
// crash-fault baseline in Figure 2 (used by the paper as an approximation
// of Coco, whose source is unavailable).
//
// The paper's observation (§C.2) is that Quorum integrates Raft naively:
// a node constructs a block, runs Raft to finalize it, and only then
// constructs the next block — consensus proceeds in lockstep even though
// Raft itself could pipeline. This package reproduces exactly that
// integration: a stable leader, majority acknowledgement, and strictly
// sequential block finalization, with Quorum's EVM-grade execution cost.
package raft

import (
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

// Message types.
const (
	msgRequest = "raft/request"
	msgAppend  = "raft/append" // leader -> followers: proposed block
	msgAck     = "raft/ack"    // follower -> leader
	msgCommit  = "raft/commit" // leader -> followers: block is final
)

type appendMsg struct {
	Index uint64
	Block *chain.Block
}

type ackMsg struct {
	Index   uint64
	Replica int
}

type commitMsg struct {
	Index uint64
}

// Options configures a replica.
type Options struct {
	Committee consensus.Committee
	Index     int
	BatchSize int
	// ExecPerTx models Quorum's EVM + Merkle-trie execution cost.
	ExecPerTx time.Duration
	Costs     tee.CostModel
}

// DefaultOptions returns the Quorum-calibrated options.
func DefaultOptions(committee consensus.Committee, index int) Options {
	return Options{
		Committee: committee,
		Index:     index,
		BatchSize: 500,
		ExecPerTx: 500 * time.Microsecond,
		Costs:     tee.DefaultCosts(),
	}
}

// Replica is one Raft-ordered blockchain node. The leader is replica 0
// (leader election is out of scope: Figure 2 measures failure-free runs).
type Replica struct {
	opts   Options
	ep     *simnet.Endpoint
	engine *sim.Engine

	registry *chaincode.Registry
	store    *chain.Store
	ledger   *chain.Ledger

	nextIndex  uint64 // leader: next log index to propose
	inFlight   *chain.Block
	inFlightIx uint64
	acks       map[int]bool

	blocks map[uint64]*chain.Block // follower: received but uncommitted

	pending      map[uint64]chain.Tx
	pendingOrder []uint64
	executedIDs  map[uint64]bool
	committedTo  uint64

	onExec        func(consensus.BlockEvent)
	executedCount int
}

// New wires a replica onto ep.
func New(opts Options, ep *simnet.Endpoint, registry *chaincode.Registry) *Replica {
	r := &Replica{
		opts:        opts,
		ep:          ep,
		registry:    registry,
		store:       chain.NewStore(),
		ledger:      chain.NewLedger(),
		acks:        make(map[int]bool),
		blocks:      make(map[uint64]*chain.Block),
		pending:     make(map[uint64]chain.Tx),
		executedIDs: make(map[uint64]bool),
	}
	ep.SetHandler(r)
	return r
}

// Start supplies the engine; call once.
func (r *Replica) Start(engine *sim.Engine) { r.engine = engine }

// Executed implements consensus.Replica.
func (r *Replica) Executed() int { return r.executedCount }

// ViewChanges implements consensus.Replica; Raft has no view changes in
// failure-free runs.
func (r *Replica) ViewChanges() int { return 0 }

// OnExecute implements consensus.Replica.
func (r *Replica) OnExecute(fn func(consensus.BlockEvent)) { r.onExec = fn }

// Ledger exposes the local chain for tests.
func (r *Replica) Ledger() *chain.Ledger { return r.ledger }

func (r *Replica) isLeader() bool { return r.opts.Index == 0 }

func (r *Replica) leaderID() simnet.NodeID { return r.opts.Committee.Nodes[0] }

func (r *Replica) broadcast(typ string, payload any, size int) {
	for _, id := range r.opts.Committee.Nodes {
		if id != r.ep.ID() {
			r.ep.Send(simnet.Message{To: id, Class: simnet.ClassConsensus, Type: typ, Payload: payload, Size: size})
		}
	}
}

// SubmitLocal implements consensus.Replica: Quorum forwards transactions
// to the (stable) leader.
func (r *Replica) SubmitLocal(tx chain.Tx) {
	if r.isLeader() {
		r.admit(tx)
		return
	}
	r.ep.Send(simnet.Message{To: r.leaderID(), Class: simnet.ClassRequest,
		Type: msgRequest, Payload: tx, Size: tx.SizeBytes()})
}

func (r *Replica) admit(tx chain.Tx) {
	if r.executedIDs[tx.ID] {
		return
	}
	if _, ok := r.pending[tx.ID]; ok {
		return
	}
	r.pending[tx.ID] = tx
	r.pendingOrder = append(r.pendingOrder, tx.ID)
	r.maybePropose()
}

// Cost implements simnet.Handler.
func (r *Replica) Cost(m simnet.Message) time.Duration {
	switch m.Type {
	case msgRequest:
		return 20 * time.Microsecond
	case msgAppend:
		a := m.Payload.(*appendMsg)
		return 50*time.Microsecond + time.Duration(len(a.Block.Txs))*r.opts.Costs.SHA256
	case msgAck, msgCommit:
		return 20 * time.Microsecond
	default:
		return 0
	}
}

// Handle implements simnet.Handler.
func (r *Replica) Handle(m simnet.Message) {
	switch m.Type {
	case msgRequest:
		r.admit(m.Payload.(chain.Tx))
	case msgAppend:
		r.handleAppend(m.Payload.(*appendMsg))
	case msgAck:
		r.handleAck(m.Payload.(*ackMsg))
	case msgCommit:
		r.handleCommit(m.Payload.(*commitMsg))
	}
}

// maybePropose starts the next block — only when no block is in flight:
// the naive lockstep integration.
func (r *Replica) maybePropose() {
	if !r.isLeader() || r.inFlight != nil || len(r.pending) == 0 {
		return
	}
	batch := make([]chain.Tx, 0, r.opts.BatchSize)
	kept := r.pendingOrder[:0]
	for _, id := range r.pendingOrder {
		tx, ok := r.pending[id]
		if !ok {
			continue
		}
		kept = append(kept, id)
		if len(batch) < r.opts.BatchSize {
			batch = append(batch, tx)
		}
	}
	r.pendingOrder = kept
	if len(batch) == 0 {
		return
	}
	block := &chain.Block{Header: chain.Header{
		Height:   r.nextIndex,
		TxRoot:   chain.TxRoot(batch),
		Proposer: blockcrypto.KeyID(r.ep.ID()),
	}, Txs: batch}
	r.inFlight = block
	r.inFlightIx = r.nextIndex
	r.nextIndex++
	r.acks = map[int]bool{0: true}
	r.broadcast(msgAppend, &appendMsg{Index: r.inFlightIx, Block: block}, block.SizeBytes()+64)
}

func (r *Replica) handleAppend(m *appendMsg) {
	if _, seen := r.blocks[m.Index]; seen || m.Index < r.committedTo {
		return
	}
	r.blocks[m.Index] = m.Block
	r.ep.Send(simnet.Message{To: r.leaderID(), Class: simnet.ClassConsensus,
		Type: msgAck, Payload: &ackMsg{Index: m.Index, Replica: r.opts.Index}, Size: 64})
}

func (r *Replica) handleAck(m *ackMsg) {
	if r.inFlight == nil || m.Index != r.inFlightIx {
		return
	}
	r.acks[m.Replica] = true
	if len(r.acks) < r.opts.Committee.Quorum {
		return
	}
	block := r.inFlight
	r.inFlight = nil
	r.broadcast(msgCommit, &commitMsg{Index: m.Index}, 64)
	r.execute(block, func() { r.maybePropose() })
}

func (r *Replica) handleCommit(m *commitMsg) {
	block := r.blocks[m.Index]
	if block == nil || m.Index != r.committedTo {
		return
	}
	delete(r.blocks, m.Index)
	r.execute(block, func() {
		// Execute any buffered successors that committed while busy.
		if next, ok := r.blocks[r.committedTo]; ok && next != nil {
			_ = next // committed only via explicit commit messages
		}
	})
}

func (r *Replica) execute(block *chain.Block, done func()) {
	r.committedTo++
	cost := time.Duration(len(block.Txs)) * r.opts.ExecPerTx
	r.ep.CPU().Exec(cost, func() {
		linked := &chain.Block{Header: block.Header, Txs: block.Txs}
		linked.Header.Height = r.ledger.Height()
		linked.Header.PrevHash = r.ledger.TipHash()
		if err := r.ledger.Append(linked); err != nil {
			panic("raft: " + err.Error())
		}
		results := make([]chaincode.Result, 0, len(block.Txs))
		for _, tx := range block.Txs {
			if r.executedIDs[tx.ID] {
				continue
			}
			r.executedIDs[tx.ID] = true
			results = append(results, r.registry.Execute(r.store, tx))
			delete(r.pending, tx.ID)
			r.executedCount++
		}
		if r.onExec != nil && r.engine != nil {
			r.onExec(consensus.BlockEvent{Block: linked, Results: results, Time: r.engine.Now()})
		}
		done()
	})
}
