package pbft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Safety regression tests for the pipelined consensus path: multiple
// in-flight pre-prepares across a view change, the pipeline-depth cap,
// crash-restart with a partially journaled pipeline window, and the
// duplicate-request reply cache while commits land for many sequences at
// once.

// pipelinedTune configures a committee for deep pipelining: single-tx
// batches so every transaction is its own sequence, and a pre-prepare
// window bounded by depth rather than the checkpoint window.
func pipelinedTune(depth uint64) func(*Options) {
	return func(o *Options) {
		o.BatchSize = 1
		o.Window = 32
		o.CheckpointEvery = 16
		o.PipelineDepth = depth
		o.AdaptiveBatch = true
	}
}

// TestViewChangeWithPipelinedPrePrepares crashes the leader while it has
// several pre-prepares in flight (assigned but not executed). The
// survivors must view-change and re-decide or re-propose every
// transaction exactly once, with all ledgers agreeing.
func TestViewChangeWithPipelinedPrePrepares(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, pipelinedTune(8))
	leader := tc.bc.Committee.Leader(0)
	var inFlightAtCrash uint64
	tc.engine.Schedule(0, func() { tc.submit(1, 40) })
	// Crash the leader the moment its pipeline is demonstrably loaded —
	// several sequences assigned past its own execution watermark. A
	// fixed crash time would race the (virtual) speed of the LAN.
	r0 := tc.bc.Replicas[0]
	var arm func()
	arm = func() {
		if inFlight := r0.seqAssign - r0.executedThrough; inFlight >= 4 {
			inFlightAtCrash = inFlight
			tc.net.Endpoint(leader).SetDown(true)
			return
		}
		if tc.engine.Now() < sim.Time(100*time.Millisecond) {
			tc.engine.Schedule(20*time.Microsecond, arm)
		}
	}
	tc.engine.Schedule(0, arm)
	tc.run(120 * time.Second)
	if inFlightAtCrash < 2 {
		t.Fatalf("precondition: only %d pre-prepares in flight at crash; the scenario needs a loaded pipeline", inFlightAtCrash)
	}
	for i := 1; i < 4; i++ {
		if got := tc.bc.Replicas[i].Executed(); got != 40 {
			t.Fatalf("replica %d executed %d of 40 after leader crash mid-pipeline", i, got)
		}
		if tc.bc.Replicas[i].View() == 0 {
			t.Fatalf("replica %d still in view 0 after leader crash", i)
		}
	}
	tc.requireAgreement(t, 40)
}

// TestPipelineDepthBoundsInFlight drives a trickle of transactions through
// an adaptively batched committee with PipelineDepth 2 and asserts the
// leader never assigns a sequence more than two past its own execution
// watermark (nor past the checkpoint window) at any sampled instant.
func TestPipelineDepthBoundsInFlight(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, func(o *Options) {
		o.Window = 32
		o.CheckpointEvery = 16
		o.PipelineDepth = 2
		o.AdaptiveBatch = true
	})
	for i := 0; i < 60; i++ {
		i := i
		tc.engine.Schedule(time.Duration(i)*time.Millisecond, func() { tc.submit(0, 1) })
	}
	r := tc.bc.Replicas[0]
	var violated string
	var sample func()
	sample = func() {
		if r.seqAssign > r.executedThrough+2 && violated == "" {
			violated = "seqAssign ran past executedThrough+depth"
		}
		if r.seqAssign > r.h+r.opts.Window && violated == "" {
			violated = "seqAssign ran past the checkpoint window"
		}
		if tc.engine.Now() < sim.Time(500*time.Millisecond) {
			tc.engine.Schedule(500*time.Microsecond, sample)
		}
	}
	tc.engine.Schedule(0, sample)
	tc.run(60 * time.Second)
	if violated != "" {
		t.Fatalf("pipeline bound violated: %s (seqAssign=%d executedThrough=%d h=%d)",
			violated, r.seqAssign, r.executedThrough, r.h)
	}
	tc.requireAgreement(t, 60)
}

// txFor reconstructs the exact transaction testCluster.submit built for
// the given id, so retry storms resubmit byte-identical requests.
func (tc *testCluster) txFor(id uint64) chain.Tx {
	return chain.Tx{
		ID:        id,
		Chaincode: "kvstore",
		Fn:        "put",
		Args:      []string{fmt.Sprintf("k%d", id), "v"},
		Client:    9999,
	}
}

// TestDuplicateRequestReplyCacheUnderPipelining replays a client retry
// storm — the same 30 transactions submitted to every replica while the
// pipelined committee is deciding many sequences concurrently — and
// asserts exactly-once execution plus a populated reply cache for every
// transaction id.
func TestDuplicateRequestReplyCacheUnderPipelining(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, pipelinedTune(8))
	tc.engine.Schedule(0, func() { tc.submit(1, 30) })
	resubmit := func(replica int) func() {
		return func() {
			for id := uint64(1); id <= 30; id++ {
				tx := tc.txFor(id)
				tc.bc.Replicas[replica].SubmitLocal(tx)
			}
		}
	}
	tc.engine.Schedule(5*time.Millisecond, resubmit(2))
	tc.engine.Schedule(10*time.Millisecond, resubmit(3))
	tc.engine.Schedule(time.Second, resubmit(0))
	tc.run(60 * time.Second)
	for i, r := range tc.bc.Replicas {
		if got := r.Executed(); got != 30 {
			t.Fatalf("replica %d executed %d txs, want exactly 30 despite the retry storm", i, got)
		}
		for id := uint64(1); id <= 30; id++ {
			ok, executed := r.ExecutedOK(id)
			if !executed || !ok {
				t.Fatalf("replica %d reply cache for tx %d = (ok=%v, executed=%v), want both true", i, id, ok, executed)
			}
		}
	}
	tc.requireAgreement(t, 30)
}

// TestRestartWithPartiallyJournaledPipelineWindow is the crash-restart
// scenario for the pipelined path: the WAL holds a window of decided
// blocks past the execution watermark (journaled write-ahead, not yet
// executed) when the process dies. Boot recovery must resume replay at
// exactly ExecutedThrough+1, reject any gap above it, and land with the
// whole journaled window executed.
func TestRestartWithPartiallyJournaledPipelineWindow(t *testing.T) {
	tc := newTestCluster(t, 4, VariantHL, nil, func(o *Options) {
		o.BatchSize = 1
		o.Window = 16
		o.CheckpointEvery = 4
		o.PipelineDepth = 4
		o.AdaptiveBatch = true
	})
	r := tc.bc.Replicas[0]
	mem := storage.NewMemory()
	r.durable = mem
	tc.engine.Schedule(0, func() { tc.submit(0, 20) })
	tc.run(20 * time.Second)
	if r.stableSnapSeq == 0 {
		t.Fatal("no stable checkpoint reached; cannot exercise durable recovery")
	}

	// The crash cuts in with a partially journaled pipeline window: three
	// more sequences decided and WAL-appended, none executed.
	base := r.executedThrough
	for i := uint64(1); i <= 3; i++ {
		if !r.appendDecided(&entry{seq: base + i, block: replayBlock(9200 + i)}) {
			t.Fatalf("appendDecided of pipeline seq %d failed", base+i)
		}
	}

	snap, tail, err := mem.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if snap == nil {
		t.Fatal("no snapshot recovered")
	}

	tc2 := newTestCluster(t, 4, VariantHL, nil, func(o *Options) {
		o.BatchSize = 1
		o.Window = 16
		o.CheckpointEvery = 4
		o.PipelineDepth = 4
		o.AdaptiveBatch = true
	})
	r2 := tc2.bc.Replicas[0]
	if _, err := r2.RestoreDurableSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r2.executedThrough != snap.ExecutedThrough {
		t.Fatalf("restored executedThrough = %d, want the snapshot watermark %d", r2.executedThrough, snap.ExecutedThrough)
	}

	// A record that skips ahead of the watermark is a lost-WAL gap and
	// must be rejected, not absorbed.
	if err := r2.ReplayDecided(base+5, replayBlock(9999)); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("replay with a gap returned %v, want ErrCorrupt", err)
	}
	if r2.executedThrough != snap.ExecutedThrough {
		t.Fatalf("rejected gap advanced the watermark to %d", r2.executedThrough)
	}

	// The real tail replays in order: records at or below the watermark
	// are skipped, then replay resumes at exactly ExecutedThrough+1 and
	// walks the journaled pipeline window to its end.
	for _, rec := range tail {
		if rec.Kind != storage.KindBlock {
			continue
		}
		if err := r2.ReplayDecided(rec.Seq, rec.Block); err != nil {
			t.Fatalf("replay of WAL tail seq %d: %v", rec.Seq, err)
		}
	}
	if r2.executedThrough != base+3 {
		t.Fatalf("executedThrough after tail replay = %d, want %d (the full journaled pipeline window)", r2.executedThrough, base+3)
	}
}
