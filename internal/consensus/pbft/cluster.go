package pbft

import (
	"math/rand"

	"repro/internal/blockcrypto"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tee"
	"repro/internal/tee/aaom"
)

// CommitteeSpec describes one committee to build on a network.
type CommitteeSpec struct {
	Variant Variant
	// Nodes lists the committee members; they must not yet be attached to
	// the network.
	Nodes []simnet.NodeID
	// Behaviors maps replica index -> misbehavior (absent = honest).
	Behaviors map[int]Behavior
	// Registry constructs each replica's chaincode registry (must yield
	// identical registries; called once per replica).
	Registry func() *chaincode.Registry
	// Tune edits the default options before each replica is built.
	Tune func(*Options)
	// Costs is the TEE cost model (DefaultCosts when zero-value).
	Costs tee.CostModel
	// Durable is the storage backend handed to the replica (nil = memory-
	// only). Meaningful only for the single-replica BuildReplica path a
	// live process uses: one backend belongs to one replica, so committee-
	// wide Build calls must leave it nil.
	Durable storage.Backend
	// Obs, when non-nil, instruments every replica built from this spec.
	// A live process passes its per-node hub; a sim system may share one
	// hub across the whole committee (events carry the node id).
	Obs *obs.Hub
}

// BuiltCommittee is the wired result: replicas in committee order.
type BuiltCommittee struct {
	Committee consensus.Committee
	Replicas  []*Replica
	Platforms []*tee.Platform
}

// KeyOf maps a node to its key id in the deployment-wide scheme.
func KeyOf(id simnet.NodeID) blockcrypto.KeyID { return blockcrypto.KeyID(id) }

// Build attaches and wires all replicas of one committee onto net, using
// scheme as the deployment-wide key registry and rng for deterministic key
// generation. It returns the built committee.
func Build(net *simnet.Network, scheme blockcrypto.Scheme, rng *rand.Rand, spec CommitteeSpec) *BuiltCommittee {
	pre := precompute(spec)
	bc := &BuiltCommittee{Committee: pre.committee}
	for i, id := range spec.Nodes {
		signer := scheme.NewSigner(KeyOf(id), rng)
		r, platform := buildReplica(net, scheme, spec, pre, i, signer, rng.Int63())
		bc.Replicas = append(bc.Replicas, r)
		bc.Platforms = append(bc.Platforms, platform)
	}
	return bc
}

// committeePre is the committee-wide state shared by every replica of one
// committee, computed once per Build instead of once per replica.
type committeePre struct {
	committee consensus.Committee
	costs     tee.CostModel
	peerKeys  []blockcrypto.KeyID
}

func precompute(spec CommitteeSpec) committeePre {
	costs := spec.Costs
	if costs == (tee.CostModel{}) {
		costs = tee.DefaultCosts()
	}
	peerKeys := make([]blockcrypto.KeyID, len(spec.Nodes))
	for i, id := range spec.Nodes {
		peerKeys[i] = KeyOf(id)
	}
	return committeePre{committee: spec.Variant.Committee(spec.Nodes), costs: costs, peerKeys: peerKeys}
}

// BuildReplica attaches and wires replica index of the committee described
// by spec — the single-node assembly path. Build loops it to raise a whole
// committee inside one simulation; the live runtime (internal/core's
// LiveNode) calls it once per process, with a signer and TEE seed derived
// from the shared cluster topology so every process agrees on the key
// material. The node id spec.Nodes[index] must not yet be attached to net.
func BuildReplica(net *simnet.Network, scheme blockcrypto.Scheme, spec CommitteeSpec,
	index int, signer blockcrypto.Signer, teeSeed int64) (*Replica, *tee.Platform) {
	return buildReplica(net, scheme, spec, precompute(spec), index, signer, teeSeed)
}

func buildReplica(net *simnet.Network, scheme blockcrypto.Scheme, spec CommitteeSpec,
	pre committeePre, index int, signer blockcrypto.Signer, teeSeed int64) (*Replica, *tee.Platform) {
	committee, costs, peerKeys := pre.committee, pre.costs, pre.peerKeys
	ep := net.Attach(spec.Nodes[index], spec.Variant.QueueConfig())
	platform := tee.NewPlatform(net.Engine(), ep.CPU(), costs, signer, teeSeed)
	mem := aaom.New(platform)
	opts := DefaultOptions(spec.Variant, committee, index)
	if b, ok := spec.Behaviors[index]; ok {
		opts.Behavior = b
	}
	if spec.Tune != nil {
		spec.Tune(&opts)
	}
	var registry *chaincode.Registry
	if spec.Registry != nil {
		registry = spec.Registry()
	} else {
		registry = chaincode.NewRegistry(chaincode.KVStore{}, chaincode.SmallBank{})
	}
	r := New(opts, Deps{
		Endpoint: ep,
		Scheme:   scheme,
		Signer:   signer,
		PeerKeys: peerKeys,
		Platform: platform,
		AAOM:     mem,
		Registry: registry,
		Durable:  spec.Durable,
		Obs:      spec.Obs,
	})
	return r, platform
}

// ExecutedOnQuorum returns the highest transaction count that at least
// quorum replicas have executed — the committee-level progress metric used
// by the throughput experiments.
func (bc *BuiltCommittee) ExecutedOnQuorum() int {
	counts := make([]int, 0, len(bc.Replicas))
	for _, r := range bc.Replicas {
		counts = append(counts, r.Executed())
	}
	// quorum-th largest value.
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	q := bc.Committee.Quorum
	if q > len(counts) {
		q = len(counts)
	}
	return counts[q-1]
}

// MostExecuted returns the committee replica that executed the most
// transactions — the most up-to-date honest state to assert invariants
// against (a recently crashed-and-recovered replica may still be
// catching up).
func (bc *BuiltCommittee) MostExecuted() *Replica {
	best := bc.Replicas[0]
	for _, r := range bc.Replicas[1:] {
		if r.Executed() > best.Executed() {
			best = r
		}
	}
	return best
}

// MaxViewChanges returns the largest per-replica view-change count, the
// Figure 16 metric.
func (bc *BuiltCommittee) MaxViewChanges() int {
	max := 0
	for _, r := range bc.Replicas {
		if v := r.ViewChanges(); v > max {
			max = v
		}
	}
	return max
}
