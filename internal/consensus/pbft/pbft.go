package pbft

import (
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tee"
	"repro/internal/tee/aaom"
	"repro/internal/tee/aggregator"
	"repro/internal/wire"
)

// Variant selects the protocol configuration.
type Variant int

// The protocol variants, in the order the Figure 10 ablation adds them.
const (
	VariantHL Variant = iota
	VariantAHL
	VariantAHLOpt1
	VariantAHLPlus
	VariantAHLR
)

func (v Variant) String() string {
	switch v {
	case VariantHL:
		return "HL"
	case VariantAHL:
		return "AHL"
	case VariantAHLOpt1:
		return "AHL+op1"
	case VariantAHLPlus:
		return "AHL+"
	case VariantAHLR:
		return "AHLR"
	default:
		return "pbft?"
	}
}

// Attested reports whether the variant uses the trusted log (2f+1
// committees).
func (v Variant) Attested() bool { return v != VariantHL }

// SplitQueues reports whether the variant uses optimization 1.
func (v Variant) SplitQueues() bool { return v >= VariantAHLOpt1 }

// ForwardToLeader reports whether the variant uses optimization 2.
func (v Variant) ForwardToLeader() bool { return v >= VariantAHLPlus }

// Aggregated reports whether the variant uses optimization 3 (AHLR).
func (v Variant) Aggregated() bool { return v == VariantAHLR }

// Committee returns the right committee shape for the variant over nodes.
func (v Variant) Committee(nodes []simnet.NodeID) consensus.Committee {
	if v.Attested() {
		return consensus.AttestedCommittee(nodes)
	}
	return consensus.BFTCommittee(nodes)
}

// QueueConfig returns the endpoint queue layout for the variant.
func (v Variant) QueueConfig() simnet.QueueConfig {
	if v.SplitQueues() {
		return simnet.DefaultSplitQueue()
	}
	return simnet.DefaultSharedQueue()
}

// Behavior selects how a replica misbehaves; the zero value is honest.
type Behavior int

// Supported misbehaviors for the Figure 8 fault experiments.
const (
	BehaviorHonest Behavior = iota
	// BehaviorEquivocate sends conflicting protocol messages to different
	// peers (different blocks for the same view/sequence). Under AHL the
	// trusted log refuses the second binding, degrading the attack to
	// withholding.
	BehaviorEquivocate
	// BehaviorSilent drops out of the protocol entirely.
	BehaviorSilent
)

// Options configures one replica.
type Options struct {
	Variant   Variant
	Committee consensus.Committee
	// Index is this replica's position in Committee.Nodes.
	Index    int
	Timing   consensus.Timing
	Behavior Behavior

	// BatchSize is the maximum transactions per block.
	BatchSize int
	// Window is the watermark window L: the leader pipelines up to Window
	// outstanding sequence numbers past the last stable checkpoint.
	Window uint64
	// CheckpointEvery takes a checkpoint every this many sequences.
	CheckpointEvery uint64
	// ExecPerTx is the virtual CPU cost of executing one transaction.
	ExecPerTx time.Duration
	// RequestVerify is the cost of admitting one client request.
	RequestVerify time.Duration
	// IntakeCap caps accepted client requests per second (0 = unlimited).
	// Hyperledger v0.6's REST layer caps at roughly 400/s, which is why
	// Tendermint wins Figure 2 at N = 1.
	IntakeCap float64
	// SendReplies makes replicas send a Reply to tx.Client after
	// executing each transaction (closed-loop clients need this; open-
	// loop throughput runs leave it off to avoid N-fold reply traffic).
	SendReplies bool

	// PipelineDepth additionally caps how far proposals may run ahead of
	// execution: the leader stops assigning once
	// seqAssign - executedThrough reaches it. 0 disables the cap, leaving
	// Window (which is anchored at the last stable checkpoint, not at
	// execution) as the only pipelining bound — the legacy behavior.
	PipelineDepth uint64
	// AdaptiveBatch replaces the fixed BatchTimeout batch cut with a
	// load-scaled one: cut immediately when the pipeline is empty, and
	// otherwise wait BatchTimeout scaled by pipeline occupancy (floored
	// at BatchMinDelay) so batches grow under load instead of the timer
	// dominating latency. Off (the default) preserves the simulator's
	// byte-identical legacy schedule.
	AdaptiveBatch bool
	// BatchMinDelay floors the adaptive batch cut delay. 0 means
	// DefaultBatchMinDelay.
	BatchMinDelay time.Duration
	// ExecWorkers sets the number of goroutines executing non-conflicting
	// transaction groups of a decided block concurrently. 0 uses the
	// package default (serial unless SetDefaultExecWorkers was called);
	// values <= 1 execute serially on the engine goroutine.
	ExecWorkers int
}

// DefaultBatchMinDelay is the floor on the adaptive batch cut delay.
const DefaultBatchMinDelay = 500 * time.Microsecond

// DefaultOptions fills the tunables with the values used by the paper's
// cluster experiments.
func DefaultOptions(v Variant, committee consensus.Committee, index int) Options {
	return Options{
		Variant:         v,
		Committee:       committee,
		Index:           index,
		Timing:          consensus.DefaultTiming(),
		BatchSize:       500, // Fabric v0.6's default batch size
		Window:          32,
		CheckpointEvery: 16,
		ExecPerTx:       60 * time.Microsecond,
		RequestVerify:   50 * time.Microsecond,
	}
}

// Message type tags on the wire. MsgRequest and MsgReply are exported for
// client gateways.
const (
	MsgRequest    = "pbft/request"
	MsgReply      = "pbft/reply"
	msgRequest    = MsgRequest
	msgRequestFwd = "pbft/request-fwd"
	msgPrePrepare = "pbft/pre-prepare"
	msgPrepare    = "pbft/prepare"
	msgCommit     = "pbft/commit"
	msgCheckpoint = "pbft/checkpoint"
	msgViewChange = "pbft/view-change"
	msgNewView    = "pbft/new-view"
	msgNVReq      = "pbft/nv-req"
	msgVote       = "pbft/vote" // AHLR follower -> leader
	msgQC         = "pbft/qc"   // AHLR leader -> followers
)

// Reply is the execution report sent to a client when SendReplies is set.
type Reply struct {
	TxID    uint64
	OK      bool
	Replica int
}

// ClientRequest builds the network message a client sends to submit tx to
// a replica; like every message, its simulated size is the actual wire
// encoding.
func ClientRequest(to simnet.NodeID, tx chain.Tx) simnet.Message {
	return simnet.Message{To: to, Class: simnet.ClassRequest,
		Type: MsgRequest, Payload: tx, Size: wire.PayloadSize(MsgRequest, tx)}
}

// phase names used for attestation log identities and AHLR items.
const (
	phasePrePrepare = "pre-prepare"
	phasePrepare    = "prepare"
	phaseCommit     = "commit"
)

// prePrepareMsg proposes a block at (view, seq).
type prePrepareMsg struct {
	View  uint64
	Seq   uint64
	Block *chain.Block
	Att   attestation
}

// voteMsg is a prepare or commit vote (broadcast normally; sent to the
// leader under AHLR as an aggregator vote).
type voteMsg struct {
	View    uint64
	Seq     uint64
	Phase   string
	Digest  blockcrypto.Digest
	Replica int
	Att     attestation
	AggVote aggregator.Vote // set under AHLR
}

// qcMsg carries an AHLR quorum certificate.
type qcMsg struct {
	View  uint64
	Seq   uint64
	Phase string
	Cert  aggregator.Cert
	// Block accompanies the prepare-phase certificate so followers that
	// missed the pre-prepare can still execute.
	Block *chain.Block
}

// checkpointMsg announces an executed state digest at a sequence number.
type checkpointMsg struct {
	Seq     uint64
	State   blockcrypto.Digest
	Replica int
	Att     attestation
}

// preparedProof carries a prepared entry across a view change.
type preparedProof struct {
	Seq    uint64
	Digest blockcrypto.Digest
	Block  *chain.Block
}

// viewChangeMsg votes to move to NewView.
type viewChangeMsg struct {
	NewView   uint64
	StableSeq uint64
	Prepared  []preparedProof
	Replica   int
	Att       attestation
}

// newViewMsg installs a view.
type newViewMsg struct {
	View      uint64
	StableSeq uint64
	Reissue   []preparedProof
	Replica   int
	Att       attestation
}

// attestation authenticates a consensus message. Under HL it is a plain
// signature; under AHL it is a trusted-log binding whose slot encodes the
// message's protocol position, making equivocation detectable (in fact,
// unproduceable).
type attestation struct {
	Sig blockcrypto.Signature
	Log aaom.Attestation
}

// attestor abstracts HL signatures vs AHL trusted-log bindings.
type attestor interface {
	// attest authenticates digest d for the message position (log, slot).
	// An AHL attestor returns an error on an equivocation attempt.
	attest(log string, slot uint64, d blockcrypto.Digest) (attestation, error)
	// verify checks an attestation for the claimed position and digest.
	verify(from int, log string, slot uint64, d blockcrypto.Digest, a attestation) bool
	// onStableCheckpoint lets the attestor prune and seal its state.
	onStableCheckpoint(seq uint64)
}

// sigAttestor implements HL authentication: any statement can be signed,
// including two conflicting ones — equivocation is possible.
type sigAttestor struct {
	signer blockcrypto.Signer
	scheme blockcrypto.Verifier
	peers  []blockcrypto.KeyID // replica index -> key id
	costs  tee.CostModel
	charge func(time.Duration)
}

func msgDigest(log string, slot uint64, d blockcrypto.Digest) blockcrypto.Digest {
	return blockcrypto.HashOfDigests(blockcrypto.Hash([]byte(log)), tee.Uint64Digest(slot), d)
}

func (s *sigAttestor) attest(log string, slot uint64, d blockcrypto.Digest) (attestation, error) {
	s.charge(s.costs.Sign)
	return attestation{Sig: s.signer.Sign(msgDigest(log, slot, d))}, nil
}

func (s *sigAttestor) verify(from int, log string, slot uint64, d blockcrypto.Digest, a attestation) bool {
	if from < 0 || from >= len(s.peers) || a.Sig.Signer != s.peers[from] {
		return false
	}
	return s.scheme.Verify(msgDigest(log, slot, d), a.Sig)
}

func (s *sigAttestor) onStableCheckpoint(uint64) {}

// logAttestor implements AHL authentication through the A2M enclave.
type logAttestor struct {
	mem    *aaom.Memory
	scheme blockcrypto.Verifier
	peers  []blockcrypto.KeyID
	costs  tee.CostModel
	charge func(time.Duration)
}

func (l *logAttestor) attest(log string, slot uint64, d blockcrypto.Digest) (attestation, error) {
	att, err := l.mem.Bind(log, slot, d)
	if err != nil {
		return attestation{}, err
	}
	return attestation{Log: att}, nil
}

func (l *logAttestor) verify(from int, log string, slot uint64, d blockcrypto.Digest, a attestation) bool {
	// Verification cost is charged by the message-level Cost function;
	// charging here too would double-bill attested variants.
	if from < 0 || from >= len(l.peers) {
		return false
	}
	if a.Log.Log != log || a.Log.Slot != slot || a.Log.Digest != d {
		return false
	}
	if a.Log.Report.Sig.Signer != l.peers[from] {
		return false
	}
	return a.Log.Verify(l.scheme)
}

func (l *logAttestor) onStableCheckpoint(seq uint64) {
	l.mem.Truncate(seq)
	l.mem.Seal()
}

// Deps bundles the environment a replica is constructed over.
type Deps struct {
	Endpoint *simnet.Endpoint
	Scheme   blockcrypto.Scheme
	Signer   blockcrypto.Signer
	// PeerKeys maps replica index -> key id for message verification.
	PeerKeys []blockcrypto.KeyID
	Platform *tee.Platform
	// AAOM is the trusted log enclave; required for attested variants.
	AAOM     *aaom.Memory
	Registry *chaincode.Registry
	Store    *chain.Store
	// Durable, when non-nil, makes the replica write decided batches and
	// stable-checkpoint snapshots through it (see durable.go). Live nodes
	// pass their storage backend; the simulator leaves it nil, keeping the
	// deterministic path byte-identical.
	Durable storage.Backend
	// Obs, when non-nil, instruments the replica's live path (metrics +
	// lifecycle tracing; see obs.go). Nil — the default everywhere the
	// byte-identical BENCH baselines run — records nothing.
	Obs *obs.Hub
}

func executionResultsDigest(results []chaincode.Result) blockcrypto.Digest {
	ds := make([]blockcrypto.Digest, 0, len(results))
	for _, r := range results {
		ok := byte(0)
		if r.OK() {
			ok = 1
		}
		td := r.Tx.Digest()
		ds = append(ds, blockcrypto.Hash(td[:], []byte{ok}))
	}
	return blockcrypto.HashOfDigests(ds...)
}
