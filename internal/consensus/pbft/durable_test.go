package pbft

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/storage"
)

// durableTestCluster builds a committee and attaches an in-memory durable
// backend to replica 0, then runs enough traffic to pass a stable
// checkpoint so the replica has persisted at least one snapshot.
func durableTestCluster(t *testing.T) (*testCluster, *Replica, *storage.Memory) {
	t.Helper()
	tc := newTestCluster(t, 4, VariantHL, nil, func(o *Options) {
		o.BatchSize = 2
		o.CheckpointEvery = 2
		o.Window = 8
	})
	r := tc.bc.Replicas[0]
	mem := storage.NewMemory()
	r.durable = mem
	tc.engine.Schedule(0, func() { tc.submit(0, 20) })
	tc.run(20 * time.Second)
	if r.stableSnapSeq == 0 {
		t.Fatal("no stable checkpoint reached; cannot exercise durable snapshots")
	}
	return tc, r, mem
}

// replayBlock builds a minimal decided block ReplayDecided will accept
// (the ledger validates the tx root on append).
func replayBlock(id uint64) *chain.Block {
	txs := []chain.Tx{{ID: id, Chaincode: "kvstore", Fn: "put", Args: []string{"rk", "rv"}}}
	return &chain.Block{Header: chain.Header{TxRoot: chain.TxRoot(txs)}, Txs: txs}
}

// TestDurableSnapshotExecutionAheadOfCheckpoint is the restart-loop
// regression: a checkpoint quorum can form for seq while the replica has
// already executed further blocks that left the state digest unchanged
// (all their transactions deduped or failed), so the snapshot is captured
// with executedThrough > seq. The durable snapshot must record the true
// execution watermark — restoring it as if execution stopped at seq makes
// the replayed WAL tail (which resumes at executedThrough+1) look like a
// gap, and the node fails with ErrCorrupt on every boot.
func TestDurableSnapshotExecutionAheadOfCheckpoint(t *testing.T) {
	_, r, mem := durableTestCluster(t)

	// The reviewer scenario: execution ran two no-op blocks past the
	// stable checkpoint before the quorum formed.
	seq := r.stableSnapSeq
	r.executedThrough = seq + 2
	r.persistDurableSnapshot()

	snap, _, err := mem.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if snap == nil || snap.Seq != seq || snap.ExecutedThrough != seq+2 {
		t.Fatalf("persisted snapshot = %+v, want Seq=%d ExecutedThrough=%d", snap, seq, seq+2)
	}

	// Boot a fresh replica from it: the crash-restart path.
	tc2 := newTestCluster(t, 4, VariantHL, nil, func(o *Options) {
		o.BatchSize = 2
		o.CheckpointEvery = 2
		o.Window = 8
	})
	r2 := tc2.bc.Replicas[0]
	if _, err := r2.RestoreDurableSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r2.executedThrough != seq+2 {
		t.Fatalf("restored executedThrough = %d, want %d", r2.executedThrough, seq+2)
	}
	if r2.h != seq {
		t.Fatalf("restored stable checkpoint = %d, want %d", r2.h, seq)
	}
	// A record at or below the watermark (seen when replaying from an
	// older fallback snapshot) is skipped, not an error.
	if err := r2.ReplayDecided(seq+1, replayBlock(9001)); err != nil {
		t.Fatalf("replay of already-covered seq %d: %v", seq+1, err)
	}
	// The WAL tail resumes right after the watermark; before the fix this
	// was rejected as a gap ("resumes at seq+3, want seq+1") and the node
	// could never boot again.
	if err := r2.ReplayDecided(seq+3, replayBlock(9002)); err != nil {
		t.Fatalf("replay of WAL tail at seq %d: %v", seq+3, err)
	}
	if r2.executedThrough != seq+3 {
		t.Fatalf("executedThrough after tail replay = %d, want %d", r2.executedThrough, seq+3)
	}
}

// TestDurableSnapshotCoversExecutingBlock pins the companion window: a
// decided block is WAL-appended before it executes, so when a snapshot is
// persisted mid-execution that block's only record sits below the replay
// floor the snapshot establishes while its effects are absent from the
// captured state. persistDurableSnapshot must re-append it above the
// floor, or recovery replays a tail that starts one block late.
func TestDurableSnapshotCoversExecutingBlock(t *testing.T) {
	_, r, mem := durableTestCluster(t)

	next := r.executedThrough + 1
	e := &entry{seq: next, block: replayBlock(9100)}
	if !r.appendDecided(e) {
		t.Fatal("appendDecided failed")
	}
	r.executing, r.execEntry = true, e
	r.persistDurableSnapshot()
	r.executing, r.execEntry = false, nil

	snap, tail, err := mem.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if snap == nil || snap.ExecutedThrough != next-1 {
		t.Fatalf("snapshot = %+v, want ExecutedThrough=%d", snap, next-1)
	}
	if len(tail) != 1 || tail[0].Kind != storage.KindBlock || tail[0].Seq != next {
		t.Fatalf("WAL tail above snapshot = %+v, want the in-flight block at seq %d", tail, next)
	}
}
