package pbft

import (
	"repro/internal/obs"
)

// pbftMetrics holds one replica's resolved observability handles. The
// pointer is nil when no obs.Hub was injected (every simulator bench
// path), so the instrumented hot paths cost a single nil check and the
// published BENCH baselines stay byte-identical with obs compiled in.
type pbftMetrics struct {
	hub  *obs.Hub
	node uint32

	// Pipeline: assigned-but-unexecuted sequences (leader), with a
	// watermark that survives for post-run scrapes.
	occupancy     *obs.Gauge
	occupancyPeak *obs.Gauge

	// Batching: cut sizes and why each cut happened (size-full,
	// BatchTimeout cadence, adaptive idle fast path).
	batchTxs   *obs.Histogram
	cutSize    *obs.Counter
	cutTimeout *obs.Counter
	cutFast    *obs.Counter

	// Per-sequence consensus latencies.
	commitLatency *obs.Histogram // pre-prepare accept -> commit quorum
	execLatency   *obs.Histogram // execution start -> finish
	walAppend     *obs.Histogram // journal-before-execute append

	viewChanges     *obs.Counter
	checkpointLag   *obs.Gauge // executedThrough - stable checkpoint
	executedBatches *obs.Counter
	executedTxs     *obs.Counter
	snapshotCopy    *obs.Histogram // stable-view snapshot materialization

	// Conflict-aware parallel execution.
	parexParallel *obs.Counter   // blocks executed in parallel
	parexSerial   *obs.Counter   // blocks that stayed serial (small/undeclarable/1 group)
	parexFallback *obs.Counter   // parallel runs discarded by the conflict cross-check
	parexGroups   *obs.Histogram // conflict groups per parallel block
	parexGroupTxs *obs.Histogram // transactions per conflict group
	parexUtil     *obs.Histogram // worker busy time / (workers * wall time), percent
}

func newPBFTMetrics(hub *obs.Hub, node uint32) *pbftMetrics {
	reg := hub.Reg
	return &pbftMetrics{
		hub:  hub,
		node: node,

		occupancy:     reg.Gauge("pbft_pipeline_occupancy"),
		occupancyPeak: reg.Gauge("pbft_pipeline_occupancy_peak"),

		batchTxs:   reg.SizeHistogram("pbft_batch_txs"),
		cutSize:    reg.Counter("pbft_batch_cut_size_total"),
		cutTimeout: reg.Counter("pbft_batch_cut_timeout_total"),
		cutFast:    reg.Counter("pbft_batch_cut_fastpath_total"),

		commitLatency: reg.Histogram("pbft_commit_latency"),
		execLatency:   reg.Histogram("pbft_exec_latency"),
		walAppend:     reg.Histogram("pbft_wal_append_latency"),

		viewChanges:     reg.Counter("pbft_view_changes_total"),
		checkpointLag:   reg.Gauge("pbft_checkpoint_lag"),
		executedBatches: reg.Counter("pbft_executed_batches_total"),
		executedTxs:     reg.Counter("pbft_executed_txs_total"),
		snapshotCopy:    reg.Histogram("pbft_snapshot_copy_latency"),

		parexParallel: reg.Counter("pbft_parexec_parallel_total"),
		parexSerial:   reg.Counter("pbft_parexec_serial_total"),
		parexFallback: reg.Counter("pbft_parexec_conflict_fallback_total"),
		parexGroups:   reg.SizeHistogram("pbft_parexec_groups"),
		parexGroupTxs: reg.SizeHistogram("pbft_parexec_group_txs"),
		parexUtil:     reg.SizeHistogram("pbft_parexec_utilization_pct"),
	}
}

// ObsHub returns the hub this replica was built with (nil when
// uninstrumented). The txn manager and the live node pick the hub up
// here rather than having it threaded through their own constructors.
func (r *Replica) ObsHub() *obs.Hub {
	if r.met == nil {
		return nil
	}
	return r.met.hub
}

// Batch-cut reasons (see scheduleBatch / tryBatchTimer).
const (
	cutReasonSize = iota
	cutReasonTimeout
	cutReasonFast
)

// obsCut counts one proposed batch against the active cut reason.
func (r *Replica) obsCut(txs int) {
	m := r.met
	if m == nil {
		return
	}
	m.batchTxs.ObserveSize(int64(txs))
	switch r.cutReason {
	case cutReasonTimeout:
		m.cutTimeout.Inc()
	case cutReasonFast:
		m.cutFast.Inc()
	default:
		m.cutSize.Inc()
	}
}

// tryBatchTimer is the batch timer's callback: a cut it triggers is a
// cadence cut (or an adaptive fast-path cut), not a size cut.
func (r *Replica) tryBatchTimer() {
	if r.batchTimerFast {
		r.cutReason = cutReasonFast
	} else {
		r.cutReason = cutReasonTimeout
	}
	r.tryBatch()
	r.cutReason = cutReasonSize
}

// obsCommitted marks e's commit quorum: the commit-latency observation
// (since pre-prepare accept) and the per-sequence trace event. Called
// everywhere e.committed flips true on the live path (vote quorum, AHLR
// leader certificate, AHLR follower QC).
func (r *Replica) obsCommitted(e *entry) {
	m := r.met
	if m == nil {
		return
	}
	if e.obsTS != 0 {
		m.commitLatency.Observe(m.hub.Now() - e.obsTS)
	}
	n := 0
	if e.block != nil {
		n = len(e.block.Txs)
	}
	m.hub.RecordSeq(m.node, obs.StageCommitQuorum, e.seq, int64(n))
}

// obsOccupancy publishes the pipeline depth in use: sequences assigned
// but not yet executed locally. Meaningful on the leader; ~0 elsewhere.
func (r *Replica) obsOccupancy() {
	m := r.met
	if m == nil {
		return
	}
	var occ int64
	if r.seqAssign > r.executedThrough {
		occ = int64(r.seqAssign - r.executedThrough)
	}
	m.occupancy.Set(occ)
	m.occupancyPeak.SetMax(occ)
}
