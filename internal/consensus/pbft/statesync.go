package pbft

import (
	"sort"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/sim"
)

// State synchronization: a replica that fell behind (its blocks were
// dropped while it was down, e.g. while transitioning between committees
// during resharding, §5.3) fetches a state snapshot from a peer.
//
// Safety rests on checkpoint certificates: every replica retains, for its
// latest stable checkpoint, the quorum of signed/attested checkpoint
// messages that made it stable. A snapshot is only installed if it comes
// with a certificate of f+1 distinct valid attestations over the
// snapshot's digest — at least one of which is from an honest replica, so
// the state is one the committee really agreed on. This makes catch-up
// independent of *new* checkpoint quorums forming, which matters during
// reconfiguration: a revived batch must be able to sync even while the
// next batch is away.

// Message types.
const (
	msgStateReq  = "pbft/state-req"
	msgStateResp = "pbft/state-resp"
)

type stateReqMsg struct {
	// Seq is the minimum checkpoint wanted; 0 means "your latest".
	Seq     uint64
	Replica int
}

type stateRespMsg struct {
	Seq  uint64
	Snap chain.Snapshot
	Cert []*checkpointMsg
	// ExecIDs is the executed-transaction dedup set as of Seq. Without
	// it a restored replica would skip/re-execute duplicate submissions
	// differently from its peers and its state digest would diverge
	// forever (checkpoints could never stabilize again).
	ExecIDs []uint64
	Replica int
}

// stateSyncCost is the CPU time to install a snapshot (plus certificate
// verification charged separately).
const stateSyncCost = 5 * time.Millisecond

// syncReqInterval rate-limits sync requests.
const syncReqInterval = 500 * time.Millisecond

// noteAhead is called when traffic proves the committee has moved beyond
// our window; request a snapshot from the leader and one peer.
func (r *Replica) noteAhead() {
	now := r.engine.Now()
	if r.lastSyncReq != 0 && now.Sub(sim.Time(r.lastSyncReq)) < syncReqInterval {
		return
	}
	r.lastSyncReq = int64(now)
	r.requestReplay()
	req := &stateReqMsg{Seq: 0, Replica: r.self()}
	r.sendTo(r.leaderID(), msgStateReq, req)
	peer := r.opts.Committee.Nodes[(r.self()+1)%r.n()]
	if peer != r.ep.ID() && peer != r.leaderID() {
		r.sendTo(peer, msgStateReq, req)
	}
}

// maybeRequestSync fires from advanceStable when the stable checkpoint ran
// ahead of execution by more than a pipeline's worth of sequence numbers.
func (r *Replica) maybeRequestSync(seq uint64, holders []int) {
	if seq <= r.executedThrough+r.opts.CheckpointEvery+r.opts.Window {
		return
	}
	req := &stateReqMsg{Seq: seq, Replica: r.self()}
	asked := 0
	for _, idx := range holders {
		if idx == r.self() {
			continue
		}
		r.sendTo(r.opts.Committee.Nodes[idx], msgStateReq, req)
		asked++
		if asked == 2 { // redundancy without a broadcast storm
			return
		}
	}
}

func (r *Replica) handleStateReq(m *stateReqMsg) {
	if r.stableView == nil || r.stableSnapSeq == 0 || r.stableSnapSeq < m.Seq || len(r.stableCert) < r.quorum() {
		return
	}
	if m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	resp := &stateRespMsg{
		Seq:     r.stableSnapSeq,
		Snap:    r.snapshotStableState(),
		Cert:    r.stableCert,
		ExecIDs: r.stableExecIDs,
		Replica: r.self(),
	}
	r.sendTo(r.opts.Committee.Nodes[m.Replica], msgStateResp, resp)
}

func (r *Replica) handleStateResp(m *stateRespMsg) {
	if m.Seq <= r.executedThrough {
		return
	}
	// Verify the checkpoint certificate: a quorum of distinct replicas
	// attested this exact (seq, state digest).
	r.ep.CPU().Charge(time.Duration(len(m.Cert)) * r.deps.Platform.Costs().Verify)
	seen := make(map[int]bool, len(m.Cert))
	valid := 0
	for _, ck := range m.Cert {
		if ck == nil || ck.Seq != m.Seq || ck.State != m.Snap.Digest || seen[ck.Replica] {
			continue
		}
		if !r.att.verify(ck.Replica, "checkpoint", ck.Seq, ck.State, ck.Att) {
			continue
		}
		seen[ck.Replica] = true
		valid++
	}
	if valid < r.quorum() {
		return
	}
	r.installSnapshot(m.Seq, m.Snap, m.Cert, m.ExecIDs)
}

func (r *Replica) installSnapshot(seq uint64, snap chain.Snapshot, cert []*checkpointMsg, execIDs []uint64) {
	r.ep.CPU().Charge(stateSyncCost)
	r.store.Restore(snap)
	r.executedTxIDs = make(map[uint64]bool, len(execIDs))
	for _, id := range execIDs {
		r.executedTxIDs[id] = true
		r.dropRequest(id)
	}
	r.executedThrough = seq
	if seq > r.h {
		r.h = seq
	}
	for s, e := range r.entries {
		if s <= seq && !e.executed {
			delete(r.entries, s)
		}
	}
	if r.seqAssign < seq {
		r.seqAssign = seq
	}
	// Restore dropped the retention window of the discarded history;
	// re-seal the installed state so it is a pinnable boundary again.
	r.store.Seal()
	r.stableView = r.store.Head()
	r.stableSnapSeq = seq
	r.stableCert = cert
	r.stableExecIDs = execIDs
	// A peer-supplied snapshot is as final as a local stable checkpoint:
	// make it the durable recovery root too, so a crash right after
	// catch-up does not rewind to the pre-sync state.
	r.persistDurableSnapshot()
	r.suspected = false
	r.inViewChange = false
	r.maybeFinishEnclaveRecovery()
	if len(r.pending) > 0 {
		r.armProgressTimer()
	} else {
		r.vcTimer.Stop()
	}
	// Resume executing anything already committed past the snapshot.
	r.tryExecute()
}

// certFor extracts the quorum certificate for (seq, digest) from the
// collected checkpoint messages.
func certFor(ck map[int]*checkpointMsg, digest blockcrypto.Digest) []*checkpointMsg {
	// Replica order: the certificate is forwarded in state responses, so
	// its order must be run-independent.
	var cert []*checkpointMsg
	idxs := make([]int, 0, len(ck))
	for idx := range ck {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		if m := ck[idx]; m.State == digest {
			cert = append(cert, m)
		}
	}
	return cert
}
