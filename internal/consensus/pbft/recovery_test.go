package pbft

import (
	"testing"
	"time"
)

// TestEnclaveRollbackRecovery mounts the Appendix A attack end to end: a
// follower's A2M enclave is restarted after its sealed state is rolled
// back. The enclave must refuse to attest anything until the committee's
// stable checkpoint passes the estimated high-water mark, and the replica
// must then rejoin and keep executing.
func TestEnclaveRollbackRecovery(t *testing.T) {
	tc := newTestCluster(t, 5, VariantAHLPlus, nil, func(o *Options) {
		o.BatchSize = 5
		o.CheckpointEvery = 4
		o.Window = 8
	})
	victim := tc.bc.Replicas[3]
	platform := tc.bc.Platforms[3]

	// Phase 1: normal traffic so the enclave accumulates sealed state.
	tc.engine.Schedule(0, func() { tc.submit(0, 100) })
	tc.run(20 * time.Second)
	if victim.Executed() != 100 {
		t.Fatalf("warmup executed %d, want 100", victim.Executed())
	}

	// Phase 2: the malicious host rolls back the enclave's sealed state
	// and restarts it. (tc.run times are absolute virtual times.)
	recoveringAfterRestart := false
	tc.engine.Schedule(0, func() {
		platform.Rollback("aaom-state", 2)
		victim.RestartEnclave()
		tc.engine.Schedule(500*time.Millisecond, func() {
			recoveringAfterRestart = victim.EnclaveRecovering()
		})
	})
	tc.run(22 * time.Second)
	if !recoveringAfterRestart {
		t.Fatal("enclave not in recovery shortly after restart")
	}

	// Phase 3: more traffic. The victim cannot attest while recovering,
	// but the committee (quorum 3 of the other 4) keeps going; once the
	// stable checkpoint passes HM the victim unlocks and rejoins.
	tc.engine.Schedule(0, func() { tc.submit(0, 200) })
	tc.run(90 * time.Second)

	if victim.EnclaveRecovering() {
		t.Fatal("enclave never completed recovery")
	}
	tc.requireAgreement(t, 300)
	if victim.Executed() < 250 {
		t.Fatalf("victim executed %d, want near 300 (rejoined)", victim.Executed())
	}
	// And it can attest fresh messages again: submit more and require the
	// victim to keep pace.
	tc.engine.Schedule(0, func() { tc.submit(3, 50) })
	tc.run(130 * time.Second)
	if victim.Executed() < 300 {
		t.Fatalf("victim stuck after recovery: %d", victim.Executed())
	}
}

// TestRecoveryHMEstimate checks the ckpM selection rule directly: the
// chosen value must have at least F other replies at or below it, so a
// single Byzantine peer cannot push HM below the true stable checkpoint.
func TestRecoveryHMEstimate(t *testing.T) {
	tc := newTestCluster(t, 5, VariantAHLPlus, nil, nil) // F = 2
	r := tc.bc.Replicas[0]
	r.ckpReplies = make(map[int]uint64)
	// Peers report: one stale liar (0), three honest (16, 16, 20).
	for i, v := range map[int]uint64{1: 0, 2: 16, 3: 16, 4: 20} {
		r.handleCkpReply(&ckpReplyMsg{Ckp: v, Replica: i})
	}
	// Largest value with >= 2 other replies <= it is 20.
	want := uint64(20) + r.opts.Window
	if r.recoveryHM != want {
		t.Fatalf("HM = %d, want %d", r.recoveryHM, want)
	}
}
