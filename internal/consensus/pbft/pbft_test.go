package pbft

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

// testCluster wires a single committee on a LAN for protocol tests.
type testCluster struct {
	engine *sim.Engine
	net    *simnet.Network
	bc     *BuiltCommittee
	nextTx uint64
}

func newTestCluster(t *testing.T, n int, variant Variant, behaviors map[int]Behavior, tune func(*Options)) *testCluster {
	if t != nil {
		t.Helper()
	}
	engine := sim.NewEngine(1)
	net := simnet.New(engine, simnet.LAN())
	scheme := blockcrypto.NewSimScheme()
	rng := rand.New(rand.NewSource(7))
	nodes := make([]simnet.NodeID, n)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	bc := Build(net, scheme, rng, CommitteeSpec{
		Variant:   variant,
		Nodes:     nodes,
		Behaviors: behaviors,
		Costs:     tee.FreeCosts(),
		Tune:      tune,
	})
	return &testCluster{engine: engine, net: net, bc: bc}
}

// submit sends count kvstore transactions to the given replica.
func (tc *testCluster) submit(replica int, count int) {
	for i := 0; i < count; i++ {
		tc.nextTx++
		tx := chain.Tx{
			ID:        tc.nextTx,
			Chaincode: "kvstore",
			Fn:        "put",
			Args:      []string{fmt.Sprintf("k%d", tc.nextTx), "v"},
			Client:    9999,
		}
		tc.bc.Replicas[replica].SubmitLocal(tx)
	}
}

func (tc *testCluster) run(d time.Duration) { tc.engine.Run(sim.Time(d)) }

func (tc *testCluster) requireAgreement(t *testing.T, minExecuted int) {
	t.Helper()
	q := tc.bc.Committee.Quorum
	ok := 0
	var refLedger *chain.Ledger
	for _, r := range tc.bc.Replicas {
		if r.Executed() >= minExecuted {
			ok++
			if refLedger == nil {
				refLedger = r.Ledger()
			}
		}
		if err := r.Ledger().VerifyChain(); err != nil {
			t.Fatalf("replica ledger broken: %v", err)
		}
	}
	if ok < q {
		t.Fatalf("only %d replicas executed >= %d txs, want quorum %d", ok, minExecuted, q)
	}
	// Safety: all replicas that executed to a height agree on each block.
	for h := uint64(0); h < refLedger.Height(); h++ {
		want := refLedger.Block(h).Digest()
		for i, r := range tc.bc.Replicas {
			if b := r.Ledger().Block(h); b != nil && b.Digest() != want {
				t.Fatalf("replica %d disagrees at height %d", i, h)
			}
		}
	}
}

func TestHLNormalCase(t *testing.T) {
	tc := newTestCluster(t, 4, VariantHL, nil, nil)
	tc.engine.Schedule(0, func() { tc.submit(0, 50) })
	tc.run(10 * time.Second)
	tc.requireAgreement(t, 50)
	if tc.bc.Replicas[0].View() != 0 {
		t.Fatalf("view changed in failure-free run: view=%d", tc.bc.Replicas[0].View())
	}
}

func TestVariantsNormalCase(t *testing.T) {
	for _, v := range []Variant{VariantHL, VariantAHL, VariantAHLOpt1, VariantAHLPlus, VariantAHLR} {
		t.Run(v.String(), func(t *testing.T) {
			tc := newTestCluster(t, 7, v, nil, nil)
			tc.engine.Schedule(0, func() { tc.submit(2, 120) }) // submit to a follower
			tc.run(20 * time.Second)
			tc.requireAgreement(t, 120)
		})
	}
}

func TestAttestedToleratesHalf(t *testing.T) {
	// N=7 attested: f=3, quorum 4. Three silent nodes must not stop it.
	behaviors := map[int]Behavior{4: BehaviorSilent, 5: BehaviorSilent, 6: BehaviorSilent}
	tc := newTestCluster(t, 7, VariantAHLPlus, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(0, 60) })
	tc.run(30 * time.Second)
	tc.requireAgreement(t, 60)
}

func TestHLToleratesThird(t *testing.T) {
	// N=7 HL: f=2, quorum 5. Two silent nodes must not stop it.
	behaviors := map[int]Behavior{5: BehaviorSilent, 6: BehaviorSilent}
	tc := newTestCluster(t, 7, VariantHL, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(0, 60) })
	tc.run(30 * time.Second)
	tc.requireAgreement(t, 60)
}

func TestViewChangeOnSilentLeader(t *testing.T) {
	// Leader of view 0 (replica 0) is silent; a view change must elect
	// replica 1 and the committee must still execute everything.
	behaviors := map[int]Behavior{0: BehaviorSilent}
	tc := newTestCluster(t, 7, VariantAHLPlus, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(1, 40) })
	tc.run(60 * time.Second)
	tc.requireAgreement(t, 40)
	if v := tc.bc.Replicas[1].View(); v == 0 {
		t.Fatal("no view change happened despite silent leader")
	}
	if tc.bc.MaxViewChanges() == 0 {
		t.Fatal("view change counter not incremented")
	}
}

func TestViewChangeCascadePastMultipleSilentLeaders(t *testing.T) {
	// Views 0 and 1 both have silent leaders; the committee must cascade
	// to view 2.
	behaviors := map[int]Behavior{0: BehaviorSilent, 1: BehaviorSilent}
	tc := newTestCluster(t, 7, VariantAHLPlus, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(2, 30) })
	tc.run(120 * time.Second)
	tc.requireAgreement(t, 30)
	if v := tc.bc.Replicas[2].View(); v < 2 {
		t.Fatalf("view = %d, want >= 2", v)
	}
}

func TestEquivocatingLeaderHL(t *testing.T) {
	// Under HL a Byzantine leader equivocates; the committee must recover
	// via view change and still make progress (no safety violation).
	behaviors := map[int]Behavior{0: BehaviorEquivocate}
	tc := newTestCluster(t, 7, VariantHL, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(1, 30) })
	tc.run(120 * time.Second)
	tc.requireAgreement(t, 30)
	if tc.bc.MaxViewChanges() == 0 {
		t.Fatal("equivocating leader caused no view change")
	}
}

func TestEquivocatingLeaderAHLCannotSplitCommittee(t *testing.T) {
	// Under AHL the trusted log refuses the conflicting binding: the
	// attack degrades to withholding. The committee recovers and no two
	// honest replicas ever execute different blocks at a height.
	behaviors := map[int]Behavior{0: BehaviorEquivocate}
	tc := newTestCluster(t, 5, VariantAHLPlus, behaviors, nil)
	tc.engine.Schedule(0, func() { tc.submit(1, 30) })
	tc.run(120 * time.Second)
	tc.requireAgreement(t, 30)
}

func TestDedupAcrossReplicasAndRetries(t *testing.T) {
	tc := newTestCluster(t, 4, VariantHL, nil, nil)
	tx := chain.Tx{ID: 77, Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}, Client: 1}
	tc.engine.Schedule(0, func() {
		// The same transaction submitted to every replica (client retry
		// storm) must execute exactly once.
		for _, r := range tc.bc.Replicas {
			r.SubmitLocal(tx)
			r.SubmitLocal(tx)
		}
	})
	tc.run(10 * time.Second)
	for i, r := range tc.bc.Replicas {
		if got := r.Executed(); got != 1 {
			t.Fatalf("replica %d executed %d txs, want 1", i, got)
		}
	}
}

func TestCheckpointAdvancesWatermark(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, func(o *Options) {
		o.BatchSize = 5
		o.CheckpointEvery = 4
		o.Window = 8
	})
	tc.engine.Schedule(0, func() { tc.submit(0, 200) })
	tc.run(60 * time.Second)
	tc.requireAgreement(t, 200)
	for i, r := range tc.bc.Replicas {
		if r.StableCheckpoint() == 0 {
			t.Fatalf("replica %d never advanced its stable checkpoint", i)
		}
	}
}

func TestPipeliningBeyondOneBlock(t *testing.T) {
	// With a wide window and small batches the leader must drive many
	// sequences concurrently; all must execute in order.
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, func(o *Options) {
		o.BatchSize = 1
		o.Window = 32
		o.CheckpointEvery = 16
	})
	tc.engine.Schedule(0, func() { tc.submit(0, 64) })
	tc.run(60 * time.Second)
	tc.requireAgreement(t, 64)
	r := tc.bc.Replicas[0]
	if r.Ledger().Height() < 64 {
		t.Fatalf("ledger height = %d, want >= 64 (batch size 1)", r.Ledger().Height())
	}
}

func TestIntakeCapThrottles(t *testing.T) {
	tc := newTestCluster(t, 4, VariantHL, nil, func(o *Options) {
		o.IntakeCap = 10 // 10 requests/second
	})
	tc.engine.Schedule(0, func() { tc.submit(0, 500) })
	tc.run(2 * time.Second)
	// At 10/s for 2s with a full initial bucket of 10, at most ~30
	// admitted.
	if got := tc.bc.Replicas[0].Executed(); got > 40 {
		t.Fatalf("executed %d txs, want <= 40 under intake cap", got)
	}
}

func TestSmallBankExecutionThroughConsensus(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, nil)
	txs := []chain.Tx{
		{ID: 1, Chaincode: "smallbank", Fn: "create", Args: []string{"a", "100", "0"}},
		{ID: 2, Chaincode: "smallbank", Fn: "create", Args: []string{"b", "0", "0"}},
		{ID: 3, Chaincode: "smallbank", Fn: "sendPayment", Args: []string{"a", "b", "40"}},
	}
	tc.engine.Schedule(0, func() {
		for _, tx := range txs {
			tc.bc.Replicas[0].SubmitLocal(tx)
		}
	})
	tc.run(10 * time.Second)
	for i, r := range tc.bc.Replicas {
		v, ok := r.Store().Get("c_b")
		if !ok || string(v) != "40" {
			t.Fatalf("replica %d: c_b = %q ok=%v, want 40", i, v, ok)
		}
	}
}

func TestExecutedCallbackFires(t *testing.T) {
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, nil)
	var events []consensus.BlockEvent
	tc.bc.Replicas[0].OnExecute(func(ev consensus.BlockEvent) { events = append(events, ev) })
	tc.engine.Schedule(0, func() { tc.submit(0, 10) })
	tc.run(10 * time.Second)
	total := 0
	for _, ev := range events {
		total += len(ev.Results)
		for _, res := range ev.Results {
			if !res.OK() {
				t.Fatalf("tx %d failed: %v", res.Tx.ID, res.Err)
			}
		}
	}
	if total != 10 {
		t.Fatalf("callback reported %d results, want 10", total)
	}
}

func TestCommitteeHelpers(t *testing.T) {
	nodes := []simnet.NodeID{10, 20, 30, 40, 50, 60, 70}
	bft := consensus.BFTCommittee(nodes)
	if bft.F != 2 || bft.Quorum != 5 {
		t.Fatalf("BFT committee f=%d q=%d, want 2/5", bft.F, bft.Quorum)
	}
	att := consensus.AttestedCommittee(nodes)
	if att.F != 3 || att.Quorum != 4 {
		t.Fatalf("attested committee f=%d q=%d, want 3/4", att.F, att.Quorum)
	}
	if att.Leader(0) != 10 || att.Leader(8) != 20 {
		t.Fatal("leader rotation wrong")
	}
	if att.Index(30) != 2 || att.Index(99) != -1 {
		t.Fatal("index lookup wrong")
	}
}

func TestVariantFlags(t *testing.T) {
	cases := []struct {
		v          Variant
		attested   bool
		split      bool
		forward    bool
		aggregated bool
	}{
		{VariantHL, false, false, false, false},
		{VariantAHL, true, false, false, false},
		{VariantAHLOpt1, true, true, false, false},
		{VariantAHLPlus, true, true, true, false},
		{VariantAHLR, true, true, true, true},
	}
	for _, c := range cases {
		if c.v.Attested() != c.attested || c.v.SplitQueues() != c.split ||
			c.v.ForwardToLeader() != c.forward || c.v.Aggregated() != c.aggregated {
			t.Fatalf("variant %v flags wrong", c.v)
		}
	}
}
