package pbft

import (
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Durability integration. When Deps.Durable is set (live nodes only — the
// deterministic simulator passes nil and is untouched), the replica:
//
//   - appends every decided batch to the WAL *before* executing it
//     (tryExecute), so a crash between decide and execute replays the
//     batch instead of losing it;
//   - persists a storage.Snapshot — state, dedup sets, the checkpoint
//     certificate, and the transaction manager's stage blob — whenever a
//     checkpoint becomes stable with matching local state (advanceStable)
//     or a peer snapshot is installed (installSnapshot), then lets the
//     backend reclaim the WAL prefix the snapshot covers.
//
// Boot recovery is driven from the outside (internal/core's LiveNode):
// RestoreDurableSnapshot rewinds the replica to the snapshot, then
// ReplayDecided re-executes each WAL block in order — interleaved with
// the manager's stage records so cross-layer causality is preserved —
// and finally ResyncWithPeers uses the existing statesync/replay
// protocol to fetch whatever the committee decided while the process
// was down.

// OnStorageFatal installs the callback invoked when a durability write
// fails. Losing the WAL means the replica can no longer honor its
// crash-recovery promise, so the default without a callback is to panic;
// the live runtime routes the error to a fatal-exit path instead.
func (r *Replica) OnStorageFatal(fn func(error)) { r.onStorageFatal = fn }

// SetDurableExtra installs the provider of the opaque stage blob stored
// in every durable snapshot (the transaction manager's in-flight 2PC
// state). Restored bytes are handed back to the owner, not interpreted.
func (r *Replica) SetDurableExtra(fn func() []byte) { r.durableExtra = fn }

// StorageFatal routes a durability failure from a composing layer (the
// transaction manager journals through the replica's backend) into the
// same fatal path as the replica's own WAL failures.
func (r *Replica) StorageFatal(err error) { r.storageFatal(err) }

func (r *Replica) storageFatal(err error) {
	if r.onStorageFatal != nil {
		r.onStorageFatal(err)
		return
	}
	panic("pbft: storage failure with no fatal handler: " + err.Error())
}

// appendDecided writes the decided batch at seq write-ahead of its
// execution. It reports whether execution may proceed: a failed append
// must halt the replica (via the fatal path) rather than execute state
// the disk does not have.
func (r *Replica) appendDecided(e *entry) bool {
	if r.durable == nil {
		return true
	}
	err := r.durable.Append(storage.Record{Kind: storage.KindBlock, Seq: e.seq, Block: e.block})
	if err != nil {
		r.storageFatal(fmt.Errorf("pbft: WAL append of seq %d: %w", e.seq, err))
		return false
	}
	return true
}

// snapshotStableState materializes the stable-checkpoint view into a
// transferable snapshot. The copy happens outside the store's write lock
// (the view is immutable), so execution never stalls behind it; the
// histogram tracks how long the materialization itself takes.
func (r *Replica) snapshotStableState() chain.Snapshot {
	var start int64
	if m := r.met; m != nil {
		start = m.hub.Now()
	}
	sn := r.stableView.Snapshot()
	if m := r.met; m != nil {
		m.snapshotCopy.Observe(m.hub.Now() - start)
	}
	return sn
}

// persistDurableSnapshot saves the current stable-checkpoint state as the
// recovery root and releases the WAL prefix it covers. Called wherever
// stableView is refreshed.
func (r *Replica) persistDurableSnapshot() {
	if r.durable == nil || r.stableSnapSeq == 0 || r.stableView == nil {
		return
	}
	var okIDs, failIDs []uint64
	for _, id := range r.stableExecIDs {
		if ok, known := r.executedOK[id]; known {
			if ok {
				okIDs = append(okIDs, id)
			} else {
				failIDs = append(failIDs, id)
			}
		}
	}
	sort.Slice(okIDs, func(i, j int) bool { return okIDs[i] < okIDs[j] })
	sort.Slice(failIDs, func(i, j int) bool { return failIDs[i] < failIDs[j] })
	snap := storage.Snapshot{
		Seq: r.stableSnapSeq,
		// The capture reflects everything executed so far, which can run
		// past the checkpoint (blocks whose transactions were all deduped
		// or failed leave the digest unchanged, so advanceStable still
		// matches). Recording the true execution watermark keeps boot
		// replay's continuity check aligned with the WAL tail; recording
		// Seq instead would make every restart fail with a phantom gap.
		ExecutedThrough: r.executedThrough,
		View:            r.view,
		State:           r.snapshotStableState(),
		ExecIDs:         r.stableExecIDs,
		OKIDs:           okIDs,
		FailIDs:         failIDs,
		Cert:            encodeCert(r.stableCert),
	}
	if r.durableExtra != nil {
		snap.Stage = r.durableExtra()
	}
	if err := r.durable.SaveSnapshot(snap); err != nil {
		r.storageFatal(fmt.Errorf("pbft: snapshot at seq %d: %w", snap.Seq, err))
		return
	}
	// The WAL may already hold the block being executed right now:
	// appendDecided runs before execution starts, so that record sits
	// below the replay floor SaveSnapshot just established, yet its
	// effects are not in the snapshot (executedThrough has not advanced).
	// Re-append it above the floor or the tail would resume one block
	// late and boot recovery would report a gap. A duplicate seen when
	// replaying from an older fallback snapshot is skipped harmlessly.
	if e := r.execEntry; r.executing && e != nil && e.seq == r.executedThrough+1 {
		err := r.durable.Append(storage.Record{Kind: storage.KindBlock, Seq: e.seq, Block: e.block})
		if err != nil {
			r.storageFatal(fmt.Errorf("pbft: WAL re-append of seq %d: %w", e.seq, err))
			return
		}
	}
	if err := r.durable.TruncateBefore(snap.Seq); err != nil {
		r.storageFatal(fmt.Errorf("pbft: WAL truncation at seq %d: %w", snap.Seq, err))
	}
}

// RestoreDurableSnapshot rewinds the replica to a recovered snapshot:
// world state, execution dedup sets, watermarks, view, and the checkpoint
// certificate that lets this replica serve state-sync requests for the
// restored state. Call before the engine loop starts, then feed the WAL
// tail through ReplayDecided. Returns the snapshot's opaque stage blob
// for the transaction layer.
func (r *Replica) RestoreDurableSnapshot(s *storage.Snapshot) ([]byte, error) {
	cert, err := decodeCert(s.Cert)
	if err != nil {
		return nil, err
	}
	r.store.Restore(s.State)
	r.executedTxIDs = make(map[uint64]bool, len(s.ExecIDs))
	for _, id := range s.ExecIDs {
		r.executedTxIDs[id] = true
	}
	r.executedOK = make(map[uint64]bool, len(s.OKIDs)+len(s.FailIDs))
	for _, id := range s.OKIDs {
		r.executedOK[id] = true
	}
	for _, id := range s.FailIDs {
		r.executedOK[id] = false
	}
	// Execution resumes where the capture left off, which can be past the
	// checkpoint itself (see persistDurableSnapshot); the checkpoint
	// watermarks stay at Seq, the sequence the certificate covers.
	et := s.ExecutedThrough
	if et < s.Seq {
		et = s.Seq
	}
	r.executedThrough = et
	r.h = s.Seq
	r.seqAssign = et
	r.view = s.View
	r.store.Seal()
	r.stableView = r.store.Head()
	r.stableSnapSeq = s.Seq
	r.stableCert = cert
	r.stableExecIDs = s.ExecIDs
	return s.Stage, nil
}

// ReplayDecided re-executes one WAL block record during boot recovery.
// Records at or below the snapshot are skipped (the snapshot already
// reflects them); a gap above it means the log lost records and is
// reported, not papered over. Execution mirrors finishExecute's state
// transitions but sends nothing and charges no virtual CPU — the decided
// batch is final, this is reconstruction, not consensus.
func (r *Replica) ReplayDecided(seq uint64, block *chain.Block) error {
	if seq <= r.executedThrough {
		return nil
	}
	if seq != r.executedThrough+1 {
		return fmt.Errorf("%w: WAL resumes at seq %d, want %d", storage.ErrCorrupt, seq, r.executedThrough+1)
	}
	if block == nil {
		return fmt.Errorf("%w: WAL block record at seq %d has no block", storage.ErrCorrupt, seq)
	}
	r.executedThrough = seq
	blk := &chain.Block{Header: block.Header, Txs: block.Txs}
	blk.Header.Height = r.ledger.Height()
	blk.Header.PrevHash = r.ledger.TipHash()
	if err := r.ledger.Append(blk); err != nil {
		return fmt.Errorf("pbft: replay ledger append at seq %d: %w", seq, err)
	}
	results := make([]chaincode.Result, 0, len(block.Txs))
	for _, tx := range block.Txs {
		if r.executedTxIDs[tx.ID] {
			continue
		}
		r.executedTxIDs[tx.ID] = true
		res := r.deps.Registry.Execute(r.store, tx)
		r.executedOK[tx.ID] = res.OK()
		for _, dtx := range res.Committed {
			r.store.RecordCommit(dtx)
		}
		results = append(results, res)
		r.dropRequest(tx.ID)
		r.executedCount++
	}
	r.store.Seal()
	if r.seqAssign < seq {
		r.seqAssign = seq
	}
	if r.onExec != nil {
		r.onExec(consensus.BlockEvent{Block: blk, Results: results, Time: r.engine.Now()})
	}
	return nil
}

// ResyncWithPeers asks the committee for anything decided while this
// process was down: state snapshots beyond our recovered tail and replay
// of individual decided blocks. Call once the engine loop is running (it
// sends protocol messages).
func (r *Replica) ResyncWithPeers() {
	r.lastSyncReq = 0
	r.noteAhead()
}

// encodeCert serializes a checkpoint certificate for storage, reusing the
// wire codec that carries the same messages in state-sync responses.
func encodeCert(cert []*checkpointMsg) []byte {
	var e wire.Encoder
	e.Uvarint(uint64(len(cert)))
	for _, ck := range cert {
		putCheckpoint(&e, ck)
	}
	return append([]byte(nil), e.Bytes()...)
}

func decodeCert(data []byte) ([]*checkpointMsg, error) {
	if len(data) == 0 {
		return nil, nil
	}
	d := wire.NewDecoder(data)
	n := d.Count(1)
	cert := make([]*checkpointMsg, 0, wire.CapHint(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		cert = append(cert, getCheckpoint(d))
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: checkpoint certificate: %v", storage.ErrCorrupt, err)
	}
	return cert, nil
}
