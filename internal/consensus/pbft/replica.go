package pbft

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tee/aggregator"
	"repro/internal/wire"
)

// maxCommittee bounds committee size; quorum tracking uses fixed-width
// bitsets sized for it (paper committees top out at 79 replicas).
const maxCommittee = 256

// voteSet tracks which replica indices have voted for one (entry, phase).
// A fixed-width bitset replaces the two map allocations per entry that the
// quorum-tracking hot path used to pay, and membership/count checks become
// branch-free word operations.
type voteSet struct {
	words [maxCommittee / 64]uint64
	n     int
}

// add records a vote from replica i, reporting whether it was new.
func (v *voteSet) add(i int) bool {
	w, b := uint(i)>>6, uint64(1)<<(uint(i)&63)
	if v.words[w]&b != 0 {
		return false
	}
	v.words[w] |= b
	v.n++
	return true
}

func (v *voteSet) has(i int) bool { return v.words[uint(i)>>6]&(1<<(uint(i)&63)) != 0 }
func (v *voteSet) count() int     { return v.n }
func (v *voteSet) reset()         { *v = voteSet{} }

// entry tracks one in-flight sequence number.
type entry struct {
	view           uint64
	seq            uint64
	digest         blockcrypto.Digest
	block          *chain.Block
	prePrepared    bool
	prepares       voteSet
	commits        voteSet
	prepared       bool
	committed      bool
	executed       bool
	sentCommitVote bool

	// AHLR leader-side vote accumulation.
	prepVotes    []aggregator.Vote
	prepVoters   voteSet
	commitVotes  []aggregator.Vote
	commitVoters voteSet
	prepQCSent   bool
	commitQCSent bool

	// obsTS is the obs-clock reading at pre-prepare accept, the start of
	// the commit-latency measurement. 0 when uninstrumented (and zeroed
	// by reset's *e = entry{...} on pool reuse).
	obsTS int64
}

// reset clears e for reuse from the entry pool, keeping the vote slices'
// backing arrays (their elements are zeroed to release signature bytes).
func (e *entry) reset() {
	for i := range e.prepVotes {
		e.prepVotes[i] = aggregator.Vote{}
	}
	for i := range e.commitVotes {
		e.commitVotes[i] = aggregator.Vote{}
	}
	pv, cv := e.prepVotes[:0], e.commitVotes[:0]
	*e = entry{prepVotes: pv, commitVotes: cv}
}

// Replica is one PBFT/AHL-family replica.
type Replica struct {
	opts Options
	deps Deps

	engine *sim.Engine
	ep     *simnet.Endpoint
	att    attestor
	agg    *aggregator.Aggregator

	view         uint64
	inViewChange bool
	suspected    bool   // progress timeout seen once (see onProgressTimeout)
	vcView       uint64 // highest view we voted to change to
	seqAssign    uint64 // leader: last assigned sequence
	h            uint64 // low watermark (last stable checkpoint)
	entries      map[uint64]*entry
	entryPool    []*entry // recycled entries (see getEntry/recycleEntry)

	executedThrough uint64
	executing       bool
	execEntry       *entry // entry occupying the CPU while executing
	executedTxIDs   map[uint64]bool
	// executedOK records the execution result of locally-executed
	// transactions (absent for ids learned via snapshot install, whose
	// results this replica never saw), so a duplicate request for an
	// executed transaction can be answered with a fresh Reply instead of
	// silence — the re-reply path client retransmission relies on.
	executedOK   map[uint64]bool
	pending      map[uint64]chain.Tx
	pendingOrder []uint64
	batchedIn    map[uint64]uint64 // txID -> seq
	// unbatched counts pending txs with no batchedIn assignment. It is
	// maintained incrementally (see markBatched/unmarkBatched): the naive
	// O(len(pending)) scan was ~90% of benchmark CPU time at high request
	// rates, because batching is re-evaluated on every request arrival.
	unbatched int

	ledger *chain.Ledger
	store  *chain.Store

	vcVotes     map[uint64]map[int]*viewChangeMsg
	checkpoints map[uint64]map[int]*checkpointMsg

	// State-sync bookkeeping (see statesync.go). stableView is the
	// immutable height-pinned view of the last stable checkpoint's state;
	// snapshots for state transfer and durable persistence materialize
	// from it on demand instead of deep-copying under the store's write
	// lock.
	stableView    *chain.Reader
	stableSnapSeq uint64
	stableCert    []*checkpointMsg
	stableExecIDs []uint64
	lastSyncReq   int64
	lastNewView   *newViewMsg

	// Replay catch-up state (see replay.go).
	replayVotes  map[uint64]map[blockcrypto.Digest]map[int]bool
	replayBlocks map[blockcrypto.Digest]*chain.Block

	// Enclave recovery state (see recovery.go).
	ckpReplies map[int]uint64
	recoveryHM uint64

	batchTimer *sim.Timer
	vcTimer    *sim.Timer

	onExec        func(consensus.BlockEvent)
	executedCount int
	vcCount       int

	// Durability hooks (see durable.go); all nil/no-op in the simulator.
	durable        storage.Backend
	durableExtra   func() []byte
	onStorageFatal func(error)

	// intake throttling (token bucket), see Options.IntakeCap.
	intakeTokens float64
	intakeLast   sim.Time

	// verifiedMsg is set by Handle from Message.Verified for the duration
	// of one dispatch: the live runtime's transport goroutines pre-verify
	// attestations before the message reaches the engine (see Preverifier)
	// and the flag lets the handler skip the redundant check. Consume-once
	// via takeVerified so an early return cannot leak it to a later check.
	verifiedMsg bool
	// execWorkers caps goroutines for conflict-aware parallel execution
	// (resolved from Options.ExecWorkers at construction; <=1 = serial).
	execWorkers int
	// batchTimerFast records that batchTimer is armed with the adaptive
	// fast-path coalescing delay rather than the full BatchTimeout, so an
	// idle-pipeline arrival can tell whether the pending cut is already
	// imminent (see scheduleAdaptiveBatch).
	batchTimerFast bool

	// ExecBusy accumulates virtual CPU time spent executing transactions,
	// as opposed to running consensus (Figure 17).
	ExecBusy time.Duration

	// Observability (see obs.go). met is nil when no hub was injected;
	// cutReason attributes the in-progress batch cut; execStartNS is the
	// obs-clock reading when the current block started executing.
	met         *pbftMetrics
	cutReason   uint8
	execStartNS int64
}

// New constructs a replica and installs it as its endpoint's handler.
func New(opts Options, deps Deps) *Replica {
	if opts.CheckpointEvery > opts.Window {
		// The leader can only assign sequences within (h, h+Window], so a
		// checkpoint must occur within every window or h never advances.
		panic("pbft: CheckpointEvery must be <= Window")
	}
	if opts.Committee.N() > maxCommittee {
		panic("pbft: committee larger than maxCommittee; widen voteSet")
	}
	r := &Replica{
		opts:          opts,
		deps:          deps,
		ep:            deps.Endpoint,
		entries:       make(map[uint64]*entry),
		executedTxIDs: make(map[uint64]bool),
		executedOK:    make(map[uint64]bool),
		pending:       make(map[uint64]chain.Tx),
		batchedIn:     make(map[uint64]uint64),
		ledger:        chain.NewLedger(),
		store:         deps.Store,
		vcVotes:       make(map[uint64]map[int]*viewChangeMsg),
		checkpoints:   make(map[uint64]map[int]*checkpointMsg),
		replayVotes:   make(map[uint64]map[blockcrypto.Digest]map[int]bool),
		replayBlocks:  make(map[blockcrypto.Digest]*chain.Block),
		intakeTokens:  opts.IntakeCap, // start with a full bucket
		durable:       deps.Durable,
	}
	r.engine = deps.Platform.Engine()
	if r.store == nil {
		r.store = chain.NewStore()
	}
	r.execWorkers = opts.ExecWorkers
	if r.execWorkers == 0 {
		r.execWorkers = defaultExecWorkers()
	}
	charge := func(d time.Duration) { deps.Endpoint.CPU().Charge(d) }
	costs := deps.Platform.Costs()
	if opts.Variant.Attested() {
		r.att = &logAttestor{mem: deps.AAOM, scheme: deps.Scheme, peers: deps.PeerKeys, costs: costs, charge: charge}
	} else {
		r.att = &sigAttestor{signer: deps.Signer, scheme: deps.Scheme, peers: deps.PeerKeys, costs: costs, charge: charge}
	}
	if opts.Variant.Aggregated() {
		r.agg = aggregator.New(deps.Platform, deps.Scheme)
	}
	if deps.Obs != nil {
		r.met = newPBFTMetrics(deps.Obs, uint32(deps.Endpoint.ID()))
	}
	r.batchTimer = r.engine.NewTimer()
	r.vcTimer = r.engine.NewTimer()
	deps.Endpoint.SetHandler(r)
	deps.Endpoint.OnDownChange(r.onDownChange)
	return r
}

// onDownChange quiesces the replica while its node is crashed and resumes
// protocol activity on recovery. Without the quiesce, a crashed node's
// timers keep cycling forever — the progress timer escalates it through
// view after view, broadcasting into the void — and on recovery it
// rejoins in a nonsense view.
func (r *Replica) onDownChange(down bool) {
	if down {
		r.batchTimer.Stop()
		r.vcTimer.Stop()
		r.suspected = false
		return
	}
	// Recovery: probe peers for anything missed during the outage (state
	// snapshots, replay of decided blocks, a newer view) and pick the
	// replica's duties back up.
	r.lastSyncReq = 0
	r.noteAhead()
	if len(r.pending) > 0 {
		if r.inViewChange {
			// Crashed mid-view-change: resume the escalation loop, not the
			// progress timer — onProgressTimeout cannot escalate past a
			// view this replica already voted for, so arming it here would
			// dead-end after one firing with the vote possibly lost.
			r.vcTimer.Reset(2*r.opts.Timing.ViewChangeTimeout, r.onViewChangeTimeout)
		} else {
			r.armProgressTimer()
		}
	}
	if r.isLeader() && !r.inViewChange {
		r.scheduleBatch()
	}
}

// --- accessors ---

// View returns the current view number.
func (r *Replica) View() uint64 { return r.view }

// Executed implements consensus.Replica.
func (r *Replica) Executed() int { return r.executedCount }

// ViewChanges implements consensus.Replica.
func (r *Replica) ViewChanges() int { return r.vcCount }

// OnExecute implements consensus.Replica.
func (r *Replica) OnExecute(fn func(consensus.BlockEvent)) { r.onExec = fn }

// Ledger exposes the replica's chain for verification in tests.
func (r *Replica) Ledger() *chain.Ledger { return r.ledger }

// Store exposes the replica's state for verification in tests.
func (r *Replica) Store() *chain.Store { return r.store }

// StableCheckpoint returns the low watermark.
func (r *Replica) StableCheckpoint() uint64 { return r.h }

// ExecutedOK reports whether transaction id has already been executed on
// this replica and, if so, whether it succeeded. ok is false for ids
// learned only through a snapshot install (the result was never observed
// locally) — callers treating unknown as failure stay safe. Layered
// protocols use this to close the execution-before-registration race: a
// transaction injected by a faster peer can execute through consensus
// before this node's manager registers its own interest in it.
func (r *Replica) ExecutedOK(id uint64) (ok, executed bool) {
	if !r.executedTxIDs[id] {
		return false, false
	}
	return r.executedOK[id], true
}

// Endpoint returns the replica's network attachment, letting composing
// layers (the transaction manager) wrap its handler.
func (r *Replica) Endpoint() *simnet.Endpoint { return r.ep }

// Committee returns the replica's committee description.
func (r *Replica) Committee() consensus.Committee { return r.opts.Committee }

// Engine returns the simulation engine the replica runs on; layered
// protocols (e.g. the transaction managers) use it for their own timers.
func (r *Replica) Engine() *sim.Engine { return r.engine }

func (r *Replica) self() int               { return r.opts.Index }
func (r *Replica) n() int                  { return r.opts.Committee.N() }
func (r *Replica) quorum() int             { return r.opts.Committee.Quorum }
func (r *Replica) isLeader() bool          { return r.opts.Committee.Leader(r.view) == r.ep.ID() }
func (r *Replica) leaderID() simnet.NodeID { return r.opts.Committee.Leader(r.view) }
func (r *Replica) byz(b Behavior) bool     { return r.opts.Behavior == b }

// sendTo transmits one protocol message; its simulated transmission size
// is the actual wire encoding (what the TCP transport would send).
func (r *Replica) sendTo(id simnet.NodeID, typ string, payload any) {
	r.ep.Send(simnet.Message{To: id, Class: simnet.ClassConsensus, Type: typ,
		Payload: payload, Size: wire.PayloadSize(typ, payload)})
}

// broadcast fans one message out to every peer, encoding its size once.
func (r *Replica) broadcast(typ string, payload any) {
	size := wire.PayloadSize(typ, payload)
	for _, id := range r.opts.Committee.Nodes {
		if id != r.ep.ID() {
			r.ep.Send(simnet.Message{To: id, Class: simnet.ClassConsensus, Type: typ,
				Payload: payload, Size: size})
		}
	}
}

// --- simnet.Handler ---

// Cost implements simnet.Handler: the CPU service time for processing m,
// dominated by signature/attestation verification (Table 2 costs).
func (r *Replica) Cost(m simnet.Message) time.Duration {
	c := r.deps.Platform.Costs()
	switch m.Type {
	case msgRequest, msgRequestFwd:
		return r.opts.RequestVerify
	case msgPrePrepare:
		pp := m.Payload.(*prePrepareMsg)
		nt := 0
		if pp.Block != nil {
			nt = len(pp.Block.Txs)
		}
		return c.Verify + time.Duration(nt)*c.SHA256
	case msgPrepare, msgCommit, msgCheckpoint:
		return c.Verify
	case msgVote:
		// Verified inside the aggregation enclave when the quorum is
		// assembled; receipt itself is cheap.
		return c.EnclaveSwitch
	case msgQC:
		return c.Verify
	case msgViewChange:
		return c.Verify
	case msgNewView:
		nv := m.Payload.(*newViewMsg)
		return c.Verify * time.Duration(1+len(nv.Reissue))
	case msgStateReq, msgNVReq, msgReplayReq:
		return 10 * time.Microsecond
	case msgCkpQuery, msgCkpReply:
		return recoveryMsgCost
	case msgStateResp:
		return stateSyncCost
	case msgReplayResp:
		rr := m.Payload.(*replayRespMsg)
		return time.Duration(len(rr.Items)) * c.Verify
	default:
		return 0
	}
}

// Handle implements simnet.Handler.
func (r *Replica) Handle(m simnet.Message) {
	if r.byz(BehaviorSilent) {
		return
	}
	r.verifiedMsg = m.Verified
	switch m.Type {
	case msgRequest:
		r.handleRequest(m.Payload.(chain.Tx), true)
	case msgRequestFwd:
		r.handleRequest(m.Payload.(chain.Tx), false)
	case msgPrePrepare:
		r.handlePrePrepare(m.Payload.(*prePrepareMsg))
	case msgPrepare, msgCommit:
		r.handleVote(m.Payload.(*voteMsg))
	case msgVote:
		r.handleAggVote(m.Payload.(*voteMsg))
	case msgQC:
		r.handleQC(m.Payload.(*qcMsg))
	case msgCheckpoint:
		r.handleCheckpoint(m.Payload.(*checkpointMsg))
	case msgViewChange:
		r.handleViewChange(m.Payload.(*viewChangeMsg))
	case msgNewView:
		r.handleNewView(m.Payload.(*newViewMsg))
	case msgNVReq:
		r.handleNVReq(m.Payload.(*nvReqMsg))
	case msgStateReq:
		r.handleStateReq(m.Payload.(*stateReqMsg))
	case msgStateResp:
		r.handleStateResp(m.Payload.(*stateRespMsg))
	case msgReplayReq:
		r.handleReplayReq(m.Payload.(*replayReqMsg))
	case msgReplayResp:
		r.handleReplayResp(m.Payload.(*replayRespMsg))
	case msgCkpQuery:
		r.handleCkpQuery(m.Payload.(*ckpQueryMsg))
	case msgCkpReply:
		r.handleCkpReply(m.Payload.(*ckpReplyMsg))
	}
}

// --- client requests ---

// SubmitLocal implements consensus.Replica: a client request arriving at
// this replica.
func (r *Replica) SubmitLocal(tx chain.Tx) { r.handleRequest(tx, true) }

// admitRequest applies the REST intake cap.
func (r *Replica) admitRequest() bool {
	if r.opts.IntakeCap <= 0 {
		return true
	}
	now := r.engine.Now()
	elapsed := now.Sub(r.intakeLast).Seconds()
	r.intakeLast = now
	r.intakeTokens += elapsed * r.opts.IntakeCap
	if r.intakeTokens > r.opts.IntakeCap {
		r.intakeTokens = r.opts.IntakeCap
	}
	if r.intakeTokens < 1 {
		return false
	}
	r.intakeTokens--
	return true
}

// handleRequest admits a client request. external marks requests arriving
// from outside the committee (client or SubmitLocal) as opposed to
// replica-to-replica dissemination.
// maxPending bounds the request pool: a replica sheds load it cannot
// possibly order in time instead of queueing unboundedly (Fabric's gRPC
// buffers behave the same way; clients retry).
const maxPending = 20000

func (r *Replica) handleRequest(tx chain.Tx, external bool) {
	if r.executedTxIDs[tx.ID] {
		// A retransmitted request for an executed transaction means the
		// client may have missed our reply: answer it again (only when we
		// executed it ourselves and therefore know the result).
		if external && r.opts.SendReplies && tx.Client != 0 {
			if ok, known := r.executedOK[tx.ID]; known {
				rep := Reply{TxID: tx.ID, OK: ok, Replica: r.self()}
				r.ep.Send(simnet.Message{To: simnet.NodeID(tx.Client), Class: simnet.ClassConsensus,
					Type: MsgReply, Payload: rep, Size: wire.PayloadSize(MsgReply, rep)})
			}
		}
		return
	}
	if _, known := r.pending[tx.ID]; known {
		return
	}
	if external && (len(r.pending) >= maxPending || !r.admitRequest()) {
		return
	}
	r.pending[tx.ID] = tx
	r.pendingOrder = append(r.pendingOrder, tx.ID)
	if _, in := r.batchedIn[tx.ID]; !in {
		r.unbatched++
	}
	if m := r.met; m != nil && external {
		m.hub.RecordTx(m.node, obs.StageSubmit, 0, tx.ID)
	}
	if external {
		// Dissemination policy: stock PBFT/Hyperledger broadcasts the
		// request to every replica; optimization 2 forwards it to the
		// leader only (§4.1).
		// Encode lazily: on the leader under forward-to-leader variants no
		// forward goes out, and this is the request-admission hot path.
		if r.opts.Variant.ForwardToLeader() {
			if !r.isLeader() {
				r.ep.Send(simnet.Message{To: r.leaderID(), Class: simnet.ClassRequest,
					Type: msgRequestFwd, Payload: tx, Size: wire.PayloadSize(msgRequestFwd, tx)})
			}
		} else {
			fwdSize := wire.PayloadSize(msgRequestFwd, tx)
			for _, id := range r.opts.Committee.Nodes {
				if id != r.ep.ID() {
					r.ep.Send(simnet.Message{To: id, Class: simnet.ClassRequest,
						Type: msgRequestFwd, Payload: tx, Size: fwdSize})
				}
			}
		}
	}
	if !r.vcTimer.Active() {
		if r.inViewChange {
			// Parked view change (see onViewChangeTimeout): new work means
			// the stall matters again — resume the escalation loop so this
			// replica votes for the next view instead of sitting mute.
			r.vcTimer.Reset(2*r.opts.Timing.ViewChangeTimeout, r.onViewChangeTimeout)
		} else {
			r.armProgressTimer()
		}
	}
	if r.isLeader() && !r.inViewChange {
		r.scheduleBatch()
	}
}

func (r *Replica) armProgressTimer() {
	r.vcTimer.Reset(r.opts.Timing.ViewChangeTimeout, r.onProgressTimeout)
}

// --- leader batching ---

func (r *Replica) scheduleBatch() {
	if r.unbatchedCount() >= r.opts.BatchSize {
		r.tryBatch()
		return
	}
	if r.opts.AdaptiveBatch {
		r.scheduleAdaptiveBatch()
		return
	}
	if !r.batchTimer.Active() {
		r.batchTimer.Reset(r.opts.Timing.BatchTimeout, r.tryBatchTimer)
	}
}

// scheduleAdaptiveBatch is the AdaptiveBatch batch-cut policy. With
// proposals in flight it keeps the legacy BatchTimeout cadence — under
// sustained load big batches amortize the per-sequence protocol cost,
// and cutting eagerly measurably fragments the pipeline. Only when the
// pipeline is idle (every assigned sequence executed) does waiting help
// nobody, so the cut happens after just a short BatchMinDelay coalescing
// window that lets a burst of near-simultaneous arrivals share a block.
// The fast timer is not pushed forward by later arrivals: a steady
// trickle must not postpone the cut indefinitely.
func (r *Replica) scheduleAdaptiveBatch() {
	if r.unbatchedCount() == 0 {
		return
	}
	if r.seqAssign > r.executedThrough { // pipeline busy: legacy cadence
		if !r.batchTimer.Active() {
			r.batchTimer.Reset(r.opts.Timing.BatchTimeout, r.tryBatchTimer)
			r.batchTimerFast = false
		}
		return
	}
	if r.batchTimer.Active() && r.batchTimerFast {
		return
	}
	floor := r.opts.BatchMinDelay
	if floor <= 0 {
		floor = DefaultBatchMinDelay
	}
	r.batchTimer.Reset(floor, r.tryBatchTimer)
	r.batchTimerFast = true
}

// maxAssign returns the exclusive upper bound on leader sequence
// assignment: the checkpoint window always, tightened by PipelineDepth's
// cap on proposals running ahead of local execution when set.
func (r *Replica) maxAssign() uint64 {
	lim := r.h + r.opts.Window
	if d := r.opts.PipelineDepth; d > 0 {
		if byExec := r.executedThrough + d; byExec < lim {
			lim = byExec
		}
	}
	return lim
}

func (r *Replica) unbatchedCount() int { return r.unbatched }

// markBatched assigns pending tx id to a sequence, maintaining unbatched.
func (r *Replica) markBatched(id uint64, seq uint64) {
	if _, in := r.batchedIn[id]; !in {
		if _, p := r.pending[id]; p {
			r.unbatched--
		}
	}
	r.batchedIn[id] = seq
}

// unmarkBatched removes tx id's batch assignment, maintaining unbatched.
func (r *Replica) unmarkBatched(id uint64) {
	if _, in := r.batchedIn[id]; in {
		delete(r.batchedIn, id)
		if _, p := r.pending[id]; p {
			r.unbatched++
		}
	}
}

// dropRequest removes tx id from the request pool entirely (executed or
// superseded), maintaining unbatched.
func (r *Replica) dropRequest(id uint64) {
	if _, p := r.pending[id]; p {
		if _, in := r.batchedIn[id]; !in {
			r.unbatched--
		}
		delete(r.pending, id)
	}
	delete(r.batchedIn, id)
}

func (r *Replica) tryBatch() {
	if !r.isLeader() || r.inViewChange {
		return
	}
	for r.unbatchedCount() > 0 && r.seqAssign < r.maxAssign() {
		batch := r.takeBatch()
		if len(batch) == 0 {
			return
		}
		r.seqAssign++
		r.propose(r.seqAssign, batch)
	}
	if r.unbatchedCount() > 0 && !r.batchTimer.Active() {
		if r.seqAssign < r.h+r.opts.Window {
			// Depth-capped, not window-full: local execution is the
			// bottleneck and finishExecute re-triggers batching the moment
			// it advances. Re-arm a plain retry as a safety net without
			// retransmitting (the committee is keeping up; only we are).
			r.batchTimer.Reset(r.opts.Timing.BatchTimeout, r.tryBatchTimer)
			r.batchTimerFast = false
			return
		}
		// Window full: retry after the batch timeout; checkpoint
		// progress will also retrigger batching. Retransmit the oldest
		// in-flight proposal so replicas that fell behind (and replicas
		// that missed it) can react — the partially-synchronous model
		// assumes exactly this kind of repeated send.
		r.batchTimer.Reset(r.opts.Timing.BatchTimeout, func() {
			r.retransmitOldest()
			r.tryBatchTimer()
		})
		r.batchTimerFast = false
	}
}

// retransmitVotes re-broadcasts this replica's pre-prepares and votes for
// every entry above the stable checkpoint — including entries this replica
// already executed, because until a checkpoint is *stable* some peers may
// still need them (PBFT garbage-collects protocol messages only at stable
// checkpoints for exactly this reason). A leader additionally re-proposes
// entries decided in earlier views under the current view, so replicas
// that joined after a view change can vote for them.
func (r *Replica) retransmitVotes() {
	if r.inViewChange || r.byz(BehaviorSilent) {
		return
	}
	// Re-broadcast our own checkpoint attestations that have not become
	// stable: checkpoints are emitted exactly once at execution, so under
	// message loss the quorum may never form — h stops advancing, the
	// leader's window fills, and the committee wedges with no view change
	// able to rescue it (new-view messages carry h but cannot mint the
	// missing checkpoint attestations).
	self := r.self()
	ckSeqs := make([]uint64, 0, len(r.checkpoints))
	for seq := range r.checkpoints {
		if seq > r.h && r.checkpoints[seq][self] != nil {
			ckSeqs = append(ckSeqs, seq)
		}
	}
	sort.Slice(ckSeqs, func(i, j int) bool { return ckSeqs[i] < ckSeqs[j] })
	for _, seq := range ckSeqs {
		r.broadcast(msgCheckpoint, r.checkpoints[seq][self])
	}
	for seq := r.h + 1; seq <= r.h+r.opts.Window; seq++ {
		e := r.entries[seq]
		if e == nil || !e.prePrepared || e.block == nil && r.isLeader() {
			continue
		}
		if r.isLeader() && e.block != nil {
			if e.view != r.view {
				// Re-propose under the current view. The digest is
				// unchanged, so replicas that executed this sequence
				// accept it (and conflicting digests are refused).
				if att, err := r.att.attest(logName(phasePrePrepare, r.view), e.seq, e.digest); err == nil {
					e.view = r.view
					e.prepares.reset()
					e.prepares.add(r.self())
					e.commits.reset()
					e.sentCommitVote = false
					r.broadcast(msgPrePrepare, &prePrepareMsg{View: r.view, Seq: e.seq, Block: e.block, Att: att})
				}
			} else if att, err := r.att.attest(logName(phasePrePrepare, e.view), e.seq, e.digest); err == nil {
				r.broadcast(msgPrePrepare, &prePrepareMsg{View: e.view, Seq: e.seq, Block: e.block, Att: att})
			}
		}
		if e.view != r.view {
			continue // followers only retransmit current-view votes
		}
		if r.opts.Variant.Aggregated() {
			// Under AHLR the leader's certificates are the carriers;
			// followers re-vote to the leader.
			if !r.isLeader() {
				r.sendAggVote(e, phasePrepare)
				if e.prepared {
					r.sendAggVote(e, phaseCommit)
				}
			}
			continue
		}
		if e.prepares.has(r.self()) {
			r.castVote(e, phasePrepare)
		}
		if e.sentCommitVote || e.executed || e.committed {
			e.sentCommitVote = true
			r.castVote(e, phaseCommit)
		}
	}
}

// retransmitOldest re-broadcasts the pre-prepare for the oldest
// non-executed sequence; duplicates are ignored by up-to-date replicas and
// serve as a state-sync trigger for lagging ones.
func (r *Replica) retransmitOldest() {
	if !r.isLeader() || r.inViewChange {
		return
	}
	e := r.entries[r.h+1]
	if e == nil || !e.prePrepared || e.block == nil || e.view != r.view {
		return
	}
	att, err := r.att.attest(logName(phasePrePrepare, e.view), e.seq, e.digest)
	if err != nil {
		return
	}
	msg := &prePrepareMsg{View: e.view, Seq: e.seq, Block: e.block, Att: att}
	r.broadcast(msgPrePrepare, msg)
}

func (r *Replica) takeBatch() []chain.Tx {
	batch := make([]chain.Tx, 0, r.opts.BatchSize)
	kept := r.pendingOrder[:0]
	for _, id := range r.pendingOrder {
		tx, ok := r.pending[id]
		if !ok {
			continue // executed and pruned
		}
		kept = append(kept, id)
		if _, in := r.batchedIn[id]; in {
			continue
		}
		if len(batch) < r.opts.BatchSize {
			batch = append(batch, tx)
			r.markBatched(id, r.seqAssign+1)
			if m := r.met; m != nil {
				m.hub.RecordTx(m.node, obs.StageBatch, r.seqAssign+1, id)
			}
		}
	}
	r.pendingOrder = kept
	return batch
}

func (r *Replica) buildBlock(seq uint64, txs []chain.Tx) *chain.Block {
	return &chain.Block{
		Header: chain.Header{
			Height:   seq - 1,
			PrevHash: blockcrypto.Digest{}, // linked at execution time
			TxRoot:   chain.TxRoot(txs),
			Proposer: r.deps.Signer.ID(),
			View:     r.view,
		},
		Txs: txs,
	}
}

func (r *Replica) propose(seq uint64, txs []chain.Tx) {
	block := r.buildBlock(seq, txs)
	digest := block.Digest()

	if r.byz(BehaviorEquivocate) {
		r.proposeEquivocating(seq, block)
		return
	}

	att, err := r.att.attest(logName(phasePrePrepare, r.view), seq, digest)
	if err != nil {
		return // trusted log refused (e.g. recovering)
	}
	e := r.getEntry(seq)
	e.view, e.digest, e.block, e.prePrepared = r.view, digest, block, true
	e.prepares.add(r.self())
	if m := r.met; m != nil {
		e.obsTS = m.hub.Now()
		m.hub.RecordSeq(m.node, obs.StagePrePrepare, seq, int64(len(txs)))
		r.obsCut(len(txs))
		r.obsOccupancy()
	}
	msg := &prePrepareMsg{View: r.view, Seq: seq, Block: block, Att: att}
	r.broadcast(msgPrePrepare, msg)
	r.maybePrepared(e)
}

// proposeEquivocating implements the Figure 8 attack: the Byzantine leader
// sends conflicting proposals for the same sequence number to different
// halves of the committee. Under AHL the trusted log refuses the second
// binding, so the attack degrades to withholding the proposal from half
// the replicas.
func (r *Replica) proposeEquivocating(seq uint64, block *chain.Block) {
	alt := r.buildBlock(seq, nil) // conflicting (empty) proposal
	attA, errA := r.att.attest(logName(phasePrePrepare, r.view), seq, block.Digest())
	attB, errB := r.att.attest(logName(phasePrePrepare, r.view), seq, alt.Digest())
	half := r.n() / 2
	for i, id := range r.opts.Committee.Nodes {
		if id == r.ep.ID() {
			continue
		}
		if i < half && errA == nil {
			r.sendTo(id, msgPrePrepare, &prePrepareMsg{View: r.view, Seq: seq, Block: block, Att: attA})
		} else if i >= half && errB == nil {
			r.sendTo(id, msgPrePrepare, &prePrepareMsg{View: r.view, Seq: seq, Block: alt, Att: attB})
		}
	}
}

// --- normal-case message handling ---

func logName(phase string, view uint64) string {
	// One trusted log per (phase, view): a slot then encodes the sequence
	// number, so one replica can never attest two different digests for
	// the same protocol position.
	return phase + "/" + uitoa(view)
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (r *Replica) getEntry(seq uint64) *entry {
	e := r.entries[seq]
	if e == nil {
		if n := len(r.entryPool); n > 0 {
			e = r.entryPool[n-1]
			r.entryPool = r.entryPool[:n-1]
			e.reset()
		} else {
			e = &entry{}
		}
		e.seq, e.view = seq, r.view
		r.entries[seq] = e
	}
	return e
}

// recycleEntry returns an entry removed from r.entries to the pool. Only
// call for entries that cannot be referenced by in-flight work (the one
// entry executing on the CPU is reachable through r.execEntry).
func (r *Replica) recycleEntry(e *entry) {
	if e == r.execEntry {
		return
	}
	r.entryPool = append(r.entryPool, e)
}

func (r *Replica) inWindow(seq uint64) bool {
	return seq > r.h && seq <= r.h+r.opts.Window
}

func (r *Replica) handlePrePrepare(m *prePrepareMsg) {
	if m.Seq > r.h+r.opts.Window {
		// The committee has moved beyond our window: we are behind and
		// must state-sync (see statesync.go).
		r.noteAhead()
	}
	if m.View > r.view {
		// Evidence a newer view was installed; ask its leader for the
		// new-view certificate.
		r.requestNewView(m.View)
	}
	if m.View != r.view || r.inViewChange || !r.inWindow(m.Seq) {
		return
	}
	leaderIdx := r.opts.Committee.Index(r.opts.Committee.Leader(m.View))
	var digest blockcrypto.Digest
	if m.Block != nil {
		digest = m.Block.Digest()
	}
	if !r.takeVerified() && !r.att.verify(leaderIdx, logName(phasePrePrepare, m.View), m.Seq, digest, m.Att) {
		return
	}
	e := r.getEntry(m.Seq)
	if e.prePrepared && e.view == m.View {
		if e.digest != digest {
			// Conflicting proposal for an accepted slot (HL equivocation):
			// refuse; progress stalls until the view change.
			return
		}
		return
	}
	if (e.executed || e.committed) && e.digest != digest {
		// A decided sequence can only be re-proposed with its decided
		// digest.
		return
	}
	if e.prePrepared && e.view != m.View {
		// Re-proposal under a newer view: reset per-view vote state.
		e.prepares.reset()
		e.commits.reset()
		e.sentCommitVote = false
		if !e.committed && !e.executed {
			e.prepared = false
		}
	}
	e.view, e.digest, e.block, e.prePrepared = m.View, digest, m.Block, true
	e.prepares.add(leaderIdx)
	if om := r.met; om != nil && e.obsTS == 0 {
		e.obsTS = om.hub.Now()
		n := 0
		if m.Block != nil {
			n = len(m.Block.Txs)
		}
		om.hub.RecordSeq(om.node, obs.StagePrePrepare, m.Seq, int64(n))
	}

	if r.opts.Variant.Aggregated() {
		r.sendAggVote(e, phasePrepare)
		if e.committed || e.executed {
			r.sendAggVote(e, phaseCommit)
		}
	} else {
		r.castVote(e, phasePrepare)
		if e.committed || e.executed {
			e.sentCommitVote = true
			r.castVote(e, phaseCommit)
		}
	}
	r.maybePrepared(e)
}

// castVote broadcasts a prepare/commit vote (non-AHLR path).
func (r *Replica) castVote(e *entry, phase string) {
	att, err := r.att.attest(logName(phase, e.view), e.seq, e.digest)
	if err != nil {
		return
	}
	m := &voteMsg{View: e.view, Seq: e.seq, Phase: phase, Digest: e.digest, Replica: r.self(), Att: att}
	typ := msgPrepare
	if phase == phaseCommit {
		typ = msgCommit
	}
	if r.byz(BehaviorEquivocate) && !r.opts.Variant.Attested() {
		// Byzantine follower under HL: vote for a conflicting digest to
		// half the peers.
		fake := blockcrypto.Hash([]byte("equivocation"), e.digest[:])
		fatt, _ := r.att.attest(logName(phase, e.view), e.seq, fake)
		half := r.n() / 2
		for i, id := range r.opts.Committee.Nodes {
			if id == r.ep.ID() {
				continue
			}
			if i < half {
				r.sendTo(id, typ, m)
			} else {
				fm := *m
				fm.Digest = fake
				fm.Att = fatt
				r.sendTo(id, typ, &fm)
			}
		}
		return
	}
	r.broadcast(typ, m)
	if phase == phasePrepare {
		e.prepares.add(r.self())
	} else {
		e.commits.add(r.self())
	}
}

func (r *Replica) handleVote(m *voteMsg) {
	if m.View != r.view || r.inViewChange || !r.inWindow(m.Seq) {
		return
	}
	slot := m.Seq
	if !r.takeVerified() && !r.att.verify(m.Replica, logName(m.Phase, m.View), slot, m.Digest, m.Att) {
		return
	}
	e := r.getEntry(m.Seq)
	if e.prePrepared && m.Digest != e.digest {
		return // vote for a conflicting proposal
	}
	switch m.Phase {
	case phasePrepare:
		e.prepares.add(m.Replica)
		r.maybePrepared(e)
	case phaseCommit:
		e.commits.add(m.Replica)
		r.maybeCommitted(e)
	}
}

func (r *Replica) maybePrepared(e *entry) {
	if e.prepared || !e.prePrepared || e.prepares.count() < r.quorum() {
		return
	}
	e.prepared = true
	if r.opts.Variant.Aggregated() {
		return // AHLR prepared state is driven by certificates
	}
	if !e.sentCommitVote {
		e.sentCommitVote = true
		r.castVote(e, phaseCommit)
	}
	r.maybeCommitted(e)
}

func (r *Replica) maybeCommitted(e *entry) {
	if e.committed || !e.prepared || e.commits.count() < r.quorum() {
		return
	}
	e.committed = true
	r.obsCommitted(e)
	r.tryExecute()
}

// --- AHLR certificate path ---

func (r *Replica) aggItem(e *entry, phase string) aggregator.Item {
	return aggregator.Item{View: e.view, Seq: e.seq, Phase: phase, Digest: e.digest}
}

// sendAggVote sends this replica's signed vote for (e, phase) to the
// leader.
func (r *Replica) sendAggVote(e *entry, phase string) {
	vd := aggregator.VoteDigest(r.aggItem(e, phase))
	r.ep.CPU().Charge(r.deps.Platform.Costs().Sign)
	vote := aggregator.Vote{Voter: r.deps.Signer.ID(), Sig: r.deps.Signer.Sign(vd)}
	m := &voteMsg{View: e.view, Seq: e.seq, Phase: phase, Digest: e.digest, Replica: r.self(), AggVote: vote}
	if r.isLeader() {
		r.handleAggVote(m)
		return
	}
	r.sendTo(r.leaderID(), msgVote, m)
}

// handleAggVote runs at the AHLR leader: accumulate votes, and once a
// quorum is present have the enclave mint the certificate.
func (r *Replica) handleAggVote(m *voteMsg) {
	if !r.opts.Variant.Aggregated() || m.View != r.view || r.inViewChange || !r.isLeader() || !r.inWindow(m.Seq) {
		return
	}
	// Replica comes straight off the wire here (unlike handleVote, where
	// att.verify bounds-checks it); an out-of-range index would overrun
	// the fixed-width voteSet.
	if m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	e := r.getEntry(m.Seq)
	if e.prePrepared && m.Digest != e.digest {
		return
	}
	switch m.Phase {
	case phasePrepare:
		if !e.prepVoters.add(m.Replica) {
			return
		}
		e.prepVotes = append(e.prepVotes, m.AggVote)
		if !e.prepQCSent && e.prePrepared && len(e.prepVotes) >= r.quorum() {
			cert, err := r.agg.Aggregate(r.aggItem(e, phasePrepare), e.prepVotes, r.quorum())
			if err != nil {
				return
			}
			e.prepQCSent = true
			e.prepared = true
			r.broadcast(msgQC, &qcMsg{View: e.view, Seq: e.seq, Phase: phasePrepare, Cert: cert, Block: e.block})
			// Leader votes commit immediately.
			r.sendAggVote(e, phaseCommit)
		}
	case phaseCommit:
		if !e.commitVoters.add(m.Replica) {
			return
		}
		e.commitVotes = append(e.commitVotes, m.AggVote)
		if !e.commitQCSent && e.prepared && len(e.commitVotes) >= r.quorum() {
			cert, err := r.agg.Aggregate(r.aggItem(e, phaseCommit), e.commitVotes, r.quorum())
			if err != nil {
				return
			}
			e.commitQCSent = true
			e.committed = true
			r.obsCommitted(e)
			r.broadcast(msgQC, &qcMsg{View: e.view, Seq: e.seq, Phase: phaseCommit, Cert: cert})
			r.tryExecute()
		}
	}
}

// handleQC runs at AHLR followers.
func (r *Replica) handleQC(m *qcMsg) {
	if !r.opts.Variant.Aggregated() || m.View != r.view || r.inViewChange || !r.inWindow(m.Seq) {
		return
	}
	it := aggregator.Item{View: m.View, Seq: m.Seq, Phase: m.Phase, Digest: m.Cert.Item.Digest}
	if m.Cert.Item != it || !m.Cert.Verify(r.deps.Scheme, r.quorum()) {
		return
	}
	e := r.getEntry(m.Seq)
	if e.prePrepared && e.digest != m.Cert.Item.Digest {
		return
	}
	if !e.prePrepared && m.Block != nil && m.Block.Digest() == m.Cert.Item.Digest {
		e.view, e.digest, e.block, e.prePrepared = m.View, m.Cert.Item.Digest, m.Block, true
	}
	switch m.Phase {
	case phasePrepare:
		if !e.prepared && e.prePrepared {
			e.prepared = true
			r.sendAggVote(e, phaseCommit)
		}
	case phaseCommit:
		if e.prepared && !e.committed {
			e.committed = true
			r.obsCommitted(e)
			r.tryExecute()
		}
	}
}

// --- execution ---

func (r *Replica) tryExecute() {
	if r.executing {
		return
	}
	next := r.executedThrough + 1
	e := r.entries[next]
	if e == nil || !e.committed || e.executed || e.block == nil {
		return
	}
	var walT0 int64
	if m := r.met; m != nil && r.durable != nil {
		walT0 = m.hub.Now()
	}
	if !r.appendDecided(e) {
		return // durability failure: do not execute what the WAL lost
	}
	if m := r.met; m != nil {
		now := m.hub.Now()
		if r.durable != nil {
			m.walAppend.Observe(now - walT0)
			m.hub.RecordSeq(m.node, obs.StageWALAppend, e.seq, now-walT0)
		}
		r.execStartNS = now
		m.hub.RecordSeq(m.node, obs.StageExecStart, e.seq, 0)
	}
	r.executing = true
	r.execEntry = e
	cost := time.Duration(len(e.block.Txs)) * r.opts.ExecPerTx
	r.ExecBusy += cost
	r.ep.CPU().ExecArg(cost, replicaFinishExec, r)
}

// replicaFinishExec completes block execution on the CPU. Static callback:
// the executing entry rides on the replica, so ordering a block allocates
// no per-block closure.
func replicaFinishExec(x any) {
	r := x.(*Replica)
	e := r.execEntry
	r.execEntry = nil
	r.executing = false
	r.finishExecute(e)
	r.tryExecute()
}

func (r *Replica) finishExecute(e *entry) {
	if e.executed || e.seq != r.executedThrough+1 {
		return
	}
	e.executed = true
	r.executedThrough = e.seq

	// Link and append to the local ledger.
	blk := &chain.Block{Header: e.block.Header, Txs: e.block.Txs}
	blk.Header.Height = r.ledger.Height()
	blk.Header.PrevHash = r.ledger.TipHash()
	if err := r.ledger.Append(blk); err != nil {
		panic("pbft: ledger append: " + err.Error())
	}

	// Conflict-aware parallel execution (live path): precompute results
	// for non-conflicting groups on worker goroutines, then fold them in
	// below in block order — write-sets apply in the same order the serial
	// loop would, so the state digest chain is identical. plan is nil when
	// the block executes serially (workers <= 1, undeclarable conflicts,
	// or a single conflict group).
	plan := r.planParallel(e.block.Txs)
	results := make([]chaincode.Result, 0, len(e.block.Txs))
	for _, tx := range e.block.Txs {
		if r.executedTxIDs[tx.ID] {
			continue
		}
		r.executedTxIDs[tx.ID] = true
		var res chaincode.Result
		if plan != nil {
			res = plan.results[tx.ID]
			if res.OK() {
				r.store.Apply(res.Write)
			}
		} else {
			res = r.deps.Registry.Execute(r.store, tx)
		}
		r.executedOK[tx.ID] = res.OK()
		for _, dtx := range res.Committed {
			r.store.RecordCommit(dtx)
		}
		results = append(results, res)
		r.dropRequest(tx.ID)
		r.executedCount++
		if r.opts.SendReplies && tx.Client != 0 {
			rep := Reply{TxID: tx.ID, OK: res.OK(), Replica: r.self()}
			r.ep.Send(simnet.Message{To: simnet.NodeID(tx.Client), Class: simnet.ClassConsensus,
				Type: MsgReply, Payload: rep, Size: wire.PayloadSize(MsgReply, rep)})
			if m := r.met; m != nil {
				m.hub.RecordTx(m.node, obs.StageReply, e.seq, tx.ID)
			}
		}
	}
	// Publish this block boundary into the store's MVCC retention window:
	// height-pinned query readers attach to sealed versions, never to the
	// mutable head. O(1) — later writes copy only the chunks they touch.
	r.store.Seal()
	if m := r.met; m != nil {
		if r.execStartNS != 0 {
			m.execLatency.Observe(m.hub.Now() - r.execStartNS)
			r.execStartNS = 0
		}
		m.hub.RecordSeq(m.node, obs.StageExecEnd, e.seq, int64(len(e.block.Txs)))
		m.executedBatches.Inc()
		m.executedTxs.Add(uint64(len(results)))
		if lag := int64(r.executedThrough) - int64(r.h); lag >= 0 {
			m.checkpointLag.Set(lag)
		}
		r.obsOccupancy()
	}
	if r.onExec != nil {
		r.onExec(consensus.BlockEvent{Block: blk, Results: results, Time: r.engine.Now()})
	}

	// Progress achieved: re-arm or clear the view-change timer.
	r.suspected = false
	if len(r.pending) > 0 {
		r.armProgressTimer()
	} else {
		r.vcTimer.Stop()
	}

	if e.seq%r.opts.CheckpointEvery == 0 {
		r.emitCheckpoint(e.seq)
	}
	if r.isLeader() {
		r.scheduleBatch()
	}
}

// --- checkpoints ---

func (r *Replica) emitCheckpoint(seq uint64) {
	d := r.store.Digest()
	att, err := r.att.attest("checkpoint", seq, d)
	if err != nil {
		return
	}
	m := &checkpointMsg{Seq: seq, State: d, Replica: r.self(), Att: att}
	r.recordCheckpoint(m)
	r.broadcast(msgCheckpoint, m)
}

func (r *Replica) handleCheckpoint(m *checkpointMsg) {
	if m.Seq <= r.h {
		return
	}
	if !r.takeVerified() && !r.att.verify(m.Replica, "checkpoint", m.Seq, m.State, m.Att) {
		return
	}
	r.recordCheckpoint(m)
}

func (r *Replica) recordCheckpoint(m *checkpointMsg) {
	ck := r.checkpoints[m.Seq]
	if ck == nil {
		ck = make(map[int]*checkpointMsg)
		r.checkpoints[m.Seq] = ck
	}
	ck[m.Replica] = m
	// A quorum can only newly form on the digest this vote carries, so it
	// suffices to count matches for m.State (no per-call counting map).
	matches := 0
	for _, msg := range ck {
		if msg.State == m.State {
			matches++
		}
	}
	if matches >= r.quorum() && m.Seq > r.h {
		r.advanceStable(m.Seq, m.State, ck)
	}
}

func (r *Replica) advanceStable(seq uint64, digest blockcrypto.Digest, ck map[int]*checkpointMsg) {
	r.h = seq
	if m := r.met; m != nil {
		if lag := int64(r.executedThrough) - int64(r.h); lag >= 0 {
			m.checkpointLag.Set(lag)
		}
	}
	// Keep a snapshot aligned with our own checkpoint for state transfer,
	// along with the quorum certificate that made it stable — but only if
	// we have actually executed through seq (otherwise our state does not
	// correspond to this checkpoint).
	if r.executedThrough >= seq && r.store.Digest() == digest {
		// The digest match proves current state ≡ this checkpoint, so the
		// frozen head IS the checkpoint view. Advancing the retention floor
		// prunes sealed versions below it; readers pinned earlier stay
		// valid, new pins below the floor get ErrHeightPruned.
		r.stableView = r.store.Head()
		r.store.SetFloor(r.stableView.Version())
		r.stableSnapSeq = seq
		r.stableCert = certFor(ck, digest)
		ids := make([]uint64, 0, len(r.executedTxIDs))
		for id := range r.executedTxIDs {
			ids = append(ids, id)
		}
		// Sorted: this list travels in state-transfer snapshots, so its
		// order must not depend on map iteration.
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		r.stableExecIDs = ids
		r.persistDurableSnapshot()
	}
	// Sorted holders: maybeRequestSync asks the first two, so map-order
	// iteration here would pick run-dependent donors and break the
	// simulator's determinism.
	var holders []int
	for idx, msg := range ck {
		if msg.State == digest {
			holders = append(holders, idx)
		}
	}
	sort.Ints(holders)
	// Sorted: recycling feeds the entry reuse pool, so map-order iteration
	// here would make pool order (and future entry identity) run-dependent.
	var drop []uint64
	for s, e := range r.entries {
		if s <= seq && (e.executed || !e.committed) {
			drop = append(drop, s)
		}
	}
	sort.Slice(drop, func(i, j int) bool { return drop[i] < drop[j] })
	for _, s := range drop {
		r.recycleEntry(r.entries[s])
		delete(r.entries, s)
	}
	for s := range r.checkpoints {
		if s < seq {
			delete(r.checkpoints, s)
		}
	}
	r.att.onStableCheckpoint(seq)
	r.maybeFinishEnclaveRecovery()

	// A checkpoint quorum is proof the current view is live: a replica
	// that unilaterally suspected the leader (e.g. because it fell behind
	// and could not execute) abandons its view change and defers to state
	// sync instead of stalling in a one-member view change forever.
	if r.inViewChange {
		r.inViewChange = false
		r.suspected = false
	}
	if len(r.pending) > 0 {
		r.armProgressTimer()
	}

	r.maybeRequestSync(seq, holders)
	if r.isLeader() {
		if r.seqAssign < r.h {
			r.seqAssign = r.h
		}
		r.scheduleBatch()
	}
}

// DebugSyncState exposes internals for diagnosing state-sync issues in
// tests; not part of the stable API.
func (r *Replica) DebugSyncState() (h, executedThrough, stableSnapSeq uint64, certLen, pendingLen int) {
	return r.h, r.executedThrough, r.stableSnapSeq, len(r.stableCert), len(r.pending)
}

// DebugEntry renders the consensus entry at seq for fault diagnosis in
// tests; not part of the stable API.
func (r *Replica) DebugEntry(seq uint64) string {
	e := r.entries[seq]
	if e == nil {
		return "<none>"
	}
	blk := 0
	if e.block != nil {
		blk = len(e.block.Txs)
	}
	return fmt.Sprintf("view=%d pp=%v prep=%v(%d) comm=%v(%d) exec=%v txs=%d",
		e.view, e.prePrepared, e.prepared, e.prepares.count(),
		e.committed, e.commits.count(), e.executed, blk)
}
