package pbft

import (
	"bytes"
	"sort"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
)

// Block replay: the second catch-up mechanism, complementing snapshot
// state-sync. A replica that is only a few sequences behind (its peers
// executed blocks it missed, but no new stable checkpoint exists yet) asks
// its peers to replay those blocks. Each peer answers with the blocks and
// an attestation "I executed sequence n with digest D" from its trusted
// log; once f+1 distinct peers attest the same digest for the next
// sequence, at least one of them is honest, so that digest is the decided
// one and the matching block is safe to execute.
//
// This closes the recovery gap that pure vote retransmission leaves open:
// after view changes, votes are only valid in the current view, and the
// current leader may itself be a replica that missed the blocks.

const (
	msgReplayReq  = "pbft/replay-req"
	msgReplayResp = "pbft/replay-resp"
)

type replayReqMsg struct {
	FromSeq uint64
	Replica int
}

type replayItem struct {
	Seq    uint64
	Digest blockcrypto.Digest
	Block  *chain.Block
	Att    attestation
}

type replayRespMsg struct {
	Items   []replayItem
	Replica int
}

const executedLog = "executed"

// requestReplay asks all peers to replay blocks from executedThrough+1.
// Called from noteAhead (already rate-limited by the caller).
func (r *Replica) requestReplay() {
	req := &replayReqMsg{FromSeq: r.executedThrough + 1, Replica: r.self()}
	r.broadcast(msgReplayReq, req)
}

func (r *Replica) handleReplayReq(m *replayReqMsg) {
	if m.Replica < 0 || m.Replica >= r.n() || m.Replica == r.self() {
		return
	}
	resp := &replayRespMsg{Replica: r.self()}
	for seq := m.FromSeq; seq <= m.FromSeq+r.opts.Window; seq++ {
		e := r.entries[seq]
		if e == nil || !e.executed || e.block == nil {
			continue
		}
		att, err := r.att.attest(executedLog, seq, e.digest)
		if err != nil {
			continue
		}
		resp.Items = append(resp.Items, replayItem{Seq: seq, Digest: e.digest, Block: e.block, Att: att})
	}
	if len(resp.Items) == 0 {
		return
	}
	r.sendTo(r.opts.Committee.Nodes[m.Replica], msgReplayResp, resp)
}

func (r *Replica) handleReplayResp(m *replayRespMsg) {
	if m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	for _, it := range m.Items {
		if it.Seq <= r.executedThrough || it.Block == nil {
			continue
		}
		if it.Block.Digest() != it.Digest {
			continue
		}
		if !r.att.verify(m.Replica, executedLog, it.Seq, it.Digest, it.Att) {
			continue
		}
		votes := r.replayVotes[it.Seq]
		if votes == nil {
			votes = make(map[blockcrypto.Digest]map[int]bool)
			r.replayVotes[it.Seq] = votes
		}
		byDigest := votes[it.Digest]
		if byDigest == nil {
			byDigest = make(map[int]bool)
			votes[it.Digest] = byDigest
		}
		byDigest[m.Replica] = true
		if r.replayBlocks == nil {
			r.replayBlocks = make(map[blockcrypto.Digest]*chain.Block)
		}
		r.replayBlocks[it.Digest] = it.Block
	}
	r.tryReplayExecute()
}

// tryReplayExecute marks every replay-certified sequence committed so the
// normal in-order execution path picks them up.
func (r *Replica) tryReplayExecute() {
	// Sequence order, and digest order within a sequence: with Byzantine
	// double-votes two digests can reach f+1 simultaneously, and the
	// choice must not depend on map iteration.
	seqs := make([]uint64, 0, len(r.replayVotes))
	for seq := range r.replayVotes {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		votes := r.replayVotes[seq]
		if seq <= r.executedThrough {
			delete(r.replayVotes, seq)
			continue
		}
		if e := r.entries[seq]; e != nil && (e.committed || e.executed) {
			continue
		}
		digests := make([]blockcrypto.Digest, 0, len(votes))
		for d := range votes {
			digests = append(digests, d)
		}
		sort.Slice(digests, func(i, j int) bool {
			return bytes.Compare(digests[i][:], digests[j][:]) < 0
		})
		for _, d := range digests {
			voters := votes[d]
			if len(voters) < r.opts.Committee.F+1 {
				continue
			}
			block := r.replayBlocks[d]
			if block == nil {
				continue
			}
			// An execution certificate is evidence of the committee's
			// decision; it overrides any locally buffered proposal.
			e := r.getEntry(seq)
			e.digest = d
			e.block = block
			e.prePrepared = true
			e.prepared = true
			e.committed = true
			delete(r.replayVotes, seq)
			break
		}
	}
	r.tryExecute()
}
