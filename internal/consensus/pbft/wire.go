package pbft

import (
	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/tee/aaom"
	"repro/internal/tee/aggregator"
	"repro/internal/wire"
)

// Wire codecs for every PBFT/AHL message type, registered with the
// internal/wire registry so the same replica code runs over the simulated
// network and over the TCP transport. The encodings double as the
// simulator's transmission-size model (see wire.PayloadSize).

func putAtt(e *wire.Encoder, a attestation) {
	wire.PutSignature(e, a.Sig)
	wire.PutAAOM(e, a.Log)
}

func getAtt(d *wire.Decoder) attestation {
	return attestation{Sig: wire.Signature(d), Log: wire.AAOM(d)}
}

func putProofs(e *wire.Encoder, ps []preparedProof) {
	e.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		e.Uvarint(p.Seq)
		e.Digest(p.Digest)
		wire.PutBlock(e, p.Block)
	}
}

func getProofs(d *wire.Decoder) []preparedProof {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]preparedProof, 0, wire.CapHint(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, preparedProof{Seq: d.Uvarint(), Digest: d.Digest(), Block: wire.Block(d)})
	}
	return out
}

func putCheckpoint(e *wire.Encoder, m *checkpointMsg) {
	e.Uvarint(m.Seq)
	e.Digest(m.State)
	e.Int(m.Replica)
	putAtt(e, m.Att)
}

func getCheckpoint(d *wire.Decoder) *checkpointMsg {
	return &checkpointMsg{Seq: d.Uvarint(), State: d.Digest(), Replica: d.Int(), Att: getAtt(d)}
}

func init() {
	txCodec := wire.Codec{
		Encode: func(e *wire.Encoder, p any) { wire.PutTx(e, p.(chain.Tx)) },
		Decode: func(d *wire.Decoder) any { return wire.Tx(d) },
	}
	wire.Register(MsgRequest, txCodec)
	wire.Register(msgRequestFwd, txCodec)

	wire.Register(MsgReply, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			r := p.(Reply)
			e.Uvarint(r.TxID)
			e.Bool(r.OK)
			e.Int(r.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			return Reply{TxID: d.Uvarint(), OK: d.Bool(), Replica: d.Int()}
		},
	})

	wire.Register(msgPrePrepare, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*prePrepareMsg)
			e.Uvarint(m.View)
			e.Uvarint(m.Seq)
			wire.PutBlock(e, m.Block)
			putAtt(e, m.Att)
		},
		Decode: func(d *wire.Decoder) any {
			return &prePrepareMsg{View: d.Uvarint(), Seq: d.Uvarint(), Block: wire.Block(d), Att: getAtt(d)}
		},
	})

	voteCodec := wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*voteMsg)
			e.Uvarint(m.View)
			e.Uvarint(m.Seq)
			e.String(m.Phase)
			e.Digest(m.Digest)
			e.Int(m.Replica)
			putAtt(e, m.Att)
			wire.PutAggVote(e, m.AggVote)
		},
		Decode: func(d *wire.Decoder) any {
			return &voteMsg{
				View: d.Uvarint(), Seq: d.Uvarint(), Phase: d.String(),
				Digest: d.Digest(), Replica: d.Int(),
				Att: getAtt(d), AggVote: wire.AggVote(d),
			}
		},
	}
	wire.Register(msgPrepare, voteCodec)
	wire.Register(msgCommit, voteCodec)
	wire.Register(msgVote, voteCodec)

	wire.Register(msgQC, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*qcMsg)
			e.Uvarint(m.View)
			e.Uvarint(m.Seq)
			e.String(m.Phase)
			wire.PutAggCert(e, m.Cert)
			wire.PutBlock(e, m.Block)
		},
		Decode: func(d *wire.Decoder) any {
			return &qcMsg{
				View: d.Uvarint(), Seq: d.Uvarint(), Phase: d.String(),
				Cert: wire.AggCert(d), Block: wire.Block(d),
			}
		},
	})

	wire.Register(msgCheckpoint, wire.Codec{
		Encode: func(e *wire.Encoder, p any) { putCheckpoint(e, p.(*checkpointMsg)) },
		Decode: func(d *wire.Decoder) any { return getCheckpoint(d) },
	})

	wire.Register(msgViewChange, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*viewChangeMsg)
			e.Uvarint(m.NewView)
			e.Uvarint(m.StableSeq)
			putProofs(e, m.Prepared)
			e.Int(m.Replica)
			putAtt(e, m.Att)
		},
		Decode: func(d *wire.Decoder) any {
			return &viewChangeMsg{
				NewView: d.Uvarint(), StableSeq: d.Uvarint(),
				Prepared: getProofs(d), Replica: d.Int(), Att: getAtt(d),
			}
		},
	})

	wire.Register(msgNewView, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*newViewMsg)
			e.Uvarint(m.View)
			e.Uvarint(m.StableSeq)
			putProofs(e, m.Reissue)
			e.Int(m.Replica)
			putAtt(e, m.Att)
		},
		Decode: func(d *wire.Decoder) any {
			return &newViewMsg{
				View: d.Uvarint(), StableSeq: d.Uvarint(),
				Reissue: getProofs(d), Replica: d.Int(), Att: getAtt(d),
			}
		},
	})

	wire.Register(msgNVReq, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*nvReqMsg)
			e.Uvarint(m.View)
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			return &nvReqMsg{View: d.Uvarint(), Replica: d.Int()}
		},
	})

	wire.Register(msgStateReq, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*stateReqMsg)
			e.Uvarint(m.Seq)
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			return &stateReqMsg{Seq: d.Uvarint(), Replica: d.Int()}
		},
	})

	wire.Register(msgStateResp, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*stateRespMsg)
			e.Uvarint(m.Seq)
			wire.PutSnapshot(e, m.Snap)
			e.Uvarint(uint64(len(m.Cert)))
			for _, ck := range m.Cert {
				putCheckpoint(e, ck)
			}
			wire.PutUint64s(e, m.ExecIDs)
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			m := &stateRespMsg{Seq: d.Uvarint(), Snap: wire.Snapshot(d)}
			n := d.Count(1)
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Cert = append(m.Cert, getCheckpoint(d))
			}
			m.ExecIDs = wire.Uint64s(d)
			m.Replica = d.Int()
			return m
		},
	})

	wire.Register(msgReplayReq, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*replayReqMsg)
			e.Uvarint(m.FromSeq)
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			return &replayReqMsg{FromSeq: d.Uvarint(), Replica: d.Int()}
		},
	})

	wire.Register(msgReplayResp, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*replayRespMsg)
			e.Uvarint(uint64(len(m.Items)))
			for _, it := range m.Items {
				e.Uvarint(it.Seq)
				e.Digest(it.Digest)
				wire.PutBlock(e, it.Block)
				putAtt(e, it.Att)
			}
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			m := &replayRespMsg{}
			n := d.Count(1)
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Items = append(m.Items, replayItem{
					Seq: d.Uvarint(), Digest: d.Digest(), Block: wire.Block(d), Att: getAtt(d),
				})
			}
			m.Replica = d.Int()
			return m
		},
	})

	wire.Register(msgCkpQuery, wire.Codec{
		Encode: func(e *wire.Encoder, p any) { e.Int(p.(*ckpQueryMsg).Replica) },
		Decode: func(d *wire.Decoder) any { return &ckpQueryMsg{Replica: d.Int()} },
	})

	wire.Register(msgCkpReply, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*ckpReplyMsg)
			e.Uvarint(m.Ckp)
			e.Int(m.Replica)
		},
		Decode: func(d *wire.Decoder) any {
			return &ckpReplyMsg{Ckp: d.Uvarint(), Replica: d.Int()}
		},
	})
}

// WireSamples returns one representatively-populated message per pbft wire
// type. The wire package's round-trip and fuzz tests build their seed
// corpus from it; it is not part of the protocol API.
func WireSamples() []simnet.Message {
	att := attestation{
		Sig: blockcrypto.Signature{Signer: 3, Bytes: []byte{1, 2, 3, 4}},
		Log: aaom.Attestation{
			Log: "prepare/2", Slot: 7, Digest: blockcrypto.Hash([]byte("d")),
			Report: tee.Report{
				Measurement: blockcrypto.Hash([]byte("m")),
				ReportData:  blockcrypto.Hash([]byte("rd")),
				Sig:         blockcrypto.Signature{Signer: 3, Bytes: []byte{9, 8}},
			},
		},
	}
	tx := chain.Tx{ID: 42, Chaincode: "smallbank", Fn: "send", Args: []string{"a", "b", "10"}, Client: 12}
	blk := &chain.Block{
		Header: chain.Header{Height: 5, PrevHash: blockcrypto.Hash([]byte("p")),
			TxRoot: chain.TxRoot([]chain.Tx{tx}), Proposer: 1, View: 2},
		Txs: []chain.Tx{tx},
	}
	ck := &checkpointMsg{Seq: 16, State: blockcrypto.Hash([]byte("s")), Replica: 1, Att: att}
	msg := func(typ string, class simnet.Class, payload any) simnet.Message {
		return simnet.Message{From: 1, To: 2, Class: class, Type: typ, Payload: payload}
	}
	return []simnet.Message{
		msg(MsgRequest, simnet.ClassRequest, tx),
		msg(msgRequestFwd, simnet.ClassRequest, tx),
		msg(MsgReply, simnet.ClassConsensus, Reply{TxID: 42, OK: true, Replica: 2}),
		msg(msgPrePrepare, simnet.ClassConsensus, &prePrepareMsg{View: 2, Seq: 6, Block: blk, Att: att}),
		msg(msgPrepare, simnet.ClassConsensus, &voteMsg{View: 2, Seq: 6, Phase: phasePrepare,
			Digest: blk.Digest(), Replica: 1, Att: att}),
		msg(msgCommit, simnet.ClassConsensus, &voteMsg{View: 2, Seq: 6, Phase: phaseCommit,
			Digest: blk.Digest(), Replica: 1, Att: att}),
		msg(msgVote, simnet.ClassConsensus, &voteMsg{View: 2, Seq: 6, Phase: phasePrepare,
			Digest: blk.Digest(), Replica: 1,
			AggVote: aggregator.Vote{Voter: 1, Sig: blockcrypto.Signature{Signer: 1, Bytes: []byte{5}}}}),
		msg(msgQC, simnet.ClassConsensus, &qcMsg{View: 2, Seq: 6, Phase: phasePrepare,
			Cert: aggregator.Cert{
				Item:   aggregator.Item{View: 2, Seq: 6, Phase: phasePrepare, Digest: blk.Digest()},
				Voters: []blockcrypto.KeyID{0, 1, 2},
				Report: att.Log.Report,
			}, Block: blk}),
		msg(msgCheckpoint, simnet.ClassConsensus, ck),
		msg(msgViewChange, simnet.ClassConsensus, &viewChangeMsg{NewView: 3, StableSeq: 16,
			Prepared: []preparedProof{{Seq: 17, Digest: blk.Digest(), Block: blk}}, Replica: 1, Att: att}),
		msg(msgNewView, simnet.ClassConsensus, &newViewMsg{View: 3, StableSeq: 16,
			Reissue: []preparedProof{{Seq: 17, Digest: blk.Digest(), Block: blk}}, Replica: 2, Att: att}),
		msg(msgNVReq, simnet.ClassConsensus, &nvReqMsg{View: 3, Replica: 1}),
		msg(msgStateReq, simnet.ClassConsensus, &stateReqMsg{Seq: 16, Replica: 1}),
		msg(msgStateResp, simnet.ClassConsensus, &stateRespMsg{Seq: 16,
			Snap: chain.Snapshot{KV: map[string][]byte{"c_acc1": []byte("100"), "c_acc2": []byte("50")},
				Version: 9, Digest: blockcrypto.Hash([]byte("st"))},
			Cert: []*checkpointMsg{ck}, ExecIDs: []uint64{41, 42}, Replica: 0}),
		msg(msgReplayReq, simnet.ClassConsensus, &replayReqMsg{FromSeq: 17, Replica: 1}),
		msg(msgReplayResp, simnet.ClassConsensus, &replayRespMsg{
			Items: []replayItem{{Seq: 17, Digest: blk.Digest(), Block: blk, Att: att}}, Replica: 2}),
		msg(msgCkpQuery, simnet.ClassConsensus, &ckpQueryMsg{Replica: 1}),
		msg(msgCkpReply, simnet.ClassConsensus, &ckpReplyMsg{Ckp: 16, Replica: 2}),
	}
}
