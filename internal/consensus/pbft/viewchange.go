package pbft

import (
	"sort"

	"repro/internal/blockcrypto"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// View changes follow PBFT's structure, simplified where the simulation
// permits: a view-change vote carries the sender's stable checkpoint and
// its prepared entries (with blocks, so the new leader can re-propose);
// the new leader installs the view with a new-view message re-issuing
// every prepared sequence above the maximum stable checkpoint. Under the
// attested variants a replica can cast at most one view-change vote per
// target view (trusted-log slot = view), so the certificate set a new
// leader assembles is equivocation-free.

func vcDigest(m *viewChangeMsg) blockcrypto.Digest {
	ds := []blockcrypto.Digest{tee64(m.NewView), tee64(m.StableSeq)}
	for _, p := range m.Prepared {
		ds = append(ds, tee64(p.Seq), p.Digest)
	}
	return blockcrypto.HashOfDigests(ds...)
}

func nvDigest(m *newViewMsg) blockcrypto.Digest {
	ds := []blockcrypto.Digest{tee64(m.View), tee64(m.StableSeq)}
	for _, p := range m.Reissue {
		ds = append(ds, tee64(p.Seq), p.Digest)
	}
	return blockcrypto.HashOfDigests(ds...)
}

func tee64(v uint64) blockcrypto.Digest {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
	return blockcrypto.Hash(b[:])
}

// requestNewView asks the leader of an observed newer view for its
// new-view certificate; used by replicas that were away during the view
// change (rate-limited alongside state-sync probes).
func (r *Replica) requestNewView(view uint64) {
	if view <= r.view {
		return
	}
	leader := r.opts.Committee.Leader(view)
	if leader == r.ep.ID() {
		return
	}
	r.sendTo(leader, msgNVReq, &nvReqMsg{View: view, Replica: r.self()})
}

type nvReqMsg struct {
	View    uint64
	Replica int
}

func (r *Replica) handleNVReq(m *nvReqMsg) {
	if r.lastNewView == nil || r.lastNewView.View < m.View {
		return
	}
	if m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	r.sendTo(r.opts.Committee.Nodes[m.Replica], msgNewView, r.lastNewView)
}

// onProgressTimeout fires when a replica with pending work has seen no
// execution progress for the view-change timeout.
//
// Under optimization 2 only the replica that received a request (and the
// possibly-faulty leader) knows about it, so before voting to change the
// view the replica falls back to PBFT's request dissemination: broadcast
// the pending requests so every replica arms its own progress timer. Only
// a second timeout escalates to a view change.
func (r *Replica) onProgressTimeout() {
	if len(r.pending) == 0 || r.ep.Down() {
		return
	}
	// We may be stalled simply because we fell behind; probe for a
	// snapshot before suspecting the leader, and retransmit our own
	// protocol messages so peers that fell behind can rejoin the quorum
	// (PBFT's repeated-send under partial synchrony).
	r.noteAhead()
	r.retransmitVotes()
	if r.opts.Variant.ForwardToLeader() && !r.suspected {
		r.suspected = true
		// Arrival order, not map order: these sends schedule engine
		// events, and determinism requires a run-independent sequence.
		for _, txid := range r.pendingOrder {
			tx, ok := r.pending[txid]
			if !ok {
				continue
			}
			fwdSize := wire.PayloadSize(msgRequestFwd, tx)
			for _, id := range r.opts.Committee.Nodes {
				if id != r.ep.ID() {
					r.ep.Send(simnet.Message{To: id, Class: simnet.ClassRequest,
						Type: msgRequestFwd, Payload: tx, Size: fwdSize})
				}
			}
		}
		r.armProgressTimer()
		return
	}
	r.startViewChange(r.view + 1)
}

// RequestViewChange lets the reconfiguration layer trigger a proactive
// view change (graceful leader handoff when the current leader is about to
// transition out of the committee, §5.3). It is a no-op if the replica has
// already voted for target or beyond.
func (r *Replica) RequestViewChange(target uint64) {
	if target > r.view && target > r.vcView {
		r.startViewChange(target)
	}
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.vcView || newView <= r.view {
		return
	}
	if r.byz(BehaviorSilent) {
		return
	}
	r.vcView = newView
	r.inViewChange = true
	r.vcCount++
	if r.met != nil {
		r.met.viewChanges.Inc()
	}
	r.batchTimer.Stop()

	m := &viewChangeMsg{NewView: newView, StableSeq: r.h, Replica: r.self()}
	seqs := make([]uint64, 0, len(r.entries))
	for s := range r.entries {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		e := r.entries[s]
		// Executed entries above the stable checkpoint are included too,
		// exactly as PBFT keeps prepared certificates until a checkpoint
		// stabilizes: a sequence decided on some replicas but reported by
		// no view-change voter would otherwise vanish from the new view,
		// leaving a permanent hole below which nothing executes — while a
		// gap the whole quorum agrees is undecided is null-filled by the
		// new leader (see installNewView).
		if e.prepared && e.block != nil && s > r.h {
			m.Prepared = append(m.Prepared, preparedProof{Seq: s, Digest: e.digest, Block: e.block})
		}
	}
	att, err := r.att.attest("view-change", newView, vcDigest(m))
	if err != nil {
		return
	}
	m.Att = att
	r.recordViewChange(m)
	r.broadcast(msgViewChange, m)

	// Escalate if this view change does not complete in time.
	r.vcTimer.Reset(2*r.opts.Timing.ViewChangeTimeout, r.onViewChangeTimeout)
}

// onViewChangeTimeout fires when a view change this replica voted for did
// not complete within its escalation window.
func (r *Replica) onViewChangeTimeout() {
	if !r.inViewChange || r.ep.Down() {
		return
	}
	if len(r.pending) == 0 {
		// The work that motivated the view change drained while the vote
		// was in flight (committed entries executed, or a checkpoint
		// pruned them). Park the view change instead of escalating
		// forever: the timer stays unarmed, so a lone suspecting replica
		// cannot broadcast view-change votes endlessly with nothing left
		// to order. inViewChange deliberately stays set — a replica that
		// voted for view v+1 must not resume voting in view v (its
		// view-change vote froze a prepared-set snapshot that peers may
		// later build a new-view certificate from; rejoining the old view
		// would let it commit entries that snapshot cannot report,
		// breaking the quorum-intersection argument behind the new
		// leader's null-fill). Wake-ups: a checkpoint quorum
		// (advanceStable), a new-view install, f+1 votes for a higher
		// view, or new pending work re-arming this timer (handleRequest).
		return
	}
	r.startViewChange(r.vcView + 1)
}

func (r *Replica) handleViewChange(m *viewChangeMsg) {
	if m.NewView <= r.view {
		return
	}
	if !r.att.verify(m.Replica, "view-change", m.NewView, vcDigest(m), m.Att) {
		return
	}
	r.recordViewChange(m)
}

func (r *Replica) recordViewChange(m *viewChangeMsg) {
	votes := r.vcVotes[m.NewView]
	if votes == nil {
		votes = make(map[int]*viewChangeMsg)
		r.vcVotes[m.NewView] = votes
	}
	if _, dup := votes[m.Replica]; dup {
		return
	}
	votes[m.Replica] = m

	// Join an in-progress view change once f+1 distinct replicas vote for
	// a higher view (PBFT's liveness rule): we cannot be left behind.
	if !r.inViewChange || m.NewView > r.vcView {
		if len(votes) >= r.opts.Committee.F+1 && m.NewView > r.vcView {
			r.startViewChange(m.NewView)
		}
	}

	// The designated leader of the new view assembles the certificate.
	if r.opts.Committee.Leader(m.NewView) == r.ep.ID() && len(votes) >= r.quorum() {
		r.installNewView(m.NewView, votes)
	}
}

// installNewView runs at the new leader once it holds a quorum of
// view-change votes.
func (r *Replica) installNewView(view uint64, votes map[int]*viewChangeMsg) {
	if r.view >= view {
		return
	}
	var stable uint64
	reissue := make(map[uint64]preparedProof)
	// Replica-index order: under HL the first proof seen for a sequence
	// wins, so the iteration order must be run-independent.
	voters := make([]int, 0, len(votes))
	for idx := range votes {
		voters = append(voters, idx)
	}
	sort.Ints(voters)
	for _, idx := range voters {
		vc := votes[idx]
		if vc.StableSeq > stable {
			stable = vc.StableSeq
		}
		for _, p := range vc.Prepared {
			// Under attested variants conflicting proofs for a sequence
			// cannot exist. Under HL we keep the first seen; see the
			// package comment for the simplification note.
			if _, ok := reissue[p.Seq]; !ok {
				reissue[p.Seq] = p
			}
		}
	}
	// Fill sequence holes with null requests (PBFT's null-request rule):
	// a sequence assigned in a dead view that no view-change voter
	// prepared can never be re-proposed — assignment resumes past the
	// highest reissue — yet execution is strictly sequential, so an
	// unfilled hole would wedge execution below it forever. Because the
	// votes carry every prepared entry above the stable checkpoint
	// (executed included) and any commit quorum intersects the
	// view-change quorum, a hole here is provably undecided everywhere;
	// the null block is safe to order.
	maxSeq := stable
	for s := range reissue {
		if s > maxSeq {
			maxSeq = s
		}
	}
	for s := stable + 1; s < maxSeq; s++ {
		if _, ok := reissue[s]; !ok {
			blk := r.buildBlock(s, nil)
			reissue[s] = preparedProof{Seq: s, Digest: blk.Digest(), Block: blk}
		}
	}
	nv := &newViewMsg{View: view, StableSeq: stable, Replica: r.self()}
	seqs := make([]uint64, 0, len(reissue))
	for s := range reissue {
		if s > stable {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		nv.Reissue = append(nv.Reissue, reissue[s])
	}
	att, err := r.att.attest("new-view", view, nvDigest(nv))
	if err != nil {
		return
	}
	nv.Att = att
	r.broadcast(msgNewView, nv)
	r.adoptNewView(nv)
}

func (r *Replica) handleNewView(m *newViewMsg) {
	if m.View <= r.view {
		return
	}
	leaderIdx := r.opts.Committee.Index(r.opts.Committee.Leader(m.View))
	if m.Replica != leaderIdx {
		return
	}
	if !r.att.verify(m.Replica, "new-view", m.View, nvDigest(m), m.Att) {
		return
	}
	r.adoptNewView(m)
}

// adoptNewView installs view m.View on this replica.
func (r *Replica) adoptNewView(m *newViewMsg) {
	r.view = m.View
	r.inViewChange = false
	r.suspected = false
	r.lastNewView = m
	if r.vcView < m.View {
		r.vcView = m.View
	}
	if m.StableSeq > r.h {
		r.h = m.StableSeq
	}

	// Reset per-view consensus state above the stable checkpoint:
	// un-executed entries are either re-issued now or re-proposed later
	// from the pending pool.
	reissued := make(map[uint64]bool, len(m.Reissue))
	for _, p := range m.Reissue {
		reissued[p.Seq] = true
	}
	// Sorted: unmarkBatched mutates the pending pool, so the drop order
	// must not depend on map iteration.
	var drop []uint64
	for s, e := range r.entries {
		if !e.executed {
			drop = append(drop, s)
		}
	}
	sort.Slice(drop, func(i, j int) bool { return drop[i] < drop[j] })
	for _, s := range drop {
		e := r.entries[s]
		delete(r.entries, s)
		// Make the dropped entry's transactions eligible for re-batching.
		if e.block != nil && !reissued[s] {
			for _, tx := range e.block.Txs {
				r.unmarkBatched(tx.ID)
			}
		}
	}
	for v := range r.vcVotes {
		if v <= m.View {
			delete(r.vcVotes, v)
		}
	}
	// Resume sequence assignment past everything already decided locally.
	// The stable checkpoint alone is not enough: h only advances every
	// CheckpointEvery sequences, so a new leader that reset to h could
	// re-propose an already-executed sequence — refused by every replica
	// (decided seq, conflicting digest), wedging the committee in an
	// endless view-change loop.
	r.seqAssign = r.h
	if r.executedThrough > r.seqAssign {
		r.seqAssign = r.executedThrough
	}
	for _, p := range m.Reissue {
		if p.Seq > r.seqAssign {
			r.seqAssign = p.Seq
		}
	}

	// Process re-issued proposals as fresh pre-prepares in the new view.
	leaderIdx := r.opts.Committee.Index(r.opts.Committee.Leader(m.View))
	follower := r.ep.ID() != r.opts.Committee.Leader(m.View)
	for _, p := range m.Reissue {
		if p.Seq <= r.h {
			continue
		}
		e := r.getEntry(p.Seq)
		if e.executed {
			// Already decided and applied here (executed entries survive
			// the reset above). Re-vote under the new view so peers that
			// have not yet committed this sequence can form a quorum; the
			// local decision itself is untouchable.
			if e.digest != p.Digest {
				continue // conflicting reissue for a decided seq: keep ours
			}
			e.view = m.View
			if follower {
				if r.opts.Variant.Aggregated() {
					r.sendAggVote(e, phasePrepare)
					r.sendAggVote(e, phaseCommit)
				} else {
					r.castVote(e, phasePrepare)
					e.sentCommitVote = true
					r.castVote(e, phaseCommit)
				}
			}
			continue
		}
		e.view, e.digest, e.block, e.prePrepared = m.View, p.Digest, p.Block, true
		e.prepares.add(leaderIdx)
		for _, tx := range p.Block.Txs {
			r.markBatched(tx.ID, p.Seq)
		}
		if follower {
			if r.opts.Variant.Aggregated() {
				r.sendAggVote(e, phasePrepare)
			} else {
				r.castVote(e, phasePrepare)
			}
		}
		r.maybePrepared(e)
	}

	if len(r.pending) > 0 {
		r.armProgressTimer()
	} else {
		r.vcTimer.Stop()
	}
	if r.isLeader() {
		r.scheduleBatch()
	}
}
