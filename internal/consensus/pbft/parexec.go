package pbft

import (
	"sync"
	"sync/atomic"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/simnet"
)

// Conflict-aware parallel execution of a decided block, and transport-side
// attestation pre-verification. Both serve the live runtime's hot path;
// the simulator never enables either (ExecWorkers <= 1, no preverifier),
// so its byte-identical schedules are untouched.
//
// Parallel execution keeps the serial loop's observable behavior exactly:
// the chaincodes declare a superset of the keys each transaction may
// touch (chaincode.ConflictDeclarer), transactions with overlapping
// declarations are unioned into one group, groups execute concurrently —
// each over an overlay that layers the group's earlier writes on the
// committed store — and the engine goroutine then applies the precomputed
// write-sets in original block order, so the incremental state digest
// folds the same write-sets in the same order as serial execution.
// Anything undeclarable (unknown chaincode, no declarer) makes the whole
// block serial, and a cross-check of the keys actually touched discards
// the parallel results and falls back to serial if a declaration ever
// proves too narrow.

// pkgExecWorkers is the process-wide default for Options.ExecWorkers == 0.
// It exists so harnesses that build replicas through deep call paths
// (bench experiments, shardsim) can flip every replica to parallel
// execution without threading an option through each layer.
var pkgExecWorkers atomic.Int32

// SetDefaultExecWorkers sets the process-wide default number of execution
// workers used when Options.ExecWorkers is 0. Values <= 1 mean serial
// execution (the initial default). It affects replicas built after the
// call.
func SetDefaultExecWorkers(n int) { pkgExecWorkers.Store(int32(n)) }

func defaultExecWorkers() int {
	if n := int(pkgExecWorkers.Load()); n > 1 {
		return n
	}
	return 1
}

// takeVerified consumes the per-dispatch "attestation already verified"
// flag (see Replica.verifiedMsg).
func (r *Replica) takeVerified() bool {
	v := r.verifiedMsg
	r.verifiedMsg = false
	return v
}

// execPlan holds precomputed execution results for one block, keyed by
// transaction id (block-order application happens in finishExecute).
type execPlan struct {
	results map[uint64]chaincode.Result
}

// planParallel precomputes execution results for a decided block's
// transactions on worker goroutines, or returns nil to execute serially.
// Runs on the engine goroutine and blocks until the workers join, so no
// other protocol code observes intermediate state; workers only read the
// committed store (concurrent reads are safe — nothing mutates it while
// they run) and their own overlays.
func (r *Replica) planParallel(txs []chain.Tx) *execPlan {
	if r.execWorkers <= 1 || len(txs) < 2 {
		return nil
	}
	// The transactions the fold-in loop will actually execute: skip
	// already-executed ids and in-block duplicates, mirroring its checks.
	list := make([]chain.Tx, 0, len(txs))
	seen := make(map[uint64]struct{}, len(txs))
	for _, tx := range txs {
		if r.executedTxIDs[tx.ID] {
			continue
		}
		if _, dup := seen[tx.ID]; dup {
			continue
		}
		seen[tx.ID] = struct{}{}
		list = append(list, tx)
	}
	if len(list) < 2 {
		if r.met != nil {
			r.met.parexSerial.Inc()
		}
		return nil
	}
	keys := make([][]string, len(list))
	for i, tx := range list {
		ks, ok := r.deps.Registry.ConflictKeys(r.store, tx)
		if !ok {
			if r.met != nil {
				r.met.parexSerial.Inc()
			}
			return nil // undeclarable: the whole block stays serial
		}
		keys[i] = ks
	}
	groups := conflictGroups(len(list), keys)
	if len(groups) < 2 {
		if r.met != nil {
			r.met.parexSerial.Inc()
		}
		return nil
	}

	type groupOut struct {
		res     []chaincode.Result
		touched map[string]struct{}
	}
	out := make([]groupOut, len(groups))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := r.execWorkers
	if workers > len(groups) {
		workers = len(groups)
	}
	// Per-worker busy time for the utilization metric, measured by the
	// workers themselves through the obs clock. Indexed per worker, read
	// only after the wg.Wait join, so there is no contention; in sim mode
	// the engine clock stands still while the engine goroutine blocks on
	// the join, making every busy reading 0 — deterministic by design.
	var busy []int64
	var obsClock func() int64
	if r.met != nil {
		busy = make([]int64, workers)
		obsClock = r.met.hub.Now
	}
	reg, store := r.deps.Registry, r.store
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gi := range jobs {
				var t0 int64
				if obsClock != nil {
					t0 = obsClock()
				}
				out[gi].res, out[gi].touched = runExecGroup(reg, store, list, groups[gi])
				if obsClock != nil {
					busy[w] += obsClock() - t0
				}
			}
		}(w)
	}
	var wallT0 int64
	if obsClock != nil {
		wallT0 = obsClock()
	}
	for gi := range groups {
		jobs <- gi
	}
	close(jobs)
	wg.Wait()
	if m := r.met; m != nil {
		m.parexGroups.ObserveSize(int64(len(groups)))
		for _, g := range groups {
			m.parexGroupTxs.ObserveSize(int64(len(g)))
		}
		if wall := obsClock() - wallT0; wall > 0 {
			var sum int64
			for _, b := range busy {
				sum += b
			}
			m.parexUtil.ObserveSize(100 * sum / (int64(workers) * wall))
		}
	}

	// Safety net: if any key actually read or written spans two groups,
	// the conflict declaration was too narrow — discard everything
	// (nothing has been applied) and re-execute serially, which is always
	// correct.
	owner := make(map[string]int)
	for gi := range out {
		//ahl:nondeterministic conflict detection is a predicate over the full key set: it returns nil iff any key spans two groups, whatever the visit order, and owner never outlives a clean pass
		for k := range out[gi].touched {
			if prev, ok := owner[k]; ok && prev != gi {
				if r.met != nil {
					r.met.parexFallback.Inc()
				}
				return nil
			}
			owner[k] = gi
		}
	}
	if r.met != nil {
		r.met.parexParallel.Inc()
	}
	plan := &execPlan{results: make(map[uint64]chaincode.Result, len(list))}
	for gi, g := range groups {
		for j, li := range g {
			plan.results[list[li].ID] = out[gi].res[j]
		}
	}
	return plan
}

// runExecGroup executes one conflict group in block order over an overlay
// of the committed store, returning per-transaction results and the set
// of keys the group read or wrote.
func runExecGroup(reg *chaincode.Registry, base chaincode.Reader, list []chain.Tx, group []int) ([]chaincode.Result, map[string]struct{}) {
	ov := &execOverlay{
		base:    base,
		writes:  make(map[string][]byte),
		touched: make(map[string]struct{}),
	}
	res := make([]chaincode.Result, 0, len(group))
	for _, li := range group {
		r := reg.ExecuteOver(ov, list[li])
		if r.OK() {
			for _, w := range r.Write {
				ov.touched[w.Key] = struct{}{}
				ov.writes[w.Key] = w.Value // nil value = delete, as in Ctx
				ov.wrote = true
			}
		}
		res = append(res, r)
	}
	return res, ov.touched
}

// execOverlay is the read view a conflict group executes over: the
// group's earlier write-sets layered on the committed store, recording
// every key consulted for the cross-group safety check.
type execOverlay struct {
	base    chaincode.Reader
	writes  map[string][]byte // nil value = deleted
	wrote   bool
	touched map[string]struct{}
}

// Get implements chaincode.Reader.
func (o *execOverlay) Get(key string) ([]byte, bool) {
	o.touched[key] = struct{}{}
	if o.wrote {
		if v, ok := o.writes[key]; ok {
			if v == nil {
				return nil, false
			}
			return append([]byte(nil), v...), true
		}
	}
	return o.base.Get(key)
}

// conflictGroups unions transactions with overlapping key declarations
// and returns the groups ordered by first member, each group's members in
// block order — both deterministic regardless of worker scheduling.
func conflictGroups(n int, keys [][]string) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	owner := make(map[string]int)
	for i := 0; i < n; i++ {
		for _, k := range keys[i] {
			if j, ok := owner[k]; ok {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			} else {
				owner[k] = i
			}
		}
	}
	members := make(map[int][]int, n)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		root := find(i)
		if _, ok := members[root]; !ok {
			order = append(order, root)
		}
		members[root] = append(members[root], i)
	}
	groups := make([][]int, 0, len(order))
	for _, root := range order {
		groups = append(groups, members[root])
	}
	return groups
}

// Preverifier returns a function the live runtime calls on transport
// goroutines, before a message enters the engine inbox, to verify its
// attestation concurrently with the engine's ordering work. It marks
// verifiable messages with Message.Verified, which Handle consumes to
// skip the engine-side check. Safe for concurrent use: it reads only the
// attestor's immutable verification material and the message itself, and
// a message it does not recognize (or fails to verify) passes through
// unmarked to the normal engine-side path.
func (r *Replica) Preverifier() func(m *simnet.Message) {
	att := r.att
	committee := r.opts.Committee
	return func(m *simnet.Message) {
		switch m.Type {
		case msgPrePrepare:
			pp, ok := m.Payload.(*prePrepareMsg)
			if !ok {
				return
			}
			leaderIdx := committee.Index(committee.Leader(pp.View))
			var digest blockcrypto.Digest
			if pp.Block != nil {
				digest = pp.Block.Digest()
			}
			m.Verified = att.verify(leaderIdx, logName(phasePrePrepare, pp.View), pp.Seq, digest, pp.Att)
		case msgPrepare, msgCommit:
			v, ok := m.Payload.(*voteMsg)
			if !ok {
				return
			}
			m.Verified = att.verify(v.Replica, logName(v.Phase, v.View), v.Seq, v.Digest, v.Att)
		case msgCheckpoint:
			ck, ok := m.Payload.(*checkpointMsg)
			if !ok {
				return
			}
			m.Verified = att.verify(ck.Replica, "checkpoint", ck.Seq, ck.State, ck.Att)
		}
	}
}
