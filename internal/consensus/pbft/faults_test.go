package pbft

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Fault-schedule tests for the view-change and timer lifecycle: a leader
// crash at f=1 must be survived deterministically, and no timer may stay
// armed (or keep re-arming) forever once the committee's work drains.

// crashFingerprint captures everything a deterministic faulty run should
// reproduce byte-for-byte.
type crashFingerprint struct {
	Executed  [4]int
	Views     [4]uint64
	VCs       [4]int
	EngineEvs uint64
	EngineAt  sim.Time
}

func runLeaderCrashScenario(t *testing.T, recoverAt time.Duration) (*testCluster, crashFingerprint) {
	t.Helper()
	tc := newTestCluster(t, 4, VariantAHLPlus, nil, nil)
	leader := tc.bc.Committee.Leader(0)
	tc.engine.Schedule(0, func() { tc.submit(1, 60) })
	tc.engine.Schedule(200*time.Millisecond, func() { tc.net.Endpoint(leader).SetDown(true) })
	if recoverAt > 0 {
		tc.engine.Schedule(recoverAt, func() { tc.net.Endpoint(leader).SetDown(false) })
	}
	tc.engine.Schedule(5*time.Second, func() { tc.submit(2, 60) })
	tc.run(120 * time.Second)
	var fp crashFingerprint
	for i, r := range tc.bc.Replicas {
		fp.Executed[i] = r.Executed()
		fp.Views[i] = r.View()
		fp.VCs[i] = r.ViewChanges()
	}
	fp.EngineEvs = tc.engine.Executed
	fp.EngineAt = tc.engine.Now()
	return tc, fp
}

func TestLeaderCrashViewChangeAtF1(t *testing.T) {
	tc, fp := runLeaderCrashScenario(t, 0)
	// The three survivors (quorum at f=1) must order and execute all 120
	// transactions in a new view.
	for i := 1; i < 4; i++ {
		if fp.Executed[i] != 120 {
			t.Fatalf("replica %d executed %d of 120 after leader crash", i, fp.Executed[i])
		}
		if fp.Views[i] == 0 {
			t.Fatalf("replica %d still in view 0 after leader crash", i)
		}
	}
	tc.requireAgreement(t, 120)
}

func TestLeaderCrashDeterminismAtF1(t *testing.T) {
	_, fp1 := runLeaderCrashScenario(t, 0)
	_, fp2 := runLeaderCrashScenario(t, 0)
	if fp1 != fp2 {
		t.Fatalf("leader-crash run not replayable:\n  %+v\nvs\n  %+v", fp1, fp2)
	}
}

func TestLeaderCrashTimersDrain(t *testing.T) {
	// Regression for the view-change timer lifecycle: after the survivors
	// finish every transaction, no timer may keep re-arming — neither on
	// the crashed leader (its timers are quiesced by onDownChange) nor on
	// a survivor whose escalation fires after the work drained. The
	// engine must therefore reach a truly idle state.
	tc, fp := runLeaderCrashScenario(t, 0)
	if fp.Executed[1] != 120 {
		t.Fatalf("precondition: survivors executed %d of 120", fp.Executed[1])
	}
	deadline := tc.engine.Now().Add(30 * time.Minute)
	for tc.engine.Pending() > 0 {
		if tc.engine.Now() >= deadline {
			t.Fatalf("%d events still pending long after the work drained: a timer is armed forever",
				tc.engine.Pending())
		}
		tc.engine.Run(tc.engine.Now().Add(time.Minute))
	}
}

func TestLeaderCrashRecoveryCatchesUp(t *testing.T) {
	// Crash-recovery: the former leader comes back mid-run, probes its
	// peers (state sync / block replay) and must converge on the decided
	// history instead of rejoining in a stale or runaway view.
	tc, fp := runLeaderCrashScenario(t, 30*time.Second)
	if fp.Executed[0] != 120 {
		t.Fatalf("recovered leader executed %d of 120", fp.Executed[0])
	}
	tc.requireAgreement(t, 120)
}
