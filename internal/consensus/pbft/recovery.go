package pbft

import (
	"math"
	"sort"
	"time"
)

// Enclave recovery (Appendix A). When a node's A2M enclave crashes and
// restarts, the host may supply stale sealed state — the rollback attack:
// with a "forgotten" log the node could re-bind old slots and equivocate.
// The defense makes the resuming enclave refuse all bindings until the
// host proves the committee has moved past everything the old enclave
// might have attested:
//
//  1. the node queries all peers for the sequence number of their last
//     stable checkpoint, ckp;
//  2. it selects ckpM — a reported value such that at least f *other*
//     replicas reported values <= ckpM (quorum intersection then
//     guarantees ckpM is at least the node's own last stable checkpoint);
//  3. the estimate HM = L + ckpM upper-bounds the highest sequence number
//     the crashed enclave could have observed (L is the watermark window);
//  4. the enclave accepts bindings again only once presented a stable
//     checkpoint with sequence number >= HM, at which point every slot it
//     might have bound before the crash is already finalized and pruned.
//
// While recovering, the node cannot attest any message, so it is
// effectively silent for consensus — safety is preserved even against a
// host replaying arbitrarily old sealed state.

const (
	msgCkpQuery = "pbft/ckp-query"
	msgCkpReply = "pbft/ckp-reply"
)

type ckpQueryMsg struct {
	Replica int
}

type ckpReplyMsg struct {
	Ckp     uint64
	Replica int
}

// RestartEnclave simulates a crash + restart of this replica's A2M enclave
// (the host may have rolled back its sealed state beforehand via the
// platform). It starts the Appendix A estimation procedure.
func (r *Replica) RestartEnclave() {
	if r.deps.AAOM == nil {
		return
	}
	// Until the estimate exists, the enclave refuses everything.
	r.deps.AAOM.Restart(math.MaxUint64)
	r.ckpReplies = make(map[int]uint64)
	r.recoveryHM = 0
	r.broadcast(msgCkpQuery, &ckpQueryMsg{Replica: r.self()})
}

// EnclaveRecovering reports whether the trusted log is still locked.
func (r *Replica) EnclaveRecovering() bool {
	return r.deps.AAOM != nil && r.deps.AAOM.Recovering()
}

func (r *Replica) handleCkpQuery(m *ckpQueryMsg) {
	if m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	r.sendTo(r.opts.Committee.Nodes[m.Replica], msgCkpReply,
		&ckpReplyMsg{Ckp: r.h, Replica: r.self()})
}

func (r *Replica) handleCkpReply(m *ckpReplyMsg) {
	if r.ckpReplies == nil || m.Replica < 0 || m.Replica >= r.n() {
		return
	}
	if _, dup := r.ckpReplies[m.Replica]; dup {
		return
	}
	r.ckpReplies[m.Replica] = m.Ckp
	if len(r.ckpReplies) < r.opts.Committee.F+1 {
		return
	}
	// Recompute on every further reply: the estimate can only rise, and a
	// later honest reply may raise it past an early low sample.
	// Select ckpM: the largest reported value with at least F other
	// replies at or below it.
	type rep struct {
		replica int
		ckp     uint64
	}
	reps := make([]rep, 0, len(r.ckpReplies))
	for idx, ckp := range r.ckpReplies {
		reps = append(reps, rep{idx, ckp})
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].ckp > reps[j].ckp })
	for _, cand := range reps {
		others := 0
		for _, o := range reps {
			if o.replica != cand.replica && o.ckp <= cand.ckp {
				others++
			}
		}
		if others >= r.opts.Committee.F {
			hm := cand.ckp + r.opts.Window
			if hm <= r.recoveryHM {
				return
			}
			r.recoveryHM = hm
			r.deps.AAOM.SetRecoveryHM(hm)
			// Jumpstart catch-up toward the unlock point.
			r.lastSyncReq = 0
			r.noteAhead()
			r.maybeFinishEnclaveRecovery()
			return
		}
	}
}

// maybeFinishEnclaveRecovery unlocks the enclave once the replica holds a
// stable checkpoint at or beyond HM. Called whenever the stable checkpoint
// advances.
func (r *Replica) maybeFinishEnclaveRecovery() {
	if r.recoveryHM == 0 || !r.EnclaveRecovering() {
		return
	}
	if r.h < r.recoveryHM {
		return
	}
	if err := r.deps.AAOM.CompleteRecovery(r.h); err == nil {
		r.ckpReplies = nil
		// The node can attest again; rejoin the protocol.
		if len(r.pending) > 0 {
			r.armProgressTimer()
		}
	}
}

// recoveryMsgCost is the processing cost for the tiny query/reply.
const recoveryMsgCost = 10 * time.Microsecond
