// Package pbft implements the paper's PBFT family on the simulated
// network:
//
//   - HL: stock PBFT as in Hyperledger Fabric v0.6 — N = 3f+1, quorum
//     2f+1, client requests broadcast by the receiving replica, one shared
//     inbound queue for request and consensus traffic.
//   - AHL (Attested HyperLedger, §4.1): PBFT hardened with the attested
//     append-only memory. Equivocation is impossible, so N = 2f+1 with
//     quorum f+1.
//   - AHL+opt1: AHL with the inbound queue split per message class.
//   - AHL+ (opt1+opt2): additionally, client requests are forwarded to the
//     leader instead of broadcast.
//   - AHLR (opt3): AHL+ where followers vote to the leader, whose
//     aggregation enclave emits one quorum certificate per phase —
//     O(N) normal-case communication, at the price of making the leader a
//     single point of failure for progress.
//
// All variants share one replica engine parameterized by Options; the
// differences above are data, not forks of the protocol code, which is
// what makes the Figure 10 ablation meaningful.
//
// Role in the AHL design: this is the intra-shard consensus layer — each
// shard committee and the reference committee R run one instance of it
// over internal/simnet, with enclave operations charged through
// internal/tee. Raising fault tolerance from f < n/3 to f < n/2 via the
// attested log is what lets internal/sharding form ~80-node committees
// instead of 600+ at a 25% adversary, and the opt1-3 queue/communication
// optimizations are what keep those committees live at N=79 and on WAN
// deployments (Figures 8, 9, 14). Byzantine behaviors (equivocation,
// silence) are injectable per replica for the failure experiments.
//
// # Pipelined protocol flow
//
// Ordering and execution are decoupled, as in classic PBFT: the leader
// assigns sequence numbers and issues pre-prepares without waiting for
// earlier sequences to execute, bounded by min(stable checkpoint + Window,
// executedThrough + PipelineDepth) — see maxAssign. Prepares and commits
// for many sequences run concurrently; execution alone is strictly
// ordered, advancing executedThrough one sequence at a time only after
// the commit quorum forms and (on durable nodes) the decided block's WAL
// append returns. A view change collects every in-flight sequence above
// the stable checkpoint into the new-view message, so a deep pipeline
// survives leader failure with no decided sequence lost and no sequence
// executed twice (pipeline_test.go pins this).
//
// Three optional levers tune the live path and default off, keeping the
// simulator's published baselines byte-identical:
//
//   - AdaptiveBatch replaces the fixed BatchTimeout cadence when the
//     pipeline is idle: a partial batch is cut after the short
//     BatchMinDelay coalescing window instead of waiting out the full
//     timer. Under load the legacy cadence is kept — larger batches
//     amortize per-sequence protocol cost.
//   - PipelineDepth caps how far sequence assignment may run ahead of
//     local execution (0 = checkpoint window only).
//   - ExecWorkers > 1 enables conflict-aware parallel execution of a
//     decided batch: transactions are partitioned into non-conflicting
//     groups via the chaincodes' declared key sets (chaincode.ConflictKeys,
//     grounded in the same keys the 2PL lock table guards), groups execute
//     concurrently against overlay views, and write-sets are applied in
//     original block order — so the state digest chain is byte-identical
//     to serial execution (internal/bench equivalence harness).
package pbft
