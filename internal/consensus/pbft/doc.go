// Package pbft implements the paper's PBFT family on the simulated
// network:
//
//   - HL: stock PBFT as in Hyperledger Fabric v0.6 — N = 3f+1, quorum
//     2f+1, client requests broadcast by the receiving replica, one shared
//     inbound queue for request and consensus traffic.
//   - AHL (Attested HyperLedger, §4.1): PBFT hardened with the attested
//     append-only memory. Equivocation is impossible, so N = 2f+1 with
//     quorum f+1.
//   - AHL+opt1: AHL with the inbound queue split per message class.
//   - AHL+ (opt1+opt2): additionally, client requests are forwarded to the
//     leader instead of broadcast.
//   - AHLR (opt3): AHL+ where followers vote to the leader, whose
//     aggregation enclave emits one quorum certificate per phase —
//     O(N) normal-case communication, at the price of making the leader a
//     single point of failure for progress.
//
// All variants share one replica engine parameterized by Options; the
// differences above are data, not forks of the protocol code, which is
// what makes the Figure 10 ablation meaningful.
//
// Role in the AHL design: this is the intra-shard consensus layer — each
// shard committee and the reference committee R run one instance of it
// over internal/simnet, with enclave operations charged through
// internal/tee. Raising fault tolerance from f < n/3 to f < n/2 via the
// attested log is what lets internal/sharding form ~80-node committees
// instead of 600+ at a 25% adversary, and the opt1-3 queue/communication
// optimizations are what keep those committees live at N=79 and on WAN
// deployments (Figures 8, 9, 14). Byzantine behaviors (equivocation,
// silence) are injectable per replica for the failure experiments.
package pbft
