package poet

import (
	"math"
	"testing"
	"time"

	"repro/internal/simnet"
)

func lat() simnet.LatencyModel { return simnet.ThrottledLAN() }

func TestPoETProducesChain(t *testing.T) {
	res := Run(1, 8, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	if res.Height < 20 {
		t.Fatalf("height = %d over 10 min with 12s blocks, want >= 20", res.Height)
	}
	if res.Tps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPoETStaleRateGrowsWithN(t *testing.T) {
	small := Run(2, 4, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	large := Run(2, 64, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	if large.StaleRate <= small.StaleRate {
		t.Fatalf("stale rate should grow with N: N=4 %.3f vs N=64 %.3f",
			small.StaleRate, large.StaleRate)
	}
}

func TestPoETPlusReducesStaleRate(t *testing.T) {
	plain := Run(3, 64, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	plus := Run(3, 64, true, 2<<20, 12*time.Second, 10*time.Minute, lat())
	if plain.StaleRate == 0 {
		t.Fatal("baseline PoET shows no staleness at N=64; model broken")
	}
	if plus.StaleRate >= plain.StaleRate {
		t.Fatalf("PoET+ stale %.3f !< PoET stale %.3f", plus.StaleRate, plain.StaleRate)
	}
}

func TestPoETBiggerBlocksMoreStale(t *testing.T) {
	small := Run(4, 32, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	big := Run(4, 32, false, 8<<20, 12*time.Second, 10*time.Minute, lat())
	if big.StaleRate <= small.StaleRate {
		t.Fatalf("8MB blocks should be staler than 2MB: %.3f vs %.3f",
			big.StaleRate, small.StaleRate)
	}
}

func TestPoETPlusThroughputAtScale(t *testing.T) {
	plain := Run(5, 128, false, 2<<20, 12*time.Second, 10*time.Minute, lat())
	plus := Run(5, 128, true, 2<<20, 12*time.Second, 10*time.Minute, lat())
	if plus.Tps <= plain.Tps {
		t.Fatalf("PoET+ should outperform PoET at N=128: %.0f vs %.0f tps",
			plus.Tps, plain.Tps)
	}
}

func TestOptionsDerived(t *testing.T) {
	nodes := []simnet.NodeID{0, 1, 2, 3}
	o := DefaultOptions(nodes, 0)
	if o.TxPerBlock() != (2<<20)/300 {
		t.Fatalf("tx/block = %d", o.TxPerBlock())
	}
	mean := o.waitMean()
	if mean != 4*12*time.Second {
		t.Fatalf("PoET wait mean = %v, want 48s", mean)
	}
	o.Plus = true
	o.LBits = 2
	want := time.Duration(float64(48*time.Second) / math.Pow(2, 1.5))
	if o.waitMean() != want {
		t.Fatalf("PoET+ wait mean = %v, want %v (48s/2^1.5)", o.waitMean(), want)
	}
}
