// Package poet implements Proof of Elapsed Time and the paper's PoET+
// improvement (§4.2, Appendix C.1).
//
// Each node asks its enclave for a random waitTime; the node whose wait
// expires first proposes the next block, and blocks gossip through the
// network. Because propagation is not instant, nodes whose waits expire
// before the winning block reaches them propose competing blocks — forks —
// and the losing branches become stale blocks, hurting both throughput and
// security (§4.2).
//
// PoET+ adds a first stage: the enclave also draws an l-bit value q and
// only issues a wait certificate when q == 0, so only an expected
// N·2^-l nodes compete per round. With Sawtooth-style population
// estimation the local mean partially re-tunes to the smaller candidate
// set (we model the estimator's steady state as the geometric mean of the
// raw and filtered population sizes, i.e. mean = N·T / 2^(l/2)), trading a
// modestly longer block interval for a large reduction in simultaneous
// proposals — reproducing the paper's ~4-5x stale-rate cut (Figure 22).
package poet

import (
	"math"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
)

// Options configures a PoET network node.
type Options struct {
	Nodes []simnet.NodeID
	Index int
	// Plus enables the PoET+ q-filter.
	Plus bool
	// LBits is l, the bit length of q (PoET+ only).
	LBits uint
	// BlockTime is the target expected block interval T.
	BlockTime time.Duration
	// BlockSize is the serialized block size in bytes.
	BlockSize int
	// TxBytes is the average transaction size used to derive tx/block.
	TxBytes int
	// Fanout is the gossip fanout.
	Fanout int
	// Downlink is the per-node ingestion bandwidth in bytes/second: every
	// received block occupies the node for BlockSize/Downlink. This is
	// one of the resources whose saturation produces the throughput
	// collapse at scale (Figure 21).
	Downlink int64
	// ExecPerTx is the cost of validating/executing one transaction. A
	// node must fully validate competing fork blocks too, which is the
	// positive feedback that lets high stale rates collapse throughput:
	// fork validation busies the node, slowing propagation, creating more
	// forks.
	ExecPerTx time.Duration
}

// DefaultOptions mirrors the paper's PoET testbed: 50 Mbps links, 100 ms
// latency, 12 s block time, 2 MB blocks. The gossip fanout scales with the
// network (N/4, clamped to [4, 32]), reflecting Sawtooth's densifying peer
// topology: the duplicate deliveries this creates are what saturate node
// downlinks at large N.
func DefaultOptions(nodes []simnet.NodeID, index int) Options {
	fanout := len(nodes) / 4
	if fanout < 4 {
		fanout = 4
	}
	if fanout > 32 {
		fanout = 32
	}
	return Options{
		Nodes:     nodes,
		Index:     index,
		BlockTime: 12 * time.Second,
		BlockSize: 2 << 20,
		TxBytes:   300,
		Fanout:    fanout,
		Downlink:  6_250_000, // 50 Mbps
		ExecPerTx: 300 * time.Microsecond,
	}
}

// TxPerBlock returns the number of transactions a block carries.
func (o Options) TxPerBlock() int { return o.BlockSize / o.TxBytes }

// waitMean returns the per-node exponential wait mean. Under PoET+ the
// Sawtooth population estimator sees only q==0 certificates and shrinks
// localMean toward the filtered population; we model its steady state as
// mean = N·T / 2^(3l/4), which leaves the effective block interval at
// T·2^(l/4) — modestly longer than PoET's, the trade the paper describes.
func (o Options) waitMean() time.Duration {
	n := float64(len(o.Nodes))
	mean := n * float64(o.BlockTime)
	if o.Plus {
		mean /= math.Pow(2, 0.75*float64(o.LBits))
	}
	return time.Duration(mean)
}

// Stats aggregates network-wide counters, shared by all nodes of one run.
type Stats struct {
	Produced int // blocks proposed by anyone
}

// StaleOf returns the stale block count given the canonical chain height:
// every produced block beyond the canonical height lost a fork.
func (s *Stats) StaleOf(height uint64) int {
	stale := s.Produced - int(height)
	if stale < 0 {
		stale = 0
	}
	return stale
}

// StaleRateOf returns stale/produced for the given canonical height.
func (s *Stats) StaleRateOf(height uint64) float64 {
	if s.Produced == 0 {
		return 0
	}
	return float64(s.StaleOf(height)) / float64(s.Produced)
}

type blockMsg struct {
	Height   uint64
	Digest   blockcrypto.Digest
	Proposer int
}

const msgBlock = "poet/block"

// Node is one PoET validator.
type Node struct {
	opts     Options
	ep       *simnet.Endpoint
	engine   *sim.Engine
	platform *tee.Platform
	stats    *Stats

	head      uint64 // current chain height
	headOf    blockcrypto.Digest
	seen      map[blockcrypto.Digest]bool
	waitTimer *sim.Timer
	round     uint64
}

// New wires a PoET node onto ep.
func New(opts Options, ep *simnet.Endpoint, platform *tee.Platform, stats *Stats) *Node {
	n := &Node{opts: opts, ep: ep, platform: platform, stats: stats, seen: make(map[blockcrypto.Digest]bool)}
	ep.SetHandler(n)
	return n
}

// Start begins the first wait.
func (n *Node) Start(engine *sim.Engine) {
	n.engine = engine
	n.waitTimer = engine.NewTimer()
	n.newRound()
}

// Height returns the node's current chain height.
func (n *Node) Height() uint64 { return n.head }

// newRound asks the enclave for a new waitTime toward the next height.
func (n *Node) newRound() {
	n.round++
	n.platform.Charge(n.platform.Costs().Beacon)
	u := float64(n.platform.RandUint64()%(1<<53)+1) / float64(1<<53)
	wait := time.Duration(-math.Log(u) * float64(n.opts.waitMean()))
	round := n.round
	n.waitTimer.Reset(wait, func() { n.waitExpired(round) })
}

// waitExpired fires when this node's waitTime elapsed without the head
// moving. Under PoET+ the enclave only issues the wait certificate when
// its l-bit q draw is zero; otherwise the node asks for a fresh waitTime
// (§4.2: "Only after such waitTime expires does the enclave issue a wait
// certificate or create a new waitTime").
func (n *Node) waitExpired(round uint64) {
	if round != n.round {
		return
	}
	if n.opts.Plus && n.opts.LBits > 0 {
		q := n.platform.RandUint64() & ((1 << n.opts.LBits) - 1)
		if q != 0 {
			n.round-- // stay in the same logical round, just re-wait
			n.newRound()
			return
		}
	}
	n.propose()
}

// propose publishes a block extending this node's head.
func (n *Node) propose() {
	n.stats.Produced++
	height := n.head + 1
	digest := blockcrypto.Hash([]byte{byte(n.opts.Index)}, tee64(height), tee64(n.round))
	n.adopt(height, digest)
	n.gossip(&blockMsg{Height: height, Digest: digest, Proposer: n.opts.Index})
	// Start competing for the next height immediately.
	n.newRound()
}

func tee64(v uint64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
	return b[:]
}

// gossip pushes the block to Fanout deterministic-random peers.
func (n *Node) gossip(m *blockMsg) {
	count := n.opts.Fanout
	total := len(n.opts.Nodes)
	if count > total-1 {
		count = total - 1
	}
	start := int(n.platform.RandUint64()) % total
	if start < 0 {
		start = -start
	}
	sent := 0
	for i := 0; sent < count && i < total; i++ {
		id := n.opts.Nodes[(start+i)%total]
		if id == n.ep.ID() {
			continue
		}
		n.ep.Send(simnet.Message{To: id, Class: simnet.ClassConsensus,
			Type: msgBlock, Payload: m, Size: n.opts.BlockSize})
		sent++
	}
}

// Cost implements simnet.Handler: receiving a block occupies the node's
// downlink for its transmission time plus validation.
func (n *Node) Cost(m simnet.Message) time.Duration {
	if m.Type != msgBlock {
		return 0
	}
	ingest := time.Duration(float64(n.opts.BlockSize) / float64(n.opts.Downlink) * float64(time.Second))
	return ingest + time.Duration(n.opts.TxPerBlock())*n.platform.Costs().SHA256
}

// Handle implements simnet.Handler.
func (n *Node) Handle(m simnet.Message) {
	b := m.Payload.(*blockMsg)
	if n.seen[b.Digest] {
		return
	}
	n.seen[b.Digest] = true
	execCost := time.Duration(n.opts.TxPerBlock()) * n.opts.ExecPerTx
	switch {
	case b.Height > n.head:
		n.ep.CPU().Charge(execCost) // validate + execute the new block
		n.adopt(b.Height, b.Digest)
		n.gossip(b)
		n.newRound()
	default:
		// Competing block for a height we already have: the node must
		// still validate the fork to compare branches, and the block
		// keeps gossiping — stale blocks cost the whole network both
		// bandwidth and CPU (§4.2: stale rate hurts throughput).
		n.ep.CPU().Charge(execCost)
		n.gossip(b)
	}
}

func (n *Node) adopt(height uint64, digest blockcrypto.Digest) {
	n.head = height
	n.headOf = digest
	n.seen[digest] = true
}

// RunNetwork builds and runs a PoET network for the given duration and
// returns (chain height of node 0, stats).
type RunResult struct {
	Height    uint64
	Stats     Stats
	Tps       float64
	StaleRate float64
}

// Run executes a complete PoET experiment on a fresh engine.
func Run(seed int64, n int, plus bool, blockSize int, blockTime time.Duration, duration time.Duration, latency simnet.LatencyModel) RunResult {
	engine := sim.NewEngine(seed)
	net := simnet.New(engine, latency)
	nodes := make([]simnet.NodeID, n)
	for i := range nodes {
		nodes[i] = simnet.NodeID(i)
	}
	stats := &Stats{}
	vals := make([]*Node, n)
	scheme := blockcryptoScheme(seed)
	for i := range nodes {
		ep := net.Attach(nodes[i], simnet.DefaultSplitQueue())
		opts := DefaultOptions(nodes, i)
		opts.Plus = plus
		opts.BlockSize = blockSize
		opts.BlockTime = blockTime
		if plus {
			opts.LBits = uint(math.Round(math.Log2(float64(n)) / 2))
		}
		signer := scheme.NewSigner(blockcrypto.KeyID(i), engine.Rand())
		platform := tee.NewPlatform(engine, ep.CPU(), tee.DefaultCosts(), signer, engine.Rand().Int63())
		vals[i] = New(opts, ep, platform, stats)
	}
	for _, v := range vals {
		v.Start(engine)
	}
	engine.Run(sim.Time(duration))
	// Canonical height: the median node's view of the chain.
	heights := make([]uint64, 0, len(vals))
	for _, v := range vals {
		heights = append(heights, v.Height())
	}
	for i := range heights {
		for j := i + 1; j < len(heights); j++ {
			if heights[j] < heights[i] {
				heights[i], heights[j] = heights[j], heights[i]
			}
		}
	}
	height := heights[len(heights)/2]
	res := RunResult{Height: height, Stats: *stats}
	res.StaleRate = stats.StaleRateOf(height)
	txPerBlock := blockSize / 300
	res.Tps = float64(height) * float64(txPerBlock) / duration.Seconds()
	return res
}

func blockcryptoScheme(seed int64) blockcrypto.Scheme { return blockcrypto.NewSimScheme() }
