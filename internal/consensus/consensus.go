// Package consensus holds the types shared by all consensus protocol
// implementations in this repository: committee descriptions, execution
// events, and the replica interface the sharding layer drives.
//
// Protocol implementations live in subpackages: pbft (HL and the AHL
// family), tendermint, ibft and raft (the Figure 2 baselines), and poet
// (the Nakamoto-style protocols of §4.2).
package consensus

import (
	"time"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Committee describes one consensus group: an ordered list of members
// (the index in Nodes is the replica index) with its fault tolerance and
// quorum size.
type Committee struct {
	Nodes  []simnet.NodeID
	F      int // maximum tolerated faulty replicas
	Quorum int // matching votes required for agreement
}

// BFTCommittee returns the classic PBFT committee over nodes:
// f = floor((N-1)/3) and quorum ceil((N+f+1)/2) — which is 2f+1 when
// N = 3f+1 exactly, and guarantees any two quorums intersect in at least
// f+1 replicas for every N.
func BFTCommittee(nodes []simnet.NodeID) Committee {
	n := len(nodes)
	f := (n - 1) / 3
	return Committee{Nodes: nodes, F: f, Quorum: (n+f)/2 + 1}
}

// AttestedCommittee returns the AHL committee over nodes: with
// equivocation removed by the trusted log, f = floor((N-1)/2) and quorum
// N-f (§4.1) — which is f+1 when N = 2f+1 exactly, and for every N keeps
// two quorums overlapping in at least one replica while leaving a quorum
// available with f replicas down.
func AttestedCommittee(nodes []simnet.NodeID) Committee {
	n := len(nodes)
	f := (n - 1) / 2
	return Committee{Nodes: nodes, F: f, Quorum: n - f}
}

// CrashCommittee returns a crash-fault (Raft-style) committee:
// f = floor((N-1)/2), quorum is a majority.
func CrashCommittee(nodes []simnet.NodeID) Committee {
	f := (len(nodes) - 1) / 2
	return Committee{Nodes: nodes, F: f, Quorum: len(nodes)/2 + 1}
}

// N returns the committee size.
func (c Committee) N() int { return len(c.Nodes) }

// Index returns the replica index of node id, or -1.
func (c Committee) Index(id simnet.NodeID) int {
	for i, n := range c.Nodes {
		if n == id {
			return i
		}
	}
	return -1
}

// Leader returns the node that leads the given view under round-robin
// rotation.
func (c Committee) Leader(view uint64) simnet.NodeID {
	return c.Nodes[int(view)%len(c.Nodes)]
}

// BlockEvent reports one executed block on one replica.
type BlockEvent struct {
	Block   *chain.Block
	Results []chaincode.Result
	Time    sim.Time
}

// Replica is the interface the sharding layer and benchmark drivers use to
// drive a consensus protocol instance. Concrete replicas also register
// themselves as the simnet handler for their endpoint.
type Replica interface {
	// SubmitLocal injects a client request as if received by this replica.
	SubmitLocal(tx chain.Tx)
	// OnExecute registers the executed-block callback (one registration;
	// later calls replace it).
	OnExecute(fn func(BlockEvent))
	// Executed returns the number of transactions executed so far.
	Executed() int
	// ViewChanges returns how many view changes this replica has voted
	// for (Figure 16's metric).
	ViewChanges() int
}

// Timing bundles the protocol timeouts shared across implementations.
type Timing struct {
	BatchTimeout      time.Duration // max wait to fill a batch
	ViewChangeTimeout time.Duration // progress timeout before a view change
}

// DefaultTiming returns timeouts suitable for the LAN cluster environment.
// The view-change timeout is reset on every executed block, so a healthy
// saturated committee never false-triggers it; 1s bounds how long a faulty
// leader can stall the committee.
func DefaultTiming() Timing {
	return Timing{BatchTimeout: 50 * time.Millisecond, ViewChangeTimeout: time.Second}
}

// WANTiming returns timeouts suitable for the multi-region GCP environment.
func WANTiming() Timing {
	return Timing{BatchTimeout: 100 * time.Millisecond, ViewChangeTimeout: 10 * time.Second}
}
