package blockcrypto

import (
	"math/rand"
	"testing"
)

// BenchmarkHash measures the multi-chunk digest path used for every block,
// tag, and trusted-log bind in the simulation.
func BenchmarkHash(b *testing.B) {
	chunk1 := make([]byte, 32)
	chunk2 := make([]byte, 8)
	chunk3 := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Hash(chunk1, chunk2, chunk3)
	}
}

// BenchmarkHashLarge exercises the streaming fallback for payloads beyond
// the stack scratch buffer.
func BenchmarkHashLarge(b *testing.B) {
	chunk := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Hash(chunk)
	}
}

// BenchmarkHashOfDigests measures Merkle interior-node hashing.
func BenchmarkHashOfDigests(b *testing.B) {
	var d1, d2 Digest
	d1[0], d2[0] = 1, 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = HashOfDigests(d1, d2)
	}
}

// BenchmarkSimSignVerify measures the simulation scheme's tag round trip.
func BenchmarkSimSignVerify(b *testing.B) {
	s := NewSimScheme()
	signer := s.NewSigner(1, rand.New(rand.NewSource(1)))
	d := Hash([]byte("payload"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := signer.Sign(d)
		if !s.Verify(d, sig) {
			b.Fatal("verify failed")
		}
	}
}

var sink Digest
