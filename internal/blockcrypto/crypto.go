// Package blockcrypto provides the cryptographic primitives used by the
// sharded blockchain: hashing, digital signatures, and deterministic key
// generation.
//
// Two signature schemes are provided behind the same Scheme interface:
//
//   - Ed25519Scheme performs real Ed25519 signatures from the standard
//     library. It is used in unit tests and in any deployment that leaves
//     the simulator.
//   - SimScheme produces structurally-checkable MAC-style tags. It is used
//     inside large discrete-event experiments where performing hundreds of
//     millions of real signature operations would dominate wall-clock time
//     for no fidelity gain: the *virtual* cost of signing and verification
//     is charged separately through the TEE cost model (Table 2 of the
//     paper), exactly as the authors injected measured SGX latencies into
//     SDK simulation mode.
//
// SimScheme is unforgeable only under the simulator's own threat model:
// Byzantine nodes are protocol state machines inside the same process and
// can only interact through protocol messages, never by computing tags for
// keys they do not hold (the scheme's tag derivation includes a per-key
// secret that the simulation never hands to adversarial code).
package blockcrypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// DigestSize is the size of a Digest in bytes.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value.
type Digest [DigestSize]byte

// hashScratch is the stack buffer used to single-shot short multi-chunk
// hashes; inputs up to this many bytes are hashed without heap allocation.
const hashScratch = 256

// Hash returns the SHA-256 digest of the concatenation of the given chunks.
//
// Short inputs (tags, headers, trusted-log binds — the simulation's hot
// path) are gathered into a stack buffer and hashed with the single-shot
// sha256.Sum256; longer inputs stream through a hasher with the digest
// written in place, so neither path allocates.
func Hash(chunks ...[]byte) Digest {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total <= hashScratch {
		var buf [hashScratch]byte
		b := buf[:0]
		for _, c := range chunks {
			b = append(b, c...)
		}
		return sha256.Sum256(b)
	}
	h := sha256.New()
	for _, c := range chunks {
		h.Write(c)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// HashOfDigests hashes a sequence of digests, used for chaining and Merkle
// interior nodes.
func HashOfDigests(ds ...Digest) Digest {
	if len(ds)*DigestSize <= hashScratch {
		var buf [hashScratch]byte
		b := buf[:0]
		for i := range ds {
			b = append(b, ds[i][:]...)
		}
		return sha256.Sum256(b)
	}
	h := sha256.New()
	for i := range ds {
		h.Write(ds[i][:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// KeyID names a key pair within a Scheme. In the simulation it is the node
// identifier that owns the key.
type KeyID uint64

// Signature is a signature (or simulation tag) over a digest.
type Signature struct {
	Signer KeyID
	Bytes  []byte
}

// Valid reports whether the signature carries any material at all; full
// verification requires the Scheme.
func (s Signature) Valid() bool { return len(s.Bytes) > 0 }

// Signer signs digests on behalf of a single key.
type Signer interface {
	ID() KeyID
	Sign(d Digest) Signature
}

// Verifier verifies signatures from any key registered with the scheme.
type Verifier interface {
	Verify(d Digest, sig Signature) bool
}

// Scheme is a signature scheme with a key registry.
type Scheme interface {
	Verifier
	// NewSigner creates (and registers) a key pair for id, deterministic in
	// the provided random source. Creating the same id twice is a bug in
	// the caller and panics.
	NewSigner(id KeyID, rng *rand.Rand) Signer
}

// --- Ed25519 ---

// Ed25519Scheme is a real Ed25519 scheme backed by crypto/ed25519.
type Ed25519Scheme struct {
	pubs map[KeyID]ed25519.PublicKey
}

// NewEd25519Scheme returns an empty Ed25519 key registry.
func NewEd25519Scheme() *Ed25519Scheme {
	return &Ed25519Scheme{pubs: make(map[KeyID]ed25519.PublicKey)}
}

type ed25519Signer struct {
	id   KeyID
	priv ed25519.PrivateKey
}

func (s *ed25519Signer) ID() KeyID { return s.id }

func (s *ed25519Signer) Sign(d Digest) Signature {
	return Signature{Signer: s.id, Bytes: ed25519.Sign(s.priv, d[:])}
}

// NewSigner implements Scheme.
func (s *Ed25519Scheme) NewSigner(id KeyID, rng *rand.Rand) Signer {
	if _, dup := s.pubs[id]; dup {
		panic(fmt.Sprintf("blockcrypto: duplicate key id %d", id))
	}
	var seed [ed25519.SeedSize]byte
	fillRand(seed[:], rng)
	priv := ed25519.NewKeyFromSeed(seed[:])
	s.pubs[id] = priv.Public().(ed25519.PublicKey)
	return &ed25519Signer{id: id, priv: priv}
}

// Verify implements Scheme.
func (s *Ed25519Scheme) Verify(d Digest, sig Signature) bool {
	pub, ok := s.pubs[sig.Signer]
	if !ok {
		return false
	}
	return ed25519.Verify(pub, d[:], sig.Bytes)
}

// --- Simulation scheme ---

// SimScheme produces deterministic hash tags bound to a per-key secret.
// See the package comment for the threat model under which this is sound.
type SimScheme struct {
	secrets map[KeyID][32]byte
}

// NewSimScheme returns an empty simulation key registry.
func NewSimScheme() *SimScheme {
	return &SimScheme{secrets: make(map[KeyID][32]byte)}
}

type simSigner struct {
	id     KeyID
	secret [32]byte
}

func (s *simSigner) ID() KeyID { return s.id }

func (s *simSigner) Sign(d Digest) Signature {
	t := simTag(s.id, s.secret, d)
	return Signature{Signer: s.id, Bytes: append([]byte(nil), t[:simTagLen]...)}
}

// simTagLen is the length of a simulation tag in bytes (the first half of
// the binding digest).
const simTagLen = 16

// simTag computes the full binding digest; callers use its first simTagLen
// bytes. Returning the digest by value keeps verification allocation-free.
func simTag(id KeyID, secret [32]byte, d Digest) Digest {
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], uint64(id))
	return Hash(secret[:], idb[:], d[:])
}

// NewSigner implements Scheme.
func (s *SimScheme) NewSigner(id KeyID, rng *rand.Rand) Signer {
	if _, dup := s.secrets[id]; dup {
		panic(fmt.Sprintf("blockcrypto: duplicate key id %d", id))
	}
	var secret [32]byte
	fillRand(secret[:], rng)
	s.secrets[id] = secret
	return &simSigner{id: id, secret: secret}
}

// Verify implements Scheme.
func (s *SimScheme) Verify(d Digest, sig Signature) bool {
	secret, ok := s.secrets[sig.Signer]
	if !ok {
		return false
	}
	want := simTag(sig.Signer, secret, d)
	return subtle.ConstantTimeCompare(want[:simTagLen], sig.Bytes) == 1
}

func fillRand(b []byte, rng *rand.Rand) {
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
}
