package blockcrypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func schemes() map[string]func() Scheme {
	return map[string]func() Scheme{
		"ed25519": func() Scheme { return NewEd25519Scheme() },
		"sim":     func() Scheme { return NewSimScheme() },
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rng := rand.New(rand.NewSource(1))
			a := s.NewSigner(1, rng)
			b := s.NewSigner(2, rng)
			d := Hash([]byte("hello"))
			sig := a.Sign(d)
			if sig.Signer != 1 {
				t.Fatalf("signer id = %d, want 1", sig.Signer)
			}
			if !s.Verify(d, sig) {
				t.Fatal("valid signature rejected")
			}
			if s.Verify(Hash([]byte("other")), sig) {
				t.Fatal("signature verified against wrong digest")
			}
			bad := sig
			bad.Signer = b.ID()
			if s.Verify(d, bad) {
				t.Fatal("signature verified under wrong key id")
			}
			unknown := sig
			unknown.Signer = 99
			if s.Verify(d, unknown) {
				t.Fatal("signature verified under unregistered key")
			}
		})
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rng := rand.New(rand.NewSource(2))
			a := s.NewSigner(1, rng)
			d := Hash([]byte("msg"))
			sig := a.Sign(d)
			sig.Bytes = append([]byte(nil), sig.Bytes...)
			sig.Bytes[0] ^= 0xff
			if s.Verify(d, sig) {
				t.Fatal("tampered signature accepted")
			}
			if s.Verify(d, Signature{Signer: 1}) {
				t.Fatal("empty signature accepted")
			}
		})
	}
}

func TestDuplicateKeyPanics(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rng := rand.New(rand.NewSource(3))
			s.NewSigner(7, rng)
			defer func() {
				if recover() == nil {
					t.Fatal("duplicate key id did not panic")
				}
			}()
			s.NewSigner(7, rng)
		})
	}
}

func TestDeterministicKeyGen(t *testing.T) {
	mk := func() Signature {
		s := NewSimScheme()
		signer := s.NewSigner(5, rand.New(rand.NewSource(9)))
		return signer.Sign(Hash([]byte("x")))
	}
	a, b := mk(), mk()
	if string(a.Bytes) != string(b.Bytes) {
		t.Fatal("same seed produced different signatures")
	}
}

func TestHashProperties(t *testing.T) {
	if Hash([]byte("a"), []byte("b")) != Hash([]byte("a"), []byte("b")) {
		t.Fatal("hash not deterministic")
	}
	if Hash([]byte("ab")) != Hash([]byte("a"), []byte("b")) {
		t.Fatal("hash should be over concatenation")
	}
	if Hash([]byte("a")) == Hash([]byte("b")) {
		t.Fatal("distinct inputs collided")
	}
	var zero Digest
	if !zero.IsZero() || Hash([]byte("a")).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

// Property: any signed digest verifies, and verification is bound to the
// exact digest bytes.
func TestSignVerifyProperty(t *testing.T) {
	for name, mk := range schemes() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			rng := rand.New(rand.NewSource(4))
			signer := s.NewSigner(1, rng)
			f := func(msg []byte, flip byte) bool {
				d := Hash(msg)
				sig := signer.Sign(d)
				if !s.Verify(d, sig) {
					return false
				}
				d2 := d
				d2[int(flip)%len(d2)] ^= 1
				return !s.Verify(d2, sig)
			}
			cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
			if err := quick.Check(f, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
