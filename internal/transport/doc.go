// Package transport abstracts how protocol messages move between nodes,
// so the same consensus/transaction stack runs over the discrete-event
// simulator and over real sockets.
//
// A Transport delivers simnet.Message values addressed by node id:
//
//   - Sim adapts an existing simnet.Network. It adds nothing on top of the
//     simulator's own routing — experiments that use simnet directly stay
//     byte-identical — and exists so runtime-agnostic code (node assembly,
//     tools, tests) can be written once against the Transport interface.
//
//   - TCP carries frames over real TCP connections: each message is
//     encoded with internal/wire, length-prefixed, and written to a
//     per-peer outbound queue whose writer goroutine dials lazily,
//     redials with exponential backoff, and drains on graceful shutdown.
//     Peer addresses come from a static topology (see core.ClusterConfig).
//
// The AHL protocol family is designed for lossy, partially-synchronous
// networks — every layer retransmits with backoff — so the TCP transport
// deliberately keeps fire-and-forget semantics: a frame that cannot be
// queued or written (peer down, queue full, mid-reconnect) is dropped and
// counted, never buffered unboundedly or blocked on.
package transport
