package transport_test

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/txn"
)

// samples returns wire-registered messages readdressed from → to.
func samples(from, to simnet.NodeID) []simnet.Message {
	var out []simnet.Message
	for _, m := range append(pbft.WireSamples(), txn.WireSamples()...) {
		m.From, m.To = from, to
		out = append(out, m)
	}
	return out
}

func newPair(t *testing.T) (*transport.TCP, *transport.TCP) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a, err := transport.NewTCP(transport.TCPConfig{
		Listener: lnA,
		Peers:    map[simnet.NodeID]string{2: lnB.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := transport.NewTCP(transport.TCPConfig{
		Listener: lnB,
		Peers:    map[simnet.NodeID]string{1: lnA.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPRoundTripEveryType(t *testing.T) {
	a, b := newPair(t)
	got := make(chan simnet.Message, 64)
	b.RegisterHandler(2, func(m simnet.Message) { got <- m })

	for _, m := range samples(1, 2) {
		if err := a.Send(m); err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		select {
		case rx := <-got:
			if rx.Type != m.Type || rx.From != 1 || rx.To != 2 {
				t.Fatalf("envelope mismatch: %+v", rx)
			}
			if !reflect.DeepEqual(rx.Payload, m.Payload) {
				t.Fatalf("%s: payload mismatch over TCP", m.Type)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: timed out", m.Type)
		}
	}
	if s := a.Stats(); s.SentFrames == 0 {
		t.Fatal("sender stats not counting")
	}
	if s := b.Stats(); s.RecvFrames == 0 {
		t.Fatal("receiver stats not counting")
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newPair(t)
	gotA := make(chan simnet.Message, 8)
	gotB := make(chan simnet.Message, 8)
	a.RegisterHandler(1, func(m simnet.Message) { gotA <- m })
	b.RegisterHandler(2, func(m simnet.Message) { gotB <- m })

	msg := samples(1, 2)[0]
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	back := samples(2, 1)[0]
	if err := b.Send(back); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []chan simnet.Message{gotB, gotA} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("direction %d timed out", i)
		}
	}
}

// TestTCPReconnect kills the receiving transport and restarts it on the
// same address: the sender's per-peer writer must redial with backoff and
// deliver again without any new Transport being constructed.
func TestTCPReconnect(t *testing.T) {
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	addrB := lnB.Addr().String()
	a, err := transport.NewTCP(transport.TCPConfig{
		Listener:    lnA,
		Peers:       map[simnet.NodeID]string{2: addrB},
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b1, err := transport.NewTCP(transport.TCPConfig{Listener: lnB})
	if err != nil {
		t.Fatal(err)
	}
	got1 := make(chan simnet.Message, 1)
	b1.RegisterHandler(2, func(m simnet.Message) { got1 <- m })
	msg := samples(1, 2)[0]
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got1:
	case <-time.After(10 * time.Second):
		t.Fatal("first delivery timed out")
	}
	b1.Close()

	// Restart on the same port; keep sending until the redialed
	// connection delivers (frames sent into the outage are dropped by
	// design — the protocols retransmit, and so does this loop).
	var b2 *transport.TCP
	for i := 0; i < 50; i++ {
		b2, err = transport.NewTCP(transport.TCPConfig{Listen: addrB})
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addrB, err)
	}
	defer b2.Close()
	got2 := make(chan simnet.Message, 1)
	b2.RegisterHandler(2, func(m simnet.Message) { got2 <- m })

	deadline := time.After(15 * time.Second)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-got2:
			return
		case <-tick.C:
			a.Send(msg)
		case <-deadline:
			t.Fatalf("no delivery after restart (stats %+v)", a.Stats())
		}
	}
}

func TestTCPLocalShortCircuit(t *testing.T) {
	a, err := transport.NewTCP(transport.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got := make(chan simnet.Message, 1)
	a.RegisterHandler(7, func(m simnet.Message) { got <- m })
	m := samples(7, 7)[0]
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	select {
	case rx := <-got:
		if !reflect.DeepEqual(rx.Payload, m.Payload) {
			t.Fatal("local delivery altered payload")
		}
	default:
		t.Fatal("local delivery should be synchronous")
	}
	if err := a.Send(simnet.Message{To: 99, Type: pbft.MsgRequest}); err == nil {
		t.Fatal("unroutable destination should error")
	}
}

// TestSimAdapter shows the simulator path adds no serialization: the
// delivered payload is the identical Go value, so experiments driven
// through the adapter are byte-identical to driving simnet directly.
func TestSimAdapter(t *testing.T) {
	engine := sim.NewEngine(1)
	net := simnet.New(engine, simnet.LAN())
	tr := transport.NewSim(net)
	defer tr.Close()

	var rx simnet.Message
	tr.RegisterHandler(1, func(simnet.Message) {})
	tr.RegisterHandler(2, func(m simnet.Message) { rx = m })

	m := samples(1, 2)[3] // pre-prepare: pointer payload
	if err := tr.Send(m); err != nil {
		t.Fatal(err)
	}
	engine.RunUntilIdle()
	if rx.Type != m.Type {
		t.Fatalf("not delivered: %+v", rx)
	}
	if rx.Payload != m.Payload {
		t.Fatal("sim adapter must pass the identical payload value (no re-encoding)")
	}
	if err := tr.Send(simnet.Message{From: 99, To: 1}); err == nil {
		t.Fatal("send from unattached node should error")
	}
}
