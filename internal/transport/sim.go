package transport

import (
	"fmt"

	"repro/internal/simnet"
)

// Sim adapts a simnet.Network to the Transport interface. Messages travel
// through the simulator's own latency model, queues and fault hooks —
// nothing is re-encoded — so simulation results through the adapter are
// byte-identical to driving simnet directly.
type Sim struct {
	net *simnet.Network
}

// NewSim wraps net. The caller keeps ownership of the network and engine;
// Close is a no-op.
func NewSim(net *simnet.Network) *Sim { return &Sim{net: net} }

// Send implements Transport: the message is sent from m.From's endpoint,
// which must be attached.
func (s *Sim) Send(m simnet.Message) error {
	ep := s.net.Endpoint(m.From)
	if ep == nil {
		return fmt.Errorf("transport: sim send from unattached node %d", m.From)
	}
	ep.Send(m)
	return nil
}

// RegisterHandler implements Transport: it attaches id (if needed) and
// installs h as the endpoint handler. Messages cost no CPU service time
// on delivery; protocol stacks that model processing cost install their
// own simnet.Handler on the endpoint instead.
func (s *Sim) RegisterHandler(id simnet.NodeID, h Handler) {
	ep := s.net.Endpoint(id)
	if ep == nil {
		ep = s.net.Attach(id, simnet.DefaultSplitQueue())
	}
	ep.SetHandler(simnet.HandlerFunc{HandleFn: func(m simnet.Message) { h(m) }})
}

// Close implements Transport.
func (s *Sim) Close() error { return nil }
