package transport

import "repro/internal/simnet"

// Handler receives inbound messages addressed to one local node id. It is
// called from a transport goroutine; implementations hand the message to
// their own event loop rather than doing protocol work inline.
type Handler func(m simnet.Message)

// Transport moves protocol messages between nodes. Implementations are
// safe for concurrent use.
type Transport interface {
	// Send delivers m toward m.To. Delivery is best-effort (see package
	// comment); the error reports only local, permanent problems — an
	// unroutable destination or an unencodable message — not transient
	// network failures.
	Send(m simnet.Message) error
	// RegisterHandler binds h as the receiver for messages addressed to
	// id. Re-registering replaces the previous handler.
	RegisterHandler(id simnet.NodeID, h Handler)
	// Close shuts the transport down, flushing queued outbound frames on
	// a short deadline. After Close, Send drops everything.
	Close() error
}
