package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// maxFrame bounds one length-prefixed frame (64 MiB): large enough for a
// full state snapshot, small enough that a corrupt length prefix cannot
// make a reader allocate unboundedly.
const maxFrame = 1 << 26

// TCPConfig configures a TCP transport.
type TCPConfig struct {
	// Listen is the address to accept inbound connections on. Empty with
	// no Listener means send-only (a pure client that receives replies on
	// its own listener would instead set one of the two).
	Listen string
	// Listener optionally supplies a pre-bound listener (tests bind :0
	// themselves to learn the port before building the topology).
	Listener net.Listener
	// Peers maps remote node ids to dialable addresses. Multiple ids may
	// share an address (a process hosting several nodes); frames to them
	// share one connection and queue.
	Peers map[simnet.NodeID]string

	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// BackoffBase/BackoffMax shape the redial backoff: the delay after a
	// failed dial starts at BackoffBase and doubles up to BackoffMax
	// (defaults 100ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueLen is each peer's outbound queue capacity in frames (default
	// 1024). A full queue drops the newest frame — the protocols above
	// retransmit.
	QueueLen int
	// FlushTimeout bounds how long Close spends draining queued frames
	// (default 2s).
	FlushTimeout time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	// Operational health (queue overflows, reconnects, per-peer queue
	// depth) is exported through RegisterMetrics instead of the log.
	Logf func(format string, args ...any)
}

func (c *TCPConfig) withDefaults() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.QueueLen == 0 {
		c.QueueLen = 1024
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 2 * time.Second
	}
}

// TCPStats counts a transport's traffic.
type TCPStats struct {
	SentFrames uint64
	SentBytes  uint64
	RecvFrames uint64
	RecvBytes  uint64
	// Dropped counts frames lost locally: full queues, write failures,
	// frames for unregistered local ids, and frames discarded at close.
	Dropped uint64
	// QueueOverflows counts the subset of Dropped shed because a peer's
	// outbound queue was full — the signal that a peer is down or slow.
	QueueOverflows uint64
	// Redials counts reconnection attempts after a broken connection.
	Redials uint64
	// Reconnects counts connections successfully re-established after a
	// break or dial failure (Redials counts the attempts).
	Reconnects uint64
}

// TCP is the socket-backed Transport: internal/wire frames, length
// prefixes, one lazily-dialed connection and outbound queue per peer
// address, exponential redial backoff, and graceful shutdown.
type TCP struct {
	cfg  TCPConfig
	ln   net.Listener
	logf func(string, ...any)

	mu       sync.RWMutex
	handlers map[simnet.NodeID]Handler
	peers    map[string]*tcpPeer
	conns    map[net.Conn]bool
	shut     bool
	reg      *obs.Registry // set by RegisterMetrics; peers created later self-register

	closed chan struct{}
	wg     sync.WaitGroup

	sentFrames atomic.Uint64
	sentBytes  atomic.Uint64
	recvFrames atomic.Uint64
	recvBytes  atomic.Uint64
	dropped    atomic.Uint64
	overflows  atomic.Uint64
	redials    atomic.Uint64
	reconnects atomic.Uint64
}

type tcpPeer struct {
	addr string
	ch   chan []byte

	// overflows counts frames shed at this peer's full queue, exported as
	// transport_peer_overflows_total{peer=addr} via RegisterMetrics.
	overflows atomic.Uint64
	// hadConn marks that the write loop once held a live connection, which
	// turns the next successful dial into a reconnect (writeLoop only).
	hadConn bool
	// gen identifies the current outbound connection; dead is set by that
	// connection's EOF watchdog (see watchConn) so writeFrame redials
	// instead of writing into a kernel buffer the peer will never read.
	gen  atomic.Uint64
	dead atomic.Bool
}

// NewTCP starts a TCP transport. If cfg names a listen address (or
// supplies a listener) the accept loop starts immediately; outbound
// connections are dialed on first send to each peer.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.withDefaults()
	t := &TCP{
		cfg:      cfg,
		ln:       cfg.Listener,
		logf:     cfg.Logf,
		handlers: make(map[simnet.NodeID]Handler),
		peers:    make(map[string]*tcpPeer),
		conns:    make(map[net.Conn]bool),
		closed:   make(chan struct{}),
	}
	if t.logf == nil {
		t.logf = func(string, ...any) {}
	}
	if t.ln == nil && cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
		}
		t.ln = ln
	}
	if t.ln != nil {
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// Addr returns the actual listen address ("" when send-only); with a
// ":0" Listen address this is how callers learn the bound port.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Stats returns a snapshot of the traffic counters.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		SentFrames:     t.sentFrames.Load(),
		SentBytes:      t.sentBytes.Load(),
		RecvFrames:     t.recvFrames.Load(),
		RecvBytes:      t.recvBytes.Load(),
		Dropped:        t.dropped.Load(),
		QueueOverflows: t.overflows.Load(),
		Redials:        t.redials.Load(),
		Reconnects:     t.reconnects.Load(),
	}
}

// RegisterMetrics exports the transport's counters on reg as live func
// collectors (sampled at snapshot time, no double bookkeeping) plus a
// per-peer queue-depth gauge and overflow counter labeled by peer
// address. Peers dialed after the call register themselves as they are
// created.
func (t *TCP) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("transport_sent_frames_total", t.sentFrames.Load)
	reg.CounterFunc("transport_sent_bytes_total", t.sentBytes.Load)
	reg.CounterFunc("transport_recv_frames_total", t.recvFrames.Load)
	reg.CounterFunc("transport_recv_bytes_total", t.recvBytes.Load)
	reg.CounterFunc("transport_dropped_total", t.dropped.Load)
	reg.CounterFunc("transport_queue_overflows_total", t.overflows.Load)
	reg.CounterFunc("transport_redials_total", t.redials.Load)
	reg.CounterFunc("transport_reconnects_total", t.reconnects.Load)
	t.mu.Lock()
	t.reg = reg
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		registerPeerMetrics(reg, p)
	}
}

// registerPeerMetrics exports one peer's queue depth and overflow count.
// Queue depth reads len() on the outbound channel, which is safe from
// the snapshot goroutine.
func registerPeerMetrics(reg *obs.Registry, p *tcpPeer) {
	reg.GaugeFunc("transport_peer_queue_depth{peer=\""+p.addr+"\"}", func() int64 { return int64(len(p.ch)) })
	reg.CounterFunc("transport_peer_overflows_total{peer=\""+p.addr+"\"}", p.overflows.Load)
}

// RegisterHandler implements Transport.
func (t *TCP) RegisterHandler(id simnet.NodeID, h Handler) {
	t.mu.Lock()
	t.handlers[id] = h
	t.mu.Unlock()
}

// Send implements Transport. Frames to ids registered locally short-
// circuit to their handler without touching a socket.
func (t *TCP) Send(m simnet.Message) error {
	t.mu.RLock()
	h := t.handlers[m.To]
	shut := t.shut
	t.mu.RUnlock()
	if shut {
		t.dropped.Add(1)
		return nil
	}
	if h != nil {
		h(m)
		return nil
	}
	addr, ok := t.cfg.Peers[m.To]
	if !ok {
		return fmt.Errorf("transport: no route to node %d", m.To)
	}
	frame := make([]byte, 4, 4+256)
	frame, err := wire.EncodeMessage(frame, m)
	if err != nil {
		return err
	}
	if len(frame)-4 > maxFrame {
		return fmt.Errorf("transport: frame for node %d exceeds %d bytes", m.To, maxFrame)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	p, ok := t.peer(addr)
	if !ok { // shut down between the check above and now
		t.dropped.Add(1)
		return nil
	}
	select {
	case p.ch <- frame:
	default:
		t.noteOverflow(p) // full queue: shed, the protocol retransmits
	}
	return nil
}

// noteOverflow accounts one frame shed at a full per-peer queue. A dead
// or slow peer shows up in transport_peer_overflows_total{peer=...} (and
// in the node's periodic status line), not as per-frame log spam.
func (t *TCP) noteOverflow(p *tcpPeer) {
	t.dropped.Add(1)
	t.overflows.Add(1)
	p.overflows.Add(1)
}

func (t *TCP) peer(addr string) (*tcpPeer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shut {
		return nil, false
	}
	p := t.peers[addr]
	if p == nil {
		p = &tcpPeer{addr: addr, ch: make(chan []byte, t.cfg.QueueLen)}
		t.peers[addr] = p
		if t.reg != nil {
			registerPeerMetrics(t.reg, p)
		}
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return p, true
}

// writeLoop owns the outbound connection to one peer address.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var frame []byte
		select {
		case <-t.closed:
			t.flush(p, conn)
			return
		case frame = <-p.ch:
		}
		conn = t.writeFrame(p, conn, frame)
	}
}

// writeFrame writes one frame, dialing if necessary. It returns the live
// connection (nil after a failure; the frame is then dropped — AHL's
// retransmission layers own reliability).
func (t *TCP) writeFrame(p *tcpPeer, conn net.Conn, frame []byte) net.Conn {
	if conn != nil && p.dead.Load() {
		// The EOF watchdog saw the peer close this connection (its
		// process exited or restarted). Writing would only fill a kernel
		// buffer nobody reads — redial instead.
		conn.Close()
		conn = nil
	}
	if conn == nil {
		conn = t.dial(p.addr)
		if conn == nil {
			t.dropped.Add(1)
			return nil
		}
		if p.hadConn {
			t.reconnects.Add(1)
		}
		p.hadConn = true
		t.watchConn(p, conn)
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		// One immediate fresh dial before shedding the frame: a write
		// failure on an established connection usually means the peer
		// process restarted (its old socket is dead but its listener is
		// back), e.g. consecutive ahlctl invocations reusing one client
		// id. A single non-backoff dial re-delivers the frame in that
		// case; a peer that is genuinely gone sheds the frame as before.
		if c2 := t.dialOnce(p.addr); c2 != nil {
			t.reconnects.Add(1)
			t.watchConn(p, c2)
			c2.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err2 := c2.Write(frame); err2 == nil {
				t.sentFrames.Add(1)
				t.sentBytes.Add(uint64(len(frame)))
				return c2
			}
			c2.Close()
		}
		t.logf("transport: write %s: %v", p.addr, err)
		t.dropped.Add(1)
		return nil
	}
	t.sentFrames.Add(1)
	t.sentBytes.Add(uint64(len(frame)))
	return conn
}

// watchConn marks conn as p's current connection and starts its EOF
// watchdog: outbound connections are write-only (the peer never sends
// data back on them), so a Read can only return when the peer closes or
// resets — the watchdog then flags the connection dead so the next
// writeFrame redials immediately instead of losing a frame to the closed
// socket's kernel buffer. The generation check keeps a stale watchdog
// from condemning a successor connection.
func (t *TCP) watchConn(p *tcpPeer, conn net.Conn) {
	gen := p.gen.Add(1)
	p.dead.Store(false)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		var buf [1]byte
		conn.Read(buf[:])
		if p.gen.Load() == gen {
			p.dead.Store(true)
		}
	}()
}

// dialOnce attempts a single dial with no backoff loop; nil on failure
// or shutdown.
func (t *TCP) dialOnce(addr string) net.Conn {
	select {
	case <-t.closed:
		return nil
	default:
	}
	conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn
}

// dial connects to addr, backing off exponentially between attempts until
// it succeeds or the transport closes (then nil).
func (t *TCP) dial(addr string) net.Conn {
	backoff := t.cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		select {
		case <-t.closed:
			return nil
		default:
		}
		if attempt > 0 {
			t.redials.Add(1)
		}
		conn, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn
		}
		t.logf("transport: dial %s: %v (retry in %v)", addr, err, backoff)
		select {
		case <-t.closed:
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > t.cfg.BackoffMax {
			backoff = t.cfg.BackoffMax
		}
	}
}

// flush drains whatever is already queued at shutdown, bounded by
// FlushTimeout; frames that cannot be written in time are dropped.
func (t *TCP) flush(p *tcpPeer, conn net.Conn) {
	deadline := time.Now().Add(t.cfg.FlushTimeout)
	for {
		select {
		case frame := <-p.ch:
			if conn == nil || time.Now().After(deadline) {
				t.dropped.Add(1)
				continue
			}
			conn.SetWriteDeadline(deadline)
			if _, err := conn.Write(frame); err != nil {
				conn.Close()
				conn = nil
				t.dropped.Add(1)
				continue
			}
			t.sentFrames.Add(1)
			t.sentBytes.Add(uint64(len(frame)))
		default:
			if conn != nil {
				conn.Close()
			}
			return
		}
	}
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.shut {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readConn(conn)
	}
}

func (t *TCP) readConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			t.logf("transport: bad frame length %d from %s", n, conn.RemoteAddr())
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		m, err := wire.DecodeMessage(buf)
		if err != nil {
			// A frame that fails to decode means the stream is garbage or
			// the peer speaks another version; resynchronization is not
			// possible mid-stream, so drop the connection.
			t.logf("transport: decode from %s: %v", conn.RemoteAddr(), err)
			return
		}
		t.recvFrames.Add(1)
		t.recvBytes.Add(uint64(4 + len(buf)))
		t.mu.RLock()
		h := t.handlers[m.To]
		t.mu.RUnlock()
		if h == nil {
			t.dropped.Add(1)
			continue
		}
		h(m)
	}
}

// Close implements Transport: stop accepting, close inbound connections,
// flush outbound queues on the FlushTimeout, and wait for all goroutines.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.shut {
		t.mu.Unlock()
		return nil
	}
	t.shut = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	close(t.closed)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
