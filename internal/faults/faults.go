// Package faults is the deterministic, seed-driven fault-injection
// subsystem for the discrete-event simulator. It plugs into simnet's
// per-link fault hook (simnet.Network.SetFaults) and the engine's virtual
// clock to inject the adversarial conditions the paper's resilience
// claims are stated against (§3.3, §7):
//
//   - crash-stop and crash-recovery of individual nodes,
//   - message drop, delay and duplication at configurable per-link rates,
//   - network partitions that isolate a node group for a window,
//   - 2PC coordinator failure at configurable protocol points, via
//     message-observation triggers (e.g. "crash the sender of the first
//     txn/decide message"),
//   - Byzantine equivocation and silence, which are *behaviors* rather
//     than link faults: configure them at system build time through
//     core.Config.Behaviors / pbft.Options.Behavior; the injector's role
//     there is only the schedule around them.
//
// Every decision the injector makes is a pure function of its Config
// (seed included) and the deterministic message sequence the simulator
// routes, so a faulty run replays byte-identically: same seed, same
// faults, same outcome — the discipline the smoke-tier baselines rely
// on. The injector consumes its own rand source, never the engine's, so
// enabling it does not shift any protocol randomness.
//
// When no Injector is installed the only cost on the message path is one
// nil check in simnet.Network.route.
package faults

import (
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config sets the probabilistic per-message link faults. All rates are
// probabilities in [0, 1]; a zero rate disables that fault class and its
// random draws entirely.
type Config struct {
	// Seed drives every probabilistic decision the injector makes.
	Seed int64
	// DropRate is the probability a routed message is discarded.
	DropRate float64
	// DelayRate is the probability a message is delayed by Delay on top
	// of the modelled link latency.
	DelayRate float64
	// Delay is the extra delay for delayed messages (default 50ms).
	Delay time.Duration
	// DupRate is the probability a message is delivered twice (the copy
	// samples its own link latency).
	DupRate float64
}

// Stats counts injected faults; all counters are deterministic for a
// given (Config, simulation) pair.
type Stats struct {
	Dropped        int // messages discarded by DropRate
	Delayed        int // messages delayed by DelayRate
	Duplicated     int // messages duplicated by DupRate
	PartitionDrops int // messages discarded crossing an active partition
	Crashes        int // SetDown(true) transitions performed
	Recoveries     int // SetDown(false) transitions performed
	Triggers       int // message-observation triggers fired
}

type partition struct {
	group  map[simnet.NodeID]bool
	active bool
}

type trigger struct {
	msgType string
	fired   bool
	fn      func(m simnet.Message)
}

// Injector injects faults into one simulated network. Construct it with
// New, then declare the fault schedule (CrashFor, PartitionFor, OnFirst,
// ...) before or while the simulation runs; probabilistic link faults run
// for the injector's whole lifetime.
//
// Like everything on the simulator, an Injector is single-threaded: use
// it only from the goroutine driving the engine.
type Injector struct {
	engine *sim.Engine
	net    *simnet.Network
	cfg    Config
	rng    *rand.Rand

	parts []*partition
	trigs []*trigger

	// Stats is the running fault count, exposed for experiment tables.
	Stats Stats
}

// New builds an injector over net and installs it as the network's fault
// hook.
func New(net *simnet.Network, cfg Config) *Injector {
	if cfg.Delay == 0 {
		cfg.Delay = 50 * time.Millisecond
	}
	inj := &Injector{
		engine: net.Engine(),
		net:    net,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	net.SetFaults(inj)
	return inj
}

// OnMessage implements simnet.FaultHook. Triggers observe the message
// first (even one that is then dropped — the observation models a point
// in protocol time, not a delivery), then partitions, then the
// probabilistic link faults.
func (inj *Injector) OnMessage(m simnet.Message) simnet.FaultAction {
	for _, tg := range inj.trigs {
		if !tg.fired && tg.msgType == m.Type {
			tg.fired = true
			inj.Stats.Triggers++
			// Run as its own event so the fault lands between message
			// routings, not in the middle of one.
			mm := m
			fn := tg.fn
			inj.engine.Schedule(0, func() { fn(mm) })
		}
	}
	for _, p := range inj.parts {
		if p.active && p.group[m.From] != p.group[m.To] {
			inj.Stats.PartitionDrops++
			return simnet.FaultAction{Drop: true}
		}
	}
	var act simnet.FaultAction
	if inj.cfg.DropRate > 0 && inj.rng.Float64() < inj.cfg.DropRate {
		inj.Stats.Dropped++
		act.Drop = true
		return act
	}
	if inj.cfg.DelayRate > 0 && inj.rng.Float64() < inj.cfg.DelayRate {
		inj.Stats.Delayed++
		act.Delay = inj.cfg.Delay
	}
	if inj.cfg.DupRate > 0 && inj.rng.Float64() < inj.cfg.DupRate {
		inj.Stats.Duplicated++
		act.Duplicates = 1
	}
	return act
}

// --- crash-stop / crash-recovery ---

// Down crashes node now.
func (inj *Injector) Down(node simnet.NodeID) {
	ep := inj.net.Endpoint(node)
	if ep != nil && !ep.Down() {
		inj.Stats.Crashes++
		ep.SetDown(true)
	}
}

// Up recovers node now.
func (inj *Injector) Up(node simnet.NodeID) {
	ep := inj.net.Endpoint(node)
	if ep != nil && ep.Down() {
		inj.Stats.Recoveries++
		ep.SetDown(false)
	}
}

// CrashAfter crashes node after virtual duration d from now (crash-stop:
// it never recovers unless RecoverAfter or Up is also scheduled).
func (inj *Injector) CrashAfter(node simnet.NodeID, d time.Duration) {
	inj.engine.Schedule(d, func() { inj.Down(node) })
}

// RecoverAfter brings node back after virtual duration d from now.
func (inj *Injector) RecoverAfter(node simnet.NodeID, d time.Duration) {
	inj.engine.Schedule(d, func() { inj.Up(node) })
}

// CrashFor crashes node after `after` for `outage` (crash-recovery).
func (inj *Injector) CrashFor(node simnet.NodeID, after, outage time.Duration) {
	inj.CrashAfter(node, after)
	inj.RecoverAfter(node, after+outage)
}

// --- partitions ---

// PartitionFor isolates group from the rest of the network between
// virtual times now+after and now+after+dur: messages crossing the cut
// (either direction) are dropped; traffic within the group and within
// the remainder flows normally. A dur <= 0 partitions forever.
func (inj *Injector) PartitionFor(group []simnet.NodeID, after, dur time.Duration) {
	set := make(map[simnet.NodeID]bool, len(group))
	for _, n := range group {
		set[n] = true
	}
	p := &partition{group: set}
	inj.parts = append(inj.parts, p)
	inj.engine.Schedule(after, func() { p.active = true })
	if dur > 0 {
		inj.engine.Schedule(after+dur, func() { p.active = false })
	}
}

// --- protocol-point triggers ---

// OnFirst runs fn (as its own engine event) when the first message of the
// given type is routed. This is how faults land at configurable protocol
// points: e.g. OnFirst(txn.MsgDecide, ...) fires exactly when the 2PC
// coordinator announces its first decision.
func (inj *Injector) OnFirst(msgType string, fn func(m simnet.Message)) {
	inj.trigs = append(inj.trigs, &trigger{msgType: msgType, fn: fn})
}

// CrashSenderOnFirst crashes the sender of the first message of the given
// type, recovering it after `outage` (0 = crash-stop). The canonical use
// is 2PC coordinator failure: the reference replica that first emits a
// prepare (or decide) dies at that exact protocol point.
func (inj *Injector) CrashSenderOnFirst(msgType string, outage time.Duration) {
	inj.OnFirst(msgType, func(m simnet.Message) {
		inj.Down(m.From)
		if outage > 0 {
			inj.engine.Schedule(outage, func() { inj.Up(m.From) })
		}
	})
}
