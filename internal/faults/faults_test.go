package faults

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// harness is a two-node network with a counting receiver on node 1.
type harness struct {
	engine *sim.Engine
	net    *simnet.Network
	a, b   *simnet.Endpoint
	got    int
}

func newHarness(seed int64) *harness {
	h := &harness{engine: sim.NewEngine(seed)}
	h.net = simnet.New(h.engine, simnet.LAN())
	h.a = h.net.Attach(0, simnet.DefaultSplitQueue())
	h.b = h.net.Attach(1, simnet.DefaultSplitQueue())
	noop := simnet.HandlerFunc{HandleFn: func(simnet.Message) {}}
	h.a.SetHandler(noop)
	h.b.SetHandler(simnet.HandlerFunc{HandleFn: func(simnet.Message) { h.got++ }})
	return h
}

func (h *harness) send(n int) {
	for i := 0; i < n; i++ {
		h.engine.Schedule(time.Duration(i)*time.Millisecond, func() {
			h.a.Send(simnet.Message{To: 1, Class: simnet.ClassConsensus, Type: "t", Size: 100})
		})
	}
	h.engine.RunUntilIdle()
}

func TestInjectorDeterministicReplay(t *testing.T) {
	run := func() (Stats, int, uint64) {
		h := newHarness(3)
		inj := New(h.net, Config{Seed: 7, DropRate: 0.2, DelayRate: 0.1, DupRate: 0.1})
		h.send(1000)
		return inj.Stats, h.got, h.engine.Executed
	}
	s1, got1, ev1 := run()
	s2, got2, ev2 := run()
	if s1 != s2 || got1 != got2 || ev1 != ev2 {
		t.Fatalf("replay diverged: %+v/%d/%d vs %+v/%d/%d", s1, got1, ev1, s2, got2, ev2)
	}
	if s1.Dropped == 0 || s1.Delayed == 0 || s1.Duplicated == 0 {
		t.Fatalf("expected every fault class to fire at 1000 messages: %+v", s1)
	}
	if got1 != 1000-s1.Dropped+s1.Duplicated {
		t.Fatalf("delivered %d, want %d sent - %d dropped + %d duplicated",
			got1, 1000, s1.Dropped, s1.Duplicated)
	}
}

func TestInjectorDisabledIsTransparent(t *testing.T) {
	h := newHarness(3)
	inj := New(h.net, Config{Seed: 7}) // all rates zero
	h.send(200)
	if h.got != 200 {
		t.Fatalf("delivered %d of 200 with a disabled injector", h.got)
	}
	if inj.Stats != (Stats{}) {
		t.Fatalf("disabled injector recorded faults: %+v", inj.Stats)
	}
}

func TestPartitionWindowDropsCrossTraffic(t *testing.T) {
	h := newHarness(3)
	inj := New(h.net, Config{Seed: 1})
	inj.PartitionFor([]simnet.NodeID{0}, 100*time.Millisecond, 400*time.Millisecond)
	// 10 messages at 0..9ms (pre-partition), 10 at 200..209ms (inside),
	// 10 at 600..609ms (healed).
	for _, base := range []time.Duration{0, 200 * time.Millisecond, 600 * time.Millisecond} {
		for i := 0; i < 10; i++ {
			h.engine.Schedule(base+time.Duration(i)*time.Millisecond, func() {
				h.a.Send(simnet.Message{To: 1, Class: simnet.ClassConsensus, Type: "t", Size: 10})
			})
		}
	}
	h.engine.RunUntilIdle()
	if h.got != 20 {
		t.Fatalf("delivered %d, want 20 (10 dropped inside the partition window)", h.got)
	}
	if inj.Stats.PartitionDrops != 10 {
		t.Fatalf("PartitionDrops = %d, want 10", inj.Stats.PartitionDrops)
	}
}

func TestCrashForRecoversNode(t *testing.T) {
	h := newHarness(3)
	inj := New(h.net, Config{Seed: 1})
	inj.CrashFor(1, 50*time.Millisecond, 100*time.Millisecond)
	transitions := []bool{}
	h.b.OnDownChange(func(down bool) { transitions = append(transitions, down) })
	for _, at := range []time.Duration{10 * time.Millisecond, 80 * time.Millisecond, 300 * time.Millisecond} {
		h.engine.Schedule(at, func() {
			h.a.Send(simnet.Message{To: 1, Class: simnet.ClassConsensus, Type: "t", Size: 10})
		})
	}
	h.engine.RunUntilIdle()
	if h.got != 2 {
		t.Fatalf("delivered %d, want 2 (the 80ms message hits the outage)", h.got)
	}
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("down transitions = %v, want [true false]", transitions)
	}
	if inj.Stats.Crashes != 1 || inj.Stats.Recoveries != 1 {
		t.Fatalf("stats = %+v, want one crash and one recovery", inj.Stats)
	}
}

func TestOnFirstFiresOncePerType(t *testing.T) {
	h := newHarness(3)
	inj := New(h.net, Config{Seed: 1})
	fired := 0
	var from simnet.NodeID = -1
	inj.OnFirst("t", func(m simnet.Message) { fired++; from = m.From })
	h.send(50)
	if fired != 1 {
		t.Fatalf("trigger fired %d times, want 1", fired)
	}
	if from != 0 {
		t.Fatalf("trigger saw sender %d, want 0", from)
	}
	if inj.Stats.Triggers != 1 {
		t.Fatalf("Stats.Triggers = %d, want 1", inj.Stats.Triggers)
	}
}

func TestCrashSenderOnFirst(t *testing.T) {
	h := newHarness(3)
	inj := New(h.net, Config{Seed: 1})
	inj.CrashSenderOnFirst("t", 30*time.Millisecond)
	h.send(5)
	// The first send fires the trigger; the crash lands as its own event,
	// so the sender is down for subsequent sends until recovery. All five
	// sends happen within 5ms < 30ms outage, so only the first leaves.
	if h.got != 1 {
		t.Fatalf("delivered %d, want 1 (sender crashed after its first message)", h.got)
	}
	if h.a.Down() {
		t.Fatal("sender still down after outage elapsed")
	}
}
