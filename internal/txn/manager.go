package txn

import (
	"strconv"
	"time"

	"repro/internal/chain"
	"repro/internal/consensus"
	"repro/internal/consensus/pbft"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The transaction manager is the glue of Figure 5: it runs on every
// replica (of the reference committee and of each tx-committee), watches
// its replica's executed blocks, and drives the committee-to-committee
// message flow. Because individual nodes can be Byzantine, a manager acts
// on a cross-committee message only after receiving matching copies from
// f+1 distinct members of the sending committee — at least one of which is
// honest.
//
// Flow (paper §6.2):
//
//  1. Client sends a refcom `begin` request to R.
//  2. When an R replica executes the begin, its manager sends PrepareTx to
//     every node of every involved tx-committee (phase 1a).
//  3. A tx-committee replica that has f_R+1 matching PrepareTx messages
//     injects the prepare invocation into its shard's consensus; executing
//     it acquires the 2PL locks. Its manager then reports PrepareOK or
//     PrepareNotOK to every R node (phase 1b).
//  4. An R replica with f_shard+1 matching votes injects a refcom `vote`;
//     the replicated state machine decrements c / aborts (Figure 6).
//  5. When the state machine reaches Committed or Aborted, R managers send
//     CommitTx/AbortTx to the tx-committees (phase 2), which inject the
//     commit/abort invocation, applying or discarding the staged writes
//     and releasing locks. The client is notified of the outcome.

// Message types.
const (
	MsgPrepare = "txn/prepare" // R -> shard: PrepareTx (carries the DTx)
	MsgVote    = "txn/vote"    // shard -> R: PrepareOK / PrepareNotOK
	MsgDecide  = "txn/decide"  // R -> shard: CommitTx / AbortTx
	MsgOutcome = "txn/outcome" // R -> client
	MsgStatus  = "txn/status"  // client -> R: outcome query (crash recovery)
)

type prepareMsg struct {
	TxID string
	DTx  string // encoded DTx
}

type voteNetMsg struct {
	TxID  string
	Shard int
	OK    bool
}

type decideMsg struct {
	TxID   string
	Commit bool
}

// statusQueryMsg asks a reference replica for a transaction's outcome.
// Clients send it while retrying a begin: outcome notifications are sent
// once per replica, so a client that missed them (crashed coordinator
// target, dropped outcome messages) needs a way to re-learn the decision.
type statusQueryMsg struct {
	TxID string
}

// OutcomeMsg notifies the client of a transaction's fate.
type OutcomeMsg struct {
	TxID      string
	Committed bool
}

// Topology describes the deployment the managers operate in.
type Topology struct {
	// RefNodes are the reference committee members; RefF its tolerance.
	// When RefGroups is set these describe group 0 and are kept for the
	// common single-instance deployment.
	RefNodes []simnet.NodeID
	RefF     int
	// RefGroups optionally runs multiple reference committee instances in
	// parallel (§6.2 scale-out); RefGroupFs are the per-group tolerances.
	// Each distributed transaction is coordinated by exactly one group
	// (see GroupForTx).
	RefGroups  [][]simnet.NodeID
	RefGroupFs []int
	// ShardNodes[i] are shard i's committee members; ShardF[i] its
	// tolerance.
	ShardNodes [][]simnet.NodeID
	ShardF     []int
}

func (t Topology) isRefNode(id simnet.NodeID) bool {
	for g := 0; g < t.NumRefGroups(); g++ {
		if t.isRefGroupNode(g, id) {
			return true
		}
	}
	return false
}

func (t Topology) isShardNode(shard int, id simnet.NodeID) bool {
	if shard < 0 || shard >= len(t.ShardNodes) {
		return false
	}
	for _, n := range t.ShardNodes[shard] {
		if n == id {
			return true
		}
	}
	return false
}

// Role selects the manager's behavior.
type Role int

// Manager roles.
const (
	RoleReference Role = iota
	RoleShard
)

// Manager wraps one replica's endpoint handler with the Figure 5 logic.
// For RoleShard managers, shardID is the shard the replica serves; for
// RoleReference managers it is the reference group index the replica
// belongs to (0 in single-instance deployments).
type Manager struct {
	role    Role
	shardID int
	topo    Topology
	replica *pbft.Replica
	ep      *simnet.Endpoint
	inner   simnet.Handler

	// Shard-side quorum buffers.
	prepareFrom map[string]map[simnet.NodeID]bool
	prepareDTx  map[string]DTx
	decideFrom  map[string]map[simnet.NodeID]bool // key txid+"/"+decision
	decided     map[string]bool                   // quorum-backed decision (txid -> commit)
	decideInj   map[string]bool                   // decide invocation injected into consensus
	injectedTx  map[uint64]kindRef                // chain tx id -> protocol step
	voted       map[string]*voteNetMsg            // my vote, until the decide executes
	voteRetry   map[string]*retrySched            // vote retransmission schedule
	done        map[string]bool                   // phase 2 executed here

	// Reference-side quorum buffers.
	voteFrom  map[string]map[simnet.NodeID]bool // key txid/shard/ok
	announced map[string]bool                   // decided txids already broadcast
	// pending tracks the transactions this replica coordinates that are
	// still undecided, with their retransmission schedule; the retry timer
	// rebroadcasts PrepareTx for entries whose next retry time has come.
	pending map[string]*retrySched
	retry   *retryTimer

	// Durability (see durable.go); nil/empty in the simulator.
	durable      storage.Backend
	injectedBody map[uint64]chain.Tx // injected-step bodies for resubmission

	// Observability (see obs.go); nil when the replica has no obs.Hub.
	met *txnMetrics
}

// retrySched is one transaction's retransmission state under bounded
// exponential backoff.
type retrySched struct {
	next     sim.Time // earliest time the next retransmission may go out
	attempts int      // retransmissions performed so far
}

// boundedBackoff returns base doubled per attempt, capped at max — the
// shared retransmission backoff for managers and client gateways.
func boundedBackoff(base, max time.Duration, attempts int) time.Duration {
	d := base
	for i := 0; i < attempts && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// retryInterval is the paper's partial-synchrony loop ("messages sent
// repeatedly with a finite time-out will eventually be received", §3.3)
// made concrete. Both sides retransmit only for transactions stuck longer
// than this, so a healthy run pays nothing:
//
//   - reference replicas rebroadcast PrepareTx for undecided transactions
//     (lost prepares; a shard that already voted answers a duplicate
//     prepare by re-sending its vote);
//   - shard replicas re-send their vote while phase 2 has not executed
//     (lost votes — and lost decisions, because a reference replica
//     answers a vote for a decided transaction by re-sending the
//     decision).
//
// Each retransmission doubles a transaction's next interval up to
// maxRetryInterval. Without the cap-bounded backoff, a transaction whose
// counterparty is dead or partitioned away would be retransmitted at the
// full 1/retryInterval rate forever — a retry storm growing linearly with
// stuck transactions; with it, a stuck transaction costs O(log) messages
// to reach the cap and one message per maxRetryInterval thereafter, while
// liveness under partial synchrony is preserved (retries never stop).
const retryInterval = 10 * time.Second

// maxRetryInterval caps the exponential retransmission backoff.
const maxRetryInterval = 160 * time.Second

// retryBackoff returns the interval to wait after the given number of
// retransmissions: retryInterval doubled per attempt, capped.
func retryBackoff(attempts int) time.Duration {
	return boundedBackoff(retryInterval, maxRetryInterval, attempts)
}

type kindRef struct {
	txid string
	kind string // "prepare" | "commit" | "abort"
}

// NewManager wraps replica (which must already be attached as its
// endpoint's handler). role/shardID identify the committee it serves.
func NewManager(role Role, shardID int, topo Topology, replica *pbft.Replica) *Manager {
	m := &Manager{
		role:        role,
		shardID:     shardID,
		topo:        topo,
		replica:     replica,
		ep:          replica.Endpoint(),
		inner:       replica,
		prepareFrom: make(map[string]map[simnet.NodeID]bool),
		prepareDTx:  make(map[string]DTx),
		decideFrom:  make(map[string]map[simnet.NodeID]bool),
		decided:     make(map[string]bool),
		decideInj:   make(map[string]bool),
		injectedTx:  make(map[uint64]kindRef),
		voted:       make(map[string]*voteNetMsg),
		voteRetry:   make(map[string]*retrySched),
		done:        make(map[string]bool),
		voteFrom:    make(map[string]map[simnet.NodeID]bool),
		announced:   make(map[string]bool),
		pending:     make(map[string]*retrySched),
	}
	m.retry = newRetryTimer(replica.Engine(), m.retryTick)
	m.enableObs()
	m.ep.SetHandler(m)
	m.ep.OnDownChange(m.onDownChange)
	replica.OnExecute(m.onExecute)
	return m
}

// onDownChange quiesces the retransmission loop while the replica is
// crashed (its sends would be discarded anyway) and resumes it on
// recovery.
func (m *Manager) onDownChange(down bool) {
	if down {
		m.retry.stop()
		return
	}
	m.armRetry()
}

// Cost implements simnet.Handler.
func (m *Manager) Cost(msg simnet.Message) time.Duration {
	switch msg.Type {
	case MsgPrepare, MsgVote, MsgDecide:
		return 100 * time.Microsecond
	case MsgStatus:
		return 10 * time.Microsecond
	default:
		return m.inner.Cost(msg)
	}
}

// Handle implements simnet.Handler.
func (m *Manager) Handle(msg simnet.Message) {
	switch msg.Type {
	case MsgPrepare:
		m.handlePrepare(msg)
	case MsgVote:
		m.handleVote(msg)
	case MsgDecide:
		m.handleDecide(msg)
	case MsgStatus:
		m.handleStatus(msg)
	default:
		m.inner.Handle(msg)
	}
}

// handleStatus answers a client's outcome query for a decided
// transaction; undecided queries are silently ignored (the client keeps
// retrying under backoff).
func (m *Manager) handleStatus(msg simnet.Message) {
	if m.role != RoleReference {
		return
	}
	q := msg.Payload.(*statusQueryMsg)
	if m.topo.GroupForTx(q.TxID) != m.shardID {
		return
	}
	status := StatusOf(m.replica.Store(), q.TxID)
	if !status.Terminal() {
		return
	}
	out := OutcomeMsg{TxID: q.TxID, Committed: status == StatusCommitted}
	m.ep.Send(simnet.Message{To: msg.From, Class: simnet.ClassConsensus,
		Type: MsgOutcome, Payload: out, Size: wire.PayloadSize(MsgOutcome, out)})
}

// --- shard side ---

func (m *Manager) handlePrepare(msg simnet.Message) {
	if m.role != RoleShard {
		return
	}
	p := msg.Payload.(*prepareMsg)
	// Only the transaction's coordinating group may drive it; prepares
	// from any other reference node (or a Byzantine impostor) are ignored.
	group := m.topo.GroupForTx(p.TxID)
	if !m.topo.isRefGroupNode(group, msg.From) {
		return
	}
	_, groupF := m.topo.RefGroup(group)
	from := m.prepareFrom[p.TxID]
	if from == nil {
		from = make(map[simnet.NodeID]bool)
		m.prepareFrom[p.TxID] = from
	}
	if from[msg.From] {
		// A RETRANSMITTED PrepareTx (duplicate sender) for a transaction
		// we already voted on means the coordinator may have missed our
		// vote: resend it. First-time prepares from further senders are
		// the healthy path and need no answer.
		if v := m.voted[p.TxID]; v != nil {
			m.sendVote(v)
		}
		return
	}
	from[msg.From] = true
	if _, known := m.prepareDTx[p.TxID]; !known {
		if d, err := DecodeDTx(p.DTx); err == nil {
			m.prepareDTx[p.TxID] = d
			m.stageWriteDTx(p.TxID, p.DTx)
			// A decide quorum may have formed before we learned the DTx
			// (possible when this replica missed the original prepares):
			// the phase-2 injection was deferred until now.
			m.maybeInjectDecide(p.TxID)
		}
	}
	// Fire at and beyond the quorum: consensus deduplicates the injected
	// transaction by its derived id, so re-triggering on late senders is
	// harmless and re-heals a lost injection.
	if len(from) >= groupF+1 {
		m.injectPrepare(p.TxID)
	}
}

func (m *Manager) injectPrepare(txid string) {
	d, ok := m.prepareDTx[txid]
	if !ok {
		return
	}
	if t := m.met; t != nil {
		if _, seen := t.prepInjAt[txid]; !seen {
			t.prepInjAt[txid] = t.hub.Now()
			t.hub.RecordKey(t.node, obs.Stage2PCPrepare, txid, 0)
		}
		m.obsArmProbe()
	}
	for _, op := range d.Ops {
		if op.Shard != m.shardID {
			continue
		}
		id := DeriveTxID(txid, "prepare", strconv.Itoa(m.shardID), op.Fn)
		m.inject(id, kindRef{txid: txid, kind: "prepare"}, chain.Tx{
			ID: id, Chaincode: d.Chaincode, Fn: op.Fn, Args: op.Args,
		})
	}
}

// inject registers the manager's interest in a protocol step and submits
// it to the shard's consensus. If consensus already executed an identical
// injection from a faster peer — possible when this replica's own copies
// of the triggering messages were delayed past the commit — the missed
// execution callback is replayed instead, so the replica still votes /
// marks phase 2 done. Without this, a replica that executes a step it
// has not yet registered stays silent on it forever (the shard can then
// fall short of its vote quorum and wedge the transaction).
func (m *Manager) inject(id uint64, ref kindRef, tx chain.Tx) {
	if _, dup := m.injectedTx[id]; dup {
		return
	}
	m.injectedTx[id] = ref
	m.stageWriteInjected(id, ref, tx)
	if ok, executed := m.replica.ExecutedOK(id); executed {
		m.onShardExecuted(tx, ok)
		return
	}
	m.replica.SubmitLocal(tx)
}

func (m *Manager) handleDecide(msg simnet.Message) {
	if m.role != RoleShard {
		return
	}
	dec := msg.Payload.(*decideMsg)
	group := m.topo.GroupForTx(dec.TxID)
	if !m.topo.isRefGroupNode(group, msg.From) {
		return
	}
	// Phase 2 already executed here: nothing left to do.
	if m.done[dec.TxID] {
		return
	}
	_, groupF := m.topo.RefGroup(group)
	key := dec.TxID + "/" + strconv.FormatBool(dec.Commit)
	from := m.decideFrom[key]
	if from == nil {
		from = make(map[simnet.NodeID]bool)
		m.decideFrom[key] = from
	}
	if from[msg.From] {
		// Retransmitted decide: the injection may have been deferred for a
		// missing DTx that has arrived since — re-attempt it.
		m.maybeInjectDecide(dec.TxID)
		return
	}
	from[msg.From] = true
	if len(from) < groupF+1 {
		return
	}
	if _, known := m.decided[dec.TxID]; !known {
		m.decided[dec.TxID] = dec.Commit
		m.stageWriteDecided(dec.TxID, dec.Commit)
	}
	m.maybeInjectDecide(dec.TxID)
}

// maybeInjectDecide injects the phase-2 commit/abort invocation once (a)
// a quorum-backed decision is known and (b) the transaction description
// is known. Decoupling the two closes a dangling-lock window the fault
// injector surfaced: if every decide arrives before the DTx (all its
// senders then being duplicate-filtered), a manager that gated injection
// on the DTx being present at quorum time would drop phase 2 on the
// floor, leaving the shard's 2PL locks held forever.
func (m *Manager) maybeInjectDecide(txid string) {
	commit, ok := m.decided[txid]
	if !ok || m.done[txid] || m.decideInj[txid] {
		return
	}
	d, ok := m.prepareDTx[txid]
	if !ok {
		return
	}
	m.decideInj[txid] = true
	if t := m.met; t != nil {
		t.decInjAt[txid] = t.hub.Now()
		t.hub.RecordKey(t.node, obs.Stage2PCDecide, txid, 0)
	}
	fn, kind := d.CommitFn, "commit"
	if !commit {
		fn, kind = d.AbortFn, "abort"
	}
	id := DeriveTxID(txid, kind, strconv.Itoa(m.shardID))
	m.inject(id, kindRef{txid: txid, kind: kind}, chain.Tx{
		ID: id, Chaincode: d.Chaincode, Fn: fn, Args: []string{txid},
	})
}

// --- reference side ---

func (m *Manager) handleVote(msg simnet.Message) {
	if m.role != RoleReference {
		return
	}
	v := msg.Payload.(*voteNetMsg)
	if !m.topo.isShardNode(v.Shard, msg.From) {
		return
	}
	// Votes for transactions coordinated by another group are not ours to
	// count.
	if m.topo.GroupForTx(v.TxID) != m.shardID {
		return
	}
	key := v.TxID + "/" + strconv.Itoa(v.Shard) + "/" + strconv.FormatBool(v.OK)
	from := m.voteFrom[key]
	if from == nil {
		from = make(map[simnet.NodeID]bool)
		m.voteFrom[key] = from
	}
	if from[msg.From] {
		// A RETRANSMITTED vote (duplicate sender) for an already-decided
		// transaction means that shard may have missed the decision:
		// resend it. Late first-time votes are the healthy path.
		if m.announced[v.TxID] {
			if status := StatusOf(m.replica.Store(), v.TxID); status.Terminal() {
				dec := &decideMsg{TxID: v.TxID, Commit: status == StatusCommitted}
				size := wire.PayloadSize(MsgDecide, dec)
				for _, node := range m.topo.ShardNodes[v.Shard] {
					m.ep.Send(simnet.Message{To: node, Class: simnet.ClassConsensus,
						Type: MsgDecide, Payload: dec, Size: size})
				}
			}
		}
		return
	}
	from[msg.From] = true
	if len(from) < m.topo.ShardF[v.Shard]+1 {
		return
	}
	okArg := "notok"
	if v.OK {
		okArg = "ok"
	}
	id := DeriveTxID(v.TxID, "vote", strconv.Itoa(v.Shard), okArg)
	m.replica.SubmitLocal(chain.Tx{
		ID: id, Chaincode: "refcom", Fn: "vote",
		Args: []string{v.TxID, strconv.Itoa(v.Shard), okArg},
	})
}

// --- execution watching ---

func (m *Manager) onExecute(ev consensus.BlockEvent) {
	for _, res := range ev.Results {
		switch m.role {
		case RoleReference:
			m.onRefExecuted(res.Tx, res.OK())
		case RoleShard:
			m.onShardExecuted(res.Tx, res.OK())
		}
	}
}

func (m *Manager) onRefExecuted(tx chain.Tx, ok bool) {
	if tx.Chaincode != "refcom" || !ok {
		return
	}
	switch tx.Fn {
	case "begin":
		txid := tx.Args[0]
		// A begin mis-routed to the wrong group (only a faulty client does
		// this) is recorded in our ledger but never driven: the shards
		// would discard our prepares anyway.
		if m.topo.GroupForTx(txid) != m.shardID {
			return
		}
		d, found := DTxOf(m.replica.Store(), txid)
		if !found {
			return
		}
		next := m.replica.Engine().Now().Add(retryInterval)
		m.pending[txid] = &retrySched{next: next}
		if t := m.met; t != nil {
			t.beginAt[txid] = t.hub.Now()
			t.hub.RecordKey(t.node, obs.Stage2PCBegin, txid, int64(len(d.Shards())))
		}
		m.sendPrepares(txid, d)
		m.scheduleRetry(next)
	case "vote":
		txid := tx.Args[0]
		if m.topo.GroupForTx(txid) != m.shardID {
			return
		}
		status := StatusOf(m.replica.Store(), txid)
		if !status.Terminal() || m.announced[txid] {
			return
		}
		m.announced[txid] = true
		delete(m.pending, txid)
		if t := m.met; t != nil {
			committed := status == StatusCommitted
			if committed {
				t.commits.Inc()
			} else {
				t.aborts.Inc()
			}
			if at, seen := t.beginAt[txid]; seen {
				t.commitLatency.Observe(t.hub.Now() - at)
			}
			t.hub.RecordKey(t.node, obs.Stage2PCDone, txid, boolArg(committed))
			t.forget(txid)
		}
		d, found := DTxOf(m.replica.Store(), txid)
		if !found {
			return
		}
		dec := &decideMsg{TxID: txid, Commit: status == StatusCommitted}
		size := wire.PayloadSize(MsgDecide, dec)
		for _, shard := range d.Shards() {
			if !m.shardInRange(shard) {
				continue
			}
			for _, node := range m.topo.ShardNodes[shard] {
				m.ep.Send(simnet.Message{To: node, Class: simnet.ClassConsensus,
					Type: MsgDecide, Payload: dec, Size: size})
			}
		}
		if d.Client != 0 {
			out := OutcomeMsg{TxID: txid, Committed: dec.Commit}
			m.ep.Send(simnet.Message{To: d.Client, Class: simnet.ClassConsensus,
				Type: MsgOutcome, Payload: out, Size: wire.PayloadSize(MsgOutcome, out)})
		}
	}
}

func (m *Manager) onShardExecuted(tx chain.Tx, ok bool) {
	ref, mine := m.injectedTx[tx.ID]
	if !mine {
		return
	}
	switch ref.kind {
	case "prepare":
		// Executing the prepare is the moment the 2PL locks land (whatever
		// happens to them next), so the lock-wait histogram closes here.
		if t := m.met; t != nil {
			now := t.hub.Now()
			if at, seen := t.prepInjAt[ref.txid]; seen {
				t.prepareWait.Observe(now - at)
			}
			if _, seen := t.prepExecAt[ref.txid]; !seen {
				t.prepExecAt[ref.txid] = now
			}
			t.hub.RecordKey(t.node, obs.Stage2PCVote, ref.txid, boolArg(ok))
		}
		if m.done[ref.txid] {
			// The prepare was ordered behind the decision it belongs to
			// (phase 2 already executed here — only possible for aborts,
			// decided by another shard's NotOK before our prepare ran).
			// Its effects — 2PL locks and staged writes — landed *after*
			// the abort released them, so without a cleanup they dangle
			// forever: the coordinator considers the transaction finished
			// and will never send another decide. Re-inject the abort
			// under a distinct derived id; every honest replica of this
			// shard observes the same execution order and injects the
			// identical transaction, so consensus orders exactly one
			// cleanup.
			m.injectLateCleanup(ref.txid)
			return
		}
		if _, dec := m.decided[ref.txid]; dec {
			// Decision already known (phase 2 injected, not yet executed):
			// the vote is moot and phase 2 will release what this prepare
			// just acquired.
			return
		}
		v := &voteNetMsg{TxID: ref.txid, Shard: m.shardID, OK: ok}
		m.voted[ref.txid] = v
		next := m.replica.Engine().Now().Add(retryInterval)
		m.voteRetry[ref.txid] = &retrySched{next: next}
		m.sendVote(v)
		m.scheduleRetry(next)
	case "commit", "abort":
		// Phase 2 executed: the transaction is finished on this shard and
		// the vote no longer needs retransmitting.
		delete(m.voted, ref.txid)
		delete(m.voteRetry, ref.txid)
		m.done[ref.txid] = true
		if _, known := m.decided[ref.txid]; !known {
			m.decided[ref.txid] = ref.kind == "commit"
		}
		if t := m.met; t != nil {
			now := t.hub.Now()
			if at, seen := t.prepExecAt[ref.txid]; seen {
				t.lockHold.Observe(now - at)
			}
			if at, seen := t.decInjAt[ref.txid]; seen {
				t.decideWait.Observe(now - at)
			}
			t.hub.RecordKey(t.node, obs.Stage2PCDone, ref.txid, boolArg(ref.kind == "commit"))
			t.forget(ref.txid)
		}
	}
}

// injectLateCleanup re-injects phase 2 for a transaction whose prepare
// executed after its decision (see onShardExecuted). The derived id is
// distinct from the original decide injection, which consensus already
// executed.
func (m *Manager) injectLateCleanup(txid string) {
	d, ok := m.prepareDTx[txid]
	if !ok {
		return
	}
	fn, kind := d.AbortFn, "abort"
	if m.decided[txid] {
		fn, kind = d.CommitFn, "commit"
	}
	id := DeriveTxID(txid, kind, strconv.Itoa(m.shardID), "late")
	m.inject(id, kindRef{txid: txid, kind: kind}, chain.Tx{
		ID: id, Chaincode: d.Chaincode, Fn: fn, Args: []string{txid},
	})
}

// sendPrepares transmits PrepareTx for txid to every replica of every
// involved tx-committee. Shard indices come from a client-encoded DTx —
// remotely supplied in the live runtime — so out-of-range ops are
// skipped rather than trusted (their transaction can then never gather
// the missing vote and aborts at the protocol level, which is the right
// fate for a malformed DTx).
func (m *Manager) sendPrepares(txid string, d DTx) {
	p := &prepareMsg{TxID: txid, DTx: d.Encode()}
	size := wire.PayloadSize(MsgPrepare, p)
	for _, shard := range d.Shards() {
		if !m.shardInRange(shard) {
			continue
		}
		for _, node := range m.topo.ShardNodes[shard] {
			m.ep.Send(simnet.Message{To: node, Class: simnet.ClassConsensus,
				Type: MsgPrepare, Payload: p, Size: size})
		}
	}
}

// shardInRange reports whether shard names a committee in the topology.
func (m *Manager) shardInRange(shard int) bool {
	return shard >= 0 && shard < len(m.topo.ShardNodes)
}

// scheduleRetry makes the retry timer fire no later than `at` — the O(1)
// per-transaction registration path.
func (m *Manager) scheduleRetry(at sim.Time) {
	if m.ep.Down() {
		return
	}
	m.retry.ensure(at)
}

// armRetry rescans the retransmission schedules and arms the timer for
// the earliest one (or stops it when nothing is pending). Called once
// per timer firing and on crash recovery — the per-transaction hot path
// uses scheduleRetry instead.
func (m *Manager) armRetry() {
	if m.ep.Down() {
		return
	}
	var earliest sim.Time
	found := false
	// Min over map values is order-independent, so plain iteration here
	// cannot break determinism.
	for _, st := range m.pending {
		if !found || st.next < earliest {
			earliest, found = st.next, true
		}
	}
	for _, st := range m.voteRetry {
		if !found || st.next < earliest {
			earliest, found = st.next, true
		}
	}
	m.retry.rearm(earliest, found)
}

// retryTick retransmits only for transactions whose backoff interval has
// fully elapsed, so the healthy path never generates extra traffic and a
// stuck transaction's traffic decays to one send per maxRetryInterval.
func (m *Manager) retryTick() {
	// Retransmissions schedule network events, so both maps are walked in
	// sorted txid order — map-order iteration here would break the
	// simulator's run-to-run determinism.
	now := m.replica.Engine().Now()
	for _, txid := range sortedKeys(m.pending) {
		st := m.pending[txid]
		if now < st.next {
			continue
		}
		if StatusOf(m.replica.Store(), txid).Terminal() {
			delete(m.pending, txid)
			continue
		}
		if d, ok := DTxOf(m.replica.Store(), txid); ok {
			if m.met != nil {
				m.met.retryPrepares.Inc()
			}
			m.sendPrepares(txid, d)
		}
		st.attempts++
		st.next = now.Add(retryBackoff(st.attempts))
	}
	for _, txid := range sortedKeys(m.voteRetry) {
		st := m.voteRetry[txid]
		if now < st.next {
			continue
		}
		if v := m.voted[txid]; v != nil {
			// Still no decision: the vote (or the decision) was lost. A
			// reference replica that already decided answers this with a
			// fresh CommitTx/AbortTx (see handleVote).
			if m.met != nil {
				m.met.retryVotes.Inc()
			}
			m.sendVote(v)
		}
		st.attempts++
		st.next = now.Add(retryBackoff(st.attempts))
	}
	m.armRetry()
}

// sendVote transmits v to every member of the transaction's coordinating
// reference group.
func (m *Manager) sendVote(v *voteNetMsg) {
	group, _ := m.topo.RefGroup(m.topo.GroupForTx(v.TxID))
	size := wire.PayloadSize(MsgVote, v)
	for _, node := range group {
		m.ep.Send(simnet.Message{To: node, Class: simnet.ClassConsensus,
			Type: MsgVote, Payload: v, Size: size})
	}
}
