package txn

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/simnet"
)

// Property tests on the coordination layer's pure pieces: transaction
// encoding, group routing, and the replicated 2PC state machine.

func TestDTxEncodeDecodeRoundtrip(t *testing.T) {
	property := func(txid, cc string, shards []uint8, commitFn, abortFn string, client uint16) bool {
		d := DTx{
			TxID:      txid,
			Chaincode: cc,
			CommitFn:  commitFn,
			AbortFn:   abortFn,
			Client:    simnet.NodeID(client),
		}
		for i, s := range shards {
			d.Ops = append(d.Ops, Op{
				Shard: int(s),
				Fn:    "fn" + strconv.Itoa(i),
				Args:  []string{txid, strconv.Itoa(i)},
			})
		}
		got, err := DecodeDTx(d.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDTxRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "{", "[]", "42", "\x00\x01"} {
		if _, err := DecodeDTx(s); err == nil {
			t.Fatalf("DecodeDTx(%q) accepted garbage", s)
		}
	}
}

func TestGroupForTxProperties(t *testing.T) {
	mkTopo := func(groups int) Topology {
		topo := Topology{}
		id := simnet.NodeID(100)
		for g := 0; g < groups; g++ {
			var nodes []simnet.NodeID
			for j := 0; j < 3; j++ {
				nodes = append(nodes, id)
				id++
			}
			topo.RefGroups = append(topo.RefGroups, nodes)
			topo.RefGroupFs = append(topo.RefGroupFs, 1)
		}
		topo.RefNodes, topo.RefF = topo.RefGroups[0], topo.RefGroupFs[0]
		return topo
	}

	property := func(seed int64, ng uint8) bool {
		groups := int(ng%7) + 1
		topo := mkTopo(groups)
		rng := rand.New(rand.NewSource(seed))
		counts := make([]int, groups)
		for i := 0; i < 200; i++ {
			txid := "tx" + strconv.FormatInt(rng.Int63(), 36)
			g := topo.GroupForTx(txid)
			if g != topo.GroupForTx(txid) {
				return false // not deterministic
			}
			if g < 0 || g >= groups {
				return false // out of range
			}
			counts[g]++
		}
		if groups > 1 {
			// Uniform hashing: no group may take everything.
			for _, c := range counts {
				if c == 200 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologySingleGroupFallback(t *testing.T) {
	topo := Topology{
		RefNodes: []simnet.NodeID{7, 8, 9},
		RefF:     1,
	}
	if got := topo.NumRefGroups(); got != 1 {
		t.Fatalf("NumRefGroups = %d, want 1", got)
	}
	nodes, f := topo.RefGroup(0)
	if len(nodes) != 3 || f != 1 {
		t.Fatalf("RefGroup(0) = %v,%d", nodes, f)
	}
	for i := 0; i < 20; i++ {
		if g := topo.GroupForTx("t" + strconv.Itoa(i)); g != 0 {
			t.Fatalf("GroupForTx = %d, want 0", g)
		}
	}
	if !topo.isRefGroupNode(0, 8) || topo.isRefGroupNode(0, 10) {
		t.Fatal("isRefGroupNode wrong on fallback group")
	}
	if topo.isRefGroupNode(1, 8) || topo.isRefGroupNode(-1, 8) {
		t.Fatal("isRefGroupNode accepted out-of-range group")
	}
	empty := Topology{}
	if empty.NumRefGroups() != 0 {
		t.Fatal("empty topology has groups")
	}
}

// TestRefComVotesDecideCorrectly drives the Figure 6 state machine with
// one vote per shard in random arrival order: the transaction must reach
// Committed iff every shard voted OK, Aborted otherwise, regardless of
// order.
func TestRefComVotesDecideCorrectly(t *testing.T) {
	property := func(seed int64, nShards uint8, okMask uint16) bool {
		n := int(nShards%5) + 1
		reg := chaincode.NewRegistry(RefCom{})
		store := chain.NewStore()
		rng := rand.New(rand.NewSource(seed))

		d := DTx{TxID: "p", Chaincode: "cc", CommitFn: "c", AbortFn: "a"}
		for s := 0; s < n; s++ {
			d.Ops = append(d.Ops, Op{Shard: s, Fn: "f"})
		}
		res := reg.Execute(store, chain.Tx{ID: 1, Chaincode: "refcom", Fn: "begin",
			Args: []string{"p", strconv.Itoa(n), d.Encode()}})
		if !res.OK() {
			return false
		}
		if StatusOf(store, "p") != StatusStarted {
			return false
		}

		allOK := true
		order := rng.Perm(n)
		for i, s := range order {
			ok := okMask&(1<<uint(s)) != 0
			if !ok {
				allOK = false
			}
			vote := "notok"
			if ok {
				vote = "ok"
			}
			res := reg.Execute(store, chain.Tx{ID: uint64(i + 2), Chaincode: "refcom",
				Fn: "vote", Args: []string{"p", strconv.Itoa(s), vote}})
			if !res.OK() {
				return false
			}
		}
		status := StatusOf(store, "p")
		if allOK {
			return status == StatusCommitted
		}
		return status == StatusAborted
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRefComDuplicateVotesIgnored: a shard's vote counts once no matter
// how many times consensus delivers it (retransmissions reach the ledger
// at most once per derived tx id, but the chaincode must also be
// idempotent on its own state).
func TestRefComDuplicateVotesIgnored(t *testing.T) {
	reg := chaincode.NewRegistry(RefCom{})
	store := chain.NewStore()
	d := DTx{TxID: "p", Chaincode: "cc"}
	d.Ops = []Op{{Shard: 0, Fn: "f"}, {Shard: 1, Fn: "f"}}
	reg.Execute(store, chain.Tx{ID: 1, Chaincode: "refcom", Fn: "begin",
		Args: []string{"p", "2", d.Encode()}})

	// Shard 0 votes OK three times: still Preparing (c=1), not Committed.
	for i := 0; i < 3; i++ {
		res := reg.Execute(store, chain.Tx{ID: uint64(2 + i), Chaincode: "refcom",
			Fn: "vote", Args: []string{"p", "0", "ok"}})
		if !res.OK() {
			t.Fatal(res.Err)
		}
	}
	if got := StatusOf(store, "p"); got != StatusPreparing {
		t.Fatalf("status after duplicate votes = %v, want preparing", got)
	}
	reg.Execute(store, chain.Tx{ID: 9, Chaincode: "refcom",
		Fn: "vote", Args: []string{"p", "1", "ok"}})
	if got := StatusOf(store, "p"); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
}

// TestRetryBackoffBounded: the retransmission backoff starts at the base
// interval, doubles per attempt, and is capped — the property that makes
// a dead-coordinator retry storm impossible (satellite regression for
// Manager.retryTick/armRetry; the end-to-end message-count bound lives in
// internal/core).
func TestRetryBackoffBounded(t *testing.T) {
	if got := retryBackoff(0); got != retryInterval {
		t.Fatalf("backoff(0) = %v, want %v", got, retryInterval)
	}
	prev := retryBackoff(0)
	for a := 1; a < 64; a++ {
		d := retryBackoff(a)
		if d < prev {
			t.Fatalf("backoff not monotonic: backoff(%d)=%v < backoff(%d)=%v", a, d, a-1, prev)
		}
		if d > maxRetryInterval {
			t.Fatalf("backoff(%d) = %v exceeds cap %v", a, d, maxRetryInterval)
		}
		prev = d
	}
	if retryBackoff(63) != maxRetryInterval {
		t.Fatalf("backoff never reaches the cap: %v", retryBackoff(63))
	}
}
