package txn

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/simnet"
)

// Status is a distributed transaction's state in the reference committee's
// state machine (Figure 6).
type Status byte

// The Figure 6 states.
const (
	StatusNone      Status = 0
	StatusStarted   Status = 'S'
	StatusPreparing Status = 'P'
	StatusCommitted Status = 'C'
	StatusAborted   Status = 'A'
)

func (s Status) String() string {
	switch s {
	case StatusStarted:
		return "started"
	case StatusPreparing:
		return "preparing"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "none"
	}
}

// Terminal reports whether the state machine has decided.
func (s Status) Terminal() bool { return s == StatusCommitted || s == StatusAborted }

// Op is one shard's part of a distributed transaction: the chaincode
// invocation that prepares (locks + stages) that shard's writes.
type Op struct {
	Shard int      `json:"shard"`
	Fn    string   `json:"fn"`
	Args  []string `json:"args"`
}

// DTx describes a distributed transaction.
type DTx struct {
	TxID      string `json:"txid"`
	Chaincode string `json:"chaincode"`
	Ops       []Op   `json:"ops"`
	// CommitFn/AbortFn complete phase 2 on each involved shard; both take
	// the transaction id as their single argument.
	CommitFn string `json:"commit_fn"`
	AbortFn  string `json:"abort_fn"`
	// Client is the submitting client's network address, notified of the
	// outcome.
	Client simnet.NodeID `json:"client"`
}

// WithRetryID returns a copy of d carrying a fresh transaction id for
// re-submission after an abort. The coordinator state machine's terminal
// states are permanent, so a retried transaction must not reuse its id;
// by the sharded-chaincode convention (§6.3) every prepare op's first
// argument is the transaction id, so it is rewritten too.
func (d DTx) WithRetryID(attempt int) DTx {
	nd := d
	nd.TxID = d.TxID + "~r" + strconv.Itoa(attempt)
	nd.Ops = make([]Op, len(d.Ops))
	for i, op := range d.Ops {
		nd.Ops[i] = op
		nd.Ops[i].Args = append([]string(nil), op.Args...)
		if len(nd.Ops[i].Args) > 0 {
			nd.Ops[i].Args[0] = nd.TxID
		}
	}
	return nd
}

// Shards returns the distinct shards the transaction touches, in op order.
func (d DTx) Shards() []int {
	var out []int
	seen := make(map[int]bool)
	for _, op := range d.Ops {
		if !seen[op.Shard] {
			seen[op.Shard] = true
			out = append(out, op.Shard)
		}
	}
	return out
}

// Encode serializes the transaction for embedding in a begin request.
func (d DTx) Encode() string {
	b, err := json.Marshal(d)
	if err != nil {
		panic("txn: encode: " + err.Error())
	}
	return string(b)
}

// DecodeDTx parses an encoded distributed transaction.
func DecodeDTx(s string) (DTx, error) {
	var d DTx
	if err := json.Unmarshal([]byte(s), &d); err != nil {
		return DTx{}, fmt.Errorf("txn: decode dtx: %w", err)
	}
	return d, nil
}

// State keys used by the reference-committee chaincode.
func statusKey(txid string) string { return "T_" + txid }
func dtxKey(txid string) string    { return "D_" + txid }
func voteKey(txid string, shard int) string {
	return "V_" + txid + "_" + strconv.Itoa(shard)
}

// RefCom is the reference committee's coordinator chaincode: a replicated,
// deterministic implementation of the 2PC coordinator state machine of
// Figure 6.
//
// Functions:
//
//	begin txid nShards dtxJSON  — BeginTx: enter Started with counter c
//	vote  txid shard ok|notok   — a tx-committee's quorum-backed vote
type RefCom struct{}

// Name implements chaincode.Chaincode.
func (RefCom) Name() string { return "refcom" }

// Invoke implements chaincode.Chaincode.
func (RefCom) Invoke(ctx *chaincode.Ctx, fn string, args []string) error {
	switch fn {
	case "begin":
		if len(args) != 3 {
			return chaincode.ErrBadArgs
		}
		txid := args[0]
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			return chaincode.ErrBadArgs
		}
		if _, exists := ctx.Get(statusKey(txid)); exists {
			return nil // idempotent re-begin
		}
		ctx.Put(statusKey(txid), encodeState(StatusStarted, n))
		ctx.Put(dtxKey(txid), []byte(args[2]))
		return nil

	case "vote":
		if len(args) != 3 {
			return chaincode.ErrBadArgs
		}
		txid := args[0]
		shard, err := strconv.Atoi(args[1])
		if err != nil {
			return chaincode.ErrBadArgs
		}
		ok := args[2] == "ok"
		raw, exists := ctx.Get(statusKey(txid))
		if !exists {
			return fmt.Errorf("txn: vote for unknown tx %s", txid)
		}
		if _, dup := ctx.Get(voteKey(txid, shard)); dup {
			return nil // one vote per tx-committee
		}
		ctx.Put(voteKey(txid, shard), []byte(args[2]))
		status, c := decodeState(raw)
		if status.Terminal() {
			return nil
		}
		if !ok {
			ctx.Put(statusKey(txid), encodeState(StatusAborted, c))
			return nil
		}
		c--
		if c <= 0 {
			ctx.Put(statusKey(txid), encodeState(StatusCommitted, 0))
		} else {
			ctx.Put(statusKey(txid), encodeState(StatusPreparing, c))
		}
		return nil

	default:
		return fmt.Errorf("%w: refcom.%s", chaincode.ErrUnknownFn, fn)
	}
}

func encodeState(s Status, c int) []byte {
	return []byte(string(rune(s)) + ":" + strconv.Itoa(c))
}

func decodeState(raw []byte) (Status, int) {
	parts := strings.SplitN(string(raw), ":", 2)
	if len(parts) != 2 || len(parts[0]) != 1 {
		return StatusNone, 0
	}
	c, _ := strconv.Atoi(parts[1])
	return Status(parts[0][0]), c
}

// StatusOf reads a transaction's coordinator state from a reference
// committee replica's store.
func StatusOf(store *chain.Store, txid string) Status {
	raw, ok := store.Get(statusKey(txid))
	if !ok {
		return StatusNone
	}
	s, _ := decodeState(raw)
	return s
}

// DTxOf reads back the stored transaction description.
func DTxOf(store *chain.Store, txid string) (DTx, bool) {
	raw, ok := store.Get(dtxKey(txid))
	if !ok {
		return DTx{}, false
	}
	d, err := DecodeDTx(string(raw))
	if err != nil {
		return DTx{}, false
	}
	return d, true
}

// DeriveTxID derives a deterministic numeric transaction id for a protocol
// step so that every honest node injects an identical chain.Tx (consensus
// deduplicates on the id).
func DeriveTxID(parts ...string) uint64 {
	d := blockcrypto.Hash([]byte(strings.Join(parts, "\x00")))
	return binary.BigEndian.Uint64(d[:8])
}
