package txn

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// danglingProbeInterval paces the dangling-lock probe: a periodic
// engine-side scan publishing how many shard-side transactions still
// hold 2PL state. The probe is lazy — armed on 2PC activity, dropped
// when nothing is outstanding — so an instrumented simulation can still
// run to idle.
const danglingProbeInterval = 2 * time.Second

// txnMetrics holds one manager's resolved observability handles plus
// the per-transaction obs-clock timestamps the 2PC stage-duration
// histograms subtract. nil when the replica carries no obs.Hub.
type txnMetrics struct {
	hub  *obs.Hub
	node uint32

	prepareWait   *obs.Histogram // prepare inject -> prepare executed (consensus + lock wait)
	lockHold      *obs.Histogram // prepare executed -> phase-2 executed (2PL hold time)
	decideWait    *obs.Histogram // decide inject -> phase-2 executed
	commitLatency *obs.Histogram // coordinator: begin executed -> decision announced

	commits       *obs.Counter // coordinator decisions, by outcome
	aborts        *obs.Counter
	retryPrepares *obs.Counter // PrepareTx retransmissions
	retryVotes    *obs.Counter // vote retransmissions

	danglingLocks  *obs.Gauge // last probe: prepared-but-unfinished txns
	danglingProbes *obs.Counter

	// Stage timestamps keyed by distributed-txn id, deleted as soon as
	// the closing stage observes them (and when the txn finishes).
	prepInjAt  map[string]int64
	prepExecAt map[string]int64
	decInjAt   map[string]int64
	beginAt    map[string]int64

	probe *sim.Timer
}

func newTxnMetrics(hub *obs.Hub, node uint32) *txnMetrics {
	reg := hub.Reg
	return &txnMetrics{
		hub:  hub,
		node: node,

		prepareWait:   reg.Histogram("txn_2pc_prepare_wait"),
		lockHold:      reg.Histogram("txn_2pc_lock_hold"),
		decideWait:    reg.Histogram("txn_2pc_decide_wait"),
		commitLatency: reg.Histogram("txn_2pc_commit_latency"),

		commits:       reg.Counter("txn_2pc_commit_total"),
		aborts:        reg.Counter("txn_2pc_abort_total"),
		retryPrepares: reg.Counter("txn_2pc_retry_prepare_total"),
		retryVotes:    reg.Counter("txn_2pc_retry_vote_total"),

		danglingLocks:  reg.Gauge("txn_dangling_locks"),
		danglingProbes: reg.Counter("txn_dangling_probe_total"),

		prepInjAt:  make(map[string]int64),
		prepExecAt: make(map[string]int64),
		decInjAt:   make(map[string]int64),
		beginAt:    make(map[string]int64),
	}
}

// boolArg encodes an outcome flag into a trace event's Arg field.
func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// forget drops every stage timestamp for txid (the txn reached a
// terminal state here).
func (t *txnMetrics) forget(txid string) {
	delete(t.prepInjAt, txid)
	delete(t.prepExecAt, txid)
	delete(t.decInjAt, txid)
	delete(t.beginAt, txid)
}

// enableObs wires the manager's instrumentation off the replica's hub.
// Called from NewManager, so every construction site — sim systems and
// live nodes alike — is instrumented exactly when its replica is.
func (m *Manager) enableObs() {
	hub := m.replica.ObsHub()
	if hub == nil {
		return
	}
	m.met = newTxnMetrics(hub, uint32(m.ep.ID()))
	m.met.probe = m.replica.Engine().NewTimer()
}

// obsArmProbe schedules the next dangling-lock probe if none is pending.
func (m *Manager) obsArmProbe() {
	if m.met == nil || m.role != RoleShard || m.met.probe.Active() {
		return
	}
	m.met.probe.Reset(danglingProbeInterval, m.obsProbeTick)
}

// obsProbeTick publishes the dangling-lock count and re-arms while any
// prepared transaction is still unfinished. When everything drained the
// probe stops (the next injectPrepare re-arms it), so instrumented
// simulations still reach idle.
func (m *Manager) obsProbeTick() {
	dangling := m.DanglingLocks()
	m.met.danglingProbes.Inc()
	m.met.danglingLocks.Set(int64(len(dangling)))
	if len(dangling) > 0 {
		m.obsArmProbe()
	}
}
