package txn

import (
	"cmp"
	"slices"

	"repro/internal/sim"
)

// retryTimer is the earliest-deadline retransmission timer shared by the
// transaction managers and the client gateways. Registration of a new
// per-transaction deadline is O(1) (ensure compares against the armed
// deadline instead of rescanning every schedule); the full rescan runs
// once per firing, when the owner recomputes its earliest deadline and
// calls rearm.
type retryTimer struct {
	engine *sim.Engine
	timer  *sim.Timer
	fire   func()
	at     sim.Time // deadline the timer is armed for (valid while active)
}

func newRetryTimer(engine *sim.Engine, fire func()) *retryTimer {
	return &retryTimer{engine: engine, timer: engine.NewTimer(), fire: fire}
}

// ensure makes the timer fire no later than at.
func (t *retryTimer) ensure(at sim.Time) {
	if t.timer.Active() && t.at <= at {
		return
	}
	t.reset(at)
}

// rearm arms the timer for the earliest pending deadline found by a full
// rescan, or stops it when found is false.
func (t *retryTimer) rearm(earliest sim.Time, found bool) {
	if !found {
		t.timer.Stop()
		return
	}
	t.reset(earliest)
}

func (t *retryTimer) reset(at sim.Time) {
	d := at.Sub(t.engine.Now())
	if d < 0 {
		d = 0
	}
	t.at = at
	t.timer.Reset(d, t.fire)
}

func (t *retryTimer) stop() { t.timer.Stop() }

// sortedKeys returns the map's keys in ascending order. Retransmission
// loops iterate maps in this order because their sends schedule engine
// events — map-order iteration would break run-to-run determinism.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
