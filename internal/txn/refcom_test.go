package txn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chain"
	"repro/internal/chaincode"
)

func run(t *testing.T, r *chaincode.Registry, s *chain.Store, fn string, args ...string) chaincode.Result {
	if t != nil {
		t.Helper()
	}
	return r.Execute(s, chain.Tx{ID: rand.Uint64(), Chaincode: "refcom", Fn: fn, Args: args})
}

func TestRefComHappyPath(t *testing.T) {
	r := chaincode.NewRegistry(RefCom{})
	s := chain.NewStore()
	d := DTx{TxID: "t1", Chaincode: "smallbank-sharded",
		Ops:      []Op{{Shard: 0, Fn: "preparePayment"}, {Shard: 2, Fn: "preparePayment"}},
		CommitFn: "commitPayment", AbortFn: "abortPayment"}
	if res := run(t, r, s, "begin", "t1", "2", d.Encode()); !res.OK() {
		t.Fatal(res.Err)
	}
	if got := StatusOf(s, "t1"); got != StatusStarted {
		t.Fatalf("status = %v, want started", got)
	}
	back, ok := DTxOf(s, "t1")
	if !ok || back.TxID != "t1" || len(back.Ops) != 2 {
		t.Fatalf("stored dtx corrupt: %+v", back)
	}
	if res := run(t, r, s, "vote", "t1", "0", "ok"); !res.OK() {
		t.Fatal(res.Err)
	}
	if got := StatusOf(s, "t1"); got != StatusPreparing {
		t.Fatalf("status = %v, want preparing (c=1)", got)
	}
	if res := run(t, r, s, "vote", "t1", "2", "ok"); !res.OK() {
		t.Fatal(res.Err)
	}
	if got := StatusOf(s, "t1"); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
}

func TestRefComAbortPath(t *testing.T) {
	r := chaincode.NewRegistry(RefCom{})
	s := chain.NewStore()
	run(t, r, s, "begin", "t2", "3", DTx{TxID: "t2"}.Encode())
	run(t, r, s, "vote", "t2", "0", "ok")
	if res := run(t, r, s, "vote", "t2", "1", "notok"); !res.OK() {
		t.Fatal(res.Err)
	}
	if got := StatusOf(s, "t2"); got != StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}
	// A late ok vote from the third shard cannot resurrect it.
	run(t, r, s, "vote", "t2", "2", "ok")
	if got := StatusOf(s, "t2"); got != StatusAborted {
		t.Fatal("aborted tx changed state after late vote")
	}
}

func TestRefComVoteDedupPerShard(t *testing.T) {
	r := chaincode.NewRegistry(RefCom{})
	s := chain.NewStore()
	run(t, r, s, "begin", "t3", "2", DTx{TxID: "t3"}.Encode())
	// The same shard voting twice must count once (Byzantine replay).
	run(t, r, s, "vote", "t3", "0", "ok")
	run(t, r, s, "vote", "t3", "0", "ok")
	if got := StatusOf(s, "t3"); got != StatusPreparing {
		t.Fatalf("status = %v after duplicate votes, want preparing", got)
	}
	run(t, r, s, "vote", "t3", "1", "ok")
	if got := StatusOf(s, "t3"); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
}

func TestRefComIdempotentBegin(t *testing.T) {
	r := chaincode.NewRegistry(RefCom{})
	s := chain.NewStore()
	run(t, r, s, "begin", "t4", "2", DTx{TxID: "t4"}.Encode())
	run(t, r, s, "vote", "t4", "0", "ok")
	// Re-begin (duplicate client submission) must not reset the counter.
	run(t, r, s, "begin", "t4", "2", DTx{TxID: "t4"}.Encode())
	run(t, r, s, "vote", "t4", "1", "ok")
	if got := StatusOf(s, "t4"); got != StatusCommitted {
		t.Fatalf("status = %v, want committed", got)
	}
}

func TestRefComRejectsBadInput(t *testing.T) {
	r := chaincode.NewRegistry(RefCom{})
	s := chain.NewStore()
	if res := run(t, r, s, "vote", "ghost", "0", "ok"); res.OK() {
		t.Fatal("vote for unknown tx succeeded")
	}
	if res := run(t, r, s, "begin", "x", "zero", "{}"); res.OK() {
		t.Fatal("begin with bad counter succeeded")
	}
	if res := run(t, r, s, "begin", "x"); res.OK() {
		t.Fatal("begin with missing args succeeded")
	}
	if res := run(t, r, s, "nonsense"); res.OK() {
		t.Fatal("unknown fn succeeded")
	}
	if got := StatusOf(s, "never"); got != StatusNone {
		t.Fatalf("status of unknown tx = %v", got)
	}
}

func TestDTxRoundTripAndShards(t *testing.T) {
	d := DTx{
		TxID: "abc", Chaincode: "kvstore-sharded",
		Ops: []Op{
			{Shard: 3, Fn: "prepare", Args: []string{"abc", "k", "v"}},
			{Shard: 1, Fn: "prepare", Args: []string{"abc", "q", "w"}},
			{Shard: 3, Fn: "prepare", Args: []string{"abc", "z", "y"}},
		},
		CommitFn: "commit", AbortFn: "abort", Client: 42,
	}
	back, err := DecodeDTx(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.TxID != d.TxID || len(back.Ops) != 3 || back.Client != 42 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	shards := d.Shards()
	if len(shards) != 2 || shards[0] != 3 || shards[1] != 1 {
		t.Fatalf("shards = %v, want [3 1]", shards)
	}
	if _, err := DecodeDTx("{not json"); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		StatusNone: "none", StatusStarted: "started", StatusPreparing: "preparing",
		StatusCommitted: "committed", StatusAborted: "aborted",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%v.String() = %q", want, s.String())
		}
	}
	if StatusStarted.Terminal() || !StatusCommitted.Terminal() || !StatusAborted.Terminal() {
		t.Fatal("Terminal wrong")
	}
}

// Property: the coordinator state machine commits iff every shard voted ok
// before any notok arrived, regardless of vote interleaving (with dedup).
func TestRefComDecisionProperty(t *testing.T) {
	type vote struct {
		Shard uint8
		OK    bool
	}
	f := func(votes []vote, nShardsRaw uint8) bool {
		n := int(nShardsRaw%4) + 2
		r := chaincode.NewRegistry(RefCom{})
		s := chain.NewStore()
		run(nil, r, s, "begin", "p", itoa(n), DTx{TxID: "p"}.Encode())
		// Model: first effective vote per shard decides that shard.
		firstVote := make(map[int]bool)
		for _, v := range votes {
			shard := int(v.Shard) % n
			arg := "notok"
			if v.OK {
				arg = "ok"
			}
			if _, seen := firstVote[shard]; !seen {
				firstVote[shard] = v.OK
			}
			run(nil, r, s, "vote", "p", itoa(shard), arg)
		}
		status := StatusOf(s, "p")
		allOK := len(firstVote) == n
		anyBad := false
		for _, ok := range firstVote {
			if !ok {
				anyBad = true
				allOK = false
			}
		}
		switch {
		case anyBad:
			return status == StatusAborted
		case allOK:
			return status == StatusCommitted
		default:
			return status == StatusStarted || status == StatusPreparing
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}
