package txn

import (
	"fmt"
	"strconv"

	"repro/internal/chain"
)

// Router is the §6.4 client library: "a client library that hides the
// details of the coordination protocols, so that the users only see
// single-shard transactions." An application calls Submit with the
// logical chaincode function it would have invoked on an unsharded
// blockchain; the router splits it into shard-local sub-invocations,
// chooses between the direct single-shard path and the Figure 5
// distributed protocol, and reports one outcome either way.
//
// Routing targets chaincodes produced by shardlib.AutoShard: multi-shard
// transactions become one prepare (or prepareBatch) op per shard, closed
// by the generic commit/abort functions; a transaction whose
// sub-invocations all land on one shard bypasses the reference committee
// entirely and executes the original function directly on that shard.
type Router struct {
	client  *Client
	shardOf func(key string) int
	routes  map[string]map[string]SplitFunc
	nextID  int
}

// SubCall is one shard-local piece of a logical invocation: Fn(Args)
// executed on the shard owning PlacementKey.
type SubCall struct {
	PlacementKey string
	Fn           string
	Args         []string
}

// SplitFunc decomposes the arguments of a logical function into
// shard-local sub-invocations. Correctness requirement: executing every
// sub-invocation must be equivalent to executing the original function,
// so that the router may run the original directly when all pieces land
// on one shard.
type SplitFunc func(args []string) ([]SubCall, error)

// NewRouter returns a router submitting through client, with shardOf
// giving the placement of application keys.
func NewRouter(client *Client, shardOf func(key string) int) *Router {
	return &Router{
		client:  client,
		shardOf: shardOf,
		routes:  make(map[string]map[string]SplitFunc),
	}
}

// Register installs the decomposition rule for chaincode's logical
// function fn. Functions without a rule are treated as single-shard and
// must carry their placement key as their first argument.
func (r *Router) Register(chaincodeName, fn string, split SplitFunc) {
	byFn := r.routes[chaincodeName]
	if byFn == nil {
		byFn = make(map[string]SplitFunc)
		r.routes[chaincodeName] = byFn
	}
	byFn[fn] = split
}

// Submit routes the logical invocation fn(args) on chaincodeName and
// fires done with the outcome. It returns the transaction id assigned to
// the invocation, and an error only for malformed invocations (unknown
// decomposition results, zero sub-calls); protocol-level aborts are
// reported through done instead.
func (r *Router) Submit(chaincodeName, fn string, args []string, done func(Result)) (string, error) {
	r.nextID++
	txid := fmt.Sprintf("r%d-%d", r.client.ID(), r.nextID)

	subs, err := r.split(chaincodeName, fn, args)
	if err != nil {
		return "", err
	}

	perShard := make(map[int][]SubCall)
	var order []int
	for _, sub := range subs {
		shard := r.shardOf(sub.PlacementKey)
		if _, seen := perShard[shard]; !seen {
			order = append(order, shard)
		}
		perShard[shard] = append(perShard[shard], sub)
	}

	if len(order) == 1 {
		// Single-shard fast path: no coordination, execute the original
		// function directly (§6.4: the user sees a single-shard tx).
		r.client.SubmitSingle(order[0], chain.Tx{
			ID:        DeriveTxID(txid, "direct"),
			Chaincode: chaincodeName,
			Fn:        fn,
			Args:      args,
		}, func(res Result) {
			res.TxID = txid
			done(res)
		})
		return txid, nil
	}

	sortInts(order)
	d := DTx{
		TxID:      txid,
		Chaincode: chaincodeName,
		CommitFn:  "commit",
		AbortFn:   "abort",
	}
	for _, shard := range order {
		calls := perShard[shard]
		if len(calls) == 1 {
			d.Ops = append(d.Ops, Op{Shard: shard, Fn: "prepare",
				Args: append([]string{txid, calls[0].Fn}, calls[0].Args...)})
			continue
		}
		batch := []string{txid}
		for _, c := range calls {
			batch = append(batch, c.Fn, strconv.Itoa(len(c.Args)))
			batch = append(batch, c.Args...)
		}
		d.Ops = append(d.Ops, Op{Shard: shard, Fn: "prepareBatch", Args: batch})
	}
	r.client.SubmitDistributed(d, done)
	return txid, nil
}

func (r *Router) split(chaincodeName, fn string, args []string) ([]SubCall, error) {
	if split, ok := r.routes[chaincodeName][fn]; ok {
		subs, err := split(args)
		if err != nil {
			return nil, fmt.Errorf("txn: split %s.%s: %w", chaincodeName, fn, err)
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("txn: split %s.%s produced no sub-calls", chaincodeName, fn)
		}
		return subs, nil
	}
	// Unregistered functions are single-shard by convention, placed by
	// their first argument.
	if len(args) == 0 {
		return nil, fmt.Errorf("txn: %s.%s has no decomposition rule and no placement argument", chaincodeName, fn)
	}
	return []SubCall{{PlacementKey: args[0], Fn: fn, Args: args}}, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
