package txn

import (
	"strconv"

	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/simnet"
)

// This file implements the two prior coordination approaches the paper
// analyzes in §6.1, so their failure modes can be demonstrated against
// the same committees our protocol runs on.

// SplitRapidChain splits a cross-shard transfer RapidChain-style: one
// independent single-shard sub-transaction per operation, with no locks
// and no atomic commit. Sub-transactions execute (or fail) independently,
// which is exactly why the approach violates atomicity and isolation for
// account-based transactions (§6.1, Figure 4): a debit can succeed while
// the matching credit fails, and interleaved transactions observe
// partially-applied state.
//
// The ops use the *non*-sharded chaincode directly (e.g. smallbank
// writeCheck / depositChecking): effects apply immediately per shard.
func SplitRapidChain(txid string, ops []Op, chaincodeName string) []chain.Tx {
	txs := make([]chain.Tx, 0, len(ops))
	for i, op := range ops {
		txs = append(txs, chain.Tx{
			ID:        DeriveTxID(txid, "rapidchain", strconv.Itoa(i)),
			Chaincode: chaincodeName,
			Fn:        op.Fn,
			Args:      op.Args,
		})
	}
	return txs
}

// OmniClient is an OmniLedger-style client-driven coordinator: the client
// itself locks inputs on the involved shards (prepare), then — if it
// remains live and honest — issues the commits or aborts. A malicious or
// crashed client that stops after the prepare phase leaves the locks in
// place forever, the indefinite-blocking problem of §6.1: there is no
// BFT coordinator to time out and decide on its behalf.
type OmniClient struct {
	client *Client
	topo   Topology

	// MaliciousStopAfterPrepare makes the client vanish between phases.
	MaliciousStopAfterPrepare bool
}

// NewOmniClient wraps an existing gateway client.
func NewOmniClient(client *Client, topo Topology) *OmniClient {
	return &OmniClient{client: client, topo: topo}
}

// Run drives the client-side lock/unlock protocol for d. done fires with
// the outcome if the protocol completes; under a malicious client it never
// does — and neither do the unlocks.
func (o *OmniClient) Run(d DTx, done func(committed bool)) {
	shardsLeft := len(d.Ops)
	okAll := true
	for _, op := range d.Ops {
		op := op
		tx := chain.Tx{
			ID:        DeriveTxID(d.TxID, "omni-prepare", strconv.Itoa(op.Shard)),
			Chaincode: d.Chaincode,
			Fn:        op.Fn,
			Args:      op.Args,
		}
		o.client.SubmitSingle(op.Shard, tx, func(res Result) {
			if !res.Committed {
				okAll = false
			}
			shardsLeft--
			if shardsLeft == 0 {
				o.finishPhase2(d, okAll, done)
			}
		})
	}
}

func (o *OmniClient) finishPhase2(d DTx, commit bool, done func(bool)) {
	if o.MaliciousStopAfterPrepare {
		// The malicious client walks away. Locks written during the
		// prepare phase are never released; honest users' funds are
		// frozen indefinitely (§6.1's payment-channel example).
		return
	}
	fn := d.CommitFn
	if !commit {
		fn = d.AbortFn
	}
	left := len(d.Ops)
	for _, op := range d.Ops {
		tx := chain.Tx{
			ID:        DeriveTxID(d.TxID, "omni-"+fn, strconv.Itoa(op.Shard)),
			Chaincode: d.Chaincode,
			Fn:        fn,
			Args:      []string{d.TxID},
		}
		o.client.SubmitSingle(op.Shard, tx, func(Result) {
			left--
			if left == 0 && done != nil {
				done(commit)
			}
		})
	}
}

// SubmitPlain submits an arbitrary single-shard transaction through a
// bare network endpoint (no reply tracking); used by open-loop drivers.
func SubmitPlain(ep *simnet.Endpoint, to simnet.NodeID, tx chain.Tx) {
	ep.Send(pbft.ClientRequest(to, tx))
}
