package txn

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Client is a blockchain client gateway: it submits single-shard requests
// and distributed transactions, and correlates the Byzantine-quorum
// responses (f+1 matching replies or outcome notifications) back into
// completion callbacks. Closed-loop benchmark drivers are built on it.
type Client struct {
	ep     *simnet.Endpoint
	engine *sim.Engine
	topo   Topology

	// Per-transaction completion tracking.
	waiting map[string]*pendingTx

	// Outcome votes from reference nodes: txid -> committed? -> senders.
	outcomeFrom map[string]map[bool]map[simnet.NodeID]bool
	// Replies from shard replicas: chain tx id -> ok? -> repliers.
	replyFrom map[uint64]map[bool]map[simnet.NodeID]bool
	replyNeed map[uint64]*pendingTx
}

type pendingTx struct {
	id        string
	start     sim.Time
	threshold int
	done      func(Result)
	fired     bool
}

// Result reports a completed transaction to the submitting client.
type Result struct {
	TxID      string
	Committed bool
	Latency   time.Duration
}

// NewClient attaches a client gateway at the given node id.
func NewClient(net *simnet.Network, id simnet.NodeID, topo Topology) *Client {
	c := &Client{
		ep:          net.Attach(id, simnet.DefaultSplitQueue()),
		engine:      net.Engine(),
		topo:        topo,
		waiting:     make(map[string]*pendingTx),
		outcomeFrom: make(map[string]map[bool]map[simnet.NodeID]bool),
		replyFrom:   make(map[uint64]map[bool]map[simnet.NodeID]bool),
		replyNeed:   make(map[uint64]*pendingTx),
	}
	c.ep.SetHandler(c)
	return c
}

// ID returns the client's network address.
func (c *Client) ID() simnet.NodeID { return c.ep.ID() }

// Cost implements simnet.Handler.
func (c *Client) Cost(simnet.Message) time.Duration { return 10 * time.Microsecond }

// Handle implements simnet.Handler.
func (c *Client) Handle(m simnet.Message) {
	switch m.Type {
	case MsgOutcome:
		c.handleOutcome(m)
	case pbft.MsgReply:
		c.handleReply(m)
	}
}

// SubmitDistributed starts the Figure 5 protocol for d: a refcom begin
// request to the transaction's coordinating reference group. done fires
// once f_R+1 nodes of that group report the same terminal outcome.
func (c *Client) SubmitDistributed(d DTx, done func(Result)) {
	if len(d.Shards()) != len(d.Ops) {
		panic(fmt.Sprintf("txn: dtx %s has multiple ops on one shard; merge them", d.TxID))
	}
	d.Client = c.ep.ID()
	group, groupF := c.topo.RefGroup(c.topo.GroupForTx(d.TxID))
	c.waiting[d.TxID] = &pendingTx{
		id:        d.TxID,
		start:     c.engine.Now(),
		threshold: groupF + 1,
		done:      done,
	}
	tx := chain.Tx{
		ID:        DeriveTxID(d.TxID, "begin"),
		Chaincode: "refcom",
		Fn:        "begin",
		Args:      []string{d.TxID, strconv.Itoa(len(d.Shards())), d.Encode()},
		Client:    pbft.KeyOf(c.ep.ID()),
	}
	// Submit to a deterministic reference replica; under AHL+ it forwards
	// to the leader.
	target := group[tx.ID%uint64(len(group))]
	c.ep.Send(pbft.ClientRequest(target, tx))
}

// SubmitSingle sends a single-shard transaction to the given shard and
// fires done after f+1 matching replies (requires SendReplies on the
// shard's replicas).
func (c *Client) SubmitSingle(shard int, tx chain.Tx, done func(Result)) {
	tx.Client = pbft.KeyOf(c.ep.ID())
	p := &pendingTx{
		id:        strconv.FormatUint(tx.ID, 10),
		start:     c.engine.Now(),
		threshold: c.topo.ShardF[shard] + 1,
		done:      done,
	}
	c.replyNeed[tx.ID] = p
	target := c.topo.ShardNodes[shard][tx.ID%uint64(len(c.topo.ShardNodes[shard]))]
	c.ep.Send(pbft.ClientRequest(target, tx))
}

func (c *Client) handleOutcome(m simnet.Message) {
	out := m.Payload.(OutcomeMsg)
	// Only the coordinating group's members may report the outcome.
	if !c.topo.isRefGroupNode(c.topo.GroupForTx(out.TxID), m.From) {
		return
	}
	p := c.waiting[out.TxID]
	if p == nil || p.fired {
		return
	}
	byVal := c.outcomeFrom[out.TxID]
	if byVal == nil {
		byVal = make(map[bool]map[simnet.NodeID]bool)
		c.outcomeFrom[out.TxID] = byVal
	}
	senders := byVal[out.Committed]
	if senders == nil {
		senders = make(map[simnet.NodeID]bool)
		byVal[out.Committed] = senders
	}
	if senders[m.From] {
		return
	}
	senders[m.From] = true
	if len(senders) >= p.threshold {
		p.fired = true
		delete(c.waiting, out.TxID)
		delete(c.outcomeFrom, out.TxID)
		if p.done != nil {
			p.done(Result{TxID: out.TxID, Committed: out.Committed,
				Latency: c.engine.Now().Sub(p.start)})
		}
	}
}

func (c *Client) handleReply(m simnet.Message) {
	rep := m.Payload.(pbft.Reply)
	p := c.replyNeed[rep.TxID]
	if p == nil || p.fired {
		return
	}
	byVal := c.replyFrom[rep.TxID]
	if byVal == nil {
		byVal = make(map[bool]map[simnet.NodeID]bool)
		c.replyFrom[rep.TxID] = byVal
	}
	senders := byVal[rep.OK]
	if senders == nil {
		senders = make(map[simnet.NodeID]bool)
		byVal[rep.OK] = senders
	}
	if senders[m.From] {
		return
	}
	senders[m.From] = true
	if len(senders) >= p.threshold {
		p.fired = true
		delete(c.replyNeed, rep.TxID)
		delete(c.replyFrom, rep.TxID)
		if p.done != nil {
			p.done(Result{TxID: p.id, Committed: rep.OK,
				Latency: c.engine.Now().Sub(p.start)})
		}
	}
}
