package txn

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Client is a blockchain client gateway: it submits single-shard requests
// and distributed transactions, and correlates the Byzantine-quorum
// responses (f+1 matching replies or outcome notifications) back into
// completion callbacks. Closed-loop benchmark drivers are built on it.
type Client struct {
	ep     *simnet.Endpoint
	engine *sim.Engine
	topo   Topology

	// Per-transaction completion tracking.
	waiting map[string]*pendingTx

	// Outcome votes from reference nodes: txid -> committed? -> senders.
	outcomeFrom map[string]map[bool]map[simnet.NodeID]bool
	// Replies from shard replicas: chain tx id -> ok? -> repliers.
	replyFrom map[uint64]map[bool]map[simnet.NodeID]bool
	replyNeed map[uint64]*pendingTx

	retry *retryTimer
}

type pendingTx struct {
	id        string
	start     sim.Time
	threshold int
	done      func(Result)
	fired     bool

	// Begin retransmission state (distributed transactions only): the
	// original begin request is resent under bounded backoff, rotating
	// through the coordinating group so a crashed first target cannot
	// strand the transaction, alongside a status query that re-learns an
	// outcome whose notifications were lost.
	begin    chain.Tx
	group    []simnet.NodeID
	next     sim.Time
	attempts int
}

// Client-side begin retransmission: base interval, doubled per attempt up
// to the cap. Chosen above the manager-level retryInterval so the normal
// fault-free path (and most recoverable faults) never trigger it.
const (
	clientRetryInterval    = 15 * time.Second
	clientMaxRetryInterval = 120 * time.Second
)

func clientBackoff(attempts int) time.Duration {
	return boundedBackoff(clientRetryInterval, clientMaxRetryInterval, attempts)
}

// Result reports a completed transaction to the submitting client.
type Result struct {
	TxID      string
	Committed bool
	Latency   time.Duration
}

// NewClient attaches a client gateway at the given node id.
func NewClient(net *simnet.Network, id simnet.NodeID, topo Topology) *Client {
	c := &Client{
		ep:          net.Attach(id, simnet.DefaultSplitQueue()),
		engine:      net.Engine(),
		topo:        topo,
		waiting:     make(map[string]*pendingTx),
		outcomeFrom: make(map[string]map[bool]map[simnet.NodeID]bool),
		replyFrom:   make(map[uint64]map[bool]map[simnet.NodeID]bool),
		replyNeed:   make(map[uint64]*pendingTx),
	}
	c.retry = newRetryTimer(c.engine, c.retryTick)
	c.ep.SetHandler(c)
	return c
}

// ID returns the client's network address.
func (c *Client) ID() simnet.NodeID { return c.ep.ID() }

// Endpoint returns the client's network endpoint, letting read-side
// layers (the query gateway) wrap its handler and send from its address.
func (c *Client) Endpoint() *simnet.Endpoint { return c.ep }

// Cost implements simnet.Handler.
func (c *Client) Cost(simnet.Message) time.Duration { return 10 * time.Microsecond }

// Handle implements simnet.Handler.
func (c *Client) Handle(m simnet.Message) {
	switch m.Type {
	case MsgOutcome:
		c.handleOutcome(m)
	case pbft.MsgReply:
		c.handleReply(m)
	}
}

// SubmitDistributed starts the Figure 5 protocol for d: a refcom begin
// request to the transaction's coordinating reference group. done fires
// once f_R+1 nodes of that group report the same terminal outcome.
func (c *Client) SubmitDistributed(d DTx, done func(Result)) {
	if len(d.Shards()) != len(d.Ops) {
		panic(fmt.Sprintf("txn: dtx %s has multiple ops on one shard; merge them", d.TxID))
	}
	d.Client = c.ep.ID()
	group, groupF := c.topo.RefGroup(c.topo.GroupForTx(d.TxID))
	tx := chain.Tx{
		ID:        DeriveTxID(d.TxID, "begin"),
		Chaincode: "refcom",
		Fn:        "begin",
		Args:      []string{d.TxID, strconv.Itoa(len(d.Shards())), d.Encode()},
		Client:    pbft.KeyOf(c.ep.ID()),
	}
	c.waiting[d.TxID] = &pendingTx{
		id:        d.TxID,
		start:     c.engine.Now(),
		threshold: groupF + 1,
		done:      done,
		begin:     tx,
		group:     group,
		next:      c.engine.Now().Add(clientRetryInterval),
	}
	// Submit to a deterministic reference replica; under AHL+ it forwards
	// to the leader.
	target := group[tx.ID%uint64(len(group))]
	c.ep.Send(pbft.ClientRequest(target, tx))
	c.scheduleRetry(c.waiting[d.TxID].next)
}

// scheduleRetry makes the retransmission timer fire no later than `at` —
// the O(1) per-submission path. A completed transaction does not retract
// the deadline; the next firing rescans and quiesces.
func (c *Client) scheduleRetry(at sim.Time) { c.retry.ensure(at) }

// armRetry rescans all pending retransmissions and arms the timer for
// the earliest (min over map values: order-independent, deterministic),
// stopping it when nothing is pending. Called once per firing.
func (c *Client) armRetry() {
	var earliest sim.Time
	found := false
	for _, p := range c.waiting {
		if !found || p.next < earliest {
			earliest, found = p.next, true
		}
	}
	for _, p := range c.replyNeed {
		if !found || p.next < earliest {
			earliest, found = p.next, true
		}
	}
	c.retry.rearm(earliest, found)
}

// retryTick resends the begin request for every overdue transaction to
// the next replica of its coordinating group (round-robin past the
// original target) and queries the whole group for an already-decided
// outcome. Sorted txid order: sends schedule engine events, so map-order
// iteration would break run-to-run determinism.
func (c *Client) retryTick() {
	now := c.engine.Now()
	for _, txid := range sortedKeys(c.waiting) {
		p := c.waiting[txid]
		if now < p.next {
			continue
		}
		p.attempts++
		p.next = now.Add(clientBackoff(p.attempts))
		target := p.group[(p.begin.ID+uint64(p.attempts))%uint64(len(p.group))]
		c.ep.Send(pbft.ClientRequest(target, p.begin))
		q := &statusQueryMsg{TxID: txid}
		qSize := wire.PayloadSize(MsgStatus, q)
		for _, node := range p.group {
			c.ep.Send(simnet.Message{To: node, Class: simnet.ClassConsensus,
				Type: MsgStatus, Payload: q, Size: qSize})
		}
	}
	for _, id := range sortedKeys(c.replyNeed) {
		p := c.replyNeed[id]
		if now < p.next {
			continue
		}
		p.attempts++
		p.next = now.Add(clientBackoff(p.attempts))
		target := p.group[(p.begin.ID+uint64(p.attempts))%uint64(len(p.group))]
		c.ep.Send(pbft.ClientRequest(target, p.begin))
	}
	c.armRetry()
}

// SubmitSingle sends a single-shard transaction to the given shard and
// fires done after f+1 matching replies (requires SendReplies on the
// shard's replicas). Like begins, the request is retransmitted under
// bounded backoff to rotating targets: replicas deduplicate by tx id and
// re-reply for already-executed transactions, so a lost request or lost
// replies cannot strand the caller.
func (c *Client) SubmitSingle(shard int, tx chain.Tx, done func(Result)) {
	tx.Client = pbft.KeyOf(c.ep.ID())
	p := &pendingTx{
		id:        strconv.FormatUint(tx.ID, 10),
		start:     c.engine.Now(),
		threshold: c.topo.ShardF[shard] + 1,
		done:      done,
		begin:     tx,
		group:     c.topo.ShardNodes[shard],
		next:      c.engine.Now().Add(clientRetryInterval),
	}
	c.replyNeed[tx.ID] = p
	target := p.group[tx.ID%uint64(len(p.group))]
	c.ep.Send(pbft.ClientRequest(target, tx))
	c.scheduleRetry(p.next)
}

func (c *Client) handleOutcome(m simnet.Message) {
	out := m.Payload.(OutcomeMsg)
	// Only the coordinating group's members may report the outcome.
	if !c.topo.isRefGroupNode(c.topo.GroupForTx(out.TxID), m.From) {
		return
	}
	p := c.waiting[out.TxID]
	if p == nil || p.fired {
		return
	}
	byVal := c.outcomeFrom[out.TxID]
	if byVal == nil {
		byVal = make(map[bool]map[simnet.NodeID]bool)
		c.outcomeFrom[out.TxID] = byVal
	}
	senders := byVal[out.Committed]
	if senders == nil {
		senders = make(map[simnet.NodeID]bool)
		byVal[out.Committed] = senders
	}
	if senders[m.From] {
		return
	}
	senders[m.From] = true
	if len(senders) >= p.threshold {
		p.fired = true
		delete(c.waiting, out.TxID)
		delete(c.outcomeFrom, out.TxID)
		if p.done != nil {
			p.done(Result{TxID: out.TxID, Committed: out.Committed,
				Latency: c.engine.Now().Sub(p.start)})
		}
	}
}

func (c *Client) handleReply(m simnet.Message) {
	rep := m.Payload.(pbft.Reply)
	p := c.replyNeed[rep.TxID]
	if p == nil || p.fired {
		return
	}
	byVal := c.replyFrom[rep.TxID]
	if byVal == nil {
		byVal = make(map[bool]map[simnet.NodeID]bool)
		c.replyFrom[rep.TxID] = byVal
	}
	senders := byVal[rep.OK]
	if senders == nil {
		senders = make(map[simnet.NodeID]bool)
		byVal[rep.OK] = senders
	}
	if senders[m.From] {
		return
	}
	senders[m.From] = true
	if len(senders) >= p.threshold {
		p.fired = true
		delete(c.replyNeed, rep.TxID)
		delete(c.replyFrom, rep.TxID)
		if p.done != nil {
			p.done(Result{TxID: p.id, Committed: rep.OK,
				Latency: c.engine.Now().Sub(p.start)})
		}
	}
}
