package txn

import (
	"repro/internal/simnet"
)

// Reference-committee scale-out (§6.2): "the reference committee is not a
// bottleneck in cross-shard transaction processing, for we can scale it
// out by running multiple instances of R in parallel."
//
// A Topology may therefore carry several reference groups, each an
// independent BFT committee running its own replicated 2PC state machine.
// Every distributed transaction is coordinated by exactly one group,
// chosen by hashing its transaction id, so two groups can never reach
// conflicting decisions for the same transaction. Shard-side managers
// only accept PrepareTx/CommitTx/AbortTx for a transaction from members
// of its coordinating group, which also stops a Byzantine client from
// enlisting a second group as a conflicting coordinator.

// NumRefGroups returns the number of parallel reference committee
// instances (0 when cross-shard coordination is disabled).
func (t Topology) NumRefGroups() int {
	if len(t.RefGroups) > 0 {
		return len(t.RefGroups)
	}
	if len(t.RefNodes) > 0 {
		return 1
	}
	return 0
}

// RefGroup returns the member nodes and fault tolerance of reference
// group g.
func (t Topology) RefGroup(g int) (nodes []simnet.NodeID, f int) {
	if len(t.RefGroups) > 0 {
		return t.RefGroups[g], t.RefGroupFs[g]
	}
	return t.RefNodes, t.RefF
}

// GroupForTx maps a distributed transaction id to its coordinating
// reference group. The mapping is deterministic and uniform, so load
// spreads across groups and every honest node derives the same
// coordinator.
func (t Topology) GroupForTx(txid string) int {
	n := t.NumRefGroups()
	if n <= 1 {
		return 0
	}
	return int(DeriveTxID("refgroup", txid) % uint64(n))
}

// isRefGroupNode reports whether id is a member of reference group g.
func (t Topology) isRefGroupNode(g int, id simnet.NodeID) bool {
	if g < 0 || g >= t.NumRefGroups() {
		return false
	}
	nodes, _ := t.RefGroup(g)
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
