package txn

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/storage"
	"repro/internal/wire"
)

// 2PC durability. A shard replica's manager holds protocol state that is
// neither in the replicated store nor reconstructible from peers once the
// coordinator has moved on: which DTx bodies it learned, which decisions
// reached a quorum, and which protocol steps it injected into consensus.
// Losing that state across a crash leaves 2PL locks held forever — the
// coordinator considers the transaction finished and never re-sends the
// decide. So when durability is enabled the manager journals three facts
// write-ahead into the replica's WAL (interleaved with the decided blocks
// they relate to, preserving cross-layer causality):
//
//	stageDTx      — the transaction description learned from a prepare
//	stageDecided  — a quorum-backed commit/abort decision
//	stageInjected — a protocol step handed to consensus (with its body,
//	                so an undecided step can be resubmitted after restart)
//
// At every stable checkpoint the replica asks the manager (via
// SetDurableExtra) for a stage blob summarizing the same facts for all
// still-unfinished transactions; the blob rides in the durable snapshot,
// which is what lets the WAL prefix be truncated.
//
// Reference-side managers journal nothing: the coordinator state machine
// lives entirely in the replicated store, so recovery is a store scan
// (recoverReference).
//
// Boot recovery (driven by internal/core):
//
//	ApplyStageBlob(snapshot.Stage)          — rebuild the unfinished set
//	ApplyStage(rec.Stage) / ReplayDecided   — interleaved WAL tail
//	FinishRecovery()                        — re-vote, resubmit, re-arm
const (
	stageDTx      byte = 1
	stageDecided  byte = 2
	stageInjected byte = 3
	stageDone     byte = 4
)

// EnableDurability makes the manager journal its 2PC stage transitions to
// backend (the same backend the replica writes blocks to) and registers
// its stage blob with the replica's durable snapshots. Call before any
// traffic is handled.
func (m *Manager) EnableDurability(backend storage.Backend) {
	m.durable = backend
	if m.injectedBody == nil {
		m.injectedBody = make(map[uint64]chain.Tx)
	}
	m.replica.SetDurableExtra(m.stageBlob)
}

// stageAppend journals one stage payload; durability failures route
// through the replica's fatal path (losing the journal voids the
// crash-recovery promise, same as losing the WAL).
func (m *Manager) stageAppend(payload []byte) {
	if err := m.durable.Append(storage.Record{Kind: storage.KindStage, Stage: payload}); err != nil {
		m.replica.StorageFatal(fmt.Errorf("txn: stage append: %w", err))
	}
}

func (m *Manager) stageWriteDTx(txid, dtx string) {
	if m.durable == nil {
		return
	}
	var e wire.Encoder
	encodeStageDTx(&e, txid, dtx)
	m.stageAppend(append([]byte(nil), e.Bytes()...))
}

func (m *Manager) stageWriteDecided(txid string, commit bool) {
	if m.durable == nil {
		return
	}
	var e wire.Encoder
	encodeStageDecided(&e, txid, commit)
	m.stageAppend(append([]byte(nil), e.Bytes()...))
}

func (m *Manager) stageWriteInjected(id uint64, ref kindRef, tx chain.Tx) {
	if m.durable == nil {
		return
	}
	m.injectedBody[id] = tx
	var e wire.Encoder
	encodeStageInjected(&e, id, ref, tx)
	m.stageAppend(append([]byte(nil), e.Bytes()...))
}

func encodeStageDTx(e *wire.Encoder, txid, dtx string) {
	e.Byte(stageDTx)
	e.String(txid)
	e.String(dtx)
}

func encodeStageDecided(e *wire.Encoder, txid string, commit bool) {
	e.Byte(stageDecided)
	e.String(txid)
	e.Bool(commit)
}

func encodeStageInjected(e *wire.Encoder, id uint64, ref kindRef, tx chain.Tx) {
	e.Byte(stageInjected)
	e.Uvarint(id)
	e.String(ref.txid)
	e.String(ref.kind)
	wire.PutTx(e, tx)
}

func encodeStageDone(e *wire.Encoder, txid string) {
	e.Byte(stageDone)
	e.String(txid)
}

// applyStageRecord decodes one journaled stage transition off d and folds
// it into the manager's maps. It never journals in turn — the record is
// already durable.
func (m *Manager) applyStageRecord(d *wire.Decoder) error {
	switch kind := d.Byte(); kind {
	case stageDTx:
		txid, enc := d.String(), d.String()
		if d.Err() != nil {
			break
		}
		if _, known := m.prepareDTx[txid]; !known {
			dtx, err := DecodeDTx(enc)
			if err != nil {
				return fmt.Errorf("%w: stage dtx %q: %v", storage.ErrCorrupt, txid, err)
			}
			m.prepareDTx[txid] = dtx
		}
	case stageDecided:
		txid, commit := d.String(), d.Bool()
		if d.Err() != nil {
			break
		}
		if _, known := m.decided[txid]; !known {
			m.decided[txid] = commit
		}
	case stageInjected:
		id := d.Uvarint()
		ref := kindRef{txid: d.String(), kind: d.String()}
		tx := wire.Tx(d)
		if d.Err() != nil {
			break
		}
		m.injectedTx[id] = ref
		m.injectedBody[id] = tx
		if ref.kind == "commit" || ref.kind == "abort" {
			m.decideInj[ref.txid] = true
		}
	case stageDone:
		txid := d.String()
		if d.Err() != nil {
			break
		}
		m.done[txid] = true
	default:
		return fmt.Errorf("%w: unknown stage record kind %d", storage.ErrCorrupt, kind)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: stage record: %v", storage.ErrCorrupt, err)
	}
	return nil
}

// ApplyStage replays one KindStage WAL record during boot recovery. Call
// in WAL order, interleaved with the replica's ReplayDecided, so that a
// block's injected-step registrations are in place before the block
// re-executes.
func (m *Manager) ApplyStage(payload []byte) error {
	d := wire.NewDecoder(payload)
	if err := m.applyStageRecord(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("%w: stage record: %v", storage.ErrCorrupt, err)
	}
	return nil
}

// finished reports whether txid needs no recovery state at all: phase 2
// executed here and no injected step is still pending in consensus.
func (m *Manager) finished(txid string, pendingTx map[string]bool) bool {
	return m.done[txid] && !pendingTx[txid]
}

// stageBlob serializes the unfinished transactions' stage state for a
// durable snapshot — the same facts as the journaled records, compacted:
// transactions that are done and fully executed are dropped.
func (m *Manager) stageBlob() []byte {
	// pendingTx marks transactions with an injected step consensus has not
	// executed yet; those must survive even when marked done (a late
	// cleanup could still be in flight).
	pendingTx := make(map[string]bool)
	//ahl:nondeterministic set insertion of a constant keyed by txid, guarded by a read-only ExecutedOK query; insertion order is invisible
	for id, ref := range m.injectedTx {
		if _, executed := m.replica.ExecutedOK(id); !executed {
			pendingTx[ref.txid] = true
		}
	}
	var e wire.Encoder
	var n uint64
	var body wire.Encoder
	for _, txid := range sortedKeys(m.prepareDTx) {
		if m.finished(txid, pendingTx) {
			continue
		}
		encodeStageDTx(&body, txid, m.prepareDTx[txid].Encode())
		n++
	}
	for _, txid := range sortedKeys(m.decided) {
		if m.finished(txid, pendingTx) {
			continue
		}
		encodeStageDecided(&body, txid, m.decided[txid])
		n++
	}
	for _, txid := range sortedKeys(m.done) {
		if !pendingTx[txid] {
			continue
		}
		encodeStageDone(&body, txid)
		n++
	}
	for _, id := range sortedKeys(m.injectedTx) {
		ref := m.injectedTx[id]
		if m.finished(ref.txid, pendingTx) {
			continue
		}
		tx, ok := m.injectedBody[id]
		if !ok {
			// Pre-durability injection (EnableDurability must run before
			// traffic, so this indicates a wiring bug); skip rather than
			// journal a bodiless step.
			continue
		}
		encodeStageInjected(&body, id, ref, tx)
		n++
	}
	e.Uvarint(n)
	e.ByteSlice(body.Bytes())
	return append([]byte(nil), e.Bytes()...)
}

// ApplyStageBlob restores the stage state carried by a durable snapshot.
// Call once, before replaying the WAL tail.
func (m *Manager) ApplyStageBlob(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	if m.injectedBody == nil {
		m.injectedBody = make(map[uint64]chain.Tx)
	}
	d := wire.NewDecoder(blob)
	n := d.Count(1)
	body := wire.NewDecoder(d.ByteSlice())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("%w: stage blob: %v", storage.ErrCorrupt, err)
	}
	for i := 0; i < n; i++ {
		if err := m.applyStageRecord(body); err != nil {
			return err
		}
	}
	if err := body.Finish(); err != nil {
		return fmt.Errorf("%w: stage blob: %v", storage.ErrCorrupt, err)
	}
	return nil
}

// FinishRecovery completes boot recovery after the snapshot and WAL tail
// have been applied: executed protocol steps are replayed into the
// manager's vote/done tracking, undecided steps are resubmitted to
// consensus, deferred phase-2 injections are retried, and the
// retransmission loop is re-armed. The replica must be able to send
// (recovery sends votes so a coordinator that moved on re-answers with
// its decision — the path that frees otherwise-dangling 2PL locks).
func (m *Manager) FinishRecovery() {
	if m.role == RoleReference {
		m.recoverReference()
		return
	}
	ids := sortedKeys(m.injectedTx)
	// Phase-2 steps first: they establish done/decided, which changes how
	// a replayed prepare is treated (vote vs. late cleanup).
	for _, pass := range []bool{true, false} {
		for _, id := range ids {
			ref := m.injectedTx[id]
			phase2 := ref.kind == "commit" || ref.kind == "abort"
			if phase2 != pass {
				continue
			}
			if ok, executed := m.replica.ExecutedOK(id); executed {
				m.onShardExecuted(chain.Tx{ID: id}, ok)
			}
		}
	}
	// Resubmit steps consensus never decided; ids are deterministic, so a
	// step decided while we were down is deduplicated by the dedup sets
	// restored above.
	for _, id := range ids {
		if _, executed := m.replica.ExecutedOK(id); executed {
			continue
		}
		if tx, ok := m.injectedBody[id]; ok {
			m.replica.SubmitLocal(tx)
		}
	}
	// A decision whose phase-2 injection was deferred on a missing DTx may
	// be injectable now that the stage journal restored the DTx.
	for _, txid := range sortedKeys(m.decided) {
		m.maybeInjectDecide(txid)
	}
	m.armRetry()
}

// recoverReference rebuilds a reference replica's coordination state from
// the replicated store: terminal transactions are marked announced
// (shards that missed the decide re-learn it through the vote-retry
// handshake), and undecided transactions this group coordinates go back
// on the prepare-retransmission schedule.
func (m *Manager) recoverReference() {
	store := m.replica.Store()
	now := m.replica.Engine().Now()
	for _, key := range store.Head().KeysWithPrefix("T_") {
		txid := key[len("T_"):]
		status := StatusOf(store, txid)
		if status.Terminal() {
			m.announced[txid] = true
			continue
		}
		if m.topo.GroupForTx(txid) != m.shardID {
			continue
		}
		d, found := DTxOf(store, txid)
		if !found {
			continue
		}
		m.pending[txid] = &retrySched{next: now.Add(retryInterval)}
		m.sendPrepares(txid, d)
	}
	m.armRetry()
}

// DanglingLocks reports the shard-side transactions that still hold 2PL
// state here: prepared (locks acquired or acquisition in flight) but no
// phase-2 execution. The restart smoke test asserts this drains to zero.
func (m *Manager) DanglingLocks() []string {
	if m.role != RoleShard {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	// Sorted injection order: callers diff this list across restarts, so
	// its order must not depend on map iteration.
	for _, id := range sortedKeys(m.injectedTx) {
		ref := m.injectedTx[id]
		if ref.kind == "prepare" && !m.done[ref.txid] && !seen[ref.txid] {
			seen[ref.txid] = true
			out = append(out, ref.txid)
		}
	}
	return out
}
