package txn

import (
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Wire codecs for the cross-shard coordination messages of Figure 5,
// registered with the internal/wire registry (see pbft/wire.go for the
// consensus-layer counterparts).

func init() {
	wire.Register(MsgPrepare, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*prepareMsg)
			e.String(m.TxID)
			e.String(m.DTx)
		},
		Decode: func(d *wire.Decoder) any {
			return &prepareMsg{TxID: d.String(), DTx: d.String()}
		},
	})

	wire.Register(MsgVote, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*voteNetMsg)
			e.String(m.TxID)
			e.Int(m.Shard)
			e.Bool(m.OK)
		},
		Decode: func(d *wire.Decoder) any {
			return &voteNetMsg{TxID: d.String(), Shard: d.Int(), OK: d.Bool()}
		},
	})

	wire.Register(MsgDecide, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*decideMsg)
			e.String(m.TxID)
			e.Bool(m.Commit)
		},
		Decode: func(d *wire.Decoder) any {
			return &decideMsg{TxID: d.String(), Commit: d.Bool()}
		},
	})

	wire.Register(MsgOutcome, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(OutcomeMsg)
			e.String(m.TxID)
			e.Bool(m.Committed)
		},
		Decode: func(d *wire.Decoder) any {
			return OutcomeMsg{TxID: d.String(), Committed: d.Bool()}
		},
	})

	wire.Register(MsgStatus, wire.Codec{
		Encode: func(e *wire.Encoder, p any) { e.String(p.(*statusQueryMsg).TxID) },
		Decode: func(d *wire.Decoder) any { return &statusQueryMsg{TxID: d.String()} },
	})
}

// WireSamples returns one populated message per txn wire type; test
// support for the wire package's round-trip and fuzz corpus.
func WireSamples() []simnet.Message {
	d := DTx{
		TxID: "t1", Chaincode: "smallbank-sharded",
		Ops: []Op{
			{Shard: 0, Fn: "preparePayment", Args: []string{"t1", "acc1", "-10"}},
			{Shard: 1, Fn: "preparePayment", Args: []string{"t1", "acc2", "10"}},
		},
		CommitFn: "commitPayment", AbortFn: "abortPayment", Client: 9,
	}
	msg := func(typ string, payload any) simnet.Message {
		return simnet.Message{From: 4, To: 5, Class: simnet.ClassConsensus, Type: typ, Payload: payload}
	}
	return []simnet.Message{
		msg(MsgPrepare, &prepareMsg{TxID: "t1", DTx: d.Encode()}),
		msg(MsgVote, &voteNetMsg{TxID: "t1", Shard: 1, OK: true}),
		msg(MsgDecide, &decideMsg{TxID: "t1", Commit: true}),
		msg(MsgOutcome, OutcomeMsg{TxID: "t1", Committed: true}),
		msg(MsgStatus, &statusQueryMsg{TxID: "t1"}),
	}
}
