// Package txn implements the paper's distributed transaction protocol
// (§6): two-phase commit whose coordinator state machine (Figure 6) runs
// as a chaincode replicated by a Byzantine fault-tolerant reference
// committee R, with 2PL locks held in shard state.
//
// Role in the AHL design: sharding only pays off if cross-shard
// transactions keep atomicity and isolation without trusting any single
// party. The paper's answer is to make the 2PC coordinator itself a
// replicated state machine: clients merely initiate transactions, shards
// hold no-wait 2PL locks (deadlock-free by construction, §6.2), and R
// drives prepare/commit/abort to completion even when the initiating
// client is malicious. This layer sits between the per-shard consensus
// committees (internal/consensus/pbft) and the whole-system assembly
// (internal/core); the §6.4 Router adds the client-side fast path that
// sends single-shard transactions straight to their shard.
//
// It also implements the two baselines the paper argues against:
// RapidChain-style transaction splitting (no atomicity/isolation for
// general transactions, §6.1) and OmniLedger-style client-driven
// lock/unlock (indefinite blocking under a malicious coordinator, §6.1) —
// see internal/bench and examples/malicious for the comparisons.
package txn
