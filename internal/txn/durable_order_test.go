package txn

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDanglingLocksDeterministicOrder pins the fix for a real
// nondeterminism bug the ahlvet sweep surfaced: DanglingLocks used to
// walk injectedTx in map order, so the returned txid list differed
// between otherwise identical runs. It must come back in injection-id
// order no matter how the map was populated.
func TestDanglingLocksDeterministicOrder(t *testing.T) {
	entries := []struct {
		id  uint64
		ref kindRef
	}{
		{40, kindRef{"tx-d", "prepare"}},
		{11, kindRef{"tx-a", "prepare"}},
		{12, kindRef{"tx-a", "prepare"}}, // duplicate txid: reported once
		{23, kindRef{"tx-b", "commit"}},  // phase 2: not a dangling lock
		{31, kindRef{"tx-c", "prepare"}},
		{55, kindRef{"tx-done", "prepare"}}, // done: lock released
		{60, kindRef{"tx-e", "prepare"}},
	}
	want := []string{"tx-a", "tx-c", "tx-d", "tx-e"}

	rng := rand.New(rand.NewSource(1))
	for run := 0; run < 50; run++ {
		m := &Manager{
			role:       RoleShard,
			injectedTx: make(map[uint64]kindRef, len(entries)),
			done:       map[string]bool{"tx-done": true},
		}
		// A fresh map populated in a different order each run: any
		// map-order dependence shows up as a permuted result.
		for _, i := range rng.Perm(len(entries)) {
			m.injectedTx[entries[i].id] = entries[i].ref
		}
		if got := m.DanglingLocks(); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: DanglingLocks() = %v, want %v", run, got, want)
		}
	}
}
