package wire

import (
	"sort"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/tee"
	"repro/internal/tee/aaom"
	"repro/internal/tee/aggregator"
)

// Shared-type encode/decode helpers. Protocol packages compose these into
// codecs for their own (often unexported) message structs, so the shapes
// that appear in many messages — transactions, blocks, signatures,
// attestation reports — are encoded exactly one way everywhere.
//
// Collection decoders never preallocate what a hostile length prefix
// claims: Count bounds the element count by the remaining input, and
// CapHint bounds the initial capacity, so growth is paid only as real
// input bytes are consumed and peak memory stays O(len(input)).

// maxCapHint bounds a decoder's speculative preallocation (elements).
const maxCapHint = 4096

// CapHint clamps a decoded collection length to a safe initial
// capacity; decoders append past it only as input is actually consumed.
func CapHint(n int) int {
	if n > maxCapHint {
		return maxCapHint
	}
	return n
}

func capHint(n int) int { return CapHint(n) }

// PutStrings appends a length-prefixed string slice.
func PutStrings(e *Encoder, ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Strings reads a string slice (nil when empty).
func Strings(d *Decoder) []string {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, capHint(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.String())
	}
	return out
}

// PutUint64s appends a length-prefixed uint64 slice.
func PutUint64s(e *Encoder, vs []uint64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Uvarint(v)
	}
}

// Uint64s reads a uint64 slice (nil when empty).
func Uint64s(d *Decoder) []uint64 {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]uint64, 0, capHint(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

// PutSignature appends a blockcrypto.Signature.
func PutSignature(e *Encoder, s blockcrypto.Signature) {
	e.Uvarint(uint64(s.Signer))
	e.ByteSlice(s.Bytes)
}

// Signature reads a blockcrypto.Signature.
func Signature(d *Decoder) blockcrypto.Signature {
	return blockcrypto.Signature{
		Signer: blockcrypto.KeyID(d.Uvarint()),
		Bytes:  d.ByteSlice(),
	}
}

// PutReport appends a tee.Report.
func PutReport(e *Encoder, r tee.Report) {
	e.Digest(r.Measurement)
	e.Digest(r.ReportData)
	PutSignature(e, r.Sig)
}

// Report reads a tee.Report.
func Report(d *Decoder) tee.Report {
	return tee.Report{
		Measurement: d.Digest(),
		ReportData:  d.Digest(),
		Sig:         Signature(d),
	}
}

// PutAAOM appends an aaom trusted-log attestation.
func PutAAOM(e *Encoder, a aaom.Attestation) {
	e.String(a.Log)
	e.Uvarint(a.Slot)
	e.Digest(a.Digest)
	PutReport(e, a.Report)
}

// AAOM reads an aaom trusted-log attestation.
func AAOM(d *Decoder) aaom.Attestation {
	return aaom.Attestation{
		Log:    d.String(),
		Slot:   d.Uvarint(),
		Digest: d.Digest(),
		Report: Report(d),
	}
}

// PutAggVote appends an aggregator vote.
func PutAggVote(e *Encoder, v aggregator.Vote) {
	e.Uvarint(uint64(v.Voter))
	PutSignature(e, v.Sig)
}

// AggVote reads an aggregator vote.
func AggVote(d *Decoder) aggregator.Vote {
	return aggregator.Vote{
		Voter: blockcrypto.KeyID(d.Uvarint()),
		Sig:   Signature(d),
	}
}

// PutAggCert appends an aggregator quorum certificate.
func PutAggCert(e *Encoder, c aggregator.Cert) {
	e.Uvarint(c.Item.View)
	e.Uvarint(c.Item.Seq)
	e.String(c.Item.Phase)
	e.Digest(c.Item.Digest)
	e.Uvarint(uint64(len(c.Voters)))
	for _, v := range c.Voters {
		e.Uvarint(uint64(v))
	}
	PutReport(e, c.Report)
}

// AggCert reads an aggregator quorum certificate.
func AggCert(d *Decoder) aggregator.Cert {
	var c aggregator.Cert
	c.Item.View = d.Uvarint()
	c.Item.Seq = d.Uvarint()
	c.Item.Phase = d.String()
	c.Item.Digest = d.Digest()
	n := d.Count(1)
	if n > 0 {
		c.Voters = make([]blockcrypto.KeyID, 0, capHint(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			c.Voters = append(c.Voters, blockcrypto.KeyID(d.Uvarint()))
		}
	}
	c.Report = Report(d)
	return c
}

// PutTx appends a chain.Tx.
func PutTx(e *Encoder, t chain.Tx) {
	e.Uvarint(t.ID)
	e.String(t.Chaincode)
	e.String(t.Fn)
	PutStrings(e, t.Args)
	e.Uvarint(uint64(t.Client))
}

// Tx reads a chain.Tx.
func Tx(d *Decoder) chain.Tx {
	return chain.Tx{
		ID:        d.Uvarint(),
		Chaincode: d.String(),
		Fn:        d.String(),
		Args:      Strings(d),
		Client:    blockcrypto.KeyID(d.Uvarint()),
	}
}

// PutHeader appends a chain.Header.
func PutHeader(e *Encoder, h chain.Header) {
	e.Uvarint(h.Height)
	e.Digest(h.PrevHash)
	e.Digest(h.TxRoot)
	e.Digest(h.StateRoot)
	e.Uvarint(uint64(h.Proposer))
	e.Uvarint(h.View)
}

// Header reads a chain.Header.
func Header(d *Decoder) chain.Header {
	return chain.Header{
		Height:    d.Uvarint(),
		PrevHash:  d.Digest(),
		TxRoot:    d.Digest(),
		StateRoot: d.Digest(),
		Proposer:  blockcrypto.KeyID(d.Uvarint()),
		View:      d.Uvarint(),
	}
}

// PutBlock appends a possibly-nil block pointer (presence flag + value).
func PutBlock(e *Encoder, b *chain.Block) {
	if b == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	PutHeader(e, b.Header)
	e.Uvarint(uint64(len(b.Txs)))
	for _, t := range b.Txs {
		PutTx(e, t)
	}
}

// Block reads a possibly-nil block pointer.
func Block(d *Decoder) *chain.Block {
	if !d.Bool() {
		return nil
	}
	b := &chain.Block{Header: Header(d)}
	n := d.Count(1)
	if n > 0 {
		b.Txs = make([]chain.Tx, 0, capHint(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			b.Txs = append(b.Txs, Tx(d))
		}
	}
	return b
}

// PutSnapshot appends a chain.Snapshot. Map entries are encoded in sorted
// key order so the encoding is canonical.
func PutSnapshot(e *Encoder, s chain.Snapshot) {
	keys := make([]string, 0, len(s.KV))
	for k := range s.KV {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.ByteSlice(s.KV[k])
	}
	e.Uvarint(s.Version)
	e.Digest(s.Digest)
}

// Snapshot reads a chain.Snapshot.
func Snapshot(d *Decoder) chain.Snapshot {
	n := d.Count(2)
	kv := make(map[string][]byte, capHint(n))
	for i := 0; i < n; i++ {
		k := d.String()
		v := d.ByteSlice()
		if d.Err() != nil {
			break
		}
		kv[k] = v
	}
	return chain.Snapshot{
		KV:      kv,
		Version: d.Uvarint(),
		Digest:  d.Digest(),
	}
}
