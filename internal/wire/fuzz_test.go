package wire_test

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeMessage asserts the decoder's two contracts on arbitrary
// bytes: it never panics, and anything it does accept re-encodes into a
// canonical frame that decodes to the same message (encode ∘ decode is the
// identity on the codec's image). The checked-in seed corpus under
// testdata/fuzz holds one encoded frame per registered message type plus
// malformed variants; TestSamplesCoverRegistry keeps it honest when new
// types are registered.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range allSamples() {
		frame, err := wire.EncodeMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		if len(frame) > 4 {
			f.Add(frame[:len(frame)/2]) // truncated
			mut := append([]byte(nil), frame...)
			mut[len(mut)-1] ^= 0xff // corrupted tail
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{wire.Magic})
	f.Add([]byte{wire.Magic, wire.Version, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.DecodeMessage(data)
		if err != nil {
			return // rejected cleanly
		}
		frame, err := wire.EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := wire.DecodeMessage(frame)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if m2.From != m.From || m2.To != m.To || m2.Class != m.Class || m2.Type != m.Type {
			t.Fatalf("envelope not stable: %+v vs %+v", m2, m)
		}
		if !reflect.DeepEqual(m2.Payload, m.Payload) {
			t.Fatalf("payload not stable:\n got %#v\nwant %#v", m2.Payload, m.Payload)
		}
	})
}
