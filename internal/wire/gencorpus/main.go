// Command gencorpus regenerates the checked-in fuzz seed corpus for
// wire.FuzzDecodeMessage: one canonical encoded frame per registered
// message type. Run it from the repository root after adding message
// types:
//
//	go run ./internal/wire/gencorpus
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/consensus/pbft"
	"repro/internal/query"
	"repro/internal/sharding"
	"repro/internal/simnet"
	"repro/internal/txn"
	"repro/internal/wire"
)

func main() {
	dir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzDecodeMessage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var samples []simnet.Message
	samples = append(samples, pbft.WireSamples()...)
	samples = append(samples, txn.WireSamples()...)
	samples = append(samples, sharding.WireSamples()...)
	samples = append(samples, query.WireSamples()...)
	for _, m := range samples {
		frame, err := wire.EncodeMessage(nil, m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", m.Type, err)
			os.Exit(1)
		}
		name := "seed-" + sanitize(m.Type)
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d corpus seeds to %s\n", len(samples), dir)
}

func sanitize(typ string) string {
	out := make([]byte, 0, len(typ))
	for i := 0; i < len(typ); i++ {
		c := typ[i]
		if c == '/' || c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
