package wire

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/blockcrypto"
)

// Errors surfaced by the decoder. Decode methods never panic; the first
// failure sticks and every later read returns zero values.
var (
	// ErrTruncated reports input that ended before a declared field.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrOverflow reports a varint wider than 64 bits.
	ErrOverflow = errors.New("wire: varint overflow")
	// ErrLength reports a length prefix larger than the remaining input.
	ErrLength = errors.New("wire: length prefix exceeds remaining input")
)

// Encoder appends a deterministic binary encoding to a byte slice. The
// zero value is ready to use; Reset recycles the backing array so a pooled
// encoder's steady state allocates nothing.
type Encoder struct {
	b []byte
}

// Reset empties the encoder, keeping the backing array.
func (e *Encoder) Reset() { e.b = e.b[:0] }

// Bytes returns the encoded bytes (valid until the next Reset).
func (e *Encoder) Bytes() []byte { return e.b }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.b) }

// Byte appends one raw byte.
func (e *Encoder) Byte(v byte) { e.b = append(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Uvarint appends v as an unsigned LEB128 varint.
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

// Int appends a signed integer in zig-zag varint form.
func (e *Encoder) Int(v int) {
	e.Uvarint(uint64(v<<1) ^ uint64(v>>(bits.UintSize-1)))
}

// Duration appends a time.Duration-compatible signed 64-bit value.
func (e *Encoder) Duration(v int64) {
	e.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// ByteSlice appends a length-prefixed byte slice. Nil and empty slices
// encode identically (length zero) and decode as nil.
func (e *Encoder) ByteSlice(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.b = append(e.b, b...)
}

// Digest appends a raw 32-byte digest.
func (e *Encoder) Digest(d blockcrypto.Digest) { e.b = append(e.b, d[:]...) }

// Decoder reads the Encoder's format back. The first error sticks: every
// subsequent read returns zero values, so codecs can decode a whole struct
// and check Err once at the end.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder over data. The decoder does not copy data;
// ByteSlice and Digest results are copied out, String results share no
// mutable state, so the caller may recycle data once decoding finishes.
func NewDecoder(data []byte) *Decoder { return &Decoder{b: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads a boolean byte; any nonzero value is true.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Uvarint reads an unsigned LEB128 varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.b) {
			d.fail(ErrTruncated)
			return 0
		}
		c := d.b[d.off]
		d.off++
		if shift == 63 && c > 1 {
			d.fail(ErrOverflow)
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			d.fail(ErrOverflow)
			return 0
		}
	}
}

// Int reads a zig-zag varint back into a signed integer.
func (d *Decoder) Int() int {
	u := d.Uvarint()
	return int((u >> 1) ^ -(u & 1))
}

// Duration reads a signed 64-bit zig-zag varint.
func (d *Decoder) Duration() int64 {
	u := d.Uvarint()
	return int64((u >> 1) ^ -(u & 1))
}

// Count reads a collection length and validates it against the remaining
// input, assuming each element occupies at least elemMin (>= 1) bytes.
// A hostile length prefix therefore cannot force an allocation larger
// than the input itself.
func (d *Decoder) Count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.fail(ErrLength)
		return 0
	}
	return int(n)
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n > d.Remaining() {
		d.fail(ErrLength)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Count(1)
	if n == 0 {
		return ""
	}
	return string(d.take(n))
}

// ByteSlice reads a length-prefixed byte slice (copied; nil when empty).
func (d *Decoder) ByteSlice() []byte {
	n := d.Count(1)
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// Digest reads a raw 32-byte digest.
func (d *Decoder) Digest() blockcrypto.Digest {
	var out blockcrypto.Digest
	copy(out[:], d.take(blockcrypto.DigestSize))
	return out
}

// Finish returns an error unless the decoder consumed its whole input
// cleanly — trailing garbage on a frame is a framing bug, not padding.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", d.Remaining())
	}
	return nil
}
