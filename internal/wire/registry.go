package wire

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simnet"
)

// Envelope framing constants.
const (
	// Magic is the first byte of every frame.
	Magic byte = 0xA4
	// Version is the codec version stamped into every frame. Decoders
	// reject frames from a different version instead of guessing.
	Version byte = 1
)

// frameOverhead is the fixed portion of the envelope — magic, version,
// class, and the from/to varints — charged by PayloadSize in addition to
// the type tag and payload bytes. Varints make the true header a byte or
// two smaller for low node ids; the constant keeps simulated sizes
// independent of the recipient so one broadcast has one size.
const frameOverhead = 8

// Codec encodes and decodes one message type's payload.
type Codec struct {
	// Encode appends the payload encoding. It may assume payload is the
	// registered concrete type (a send with a payload of the wrong type is
	// a programming error and panics like the type assertion it is).
	Encode func(e *Encoder, payload any)
	// Decode reads the payload back. It reports malformed input through
	// the decoder's sticky error rather than panicking.
	Decode func(d *Decoder) any
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Codec)
)

// Register installs the codec for a message type. Protocol packages call
// it from init; registering a type twice is a bug and panics.
func Register(typ string, c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[typ]; dup {
		panic("wire: duplicate codec for " + typ)
	}
	if c.Encode == nil || c.Decode == nil {
		panic("wire: codec for " + typ + " missing Encode or Decode")
	}
	registry[typ] = c
}

// NilCodec returns the codec for messages that carry no payload.
func NilCodec() Codec {
	return Codec{
		Encode: func(*Encoder, any) {},
		Decode: func(*Decoder) any { return nil },
	}
}

// Registered reports whether a codec exists for typ.
func Registered(typ string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[typ]
	return ok
}

// Types returns all registered message types, sorted.
func Types() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for t := range registry {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func lookup(typ string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[typ]
	return c, ok
}

// EncodeMessage appends m's framed encoding to buf and returns the
// extended slice. It fails on unregistered message types.
func EncodeMessage(buf []byte, m simnet.Message) ([]byte, error) {
	c, ok := lookup(m.Type)
	if !ok {
		return buf, fmt.Errorf("wire: no codec for message type %q", m.Type)
	}
	e := Encoder{b: buf}
	e.Byte(Magic)
	e.Byte(Version)
	e.String(m.Type)
	e.Uvarint(uint64(m.From))
	e.Uvarint(uint64(m.To))
	e.Byte(byte(m.Class))
	c.Encode(&e, m.Payload)
	return e.b, nil
}

// DecodeMessage parses one framed message. The returned message's Size is
// the frame length, so live-received messages carry their true wire size
// through any code that inspects it. DecodeMessage never panics on
// malformed input.
func DecodeMessage(data []byte) (simnet.Message, error) {
	d := NewDecoder(data)
	if d.Byte() != Magic {
		return simnet.Message{}, fmt.Errorf("wire: bad magic")
	}
	if v := d.Byte(); v != Version {
		return simnet.Message{}, fmt.Errorf("wire: unsupported version %d", v)
	}
	typ := d.String()
	from := d.Uvarint()
	to := d.Uvarint()
	class := simnet.Class(d.Byte())
	if err := d.Err(); err != nil {
		return simnet.Message{}, err
	}
	if !class.Valid() {
		// An out-of-range class would index past the endpoints' fixed
		// per-class queue arrays on the receiving node.
		return simnet.Message{}, fmt.Errorf("wire: invalid message class %d", class)
	}
	c, ok := lookup(typ)
	if !ok {
		return simnet.Message{}, fmt.Errorf("wire: no codec for message type %q", typ)
	}
	payload := c.Decode(d)
	if err := d.Finish(); err != nil {
		return simnet.Message{}, fmt.Errorf("wire: decode %s: %w", typ, err)
	}
	return simnet.Message{
		From:    simnet.NodeID(from),
		To:      simnet.NodeID(to),
		Class:   class,
		Type:    typ,
		Payload: payload,
		Size:    len(data),
	}, nil
}

// encPool recycles encoders for size computation so the simulator's send
// hot path performs no steady-state allocation.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// PayloadSize returns the wire size of a message of the given type and
// payload: fixed envelope overhead, the type tag, and the encoded payload.
// It is the simulator's replacement for hand-estimated Message.Size — the
// transmission-time model now charges exactly what the TCP transport would
// put on the wire. An unregistered type panics: every protocol message
// must have a codec (registration lives in each package's wire.go), and
// a silent zero here would model the new type's traffic as free.
func PayloadSize(typ string, payload any) int {
	c, ok := lookup(typ)
	if !ok {
		panic("wire: PayloadSize for unregistered message type " + typ)
	}
	e := encPool.Get().(*Encoder)
	e.Reset()
	c.Encode(e, payload)
	n := frameOverhead + len(typ) + e.Len()
	encPool.Put(e)
	return n
}
