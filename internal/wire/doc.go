// Package wire is the deterministic, versioned binary codec for every
// message the system puts on a network — the serialization layer that was
// missing while the reproduction lived only inside the discrete-event
// simulator, where simnet.Message.Payload carried live Go pointers and
// Size was hand-estimated.
//
// # Format
//
// A framed message ("envelope") is
//
//	magic     byte    0xA4
//	version   byte    1
//	type      string  the simnet Message.Type tag ("pbft/prepare", ...)
//	from, to  uvarint node ids
//	class     byte    simnet.Class
//	payload   bytes   type-specific encoding (length-prefixed)
//
// All integers are unsigned LEB128 varints; strings and byte slices are
// length-prefixed; digests are raw 32-byte values. Maps are encoded in
// sorted key order, so encoding is a pure function of the message value —
// two replicas that build the same message produce identical bytes, which
// is what lets encoded sizes double as the simulator's transmission-size
// model and lets tests compare frames byte-for-byte.
//
// # Registry
//
// The payload codec for each message type is looked up in a registry keyed
// by the Message.Type string. The protocol packages own their message
// structs (many are unexported), so each package registers its own codecs
// from an init function: pbft registers the consensus, view-change,
// state-sync, replay and recovery messages plus client requests/replies;
// txn registers the 2PC coordination messages; sharding registers the
// committee-formation traffic. Importing those packages is what populates
// the registry.
//
// # Safety
//
// Decode never panics on arbitrary input (enforced by FuzzDecodeMessage):
// the decoder carries a sticky error, bounds-checks every read, and caps
// claimed lengths by the number of bytes actually remaining, so a hostile
// length prefix cannot force a large allocation.
package wire
