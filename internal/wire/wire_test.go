package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/consensus/pbft"
	"repro/internal/query"
	"repro/internal/sharding"
	"repro/internal/simnet"
	"repro/internal/txn"
	"repro/internal/wire"
)

// allSamples gathers one populated message per registered wire type from
// every protocol package (whose imports also trigger codec registration).
func allSamples() []simnet.Message {
	var out []simnet.Message
	out = append(out, pbft.WireSamples()...)
	out = append(out, txn.WireSamples()...)
	out = append(out, sharding.WireSamples()...)
	out = append(out, query.WireSamples()...)
	return out
}

func TestSamplesCoverRegistry(t *testing.T) {
	covered := make(map[string]bool)
	for _, m := range allSamples() {
		if !wire.Registered(m.Type) {
			t.Errorf("sample type %q has no registered codec", m.Type)
		}
		covered[m.Type] = true
	}
	for _, typ := range wire.Types() {
		if !covered[typ] {
			t.Errorf("registered type %q has no sample (round-trip/fuzz coverage gap)", typ)
		}
	}
}

func TestRoundTripEveryType(t *testing.T) {
	for _, m := range allSamples() {
		frame, err := wire.EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := wire.DecodeMessage(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if got.From != m.From || got.To != m.To || got.Class != m.Class || got.Type != m.Type {
			t.Fatalf("%s: envelope mismatch: got %+v", m.Type, got)
		}
		if !reflect.DeepEqual(got.Payload, m.Payload) {
			t.Fatalf("%s: payload mismatch:\n got %#v\nwant %#v", m.Type, got.Payload, m.Payload)
		}
		if got.Size != len(frame) {
			t.Fatalf("%s: decoded Size = %d, frame length %d", m.Type, got.Size, len(frame))
		}
	}
}

func TestEncodingDeterministic(t *testing.T) {
	for _, m := range allSamples() {
		a, err := wire.EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		b, _ := wire.EncodeMessage(nil, m)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two encodings differ", m.Type)
		}
	}
}

// TestPayloadSizeMatchesFrame pins the simulator's size model to the real
// frame length: PayloadSize uses a fixed header constant where the actual
// envelope holds two node-id varints, so the two may differ by at most the
// few bytes of varint slack.
func TestPayloadSizeMatchesFrame(t *testing.T) {
	const slack = 6
	for _, m := range allSamples() {
		frame, err := wire.EncodeMessage(nil, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Type, err)
		}
		est := wire.PayloadSize(m.Type, m.Payload)
		if diff := est - len(frame); diff < 0 || diff > slack {
			t.Fatalf("%s: PayloadSize %d vs frame %d (diff %d)", m.Type, est, len(frame), diff)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	frame, err := wire.EncodeMessage(nil, allSamples()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(frame); i++ {
		if _, err := wire.DecodeMessage(frame[:i]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", i, len(frame))
		}
	}
	if _, err := wire.DecodeMessage(append(append([]byte(nil), frame...), 0xff)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	bad := append([]byte(nil), frame...)
	bad[1] = 99 // unsupported version
	if _, err := wire.DecodeMessage(bad); err == nil {
		t.Fatal("wrong version accepted")
	}
	// An out-of-range class byte must be rejected at decode time: it would
	// index past the receiving endpoint's fixed per-class queue array.
	hostile := allSamples()[0]
	hostile.Class = simnet.Class(7)
	badClass, err := wire.EncodeMessage(nil, hostile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeMessage(badClass); err == nil {
		t.Fatal("invalid class accepted")
	}
	if _, err := wire.EncodeMessage(nil, simnet.Message{Type: "no/such-type"}); err == nil {
		t.Fatal("unregistered type encoded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PayloadSize for unregistered type should panic")
			}
		}()
		wire.PayloadSize("no/such-type", nil)
	}()
}

func TestEncodeAppends(t *testing.T) {
	ms := allSamples()
	var buf []byte
	var lens []int
	for _, m := range ms[:3] {
		var err error
		buf, err = wire.EncodeMessage(buf, m)
		if err != nil {
			t.Fatal(err)
		}
		lens = append(lens, len(buf))
	}
	// Frames decode back from their own ranges.
	start := 0
	for i, m := range ms[:3] {
		got, err := wire.DecodeMessage(buf[start:lens[i]])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != m.Type {
			t.Fatalf("frame %d: type %q, want %q", i, got.Type, m.Type)
		}
		start = lens[i]
	}
}
