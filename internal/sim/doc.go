// Package sim provides a deterministic discrete-event simulation engine —
// the foundation layer of the AHL reproduction stack.
//
// Role in the AHL design: the paper evaluates a TEE-assisted sharded
// blockchain on a 100-server cluster and a 1,400-node GCP testbed. This
// repository replaces that hardware with a simulated clock so the same
// protocols, at the same scales, run reproducibly on one machine. Every
// layer above — the simulated network (internal/simnet), the enclave cost
// model (internal/tee), the consensus protocols (internal/consensus/...),
// the sharded system (internal/core) and the experiment harness
// (internal/bench) — advances time exclusively through an Engine.
//
// Everything in this repository — network delivery, node CPUs, enclave
// operation costs, protocol timers — runs on a single virtual clock owned
// by an Engine. Events are executed in (time, insertion-sequence) order, so
// a run is a pure function of its seed and inputs: two runs with the same
// seed produce identical traces, which makes the large-scale experiments in
// internal/bench reproducible bit for bit.
//
// The engine is intentionally single-threaded. Protocol code runs inside
// event callbacks and must not block; anything that takes (virtual) time is
// expressed by scheduling a follow-up event. Distinct Engine instances
// share no state, so independent simulations may run on separate goroutines
// concurrently (the parallel experiment runner in internal/bench does).
//
// Determinism invariants. Code that runs under an Engine (this package
// and every deterministic package listed in internal/analysis) must obey
// two rules beyond "advance time only through the Engine": never iterate
// a map where the order can reach an observable output (schedule an
// event, send a message, build a digest, render a report) without
// sorting or proving the body order-insensitive, and never consult the
// wall clock or the global math/rand source — randomness comes from
// seeded *rand.Rand instances derived from the engine or topology seed.
// The dynamic harnesses (byte-identical replay, the serial-vs-parallel
// equivalence suite) sample these invariants at runtime; the ahlvet
// analyzer suite (internal/analysis, cmd/ahlvet) enforces them at build
// time, with //ahl:nondeterministic <reason> as the reviewed escape
// hatch for the few constitutively wall-clock boundaries (the live-mode
// bridge in internal/core).
//
// The event queue is an inlined index-based 4-ary min-heap storing events
// by value: scheduling performs no per-event allocation (the backing array
// grows amortized), and the comparison is specialized to the (at, seq) key
// instead of going through container/heap's interface dispatch.
package sim
