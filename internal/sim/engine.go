package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for callers that want to avoid importing
// both packages.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

func (t Time) String() string { return time.Duration(t).String() }

// event is an event's callback payload, stored once in the engine's slab.
// Exactly one of the three callback forms is set: fn (plain), afn+arg
// (argument-passing, avoids a closure allocation at the call site), or
// tm+gen (timer firing, cancelled by generation mismatch without
// dequeueing).
type event struct {
	gen uint64 // timer generation; meaningful only when tm != nil
	fn  func()
	afn func(any)
	arg any
	tm  *Timer
}

// heapEntry is one slot of the priority queue: the full ordering key held
// inline (no pointer chasing to compare) plus the index of the payload in
// the slab. Sift operations move these 24-byte entries, never the payloads.
type heapEntry struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events scheduled for the same time
	idx int32
}

// before reports heap order on the (at, seq) key.
func (h heapEntry) before(other heapEntry) bool {
	if h.at != other.at {
		return h.at < other.at
	}
	return h.seq < other.seq
}

// Engine is a deterministic discrete-event scheduler.
//
// Engine is not safe for concurrent use; all interaction must happen from
// the goroutine driving Run (which includes all event callbacks).
type Engine struct {
	now     Time
	seq     uint64
	heap    []heapEntry // 4-ary min-heap on (at, seq)
	slab    []event     // payloads addressed by heapEntry.idx
	free    []int32     // recycled slab slots
	rng     *rand.Rand
	stopped bool

	// Executed counts events run so far; useful as a progress metric and a
	// runaway guard in tests.
	Executed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All protocol
// randomness must come from here (or from generators seeded by it) to keep
// runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after virtual duration d (>= 0) from now.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// At runs fn at virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	e.push(e.checkTime(t), event{fn: fn})
}

// ScheduleArg runs fn(arg) after virtual duration d (>= 0) from now. It is
// the allocation-free alternative to Schedule for hot paths: a call site
// that would otherwise capture arg in a closure passes a static fn and the
// argument separately (pointer-shaped args do not allocate when boxed).
func (e *Engine) ScheduleArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtArg(e.now.Add(d), fn, arg)
}

// AtArg runs fn(arg) at virtual time t, which must not be in the past.
func (e *Engine) AtArg(t Time, fn func(any), arg any) {
	e.push(e.checkTime(t), event{afn: fn, arg: arg})
}

func (e *Engine) checkTime(t Time) Time {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	return t
}

// Stop makes the current Run invocation return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until no events remain, the virtual clock
// passes until, or Stop is called. It returns the virtual time at exit.
// An until of zero means "run until idle".
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if until > 0 && e.heap[0].at > until {
			e.now = until
			return e.now
		}
		e.runOne()
	}
	if until > 0 && e.now < until {
		e.now = until
	}
	return e.now
}

// RunUntilIdle executes all pending events (including ones scheduled while
// running) and returns the final virtual time.
func (e *Engine) RunUntilIdle() Time { return e.Run(0) }

// runOne pops and executes the single next event if any.
func (e *Engine) runOne() bool {
	if len(e.heap) == 0 {
		return false
	}
	at, ev := e.pop()
	e.now = at
	e.Executed++
	switch {
	case ev.tm != nil:
		ev.tm.fire(ev.gen)
	case ev.afn != nil:
		ev.afn(ev.arg)
	default:
		ev.fn()
	}
	return true
}

// Pending reports the number of queued events (including events from
// cancelled timer arms that have not reached their firing time yet).
func (e *Engine) Pending() int { return len(e.heap) }

// PeekNext returns the time of the earliest queued event, if any. The
// real-time driver (internal/core's live runtime) uses it to sleep exactly
// until the next virtual deadline instead of polling. Note that a
// cancelled timer's queued firing still occupies the heap until its time
// arrives, so PeekNext may report a deadline whose event turns out inert —
// waking early and finding nothing to run is harmless.
func (e *Engine) PeekNext() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// --- inlined 4-ary min-heap over slab-allocated payloads ---
//
// A 4-ary layout halves the tree depth of a binary heap, trading slightly
// more comparisons per level for far fewer cache-missing levels. The heap
// holds compact key+index entries; payloads are written once into the slab
// and read once at pop, so sift operations never copy callbacks. Slab slots
// are recycled through a free list, making the steady state allocation-free
// (the backing arrays grow amortized to peak queue depth and stay there).

func (e *Engine) push(at Time, ev event) {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		e.slab[idx] = ev
	} else {
		idx = int32(len(e.slab))
		e.slab = append(e.slab, ev)
	}
	e.seq++
	e.heap = append(e.heap, heapEntry{at: at, seq: e.seq, idx: idx})
	// Sift up.
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) pop() (Time, event) {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	// Sift down.
	h = e.heap
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(h[min]) {
				min = c
			}
		}
		if !h[min].before(h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	ev := e.slab[root.idx]
	e.slab[root.idx] = event{} // release callback/arg references
	e.free = append(e.free, root.idx)
	return root.at, ev
}

// Timer is a cancellable one-shot timer on the virtual clock. PBFT view
// change timers, beacon timeouts and client retries are built from it.
//
// Cancellation is by generation counter: Reset and Stop bump the timer's
// generation, so an already-queued firing event (which carries the
// generation it was armed under) becomes a no-op when popped. No wrapper
// closure is allocated per arm, and a superseded arm no longer pins its
// callback — the timer holds only the most recent fn.
type Timer struct {
	engine *Engine
	gen    uint64
	fn     func()
	active bool
}

// NewTimer returns an inactive timer bound to e.
func (e *Engine) NewTimer() *Timer { return &Timer{engine: e} }

// Reset (re)arms the timer to fire fn after d. Any previously armed firing
// is cancelled.
func (t *Timer) Reset(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t.gen++
	t.active = true
	t.fn = fn
	e := t.engine
	e.push(e.now.Add(d), event{gen: t.gen, tm: t})
}

// Stop cancels the timer if armed. The queued firing event (if any) becomes
// inert immediately; it is discarded when its time arrives.
func (t *Timer) Stop() {
	t.gen++
	t.active = false
	t.fn = nil
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.active }

// fire runs at the firing event's scheduled time.
func (t *Timer) fire(gen uint64) {
	if !t.active || t.gen != gen {
		return // cancelled or superseded by a later Reset
	}
	t.active = false
	fn := t.fn
	t.fn = nil
	fn()
}
