// Package sim provides a deterministic discrete-event simulation engine.
//
// Everything in this repository — network delivery, node CPUs, enclave
// operation costs, protocol timers — runs on a single virtual clock owned
// by an Engine. Events are executed in (time, insertion-sequence) order, so
// a run is a pure function of its seed and inputs: two runs with the same
// seed produce identical traces, which makes the large-scale experiments in
// internal/bench reproducible bit for bit.
//
// The engine is intentionally single-threaded. Protocol code runs inside
// event callbacks and must not block; anything that takes (virtual) time is
// expressed by scheduling a follow-up event.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for callers that want to avoid importing
// both packages.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events scheduled for the same time
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler.
//
// Engine is not safe for concurrent use; all interaction must happen from
// the goroutine driving Run (which includes all event callbacks).
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	// Executed counts events run so far; useful as a progress metric and a
	// runaway guard in tests.
	Executed uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All protocol
// randomness must come from here (or from generators seeded by it) to keep
// runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after virtual duration d (>= 0) from now.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now.Add(d), fn)
}

// At runs fn at virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling in the past: %v < %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Stop makes the current Run invocation return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until no events remain, the virtual clock
// passes until, or Stop is called. It returns the virtual time at exit.
// An until of zero means "run until idle".
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if until > 0 && next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.Executed++
		next.fn()
	}
	if until > 0 && e.now < until {
		e.now = until
	}
	return e.now
}

// RunUntilIdle executes all pending events (including ones scheduled while
// running) and returns the final virtual time.
func (e *Engine) RunUntilIdle() Time { return e.Run(0) }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Timer is a cancellable one-shot timer on the virtual clock. PBFT view
// change timers, beacon timeouts and client retries are built from it.
type Timer struct {
	engine  *Engine
	version uint64
	active  bool
}

// NewTimer returns an inactive timer bound to e.
func (e *Engine) NewTimer() *Timer { return &Timer{engine: e} }

// Reset (re)arms the timer to fire fn after d. Any previously armed firing
// is cancelled.
func (t *Timer) Reset(d Duration, fn func()) {
	t.version++
	t.active = true
	v := t.version
	t.engine.Schedule(d, func() {
		if t.active && t.version == v {
			t.active = false
			fn()
		}
	})
}

// Stop cancels the timer if armed.
func (t *Timer) Stop() {
	t.version++
	t.active = false
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.active }
