package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleRun measures the core schedule→pop→dispatch cycle:
// each iteration pushes one event into a standing queue and runs exactly one
// event, which is the steady-state shape of every simulation in this repo
// (the heap stays warm at some depth while events stream through it).
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	// Standing backlog so push/pop exercise real sift work.
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Millisecond, nop)
		e.runOne()
	}
}

// BenchmarkEngineChurn measures a full fill-then-drain cycle at depth 1024
// on a warm engine (engines are long-lived; backing arrays reach peak queue
// depth once and are reused from then on).
func BenchmarkEngineChurn(b *testing.B) {
	nop := func() {}
	e := NewEngine(1)
	churn := func() {
		for j := 0; j < 1024; j++ {
			e.Schedule(time.Duration(j%64)*time.Microsecond, nop)
		}
		e.RunUntilIdle()
	}
	churn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn()
	}
}

// BenchmarkTimerResetStop measures the timer re-arm path that PBFT's batch
// and view-change timers hit on every request and every executed block.
func BenchmarkTimerResetStop(b *testing.B) {
	e := NewEngine(1)
	tm := e.NewTimer()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Millisecond, fn)
		tm.Stop()
		if i%1024 == 0 {
			// Drain the cancelled events so the queue does not grow without
			// bound; this bounds the amortized drain cost into the measure.
			e.RunUntilIdle()
		}
	}
}
