package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v, want 3ms", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits int
	e.Schedule(time.Millisecond, func() {
		hits++
		e.Schedule(time.Millisecond, func() { hits++ })
	})
	e.RunUntilIdle()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock = %v, want 2ms", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var hits int
	e.Schedule(time.Millisecond, func() { hits++ })
	e.Schedule(time.Hour, func() { hits++ })
	e.Run(Time(time.Second))
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	var hits int
	e.Schedule(time.Millisecond, func() { hits++; e.Stop() })
	e.Schedule(2*time.Millisecond, func() { hits++ })
	e.RunUntilIdle()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (stop should halt run)", hits)
	}
	e.RunUntilIdle() // resumes
	if hits != 2 {
		t.Fatalf("hits = %d, want 2 after resume", hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(time.Millisecond, func() {
		e.At(0, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) ([]int64, uint64) {
		e := NewEngine(seed)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(e.Now()), e.Rand().Int63n(1000))
			if len(trace) < 100 {
				e.Schedule(Duration(e.Rand().Int63n(int64(time.Millisecond))), step)
			}
		}
		e.Schedule(0, step)
		e.RunUntilIdle()
		return trace, e.Executed
	}
	a, execA := run(42)
	b, execB := run(42)
	if execA != execB {
		t.Fatalf("Executed counts differ: %d vs %d", execA, execB)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// The reference trace pins the engine's event ordering semantics: it was
// recorded on the container/heap implementation and must be reproduced
// exactly by any rewrite of the queue (same (time, FIFO) order, same
// Executed count, same interleaving of timers with plain events).
func TestEngineTraceStableAcrossRewrites(t *testing.T) {
	e := NewEngine(9)
	var trace []string
	log := func(tag string) func() {
		return func() { trace = append(trace, tag+"@"+e.Now().String()) }
	}
	tm := e.NewTimer()
	e.Schedule(2*time.Millisecond, log("b"))
	e.Schedule(time.Millisecond, log("a"))
	tm.Reset(time.Millisecond, log("t1")) // superseded below
	e.Schedule(time.Millisecond, log("a2"))
	tm.Reset(3*time.Millisecond, log("t2"))
	e.ScheduleArg(2*time.Millisecond, func(x any) { trace = append(trace, x.(string)+"@"+e.Now().String()) }, "arg")
	e.RunUntilIdle()
	got := strings.Join(trace, " ")
	want := "a@1ms a2@1ms b@2ms arg@2ms t2@3ms"
	if got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
	if e.Executed != 6 { // 5 fired + 1 cancelled timer arm popped inert
		t.Fatalf("Executed = %d, want 6", e.Executed)
	}
}

// A stopped timer must never fire, and its queued arm must not keep the
// engine "live": draining the queue discards the inert event and releases
// the callback (the timer no longer pins fn after Stop).
func TestTimerStopNeverFiresNoLiveEvent(t *testing.T) {
	e := NewEngine(1)
	tm := e.NewTimer()
	fired := false
	tm.Reset(time.Millisecond, func() { fired = true })
	tm.Stop()
	if tm.Active() {
		t.Fatal("timer active after stop")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", e.Pending())
	}
	// Stop, then re-arm: only the new arm may fire.
	hits := 0
	tm.Reset(time.Millisecond, func() { hits += 1 })
	tm.Stop()
	tm.Reset(time.Millisecond, func() { hits += 10 })
	e.RunUntilIdle()
	if hits != 10 {
		t.Fatalf("hits = %d, want 10 (only the latest arm fires)", hits)
	}
}

// The schedule→run cycle and the timer arm/cancel cycle must not allocate:
// these are the simulation's innermost loops, and the zero-allocation
// property is load-bearing for large-scale sweeps.
func TestEngineHotPathsDoNotAllocate(t *testing.T) {
	e := NewEngine(1)
	nop := func() {}
	for i := 0; i < 256; i++ { // pre-grow heap, slab and free list
		e.Schedule(Duration(i)*time.Microsecond, nop)
	}
	e.RunUntilIdle()
	if a := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Microsecond, nop)
		e.runOne()
	}); a != 0 {
		t.Fatalf("schedule+run allocates %.1f/op, want 0", a)
	}
	tm := e.NewTimer()
	if a := testing.AllocsPerRun(1000, func() {
		tm.Reset(time.Microsecond, nop)
		tm.Stop()
		e.RunUntilIdle()
	}); a != 0 {
		t.Fatalf("timer reset/stop allocates %.1f/op, want 0", a)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	e := NewEngine(1)
	tm := e.NewTimer()
	var fired int
	tm.Reset(time.Millisecond, func() { fired++ })
	tm.Reset(2*time.Millisecond, func() { fired += 10 })
	e.RunUntilIdle()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (first arm cancelled by reset)", fired)
	}
	tm.Reset(time.Millisecond, func() { fired += 100 })
	tm.Stop()
	e.RunUntilIdle()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (stop should cancel)", fired)
	}
	if tm.Active() {
		t.Fatal("timer reports active after stop")
	}
}

func TestCPUSerialExecution(t *testing.T) {
	e := NewEngine(1)
	cpu := NewCPU(e)
	var doneAt []Time
	e.Schedule(0, func() {
		cpu.Exec(10*time.Millisecond, func() { doneAt = append(doneAt, e.Now()) })
		cpu.Exec(5*time.Millisecond, func() { doneAt = append(doneAt, e.Now()) })
	})
	e.RunUntilIdle()
	if len(doneAt) != 2 {
		t.Fatalf("completions = %d, want 2", len(doneAt))
	}
	if doneAt[0] != Time(10*time.Millisecond) || doneAt[1] != Time(15*time.Millisecond) {
		t.Fatalf("completion times = %v, want [10ms 15ms]", doneAt)
	}
	if cpu.BusyTime != 15*time.Millisecond {
		t.Fatalf("busy time = %v, want 15ms", cpu.BusyTime)
	}
}

func TestCPUQueueDelay(t *testing.T) {
	e := NewEngine(1)
	cpu := NewCPU(e)
	e.Schedule(0, func() {
		cpu.Exec(time.Second, func() {})
		if d := cpu.QueueDelay(); d != time.Second {
			t.Errorf("queue delay = %v, want 1s", d)
		}
		if cpu.Idle() {
			t.Error("cpu reports idle with backlog")
		}
	})
	e.RunUntilIdle()
	if !cpu.Idle() {
		t.Error("cpu not idle after drain")
	}
}

// Property: for any batch of scheduled delays, events execute in
// nondecreasing time order and the final clock equals the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var last Time
		ok := true
		var max Duration
		for _, d := range delays {
			dd := Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunUntilIdle()
		return ok && e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPU completion times are a prefix-sum of costs when submitted
// back-to-back, i.e. the CPU never overlaps work.
func TestCPUPrefixSumProperty(t *testing.T) {
	f := func(costs []uint16) bool {
		e := NewEngine(7)
		cpu := NewCPU(e)
		var got []Time
		e.Schedule(0, func() {
			for _, c := range costs {
				cpu.Exec(Duration(c)*time.Microsecond, func() { got = append(got, e.Now()) })
			}
		})
		e.RunUntilIdle()
		var sum Duration
		for i, c := range costs {
			sum += Duration(c) * time.Microsecond
			if got[i] != Time(sum) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
