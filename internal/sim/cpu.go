package sim

// CPU models a single serial processor owned by one node. Work submitted to
// the CPU executes in FIFO order; each item occupies the processor for its
// service time before its completion callback runs.
//
// This is the mechanism that converts message complexity into throughput
// loss: a PBFT replica that must verify O(N) signatures per block sees its
// CPU busy-until horizon recede as N grows, exactly like the saturated
// Hyperledger validators in the paper's evaluation (§7.1).
type CPU struct {
	engine    *Engine
	busyUntil Time

	// BusyTime accumulates total virtual time spent executing work, used by
	// the Figure 17 cost-breakdown experiment.
	BusyTime Duration
}

// NewCPU returns an idle CPU on engine e.
func NewCPU(e *Engine) *CPU { return &CPU{engine: e} }

// occupy reserves the processor for cost and returns the completion time.
func (c *CPU) occupy(cost Duration) Time {
	start := c.engine.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start.Add(cost)
	c.busyUntil = done
	c.BusyTime += cost
	return done
}

// Exec enqueues work with the given service cost and runs fn when the work
// completes. A zero cost still preserves FIFO ordering with queued work.
func (c *CPU) Exec(cost Duration, fn func()) {
	c.engine.At(c.occupy(cost), fn)
}

// ExecArg is Exec with an argument-passing callback: hot paths use it with
// a static fn to avoid allocating a capturing closure per work item.
func (c *CPU) ExecArg(cost Duration, fn func(any), arg any) {
	c.engine.AtArg(c.occupy(cost), fn, arg)
}

// Charge accounts for cost without a completion callback. It is used for
// work whose effects are applied synchronously but whose time must still be
// billed (e.g. hashing a batch while building a block).
func (c *CPU) Charge(cost Duration) {
	c.Exec(cost, func() {})
}

// QueueDelay reports how long newly submitted work would wait before
// starting, i.e. the current backlog.
func (c *CPU) QueueDelay() Duration {
	now := c.engine.Now()
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil.Sub(now)
}

// Idle reports whether the CPU has no backlog.
func (c *CPU) Idle() bool { return c.QueueDelay() == 0 }
