// Package workload implements the BLOCKBENCH-style benchmark drivers the
// paper evaluates with (§7): the KVStore and SmallBank transaction
// generators, uniform and Zipf-skewed key choosers, and open-loop /
// closed-loop client drivers.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/txn"
)

// Chooser picks keys/accounts, optionally with Zipf skew. A skew of 0 is
// uniform; larger values concentrate the mass on low ranks (the paper
// sweeps the Zipf coefficient from 0 to 1.99 in Figure 13).
type Chooser struct {
	n   int
	rng *rand.Rand
	cdf []float64 // nil for uniform
}

// NewChooser builds a chooser over n items with the given Zipf skew.
func NewChooser(rng *rand.Rand, n int, skew float64) *Chooser {
	c := &Chooser{n: n, rng: rng}
	if skew > 0 {
		weights := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			weights[i] = 1 / math.Pow(float64(i+1), skew)
			total += weights[i]
		}
		c.cdf = make([]float64, n)
		acc := 0.0
		for i, w := range weights {
			acc += w / total
			c.cdf[i] = acc
		}
	}
	return c
}

// Pick returns an item index in [0, n).
func (c *Chooser) Pick() int {
	if c.cdf == nil {
		return c.rng.Intn(c.n)
	}
	u := c.rng.Float64()
	lo, hi := 0, c.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PickTwo returns two distinct indices.
func (c *Chooser) PickTwo() (int, int) {
	a := c.Pick()
	b := c.Pick()
	for b == a {
		b = c.Pick()
	}
	return a, b
}

// Gen produces transactions for a benchmark.
type Gen interface {
	// NextSingle returns the next single-shard transaction (for raw
	// consensus benchmarks and the no-reference-committee runs).
	NextSingle() chain.Tx
	// NextDistributed returns the next distributed transaction against
	// sys, or (tx, false) when the generated transaction happens to be
	// single-shard (submit it with SubmitSingle to the returned shard).
	NextDistributed(sys *core.System) (txn.DTx, chain.Tx, int, bool)
}

// KVStoreGen issues put/update transactions; the paper's modified driver
// issues 3 updates per transaction for the multi-shard runs.
type KVStoreGen struct {
	rng     *rand.Rand
	chooser *Chooser
	nextID  uint64
	// KeysPerTx is the number of updates per transaction (default 3).
	KeysPerTx int
}

// NewKVStoreGen builds a KVStore generator over `keys` keys.
func NewKVStoreGen(rng *rand.Rand, keys int, skew float64) *KVStoreGen {
	return &KVStoreGen{rng: rng, chooser: NewChooser(rng, keys, skew), KeysPerTx: 3, nextID: uint64(rng.Int63n(1 << 40))}
}

func (g *KVStoreGen) id() uint64 { g.nextID++; return g.nextID }

func kvKey(i int) string { return "key" + strconv.Itoa(i) }

// NextSingle implements Gen.
func (g *KVStoreGen) NextSingle() chain.Tx {
	id := g.id()
	return chain.Tx{
		ID: id, Chaincode: "kvstore", Fn: "put",
		Args: []string{kvKey(g.chooser.Pick()), "v" + strconv.FormatUint(id, 10)},
	}
}

// NextDistributed implements Gen.
func (g *KVStoreGen) NextDistributed(sys *core.System) (txn.DTx, chain.Tx, int, bool) {
	id := g.id()
	kv := make(map[string]string, g.KeysPerTx)
	for len(kv) < g.KeysPerTx {
		kv[kvKey(g.chooser.Pick())] = "v" + strconv.FormatUint(id, 10)
	}
	d := sys.KVUpdateDTx(fmt.Sprintf("kv%d", id), kv)
	if len(d.Ops) > 1 {
		return d, chain.Tx{}, 0, true
	}
	// All keys landed on one shard: a plain single-shard update.
	args := d.Ops[0].Args[1:]
	tx := chain.Tx{ID: id, Chaincode: "kvstore", Fn: "update", Args: args}
	return txn.DTx{}, tx, d.Ops[0].Shard, false
}

// SmallBankGen issues sendPayment transactions between accounts.
type SmallBankGen struct {
	rng      *rand.Rand
	chooser  *Chooser
	accounts int
	nextID   uint64
	// Amount per payment.
	Amount int64
	// CrossOnly restricts NextDistributed to account pairs on different
	// shards, so every payment takes the locked 2PC path. The default
	// mixed stream routes same-shard pairs through the plain smallbank
	// chaincode, whose writes ignore the 2PL lock keys — a payment racing
	// an in-flight prepare on the same account is silently lost when the
	// commit installs its absolute staged value. Conservation experiments
	// need CrossOnly (the live driver has the same property: only 2PC
	// transfers move money).
	CrossOnly bool
}

// NewSmallBankGen builds a SmallBank generator over `accounts` accounts
// (named core.Account(i)).
func NewSmallBankGen(rng *rand.Rand, accounts int, skew float64) *SmallBankGen {
	return &SmallBankGen{rng: rng, chooser: NewChooser(rng, accounts, skew),
		accounts: accounts, Amount: 1, nextID: uint64(rng.Int63n(1<<40)) + (1 << 41)}
}

func (g *SmallBankGen) id() uint64 { g.nextID++; return g.nextID }

// NextSingle implements Gen.
func (g *SmallBankGen) NextSingle() chain.Tx {
	a, b := g.chooser.PickTwo()
	return chain.Tx{
		ID: g.id(), Chaincode: "smallbank", Fn: "sendPayment",
		Args: []string{core.Account(a), core.Account(b), strconv.FormatInt(g.Amount, 10)},
	}
}

// NextDistributed implements Gen.
func (g *SmallBankGen) NextDistributed(sys *core.System) (txn.DTx, chain.Tx, int, bool) {
	a, b := g.chooser.PickTwo()
	from, to := core.Account(a), core.Account(b)
	if g.CrossOnly {
		for sys.ShardOfKey(from) == sys.ShardOfKey(to) {
			a, b = g.chooser.PickTwo()
			from, to = core.Account(a), core.Account(b)
		}
	}
	id := g.id()
	if sys.ShardOfKey(from) == sys.ShardOfKey(to) {
		tx := chain.Tx{
			ID: id, Chaincode: "smallbank", Fn: "sendPayment",
			Args: []string{from, to, strconv.FormatInt(g.Amount, 10)},
		}
		return txn.DTx{}, tx, sys.ShardOfKey(from), false
	}
	return sys.PaymentDTx(fmt.Sprintf("sb%d", id), from, to, g.Amount), chain.Tx{}, 0, true
}

// Stats aggregates driver-side results.
type Stats struct {
	Submitted int
	Committed int
	Aborted   int
	// Retried counts re-submissions of aborted transactions (see
	// ClosedLoopShardedDriver.MaxRetries); Submitted does not include
	// them, so goodput comparisons stay per logical transaction.
	Retried  int
	TotalLat time.Duration
	// lats records every completion latency for percentile reporting.
	lats []time.Duration
}

// record accounts one completion latency.
func (s *Stats) record(lat time.Duration) {
	s.TotalLat += lat
	s.lats = append(s.lats, lat)
}

// PercentileLatency returns the p-th percentile completion latency
// (p in [0,100]); 0 if nothing completed.
func (s *Stats) PercentileLatency(p float64) time.Duration {
	if len(s.lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// AbortRate returns aborted/(committed+aborted).
func (s *Stats) AbortRate() float64 {
	done := s.Committed + s.Aborted
	if done == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(done)
}

// AvgLatency returns the mean completion latency.
func (s *Stats) AvgLatency() time.Duration {
	done := s.Committed + s.Aborted
	if done == 0 {
		return 0
	}
	return s.TotalLat / time.Duration(done)
}

// ClosedLoopShardedDriver drives a core.System with the paper's modified
// closed-loop driver (§7): each client keeps Outstanding transactions in
// flight and issues a new one as each completes.
type ClosedLoopShardedDriver struct {
	Sys         *core.System
	Gen         Gen
	Outstanding int
	// MaxRetries re-submits an aborted distributed transaction (under a
	// fresh id, after RetryBackoff) up to this many times before counting
	// it as aborted. 0 keeps the paper's fire-once behaviour used for the
	// Figure 13 abort-rate panel.
	MaxRetries   int
	RetryBackoff time.Duration
	Stats        Stats
	stopAt       sim.Time
}

// Start launches the driver across all of the system's clients for the
// given duration (measured from the current virtual time).
func (d *ClosedLoopShardedDriver) Start(dur time.Duration) {
	d.stopAt = d.Sys.Engine.Now().Add(dur)
	for c := 0; c < d.Sys.Clients(); c++ {
		for k := 0; k < d.Outstanding; k++ {
			d.issue(c)
		}
	}
}

func (d *ClosedLoopShardedDriver) issue(client int) {
	if d.Sys.Engine.Now() >= d.stopAt {
		return
	}
	d.Stats.Submitted++
	dtx, tx, shard, isDist := d.Gen.NextDistributed(d.Sys)
	if isDist {
		d.submitDist(client, dtx, 0)
	} else {
		d.Sys.Client(client).SubmitSingle(shard, tx, func(res txn.Result) {
			d.account(res)
			d.issue(client)
		})
	}
}

func (d *ClosedLoopShardedDriver) submitDist(client int, dtx txn.DTx, attempt int) {
	d.Sys.Client(client).SubmitDistributed(dtx, func(res txn.Result) {
		if !res.Committed && attempt < d.MaxRetries && d.Sys.Engine.Now() < d.stopAt {
			// 2PL conflicts abort rather than wait (§6.2); the client-side
			// answer is a retry under a fresh transaction id.
			d.Stats.Retried++
			d.Stats.record(res.Latency)
			retry := dtx.WithRetryID(attempt + 1)
			d.Sys.Engine.Schedule(d.RetryBackoff, func() {
				d.submitDist(client, retry, attempt+1)
			})
			return
		}
		d.account(res)
		d.issue(client)
	})
}

func (d *ClosedLoopShardedDriver) account(res txn.Result) {
	if res.Committed {
		d.Stats.Committed++
	} else {
		d.Stats.Aborted++
	}
	d.Stats.record(res.Latency)
}

// OpenLoopShardedDriver injects single-shard transactions into a
// core.System at a fixed aggregate rate — the Figure 14 configuration,
// which runs SmallBank without the reference committee and measures raw
// sharded throughput. Payments are generated within one shard at a time so
// every transaction is single-shard by construction.
type OpenLoopShardedDriver struct {
	Sys *core.System
	// Benchmark is "smallbank" or "kvstore".
	Benchmark string
	// Accounts is the seeded SmallBank account count.
	Accounts int
	// Rate is the aggregate injection rate, transactions per second.
	Rate float64
	Rng  *rand.Rand

	perShard [][]string
	nextID   uint64
	rr       int
}

// Start schedules injections for the given duration (measured from the
// current virtual time).
func (d *OpenLoopShardedDriver) Start(dur time.Duration) {
	until := time.Duration(d.Sys.Engine.Now()) + dur
	if d.Benchmark == "smallbank" {
		d.perShard = make([][]string, d.Sys.Config.Shards)
		for i := 0; i < d.Accounts; i++ {
			acc := core.Account(i)
			sh := d.Sys.ShardOfKey(acc)
			d.perShard[sh] = append(d.perShard[sh], acc)
		}
	}
	d.nextID = uint64(d.Rng.Int63n(1<<40)) + (1 << 42)
	interval := time.Duration(float64(time.Second) / d.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var tick func()
	tick = func() {
		d.issueOne()
		if d.Sys.Engine.Now().Add(interval) < sim.Time(until) {
			d.Sys.Engine.Schedule(interval, tick)
		}
	}
	d.Sys.Engine.Schedule(0, tick)
}

func (d *OpenLoopShardedDriver) issueOne() {
	d.nextID++
	d.rr++
	shard := d.rr % d.Sys.Config.Shards
	var tx chain.Tx
	switch d.Benchmark {
	case "smallbank":
		accs := d.perShard[shard]
		if len(accs) < 2 {
			return
		}
		a := d.Rng.Intn(len(accs))
		b := d.Rng.Intn(len(accs))
		for b == a {
			b = d.Rng.Intn(len(accs))
		}
		tx = chain.Tx{ID: d.nextID, Chaincode: "smallbank", Fn: "sendPayment",
			Args: []string{accs[a], accs[b], "1"}}
	default: // kvstore
		key := fmt.Sprintf("ol%d", d.nextID)
		shard = core.ShardOfKey(key, d.Sys.Config.Shards)
		tx = chain.Tx{ID: d.nextID, Chaincode: "kvstore", Fn: "put", Args: []string{key, "v"}}
	}
	nodes := d.Sys.Topology.ShardNodes[shard]
	target := nodes[tx.ID%uint64(len(nodes))]
	txn.SubmitPlain(d.Sys.Net.Endpoint(d.Sys.Client(0).ID()), target, tx)
}
