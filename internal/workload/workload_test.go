package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/core"
	"repro/internal/tee"
)

func TestChooserUniform(t *testing.T) {
	c := NewChooser(rand.New(rand.NewSource(1)), 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[c.Pick()]++
	}
	for i, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("uniform chooser skewed: item %d picked %d/10000", i, n)
		}
	}
}

func TestChooserZipfSkew(t *testing.T) {
	c := NewChooser(rand.New(rand.NewSource(2)), 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[c.Pick()]++
	}
	if counts[0] <= counts[50]*3 {
		t.Fatalf("zipf head not dominant: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Higher skew concentrates more.
	c2 := NewChooser(rand.New(rand.NewSource(2)), 100, 1.99)
	head2 := 0
	for i := 0; i < 20000; i++ {
		if c2.Pick() == 0 {
			head2++
		}
	}
	if head2 <= counts[0] {
		t.Fatalf("skew 1.99 head (%d) not above skew 1.2 head (%d)", head2, counts[0])
	}
}

func TestPickTwoDistinct(t *testing.T) {
	c := NewChooser(rand.New(rand.NewSource(3)), 2, 1.99)
	for i := 0; i < 200; i++ {
		a, b := c.PickTwo()
		if a == b {
			t.Fatal("PickTwo returned equal indices")
		}
	}
}

func TestKVStoreGen(t *testing.T) {
	g := NewKVStoreGen(rand.New(rand.NewSource(4)), 100, 0)
	seen := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		tx := g.NextSingle()
		if tx.Chaincode != "kvstore" || tx.Fn != "put" || len(tx.Args) != 2 {
			t.Fatalf("bad tx: %+v", tx)
		}
		if seen[tx.ID] {
			t.Fatal("duplicate tx id")
		}
		seen[tx.ID] = true
	}
}

func TestSmallBankGenDistributed(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Seed: 5, Shards: 4, ShardSize: 3, RefSize: 3,
		Variant: pbft.VariantAHLPlus, Clients: 1, Costs: tee.FreeCosts(),
	})
	g := NewSmallBankGen(rand.New(rand.NewSource(5)), 50, 0)
	dist, single := 0, 0
	for i := 0; i < 100; i++ {
		d, tx, shard, isDist := g.NextDistributed(sys)
		if isDist {
			dist++
			if len(d.Ops) != 2 || d.CommitFn != "commitPayment" {
				t.Fatalf("bad dtx: %+v", d)
			}
			if d.Ops[0].Shard == d.Ops[1].Shard {
				t.Fatal("distributed payment with both ops on one shard")
			}
		} else {
			single++
			if tx.Fn != "sendPayment" {
				t.Fatalf("bad single tx: %+v", tx)
			}
			if shard < 0 || shard >= 4 {
				t.Fatalf("bad shard %d", shard)
			}
		}
	}
	// With 4 shards, ~3/4 of random pairs are cross-shard.
	if dist < 50 {
		t.Fatalf("only %d/100 distributed; expected majority", dist)
	}
	if single == 0 {
		t.Fatal("no single-shard payments at all; suspicious")
	}
}

func TestClosedLoopDriverCompletesWork(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Seed: 6, Shards: 2, ShardSize: 3, RefSize: 3,
		Variant: pbft.VariantAHLPlus, Clients: 2, SendReplies: true,
		Costs: tee.FreeCosts(),
	})
	sys.Seed(30, 1_000_000)
	g := NewSmallBankGen(rand.New(rand.NewSource(6)), 30, 0)
	drv := &ClosedLoopShardedDriver{Sys: sys, Gen: g, Outstanding: 4}
	drv.Start(20 * time.Second)
	sys.Run(25 * time.Second)
	done := drv.Stats.Committed + drv.Stats.Aborted
	if done < 20 {
		t.Fatalf("closed loop completed only %d txs", done)
	}
	if drv.Stats.AvgLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	if drv.Stats.Submitted < done {
		t.Fatal("completed more than submitted")
	}
}

func TestClosedLoopDriverRetriesAborts(t *testing.T) {
	run := func(retries int) Stats {
		sys := core.NewSystem(core.Config{
			Seed: 6, Shards: 2, ShardSize: 3, RefSize: 3,
			Variant: pbft.VariantAHLPlus, Clients: 2, SendReplies: true,
			Costs: tee.FreeCosts(),
		})
		// Few accounts + heavy skew: 2PL conflicts abound.
		sys.Seed(8, 1_000_000)
		g := NewSmallBankGen(rand.New(rand.NewSource(7)), 8, 1.5)
		drv := &ClosedLoopShardedDriver{Sys: sys, Gen: g, Outstanding: 8,
			MaxRetries: retries, RetryBackoff: 50 * time.Millisecond}
		drv.Start(20 * time.Second)
		sys.Run(30 * time.Second)
		return drv.Stats
	}

	base := run(0)
	if base.Retried != 0 {
		t.Fatalf("retries disabled but Retried = %d", base.Retried)
	}
	if base.Aborted == 0 {
		t.Fatal("contention workload produced no aborts; retry test is vacuous")
	}

	withRetry := run(4)
	if withRetry.Retried == 0 {
		t.Fatal("no retries happened despite aborts")
	}
	if withRetry.AbortRate() >= base.AbortRate() {
		t.Fatalf("retries did not reduce the logical abort rate: %.3f -> %.3f",
			base.AbortRate(), withRetry.AbortRate())
	}
}

func TestWithRetryIDRewritesOps(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Seed: 6, Shards: 2, ShardSize: 3, RefSize: 3,
		Variant: pbft.VariantAHLPlus, Clients: 1, SendReplies: true,
		Costs: tee.FreeCosts(),
	})
	d := sys.PaymentDTx("orig", "acc1", "acc2", 5)
	r := d.WithRetryID(2)
	if r.TxID == d.TxID {
		t.Fatal("retry reused the transaction id")
	}
	for i, op := range r.Ops {
		if op.Args[0] != r.TxID {
			t.Fatalf("op %d still carries old txid %q", i, op.Args[0])
		}
		if d.Ops[i].Args[0] != "orig" {
			t.Fatal("WithRetryID mutated the original")
		}
	}
}

func TestOpenLoopDriverInjects(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Seed: 7, Shards: 2, ShardSize: 3, RefSize: 0,
		Variant: pbft.VariantAHLPlus, Clients: 1, Costs: tee.FreeCosts(),
	})
	sys.Seed(30, 1_000_000)
	drv := &OpenLoopShardedDriver{Sys: sys, Benchmark: "smallbank", Accounts: 30,
		Rate: 100, Rng: rand.New(rand.NewSource(7))}
	drv.Start(10 * time.Second)
	sys.Run(15 * time.Second)
	if got := sys.TotalExecuted(); got < 500 {
		t.Fatalf("open loop executed %d, want ~1000", got)
	}
}

func TestPercentileLatency(t *testing.T) {
	var s Stats
	if got := s.PercentileLatency(99); got != 0 {
		t.Fatalf("empty stats percentile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		s.record(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		got := s.PercentileLatency(c.p)
		// Exact index math: p/100*(n-1), allow one-step rounding.
		if got < c.want-time.Millisecond || got > c.want+time.Millisecond {
			t.Fatalf("p%.0f = %v, want ~%v", c.p, got, c.want)
		}
	}
	// Order independence: reversed insertion gives the same percentiles.
	var r Stats
	for i := 100; i >= 1; i-- {
		r.record(time.Duration(i) * time.Millisecond)
	}
	if r.PercentileLatency(50) != s.PercentileLatency(50) {
		t.Fatal("percentile depends on insertion order")
	}
}

func TestDriverRecordsPercentiles(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Seed: 6, Shards: 2, ShardSize: 3, RefSize: 3,
		Variant: pbft.VariantAHLPlus, Clients: 2, SendReplies: true,
		Costs: tee.FreeCosts(),
	})
	sys.Seed(30, 1_000_000)
	g := NewSmallBankGen(rand.New(rand.NewSource(6)), 30, 0)
	drv := &ClosedLoopShardedDriver{Sys: sys, Gen: g, Outstanding: 4}
	drv.Start(15 * time.Second)
	sys.Run(20 * time.Second)

	p50 := drv.Stats.PercentileLatency(50)
	p99 := drv.Stats.PercentileLatency(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles not monotone: p50=%v p99=%v", p50, p99)
	}
	if avg := drv.Stats.AvgLatency(); avg <= 0 {
		t.Fatalf("avg latency %v", avg)
	}
}

func TestAbortRateMath(t *testing.T) {
	s := Stats{Committed: 8, Aborted: 2, TotalLat: 10 * time.Second}
	if s.AbortRate() != 0.2 {
		t.Fatalf("abort rate = %v", s.AbortRate())
	}
	if s.AvgLatency() != time.Second {
		t.Fatalf("avg latency = %v", s.AvgLatency())
	}
	empty := Stats{}
	if empty.AbortRate() != 0 || empty.AvgLatency() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
