package workload

import (
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sim"
)

// QueryStats aggregates read-driver results.
type QueryStats struct {
	// Issued counts sweeps started; Done those that completed; Failed
	// those that errored out (after the driver's re-pin retries).
	Issued int
	Done   int
	Failed int
	// Rows counts merged rows streamed by scan sweeps; Totals records the
	// conserved total of each conservation sweep.
	Rows   int
	Totals []int64
	// Violations counts conservation sweeps whose total differed from the
	// driver's Expect (0 means every height-pinned cut balanced).
	Violations int

	lats []time.Duration
}

// record accounts one completed sweep's virtual-time latency.
func (s *QueryStats) record(lat time.Duration) { s.lats = append(s.lats, lat) }

// PercentileLatency returns the p-th percentile sweep latency (p in
// [0,100]); 0 if nothing completed.
func (s *QueryStats) PercentileLatency(p float64) time.Duration {
	if len(s.lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// QueryDriver issues closed-loop scatter-gather reads through a client's
// query gateway while the write drivers run: each completed sweep
// immediately starts the next, keeping Outstanding sweeps in flight. The
// reads go through the height-pinned MVCC views, so none of them takes a
// 2PL lock or enters consensus — the experiment tables make the
// interference claim measurable.
type QueryDriver struct {
	Sys *core.System
	// Client selects which client gateway carries the queries.
	Client int
	// Mode selects the read shape: "conserve" runs the full
	// balance-conservation sweep (checking + savings sums and staged-2PC
	// residue resolution at one pinned cut); "scan" streams the checking
	// rows of every shard in global key order, page by page.
	Mode string
	// PageLimit bounds entries per chunk for scan mode (0 = server default).
	PageLimit int
	// Outstanding is the number of sweeps kept in flight (default 1).
	Outstanding int
	// Expect, when nonzero, is the conserved total every conservation
	// sweep must report; mismatches count as Stats.Violations.
	Expect int64
	// Attempts bounds per-sweep re-pin retries on checkpoint overtake
	// (default 3).
	Attempts int

	Stats  QueryStats
	stopAt sim.Time
}

// Start launches the driver for the given duration (measured from the
// current virtual time).
func (d *QueryDriver) Start(dur time.Duration) {
	d.stopAt = d.Sys.Engine.Now().Add(dur)
	n := d.Outstanding
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		d.issue()
	}
}

func (d *QueryDriver) issue() {
	now := d.Sys.Engine.Now()
	if now >= d.stopAt {
		return
	}
	d.Stats.Issued++
	gw := d.Sys.QueryGateway(d.Client)
	targets := d.Sys.QueryTargets()
	attempts := d.Attempts
	if attempts < 1 {
		attempts = 3
	}
	start := now
	finish := func(failed bool) {
		if failed {
			d.Stats.Failed++
		} else {
			d.Stats.Done++
			d.Stats.record(time.Duration(d.Sys.Engine.Now() - start))
		}
		d.issue()
	}
	switch d.Mode {
	case "scan":
		rows := 0
		err := gw.Start(&query.Query{
			Targets: targets,
			Spec: query.Spec{Kind: query.KindScan,
				Start: "c_", End: chain.PrefixEnd("c_"), Proj: query.ProjKV},
			PageLimit: d.PageLimit,
			OnRow:     func(query.Row) { rows++ },
			OnDone: func(_ *query.Result, err error) {
				// Count rows only for completed sweeps: an aborted scan (pin
				// pruned mid-stream) would otherwise skew rows/sweep.
				if err == nil {
					d.Stats.Rows += rows
				}
				finish(err != nil)
			},
		})
		if err != nil {
			finish(true)
		}
	default: // conserve
		query.Conservation(gw, targets, attempts, func(res *query.ConservationResult, err error) {
			if err == nil {
				d.Stats.Totals = append(d.Stats.Totals, res.Total)
				if d.Expect != 0 && res.Total != d.Expect {
					d.Stats.Violations++
				}
			}
			finish(err != nil)
		})
	}
}
