// Package simnet provides the simulated message-passing network that every
// protocol in this repository runs on.
//
// Role in the AHL design: the paper's throughput story is largely a
// networking story — stock PBFT livelocks at scale because request floods
// crowd out consensus traffic, and the AHL+ optimizations (§4.1) attack
// exactly that. This layer therefore models the two resource constraints
// that drive those results, on top of raw delivery:
//
//   - a per-node serial CPU (sim.CPU) through which every received message
//     must pass, charging verification/execution costs; and
//   - bounded inbound queues. Hyperledger v0.6 used one shared queue for
//     request and consensus traffic, so request floods dropped consensus
//     messages and livelocked PBFT at scale; optimization 1 of AHL+ splits
//     the queue in two (§4.1). Both configurations are available here.
//
// The network reproduces the two environments of the paper's evaluation
// (§7): an in-house LAN cluster with sub-millisecond latency, and a Google
// Cloud Platform deployment spanning up to 8 regions whose inter-region
// latencies are the paper's Table 3 (see GCPMatrix). Endpoints attach to a
// Network with a queue discipline and exchange messages whose delivery
// events run on the owning sim.Engine, keeping whole-system runs
// deterministic.
package simnet
