package simnet

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkNetDelivery measures the full message path — route, latency
// scheduling, queueing, CPU service, handler dispatch — which every
// protocol message in the simulation traverses.
func BenchmarkNetDelivery(b *testing.B) {
	engine := sim.NewEngine(1)
	net := New(engine, LAN())
	delivered := 0
	for _, id := range []NodeID{0, 1} {
		ep := net.Attach(id, DefaultSplitQueue())
		ep.SetHandler(HandlerFunc{
			CostFn:   func(m Message) time.Duration { return time.Microsecond },
			HandleFn: func(m Message) { delivered++ },
		})
	}
	src := net.Endpoint(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(Message{To: 1, Class: ClassConsensus, Type: "bench", Size: 128})
		engine.RunUntilIdle()
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkNetBroadcast measures a 16-way broadcast with queued backlog,
// the hot pattern of PBFT vote dissemination.
func BenchmarkNetBroadcast(b *testing.B) {
	engine := sim.NewEngine(1)
	net := New(engine, LAN())
	const n = 16
	for i := 0; i < n; i++ {
		ep := net.Attach(NodeID(i), DefaultSplitQueue())
		ep.SetHandler(HandlerFunc{HandleFn: func(m Message) {}})
	}
	src := net.Endpoint(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Broadcast(Message{Class: ClassConsensus, Type: "bench", Size: 160})
		engine.RunUntilIdle()
	}
}
