package simnet

import (
	"math/rand"
	"time"
)

// LatencyModel computes one-way message delay, including transmission time
// for the message size.
type LatencyModel interface {
	Delay(from, to NodeID, size int, rng *rand.Rand) time.Duration
}

// Uniform is a flat base latency with uniform jitter and a shared link
// bandwidth. It models the paper's in-house cluster when configured with
// LAN numbers.
type Uniform struct {
	Base      time.Duration
	Jitter    time.Duration // delay is Base + U[0,Jitter)
	Bandwidth int64         // bytes/second; 0 means infinite
}

// Delay implements LatencyModel.
func (u Uniform) Delay(_, _ NodeID, size int, rng *rand.Rand) time.Duration {
	d := u.Base
	if u.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(u.Jitter)))
	}
	if u.Bandwidth > 0 {
		d += time.Duration(float64(size) / float64(u.Bandwidth) * float64(time.Second))
	}
	return d
}

// LAN returns the latency model for the paper's local cluster: 100 servers
// on a datacenter network (~0.2 ms RTT, 1 Gbps).
func LAN() Uniform {
	return Uniform{Base: 100 * time.Microsecond, Jitter: 100 * time.Microsecond, Bandwidth: 125_000_000}
}

// ThrottledLAN returns the constrained network used by the paper's PoET
// experiments (§C.1): 50 Mbps links with 100 ms imposed latency.
func ThrottledLAN() Uniform {
	return Uniform{Base: 100 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 6_250_000}
}

// RegionNames are the 8 GCP regions of the paper's Table 3, in matrix order.
var RegionNames = []string{
	"us-west1-b", "us-west2-a", "us-east1-b", "us-east4-b",
	"asia-east1-b", "asia-southeast1-b", "europe-west1-b", "europe-west2-a",
}

// gcpRTT is the paper's Table 3 inter-region latency matrix in milliseconds
// (we treat the published numbers as one-way delays, as the paper's
// propagation-delay measurements do).
var gcpRTT = [8][8]float64{
	{0.0, 24.7, 66.7, 59.0, 120.2, 150.8, 138.9, 132.7},
	{24.7, 0.0, 62.9, 60.5, 129.5, 160.5, 140.4, 136.1},
	{66.7, 62.9, 0.0, 12.7, 183.8, 216.6, 93.1, 88.2},
	{59.1, 60.4, 12.7, 0.0, 176.6, 208.4, 81.9, 75.6},
	{118.7, 129.5, 184.9, 176.6, 0.0, 50.5, 255.5, 252.5},
	{150.8, 160.5, 216.7, 208.3, 50.6, 0.0, 288.8, 283.8},
	{138.9, 140.5, 93.2, 81.8, 255.7, 288.7, 0.0, 7.1},
	{132.1, 134.9, 88.1, 76.6, 252.1, 283.9, 7.1, 0.0},
}

// GCPMatrix returns a copy of the Table 3 latency matrix in milliseconds.
func GCPMatrix() [8][8]float64 { return gcpRTT }

// Regional models a multi-region deployment: nodes are assigned to regions
// and pairwise delay comes from the region matrix plus intra-region base
// latency, jitter and bandwidth.
type Regional struct {
	// RegionOf maps a node to its region index. Nodes not present are in
	// region 0.
	RegionOf map[NodeID]int
	// Matrix holds inter-region one-way delays.
	Matrix [8][8]float64 // milliseconds
	// Regions restricts the deployment to the first Regions regions.
	Regions int
	// Intra is the delay between nodes in the same region.
	Intra time.Duration
	// JitterFrac adds U[0,JitterFrac) of the base delay as jitter.
	JitterFrac float64
	// Bandwidth in bytes/second; 0 means infinite.
	Bandwidth int64
}

// GCP returns a Regional model over the first `regions` regions of Table 3
// with nodes spread round-robin.
func GCP(regions int, nodes []NodeID) *Regional {
	if regions < 1 || regions > 8 {
		panic("simnet: GCP supports 1..8 regions")
	}
	m := &Regional{
		RegionOf:   make(map[NodeID]int, len(nodes)),
		Matrix:     gcpRTT,
		Regions:    regions,
		Intra:      500 * time.Microsecond,
		JitterFrac: 0.05,
		Bandwidth:  62_500_000, // 500 Mbps cloud instance egress
	}
	for i, id := range nodes {
		m.RegionOf[id] = i % regions
	}
	return m
}

// Region returns the region index of node id.
func (r *Regional) Region(id NodeID) int { return r.RegionOf[id] }

// Delay implements LatencyModel.
func (r *Regional) Delay(from, to NodeID, size int, rng *rand.Rand) time.Duration {
	ra, rb := r.RegionOf[from], r.RegionOf[to]
	var d time.Duration
	if ra == rb {
		d = r.Intra
	} else {
		d = time.Duration(r.Matrix[ra][rb] * float64(time.Millisecond))
	}
	if r.JitterFrac > 0 && d > 0 {
		d += time.Duration(rng.Int63n(int64(float64(d)*r.JitterFrac) + 1))
	}
	if r.Bandwidth > 0 {
		d += time.Duration(float64(size) / float64(r.Bandwidth) * float64(time.Second))
	}
	return d
}

// MaxDelay reports the largest pairwise base delay in the deployment; shard
// formation uses it to derive the synchrony bound Δ (§5.1: the paper sets
// Δ to 3x the measured maximum propagation delay).
func (r *Regional) MaxDelay() time.Duration {
	max := r.Intra
	for a := 0; a < r.Regions; a++ {
		for b := 0; b < r.Regions; b++ {
			d := time.Duration(r.Matrix[a][b] * float64(time.Millisecond))
			if d > max {
				max = d
			}
		}
	}
	return max
}
