package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// NodeID identifies an endpoint on the network. IDs are small dense
// integers assigned by the harness; ID 0 is valid.
type NodeID int

// Class partitions traffic for queue management, mirroring the message
// metadata Hyperledger uses to route messages to channels.
type Class uint8

const (
	// ClassRequest is client request traffic.
	ClassRequest Class = iota
	// ClassConsensus is consensus protocol traffic.
	ClassConsensus
	numClasses
)

// Valid reports whether c names a real traffic class. Wire decoders use
// it to reject frames whose class byte would index past the endpoints'
// fixed per-class queue arrays.
func (c Class) Valid() bool { return c < numClasses }

func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassConsensus:
		return "consensus"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Message is a network message. Payload is an arbitrary protocol-defined
// value; Size is the serialized size in bytes used for transmission-time
// modelling.
type Message struct {
	From, To NodeID
	Class    Class
	Type     string
	Payload  any
	Size     int
	// Verified marks the payload's attestation as already checked by a
	// transport-side pre-verifier (live runtime only). It is local
	// receive-path state: the wire codec neither encodes nor decodes it,
	// and the simulator never sets it.
	Verified bool
}

// Handler processes messages delivered to an endpoint. Cost reports the CPU
// service time required to process m (signature verifications, execution,
// enclave calls); Handle is invoked once that time has elapsed on the
// node's serial CPU.
type Handler interface {
	Cost(m Message) time.Duration
	Handle(m Message)
}

// HandlerFunc adapts a pair of functions to Handler.
type HandlerFunc struct {
	CostFn   func(m Message) time.Duration
	HandleFn func(m Message)
}

// Cost implements Handler.
func (h HandlerFunc) Cost(m Message) time.Duration {
	if h.CostFn == nil {
		return 0
	}
	return h.CostFn(m)
}

// Handle implements Handler.
func (h HandlerFunc) Handle(m Message) { h.HandleFn(m) }

// Filter lets a test or adversary intercept traffic. It returns the extra
// delay to impose and whether to deliver at all.
type Filter func(m Message) (extra time.Duration, deliver bool)

// FaultAction is a fault hook's verdict on one routed message.
type FaultAction struct {
	// Drop discards the message entirely.
	Drop bool
	// Delay is added on top of the modelled link latency.
	Delay time.Duration
	// Duplicates delivers that many extra copies of the message, each with
	// its own independently sampled link latency (modelling retransmit
	// duplication at the transport layer).
	Duplicates int
}

// FaultHook observes every routed message and decides its fate. It is the
// per-link injection point the internal/faults subsystem plugs into;
// distinct from Filter so adversarial tests and fault injection compose.
// A nil hook costs one predictable branch on the routing hot path.
type FaultHook interface {
	OnMessage(m Message) FaultAction
}

// QueueConfig configures an endpoint's inbound queues.
type QueueConfig struct {
	// Split selects the AHL+ optimization-1 layout: one queue per Class.
	// When false, all classes share a single FIFO (Hyperledger v0.6).
	Split bool
	// SharedCap is the shared queue capacity when Split is false.
	SharedCap int
	// RequestCap and ConsensusCap are the per-class capacities when Split
	// is true.
	RequestCap   int
	ConsensusCap int
}

// DefaultSharedQueue mirrors the stock Hyperledger configuration: one
// bounded buffer for everything, so request floods evict consensus traffic
// once the CPU falls behind.
func DefaultSharedQueue() QueueConfig { return QueueConfig{SharedCap: 4096} }

// DefaultSplitQueue mirrors AHL+ optimization 1: request pressure can no
// longer displace consensus messages.
func DefaultSplitQueue() QueueConfig {
	return QueueConfig{Split: true, RequestCap: 4096, ConsensusCap: 16384}
}

// msgRing is a FIFO ring buffer of messages. Endpoints queue through rings
// rather than slices so steady-state delivery performs no per-message
// allocation or slice-shift copying; the buffer grows to peak depth once.
type msgRing struct {
	buf  []Message
	head int
	size int
}

func (r *msgRing) len() int { return r.size }

func (r *msgRing) push(m Message) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = m
	r.size++
}

func (r *msgRing) pop() Message {
	m := r.buf[r.head]
	r.buf[r.head] = Message{} // release payload reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return m
}

// grow doubles the (power-of-two) capacity, re-linearizing the contents.
func (r *msgRing) grow() {
	cap2 := len(r.buf) * 2
	if cap2 == 0 {
		cap2 = 16
	}
	buf := make([]Message, cap2)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// clear drops all queued messages, releasing payload references.
func (r *msgRing) clear() {
	for i := 0; i < r.size; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = Message{}
	}
	r.head, r.size = 0, 0
}

// EndpointStats counts an endpoint's traffic.
type EndpointStats struct {
	Sent      int
	Delivered int
	Dropped   [numClasses]int
}

// DroppedTotal returns total dropped messages across classes.
func (s EndpointStats) DroppedTotal() int {
	t := 0
	for _, d := range s.Dropped {
		t += d
	}
	return t
}

// DroppedByClass returns the drop count for class c.
func (s EndpointStats) DroppedByClass(c Class) int { return s.Dropped[c] }

// Endpoint is a node's attachment to the network.
type Endpoint struct {
	id      NodeID
	net     *Network
	cpu     *sim.CPU
	handler Handler
	cfg     QueueConfig
	queues  [numClasses]msgRing
	// inflight is the message currently occupying the CPU (valid while
	// busy); holding it here instead of in a closure keeps the dispatch
	// path allocation-free.
	inflight Message
	busy     bool
	down     bool
	stats    EndpointStats
	// downFns are notified whenever the crashed state flips; protocol
	// layers use them to quiesce timers on crash and resume on recovery.
	downFns []func(down bool)
}

// ID returns the endpoint's node ID.
func (ep *Endpoint) ID() NodeID { return ep.id }

// CPU returns the node's serial processor, shared with non-network work
// such as block execution.
func (ep *Endpoint) CPU() *sim.CPU { return ep.cpu }

// Stats returns a snapshot of traffic counters.
func (ep *Endpoint) Stats() EndpointStats { return ep.stats }

// Handler returns the currently installed message handler (nil before
// SetHandler). Layers that wrap an endpoint's handler — the txn manager,
// the query service — use it to capture the inner handler they delegate
// non-matching messages to.
func (ep *Endpoint) Handler() Handler { return ep.handler }

// SetHandler installs the message handler. It must be set before any
// message arrives.
func (ep *Endpoint) SetHandler(h Handler) { ep.handler = h }

// SetQueueConfig replaces the queue layout (used when a node switches from
// stock to optimized configuration between experiments).
func (ep *Endpoint) SetQueueConfig(cfg QueueConfig) { ep.cfg = cfg }

// SetDown marks the node crashed (true) or alive (false). A crashed node
// discards arrivals and sends nothing. State transitions notify the
// callbacks registered with OnDownChange; setting the current state again
// is a no-op.
func (ep *Endpoint) SetDown(down bool) {
	if ep.down == down {
		return
	}
	ep.down = down
	if down {
		for c := range ep.queues {
			ep.queues[c].clear()
		}
	}
	for _, fn := range ep.downFns {
		fn(down)
	}
}

// OnDownChange registers fn to run whenever the endpoint's crashed state
// flips (fn's argument is the new state). Callbacks run synchronously in
// registration order inside SetDown, so layered protocols (replica, then
// the transaction manager wrapping it) observe transitions in a
// deterministic order.
func (ep *Endpoint) OnDownChange(fn func(down bool)) {
	ep.downFns = append(ep.downFns, fn)
}

// Down reports whether the node is crashed.
func (ep *Endpoint) Down() bool { return ep.down }

// Send transmits m from this endpoint. The From field is stamped here.
func (ep *Endpoint) Send(m Message) {
	if ep.down {
		return
	}
	m.From = ep.id
	ep.stats.Sent++
	ep.net.route(m)
}

// Broadcast sends m to every other endpoint on the network.
func (ep *Endpoint) Broadcast(m Message) {
	for _, other := range ep.net.order {
		if other != ep.id {
			m2 := m
			m2.To = other
			ep.Send(m2)
		}
	}
}

func (ep *Endpoint) capOf(c Class) int {
	if ep.cfg.Split {
		if c == ClassConsensus {
			return ep.cfg.ConsensusCap
		}
		return ep.cfg.RequestCap
	}
	return ep.cfg.SharedCap
}

func (ep *Endpoint) queuedTotal() int {
	if ep.cfg.Split {
		return -1 // not used in split mode
	}
	t := 0
	for c := range ep.queues {
		t += ep.queues[c].len()
	}
	return t
}

// arrive is called by the network when a message reaches this endpoint.
func (ep *Endpoint) arrive(m Message) {
	if ep.down {
		return
	}
	full := false
	if ep.cfg.Split {
		full = ep.queues[m.Class].len() >= ep.capOf(m.Class)
	} else {
		full = ep.queuedTotal() >= ep.cfg.SharedCap
	}
	if full {
		ep.stats.Dropped[m.Class]++
		return
	}
	ep.queues[m.Class].push(m)
	ep.dispatch()
}

// dispatch pulls the next message through the CPU, alternating between the
// two classes when both have work. The point of the split-queue
// optimization is isolation — a request flood can no longer *evict*
// consensus messages — not starvation of either class, so service stays
// fair in both layouts; what differs is whether a full request buffer can
// cause consensus drops (shared) or not (split).
func (ep *Endpoint) dispatch() {
	if ep.busy || ep.down {
		return
	}
	var m Message
	switch {
	case ep.queues[ClassConsensus].len() > 0 && (ep.queues[ClassRequest].len() == 0 || ep.stats.Delivered%2 == 0):
		m = ep.queues[ClassConsensus].pop()
	case ep.queues[ClassRequest].len() > 0:
		m = ep.queues[ClassRequest].pop()
	default:
		return
	}
	ep.busy = true
	ep.inflight = m
	cost := ep.handler.Cost(m)
	ep.cpu.ExecArg(cost, endpointServe, ep)
}

// endpointServe completes CPU service of the endpoint's in-flight message.
// It is a static callback (see sim.Engine.ScheduleArg): the in-flight
// message rides on the endpoint itself, so no closure is allocated per
// delivered message.
func endpointServe(x any) {
	ep := x.(*Endpoint)
	m := ep.inflight
	ep.inflight = Message{}
	ep.busy = false
	if !ep.down {
		ep.stats.Delivered++
		ep.handler.Handle(m)
	}
	ep.dispatch()
}

// Gateway carries messages addressed to nodes that are not attached to
// this network. It is how a live node's local simnet (holding only that
// node's endpoint) bridges onto a real transport: route hands the gateway
// every remote-bound message instead of panicking on the unknown
// destination. Inject is the inbound counterpart.
type Gateway func(m Message)

// Network connects endpoints through a latency model.
type Network struct {
	engine  *sim.Engine
	latency LatencyModel
	eps     map[NodeID]*Endpoint
	order   []NodeID
	filter  Filter
	faults  FaultHook
	gateway Gateway
	rng     *rand.Rand
	dpool   []*delivery // recycled in-flight delivery records

	// Messages and Bytes count all routed traffic.
	Messages int
	Bytes    int
}

// delivery is a message in flight between route and arrival. Records are
// pooled on the Network so routing performs no per-message allocation.
type delivery struct {
	net *Network
	dst *Endpoint
	m   Message
}

// deliverPooled is the static arrival callback: it returns the record to
// the pool before invoking arrive, so synchronous re-sends triggered by the
// handler can reuse it.
func deliverPooled(x any) {
	d := x.(*delivery)
	n, dst, m := d.net, d.dst, d.m
	d.dst, d.m = nil, Message{}
	n.dpool = append(n.dpool, d)
	dst.arrive(m)
}

// New creates a network on engine with the given latency model.
func New(engine *sim.Engine, latency LatencyModel) *Network {
	return &Network{
		engine:  engine,
		latency: latency,
		eps:     make(map[NodeID]*Endpoint),
		rng:     rand.New(rand.NewSource(engine.Rand().Int63())),
	}
}

// Engine returns the underlying simulation engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Latency returns the network's latency model.
func (n *Network) Latency() LatencyModel { return n.latency }

// SetFilter installs an adversarial traffic filter (nil to clear).
func (n *Network) SetFilter(f Filter) { n.filter = f }

// SetFaults installs a fault-injection hook (nil to clear). The hook runs
// after the filter, so a message must survive both to be delivered.
func (n *Network) SetFaults(h FaultHook) { n.faults = h }

// SetGateway installs the off-network forwarder (nil to clear). With a
// gateway installed, sends to unattached node ids are handed to it instead
// of panicking; filter and fault hooks do not apply to forwarded traffic
// (fault injection models the simulated links, not the real ones).
func (n *Network) SetGateway(gw Gateway) { n.gateway = gw }

// Inject schedules delivery of m to its locally attached destination as if
// it had just arrived off the wire: no latency model, filter, or fault
// hook applies. It is the inbound half of the gateway bridge and must be
// called from the engine's goroutine. Messages for unknown destinations
// are dropped (a live peer may legitimately hold a stale topology).
func (n *Network) Inject(m Message) {
	dst, ok := n.eps[m.To]
	if !ok {
		return
	}
	n.Messages++
	n.Bytes += m.Size
	var d *delivery
	if k := len(n.dpool); k > 0 {
		d = n.dpool[k-1]
		n.dpool = n.dpool[:k-1]
	} else {
		d = &delivery{net: n}
	}
	d.dst, d.m = dst, m
	n.engine.ScheduleArg(0, deliverPooled, d)
}

// Attach creates an endpoint for id with the given queue layout.
func (n *Network) Attach(id NodeID, cfg QueueConfig) *Endpoint {
	if _, dup := n.eps[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate endpoint %d", id))
	}
	ep := &Endpoint{id: id, net: n, cpu: sim.NewCPU(n.engine), cfg: cfg}
	n.eps[id] = ep
	n.order = append(n.order, id)
	return ep
}

// Endpoint returns the endpoint for id, or nil.
func (n *Network) Endpoint(id NodeID) *Endpoint { return n.eps[id] }

// NodeIDs returns all attached node IDs in attach order.
func (n *Network) NodeIDs() []NodeID { return append([]NodeID(nil), n.order...) }

func (n *Network) route(m Message) {
	dst, ok := n.eps[m.To]
	if !ok {
		if n.gateway != nil {
			n.Messages++
			n.Bytes += m.Size
			n.gateway(m)
			return
		}
		panic(fmt.Sprintf("simnet: send to unknown node %d", m.To))
	}
	extra := time.Duration(0)
	if n.filter != nil {
		var deliver bool
		extra, deliver = n.filter(m)
		if !deliver {
			return
		}
	}
	copies := 1
	if n.faults != nil {
		act := n.faults.OnMessage(m)
		if act.Drop {
			return
		}
		extra += act.Delay
		copies += act.Duplicates
	}
	for i := 0; i < copies; i++ {
		n.Messages++
		n.Bytes += m.Size
		delay := n.latency.Delay(m.From, m.To, m.Size, n.rng) + extra
		var d *delivery
		if k := len(n.dpool); k > 0 {
			d = n.dpool[k-1]
			n.dpool = n.dpool[:k-1]
		} else {
			d = &delivery{net: n}
		}
		d.dst, d.m = dst, m
		n.engine.ScheduleArg(delay, deliverPooled, d)
	}
}
