package simnet

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

type recorder struct {
	cost     time.Duration
	received []Message
	times    []sim.Time
	engine   *sim.Engine
}

func (r *recorder) Cost(Message) time.Duration { return r.cost }
func (r *recorder) Handle(m Message) {
	r.received = append(r.received, m)
	r.times = append(r.times, r.engine.Now())
}

func pair(t *testing.T, lat LatencyModel, cfg QueueConfig) (*sim.Engine, *Network, *Endpoint, *Endpoint, *recorder, *recorder) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e, lat)
	a := n.Attach(0, cfg)
	b := n.Attach(1, cfg)
	ra := &recorder{engine: e}
	rb := &recorder{engine: e}
	a.SetHandler(ra)
	b.SetHandler(rb)
	return e, n, a, b, ra, rb
}

func TestDeliveryWithLatency(t *testing.T) {
	e, _, a, _, _, rb := pair(t, Uniform{Base: 5 * time.Millisecond}, DefaultSharedQueue())
	e.Schedule(0, func() {
		a.Send(Message{To: 1, Type: "ping", Size: 100})
	})
	e.RunUntilIdle()
	if len(rb.received) != 1 {
		t.Fatalf("received %d messages, want 1", len(rb.received))
	}
	if rb.received[0].From != 0 || rb.received[0].Type != "ping" {
		t.Fatalf("bad message: %+v", rb.received[0])
	}
	if rb.times[0] != sim.Time(5*time.Millisecond) {
		t.Fatalf("delivered at %v, want 5ms", rb.times[0])
	}
}

func TestProcessingCostSerializes(t *testing.T) {
	e, _, a, _, _, rb := pair(t, Uniform{Base: time.Millisecond}, DefaultSharedQueue())
	rb.cost = 10 * time.Millisecond
	e.Schedule(0, func() {
		a.Send(Message{To: 1, Type: "m1"})
		a.Send(Message{To: 1, Type: "m2"})
	})
	e.RunUntilIdle()
	if len(rb.times) != 2 {
		t.Fatalf("received %d, want 2", len(rb.times))
	}
	if rb.times[0] != sim.Time(11*time.Millisecond) || rb.times[1] != sim.Time(21*time.Millisecond) {
		t.Fatalf("delivery times %v, want [11ms 21ms]", rb.times)
	}
}

func TestBandwidthAddsTransmission(t *testing.T) {
	lat := Uniform{Base: time.Millisecond, Bandwidth: 1_000_000} // 1 MB/s
	e, _, a, _, _, rb := pair(t, lat, DefaultSharedQueue())
	e.Schedule(0, func() {
		a.Send(Message{To: 1, Size: 500_000}) // 0.5s transmission
	})
	e.RunUntilIdle()
	want := sim.Time(time.Millisecond + 500*time.Millisecond)
	if rb.times[0] != want {
		t.Fatalf("delivered at %v, want %v", rb.times[0], want)
	}
}

func TestSharedQueueDropsConsensusUnderRequestFlood(t *testing.T) {
	e, _, a, b, _, rb := pair(t, Uniform{}, QueueConfig{SharedCap: 4})
	rb.cost = time.Second // b is slow, queue builds up
	e.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			a.Send(Message{To: 1, Class: ClassRequest, Type: "req"})
		}
		a.Send(Message{To: 1, Class: ClassConsensus, Type: "prepare"})
	})
	e.Run(sim.Time(2 * time.Second))
	st := b.Stats()
	if st.DroppedByClass(ClassConsensus) != 1 {
		t.Fatalf("consensus drops = %d, want 1 (shared queue full)", st.DroppedByClass(ClassConsensus))
	}
	_ = rb
}

func TestSplitQueueProtectsConsensus(t *testing.T) {
	cfg := QueueConfig{Split: true, RequestCap: 4, ConsensusCap: 64}
	e, _, a, b, _, rb := pair(t, Uniform{}, cfg)
	rb.cost = time.Millisecond
	e.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			a.Send(Message{To: 1, Class: ClassRequest, Type: "req"})
		}
		a.Send(Message{To: 1, Class: ClassConsensus, Type: "prepare"})
	})
	e.RunUntilIdle()
	st := b.Stats()
	if st.DroppedByClass(ClassConsensus) != 0 {
		t.Fatalf("consensus drops = %d, want 0 (split queue)", st.DroppedByClass(ClassConsensus))
	}
	if st.DroppedByClass(ClassRequest) == 0 {
		t.Fatal("expected request drops under flood")
	}
	// Consensus message must be served with priority: it is delivered
	// before the request backlog drains.
	found := false
	for i, m := range rb.received {
		if m.Class == ClassConsensus {
			if i > 4 {
				t.Fatalf("consensus message served at position %d, want priority", i)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("consensus message never delivered")
	}
}

func TestDownNodeDiscards(t *testing.T) {
	e, _, a, b, _, rb := pair(t, Uniform{Base: time.Millisecond}, DefaultSharedQueue())
	b.SetDown(true)
	e.Schedule(0, func() { a.Send(Message{To: 1}) })
	e.RunUntilIdle()
	if len(rb.received) != 0 {
		t.Fatal("down node received a message")
	}
	b.SetDown(false)
	e.Schedule(0, func() { a.Send(Message{To: 1}) })
	e.RunUntilIdle()
	if len(rb.received) != 1 {
		t.Fatal("revived node did not receive")
	}
	b.SetDown(true)
	e.Schedule(0, func() { b.Send(Message{To: 0}) })
	e.RunUntilIdle()
	if a.Stats().Delivered != 0 {
		t.Fatal("down node sent a message")
	}
}

func TestBroadcast(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, Uniform{Base: time.Millisecond})
	recs := make([]*recorder, 5)
	for i := 0; i < 5; i++ {
		ep := n.Attach(NodeID(i), DefaultSharedQueue())
		recs[i] = &recorder{engine: e}
		ep.SetHandler(recs[i])
	}
	e.Schedule(0, func() {
		n.Endpoint(0).Broadcast(Message{Type: "hello"})
	})
	e.RunUntilIdle()
	if len(recs[0].received) != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for i := 1; i < 5; i++ {
		if len(recs[i].received) != 1 {
			t.Fatalf("node %d received %d, want 1", i, len(recs[i].received))
		}
	}
}

func TestFilterDropsAndDelays(t *testing.T) {
	e, n, a, _, _, rb := pair(t, Uniform{Base: time.Millisecond}, DefaultSharedQueue())
	n.SetFilter(func(m Message) (time.Duration, bool) {
		if m.Type == "drop" {
			return 0, false
		}
		return 10 * time.Millisecond, true
	})
	e.Schedule(0, func() {
		a.Send(Message{To: 1, Type: "drop"})
		a.Send(Message{To: 1, Type: "keep"})
	})
	e.RunUntilIdle()
	if len(rb.received) != 1 || rb.received[0].Type != "keep" {
		t.Fatalf("received %v, want only keep", rb.received)
	}
	if rb.times[0] != sim.Time(11*time.Millisecond) {
		t.Fatalf("delivered at %v, want 11ms (filtered delay)", rb.times[0])
	}
}

func TestRegionalDelays(t *testing.T) {
	nodes := []NodeID{0, 1, 2, 3}
	g := GCP(4, nodes)
	rng := rand.New(rand.NewSource(1))
	g.JitterFrac = 0
	g.Bandwidth = 0
	// Node 0 -> region 0 (us-west1), node 1 -> region 1 (us-west2).
	d := g.Delay(0, 1, 0, rng)
	if d != time.Duration(24.7*float64(time.Millisecond)) {
		t.Fatalf("cross-region delay = %v, want 24.7ms", d)
	}
	// Same region: nodes 0 and... with 4 nodes in 4 regions none share.
	g2 := GCP(2, nodes) // nodes 0,2 in region 0
	g2.JitterFrac = 0
	g2.Bandwidth = 0
	if d := g2.Delay(0, 2, 0, rng); d != g2.Intra {
		t.Fatalf("intra-region delay = %v, want %v", d, g2.Intra)
	}
	if g.MaxDelay() <= 0 {
		t.Fatal("max delay must be positive")
	}
	full := GCP(8, nodes)
	if got := full.MaxDelay(); got != time.Duration(288.8*float64(time.Millisecond)) {
		t.Fatalf("8-region max delay = %v, want 288.8ms", got)
	}
}

func TestGCPMatrixSymmetryish(t *testing.T) {
	m := GCPMatrix()
	for i := 0; i < 8; i++ {
		if m[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := 0; j < 8; j++ {
			diff := m[i][j] - m[j][i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 5 { // Table 3 is measured, allow small asymmetry
				t.Fatalf("matrix wildly asymmetric at %d,%d: %v vs %v", i, j, m[i][j], m[j][i])
			}
		}
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, Uniform{})
	n.Attach(3, DefaultSharedQueue())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	n.Attach(3, DefaultSharedQueue())
}

func TestNetworkCounters(t *testing.T) {
	e, n, a, _, _, _ := pair(t, Uniform{}, DefaultSharedQueue())
	e.Schedule(0, func() {
		a.Send(Message{To: 1, Size: 100})
		a.Send(Message{To: 1, Size: 50})
	})
	e.RunUntilIdle()
	if n.Messages != 2 || n.Bytes != 150 {
		t.Fatalf("counters = %d msgs %d bytes, want 2/150", n.Messages, n.Bytes)
	}
	if a.Stats().Sent != 2 {
		t.Fatalf("sent = %d, want 2", a.Stats().Sent)
	}
}
