// Package aaom implements the attested append-only memory (A2M) of Chun et
// al. (SOSP'07), the small trusted log abstraction that AHL keeps inside
// the enclave to remove equivocation (§4.1).
//
// A node must bind each outgoing consensus message to a slot of the log for
// its message type before sending it; the enclave signs an attestation of
// the binding. Because a slot can hold exactly one digest, a Byzantine node
// cannot produce two conflicting messages (e.g. two different prepares for
// the same view and sequence number) that both carry valid attestations —
// which is what lets AHL tolerate f = (N-1)/2 failures with quorum f+1.
//
// The package also implements the sealing/recovery hooks used by the
// Appendix A rollback defense: after a restart the log refuses all
// bindings until the host presents a stable checkpoint at or beyond the
// estimated high-water mark HM.
package aaom

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/blockcrypto"
	"repro/internal/tee"
)

// EnclaveName identifies the A2M enclave binary.
const EnclaveName = "aaom"

// Measurement is the code measurement of the A2M enclave.
func Measurement() tee.Measurement { return tee.MeasurementOf(EnclaveName) }

// Attestation proves that digest was bound to slot of the named log by a
// genuine A2M enclave.
type Attestation struct {
	Log    string
	Slot   uint64
	Digest blockcrypto.Digest
	Report tee.Report
}

func bindingDigest(log string, slot uint64, d blockcrypto.Digest) blockcrypto.Digest {
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], slot)
	return blockcrypto.Hash([]byte("bind:"+log), sb[:], d[:])
}

// Verify checks the attestation under the deployment's key registry.
func (a Attestation) Verify(scheme blockcrypto.Verifier) bool {
	if a.Report.ReportData != bindingDigest(a.Log, a.Slot, a.Digest) {
		return false
	}
	return tee.VerifyReport(scheme, Measurement(), a.Report)
}

// ErrConflict is returned when a slot is already bound to a different
// digest — an equivocation attempt.
var ErrConflict = &tee.ErrEnclave{Op: "aaom.Bind", Reason: "slot already bound to a different digest"}

// ErrRecovering is returned while the enclave awaits rollback-safe recovery.
var ErrRecovering = &tee.ErrEnclave{Op: "aaom.Bind", Reason: "log is recovering; present a stable checkpoint >= HM"}

// Memory is one node's A2M enclave holding any number of named logs.
type Memory struct {
	platform *tee.Platform
	logs     map[string]map[uint64]blockcrypto.Digest

	recovering bool
	hm         uint64
}

// New instantiates the A2M enclave on platform.
func New(platform *tee.Platform) *Memory {
	return &Memory{
		platform: platform,
		logs:     make(map[string]map[uint64]blockcrypto.Digest),
	}
}

// Bind appends digest d at slot of the named log and returns a signed
// attestation. Binding the same (log, slot, digest) again is idempotent and
// returns a fresh attestation; binding a different digest fails with
// ErrConflict. While the enclave is recovering, all bindings fail with
// ErrRecovering.
func (m *Memory) Bind(log string, slot uint64, d blockcrypto.Digest) (Attestation, error) {
	if m.recovering {
		return Attestation{}, ErrRecovering
	}
	l := m.logs[log]
	if l == nil {
		l = make(map[uint64]blockcrypto.Digest)
		m.logs[log] = l
	}
	if prev, ok := l[slot]; ok && prev != d {
		return Attestation{}, ErrConflict
	}
	l[slot] = d
	m.platform.Charge(m.platform.Costs().Append)
	report := m.platform.Quote(Measurement(), bindingDigest(log, slot, d))
	return Attestation{Log: log, Slot: slot, Digest: d, Report: report}, nil
}

// Lookup returns a fresh attestation for an existing binding.
func (m *Memory) Lookup(log string, slot uint64) (Attestation, bool) {
	l := m.logs[log]
	d, ok := l[slot]
	if !ok {
		return Attestation{}, false
	}
	m.platform.Charge(m.platform.Costs().Append)
	report := m.platform.Quote(Measurement(), bindingDigest(log, slot, d))
	return Attestation{Log: log, Slot: slot, Digest: d, Report: report}, true
}

// End returns the highest bound slot of the named log and whether the log
// is non-empty.
func (m *Memory) End(log string) (uint64, bool) {
	l := m.logs[log]
	if len(l) == 0 {
		return 0, false
	}
	var max uint64
	for s := range l {
		if s > max {
			max = s
		}
	}
	return max, true
}

// Truncate drops all bindings at or below slot for every log; AHL calls it
// at stable checkpoints to bound enclave memory.
func (m *Memory) Truncate(slot uint64) {
	//ahl:nondeterministic per-log truncation is delete-only and independent per log; no cross-log state is observed
	for _, l := range m.logs {
		for s := range l {
			if s <= slot {
				delete(l, s)
			}
		}
	}
}

type sealedState struct {
	Logs map[string]map[uint64]blockcrypto.Digest `json:"logs"`
}

const sealName = "aaom-state"

// Seal persists the log contents to the platform's sealed storage.
func (m *Memory) Seal() {
	blob, err := json.Marshal(sealedState{Logs: m.logs})
	if err != nil {
		panic(fmt.Sprintf("aaom: seal: %v", err))
	}
	m.platform.Seal(sealName, blob)
}

// Restart simulates an enclave crash + restart: state is reloaded from
// sealed storage (which the host may have rolled back) and the enclave
// enters recovery mode with the given high-water mark estimate HM. Until
// CompleteRecovery is called the enclave refuses all bindings, which keeps
// the host from sending any consensus message (Appendix A).
func (m *Memory) Restart(hm uint64) {
	m.logs = make(map[string]map[uint64]blockcrypto.Digest)
	if blob := m.platform.Unseal(sealName); blob != nil {
		var st sealedState
		if err := json.Unmarshal(blob, &st); err == nil && st.Logs != nil {
			m.logs = st.Logs
		}
	}
	m.recovering = true
	m.hm = hm
}

// Recovering reports whether the enclave is awaiting recovery.
func (m *Memory) Recovering() bool { return m.recovering }

// SetRecoveryHM installs the high-water-mark estimate computed by the
// Appendix A peer-query procedure (HM = L + ckpM, where ckpM passed the
// f-other-replicas test, so it is backed by at least one honest peer).
// Restart's initial mark is a refuse-everything placeholder; the first
// estimate replaces it, after which the mark can only be raised.
func (m *Memory) SetRecoveryHM(hm uint64) {
	if !m.recovering {
		return
	}
	if m.hm == ^uint64(0) || hm > m.hm {
		m.hm = hm
	}
}

// HM returns the current recovery high-water mark.
func (m *Memory) HM() uint64 { return m.hm }

// CompleteRecovery exits recovery mode once the host presents a stable
// checkpoint sequence number at or beyond HM. The checkpoint's validity
// (a quorum of signed checkpoint messages) is verified by the consensus
// layer before calling this.
func (m *Memory) CompleteRecovery(stableCheckpoint uint64) error {
	if !m.recovering {
		return nil
	}
	if stableCheckpoint < m.hm {
		return &tee.ErrEnclave{Op: "aaom.CompleteRecovery",
			Reason: fmt.Sprintf("checkpoint %d below high-water mark %d", stableCheckpoint, m.hm)}
	}
	m.recovering = false
	// Discard any stale bindings at or below the checkpoint: they belong to
	// an execution prefix the committee has already moved past.
	m.Truncate(stableCheckpoint)
	return nil
}
