package aaom

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/tee"
)

func newMem(t *testing.T) (*Memory, blockcrypto.Scheme) {
	if t != nil {
		t.Helper()
	}
	e := sim.NewEngine(1)
	scheme := blockcrypto.NewSimScheme()
	signer := scheme.NewSigner(1, rand.New(rand.NewSource(1)))
	p := tee.NewPlatform(e, nil, tee.FreeCosts(), signer, 1)
	return New(p), scheme
}

func d(s string) blockcrypto.Digest { return blockcrypto.Hash([]byte(s)) }

func TestBindAndVerify(t *testing.T) {
	m, scheme := newMem(t)
	att, err := m.Bind("prepare", 5, d("block-a"))
	if err != nil {
		t.Fatal(err)
	}
	if !att.Verify(scheme) {
		t.Fatal("genuine attestation rejected")
	}
	if att.Log != "prepare" || att.Slot != 5 || att.Digest != d("block-a") {
		t.Fatalf("attestation fields wrong: %+v", att)
	}
	forged := att
	forged.Slot = 6
	if forged.Verify(scheme) {
		t.Fatal("slot-tampered attestation accepted")
	}
	forged = att
	forged.Digest = d("block-b")
	if forged.Verify(scheme) {
		t.Fatal("digest-tampered attestation accepted")
	}
	forged = att
	forged.Log = "commit"
	if forged.Verify(scheme) {
		t.Fatal("log-tampered attestation accepted")
	}
}

func TestEquivocationPrevented(t *testing.T) {
	m, _ := newMem(t)
	if _, err := m.Bind("prepare", 9, d("a")); err != nil {
		t.Fatal(err)
	}
	// Idempotent rebind of same digest is fine.
	if _, err := m.Bind("prepare", 9, d("a")); err != nil {
		t.Fatalf("idempotent rebind failed: %v", err)
	}
	// Conflicting digest at the same slot must be refused: this is the
	// equivocation the enclave exists to prevent.
	if _, err := m.Bind("prepare", 9, d("b")); !errors.Is(err, ErrConflict) {
		t.Fatalf("equivocation returned %v, want ErrConflict", err)
	}
	// Same slot in a different log is independent.
	if _, err := m.Bind("commit", 9, d("b")); err != nil {
		t.Fatalf("different log should be independent: %v", err)
	}
}

func TestLookupAndEnd(t *testing.T) {
	m, scheme := newMem(t)
	if _, ok := m.Lookup("l", 1); ok {
		t.Fatal("lookup on empty log succeeded")
	}
	if _, ok := m.End("l"); ok {
		t.Fatal("end on empty log succeeded")
	}
	m.Bind("l", 1, d("x"))
	m.Bind("l", 7, d("y"))
	att, ok := m.Lookup("l", 7)
	if !ok || !att.Verify(scheme) || att.Digest != d("y") {
		t.Fatalf("lookup failed: %+v ok=%v", att, ok)
	}
	end, ok := m.End("l")
	if !ok || end != 7 {
		t.Fatalf("end = %d ok=%v, want 7", end, ok)
	}
}

func TestTruncate(t *testing.T) {
	m, _ := newMem(t)
	for i := uint64(1); i <= 10; i++ {
		m.Bind("l", i, d("x"))
	}
	m.Truncate(7)
	if _, ok := m.Lookup("l", 7); ok {
		t.Fatal("slot 7 survived truncate")
	}
	if _, ok := m.Lookup("l", 8); !ok {
		t.Fatal("slot 8 lost by truncate")
	}
}

func TestSealRestartRecovery(t *testing.T) {
	m, _ := newMem(t)
	for i := uint64(1); i <= 5; i++ {
		m.Bind("prepare", i, d("x"))
	}
	m.Seal()
	m.Bind("prepare", 6, d("y"))

	// Crash and restart with HM estimate 6 (from the Appendix A peer
	// query). Sealed state only knows up to slot 5 — stale.
	m.Restart(6)
	if !m.Recovering() {
		t.Fatal("not recovering after restart")
	}
	if _, err := m.Bind("prepare", 7, d("z")); !errors.Is(err, ErrRecovering) {
		t.Fatalf("bind during recovery returned %v, want ErrRecovering", err)
	}
	// A checkpoint below HM must be refused.
	if err := m.CompleteRecovery(5); err == nil {
		t.Fatal("recovery completed with checkpoint below HM")
	}
	if err := m.CompleteRecovery(6); err != nil {
		t.Fatal(err)
	}
	if m.Recovering() {
		t.Fatal("still recovering after valid checkpoint")
	}
	if _, err := m.Bind("prepare", 7, d("z")); err != nil {
		t.Fatalf("bind after recovery failed: %v", err)
	}
}

func TestRollbackAttackDefeated(t *testing.T) {
	e := sim.NewEngine(1)
	scheme := blockcrypto.NewSimScheme()
	signer := scheme.NewSigner(1, rand.New(rand.NewSource(1)))
	p := tee.NewPlatform(e, nil, tee.FreeCosts(), signer, 1)
	m := New(p)

	// Honest execution binds slots 1..3, sealing after each.
	m.Bind("prepare", 1, d("m1"))
	m.Seal()
	m.Bind("prepare", 2, d("m2"))
	m.Seal()
	m.Bind("prepare", 3, d("m3"))
	m.Seal()

	// The malicious OS rolls sealed state back to the version that only
	// knows slot 1, then restarts the enclave hoping to re-bind slot 2
	// with a conflicting digest (equivocation via rollback).
	if !p.Rollback("aaom-state", 2) {
		t.Fatal("rollback setup failed")
	}
	m.Restart(3) // honest HM estimation (Appendix A) yields >= 3

	// Attack blocked: no bindings until a checkpoint >= 3 is presented,
	// and such a checkpoint implies slots <= 3 are already finalized and
	// truncated, so the stale slot 2 can never be re-bound differently.
	if _, err := m.Bind("prepare", 2, d("m2'")); !errors.Is(err, ErrRecovering) {
		t.Fatalf("rollback equivocation returned %v, want ErrRecovering", err)
	}
	if err := m.CompleteRecovery(3); err != nil {
		t.Fatal(err)
	}
	// Post-recovery the enclave refuses nothing new, but slot 2 was
	// truncated as already-finalized; binding a conflicting digest there
	// is harmless because the quorum has moved past seq 3 — and fresh
	// slots behave append-only as usual.
	if _, err := m.Bind("prepare", 4, d("m4")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Bind("prepare", 4, d("m4'")); !errors.Is(err, ErrConflict) {
		t.Fatal("fresh slot allowed equivocation after recovery")
	}
}

// Property: a log never returns two valid attestations with the same
// (log, slot) and different digests, across arbitrary bind sequences.
func TestNoConflictingAttestationsProperty(t *testing.T) {
	type op struct {
		Slot   uint8
		Digest uint8
	}
	f := func(ops []op) bool {
		m, _ := newMem(nil)
		issued := make(map[uint64]blockcrypto.Digest)
		for _, o := range ops {
			slot := uint64(o.Slot % 16)
			dg := d(string(rune('a' + o.Digest%8)))
			att, err := m.Bind("l", slot, dg)
			if err != nil {
				continue
			}
			if prev, ok := issued[slot]; ok && prev != att.Digest {
				return false
			}
			issued[slot] = att.Digest
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
