package tee

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
)

func newPlatform(t *testing.T) (*Platform, blockcrypto.Scheme, *sim.Engine, *sim.CPU) {
	t.Helper()
	e := sim.NewEngine(1)
	cpu := sim.NewCPU(e)
	scheme := blockcrypto.NewSimScheme()
	signer := scheme.NewSigner(1, rand.New(rand.NewSource(1)))
	p := NewPlatform(e, cpu, DefaultCosts(), signer, 42)
	return p, scheme, e, cpu
}

func TestQuoteVerifies(t *testing.T) {
	p, scheme, _, _ := newPlatform(t)
	m := MeasurementOf("test-enclave")
	data := blockcrypto.Hash([]byte("payload"))
	r := p.Quote(m, data)
	if !VerifyReport(scheme, m, r) {
		t.Fatal("genuine report rejected")
	}
	if VerifyReport(scheme, MeasurementOf("other"), r) {
		t.Fatal("report verified under wrong measurement")
	}
	bad := r
	bad.ReportData = blockcrypto.Hash([]byte("forged"))
	if VerifyReport(scheme, m, bad) {
		t.Fatal("tampered report data accepted")
	}
}

func TestCostsCharged(t *testing.T) {
	p, _, _, cpu := newPlatform(t)
	before := cpu.BusyTime
	p.Quote(MeasurementOf("x"), blockcrypto.Digest{})
	costs := DefaultCosts()
	want := costs.EnclaveSwitch + costs.Sign
	if cpu.BusyTime-before != want {
		t.Fatalf("quote charged %v, want %v", cpu.BusyTime-before, want)
	}
}

func TestAggregateCostMatchesTable2(t *testing.T) {
	c := DefaultCosts()
	got := c.Aggregate(8)
	// Table 2 reports 8031.2 us for f=8; our decomposition should land
	// within a few percent.
	want := time.Duration(8031.2 * float64(time.Microsecond))
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if float64(diff)/float64(want) > 0.03 {
		t.Fatalf("aggregate(8) = %v, want ~%v", got, want)
	}
}

func TestMonotonicCounter(t *testing.T) {
	p, _, _, _ := newPlatform(t)
	if v := p.IncrementCounter("c"); v != 1 {
		t.Fatalf("first increment = %d, want 1", v)
	}
	if v := p.IncrementCounter("c"); v != 2 {
		t.Fatalf("second increment = %d, want 2", v)
	}
	if v := p.CounterValue("c"); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if v := p.CounterValue("other"); v != 0 {
		t.Fatalf("fresh counter = %d, want 0", v)
	}
}

func TestSealUnsealRollback(t *testing.T) {
	p, _, _, _ := newPlatform(t)
	if p.Unseal("s") != nil {
		t.Fatal("unseal of empty storage should be nil")
	}
	p.Seal("s", []byte("v1"))
	p.Seal("s", []byte("v2"))
	p.Seal("s", []byte("v3"))
	if got := string(p.Unseal("s")); got != "v3" {
		t.Fatalf("unseal = %q, want v3", got)
	}
	if !p.Rollback("s", 2) {
		t.Fatal("rollback refused")
	}
	if got := string(p.Unseal("s")); got != "v1" {
		t.Fatalf("after rollback unseal = %q, want v1", got)
	}
	if p.Rollback("s", 5) {
		t.Fatal("rollback past history should fail")
	}
	if p.Rollback("s", 0) {
		t.Fatal("zero rollback should fail")
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	e := sim.NewEngine(1)
	scheme := blockcrypto.NewSimScheme()
	s1 := scheme.NewSigner(1, rand.New(rand.NewSource(1)))
	s2 := scheme.NewSigner(2, rand.New(rand.NewSource(2)))
	a := NewPlatform(e, nil, FreeCosts(), s1, 7)
	b := NewPlatform(e, nil, FreeCosts(), s2, 7)
	if a.RandUint64() != b.RandUint64() {
		t.Fatal("same platform seed should give same stream")
	}
	c := NewPlatform(e, nil, FreeCosts(), s1, 8)
	d := NewPlatform(e, nil, FreeCosts(), s1, 7)
	_ = d.RandUint64()
	if c.RandUint64() == d.RandUint64() {
		// Not impossible but with the given seeds it must differ; keep the
		// assertion deterministic by checking a long prefix.
		same := true
		for i := 0; i < 8; i++ {
			if c.RandUint64() != d.RandUint64() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestTrustedTime(t *testing.T) {
	p, _, e, _ := newPlatform(t)
	e.Schedule(3*time.Second, func() {
		if p.Now() != sim.Time(3*time.Second) {
			t.Errorf("trusted time = %v, want 3s", p.Now())
		}
	})
	e.RunUntilIdle()
}
