// Package beacon implements the RandomnessBeacon enclave of §5.1: the
// trusted source of unbiased randomness that seeds shard formation.
//
// At each epoch e the enclave draws two independent random values q (l
// bits) and rnd (64 bits) with sgx_read_rand and returns a signed
// certificate <e, rnd> if and only if q == 0. The enclave answers at most
// once per epoch, so a malicious host cannot grind: it gets one sample and
// may only choose to publish or withhold it, and withholding is handled by
// the lowest-rnd lock-in rule of the distributed protocol.
//
// Appendix A restart defense: q and rnd live in volatile enclave memory, so
// a restart would let the host re-sample. The enclave therefore refuses to
// serve any epoch for a duration Δ after (re)instantiation; the genesis
// epoch is additionally guarded by a hardware monotonic counter so the
// enclave cannot be restarted at all during bootstrap.
package beacon

import (
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/tee"
)

// EnclaveName identifies the beacon enclave binary.
const EnclaveName = "randomness-beacon"

// Measurement is the code measurement of the beacon enclave.
func Measurement() tee.Measurement { return tee.MeasurementOf(EnclaveName) }

// Cert is a signed randomness certificate for an epoch.
type Cert struct {
	Epoch  uint64
	Rnd    uint64
	Report tee.Report
}

func certDigest(epoch, rnd uint64) blockcrypto.Digest {
	return tee.Uint64Digest(0xbeac0, epoch, rnd)
}

// Verify checks the certificate under the deployment's key registry.
func (c Cert) Verify(scheme blockcrypto.Verifier) bool {
	if c.Report.ReportData != certDigest(c.Epoch, c.Rnd) {
		return false
	}
	return tee.VerifyReport(scheme, Measurement(), c.Report)
}

// Errors returned by Generate.
var (
	ErrAlreadyInvoked = &tee.ErrEnclave{Op: "beacon.Generate", Reason: "already invoked for this epoch"}
	ErrUnlucky        = &tee.ErrEnclave{Op: "beacon.Generate", Reason: "q != 0; no certificate this epoch"}
	ErrCoolingDown    = &tee.ErrEnclave{Op: "beacon.Generate", Reason: "within Δ of instantiation; refusing (rollback defense)"}
	ErrGenesisReplay  = &tee.ErrEnclave{Op: "beacon.Generate", Reason: "genesis already served by a previous instantiation"}
)

const genesisCounter = "beacon-genesis"

// Beacon is one node's RandomnessBeacon enclave instance.
type Beacon struct {
	platform *tee.Platform
	lBits    uint
	delta    time.Duration
	bornAt   sim.Time
	served   map[uint64]bool
	genesis  bool // this instantiation may serve epoch 0
}

// New instantiates the beacon enclave.
//
// lBits is the bit length l of q (the probability a single invocation
// yields a certificate is 2^-l). delta is the synchrony bound Δ used by the
// restart defense.
func New(platform *tee.Platform, lBits uint, delta time.Duration) *Beacon {
	first := platform.IncrementCounter(genesisCounter) == 1
	return &Beacon{
		platform: platform,
		lBits:    lBits,
		delta:    delta,
		bornAt:   platform.Now(),
		served:   make(map[uint64]bool),
		genesis:  first,
	}
}

// LBits returns the configured bit length of q.
func (b *Beacon) LBits() uint { return b.lBits }

// Generate invokes the enclave for the given epoch. On success it returns
// a certificate; ErrUnlucky means the draw produced q != 0 (the normal,
// overwhelmingly common case). Either way the epoch is consumed.
func (b *Beacon) Generate(epoch uint64) (Cert, error) {
	// Restart defense (Appendix A): a freshly (re)instantiated enclave
	// refuses to serve non-genesis epochs for Δ, and refuses genesis
	// entirely unless it is the first instantiation on this platform.
	if epoch == 0 {
		if !b.genesis {
			return Cert{}, ErrGenesisReplay
		}
	} else if b.platform.Now().Sub(b.bornAt) < b.delta {
		return Cert{}, ErrCoolingDown
	}
	if b.served[epoch] {
		return Cert{}, ErrAlreadyInvoked
	}
	b.served[epoch] = true

	b.platform.Charge(b.platform.Costs().Beacon)
	q := b.platform.RandUint64()
	if b.lBits < 64 {
		q &= (1 << b.lBits) - 1
	}
	rnd := b.platform.RandUint64()
	if q != 0 {
		return Cert{}, ErrUnlucky
	}
	report := b.platform.Quote(Measurement(), certDigest(epoch, rnd))
	return Cert{Epoch: epoch, Rnd: rnd, Report: report}, nil
}

// Restart simulates an enclave teardown + restart mounted by the host. The
// volatile served-epochs table is lost; the cooldown clock and genesis
// guard make this unprofitable for the attacker.
func (b *Beacon) Restart() {
	b.served = make(map[uint64]bool)
	b.bornAt = b.platform.Now()
	b.genesis = b.platform.IncrementCounter(genesisCounter) == 1 // never true again
}
