package beacon

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/tee"
)

const delta = 2 * time.Second

func newBeacon(seed int64, lBits uint) (*Beacon, blockcrypto.Scheme, *sim.Engine, *tee.Platform) {
	e := sim.NewEngine(seed)
	scheme := blockcrypto.NewSimScheme()
	signer := scheme.NewSigner(1, rand.New(rand.NewSource(seed)))
	p := tee.NewPlatform(e, nil, tee.FreeCosts(), signer, seed)
	return New(p, lBits, delta), scheme, e, p
}

func TestGenerateOncePerEpoch(t *testing.T) {
	b, scheme, _, _ := newBeacon(1, 0) // l=0: q is always 0, cert always issued
	cert, err := b.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", cert.Epoch)
	}
	if !cert.Verify(scheme) {
		t.Fatal("genuine cert rejected")
	}
	if _, err := b.Generate(0); !errors.Is(err, ErrAlreadyInvoked) {
		t.Fatalf("second invocation returned %v, want ErrAlreadyInvoked", err)
	}
}

func TestUnluckyConsumesEpoch(t *testing.T) {
	// With l=64 the chance of q==0 is ~2^-64; every draw is unlucky.
	b, _, e, _ := newBeacon(2, 64)
	e.Schedule(delta, func() {
		if _, err := b.Generate(1); !errors.Is(err, ErrUnlucky) {
			t.Errorf("got %v, want ErrUnlucky", err)
		}
		// Epoch is consumed even when unlucky: no regrinding.
		if _, err := b.Generate(1); !errors.Is(err, ErrAlreadyInvoked) {
			t.Errorf("regrind returned %v, want ErrAlreadyInvoked", err)
		}
	})
	e.RunUntilIdle()
}

func TestCertTamperRejected(t *testing.T) {
	b, scheme, _, _ := newBeacon(3, 0)
	cert, err := b.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	bad := cert
	bad.Rnd++
	if bad.Verify(scheme) {
		t.Fatal("rnd-tampered cert accepted")
	}
	bad = cert
	bad.Epoch++
	if bad.Verify(scheme) {
		t.Fatal("epoch-tampered cert accepted")
	}
}

func TestCooldownBlocksEarlyEpochs(t *testing.T) {
	b, _, e, _ := newBeacon(4, 0)
	// Non-genesis epochs refused within Δ of instantiation.
	if _, err := b.Generate(1); !errors.Is(err, ErrCoolingDown) {
		t.Fatalf("got %v, want ErrCoolingDown", err)
	}
	e.Schedule(delta, func() {
		if _, err := b.Generate(1); err != nil {
			t.Errorf("after Δ: %v", err)
		}
	})
	e.RunUntilIdle()
}

func TestRestartAttackDefeated(t *testing.T) {
	b, _, e, _ := newBeacon(5, 0)
	e.Schedule(delta, func() {
		cert1, err := b.Generate(3)
		if err != nil {
			t.Errorf("first generate: %v", err)
			return
		}
		// Host restarts the enclave to re-roll epoch 3.
		b.Restart()
		if _, err := b.Generate(3); !errors.Is(err, ErrCoolingDown) {
			t.Errorf("post-restart generate returned %v, want ErrCoolingDown", err)
		}
		// Even after the cooldown the host only gets a fresh sample — but
		// by then Δ has passed and honest nodes have locked epoch 3's
		// value, so the re-roll is useless. We verify the mechanism: the
		// second sample differs and is only available after Δ.
		e.Schedule(delta, func() {
			cert2, err := b.Generate(3)
			if err != nil {
				t.Errorf("post-cooldown generate: %v", err)
				return
			}
			if cert2.Rnd == cert1.Rnd {
				t.Error("restart returned identical randomness (suspicious)")
			}
		})
	})
	e.RunUntilIdle()
}

func TestGenesisGuard(t *testing.T) {
	b, _, _, p := newBeacon(6, 0)
	if _, err := b.Generate(0); err != nil {
		t.Fatal(err)
	}
	// Restart during genesis: the monotonic counter shows a prior
	// instantiation, so epoch 0 is refused forever after.
	b.Restart()
	if _, err := b.Generate(0); !errors.Is(err, ErrGenesisReplay) {
		t.Fatalf("genesis replay returned %v, want ErrGenesisReplay", err)
	}
	// A brand-new enclave on the same platform is also refused: the
	// counter is hardware-monotonic.
	b2 := New(p, 0, delta)
	if _, err := b2.Generate(0); !errors.Is(err, ErrGenesisReplay) {
		t.Fatalf("new-enclave genesis replay returned %v, want ErrGenesisReplay", err)
	}
}

func TestQFilterRate(t *testing.T) {
	// With l bits, certificates appear with probability 2^-l. Check the
	// empirical rate over many beacons at l=3 (expect ~12.5%).
	const trials = 4000
	hits := 0
	for i := 0; i < trials; i++ {
		e := sim.NewEngine(int64(i))
		scheme := blockcrypto.NewSimScheme()
		signer := scheme.NewSigner(1, rand.New(rand.NewSource(int64(i))))
		p := tee.NewPlatform(e, nil, tee.FreeCosts(), signer, int64(i))
		b := New(p, 3, 0)
		if _, err := b.Generate(1); err == nil {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.09 || rate > 0.16 {
		t.Fatalf("q==0 rate = %.3f, want ~0.125", rate)
	}
}
