// Package tee simulates the trusted execution environment (Intel SGX) that
// the paper provisions on every node.
//
// The paper's own evaluation could not run SGX either (neither their local
// cluster nor GCP exposed it), so the authors ran the SGX SDK in simulation
// mode and injected operation latencies measured on a real SGX CPU — their
// Table 2. This package does the same: every enclave operation charges its
// Table 2 cost to the owning node's virtual CPU.
//
// The threat model follows §3.3: enclave *integrity* is guaranteed (enclave
// objects can only be driven through their methods), but confidentiality is
// not, except for attestation, key generation, randomness and signing
// ("seal-glassed proofs"). The operating system — i.e. adversarial test
// code — may restart enclaves and roll back their sealed state; the
// Rollback method below exists precisely so that tests can mount the
// Appendix A attack and verify the defense.
package tee

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
)

// CostModel holds the virtual execution costs of enclave and cryptographic
// operations. The defaults reproduce the paper's Table 2 measurements on a
// Skylake 6970HQ with SGX-enabled BIOS.
type CostModel struct {
	EnclaveSwitch time.Duration // context switch into/out of the enclave
	Sign          time.Duration // ECDSA signing
	Verify        time.Duration // ECDSA verification
	SHA256        time.Duration // hashing one item
	Append        time.Duration // AHL trusted-log append (includes signing)
	Beacon        time.Duration // RandomnessBeacon invocation
	RandGen       time.Duration // sgx_read_rand
	Attest        time.Duration // remote attestation round (once per epoch)
}

// DefaultCosts returns the Table 2 cost model.
func DefaultCosts() CostModel {
	return CostModel{
		EnclaveSwitch: 2700 * time.Nanosecond,
		Sign:          time.Duration(458.4 * float64(time.Microsecond)),
		Verify:        time.Duration(844.2 * float64(time.Microsecond)),
		SHA256:        2500 * time.Nanosecond,
		Append:        time.Duration(465.3 * float64(time.Microsecond)),
		Beacon:        time.Duration(482.2 * float64(time.Microsecond)),
		RandGen:       10 * time.Microsecond,
		Attest:        2 * time.Millisecond,
	}
}

// FreeCosts returns a zero cost model, used by unit tests that assert pure
// protocol logic.
func FreeCosts() CostModel { return CostModel{} }

// Aggregate returns the cost of the AHLR message-aggregation enclave for a
// quorum of f+1 messages: one switch, f+1 verifications and one signature.
// With f = 8 this reproduces Table 2's 8031 us measurement.
func (c CostModel) Aggregate(f int) time.Duration {
	return c.EnclaveSwitch + time.Duration(f+1)*c.Verify + c.Sign
}

// Measurement identifies enclave code, like MRENCLAVE.
type Measurement = blockcrypto.Digest

// MeasurementOf derives the measurement for a named enclave binary.
func MeasurementOf(name string) Measurement {
	return blockcrypto.Hash([]byte("enclave:" + name))
}

// Report is a local/remote attestation report: the platform vouches that an
// enclave with the given measurement produced ReportData.
type Report struct {
	Measurement Measurement
	ReportData  blockcrypto.Digest
	Sig         blockcrypto.Signature
}

func reportDigest(m Measurement, data blockcrypto.Digest) blockcrypto.Digest {
	return blockcrypto.HashOfDigests(m, data)
}

// VerifyReport checks a report against the platform key registry and an
// expected measurement.
func VerifyReport(scheme blockcrypto.Verifier, want Measurement, r Report) bool {
	if r.Measurement != want {
		return false
	}
	return scheme.Verify(reportDigest(r.Measurement, r.ReportData), r.Sig)
}

// sealedVersion is one version of an enclave's sealed state. The platform
// keeps history so adversarial tests can roll it back.
type sealedVersion struct {
	blob    []byte
	version uint64
}

// Platform is one node's TEE-capable CPU: it owns the platform signing key,
// trusted time, monotonic counters and sealed storage, and charges enclave
// operation costs to the node's virtual CPU.
type Platform struct {
	engine *sim.Engine
	cpu    *sim.CPU
	costs  CostModel
	signer blockcrypto.Signer
	rng    *rand.Rand

	sealed   map[string][]sealedVersion
	counters map[string]uint64
}

// NewPlatform creates a platform for one node.
//
// cpu may be nil (costs are then not charged; useful in pure-logic tests).
// The signer is the platform key registered in the deployment-wide scheme,
// standing in for the Intel-provisioned attestation key.
func NewPlatform(engine *sim.Engine, cpu *sim.CPU, costs CostModel, signer blockcrypto.Signer, seed int64) *Platform {
	return &Platform{
		engine:   engine,
		cpu:      cpu,
		costs:    costs,
		signer:   signer,
		rng:      rand.New(rand.NewSource(seed)),
		sealed:   make(map[string][]sealedVersion),
		counters: make(map[string]uint64),
	}
}

// Costs returns the platform's cost model.
func (p *Platform) Costs() CostModel { return p.costs }

// Engine returns the simulation engine the platform's trusted time is
// bound to.
func (p *Platform) Engine() *sim.Engine { return p.engine }

// Charge bills d of enclave execution to the node's CPU.
func (p *Platform) Charge(d time.Duration) {
	if p.cpu != nil && d > 0 {
		p.cpu.Charge(d)
	}
}

// Now returns trusted time (sgx_get_trusted_time): virtual time since the
// simulation epoch.
func (p *Platform) Now() sim.Time { return p.engine.Now() }

// RandUint64 models sgx_read_rand: an unbiased random value that the host
// cannot influence. Determinism across runs comes from the platform seed.
func (p *Platform) RandUint64() uint64 {
	p.Charge(p.costs.RandGen)
	return uint64(p.rng.Int63())<<1 | uint64(p.rng.Int63n(2))
}

// Quote signs an attestation report binding data to the enclave
// measurement, charging the signing cost.
func (p *Platform) Quote(m Measurement, data blockcrypto.Digest) Report {
	p.Charge(p.costs.EnclaveSwitch + p.costs.Sign)
	return Report{
		Measurement: m,
		ReportData:  data,
		Sig:         p.signer.Sign(reportDigest(m, data)),
	}
}

// PlatformKey returns the key id of this platform's attestation key.
func (p *Platform) PlatformKey() blockcrypto.KeyID { return p.signer.ID() }

// IncrementCounter increments and returns the named hardware monotonic
// counter. Counters survive enclave restarts and cannot be rolled back.
func (p *Platform) IncrementCounter(name string) uint64 {
	p.counters[name]++
	return p.counters[name]
}

// CounterValue reads the named monotonic counter without incrementing.
func (p *Platform) CounterValue(name string) uint64 { return p.counters[name] }

// Seal persists blob for the named enclave (data sealing). Versions are
// retained so the host can later mount a rollback.
func (p *Platform) Seal(name string, blob []byte) {
	p.Charge(p.costs.EnclaveSwitch + p.costs.SHA256)
	h := p.sealed[name]
	version := uint64(len(h)) + 1
	cp := append([]byte(nil), blob...)
	p.sealed[name] = append(h, sealedVersion{blob: cp, version: version})
}

// Unseal returns the latest sealed blob for name, or nil if none. The
// "latest" pointer is under host control: see Rollback.
func (p *Platform) Unseal(name string) []byte {
	h := p.sealed[name]
	if len(h) == 0 {
		return nil
	}
	return append([]byte(nil), h[len(h)-1].blob...)
}

// Rollback mounts the Appendix A rollback attack: the (malicious) host
// discards the newest `back` sealed versions so the next Unseal returns
// stale-but-correctly-sealed state. It returns false if there is not enough
// history.
func (p *Platform) Rollback(name string, back int) bool {
	h := p.sealed[name]
	if back <= 0 || back >= len(h) {
		return false
	}
	p.sealed[name] = h[:len(h)-back]
	return true
}

// Uint64Digest hashes a uint64 tuple into a digest; shared helper for
// enclave report data.
func Uint64Digest(parts ...uint64) blockcrypto.Digest {
	buf := make([]byte, 8*len(parts))
	for i, v := range parts {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	return blockcrypto.Hash(buf)
}

// ErrEnclave is the base error type for enclave refusals.
type ErrEnclave struct {
	Op     string
	Reason string
}

func (e *ErrEnclave) Error() string { return fmt.Sprintf("enclave %s: %s", e.Op, e.Reason) }
