// Package aggregator implements the AHLR message-aggregation enclave
// (§4.1, optimization 3, after ByzCoin): the leader collects f+1 signed
// consensus votes for the same (request, phase, round) and the enclave —
// after verifying each signature — issues a single quorum certificate.
// Followers then verify one certificate instead of f+1 messages, cutting
// normal-case communication from O(N²) to O(N).
package aggregator

import (
	"encoding/binary"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/tee"
)

// EnclaveName identifies the aggregation enclave binary.
const EnclaveName = "ahlr-aggregator"

// Measurement is the code measurement of the aggregation enclave.
func Measurement() tee.Measurement { return tee.MeasurementOf(EnclaveName) }

// Item identifies the consensus statement being voted on.
type Item struct {
	View   uint64
	Seq    uint64
	Phase  string
	Digest blockcrypto.Digest
}

// VoteDigest is the digest a replica signs to vote for item.
func VoteDigest(it Item) blockcrypto.Digest {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], it.View)
	binary.BigEndian.PutUint64(buf[8:], it.Seq)
	return blockcrypto.Hash([]byte("vote:"+it.Phase), buf[:], it.Digest[:])
}

// Vote is one replica's signed endorsement of an item.
type Vote struct {
	Voter blockcrypto.KeyID
	Sig   blockcrypto.Signature
}

// Cert proves that a quorum of distinct replicas voted for the item.
type Cert struct {
	Item   Item
	Voters []blockcrypto.KeyID
	Report tee.Report
}

func certDigest(it Item, voters []blockcrypto.KeyID) blockcrypto.Digest {
	buf := make([]byte, 8*len(voters))
	for i, v := range voters {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	vd := VoteDigest(it)
	return blockcrypto.Hash([]byte("quorum-cert"), vd[:], buf)
}

// Verify checks the certificate and that it carries at least quorum voters.
func (c Cert) Verify(scheme blockcrypto.Verifier, quorum int) bool {
	if len(c.Voters) < quorum {
		return false
	}
	seen := make(map[blockcrypto.KeyID]bool, len(c.Voters))
	for _, v := range c.Voters {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	if c.Report.ReportData != certDigest(c.Item, c.Voters) {
		return false
	}
	return tee.VerifyReport(scheme, Measurement(), c.Report)
}

// Errors returned by Aggregate.
var (
	ErrShortQuorum = &tee.ErrEnclave{Op: "aggregator.Aggregate", Reason: "fewer than quorum valid votes"}
)

// Aggregator is the leader-side aggregation enclave.
type Aggregator struct {
	platform *tee.Platform
	scheme   blockcrypto.Verifier
}

// New instantiates the aggregation enclave. The verifier is the
// deployment-wide key registry baked into the enclave at provisioning.
func New(platform *tee.Platform, scheme blockcrypto.Verifier) *Aggregator {
	return &Aggregator{platform: platform, scheme: scheme}
}

// Aggregate verifies the votes and, given at least quorum valid votes from
// distinct replicas, returns a signed quorum certificate. Invalid or
// duplicate votes are skipped (their cost is still charged: the enclave
// had to verify them to reject them).
func (a *Aggregator) Aggregate(it Item, votes []Vote, quorum int) (Cert, error) {
	costs := a.platform.Costs()
	a.platform.Charge(costs.EnclaveSwitch + time.Duration(len(votes))*costs.Verify)
	vd := VoteDigest(it)
	seen := make(map[blockcrypto.KeyID]bool, len(votes))
	var voters []blockcrypto.KeyID
	for _, v := range votes {
		if seen[v.Voter] || v.Sig.Signer != v.Voter {
			continue
		}
		if !a.scheme.Verify(vd, v.Sig) {
			continue
		}
		seen[v.Voter] = true
		voters = append(voters, v.Voter)
	}
	if len(voters) < quorum {
		return Cert{}, ErrShortQuorum
	}
	a.platform.Charge(costs.Sign)
	report := a.platform.Quote(Measurement(), certDigest(it, voters))
	return Cert{Item: it, Voters: voters, Report: report}, nil
}
