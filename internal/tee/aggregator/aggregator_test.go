package aggregator

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/blockcrypto"
	"repro/internal/sim"
	"repro/internal/tee"
)

func setup(t *testing.T, replicas int) (*Aggregator, blockcrypto.Scheme, []blockcrypto.Signer) {
	t.Helper()
	e := sim.NewEngine(1)
	scheme := blockcrypto.NewSimScheme()
	rng := rand.New(rand.NewSource(1))
	signers := make([]blockcrypto.Signer, replicas)
	for i := range signers {
		signers[i] = scheme.NewSigner(blockcrypto.KeyID(i+10), rng)
	}
	platformKey := scheme.NewSigner(1, rng)
	p := tee.NewPlatform(e, nil, tee.FreeCosts(), platformKey, 1)
	return New(p, scheme), scheme, signers
}

func votesFor(it Item, signers []blockcrypto.Signer) []Vote {
	vd := VoteDigest(it)
	votes := make([]Vote, len(signers))
	for i, s := range signers {
		votes[i] = Vote{Voter: s.ID(), Sig: s.Sign(vd)}
	}
	return votes
}

func TestAggregateQuorum(t *testing.T) {
	agg, scheme, signers := setup(t, 5)
	it := Item{View: 1, Seq: 42, Phase: "prepare", Digest: blockcrypto.Hash([]byte("blk"))}
	cert, err := agg.Aggregate(it, votesFor(it, signers[:3]), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Verify(scheme, 3) {
		t.Fatal("genuine cert rejected")
	}
	if cert.Verify(scheme, 4) {
		t.Fatal("cert verified against larger quorum than it carries")
	}
	if len(cert.Voters) != 3 {
		t.Fatalf("voters = %d, want 3", len(cert.Voters))
	}
}

func TestAggregateRejectsShortQuorum(t *testing.T) {
	agg, _, signers := setup(t, 5)
	it := Item{View: 0, Seq: 1, Phase: "commit", Digest: blockcrypto.Hash([]byte("b"))}
	if _, err := agg.Aggregate(it, votesFor(it, signers[:2]), 3); !errors.Is(err, ErrShortQuorum) {
		t.Fatalf("got %v, want ErrShortQuorum", err)
	}
}

func TestAggregateSkipsInvalidAndDuplicateVotes(t *testing.T) {
	agg, _, signers := setup(t, 5)
	it := Item{View: 0, Seq: 1, Phase: "prepare", Digest: blockcrypto.Hash([]byte("b"))}
	votes := votesFor(it, signers[:2])
	// Duplicate of voter 0.
	votes = append(votes, votes[0])
	// Vote with mismatched claimed voter.
	votes = append(votes, Vote{Voter: signers[3].ID(), Sig: signers[2].Sign(VoteDigest(it))})
	// Vote for a different item (wrong digest).
	other := Item{View: 0, Seq: 2, Phase: "prepare", Digest: blockcrypto.Hash([]byte("x"))}
	votes = append(votes, Vote{Voter: signers[4].ID(), Sig: signers[4].Sign(VoteDigest(other))})
	if _, err := agg.Aggregate(it, votes, 3); !errors.Is(err, ErrShortQuorum) {
		t.Fatalf("got %v, want ErrShortQuorum (only 2 valid votes)", err)
	}
}

func TestCertTamperRejected(t *testing.T) {
	agg, scheme, signers := setup(t, 4)
	it := Item{View: 2, Seq: 7, Phase: "prepare", Digest: blockcrypto.Hash([]byte("b"))}
	cert, err := agg.Aggregate(it, votesFor(it, signers), 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := cert
	bad.Item.Seq = 8
	if bad.Verify(scheme, 3) {
		t.Fatal("item-tampered cert accepted")
	}
	bad = cert
	bad.Voters = append([]blockcrypto.KeyID(nil), cert.Voters...)
	bad.Voters[0] = 99
	if bad.Verify(scheme, 3) {
		t.Fatal("voter-tampered cert accepted")
	}
	// Duplicate voters in a forged cert must not count toward quorum.
	bad = cert
	bad.Voters = []blockcrypto.KeyID{cert.Voters[0], cert.Voters[0], cert.Voters[1]}
	if bad.Verify(scheme, 3) {
		t.Fatal("duplicate-voter cert accepted")
	}
}

func TestVoteDigestBindsAllFields(t *testing.T) {
	base := Item{View: 1, Seq: 2, Phase: "prepare", Digest: blockcrypto.Hash([]byte("d"))}
	variants := []Item{
		{View: 2, Seq: 2, Phase: "prepare", Digest: base.Digest},
		{View: 1, Seq: 3, Phase: "prepare", Digest: base.Digest},
		{View: 1, Seq: 2, Phase: "commit", Digest: base.Digest},
		{View: 1, Seq: 2, Phase: "prepare", Digest: blockcrypto.Hash([]byte("e"))},
	}
	bd := VoteDigest(base)
	for i, v := range variants {
		if VoteDigest(v) == bd {
			t.Fatalf("variant %d has same vote digest as base", i)
		}
	}
}
