package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/tee"
	"repro/internal/txn"
)

func TestProbeBatch11(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping shard-size-11 batch probe simulation in -short mode")
	}
	s := NewSystem(Config{
		Seed: 2, Shards: 2, ShardSize: 11, RefSize: 0,
		Variant: pbft.VariantAHLPlus, Clients: 1,
		Costs: tee.FreeCosts(),
		Tune:  func(o *pbft.Options) { o.CheckpointEvery = 8; o.Window = 8 },
	})
	var id uint64
	var pump func()
	pump = func() {
		for i := 0; i < 10; i++ {
			id++
			key := "k" + strconv.FormatUint(id, 10)
			shard := s.ShardOfKey(key)
			tx := chain.Tx{ID: id, Chaincode: "kvstore", Fn: "put", Args: []string{key, "v"}}
			target := s.Topology.ShardNodes[shard][id%uint64(len(s.Topology.ShardNodes[shard]))]
			txn.SubmitPlain(s.Net.Endpoint(s.Client(0).ID()), target, tx)
		}
		if s.Engine.Now() < sim.Time(180*time.Second) {
			s.Engine.Schedule(100*time.Millisecond, pump)
		}
	}
	s.Engine.Schedule(0, pump)
	sampler := s.SampleThroughput(10*time.Second, 200*time.Second)
	s.ReshardAt(60*time.Second, 777, DefaultReshardConfig(ReshardSwapBatch))
	for _, tt := range []time.Duration{75, 85} {
		tt := tt
		s.Engine.At(sim.Time(tt*time.Second), func() {
			fmt.Printf("== t=%v\n", s.Engine.Now())
			for si, bc := range s.ShardCommittees {
				for ri, r := range bc.Replicas {
					h, et, ss, cl, pl := r.DebugSyncState()
					fmt.Printf("  s%d r%d exec=%d h=%d et=%d snap=%d cert=%d pend=%d view=%d down=%v dig=%v\n",
						si, ri, r.Executed(), h, et, ss, cl, pl, r.View(), s.Net.Endpoint(s.Topology.ShardNodes[si][ri]).Down(), r.Store().Digest())
				}
			}
		})
	}
	s.Run(200 * time.Second)
	fmt.Printf("samples=%v total=%d\n", sampler.Samples, s.TotalExecuted())
}
