package core

import (
	"sort"
	"time"

	"repro/internal/sharding"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Shard reconfiguration (§5.3). At each epoch the beacon yields a new
// node-to-committee assignment; transitioning nodes stop processing their
// old committee's requests, fetch their new committee's state, and only
// then rejoin. The experiment of Figure 12 compares three strategies:
// no resharding, the naive swap-all (every transitioning node at once,
// rendering shards non-operational for the sync period), and the paper's
// batched swap of B = log(n) nodes at a time, which preserves quorums
// throughout.
//
// In this deployment model a transitioning node's unavailability window is
// what matters for throughput, so the reconfiguration marks nodes down for
// their state-transfer duration (discovery plus snapshot transfer at the
// environment's bandwidth) and back up afterwards; consensus-level
// catch-up then reintegrates them (see the pbft state-transfer path).

// ReshardMode selects the transition strategy.
type ReshardMode int

// The Figure 12 strategies.
const (
	ReshardSwapAll ReshardMode = iota
	ReshardSwapBatch
)

// ReshardConfig tunes one reconfiguration.
type ReshardConfig struct {
	Mode ReshardMode
	// B is the per-committee batch size for ReshardSwapBatch; 0 selects
	// the paper's log2(n).
	B int
	// Discovery is the fixed peer-discovery overhead per transitioning
	// node before state transfer begins.
	Discovery time.Duration
	// Bandwidth for state snapshots, bytes/second.
	Bandwidth int64
}

// DefaultReshardConfig mirrors the paper's setting.
func DefaultReshardConfig(mode ReshardMode) ReshardConfig {
	return ReshardConfig{
		Mode:      mode,
		Discovery: 10 * time.Second,
		Bandwidth: 12_500_000, // 100 Mbps effective sync rate
	}
}

// ReshardAt schedules a one-off reconfiguration at virtual time at,
// deriving the new assignment from the given beacon value. Recurring
// reconfiguration is EnableEpochs.
func (s *System) ReshardAt(at time.Duration, rnd uint64, cfg ReshardConfig) {
	s.Engine.At(sim.Time(at), func() {
		s.epoch++
		s.reshard(s.epoch, rnd, cfg)
	})
}

func (s *System) reshard(epoch uint64, rnd uint64, cfg ReshardConfig) {
	var nodes []simnet.NodeID
	for _, bc := range s.ShardCommittees {
		nodes = append(nodes, bc.Committee.Nodes...)
	}
	old := currentAssignment(s)
	next := sharding.Assign(epoch, rnd, nodes, s.Config.Shards)

	b := cfg.B
	if cfg.Mode == ReshardSwapAll {
		b = len(nodes) // everything in one step
	} else if b == 0 {
		b = log2int(s.Config.ShardSize)
	}
	steps := sharding.PlanTransition(old, next, b)

	var start time.Duration
	for _, step := range steps {
		step := step
		var stepDur time.Duration
		// Concurrent fetchers share the donors' uplinks: the naive
		// swap-all pays for its parallelism with proportionally slower
		// state transfer.
		concurrent := len(step.Moves)
		if concurrent < 1 {
			concurrent = 1
		}
		for _, mv := range step.Moves {
			d := s.transferTime(mv.To, cfg, concurrent)
			if d > stepDur {
				stepDur = d
			}
		}
		s.Engine.Schedule(start, func() {
			s.gracefulHandoff(step)
			for _, mv := range step.Moves {
				s.Net.Endpoint(mv.Node).SetDown(true)
			}
		})
		s.Engine.Schedule(start+stepDur, func() {
			for _, mv := range step.Moves {
				s.Net.Endpoint(mv.Node).SetDown(false)
			}
		})
		start += stepDur
	}
}

// gracefulHandoff performs the "stop processing requests of their old
// committees" part of §5.3: if a departing batch contains a shard's
// current leader, the remaining replicas proactively change to the first
// view led by a node that is staying, instead of waiting out a timeout.
func (s *System) gracefulHandoff(step sharding.TransitionStep) {
	leaving := make(map[simnet.NodeID]bool, len(step.Moves))
	shards := make(map[int]bool)
	for _, mv := range step.Moves {
		leaving[mv.Node] = true
		shards[mv.From] = true
	}
	// Sorted shard order: view-change requests schedule engine events, so
	// map-order iteration here would make runs diverge.
	sorted := make([]int, 0, len(shards))
	for shard := range shards {
		sorted = append(sorted, shard)
	}
	sort.Ints(sorted)
	for _, shard := range sorted {
		bc := s.ShardCommittees[shard]
		var maxView uint64
		for _, r := range bc.Replicas {
			if !r.Endpoint().Down() && r.View() > maxView {
				maxView = r.View()
			}
		}
		if !leaving[bc.Committee.Leader(maxView)] {
			continue
		}
		target := maxView + 1
		for leaving[bc.Committee.Leader(target)] || s.Net.Endpoint(bc.Committee.Leader(target)).Down() {
			target++
		}
		for _, r := range bc.Replicas {
			if !r.Endpoint().Down() && !leaving[simnet.NodeID(r.Endpoint().ID())] {
				r.RequestViewChange(target)
			}
		}
	}
}

// transferTime estimates how long a node joining committee `to` needs to
// discover peers and fetch the shard state, with `concurrent` fetchers
// sharing the sync bandwidth.
func (s *System) transferTime(to int, cfg ReshardConfig, concurrent int) time.Duration {
	snap := s.ShardCommittees[to].Replicas[0].Store().Head().Snapshot()
	bytes := snap.SizeBytes() * concurrent
	return cfg.Discovery + time.Duration(float64(bytes)/float64(cfg.Bandwidth)*float64(time.Second))
}

func currentAssignment(s *System) sharding.Assignment {
	a := sharding.Assignment{Epoch: s.epoch}
	for _, bc := range s.ShardCommittees {
		a.Committees = append(a.Committees, append([]simnet.NodeID(nil), bc.Committee.Nodes...))
	}
	return a
}

func log2int(n int) int {
	l := 0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// ThroughputSampler records executed-transaction deltas at a fixed
// interval, producing the Figure 12 time series.
type ThroughputSampler struct {
	Interval time.Duration
	Samples  []float64 // tps per interval
	last     int
}

// SampleThroughput starts sampling every interval until the engine stops.
func (s *System) SampleThroughput(interval time.Duration, until time.Duration) *ThroughputSampler {
	ts := &ThroughputSampler{Interval: interval}
	var tick func()
	tick = func() {
		cur := s.TotalExecuted()
		ts.Samples = append(ts.Samples, float64(cur-ts.last)/interval.Seconds())
		ts.last = cur
		if s.Engine.Now().Add(interval) <= sim.Time(until) {
			s.Engine.Schedule(interval, tick)
		}
	}
	s.Engine.Schedule(interval, tick)
	return ts
}
