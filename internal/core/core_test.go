package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/tee"
	"repro/internal/txn"
)

func testSystem(t *testing.T, shards, shardSize, refSize, clients int) *System {
	t.Helper()
	return NewSystem(Config{
		Seed:        1,
		Shards:      shards,
		ShardSize:   shardSize,
		RefSize:     refSize,
		Variant:     pbft.VariantAHLPlus,
		Clients:     clients,
		SendReplies: true,
		Costs:       tee.FreeCosts(),
	})
}

// findCrossShardPair returns two seeded accounts living on different
// shards.
func findCrossShardPair(s *System, accounts int) (string, string) {
	for i := 0; i < accounts; i++ {
		for j := 0; j < accounts; j++ {
			a, b := Account(i), Account(j)
			if i != j && s.ShardOfKey(a) != s.ShardOfKey(b) {
				return a, b
			}
		}
	}
	panic("no cross-shard pair")
}

func TestCrossShardPaymentCommits(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	var res *txn.Result
	d := s.PaymentDTx("pay1", from, to, 30)
	s.Engine.Schedule(0, func() {
		s.Client(0).SubmitDistributed(d, func(r txn.Result) { res = &r })
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered to client")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if res.Latency <= 0 {
		t.Fatal("latency not measured")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 70 {
		t.Fatalf("%s = %d, want 70", from, bal)
	}
	if bal, _ := s.BalanceOnShard(to); bal != 130 {
		t.Fatalf("%s = %d, want 130", to, bal)
	}
	// Locks released on both shards.
	for _, acc := range []string{from, to} {
		store := s.ShardCommittees[s.ShardOfKey(acc)].Replicas[0].Store()
		if _, locked := store.Get("L_c_" + acc); locked {
			t.Fatalf("lock on %s not released after commit", acc)
		}
	}
}

func TestCrossShardPaymentAbortsOnInsufficientFunds(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	var res *txn.Result
	d := s.PaymentDTx("pay-over", from, to, 5000) // way over balance
	s.Engine.Schedule(0, func() {
		s.Client(0).SubmitDistributed(d, func(r txn.Result) { res = &r })
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered")
	}
	if res.Committed {
		t.Fatal("overdraft committed")
	}
	// Atomicity: neither side changed, no locks remain.
	if bal, _ := s.BalanceOnShard(from); bal != 100 {
		t.Fatalf("%s = %d, want 100 (atomic abort)", from, bal)
	}
	if bal, _ := s.BalanceOnShard(to); bal != 100 {
		t.Fatalf("%s = %d, want 100 (atomic abort)", to, bal)
	}
	for _, acc := range []string{from, to} {
		store := s.ShardCommittees[s.ShardOfKey(acc)].Replicas[0].Store()
		if _, locked := store.Get("L_c_" + acc); locked {
			t.Fatalf("lock on %s leaked after abort", acc)
		}
	}
}

func TestConcurrentConflictingPayments(t *testing.T) {
	// Two distributed transactions debiting the same account race; 2PL
	// must serialize them — at most one may observe the other's partial
	// state, and total money is conserved.
	s := testSystem(t, 3, 4, 4, 2)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	results := make(map[string]txn.Result)
	s.Engine.Schedule(0, func() {
		d1 := s.PaymentDTx("race1", from, to, 60)
		d2 := s.PaymentDTx("race2", from, to, 60)
		s.Client(0).SubmitDistributed(d1, func(r txn.Result) { results["race1"] = r })
		s.Client(1).SubmitDistributed(d2, func(r txn.Result) { results["race2"] = r })
	})
	s.Run(120 * time.Second)

	if len(results) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(results))
	}
	committed := 0
	for _, r := range results {
		if r.Committed {
			committed++
		}
	}
	// 100 starting balance cannot fund two 60-unit debits: exactly one
	// commits (both aborting is permissible under lock conflicts, but
	// with 2PC retry-free semantics one must win here since aborts
	// release locks before the second prepares... assert conservation
	// instead of scheduling specifics).
	fromBal, _ := s.BalanceOnShard(from)
	toBal, _ := s.BalanceOnShard(to)
	if fromBal+toBal != 200 {
		t.Fatalf("money not conserved: %d + %d != 200", fromBal, toBal)
	}
	if committed == 2 {
		t.Fatal("both conflicting payments committed — isolation broken")
	}
	if committed == 1 && (fromBal != 40 || toBal != 160) {
		t.Fatalf("one commit but balances %d/%d", fromBal, toBal)
	}
}

func TestCrossShardKVUpdate(t *testing.T) {
	s := testSystem(t, 4, 4, 4, 1)
	kv := map[string]string{"alpha": "1", "bravo": "2", "charlie": "3"}
	d := s.KVUpdateDTx("kvu1", kv)
	if len(d.Ops) < 2 {
		t.Skip("keys landed on one shard; hash placement made this single-shard")
	}
	var res *txn.Result
	s.Engine.Schedule(0, func() {
		s.Client(0).SubmitDistributed(d, func(r txn.Result) { res = &r })
	})
	s.Run(60 * time.Second)
	if res == nil || !res.Committed {
		t.Fatalf("kv update outcome: %+v", res)
	}
	for k, v := range kv {
		store := s.ShardCommittees[s.ShardOfKey(k)].Replicas[0].Store()
		got, ok := store.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("%s = %q ok=%v, want %q", k, got, ok, v)
		}
	}
}

func TestMaliciousClientCannotBlockOurProtocol(t *testing.T) {
	// §6.2's liveness claim: the client only *initiates* the transaction;
	// once R executes the begin, the BFT-replicated coordinator drives it
	// to completion. A client that crashes right after submitting cannot
	// leave locks behind.
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	d := s.PaymentDTx("orphan", from, to, 10)
	s.Engine.Schedule(0, func() {
		c := s.Client(0)
		c.SubmitDistributed(d, nil)
		// The client vanishes immediately.
		s.Net.Endpoint(c.ID()).SetDown(true)
	})
	s.Run(120 * time.Second)

	// The transaction still completed: funds moved and no locks remain.
	fromBal, _ := s.BalanceOnShard(from)
	toBal, _ := s.BalanceOnShard(to)
	if fromBal+toBal != 200 {
		t.Fatalf("conservation broken: %d+%d", fromBal, toBal)
	}
	if fromBal != 90 {
		t.Fatalf("payment did not complete despite dead client: from=%d", fromBal)
	}
	for _, acc := range []string{from, to} {
		store := s.ShardCommittees[s.ShardOfKey(acc)].Replicas[0].Store()
		if _, locked := store.Get("L_c_" + acc); locked {
			t.Fatalf("lock on %s stuck after client crash", acc)
		}
	}
}

func TestOmniLedgerBaselineBlocksUnderMaliciousClient(t *testing.T) {
	// The §6.1 contrast: OmniLedger's client-driven protocol leaves locks
	// stuck forever when the client stops after the prepare phase.
	s := testSystem(t, 3, 4, 0, 2)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	omni := txn.NewOmniClient(s.Client(0), s.Topology)
	omni.MaliciousStopAfterPrepare = true
	d := s.PaymentDTx("omni-evil", from, to, 10)
	s.Engine.Schedule(0, func() {
		omni.Run(d, nil)
	})
	s.Run(120 * time.Second)

	// Locks are stuck on the payer's shard.
	store := s.ShardCommittees[s.ShardOfKey(from)].Replicas[0].Store()
	if _, locked := store.Get("L_c_" + from); !locked {
		t.Fatal("expected stuck lock under malicious OmniLedger client")
	}
	// And an honest user's payment touching the same account now aborts.
	var res *txn.Result
	honest := txn.NewOmniClient(s.Client(1), s.Topology)
	d2 := s.PaymentDTx("omni-honest", from, to, 5)
	s.Engine.Schedule(0, func() { honest.Run(d2, func(ok bool) { res = &txn.Result{Committed: ok} }) })
	s.Run(120 * time.Second)
	if res == nil {
		t.Fatal("honest client got no outcome")
	}
	if res.Committed {
		t.Fatal("honest payment committed despite stuck lock")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 100 {
		t.Fatalf("balance moved: %d", bal)
	}
}

func TestRapidChainBaselineViolatesAtomicity(t *testing.T) {
	// §6.1 / Figure 4: splitting an account-based transfer into
	// independent sub-transactions lets the debit succeed while the
	// credit-side (or a second debit) fails — partial execution that can
	// never be rolled back.
	s := testSystem(t, 2, 4, 0, 1)
	s.Seed(8, 100)
	from, to := findCrossShardPair(s, 8)

	// tx1: debit 80 from `from`, credit 80 to `to`. tx2 (racing): debit
	// 80 from `from` again. RapidChain-style, each op is independent.
	ops1 := []txn.Op{
		{Shard: s.ShardOfKey(from), Fn: "writeCheck", Args: []string{from, "80"}},
		{Shard: s.ShardOfKey(to), Fn: "depositChecking", Args: []string{to, "80"}},
	}
	ops2 := []txn.Op{
		{Shard: s.ShardOfKey(from), Fn: "writeCheck", Args: []string{from, "80"}},
		{Shard: s.ShardOfKey(to), Fn: "depositChecking", Args: []string{to, "80"}},
	}
	sub1 := txn.SplitRapidChain("rc1", ops1, "smallbank")
	sub2 := txn.SplitRapidChain("rc2", ops2, "smallbank")

	outcomes := make(map[uint64]bool)
	s.Engine.Schedule(0, func() {
		for i, tx := range append(sub1, sub2...) {
			shard := s.ShardOfKey(tx.Args[0])
			id := tx.ID
			s.Client(0).SubmitSingle(shard, tx, func(r txn.Result) {
				outcomes[id] = r.Committed
			})
			_ = i
		}
	})
	s.Run(60 * time.Second)

	if len(outcomes) != 4 {
		t.Fatalf("got %d sub-tx outcomes, want 4", len(outcomes))
	}
	// The second debit must fail (insufficient funds after the first),
	// but its paired credit succeeded independently: money was created.
	fromBal, _ := s.BalanceOnShard(from)
	toBal, _ := s.BalanceOnShard(to)
	if fromBal+toBal == 200 {
		t.Fatalf("expected atomicity violation, but money conserved (%d+%d)", fromBal, toBal)
	}
	if toBal != 260 || fromBal != 20 {
		t.Fatalf("balances %d/%d, want 20/260 (credit without matching debit)", fromBal, toBal)
	}
}

func TestSystemWithoutReferenceCommitteeSingleShardTxs(t *testing.T) {
	// The Figure 14 configuration: shards only, single-shard traffic.
	s := testSystem(t, 3, 4, 0, 1)
	done := 0
	s.Engine.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("key%d", i)
			shard := s.ShardOfKey(key)
			tx := chain.Tx{ID: uint64(i + 1), Chaincode: "kvstore", Fn: "put", Args: []string{key, "v"}}
			s.Client(0).SubmitSingle(shard, tx, func(r txn.Result) {
				if r.Committed {
					done++
				}
			})
		}
	})
	s.Run(60 * time.Second)
	if done != 30 {
		t.Fatalf("completed %d/30 single-shard txs", done)
	}
	if s.TotalExecuted() != 30 {
		t.Fatalf("TotalExecuted = %d, want 30", s.TotalExecuted())
	}
}

func TestReshardingSwapBatchKeepsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-epoch resharding simulation in -short mode")
	}
	// Figure 12's claim: swap-all renders the system non-operational
	// during the transition; swap-log(n) maintains throughput.
	run := func(mode ReshardMode) (total int, minTps float64) {
		// Shard size 11 with B = log2(11) = 3: taking 3 nodes down leaves
		// 8 >= quorum 6 even while the previous batch is still catching
		// up — the slack the paper's n=33, B=log(n) configuration has.
		s := NewSystem(Config{
			Seed: 2, Shards: 2, ShardSize: 11, RefSize: 0,
			Variant: pbft.VariantAHLPlus, Clients: 1,
			Costs: tee.FreeCosts(),
			Tune:  func(o *pbft.Options) { o.CheckpointEvery = 8; o.Window = 8 },
		})
		// Open-loop load on both shards.
		var id uint64
		var pump func()
		pump = func() {
			for i := 0; i < 10; i++ {
				id++
				key := "k" + strconv.FormatUint(id, 10)
				shard := s.ShardOfKey(key)
				tx := chain.Tx{ID: id, Chaincode: "kvstore", Fn: "put", Args: []string{key, "v"}}
				target := s.Topology.ShardNodes[shard][id%uint64(len(s.Topology.ShardNodes[shard]))]
				txn.SubmitPlain(s.Net.Endpoint(s.Client(0).ID()), target, tx)
			}
			if s.Engine.Now() < sim.Time(180*time.Second) {
				s.Engine.Schedule(100*time.Millisecond, pump)
			}
		}
		s.Engine.Schedule(0, pump)
		sampler := s.SampleThroughput(10*time.Second, 200*time.Second)
		s.ReshardAt(60*time.Second, 777, DefaultReshardConfig(mode))
		s.Run(200 * time.Second)
		minTps = 1 << 30
		// Ignore warmup and the tail.
		for _, v := range sampler.Samples[2 : len(sampler.Samples)-1] {
			if v < minTps {
				minTps = v
			}
		}
		return s.TotalExecuted(), minTps
	}
	_, minAll := run(ReshardSwapAll)
	totalBatch, minBatch := run(ReshardSwapBatch)
	if minAll > 0 {
		t.Fatalf("swap-all should hit zero throughput during transition, min=%v", minAll)
	}
	// Figure 12's claim is about availability: the batched swap never
	// takes the system offline.
	if minBatch <= 0 {
		t.Fatalf("swap-log(n) throughput dropped to zero (min=%v)", minBatch)
	}
	// And overall it should stay close to the offered load (100 tx/s over
	// ~195s of injection).
	if totalBatch < 15000 {
		t.Fatalf("batched resharding total = %d, want >= 15000", totalBatch)
	}
}

func TestExecutionCostBreakdownTracked(t *testing.T) {
	s := testSystem(t, 1, 4, 0, 1)
	s.Engine.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			tx := chain.Tx{ID: uint64(i + 1), Chaincode: "kvstore", Fn: "put", Args: []string{"k", "v"}}
			s.Client(0).SubmitSingle(0, tx, nil)
		}
	})
	s.Run(30 * time.Second)
	r := s.ShardCommittees[0].Replicas[0]
	if r.Executed() != 20 {
		t.Fatalf("executed %d, want 20", r.Executed())
	}
	// With FreeCosts the exec-cost counter still accrues the configured
	// per-tx execution time.
	if r.ExecBusy <= 0 {
		t.Fatal("execution cost not tracked")
	}
}

func TestShardOfKeyStable(t *testing.T) {
	if ShardOfKey("abc", 5) != ShardOfKey("abc", 5) {
		t.Fatal("not deterministic")
	}
	counts := make([]int, 8)
	for i := 0; i < 4000; i++ {
		counts[ShardOfKey(fmt.Sprintf("key-%d", i), 8)]++
	}
	for sh, c := range counts {
		if c < 300 || c > 700 {
			t.Fatalf("shard %d got %d of 4000 keys; placement skewed", sh, c)
		}
	}
	_ = chaincode.KVStore{} // keep import for helper use above
}
