package core

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/sim"
	"repro/internal/tee"
)

// injectLoad submits rate kvstore puts per second per shard, each to a
// currently-live replica, until the stop time.
func injectLoad(s *System, rate int, stop time.Duration) {
	interval := time.Second / time.Duration(rate)
	var id uint64 = 1 << 50
	var tick func()
	n := 0
	tick = func() {
		if s.Engine.Now() >= sim.Time(stop) {
			return
		}
		n++
		for sh, bc := range s.ShardCommittees {
			var target *pbft.Replica
			for _, r := range bc.Replicas {
				if !r.Endpoint().Down() {
					target = r
					break
				}
			}
			if target == nil {
				continue
			}
			id++
			target.SubmitLocal(chain.Tx{
				ID: id, Chaincode: "kvstore", Fn: "put",
				Args: []string{"k" + strconv.Itoa(sh) + "_" + strconv.Itoa(n%64), "v"},
			})
		}
		s.Engine.Schedule(interval, tick)
	}
	s.Engine.Schedule(interval, tick)
}

func TestEpochsRecurAndSystemKeepsCommitting(t *testing.T) {
	s := NewSystem(Config{
		Seed: 13, Shards: 2, ShardSize: 9, RefSize: 0,
		Variant: pbft.VariantAHLPlus, Clients: 1,
		Costs: tee.FreeCosts(),
	})
	injectLoad(s, 50, 170*time.Second)

	var epochs []uint64
	rnds := make(map[uint64]bool)
	s.EnableEpochs(EpochConfig{
		Interval: 60 * time.Second,
		Reshard:  DefaultReshardConfig(ReshardSwapBatch),
		OnEpoch: func(e, rnd uint64) {
			epochs = append(epochs, e)
			rnds[rnd] = true
		},
	})
	before := s.TotalExecuted()
	s.Run(170 * time.Second)

	if len(epochs) < 2 {
		t.Fatalf("only %d epochs fired in 170s at 60s interval", len(epochs))
	}
	for i, e := range epochs {
		if e != uint64(i+1) {
			t.Fatalf("epoch sequence %v not consecutive", epochs)
		}
	}
	if len(rnds) != len(epochs) {
		t.Fatalf("epoch rnds not fresh: %d distinct for %d epochs", len(rnds), len(epochs))
	}
	if s.Epoch() != uint64(len(epochs)) {
		t.Fatalf("Epoch() = %d, want %d", s.Epoch(), len(epochs))
	}
	// Throughput survived two batched reconfigurations.
	total := s.TotalExecuted() - before
	if total < 1000 {
		t.Fatalf("only %d txs executed across epochs; resharding starved the system", total)
	}
}

func TestEpochRndDeterministicPerSeed(t *testing.T) {
	a := NewSystem(Config{Seed: 5, Shards: 1, ShardSize: 3, Variant: pbft.VariantAHLPlus, Costs: tee.FreeCosts()})
	b := NewSystem(Config{Seed: 5, Shards: 1, ShardSize: 3, Variant: pbft.VariantAHLPlus, Costs: tee.FreeCosts()})
	c := NewSystem(Config{Seed: 6, Shards: 1, ShardSize: 3, Variant: pbft.VariantAHLPlus, Costs: tee.FreeCosts()})
	for e := uint64(1); e <= 5; e++ {
		if a.EpochRnd(e) != b.EpochRnd(e) {
			t.Fatalf("same seed, different rnd at epoch %d", e)
		}
		if a.EpochRnd(e) == c.EpochRnd(e) {
			t.Fatalf("different seeds collided at epoch %d", e)
		}
		if e > 1 && a.EpochRnd(e) == a.EpochRnd(e-1) {
			t.Fatalf("consecutive epochs share rnd at %d", e)
		}
	}
}

func TestEnableEpochsRejectsBadInterval(t *testing.T) {
	s := NewSystem(Config{Seed: 5, Shards: 1, ShardSize: 3, Variant: pbft.VariantAHLPlus, Costs: tee.FreeCosts()})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableEpochs accepted a zero interval")
		}
	}()
	s.EnableEpochs(EpochConfig{})
}
