// Package core assembles the paper's system: a sharded, permissioned
// blockchain in which a trusted-beacon shard-formation protocol partitions
// N nodes into committees, each committee runs the AHL+ consensus protocol
// over its own partition of the ledger state, and a Byzantine
// fault-tolerant reference committee coordinates cross-shard transactions
// with 2PC/2PL (Figure 1b).
//
// A System is a complete deployment on the discrete-event simulator: shard
// committees, the optional reference committee, transaction managers on
// every replica, client gateways, and the chosen network environment (LAN
// cluster or the 8-region GCP latency matrix of Table 3).
package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/chaincode/shardlib"
	"repro/internal/consensus"
	"repro/internal/consensus/pbft"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/txn"
)

// Environment selects the network model.
type Environment struct {
	// GCPRegions > 0 deploys across that many Table 3 regions; 0 selects
	// the LAN cluster.
	GCPRegions int
}

// Config describes a deployment.
type Config struct {
	Seed      int64
	Shards    int
	ShardSize int
	// RefSize is the reference committee size; 0 disables cross-shard
	// coordination (the Figure 14 configuration).
	RefSize int
	// RefGroups runs that many parallel reference committee instances of
	// RefSize nodes each (§6.2: "we can scale it out by running multiple
	// instances of R in parallel"). 0 or 1 selects a single instance.
	RefGroups int
	Variant   pbft.Variant
	Env       Environment
	// Clients is the number of client gateways to attach.
	Clients int
	// SendReplies enables per-transaction replies (closed-loop drivers).
	SendReplies bool
	// Costs is the TEE cost model; zero value selects Table 2 defaults.
	Costs tee.CostModel
	// PipelineDepth caps leader proposals running ahead of execution
	// (pbft.Options.PipelineDepth); 0 leaves the legacy Window-only bound,
	// so sim experiments can model the live pipeline explicitly.
	PipelineDepth uint64
	// AdaptiveBatch enables the load-scaled batch cut
	// (pbft.Options.AdaptiveBatch); off preserves the fixed-timeout
	// schedule.
	AdaptiveBatch bool
	// BatchMinDelay floors the adaptive cut delay (0 = pbft default).
	BatchMinDelay time.Duration
	// ExecWorkers sets conflict-aware parallel execution workers per
	// replica (0 = package default, <=1 serial).
	ExecWorkers int
	// Tune adjusts replica options after defaults are applied.
	Tune func(*pbft.Options)
	// ExtraShardCodes, when set, returns additional chaincodes installed
	// on every shard replica (e.g. custom contracts wrapped by
	// shardlib.AutoShard). It is called once per replica so each gets
	// fresh instances.
	ExtraShardCodes func() []chaincode.Chaincode
	// Behaviors maps a global node id to a misbehavior.
	Behaviors map[simnet.NodeID]pbft.Behavior
	// Obs attaches one engine-clocked observability hub to every replica
	// (System.Obs). Off by default: the benchmark harnesses leave it off,
	// so their schedules and reports stay byte-identical; with it on, all
	// timestamps come from the engine clock, keeping traces deterministic.
	Obs bool
}

// System is a running sharded blockchain deployment.
type System struct {
	Config Config
	Engine *sim.Engine
	Net    *simnet.Network
	Scheme blockcrypto.Scheme

	ShardCommittees []*pbft.BuiltCommittee
	// RefCommittees holds the parallel reference committee instances;
	// RefCommittee aliases instance 0 for the common single-instance case.
	RefCommittees []*pbft.BuiltCommittee
	RefCommittee  *pbft.BuiltCommittee
	Managers      []*txn.Manager
	Topology      txn.Topology

	// Obs is the deployment-wide observability hub (nil unless Config.Obs):
	// one hub shared by every replica, timestamped by the engine clock,
	// with events distinguished by node id.
	Obs *obs.Hub

	clients []*txn.Client
	// queryGateways lazily caches one scatter-gather gateway per client
	// (the gateway wraps the client endpoint's handler once).
	queryGateways []*query.Gateway

	epoch uint64
	rng   *rand.Rand
}

// ShardRegistry builds the chaincode registry every shard replica runs:
// the plain benchmark chaincodes, the paper's hand-refactored sharded
// variants (§6.3), and the automatically transformed variants (§6.4,
// shardlib.AutoShard).
func ShardRegistry() *chaincode.Registry {
	return chaincode.NewRegistry(
		chaincode.KVStore{}, chaincode.SmallBank{},
		chaincode.ShardedKVStore{}, chaincode.ShardedSmallBank{},
		shardlib.AutoShard(AutoSmallBank, chaincode.SmallBankLogic),
		shardlib.AutoShard(AutoKVStore, chaincode.KVStoreLogic),
	)
}

// RefRegistry builds the reference committee's registry.
func RefRegistry() *chaincode.Registry {
	return chaincode.NewRegistry(txn.RefCom{})
}

// NewSystem builds and wires a deployment. Node ids are assigned densely:
// shard committees first, then the reference committee, then clients.
func NewSystem(cfg Config) *System {
	if cfg.Shards < 1 || cfg.ShardSize < 1 {
		panic("core: need at least one shard with one node")
	}
	engine := sim.NewEngine(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Enumerate all node ids up front so the latency model can assign
	// regions.
	var all []simnet.NodeID
	next := simnet.NodeID(0)
	shardIDs := make([][]simnet.NodeID, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		for j := 0; j < cfg.ShardSize; j++ {
			shardIDs[s] = append(shardIDs[s], next)
			all = append(all, next)
			next++
		}
	}
	refGroups := 0
	if cfg.RefSize > 0 {
		refGroups = cfg.RefGroups
		if refGroups < 1 {
			refGroups = 1
		}
	}
	refGroupIDs := make([][]simnet.NodeID, refGroups)
	for g := 0; g < refGroups; g++ {
		for j := 0; j < cfg.RefSize; j++ {
			refGroupIDs[g] = append(refGroupIDs[g], next)
			all = append(all, next)
			next++
		}
	}
	var clientIDs []simnet.NodeID
	for j := 0; j < cfg.Clients; j++ {
		clientIDs = append(clientIDs, next)
		all = append(all, next)
		next++
	}

	var latency simnet.LatencyModel
	if cfg.Env.GCPRegions > 0 {
		latency = simnet.GCP(cfg.Env.GCPRegions, all)
	} else {
		latency = simnet.LAN()
	}
	net := simnet.New(engine, latency)
	scheme := blockcrypto.NewSimScheme()

	sys := &System{
		Config: cfg,
		Engine: engine,
		Net:    net,
		Scheme: scheme,
		rng:    rng,
	}
	if cfg.Obs {
		sys.Obs = obs.NewHub(func() int64 { return int64(engine.Now()) }, obs.Options{})
	}

	shardF := make([]int, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		spec := ShardSpec(cfg, shardIDs[s], behaviorsFor(cfg.Behaviors, shardIDs[s]))
		spec.Obs = sys.Obs
		bc := pbft.Build(net, scheme, rng, spec)
		sys.ShardCommittees = append(sys.ShardCommittees, bc)
		shardF[s] = bc.Committee.F
	}

	refGroupFs := make([]int, refGroups)
	for g := 0; g < refGroups; g++ {
		spec := RefSpec(cfg, refGroupIDs[g], behaviorsFor(cfg.Behaviors, refGroupIDs[g]))
		spec.Obs = sys.Obs
		bc := pbft.Build(net, scheme, rng, spec)
		sys.RefCommittees = append(sys.RefCommittees, bc)
		refGroupFs[g] = bc.Committee.F
	}

	sys.Topology = txn.Topology{
		ShardNodes: shardIDs,
		ShardF:     shardF,
	}
	if refGroups > 0 {
		sys.RefCommittee = sys.RefCommittees[0]
		sys.Topology.RefNodes = refGroupIDs[0]
		sys.Topology.RefF = refGroupFs[0]
		if refGroups > 1 {
			sys.Topology.RefGroups = refGroupIDs
			sys.Topology.RefGroupFs = refGroupFs
		}
	}

	// Attach transaction managers when cross-shard coordination is on.
	if refGroups > 0 {
		for s, bc := range sys.ShardCommittees {
			for _, r := range bc.Replicas {
				sys.Managers = append(sys.Managers,
					txn.NewManager(txn.RoleShard, s, sys.Topology, r))
			}
		}
		for g, bc := range sys.RefCommittees {
			for _, r := range bc.Replicas {
				sys.Managers = append(sys.Managers,
					txn.NewManager(txn.RoleReference, g, sys.Topology, r))
			}
		}
	}

	for _, id := range clientIDs {
		sys.clients = append(sys.clients, txn.NewClient(net, id, sys.Topology))
	}

	// Query services answer height-pinned reads on every shard replica.
	// They sit outermost on the handler chain and pass all non-query
	// traffic through untouched, so deployments that never issue queries
	// behave byte-identically to before.
	for _, bc := range sys.ShardCommittees {
		for _, r := range bc.Replicas {
			query.AttachService(r.Endpoint(), r.Store())
		}
	}
	return sys
}

// optionsTune returns the replica-options tuning closure a deployment
// described by cfg applies to every committee: environment-appropriate
// timeouts, reply policy, and the caller's own Tune on top.
func optionsTune(cfg Config) func(*pbft.Options) {
	timing := consensus.DefaultTiming()
	if cfg.Env.GCPRegions > 1 {
		timing = consensus.WANTiming()
	}
	return func(o *pbft.Options) {
		o.Timing = timing
		o.SendReplies = cfg.SendReplies
		o.PipelineDepth = cfg.PipelineDepth
		o.AdaptiveBatch = cfg.AdaptiveBatch
		o.BatchMinDelay = cfg.BatchMinDelay
		o.ExecWorkers = cfg.ExecWorkers
		if cfg.Tune != nil {
			cfg.Tune(o)
		}
	}
}

// ShardSpec describes one shard committee of the deployment cfg over the
// given member nodes — the committee-assembly recipe shared by the
// simulator (NewSystem → pbft.Build) and the live runtime (LiveNode →
// pbft.BuildReplica), so a standalone process raises a replica wired
// identically to its simulated twin.
func ShardSpec(cfg Config, nodes []simnet.NodeID, behaviors map[int]pbft.Behavior) pbft.CommitteeSpec {
	shardReg := ShardRegistry
	if cfg.ExtraShardCodes != nil {
		shardReg = func() *chaincode.Registry {
			reg := ShardRegistry()
			for _, cc := range cfg.ExtraShardCodes() {
				reg.Register(cc)
			}
			return reg
		}
	}
	return pbft.CommitteeSpec{
		Variant:   cfg.Variant,
		Nodes:     nodes,
		Behaviors: behaviors,
		Registry:  shardReg,
		Tune:      optionsTune(cfg),
		Costs:     cfg.Costs,
	}
}

// RefSpec describes one reference-committee instance of the deployment
// cfg; see ShardSpec for the sharing contract.
func RefSpec(cfg Config, nodes []simnet.NodeID, behaviors map[int]pbft.Behavior) pbft.CommitteeSpec {
	return pbft.CommitteeSpec{
		Variant:   cfg.Variant,
		Nodes:     nodes,
		Behaviors: behaviors,
		Registry:  RefRegistry,
		Tune:      optionsTune(cfg),
		Costs:     cfg.Costs,
	}
}

func behaviorsFor(global map[simnet.NodeID]pbft.Behavior, nodes []simnet.NodeID) map[int]pbft.Behavior {
	if len(global) == 0 {
		return nil
	}
	out := make(map[int]pbft.Behavior)
	for i, id := range nodes {
		if b, ok := global[id]; ok {
			out[i] = b
		}
	}
	return out
}

// Client returns client gateway i.
func (s *System) Client(i int) *txn.Client { return s.clients[i%len(s.clients)] }

// QueryGateway returns the scatter-gather query gateway riding on client
// i's endpoint, attaching it on first use.
func (s *System) QueryGateway(i int) *query.Gateway {
	i = i % len(s.clients)
	for len(s.queryGateways) <= i {
		s.queryGateways = append(s.queryGateways, nil)
	}
	if s.queryGateways[i] == nil {
		s.queryGateways[i] = query.NewGateway(s.clients[i].Endpoint())
	}
	return s.queryGateways[i]
}

// QueryTargets returns one query-serving replica per shard (the first
// replica of each committee), the scatter set for Gateway queries.
func (s *System) QueryTargets() []simnet.NodeID {
	out := make([]simnet.NodeID, len(s.Topology.ShardNodes))
	for i, nodes := range s.Topology.ShardNodes {
		out[i] = nodes[0]
	}
	return out
}

// Clients returns the number of attached client gateways.
func (s *System) Clients() int { return len(s.clients) }

// ShardOfKey maps an application key to its owning shard by hash, the
// uniform placement Appendix B assumes.
func (s *System) ShardOfKey(key string) int {
	return ShardOfKey(key, s.Config.Shards)
}

// ShardOfKey maps a key to one of k shards by cryptographic hash.
func ShardOfKey(key string, k int) int {
	d := blockcrypto.Hash([]byte("placement:" + key))
	v := uint64(d[0])<<24 | uint64(d[1])<<16 | uint64(d[2])<<8 | uint64(d[3])
	return int(v % uint64(k))
}

// Run advances the simulation by d.
func (s *System) Run(d time.Duration) { s.Engine.Run(s.Engine.Now().Add(d)) }

// InjectFaults installs a deterministic fault injector over the system's
// network and returns it for schedule declarations (crashes, partitions,
// protocol-point triggers). Byzantine behaviors are not injected here —
// configure them at build time through Config.Behaviors. Combining the
// injector with ReshardAt exercises reconfiguration under faults.
func (s *System) InjectFaults(cfg faults.Config) *faults.Injector {
	return faults.New(s.Net, cfg)
}

// TotalExecuted sums, across shards, the transaction count executed by a
// quorum of each committee.
func (s *System) TotalExecuted() int {
	total := 0
	for _, bc := range s.ShardCommittees {
		total += bc.ExecutedOnQuorum()
	}
	return total
}

// Seed populates the shards with SmallBank accounts acc0..accN-1 (each
// routed to its owning shard) by injecting creation transactions and
// running the engine until they commit.
func (s *System) Seed(accounts int, balance int64) {
	var id uint64 = 1 << 60
	for i := 0; i < accounts; i++ {
		acc := Account(i)
		shard := s.ShardOfKey(acc)
		id++
		tx := chain.Tx{
			ID:        id,
			Chaincode: "smallbank-sharded",
			Fn:        "create",
			Args:      []string{acc, strconv.FormatInt(balance, 10), "0"},
		}
		s.ShardCommittees[shard].Replicas[0].SubmitLocal(tx)
	}
	s.Run(30 * time.Second)
}

// Account formats the canonical benchmark account name.
func Account(i int) string { return fmt.Sprintf("acc%d", i) }

// BalanceOnShard reads acc's checking balance from shard replica 0; used
// by tests and examples to verify end-to-end effects.
func (s *System) BalanceOnShard(acc string) (int64, bool) {
	shard := s.ShardOfKey(acc)
	v, ok := s.ShardCommittees[shard].Replicas[0].Store().Get("c_" + acc)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// PaymentDTx builds the cross-shard sendPayment distributed transaction of
// §6.3: a debit prepare on the payer's shard and a credit prepare on the
// payee's shard, completed by commitPayment/abortPayment.
func (s *System) PaymentDTx(txid, from, to string, amount int64) txn.DTx {
	return PaymentDTx(s.Config.Shards, txid, from, to, amount)
}

// PaymentDTx is the free-standing form of System.PaymentDTx for callers
// that only know the shard count — the live client drivers, which have a
// topology but no System.
func PaymentDTx(shards int, txid, from, to string, amount int64) txn.DTx {
	return txn.DTx{
		TxID:      txid,
		Chaincode: "smallbank-sharded",
		Ops: []txn.Op{
			{Shard: ShardOfKey(from, shards), Fn: "preparePayment",
				Args: []string{txid, from, strconv.FormatInt(-amount, 10)}},
			{Shard: ShardOfKey(to, shards), Fn: "preparePayment",
				Args: []string{txid, to, strconv.FormatInt(amount, 10)}},
		},
		CommitFn: "commitPayment",
		AbortFn:  "abortPayment",
	}
}

// KVUpdateDTx builds a cross-shard KVStore update (the modified BLOCKBENCH
// driver of §7 issues 3 updates per transaction). Keys are grouped by
// owning shard into one prepare op per shard.
func (s *System) KVUpdateDTx(txid string, kv map[string]string) txn.DTx {
	perShard := make(map[int][]string)
	//ahl:nondeterministic pairs are bucketed per shard and re-sorted by sortPairs before the op is built, so bucket fill order is immaterial
	for k, v := range kv {
		sh := s.ShardOfKey(k)
		perShard[sh] = append(perShard[sh], k, v)
	}
	d := txn.DTx{
		TxID:      txid,
		Chaincode: "kvstore-sharded",
		CommitFn:  "commit",
		AbortFn:   "abort",
	}
	// Deterministic op order.
	for sh := 0; sh < s.Config.Shards; sh++ {
		if kvs, ok := perShard[sh]; ok {
			sortPairs(kvs)
			d.Ops = append(d.Ops, txn.Op{Shard: sh, Fn: "prepare",
				Args: append([]string{txid}, kvs...)})
		}
	}
	return d
}

func sortPairs(kvs []string) {
	// Insertion sort over (key, value) pairs by key; slices are tiny.
	for i := 2; i < len(kvs); i += 2 {
		for j := i; j >= 2 && kvs[j] < kvs[j-2]; j -= 2 {
			kvs[j], kvs[j-2] = kvs[j-2], kvs[j]
			kvs[j+1], kvs[j-1] = kvs[j-1], kvs[j+1]
		}
	}
}
