package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/consensus/pbft"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/txn"
)

// End-to-end 2PC atomicity under injected fault schedules: whatever the
// injector does — crash-recovery of leaders and followers, partitions,
// probabilistic loss/duplication/delay — no committed transaction may be
// half-applied, no aborted transaction may leave any effect, and no
// terminal transaction may leave a 2PL lock or staged write behind.

// bestReplica and residueKeys alias the shared invariant helpers
// (pbft.BuiltCommittee.MostExecuted, chaincode.ResidueKeys) the fault
// experiments use too.
func bestReplica(bc *pbft.BuiltCommittee) *pbft.Replica { return bc.MostExecuted() }

func residueKeys(st *chain.Store) []string { return chaincode.ResidueKeys(st) }

func balanceOn(r *pbft.Replica, acc string) int64 {
	v, ok := r.Store().Get("c_" + acc)
	if !ok {
		return 0
	}
	var n int64
	fmt.Sscanf(string(v), "%d", &n)
	return n
}

func TestCrossShardAtomicityUnderFaultSchedules(t *testing.T) {
	const accounts, initial = 24, 1000
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := NewSystem(Config{
				Seed: seed, Shards: 3, ShardSize: 4, RefSize: 4,
				Variant: pbft.VariantAHLPlus, Clients: 2, SendReplies: true,
				Costs: tee.FreeCosts(),
			})
			s.Seed(accounts, initial)

			inj := s.InjectFaults(faults.Config{
				Seed: seed * 101, DropRate: 0.02, DelayRate: 0.05,
				Delay: 200 * time.Millisecond, DupRate: 0.02,
			})
			// Schedule: one crash-recovery per committee (within f=1, any
			// position including the leader) and one shard partitioned away
			// for 15s, all drawn from a seed-deterministic source.
			sched := rand.New(rand.NewSource(seed * 7))
			crash := func(nodes []simnet.NodeID) {
				n := nodes[sched.Intn(len(nodes))]
				after := 5*time.Second + time.Duration(sched.Intn(10))*time.Second
				outage := 10*time.Second + time.Duration(sched.Intn(20))*time.Second
				inj.CrashFor(n, after, outage)
			}
			for _, nodes := range s.Topology.ShardNodes {
				crash(nodes)
			}
			crash(s.Topology.RefNodes)
			cut := sched.Intn(s.Config.Shards)
			inj.PartitionFor(s.Topology.ShardNodes[cut], 12*time.Second, 15*time.Second)

			// Submit cross-shard payments spread over the fault window,
			// including same-payer pairs that force lock-conflict aborts.
			type payment struct {
				txid     string
				from, to string
				amount   int64
				res      *txn.Result
			}
			var pays []*payment
			k := 0
			for i := 0; i < accounts && len(pays) < 16; i++ {
				for j := 0; j < accounts && len(pays) < 16; j++ {
					a, b := Account(i), Account(j)
					if i == j || s.ShardOfKey(a) == s.ShardOfKey(b) {
						continue
					}
					k++
					pays = append(pays, &payment{
						txid: fmt.Sprintf("atom%d", k), from: a, to: b,
						amount: int64(1 + k),
					})
					break
				}
			}
			if len(pays) < 8 {
				t.Fatalf("only %d cross-shard pairs found", len(pays))
			}
			for i, p := range pays {
				p := p
				at := time.Duration(1+i) * time.Second
				s.Engine.Schedule(at, func() {
					d := s.PaymentDTx(p.txid, p.from, p.to, p.amount)
					s.Client(i).SubmitDistributed(d, func(r txn.Result) { p.res = &r })
				})
			}

			s.Run(700 * time.Second)
			if inj.Stats.Crashes == 0 || inj.Stats.Dropped == 0 {
				t.Fatalf("schedule injected nothing: %+v", inj.Stats)
			}

			// Liveness: every payment reached a terminal outcome.
			expected := make(map[string]int64, accounts)
			for i := 0; i < accounts; i++ {
				expected[Account(i)] = initial
			}
			ref := bestReplica(s.RefCommittee)
			for _, p := range pays {
				if p.res == nil {
					t.Fatalf("tx %s: no outcome after faults healed", p.txid)
				}
				st := txn.StatusOf(ref.Store(), p.txid)
				if !st.Terminal() {
					t.Fatalf("tx %s: coordinator state %v not terminal", p.txid, st)
				}
				if (st == txn.StatusCommitted) != p.res.Committed {
					t.Fatalf("tx %s: client outcome %v disagrees with coordinator %v",
						p.txid, p.res.Committed, st)
				}
				if p.res.Committed {
					expected[p.from] -= p.amount
					expected[p.to] += p.amount
				}
			}

			// Atomicity: committed = fully applied on both shards, aborted =
			// no effect. With the payments the only balance-touching
			// transactions, every account's final balance is exactly
			// determined; a half-applied commit or a leaky abort breaks it.
			for i := 0; i < accounts; i++ {
				acc := Account(i)
				best := bestReplica(s.ShardCommittees[s.ShardOfKey(acc)])
				if got := balanceOn(best, acc); got != expected[acc] {
					t.Errorf("%s: balance %d, want %d", acc, got, expected[acc])
				}
			}

			// No terminal transaction leaves locks or staged writes.
			for sh, bc := range s.ShardCommittees {
				if res := residueKeys(bestReplica(bc).Store()); len(res) != 0 {
					t.Errorf("shard %d: lock/stage residue %q", sh, res)
				}
			}
		})
	}
}

// TestPartitionedCoordinatorNoRetryStorm is the regression for unbounded
// vote retransmission (txn.Manager.retryTick/armRetry): with the
// reference committee partitioned away forever right as the first vote
// leaves a shard, the shards keep retrying — but under bounded backoff
// the traffic decays to one burst per maxRetryInterval instead of the
// base cadence forever.
func TestPartitionedCoordinatorNoRetryStorm(t *testing.T) {
	s := testSystem(t, 2, 3, 3, 1)
	s.Seed(12, 100)
	from, to := findCrossShardPair(s, 12)

	votes := 0
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		if m.Type == txn.MsgVote {
			votes++
		}
		return 0, true
	})
	inj := s.InjectFaults(faults.Config{Seed: 9})
	refs := append([]simnet.NodeID(nil), s.Topology.RefNodes...)
	inj.OnFirst(txn.MsgVote, func(simnet.Message) {
		inj.PartitionFor(refs, 0, 0) // never heals
	})

	var res *txn.Result
	submitPayment(t, s, "storm", from, to, 10, &res)
	s.Run(2000 * time.Second)

	if res != nil {
		t.Fatalf("transaction decided despite the coordinator partition (outcome %+v)", *res)
	}
	// 6 shard replicas hold a vote each. Unbounded 10s retries would
	// route ~200 bursts x 3 destinations x 6 replicas ≈ 3600 votes;
	// capped backoff stays around ~15 bursts each (≈ 300 total).
	if votes > 800 {
		t.Fatalf("%d vote messages routed: retry storm (bounded backoff would send ~300)", votes)
	}
	if votes < 20 {
		t.Fatalf("only %d vote messages routed; retransmission loop seems dead", votes)
	}
}

// TestAbortedCrossShardTxnsReleaseAllLocks is the lock-release property
// test: under forced lock-conflict and insufficient-funds aborts plus
// probabilistic message loss, every terminal transaction — and in
// particular every aborted one — must leave zero 2PL locks, staged
// values, or staging indexes on every shard.
func TestAbortedCrossShardTxnsReleaseAllLocks(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := NewSystem(Config{
				Seed: seed, Shards: 3, ShardSize: 4, RefSize: 4,
				Variant: pbft.VariantAHLPlus, Clients: 2, SendReplies: true,
				Costs: tee.FreeCosts(),
			})
			const accounts = 12
			s.Seed(accounts, 50)
			s.InjectFaults(faults.Config{Seed: seed, DropRate: 0.03})

			// Pairs of payments sharing a payer, issued simultaneously with
			// amounts that cannot both clear a 50 balance: each round ends
			// in at least one abort (lock conflict or insufficient funds).
			aborted, done := 0, 0
			round := 0
			for i := 0; i < accounts; i++ {
				from := Account(i)
				var tos []string
				for j := 0; j < accounts && len(tos) < 2; j++ {
					acc := Account(j)
					if j != i && s.ShardOfKey(acc) != s.ShardOfKey(from) {
						tos = append(tos, acc)
					}
				}
				if len(tos) < 2 {
					continue
				}
				round++
				at := time.Duration(round) * 2 * time.Second
				for c, to := range tos {
					txid := fmt.Sprintf("lock%d-%d", round, c)
					d := s.PaymentDTx(txid, from, to, 40)
					c := c
					s.Engine.Schedule(at, func() {
						s.Client(c).SubmitDistributed(d, func(r txn.Result) {
							done++
							if !r.Committed {
								aborted++
							}
						})
					})
				}
			}
			if round < 4 {
				t.Fatalf("only %d contention rounds constructed", round)
			}

			s.Run(500 * time.Second)
			if done != 2*round {
				t.Fatalf("%d of %d payments reached an outcome", done, 2*round)
			}
			if aborted == 0 {
				t.Fatal("no aborts despite forced conflicts; property test is vacuous")
			}
			for sh, bc := range s.ShardCommittees {
				if res := residueKeys(bestReplica(bc).Store()); len(res) != 0 {
					t.Errorf("shard %d: residue after %d aborts: %q", sh, aborted, res)
				}
			}
		})
	}
}

// TestLatePrepareAfterAbortReleasesLocks is the regression for the
// decide-before-prepare race the fault injector surfaced: if a shard's
// PrepareTx messages are delayed past the abort decision (decided by
// another shard's NotOK), the prepare still enters consensus and
// re-acquires locks *after* the abort invocation already ran — and the
// coordinator, considering the transaction finished, never sends another
// decide. The manager must detect the inversion and inject a cleanup.
func TestLatePrepareAfterAbortReleasesLocks(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)
	payerShard := s.ShardOfKey(from)

	// A blocker transaction holds the payee's lock so the payee shard
	// votes NotOK and the payment aborts.
	s.ShardCommittees[s.ShardOfKey(to)].Replicas[0].SubmitLocal(chain.Tx{
		ID: 1 << 55, Chaincode: "smallbank-sharded", Fn: "preparePayment",
		Args: []string{"blocker", to, "0"},
	})
	s.Run(10 * time.Second)

	// Delay every PrepareTx to the payer shard far past the decision.
	inPayerShard := make(map[simnet.NodeID]bool)
	for _, n := range s.Topology.ShardNodes[payerShard] {
		inPayerShard[n] = true
	}
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		if m.Type == txn.MsgPrepare && inPayerShard[m.To] {
			return 30 * time.Second, true
		}
		return 0, true
	})

	var res *txn.Result
	submitPayment(t, s, "late-prepare", from, to, 10, &res)
	s.Run(300 * time.Second)

	if res == nil {
		t.Fatal("no outcome for the late-prepare payment")
	}
	if res.Committed {
		t.Fatal("payment committed despite the blocked payee")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 100 {
		t.Fatalf("payer balance %d, want 100 (abort must leave no effect)", bal)
	}
	// The payer shard saw prepare-after-abort: nothing may dangle there.
	best := bestReplica(s.ShardCommittees[payerShard])
	if res := residueKeys(best.Store()); len(res) != 0 {
		t.Fatalf("payer shard residue after late prepare: %q", res)
	}
}
