package core

import (
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/txn"
)

// Failure-injection tests: the Figure 5 protocol must stay safe and —
// within the fault bounds — live under crashed replicas, Byzantine
// replicas, lossy links, and temporary partitions.

// submitPayment schedules a cross-shard payment and captures its outcome
// in res.
func submitPayment(t *testing.T, s *System, txid, from, to string, amount int64, res **txn.Result) {
	t.Helper()
	d := s.PaymentDTx(txid, from, to, amount)
	s.Engine.Schedule(0, func() {
		s.Client(0).SubmitDistributed(d, func(r txn.Result) { *res = &r })
	})
}

// beginTarget returns the reference replica a begin for txid is sent to.
func beginTarget(s *System, txid string) simnet.NodeID {
	group, _ := s.Topology.RefGroup(s.Topology.GroupForTx(txid))
	return group[txn.DeriveTxID(txid, "begin")%uint64(len(group))]
}

func TestPaymentCommitsWithCrashedRefFollower(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	// Crash one reference follower (within f=1) that is neither the
	// protocol leader (replica 0) nor the begin target.
	txid := "crash-ref"
	crash := s.Topology.RefNodes[3]
	if crash == beginTarget(s, txid) {
		crash = s.Topology.RefNodes[2]
	}
	s.Net.Endpoint(crash).SetDown(true)

	var res *txn.Result
	submitPayment(t, s, txid, from, to, 10, &res)
	s.Run(120 * time.Second)

	if res == nil {
		t.Fatal("no outcome with one crashed reference follower")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 90 {
		t.Fatalf("from = %d, want 90", bal)
	}
}

func TestPaymentCommitsWithCrashedShardFollowers(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	// Crash the last follower of every shard committee (f=1 each).
	for _, nodes := range s.Topology.ShardNodes {
		s.Net.Endpoint(nodes[len(nodes)-1]).SetDown(true)
	}

	var res *txn.Result
	submitPayment(t, s, "crash-shards", from, to, 10, &res)
	s.Run(120 * time.Second)

	if res == nil {
		t.Fatal("no outcome with crashed shard followers")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if fromBal, _ := s.BalanceOnShard(from); fromBal != 90 {
		t.Fatalf("from = %d, want 90", fromBal)
	}
}

func TestPaymentCommitsWithEquivocatingShardReplica(t *testing.T) {
	// An equivocating replica in each tx-committee: the A2M trusted log
	// makes its conflicting messages detectable, so the protocol commits.
	behaviors := make(map[simnet.NodeID]pbft.Behavior)
	cfg := Config{
		Seed: 1, Shards: 3, ShardSize: 4, RefSize: 4,
		Variant: pbft.VariantAHLPlus, Clients: 1, SendReplies: true,
		Costs: tee.FreeCosts(), Behaviors: behaviors,
	}
	// Node ids are dense: shard s occupies [s*4, s*4+4). Mark the last
	// replica of each shard as equivocating.
	for sh := 0; sh < 3; sh++ {
		behaviors[simnet.NodeID(sh*4+3)] = pbft.BehaviorEquivocate
	}
	s := NewSystem(cfg)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	var res *txn.Result
	submitPayment(t, s, "equiv", from, to, 10, &res)
	s.Run(120 * time.Second)

	if res == nil {
		t.Fatal("no outcome with equivocating replicas")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if fromBal, _ := s.BalanceOnShard(from); fromBal != 90 {
		t.Fatalf("from = %d, want 90", fromBal)
	}
}

func TestPaymentCommitsWithSilentRefReplica(t *testing.T) {
	behaviors := make(map[simnet.NodeID]pbft.Behavior)
	cfg := Config{
		Seed: 1, Shards: 3, ShardSize: 4, RefSize: 4,
		Variant: pbft.VariantAHLPlus, Clients: 1, SendReplies: true,
		Costs: tee.FreeCosts(), Behaviors: behaviors,
	}
	s := NewSystem(cfg)
	// The last reference node goes Byzantine-silent. (Configured after
	// construction would be too late for replica wiring, so rebuild.)
	behaviors[s.Topology.RefNodes[3]] = pbft.BehaviorSilent
	s = NewSystem(cfg)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	txid := "silent-ref"
	if beginTarget(s, txid) == s.Topology.RefNodes[3] {
		txid = "silent-ref-2"
	}
	var res *txn.Result
	submitPayment(t, s, txid, from, to, 10, &res)
	s.Run(120 * time.Second)

	if res == nil {
		t.Fatal("no outcome with silent reference replica")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
}

func TestPaymentCommitsUnderLossyNetwork(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	// Drop a deterministic ~3% of all messages. The committee-to-committee
	// steps survive by sender redundancy (every replica of the sending
	// committee transmits); consensus-internal losses are recovered by the
	// protocol's timers.
	drops, count := 0, 0
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		count++
		if count%31 == 0 {
			drops++
			return 0, false
		}
		return 0, true
	})

	var res *txn.Result
	submitPayment(t, s, "lossy", from, to, 10, &res)
	s.Run(240 * time.Second)

	if drops == 0 {
		t.Fatal("filter never dropped anything; test is vacuous")
	}
	if res == nil {
		t.Fatal("no outcome under 3% message loss")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if fromBal, _ := s.BalanceOnShard(from); fromBal != 90 {
		t.Fatalf("from = %d, want 90", fromBal)
	}
}

func TestPaymentCommitsAfterPartitionHeals(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	// Partition the payer's shard from the reference committee for the
	// first 30 seconds: votes cannot flow, so the decision must wait for
	// the heal — but once healed the protocol completes.
	payerShard := s.ShardOfKey(from)
	inPayerShard := make(map[simnet.NodeID]bool)
	for _, n := range s.Topology.ShardNodes[payerShard] {
		inPayerShard[n] = true
	}
	isRef := make(map[simnet.NodeID]bool)
	for _, n := range s.Topology.RefNodes {
		isRef[n] = true
	}
	healed := false
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		if healed {
			return 0, true
		}
		if (inPayerShard[m.From] && isRef[m.To]) || (isRef[m.From] && inPayerShard[m.To]) {
			return 0, false
		}
		return 0, true
	})
	s.Engine.Schedule(30*time.Second, func() { healed = true })

	var res *txn.Result
	submitPayment(t, s, "partition", from, to, 10, &res)
	s.Run(240 * time.Second)

	if res == nil {
		t.Fatal("no outcome after partition healed")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if res.Latency < 30*time.Second {
		t.Fatalf("latency %v implies the decision beat the partition", res.Latency)
	}
	if fromBal, _ := s.BalanceOnShard(from); fromBal != 90 {
		t.Fatalf("from = %d, want 90", fromBal)
	}
}

func TestDecideLossRecoveredByVoteRetransmission(t *testing.T) {
	// Drop every CommitTx/AbortTx to the payer's shard for the first 25
	// seconds: the shard keeps its locks and keeps re-sending its vote
	// (provoked by the coordinator's periodic PrepareTx); once the drops
	// stop, the re-sent votes make the coordinator re-send the decision
	// and the shard completes phase 2.
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	payerShard := s.ShardOfKey(from)
	inPayerShard := make(map[simnet.NodeID]bool)
	for _, n := range s.Topology.ShardNodes[payerShard] {
		inPayerShard[n] = true
	}
	healed := false
	dropped := 0
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		if !healed && m.Type == txn.MsgDecide && inPayerShard[m.To] {
			dropped++
			return 0, false
		}
		return 0, true
	})
	s.Engine.Schedule(25*time.Second, func() { healed = true })

	var res *txn.Result
	submitPayment(t, s, "lost-decide", from, to, 10, &res)
	s.Run(240 * time.Second)

	if dropped == 0 {
		t.Fatal("no decide was dropped; test is vacuous")
	}
	if res == nil {
		t.Fatal("no outcome after decide loss healed")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if fromBal, _ := s.BalanceOnShard(from); fromBal != 90 {
		t.Fatalf("from = %d, want 90", fromBal)
	}
	// Locks must be gone on the shard that missed the first decide.
	store := s.ShardCommittees[payerShard].Replicas[0].Store()
	if _, locked := store.Get("L_c_" + from); locked {
		t.Fatal("payer lock stuck after recovery")
	}
}

func TestSafetyPreservedWhenPayerShardStalls(t *testing.T) {
	// Crash beyond the payer shard's fault bound: the transaction cannot
	// complete (2PC blocks on a dead participant), but safety holds — no
	// partial state, and the payee shard's staged credit is never applied.
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	payerShard := s.ShardOfKey(from)
	nodes := s.Topology.ShardNodes[payerShard]
	for _, n := range nodes[len(nodes)-2:] { // f+1 = 2 crashes: beyond bound
		s.Net.Endpoint(n).SetDown(true)
	}

	var res *txn.Result
	submitPayment(t, s, "stalled", from, to, 10, &res)
	s.Run(120 * time.Second)

	if res != nil && res.Committed {
		t.Fatal("payment committed despite a stalled participant shard")
	}
	// Neither balance may have changed.
	if toBal, _ := s.BalanceOnShard(to); toBal != 100 {
		t.Fatalf("payee balance = %d, want 100 (no partial application)", toBal)
	}
}
