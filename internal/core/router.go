package core

import (
	"repro/internal/chaincode"
	"repro/internal/txn"
)

// This file wires the §6.4 usability extensions into a deployment: the
// automatically transformed benchmark chaincodes (shardlib.AutoShard) and
// a client router with their decomposition rules, so applications submit
// logical transactions and never see prepare/commit/abort or the
// reference committee.

// Names of the automatically transformed benchmark chaincodes installed
// on every shard (alongside the paper's hand-refactored ones).
const (
	AutoSmallBank = "smallbank-auto"
	AutoKVStore   = "kvstore-auto"
)

// NewRouter returns a §6.4 transparent client over client gateway i, with
// the decomposition rules for the two benchmark chaincodes registered.
// Single-shard invocations need SendReplies enabled in the system config.
func (s *System) NewRouter(i int) *txn.Router {
	r := txn.NewRouter(s.Client(i), s.ShardOfKey)
	r.Register(AutoSmallBank, "sendPayment", SmallBankPaymentSplit)
	r.Register(AutoKVStore, "update", KVStoreUpdateSplit)
	return r
}

// SmallBankPaymentSplit decomposes sendPayment(from, to, amount) into a
// debit (writeCheck) on the payer's shard and a credit (depositChecking)
// on the payee's shard — the Figure 4 decomposition, executed under our
// 2PC/2PL protocol instead of RapidChain's unsafe independent commits.
func SmallBankPaymentSplit(args []string) ([]txn.SubCall, error) {
	if len(args) != 3 {
		return nil, chaincode.ErrBadArgs
	}
	from, to, amount := args[0], args[1], args[2]
	return []txn.SubCall{
		{PlacementKey: from, Fn: "writeCheck", Args: []string{from, amount}},
		{PlacementKey: to, Fn: "depositChecking", Args: []string{to, amount}},
	}, nil
}

// KVStoreUpdateSplit decomposes update(k1, v1, k2, v2, ...) into one put
// per key, each on the key's owning shard.
func KVStoreUpdateSplit(args []string) ([]txn.SubCall, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, chaincode.ErrBadArgs
	}
	subs := make([]txn.SubCall, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		subs = append(subs, txn.SubCall{
			PlacementKey: args[i],
			Fn:           "put",
			Args:         []string{args[i], args[i+1]},
		})
	}
	return subs, nil
}
