package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/tee"
	"repro/internal/txn"
)

// liveCosts is the live runtime's default cost model: one nanosecond per
// enclave operation. Effectively free — the process pays real CPU time for
// its real work — but distinguishable from the zero value, which the
// committee builders treat as "use the paper's Table 2 defaults".
func liveCosts() tee.CostModel {
	return tee.CostModel{
		EnclaveSwitch: time.Nanosecond,
		Sign:          time.Nanosecond,
		Verify:        time.Nanosecond,
		SHA256:        time.Nanosecond,
		Append:        time.Nanosecond,
		Beacon:        time.Nanosecond,
		RandGen:       time.Nanosecond,
		Attest:        time.Nanosecond,
	}
}

// NodeAddr names one node of a live deployment: its deployment-wide node
// id, the TCP address its process listens on, and (optionally) the HTTP
// address its observability endpoints — /metrics, /snapshot, /trace,
// /debug/pprof — are served on.
type NodeAddr struct {
	ID          int    `json:"id"`
	Addr        string `json:"addr"`
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// ClusterConfig is the static JSON topology every process of a live
// deployment loads: which node ids form which committee, where each
// listens, and the protocol parameters they must agree on. The same file
// drives ahlnode (committee replicas), ahlctl (clients), and the
// in-process loopback cluster used by the live smoke test.
type ClusterConfig struct {
	// Seed derives all per-node key material and enclave randomness;
	// every process must use the same value.
	Seed int64 `json:"seed"`
	// Variant names the protocol configuration: hl, ahl, ahl+op1, ahl+,
	// or ahlr (default ahl+).
	Variant string `json:"variant,omitempty"`
	// Shards lists each shard committee's replicas.
	Shards [][]NodeAddr `json:"shards"`
	// Reference lists the reference committee (empty disables cross-shard
	// coordination).
	Reference []NodeAddr `json:"reference,omitempty"`
	// Clients lists client gateways (ahlctl instances); clients receive
	// replies and outcome notifications, so they need addresses too.
	Clients []NodeAddr `json:"clients,omitempty"`

	// BatchSize overrides the consensus batch size (0 = protocol default).
	BatchSize int `json:"batch_size,omitempty"`
	// BatchTimeoutMs overrides the leader batch timeout in milliseconds.
	BatchTimeoutMs int `json:"batch_timeout_ms,omitempty"`
	// ViewChangeTimeoutMs overrides the progress timeout in milliseconds.
	ViewChangeTimeoutMs int `json:"view_change_timeout_ms,omitempty"`
	// Table2Costs charges the paper's measured SGX operation latencies
	// (Table 2) to each node's virtual CPU, as the simulator does. Live
	// deployments default to free costs: the real process pays real CPU.
	Table2Costs bool `json:"table2_costs,omitempty"`

	// PipelineDepth caps how many proposals the leader pipelines ahead of
	// local execution: 0 selects the default (8), negative disables the
	// cap (consensus-window-only pipelining, the pre-pipelining behavior).
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// LegacyBatching restores the fixed batch-timeout cut. The default is
	// adaptive batching: cut immediately when the pipeline is idle, scale
	// the wait with pipeline occupancy under load.
	LegacyBatching bool `json:"legacy_batching,omitempty"`
	// BatchMinDelayUs floors the adaptive batch-cut delay, in
	// microseconds (0 = protocol default, 500µs).
	BatchMinDelayUs int `json:"batch_min_delay_us,omitempty"`
	// ExecWorkers sets per-replica parallel-execution workers: 0 sizes to
	// the machine (NumCPU, capped at 8), 1 or negative forces serial
	// execution.
	ExecWorkers int `json:"exec_workers,omitempty"`

	// DataDir roots each replica's durable state (WAL + snapshots) at
	// <DataDir>/node-<id>/; empty runs memory-only, with recovery relying
	// entirely on peer state sync. Per-process overrides (ahlnode -data)
	// replace this path before StartLiveNode.
	DataDir string `json:"data_dir,omitempty"`
	// Fsync selects the WAL durability/latency trade-off: "always" (fsync
	// every append; the default), "interval" (fsync at most every
	// FsyncIntervalMs), or "off" (fsync only at snapshots and shutdown).
	Fsync string `json:"fsync,omitempty"`
	// FsyncIntervalMs is the "interval" mode's fsync period (default 50).
	FsyncIntervalMs int `json:"fsync_interval_ms,omitempty"`
	// WALSegmentKB overrides the WAL segment roll size in KiB (default
	// 4096).
	WALSegmentKB int `json:"wal_segment_kb,omitempty"`
}

// LoadClusterConfig reads and validates a topology file.
func LoadClusterConfig(path string) (*ClusterConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var c ClusterConfig
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks structural invariants: at least one non-empty shard,
// unique node ids, and an address for every node.
func (c *ClusterConfig) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: no shards")
	}
	if _, err := c.PBFTVariant(); err != nil {
		return err
	}
	seen := make(map[int]string)
	check := func(kind string, nodes []NodeAddr) error {
		if len(nodes) == 0 {
			return fmt.Errorf("cluster: empty %s committee", kind)
		}
		for _, n := range nodes {
			if n.ID < 0 || n.ID > 0xFFFF {
				// 16-bit ids keep the live clients' partitioned tx-id
				// space (id | salt | counter) collision-free.
				return fmt.Errorf("cluster: node id %d outside [0, 65535]", n.ID)
			}
			if n.Addr == "" {
				return fmt.Errorf("cluster: node %d (%s) has no address", n.ID, kind)
			}
			if prev, dup := seen[n.ID]; dup {
				return fmt.Errorf("cluster: node id %d in both %s and %s", n.ID, prev, kind)
			}
			seen[n.ID] = kind
		}
		return nil
	}
	for s, nodes := range c.Shards {
		if err := check(fmt.Sprintf("shard %d", s), nodes); err != nil {
			return err
		}
	}
	if len(c.Reference) > 0 {
		if err := check("reference", c.Reference); err != nil {
			return err
		}
	}
	for _, n := range c.Clients {
		if err := check("clients", []NodeAddr{n}); err != nil {
			return err
		}
	}
	if _, err := c.fsyncMode(); err != nil {
		return err
	}
	if c.BatchMinDelayUs < 0 {
		return fmt.Errorf("cluster: batch_min_delay_us %d is negative", c.BatchMinDelayUs)
	}
	if c.ExecWorkers > 1024 {
		return fmt.Errorf("cluster: exec_workers %d unreasonably large (max 1024)", c.ExecWorkers)
	}
	return nil
}

// liveDefaultPipelineDepth is the in-flight proposal cap live clusters
// get when the topology does not set pipeline_depth. Deep enough to keep
// consensus busy across the commit round trip, shallow enough that a
// restarting replica replays at most this many blocks past its snapshot.
const liveDefaultPipelineDepth = 8

// pipelineDepth resolves the PipelineDepth knob (see its field comment).
func (c *ClusterConfig) pipelineDepth() uint64 {
	switch {
	case c.PipelineDepth > 0:
		return uint64(c.PipelineDepth)
	case c.PipelineDepth < 0:
		return 0
	default:
		return liveDefaultPipelineDepth
	}
}

// execWorkers resolves the ExecWorkers knob (see its field comment).
func (c *ClusterConfig) execWorkers() int {
	switch {
	case c.ExecWorkers > 0:
		return c.ExecWorkers
	case c.ExecWorkers < 0:
		return 1
	default:
		n := runtime.NumCPU()
		if n > 8 {
			n = 8
		}
		return n
	}
}

// fsyncMode parses the Fsync field.
func (c *ClusterConfig) fsyncMode() (storage.FsyncMode, error) {
	switch c.Fsync {
	case "", "always":
		return storage.FsyncAlways, nil
	case "interval":
		return storage.FsyncInterval, nil
	case "off":
		return storage.FsyncOff, nil
	default:
		return "", fmt.Errorf("cluster: unknown fsync mode %q (want always|interval|off)", c.Fsync)
	}
}

// NodeDataDir returns node id's durable-state directory, or "" when the
// deployment runs memory-only.
func (c *ClusterConfig) NodeDataDir(id simnet.NodeID) string {
	if c.DataDir == "" {
		return ""
	}
	return filepath.Join(c.DataDir, fmt.Sprintf("node-%d", id))
}

// PBFTVariant parses the Variant field.
func (c *ClusterConfig) PBFTVariant() (pbft.Variant, error) {
	switch c.Variant {
	case "", "ahl+":
		return pbft.VariantAHLPlus, nil
	case "hl":
		return pbft.VariantHL, nil
	case "ahl":
		return pbft.VariantAHL, nil
	case "ahl+op1":
		return pbft.VariantAHLOpt1, nil
	case "ahlr":
		return pbft.VariantAHLR, nil
	default:
		return 0, fmt.Errorf("cluster: unknown variant %q (want hl|ahl|ahl+op1|ahl+|ahlr)", c.Variant)
	}
}

func ids(nodes []NodeAddr) []simnet.NodeID {
	out := make([]simnet.NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = simnet.NodeID(n.ID)
	}
	return out
}

// Topology derives the transaction-layer topology (committee membership
// and fault tolerances) every manager and client shares.
func (c *ClusterConfig) Topology() txn.Topology {
	v, _ := c.PBFTVariant()
	t := txn.Topology{
		ShardNodes: make([][]simnet.NodeID, len(c.Shards)),
		ShardF:     make([]int, len(c.Shards)),
	}
	for s, nodes := range c.Shards {
		t.ShardNodes[s] = ids(nodes)
		t.ShardF[s] = v.Committee(t.ShardNodes[s]).F
	}
	if len(c.Reference) > 0 {
		t.RefNodes = ids(c.Reference)
		t.RefF = v.Committee(t.RefNodes).F
	}
	return t
}

// PeerAddrs maps every node id in the topology to its address — the
// routing table handed to the TCP transport.
func (c *ClusterConfig) PeerAddrs() map[simnet.NodeID]string {
	out := make(map[simnet.NodeID]string)
	for _, nodes := range c.Shards {
		for _, n := range nodes {
			out[simnet.NodeID(n.ID)] = n.Addr
		}
	}
	for _, n := range c.Reference {
		out[simnet.NodeID(n.ID)] = n.Addr
	}
	for _, n := range c.Clients {
		out[simnet.NodeID(n.ID)] = n.Addr
	}
	return out
}

// Place locates a node id in the topology.
type Place struct {
	// Role is the node's job.
	Role Role
	// Shard is the shard committee index (RoleShardReplica only).
	Shard int
	// Index is the replica index within its committee.
	Index int
}

// Role classifies a topology node.
type Role int

// The live node roles.
const (
	RoleShardReplica Role = iota
	RoleRefReplica
	RoleClient
)

func (r Role) String() string {
	switch r {
	case RoleShardReplica:
		return "shard-replica"
	case RoleRefReplica:
		return "reference-replica"
	case RoleClient:
		return "client"
	default:
		return "role?"
	}
}

// MetricsAddr returns node id's configured observability address, or ""
// when the topology does not expose one for it.
func (c *ClusterConfig) MetricsAddr(id simnet.NodeID) string {
	for _, nodes := range c.Shards {
		for _, n := range nodes {
			if simnet.NodeID(n.ID) == id {
				return n.MetricsAddr
			}
		}
	}
	for _, n := range c.Reference {
		if simnet.NodeID(n.ID) == id {
			return n.MetricsAddr
		}
	}
	return ""
}

// ReplicaNodes returns every shard and reference replica of the topology
// in declaration order — the scrape set for cluster-wide aggregation.
func (c *ClusterConfig) ReplicaNodes() []NodeAddr {
	var out []NodeAddr
	for _, nodes := range c.Shards {
		out = append(out, nodes...)
	}
	out = append(out, c.Reference...)
	return out
}

// Place returns where node id sits in the topology.
func (c *ClusterConfig) Place(id simnet.NodeID) (Place, bool) {
	for s, nodes := range c.Shards {
		for i, n := range nodes {
			if simnet.NodeID(n.ID) == id {
				return Place{Role: RoleShardReplica, Shard: s, Index: i}, true
			}
		}
	}
	for i, n := range c.Reference {
		if simnet.NodeID(n.ID) == id {
			return Place{Role: RoleRefReplica, Index: i}, true
		}
	}
	for i, n := range c.Clients {
		if simnet.NodeID(n.ID) == id {
			return Place{Role: RoleClient, Index: i}, true
		}
	}
	return Place{}, false
}

// liveConfig translates the cluster topology into the deployment Config
// both runtimes build committees from (see ShardSpec/RefSpec).
func (c *ClusterConfig) liveConfig() Config {
	v, _ := c.PBFTVariant()
	cfg := Config{
		Seed:        c.Seed,
		Shards:      len(c.Shards),
		ShardSize:   len(c.Shards[0]),
		RefSize:     len(c.Reference),
		Variant:     v,
		Clients:     len(c.Clients),
		SendReplies: true, // live clients are closed-loop
	}
	if c.Table2Costs {
		cfg.Costs = tee.DefaultCosts()
	} else {
		cfg.Costs = liveCosts()
	}
	cfg.PipelineDepth = c.pipelineDepth()
	cfg.AdaptiveBatch = !c.LegacyBatching
	if c.BatchMinDelayUs > 0 {
		cfg.BatchMinDelay = time.Duration(c.BatchMinDelayUs) * time.Microsecond
	}
	cfg.ExecWorkers = c.execWorkers()
	cfg.Tune = func(o *pbft.Options) {
		if c.BatchSize > 0 {
			o.BatchSize = c.BatchSize
		}
		if c.BatchTimeoutMs > 0 {
			o.Timing.BatchTimeout = time.Duration(c.BatchTimeoutMs) * time.Millisecond
		}
		if c.ViewChangeTimeoutMs > 0 {
			o.Timing.ViewChangeTimeout = time.Duration(c.ViewChangeTimeoutMs) * time.Millisecond
		}
		if !c.Table2Costs {
			// The process pays real CPU for hashing and tag checks; do not
			// also charge the simulator's modelled verification time.
			o.ExecPerTx = 0
			o.RequestVerify = 0
		}
	}
	return cfg
}
