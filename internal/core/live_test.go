package core_test

import (
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/txn"
)

// liveCluster is an in-process deployment of real LiveNodes talking
// loopback TCP — the CI-friendly equivalent of one ahlnode process per
// replica plus an ahlctl client.
type liveCluster struct {
	t      *testing.T
	cfg    *core.ClusterConfig
	nodes  map[simnet.NodeID]*core.LiveNode
	trs    map[simnet.NodeID]*transport.TCP
	client *core.LiveClient
}

// startLiveCluster raises shards×per replicas, a reference committee of
// ref nodes, and one client, all over 127.0.0.1 TCP with OS-assigned
// ports. Optional tweaks adjust the config (e.g. a data_dir) before the
// nodes start.
func startLiveCluster(t *testing.T, shards, per, ref int, tweaks ...func(*core.ClusterConfig)) *liveCluster {
	t.Helper()
	cfg := &core.ClusterConfig{
		Seed:           7,
		Variant:        "ahl+",
		BatchTimeoutMs: 20,
	}
	listeners := make(map[simnet.NodeID]net.Listener)
	next := 0
	addNode := func() core.NodeAddr {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := next
		next++
		listeners[simnet.NodeID(id)] = ln
		return core.NodeAddr{ID: id, Addr: ln.Addr().String()}
	}
	for s := 0; s < shards; s++ {
		var committee []core.NodeAddr
		for i := 0; i < per; i++ {
			committee = append(committee, addNode())
		}
		cfg.Shards = append(cfg.Shards, committee)
	}
	for i := 0; i < ref; i++ {
		cfg.Reference = append(cfg.Reference, addNode())
	}
	clientAddr := addNode()
	cfg.Clients = []core.NodeAddr{clientAddr}
	for _, tweak := range tweaks {
		tweak(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	peers := cfg.PeerAddrs()
	cl := &liveCluster{
		t:     t,
		cfg:   cfg,
		nodes: make(map[simnet.NodeID]*core.LiveNode),
		trs:   make(map[simnet.NodeID]*transport.TCP),
	}
	newTransport := func(id simnet.NodeID, ln net.Listener) *transport.TCP {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Listener:    ln,
			Peers:       peers,
			BackoffBase: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	for id := range peers {
		if id == simnet.NodeID(clientAddr.ID) {
			continue
		}
		tr := newTransport(id, listeners[id])
		n, err := core.StartLiveNode(cfg, id, tr)
		if err != nil {
			t.Fatal(err)
		}
		cl.nodes[id] = n
		cl.trs[id] = tr
	}
	clientTr := newTransport(simnet.NodeID(clientAddr.ID), listeners[simnet.NodeID(clientAddr.ID)])
	c, err := core.StartLiveClient(cfg, simnet.NodeID(clientAddr.ID), clientTr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Stop()
		clientTr.Close()
		for _, n := range cl.nodes {
			n.Stop()
		}
		for _, tr := range cl.trs {
			tr.Close()
		}
	})
	cl.client = c
	return cl
}

// kill crash-stops a replica the way kill -9 does: storage file handles
// dropped without a final flush, TCP connections severed, no goodbye to
// peers.
func (cl *liveCluster) kill(id simnet.NodeID) {
	cl.t.Helper()
	n, ok := cl.nodes[id]
	if !ok {
		cl.t.Fatalf("kill: node %d not running", id)
	}
	n.Kill()
	cl.trs[id].Close()
	delete(cl.nodes, id)
	delete(cl.trs, id)
}

// restart brings a killed replica back on its original topology address,
// running the full boot-recovery path (snapshot + WAL replay + peer
// statesync).
func (cl *liveCluster) restart(id simnet.NodeID) *core.LiveNode {
	cl.t.Helper()
	if _, ok := cl.nodes[id]; ok {
		cl.t.Fatalf("restart: node %d still running", id)
	}
	addr := cl.cfg.PeerAddrs()[id]
	// The old listener was just closed; rebinding is immediate (Go
	// listeners set SO_REUSEADDR) but give the kernel a moment anyway.
	var ln net.Listener
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			cl.t.Fatalf("restart: rebind %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	tr, err := transport.NewTCP(transport.TCPConfig{
		Listener:    ln,
		Peers:       cl.cfg.PeerAddrs(),
		BackoffBase: 50 * time.Millisecond,
	})
	if err != nil {
		cl.t.Fatal(err)
	}
	n, err := core.StartLiveNode(cl.cfg, id, tr)
	if err != nil {
		tr.Close()
		cl.t.Fatalf("restart: node %d: %v", id, err)
	}
	cl.nodes[id] = n
	cl.trs[id] = tr
	return n
}

// settled checks that every running shard replica holds exactly the
// expected balances with no 2PL locks and no staged writes — the
// balance-conservation invariant. Returns the first violation, nil once
// the cluster has fully drained.
func (cl *liveCluster) settled(expected map[string]int64) error {
	shards := len(cl.cfg.Shards)
	for id, n := range cl.nodes {
		if n.Place.Role != core.RoleShardReplica {
			continue
		}
		shard := n.Place.Shard
		var errOut error
		ok := n.Do(func() {
			store := n.Replica.Store()
			if locks := store.Head().KeysWithPrefix("L_"); len(locks) > 0 {
				errOut = fmt.Errorf("node %d: %d locks held: %v", id, len(locks), locks)
				return
			}
			if staged := store.Head().KeysWithPrefix("S_"); len(staged) > 0 {
				errOut = fmt.Errorf("node %d: %d staged writes: %v", id, len(staged), staged)
				return
			}
			var total, wantTotal int64
			for acc, want := range expected {
				if core.ShardOfKey(acc, shards) != shard {
					continue
				}
				raw, found := store.Get("c_" + acc)
				if !found {
					errOut = fmt.Errorf("node %d: account %s missing", id, acc)
					return
				}
				got, err := strconv.ParseInt(string(raw), 10, 64)
				if err != nil {
					errOut = fmt.Errorf("node %d: account %s: %v", id, acc, err)
					return
				}
				if got != want {
					errOut = fmt.Errorf("node %d: account %s = %d, want %d", id, acc, got, want)
					return
				}
				total += got
				wantTotal += want
			}
			if total != wantTotal {
				errOut = fmt.Errorf("node %d shard %d: total %d, want %d", id, shard, total, wantTotal)
			}
		})
		if !ok {
			return fmt.Errorf("node %d stopped", id)
		}
		if errOut != nil {
			return errOut
		}
	}
	return nil
}

// waitSettled polls settled until it passes or the deadline expires.
func (cl *liveCluster) waitSettled(expected map[string]int64, timeout time.Duration) {
	cl.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		err := cl.settled(expected)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			cl.t.Fatalf("cluster never settled: %v", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// seedAccounts creates each account with the given starting balance via
// single-shard transactions, acknowledged by f+1 replies.
func (cl *liveCluster) seedAccounts(accs []string, balance int64) {
	cl.t.Helper()
	done := make(chan txn.Result, len(accs))
	for _, acc := range accs {
		tx := chain.Tx{
			ID:        cl.client.NextTxID(),
			Chaincode: "smallbank-sharded",
			Fn:        "create",
			Args:      []string{acc, strconv.FormatInt(balance, 10), "0"},
		}
		if err := cl.client.SubmitSingle(cl.client.ShardOf(acc), tx, func(r txn.Result) { done <- r }); err != nil {
			cl.t.Fatal(err)
		}
	}
	for range accs {
		select {
		case r := <-done:
			if !r.Committed {
				cl.t.Fatalf("seed tx %s failed", r.TxID)
			}
		case <-time.After(60 * time.Second):
			cl.t.Fatal("seeding timed out")
		}
	}
}

// runTransfers submits the cross-shard transfers concurrently and waits
// for every one to commit.
func (cl *liveCluster) runTransfers(dtxs []txn.DTx, timeout time.Duration) {
	cl.t.Helper()
	done := make(chan txn.Result, len(dtxs))
	for _, d := range dtxs {
		if err := cl.client.SubmitDistributed(d, func(r txn.Result) { done <- r }); err != nil {
			cl.t.Fatal(err)
		}
	}
	for range dtxs {
		select {
		case r := <-done:
			if !r.Committed {
				cl.t.Fatalf("cross-shard transfer %s aborted", r.TxID)
			}
		case <-time.After(timeout):
			cl.t.Fatal("cross-shard transfers timed out")
		}
	}
}

// accountsOnShard returns n distinct account names owned by shard.
func accountsOnShard(shards, shard, n int, taken map[string]bool) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		acc := fmt.Sprintf("live%d", i)
		if taken[acc] || core.ShardOfKey(acc, shards) != shard {
			continue
		}
		taken[acc] = true
		out = append(out, acc)
	}
	return out
}

// TestLiveLoopbackClusterSmallBank is the live-cluster smoke test: a
// 2-shard (4 replicas each) + reference-committee deployment of real
// ahlnode-equivalent processes over loopback TCP runs smallbank with
// cross-shard transfers; every transfer must commit and the money supply
// must be conserved exactly on every replica of every shard.
func TestLiveLoopbackClusterSmallBank(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster (seconds of wall clock) skipped in -short")
	}
	const (
		shards, per, ref = 2, 4, 4
		perShardAccs     = 4
		initialBalance   = int64(1000)
	)
	cl := startLiveCluster(t, shards, per, ref)

	taken := make(map[string]bool)
	accs0 := accountsOnShard(shards, 0, perShardAccs, taken)
	accs1 := accountsOnShard(shards, 1, perShardAccs, taken)
	all := append(append([]string(nil), accs0...), accs1...)

	// Seed: single-shard create transactions, acknowledged by f+1 replies.
	cl.seedAccounts(all, initialBalance)

	// Cross-shard transfers between disjoint account pairs (no lock
	// contention, so every one must commit), two waves to reuse accounts.
	expected := make(map[string]int64, len(all))
	for _, acc := range all {
		expected[acc] = initialBalance
	}
	var txSeq int
	transfer := func(from, to string, amount int64) txn.DTx {
		txSeq++
		d := core.PaymentDTx(shards, fmt.Sprintf("live-t%d", txSeq), from, to, amount)
		expected[from] -= amount
		expected[to] += amount
		return d
	}
	// While the transfer waves run, conservation sweeps hammer the query
	// path concurrently: every height-consistent cut must account for the
	// full seeded supply even with 2PC transfers in flight (staged residues
	// resolved against the cut), and the sweeps never touch 2PL or the
	// consensus loop — sub-queries are answered on transport goroutines
	// from immutable sealed views.
	seededSupply := int64(len(all)) * initialBalance
	stopSweeps := make(chan struct{})
	sweepErr := make(chan error, 1)
	var sweeps int64
	go func() {
		defer close(sweepErr)
		for {
			select {
			case <-stopSweeps:
				return
			default:
			}
			res, err := cl.client.Conservation(5, 60*time.Second)
			if err != nil {
				sweepErr <- fmt.Errorf("conservation sweep under load: %v", err)
				return
			}
			sweeps++
			if res.Total != seededSupply {
				sweepErr <- fmt.Errorf("conservation sweep under load: total %d (checking %d + savings %d + applied residue %d) != supply %d at pins %v",
					res.Total, res.Checking, res.Savings, res.Applied, seededSupply, res.Pins)
				return
			}
		}
	}()

	for wave := 0; wave < 2; wave++ {
		var dtxs []txn.DTx
		for i := 0; i < perShardAccs; i++ {
			// shard0 -> shard1 and shard1 -> shard0, disjoint pairs.
			if i%2 == wave%2 {
				dtxs = append(dtxs, transfer(accs0[i], accs1[i], int64(10+i)))
			} else {
				dtxs = append(dtxs, transfer(accs1[i], accs0[i], int64(20+i)))
			}
		}
		cl.runTransfers(dtxs, 120*time.Second)
	}

	close(stopSweeps)
	if err, failed := <-sweepErr; failed {
		t.Fatal(err)
	}
	if sweeps == 0 {
		t.Fatal("no conservation sweep completed during the transfer waves")
	}
	t.Logf("%d conservation sweeps held Total == %d under concurrent cross-shard load", sweeps, seededSupply)

	// Global conservation first: transfers only move money, so the
	// expected balances must still sum to the seeded supply.
	var supply int64
	for _, acc := range all {
		supply += expected[acc]
	}
	if want := int64(len(all)) * initialBalance; supply != want {
		t.Fatalf("expected-balance bookkeeping broken: %d != %d", supply, want)
	}

	// Conservation: once phase 2 has drained everywhere, every replica of
	// every shard must hold the exact expected balances, no 2PL locks and
	// no staged writes. Replicas lag the client-visible outcome (the
	// decide still has to execute), so poll with a deadline.
	cl.waitSettled(expected, 90*time.Second)

	// Drained cluster: the conservation query must see every account, the
	// exact supply, and no staged residues at all.
	res, err := cl.client.Conservation(5, 60*time.Second)
	if err != nil {
		t.Fatalf("conservation after settle: %v", err)
	}
	if res.Total != seededSupply || res.Accounts != uint64(len(all)) {
		t.Fatalf("conservation after settle: total %d accounts %d, want %d / %d",
			res.Total, res.Accounts, seededSupply, len(all))
	}
	if len(res.Residues) != 0 || res.Applied != 0 {
		t.Fatalf("conservation after settle: %d residues (applied %d) on a drained cluster",
			len(res.Residues), res.Applied)
	}

	// Streaming scan: merged rows arrive in global key order across both
	// shards, paged (PageLimit 3 forces several chunks per shard), and the
	// per-account values match the settled expectations.
	got := make(map[string]int64, len(all))
	var keys []string
	scanDone := make(chan error, 1)
	q := &query.Query{
		Spec:      query.Spec{Kind: query.KindScan, Start: "c_", End: chain.PrefixEnd("c_"), Proj: query.ProjKV},
		PageLimit: 3,
		OnRow: func(r query.Row) {
			keys = append(keys, r.K)
			if v, err := strconv.ParseInt(string(r.V), 10, 64); err == nil {
				got[r.K] = v
			}
		},
		OnDone: func(_ *query.Result, err error) { scanDone <- err },
	}
	if err := cl.client.Query(q); err != nil {
		t.Fatalf("scan query: %v", err)
	}
	select {
	case err := <-scanDone:
		if err != nil {
			t.Fatalf("scan query: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("scan query timed out")
	}
	if len(keys) != len(all) {
		t.Fatalf("scan returned %d rows, want %d (%v)", len(keys), len(all), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan rows out of order: %q before %q", keys[i-1], keys[i])
		}
	}
	for acc, want := range expected {
		if got["c_"+acc] != want {
			t.Fatalf("scan row c_%s = %d, want %d", acc, got["c_"+acc], want)
		}
	}
}

func TestClusterConfigValidate(t *testing.T) {
	good := &core.ClusterConfig{
		Shards: [][]core.NodeAddr{
			{{ID: 0, Addr: "h:1"}, {ID: 1, Addr: "h:2"}, {ID: 2, Addr: "h:3"}},
		},
		Reference: []core.NodeAddr{{ID: 3, Addr: "h:4"}, {ID: 4, Addr: "h:5"}, {ID: 5, Addr: "h:6"}},
		Clients:   []core.NodeAddr{{ID: 6, Addr: "h:7"}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := good.Topology()
	if len(topo.ShardNodes) != 1 || topo.ShardF[0] != 1 || topo.RefF != 1 {
		t.Fatalf("topology: %+v", topo)
	}
	if place, ok := good.Place(4); !ok || place.Role != core.RoleRefReplica || place.Index != 1 {
		t.Fatalf("place of 4: %+v", place)
	}
	if _, ok := good.Place(99); ok {
		t.Fatal("place of unknown id")
	}

	dup := *good
	dup.Clients = []core.NodeAddr{{ID: 0, Addr: "h:8"}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate id accepted")
	}
	noAddr := &core.ClusterConfig{Shards: [][]core.NodeAddr{{{ID: 0}}}}
	if err := noAddr.Validate(); err == nil {
		t.Fatal("missing address accepted")
	}
	badVariant := *good
	badVariant.Variant = "pow"
	if err := badVariant.Validate(); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
