package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/txn"
)

// The §6.2 scale-out deployment: several parallel reference committee
// instances, each coordinating the slice of transactions hashed to it.

func testGroupedSystem(t *testing.T, groups int) *System {
	t.Helper()
	s := NewSystem(Config{
		Seed:        1,
		Shards:      3,
		ShardSize:   4,
		RefSize:     4,
		RefGroups:   groups,
		Variant:     pbft.VariantAHLPlus,
		Clients:     1,
		SendReplies: true,
		Costs:       tee.FreeCosts(),
	})
	s.Seed(24, 100)
	return s
}

func TestRefGroupsCommitAcrossGroups(t *testing.T) {
	s := testGroupedSystem(t, 3)

	// Submit enough payments that every group coordinates at least one.
	const payments = 12
	results := make(map[string]bool)
	groupsUsed := make(map[int]bool)
	i := 0
	for n := 0; n < payments; n++ {
		from, to := Account(i%24), Account((i+7)%24)
		i++
		if s.ShardOfKey(from) == s.ShardOfKey(to) || from == to {
			n--
			continue
		}
		txid := fmt.Sprintf("gpay%d", n)
		groupsUsed[s.Topology.GroupForTx(txid)] = true
		d := s.PaymentDTx(txid, from, to, 1)
		s.Engine.Schedule(0, func() {
			s.Client(0).SubmitDistributed(d, func(r txn.Result) {
				results[r.TxID] = r.Committed
			})
		})
	}
	s.Run(90 * time.Second)

	if len(groupsUsed) < 2 {
		t.Fatalf("hash routing used only %d group(s); want >=2", len(groupsUsed))
	}
	if len(results) != payments {
		t.Fatalf("only %d/%d payments resolved", len(results), payments)
	}
	committed := 0
	for _, ok := range results {
		if ok {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no payment committed")
	}
}

func TestRefGroupsOnlyCoordinatingGroupRecordsTx(t *testing.T) {
	s := testGroupedSystem(t, 2)
	from, to := findCrossShardPair(s, 24)

	txid := "grouped-tx"
	var done bool
	d := s.PaymentDTx(txid, from, to, 10)
	s.Engine.Schedule(0, func() {
		s.Client(0).SubmitDistributed(d, func(r txn.Result) { done = r.Committed })
	})
	s.Run(60 * time.Second)
	if !done {
		t.Fatal("payment did not commit")
	}

	owner := s.Topology.GroupForTx(txid)
	for g, bc := range s.RefCommittees {
		_, recorded := bc.Replicas[0].Store().Get("T_" + txid)
		if g == owner && !recorded {
			t.Fatalf("coordinating group %d has no record of %s", g, txid)
		}
		if g != owner && recorded {
			t.Fatalf("non-coordinating group %d recorded %s", g, txid)
		}
	}
}

func TestRefGroupsMoneyConserved(t *testing.T) {
	s := testGroupedSystem(t, 2)
	const accounts = 24

	var initial int64
	for i := 0; i < accounts; i++ {
		b, ok := s.BalanceOnShard(Account(i))
		if !ok {
			t.Fatalf("account %d not seeded", i)
		}
		initial += b
	}

	resolved := 0
	for n := 0; n < 10; n++ {
		from, to := Account((3*n)%accounts), Account((3*n+5)%accounts)
		if from == to || s.ShardOfKey(from) == s.ShardOfKey(to) {
			continue
		}
		d := s.PaymentDTx("conserve"+strconv.Itoa(n), from, to, int64(5+n))
		s.Engine.Schedule(0, func() {
			s.Client(0).SubmitDistributed(d, func(txn.Result) { resolved++ })
		})
	}
	s.Run(90 * time.Second)

	if resolved == 0 {
		t.Fatal("no payment resolved")
	}
	var final int64
	for i := 0; i < accounts; i++ {
		b, _ := s.BalanceOnShard(Account(i))
		final += b
	}
	if final != initial {
		t.Fatalf("money not conserved: initial %d, final %d", initial, final)
	}
}

func TestRefGroupsTopologyHelpers(t *testing.T) {
	s := testGroupedSystem(t, 3)
	topo := s.Topology

	if got := topo.NumRefGroups(); got != 3 {
		t.Fatalf("NumRefGroups = %d, want 3", got)
	}
	// Group membership is disjoint and covers all reference nodes.
	seen := make(map[simnet.NodeID]int)
	for g := 0; g < 3; g++ {
		nodes, f := topo.RefGroup(g)
		if len(nodes) != 4 {
			t.Fatalf("group %d has %d nodes, want 4", g, len(nodes))
		}
		if f != 1 {
			t.Fatalf("group %d f = %d, want 1 (AHL rule on n=4)", g, f)
		}
		for _, n := range nodes {
			if prev, dup := seen[n]; dup {
				t.Fatalf("node %d in groups %d and %d", n, prev, g)
			}
			seen[n] = g
		}
	}
	// GroupForTx is deterministic and lands in range.
	for i := 0; i < 50; i++ {
		txid := "probe" + strconv.Itoa(i)
		g1, g2 := topo.GroupForTx(txid), topo.GroupForTx(txid)
		if g1 != g2 || g1 < 0 || g1 >= 3 {
			t.Fatalf("GroupForTx(%s) = %d / %d", txid, g1, g2)
		}
	}
}
