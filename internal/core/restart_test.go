package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/txn"
)

// TestLiveClusterReplicaRestartRecovery is the crash-restart story on the
// live cluster: a shard replica is crash-stopped (kill -9 equivalent:
// storage handles dropped without a flush, TCP cut) mid-deployment, the
// cluster keeps committing cross-shard transfers through the outage
// (4-replica committee tolerates one fault), and the restarted process
// must recover from its snapshot+WAL, state-sync the tail it missed from
// peers, rejoin consensus, and converge to the exact same balances as
// everyone else — with zero 2PL-lock or staged-write residue.
func TestLiveClusterReplicaRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster (seconds of wall clock) skipped in -short")
	}
	const (
		shards, per, ref = 2, 4, 4
		perShardAccs     = 4
		initialBalance   = int64(1000)
	)
	dataDir := t.TempDir()
	cl := startLiveCluster(t, shards, per, ref, func(c *core.ClusterConfig) {
		c.DataDir = dataDir
		// Small segments so a short run still exercises segment rolling
		// and checkpoint truncation, not just a single open segment.
		c.WALSegmentKB = 16
	})

	taken := make(map[string]bool)
	accs0 := accountsOnShard(shards, 0, perShardAccs, taken)
	accs1 := accountsOnShard(shards, 1, perShardAccs, taken)
	all := append(append([]string(nil), accs0...), accs1...)
	cl.seedAccounts(all, initialBalance)

	expected := make(map[string]int64, len(all))
	for _, acc := range all {
		expected[acc] = initialBalance
	}
	var txSeq int
	transfer := func(from, to string, amount int64) txn.DTx {
		txSeq++
		d := core.PaymentDTx(shards, fmt.Sprintf("restart-t%d", txSeq), from, to, amount)
		expected[from] -= amount
		expected[to] += amount
		return d
	}
	wave := func(n int) []txn.DTx {
		var dtxs []txn.DTx
		for i := 0; i < perShardAccs; i++ {
			// Disjoint pairs, alternating direction per wave: no lock
			// contention, so every transfer must commit.
			if i%2 == n%2 {
				dtxs = append(dtxs, transfer(accs0[i], accs1[i], int64(10+n+i)))
			} else {
				dtxs = append(dtxs, transfer(accs1[i], accs0[i], int64(20+n+i)))
			}
		}
		return dtxs
	}

	// Wave 0 on the healthy cluster, so the victim has decided blocks and
	// 2PC stage records in its journal before the crash.
	cl.runTransfers(wave(0), 120*time.Second)

	// Crash-stop a non-leader shard-0 replica. Its journal must exist on
	// disk — otherwise the test is silently running the memory path.
	victim := simnet.NodeID(cl.cfg.Shards[0][per-1].ID)
	cl.kill(victim)
	walDir := filepath.Join(cl.cfg.NodeDataDir(victim), "wal")
	if segs, err := os.ReadDir(walDir); err != nil || len(segs) == 0 {
		t.Fatalf("victim %d has no WAL segments in %s (err=%v)", victim, walDir, err)
	}

	// Wave 1 while the victim is down: f=1 is tolerated, the committee
	// keeps deciding without it.
	cl.runTransfers(wave(1), 120*time.Second)

	// Restart on the original address: boot recovery replays the journal
	// synchronously, so the pre-crash executions are visible immediately.
	n := cl.restart(victim)
	if exec := n.Executed(); exec == 0 {
		t.Fatalf("restarted node %d replayed nothing from its journal", victim)
	}

	// Wave 2 with the recovered replica back in the committee.
	cl.runTransfers(wave(2), 120*time.Second)

	// Conservation bookkeeping sanity, then the full per-replica check —
	// including the restarted node, which must converge via statesync.
	var supply int64
	for _, acc := range all {
		supply += expected[acc]
	}
	if want := int64(len(all)) * initialBalance; supply != want {
		t.Fatalf("expected-balance bookkeeping broken: %d != %d", supply, want)
	}
	cl.waitSettled(expected, 120*time.Second)
}
