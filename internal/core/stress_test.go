package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/tee"
	"repro/internal/txn"
)

// TestRandomizedPaymentsConserveMoney is the system-level serializability/
// atomicity property test: many concurrent cross-shard payments between
// overlapping random account pairs, with contention-induced aborts, must
// leave total money unchanged, all replicas of each shard agreeing, and no
// locks held at quiescence.
func TestRandomizedPaymentsConserveMoney(t *testing.T) {
	const (
		accounts = 24
		balance  = 100
		payments = 60
	)
	s := NewSystem(Config{
		Seed: 99, Shards: 3, ShardSize: 4, RefSize: 4,
		Variant: pbft.VariantAHLPlus, Clients: 3,
		SendReplies: true, Costs: tee.FreeCosts(),
	})
	s.Seed(accounts, balance)

	rng := rand.New(rand.NewSource(77))
	committed, aborted := 0, 0
	s.Engine.Schedule(0, func() {
		for i := 0; i < payments; i++ {
			a := rng.Intn(accounts)
			b := rng.Intn(accounts)
			for b == a || s.ShardOfKey(Account(a)) == s.ShardOfKey(Account(b)) {
				b = rng.Intn(accounts)
			}
			amt := int64(rng.Intn(40) + 1)
			d := s.PaymentDTx(fmt.Sprintf("stress-%d", i), Account(a), Account(b), amt)
			// Stagger submissions slightly to interleave 2PC rounds.
			delay := time.Duration(rng.Intn(2000)) * time.Millisecond
			i := i
			s.Engine.Schedule(delay, func() {
				s.Client(i%3).SubmitDistributed(d, func(r txn.Result) {
					if r.Committed {
						committed++
					} else {
						aborted++
					}
				})
			})
		}
	})
	s.Run(180 * time.Second)

	if committed+aborted != payments {
		t.Fatalf("outcomes: %d committed + %d aborted != %d submitted",
			committed, aborted, payments)
	}
	if committed == 0 {
		t.Fatal("nothing committed — protocol broken or all contended")
	}

	// Conservation across all shards, and every replica of a shard agrees
	// with replica 0 on every account balance.
	total := int64(0)
	for i := 0; i < accounts; i++ {
		acc := Account(i)
		shard := s.ShardOfKey(acc)
		bal, ok := s.BalanceOnShard(acc)
		if !ok {
			t.Fatalf("%s missing", acc)
		}
		if bal < 0 {
			t.Fatalf("%s has negative balance %d", acc, bal)
		}
		total += bal
		for ri, r := range s.ShardCommittees[shard].Replicas {
			v, ok := r.Store().Get("c_" + acc)
			if !ok || string(v) != fmt.Sprint(bal) {
				t.Fatalf("shard %d replica %d disagrees on %s: %q vs %d",
					shard, ri, acc, v, bal)
			}
		}
	}
	if total != accounts*balance {
		t.Fatalf("money not conserved: total %d, want %d", total, accounts*balance)
	}

	// No locks or staged writes survive quiescence.
	for i := 0; i < accounts; i++ {
		acc := Account(i)
		store := s.ShardCommittees[s.ShardOfKey(acc)].Replicas[0].Store()
		if _, held := store.Get("L_c_" + acc); held {
			t.Fatalf("lock on %s still held at quiescence", acc)
		}
	}
	t.Logf("stress: %d committed, %d aborted (contention)", committed, aborted)
}
