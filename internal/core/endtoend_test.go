package core

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/tee"
	"repro/internal/txn"
)

// TestEndToEndGCPDeployment combines the moving parts in one deployment:
// the 8-region GCP latency matrix, two parallel reference committee
// instances, the §6.4 router over an auto-sharded chaincode, and a
// recurring §5.3 epoch in the background. It asserts commits, money
// conservation, and replica convergence.
func TestEndToEndGCPDeployment(t *testing.T) {
	s := NewSystem(Config{
		Seed:        17,
		Shards:      3,
		ShardSize:   4,
		RefSize:     4,
		RefGroups:   2,
		Variant:     pbft.VariantAHLPlus,
		Env:         Environment{GCPRegions: 8},
		Clients:     2,
		SendReplies: true,
		Costs:       tee.FreeCosts(),
	})
	const accounts = 30
	s.Seed(accounts, 1000)

	var initial int64
	for i := 0; i < accounts; i++ {
		b, ok := s.BalanceOnShard(Account(i))
		if !ok {
			t.Fatalf("account %d missing", i)
		}
		initial += b
	}

	router := s.NewRouter(0)

	committed, resolved := 0, 0
	n := 0
	for i := 0; i < accounts && n < 10; i++ {
		from, to := Account(i), Account((i+13)%accounts)
		if from == to {
			continue
		}
		n++
		// Mix router submissions (which pick fast path vs 2PC themselves)
		// with raw distributed submissions on the second client.
		if n%2 == 0 {
			args := []string{from, to, "5"}
			s.Engine.Schedule(time.Duration(n)*2*time.Second, func() {
				router.Submit(AutoSmallBank, "sendPayment", args, func(r txn.Result) {
					resolved++
					if r.Committed {
						committed++
					}
				})
			})
		} else if s.ShardOfKey(from) != s.ShardOfKey(to) {
			d := s.PaymentDTx("e2e"+strconv.Itoa(n), from, to, 5)
			s.Engine.Schedule(time.Duration(n)*2*time.Second, func() {
				s.Client(1).SubmitDistributed(d, func(r txn.Result) {
					resolved++
					if r.Committed {
						committed++
					}
				})
			})
		}
	}

	s.EnableEpochs(EpochConfig{
		Interval: 90 * time.Second,
		Reshard:  DefaultReshardConfig(ReshardSwapBatch),
	})

	s.Run(200 * time.Second)

	if resolved == 0 || committed == 0 {
		t.Fatalf("resolved=%d committed=%d on GCP deployment", resolved, committed)
	}
	if s.Epoch() < 1 {
		t.Fatal("no epoch fired")
	}

	var final int64
	for i := 0; i < accounts; i++ {
		b, _ := s.BalanceOnShard(Account(i))
		final += b
	}
	if final != initial {
		t.Fatalf("money not conserved: %d -> %d", initial, final)
	}
	assertSystemConverged(t, s, nil)
}
