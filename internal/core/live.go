package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/chain"
	"repro/internal/consensus/pbft"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wire"
)

// The live runtime runs one topology node as a standalone process (or an
// in-process goroutine cluster, as the loopback smoke test does): the same
// replica/manager/client stack the simulator assembles, driven by a
// real-time event loop instead of a virtual clock, with remote traffic
// bridged onto a transport.Transport through the local network's gateway.
//
// The discrete-event engine stays the node's single-threaded scheduler —
// protocol code keeps its no-locks, deterministic-callback model — but the
// loop advances the virtual clock in lockstep with the wall clock: run
// everything due, sleep until the next timer or inbound frame, repeat.
// Virtual costs (CPU service time, enclave operations) default to ~zero in
// live mode because the process pays real CPU for its real work; set
// ClusterConfig.Table2Costs to re-inject the paper's measured SGX
// latencies into a live cluster.

// liveInboxLen bounds buffered inbound frames per node. A full inbox
// drops (the protocols retransmit), mirroring the bounded queues real
// nodes have.
const liveInboxLen = 8192

// liveLoop is the shared real-time driver under LiveNode and LiveClient.
type liveLoop struct {
	engine *sim.Engine
	net    *simnet.Network

	inbox chan simnet.Message
	ops   chan func()
	stop  chan struct{}
	done  chan struct{}

	// preverify, when set, runs on the transport goroutine for each
	// inbound message before it enters the inbox — attestation checks
	// happen concurrently with the engine's ordering work (see
	// pbft.Replica.Preverifier). Set before the handler is registered;
	// never written afterwards.
	preverify func(*simnet.Message)

	// intercept, when set, runs on the transport goroutine before
	// preverification; returning true consumes the message, and it never
	// reaches the engine loop. Query sub-queries are answered here: they
	// read only immutable height-pinned store views, so serving them off
	// the engine goroutine never contends with consensus or execution.
	// Set before the handler is registered; never written afterwards.
	intercept func(simnet.Message) bool

	stopOnce  sync.Once
	droppedIn atomic.Uint64
}

func newLiveLoop(engine *sim.Engine, net *simnet.Network) *liveLoop {
	return &liveLoop{
		engine: engine,
		net:    net,
		inbox:  make(chan simnet.Message, liveInboxLen),
		ops:    make(chan func(), 64),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// handler returns the transport.Handler feeding this loop's inbox. It is
// called from transport goroutines; the message crosses into the engine
// goroutine through the channel. The TCP transport runs one receive
// goroutine per peer connection, so pre-verification naturally fans out
// across peers while the engine goroutine keeps ordering.
func (l *liveLoop) handler() transport.Handler {
	return func(m simnet.Message) {
		if l.intercept != nil && l.intercept(m) {
			return
		}
		if l.preverify != nil {
			l.preverify(&m)
		}
		select {
		case l.inbox <- m:
		default:
			l.droppedIn.Add(1)
		}
	}
}

// Do runs fn on the engine goroutine and waits for it — the only safe way
// to touch the node's protocol state (stores, counters, submissions) from
// outside. It returns false if the loop has stopped.
func (l *liveLoop) Do(fn func()) bool {
	ran := make(chan struct{})
	select {
	case l.ops <- func() { fn(); close(ran) }:
	case <-l.done:
		return false
	}
	select {
	case <-ran:
		return true
	case <-l.done:
		return false
	}
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (l *liveLoop) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

func (l *liveLoop) start() { go l.run() }

func (l *liveLoop) run() {
	defer close(l.done)
	wallStart := time.Now() //ahl:nondeterministic the live loop IS the wall-clock bridge: it maps real elapsed time onto the virtual clock
	base := l.engine.Now()
	timer := time.NewTimer(time.Hour) //ahl:nondeterministic live-mode sleep between virtual-clock advances; never used under simulation
	defer timer.Stop()
	for {
		// Advance the virtual clock to "now" and run everything due.
		target := base.Add(time.Since(wallStart)) //ahl:nondeterministic wall-clock bridge: elapsed real time drives the virtual target
		if target <= base {
			target = base + 1 // Run treats 0 as "until idle"
		}
		l.engine.Run(target)

		// Sleep until the earliest queued event (timers, scheduled CPU
		// completions), an inbound frame, or an external op.
		wait := time.Hour
		if next, ok := l.engine.PeekNext(); ok {
			wait = next.Sub(l.engine.Now())
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)

		select {
		case <-l.stop:
			return
		case m := <-l.inbox:
			l.net.Inject(m)
			l.drainInbox()
		case fn := <-l.ops:
			fn()
		case <-timer.C:
		}
	}
}

func (l *liveLoop) drainInbox() {
	for {
		select {
		case m := <-l.inbox:
			l.net.Inject(m)
		default:
			return
		}
	}
}

// keySigner derives node id's deployment-wide key pair on scheme. Every
// process calls this for every node it must verify, with the shared
// topology seed, so all processes agree on all key material without any
// distribution step. (SimScheme tags are MAC-like: knowing a peer's secret
// is inherent to verifying it. A PKI-backed scheme would register public
// keys here instead; the paper's threat model is exercised in the
// simulator, not re-proved by the live transport.)
func keySigner(scheme blockcrypto.Scheme, seed int64, id simnet.NodeID) blockcrypto.Signer {
	src := rand.NewSource(seed*1_000_003 + int64(id)*7_919 + 17)
	return scheme.NewSigner(pbft.KeyOf(id), rand.New(src))
}

// teeSeedFor derives a node's enclave-platform randomness seed.
func teeSeedFor(seed int64, id simnet.NodeID) int64 {
	return seed*6_700_417 + int64(id)*104_729 + 29
}

// buildLiveStack creates the engine/network pair every live node runs on
// and bridges its outbound traffic to tr. The caller registers the
// loop's inbound handler on tr once the stack is fully assembled (a
// replica's pre-verifier must be installed on the loop first, or the
// first frames would race its installation).
func buildLiveStack(c *ClusterConfig, id simnet.NodeID, tr transport.Transport) (*sim.Engine, *simnet.Network, *liveLoop) {
	engine := sim.NewEngine(teeSeedFor(c.Seed, id) + 1)
	net := simnet.New(engine, simnet.LAN())
	loop := newLiveLoop(engine, net)
	net.SetGateway(func(m simnet.Message) { tr.Send(m) })
	return engine, net, loop
}

// LiveNode is one committee replica running standalone: the ahlnode
// process body, also raised in-process by the loopback smoke test.
type LiveNode struct {
	ID      simnet.NodeID
	Place   Place
	Replica *pbft.Replica
	// Manager is non-nil when the topology has a reference committee.
	Manager *txn.Manager

	loop    *liveLoop
	backend storage.Backend
	obsHub  *obs.Hub
	fatal   chan error
}

// openBackend opens node id's durable storage per the cluster config
// (nil backend when the deployment runs memory-only), registering its
// WAL/snapshot instrumentation on reg.
func openBackend(c *ClusterConfig, id simnet.NodeID, reg *obs.Registry) (storage.Backend, error) {
	dir := c.NodeDataDir(id)
	if dir == "" {
		return nil, nil
	}
	mode, err := c.fsyncMode()
	if err != nil {
		return nil, err
	}
	opts := storage.DiskOptions{Fsync: mode, Logf: log.Printf, Metrics: storage.NewMetrics(reg)}
	if c.FsyncIntervalMs > 0 {
		opts.Interval = time.Duration(c.FsyncIntervalMs) * time.Millisecond
	}
	if c.WALSegmentKB > 0 {
		opts.SegmentBytes = int64(c.WALSegmentKB) << 10
	}
	return storage.OpenDisk(dir, opts)
}

// recover replays the node's durable state into a freshly built stack:
// newest valid snapshot first (replica state + the manager's 2PC stage
// blob), then the WAL tail in order — block records through the replica,
// stage records through the manager — and finally the managers' recovery
// completion. Runs before the event loop starts; the sends it triggers
// (votes, prepares) queue in the engine and go out once the loop runs.
func (n *LiveNode) recover() error {
	snap, tail, err := n.backend.Recover()
	if err != nil {
		return fmt.Errorf("live: node %d: recover: %w", n.ID, err)
	}
	if snap != nil {
		stage, err := n.Replica.RestoreDurableSnapshot(snap)
		if err != nil {
			return fmt.Errorf("live: node %d: restore snapshot seq %d: %w", n.ID, snap.Seq, err)
		}
		if n.Manager != nil {
			if err := n.Manager.ApplyStageBlob(stage); err != nil {
				return fmt.Errorf("live: node %d: stage blob: %w", n.ID, err)
			}
		}
	}
	var blocks, stages int
	for _, rec := range tail {
		switch rec.Kind {
		case storage.KindBlock:
			if err := n.Replica.ReplayDecided(rec.Seq, rec.Block); err != nil {
				return fmt.Errorf("live: node %d: %w", n.ID, err)
			}
			blocks++
		case storage.KindStage:
			if n.Manager == nil {
				continue
			}
			if err := n.Manager.ApplyStage(rec.Stage); err != nil {
				return fmt.Errorf("live: node %d: %w", n.ID, err)
			}
			stages++
		}
	}
	if n.Manager != nil {
		n.Manager.FinishRecovery()
	}
	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
	}
	log.Printf("live: node %d: recovered snapshot seq %d, WAL tail %d blocks + %d stage records",
		n.ID, snapSeq, blocks, stages)
	// Whatever the committee decided while this process was down comes
	// through the normal state-sync/replay protocol once traffic flows.
	n.Replica.ResyncWithPeers()
	return nil
}

// StartLiveNode assembles and starts the replica for node id of the
// cluster topology. The caller owns tr and closes it after Stop.
func StartLiveNode(c *ClusterConfig, id simnet.NodeID, tr transport.Transport) (*LiveNode, error) {
	place, ok := c.Place(id)
	if !ok {
		return nil, fmt.Errorf("live: node %d not in topology", id)
	}
	if place.Role == RoleClient {
		return nil, fmt.Errorf("live: node %d is a client; use StartLiveClient", id)
	}
	cfg := c.liveConfig()
	topo := c.Topology()
	// One wall-clocked hub per process: the only sanctioned wall-time
	// source in the protocol stack is the obs clock seam (see obs.WallClock).
	hub := obs.NewHub(obs.WallClock(), obs.Options{})
	backend, err := openBackend(c, id, hub.Reg)
	if err != nil {
		return nil, err
	}
	_, net, loop := buildLiveStack(c, id, tr)
	hub.Reg.CounterFunc("node_inbox_dropped_total", loop.droppedIn.Load)

	// Deployment-wide key material: the committee this replica verifies
	// is its own, so derive every committee member's keys (and our own
	// signer among them).
	scheme := blockcrypto.NewSimScheme()
	var committee []simnet.NodeID
	var spec pbft.CommitteeSpec
	switch place.Role {
	case RoleShardReplica:
		committee = topo.ShardNodes[place.Shard]
		spec = ShardSpec(cfg, committee, nil)
	case RoleRefReplica:
		committee = topo.RefNodes
		spec = RefSpec(cfg, topo.RefNodes, nil)
	}
	var signer blockcrypto.Signer
	for _, member := range committee {
		s := keySigner(scheme, c.Seed, member)
		if member == id {
			signer = s
		}
	}

	spec.Durable = backend
	spec.Obs = hub
	replica, _ := pbft.BuildReplica(net, scheme, spec, place.Index, signer, teeSeedFor(c.Seed, id))
	n := &LiveNode{ID: id, Place: place, Replica: replica, loop: loop,
		backend: backend, obsHub: hub, fatal: make(chan error, 1)}
	replica.OnStorageFatal(n.noteFatal)
	if len(c.Reference) > 0 {
		if place.Role == RoleShardReplica {
			n.Manager = txn.NewManager(txn.RoleShard, place.Shard, topo, replica)
		} else {
			n.Manager = txn.NewManager(txn.RoleReference, 0, topo, replica)
		}
		if backend != nil {
			n.Manager.EnableDurability(backend)
		}
	}
	// Shard replicas answer query sub-queries directly on the transport
	// goroutine: Answer reads only through sealed immutable views and the
	// commit-record index (both safe from any goroutine), so the read path
	// touches neither the engine loop, consensus, nor the 2PL tables.
	if place.Role == RoleShardReplica {
		store := replica.Store()
		loop.intercept = func(m simnet.Message) bool {
			if m.Type != query.MsgQueryRequest {
				return false
			}
			if req, ok := m.Payload.(*query.Request); ok {
				ch := query.Answer(store, req)
				tr.Send(simnet.Message{From: id, To: m.From, Class: simnet.ClassRequest,
					Type: query.MsgQueryChunk, Payload: ch,
					Size: wire.PayloadSize(query.MsgQueryChunk, ch)})
			}
			return true
		}
	}
	// Attestation checks move off the engine goroutine: frames arriving
	// from here on are pre-verified on the transport's per-connection
	// goroutines and buffered in the inbox until the loop runs.
	loop.preverify = replica.Preverifier()
	tr.RegisterHandler(id, loop.handler())
	if backend != nil {
		if err := n.recover(); err != nil {
			backend.Close()
			return nil, err
		}
	}
	loop.start()
	return n, nil
}

// noteFatal records a durability failure and wakes Fatal() watchers. It
// runs on the engine goroutine, so it must not call Stop (which waits for
// that goroutine); the process supervisor reacts instead.
func (n *LiveNode) noteFatal(err error) {
	select {
	case n.fatal <- err:
	default:
	}
}

// Fatal delivers unrecoverable storage errors: the replica has stopped
// executing (it will not run what the WAL cannot hold) and the process
// should exit non-zero.
func (n *LiveNode) Fatal() <-chan error { return n.fatal }

// Do runs fn on the node's engine goroutine (see liveLoop.Do).
func (n *LiveNode) Do(fn func()) bool { return n.loop.Do(fn) }

// Obs returns the node's observability hub (never nil for a live node).
// Its registry and tracer are safe to read from any goroutine, which is
// how the metrics HTTP handler serves snapshots without touching the
// engine loop.
func (n *LiveNode) Obs() *obs.Hub { return n.obsHub }

// Executed returns the replica's executed-transaction count.
func (n *LiveNode) Executed() int {
	var v int
	n.Do(func() { v = n.Replica.Executed() })
	return v
}

// DroppedInbound reports frames shed by a full inbox.
func (n *LiveNode) DroppedInbound() uint64 { return n.loop.droppedIn.Load() }

// Stop halts the node's event loop and cleanly flushes and closes its
// storage backend. The transport is the caller's to close (several
// in-process nodes may share one).
func (n *LiveNode) Stop() error {
	n.loop.Stop()
	if n.backend == nil {
		return nil
	}
	if err := n.backend.Sync(); err != nil {
		n.backend.Close()
		return fmt.Errorf("live: node %d: flush storage: %w", n.ID, err)
	}
	if err := n.backend.Close(); err != nil {
		return fmt.Errorf("live: node %d: close storage: %w", n.ID, err)
	}
	return nil
}

// Kill halts the node like a crash: the event loop stops but the backend
// is abandoned without a final flush, leaving on disk exactly what the
// configured fsync policy already made durable. In-process restart tests
// use it; a real kill -9 is the stronger version the CI smoke script
// applies.
func (n *LiveNode) Kill() {
	n.loop.Stop()
	if d, ok := n.backend.(*storage.Disk); ok {
		d.Abandon()
	}
}

// LiveClient is a client gateway running against a live cluster: the
// ahlctl process body. Completion callbacks run on the client's engine
// goroutine and must return quickly (typically a channel send).
type LiveClient struct {
	ID     simnet.NodeID
	Shards int

	client  *txn.Client
	gateway *query.Gateway
	targets []simnet.NodeID // first replica of each shard, the scatter set
	loop    *liveLoop
	nextID  atomic.Uint64
	salt    uint64 // random per-process counter start, fixed at birth
}

// StartLiveClient assembles and starts the client gateway for node id.
func StartLiveClient(c *ClusterConfig, id simnet.NodeID, tr transport.Transport) (*LiveClient, error) {
	place, ok := c.Place(id)
	if !ok {
		return nil, fmt.Errorf("live: node %d not in topology", id)
	}
	if place.Role != RoleClient {
		return nil, fmt.Errorf("live: node %d is a %s, not a client", id, place.Role)
	}
	topo := c.Topology()
	_, net, loop := buildLiveStack(c, id, tr)
	tr.RegisterHandler(id, loop.handler())
	lc := &LiveClient{
		ID:     id,
		Shards: len(c.Shards),
		client: txn.NewClient(net, id, topo),
		loop:   loop,
	}
	// The scatter-gather query gateway rides the same endpoint as the
	// transaction client (it wraps the handler chain and passes all
	// non-query traffic through).
	lc.gateway = query.NewGateway(lc.client.Endpoint())
	for _, shard := range topo.ShardNodes {
		lc.targets = append(lc.targets, shard[0])
	}
	// Client-unique id space: id(16b) | counter(48b), with the counter
	// started at a crypto/rand point in its space. Committees deduplicate
	// on tx id forever, so a restarted client that reused a previous
	// run's ids would see stale cached replies instead of fresh
	// executions; two runs collide only if one's random start lands
	// inside the range another consumed (~n/2^48 for an n-transaction
	// run), rather than depending on clock granularity. (Topology ids are
	// capped at 16 bits by Validate, so id never collides with the
	// counter field.)
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("live: client %d: tx id salt: %w", id, err)
	}
	lc.salt = binary.LittleEndian.Uint64(seed[:]) & (1<<48 - 1)
	lc.nextID.Store(uint64(id)<<48 | lc.salt)
	loop.start()
	return lc, nil
}

// NextTxID returns a process-unique transaction id in this client's id
// space. If the counter ever carried out of its 48 bits it would alias
// another client's space, so that is a loud failure, not a silent wrap —
// unreachable in practice (the counter starts uniformly below 2^48, so a
// run would need ~2^47 transactions for even coin-flip odds).
func (c *LiveClient) NextTxID() uint64 {
	v := c.nextID.Add(1)
	if v>>48 != uint64(c.ID) {
		panic(fmt.Sprintf("live: client %d exhausted its tx id space", c.ID))
	}
	return v
}

// RunTag returns a short per-process tag clients weave into distributed
// transaction ids: the coordinator's terminal states are permanent, so a
// restarted driver must never reuse a txid string either. The tag is the
// run's random counter start, so it is stable for the process lifetime.
func (c *LiveClient) RunTag() string {
	return fmt.Sprintf("%d.%x", c.ID, c.salt)
}

// SubmitDistributed submits a cross-shard transaction (Figure 5 flow).
func (c *LiveClient) SubmitDistributed(d txn.DTx, done func(txn.Result)) error {
	if !c.loop.Do(func() { c.client.SubmitDistributed(d, done) }) {
		return fmt.Errorf("live: client %d stopped", c.ID)
	}
	return nil
}

// SubmitSingle submits a single-shard transaction and completes after
// f+1 matching replies.
func (c *LiveClient) SubmitSingle(shard int, tx chain.Tx, done func(txn.Result)) error {
	if !c.loop.Do(func() { c.client.SubmitSingle(shard, tx, done) }) {
		return fmt.Errorf("live: client %d stopped", c.ID)
	}
	return nil
}

// ShardOf maps an application key to its owning shard under this
// topology.
func (c *LiveClient) ShardOf(key string) int { return ShardOfKey(key, c.Shards) }

// QueryTargets returns the replica each shard's sub-queries are served
// by (the first replica of each shard committee).
func (c *LiveClient) QueryTargets() []simnet.NodeID {
	return append([]simnet.NodeID(nil), c.targets...)
}

// Query launches a scatter-gather read against the cluster. The query's
// callbacks run on the client's engine goroutine and must return quickly
// (typically a channel send). The returned error covers validation only;
// outcomes arrive through q.OnDone.
func (c *LiveClient) Query(q *query.Query) error {
	if len(q.Targets) == 0 {
		q.Targets = c.targets
	}
	errc := make(chan error, 1)
	if !c.loop.Do(func() { errc <- c.gateway.Start(q) }) {
		return fmt.Errorf("live: client %d stopped", c.ID)
	}
	return <-errc
}

// Conservation runs the height-consistent balance sweep (committed
// checking + savings totals at one pinned cut, plus resolved in-flight
// 2PC residues) and blocks for the result. timeout is split evenly
// across attempts: each attempt is a fresh sweep, so retries cover both
// checkpoint-overtook-the-cut failures and sub-query messages lost over
// TCP (the query protocol itself sends each page exactly once — the
// deadline/retry policy lives here, with the caller).
func (c *LiveClient) Conservation(attempts int, timeout time.Duration) (*query.ConservationResult, error) {
	type outcome struct {
		res *query.ConservationResult
		err error
	}
	if attempts < 1 {
		attempts = 1
	}
	// Buffered for every attempt: an abandoned sweep that completes late
	// must never block the engine goroutine on its channel send.
	out := make(chan outcome, attempts)
	var lastErr error
	for i := 0; i < attempts; i++ {
		ok := c.loop.Do(func() {
			query.Conservation(c.gateway, c.targets, 1, func(res *query.ConservationResult, err error) {
				out <- outcome{res, err}
			})
		})
		if !ok {
			return nil, fmt.Errorf("live: client %d stopped", c.ID)
		}
		select {
		case o := <-out:
			if o.err == nil || (!errors.Is(o.err, chain.ErrHeightPruned) && !errors.Is(o.err, query.ErrNoPin)) {
				return o.res, o.err
			}
			lastErr = o.err // retryable: re-pin on the next attempt
		case <-time.After(timeout / time.Duration(attempts)): //ahl:nondeterministic client-facing deadline on a live query; never used under simulation
			lastErr = fmt.Errorf("live: client %d: conservation attempt timed out after %v",
				c.ID, timeout/time.Duration(attempts))
		}
	}
	return nil, fmt.Errorf("live: client %d: conservation query failed after %d attempts: %w",
		c.ID, attempts, lastErr)
}

// Stop halts the client's event loop.
func (c *LiveClient) Stop() { c.loop.Stop() }
