package core

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/simnet"
	"repro/internal/tee"
	"repro/internal/txn"
)

// Replica-convergence safety checks: after any run — including chaotic
// ones with message loss and Byzantine members — the honest replicas of
// each committee must hold prefix-identical ledgers (safety holds
// regardless of the network, §4.1).

// assertCommitteeConverged verifies that every pair of live replicas in
// bc agrees on every block up to their common height, and that each chain
// verifies.
func assertCommitteeConverged(t *testing.T, label string, bc *pbft.BuiltCommittee, skip map[simnet.NodeID]bool) {
	t.Helper()
	var ref *pbft.Replica
	for _, r := range bc.Replicas {
		if skip[r.Endpoint().ID()] {
			continue
		}
		if err := r.Ledger().VerifyChain(); err != nil {
			t.Fatalf("%s: replica %d chain broken: %v", label, r.Endpoint().ID(), err)
		}
		if ref == nil {
			ref = r
			continue
		}
		a, b := ref.Ledger(), r.Ledger()
		common := a.Height()
		if b.Height() < common {
			common = b.Height()
		}
		for h := uint64(0); h < common; h++ {
			if a.Block(h).Digest() != b.Block(h).Digest() {
				t.Fatalf("%s: replicas %d and %d diverge at height %d",
					label, ref.Endpoint().ID(), r.Endpoint().ID(), h)
			}
		}
	}
	if ref == nil {
		t.Fatalf("%s: no live replica to compare", label)
	}
}

func assertSystemConverged(t *testing.T, s *System, skip map[simnet.NodeID]bool) {
	t.Helper()
	for i, bc := range s.ShardCommittees {
		assertCommitteeConverged(t, "shard "+strconv.Itoa(i), bc, skip)
	}
	for g, bc := range s.RefCommittees {
		assertCommitteeConverged(t, "refgroup "+strconv.Itoa(g), bc, skip)
	}
}

func TestReplicasConvergeOnCleanRun(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(30, 1000)

	done := 0
	n := 0
	for i := 0; i < 30 && n < 8; i++ {
		from, to := Account(i), Account((i+11)%30)
		if from == to || s.ShardOfKey(from) == s.ShardOfKey(to) {
			continue
		}
		n++
		d := s.PaymentDTx("conv"+strconv.Itoa(i), from, to, 3)
		s.Engine.Schedule(time.Duration(n)*time.Second, func() {
			s.Client(0).SubmitDistributed(d, func(txn.Result) { done++ })
		})
	}
	s.Run(90 * time.Second)

	if done == 0 {
		t.Fatal("no payment resolved")
	}
	assertSystemConverged(t, s, nil)
}

func TestReplicasConvergeUnderLossAndEquivocation(t *testing.T) {
	behaviors := make(map[simnet.NodeID]pbft.Behavior)
	cfg := Config{
		Seed: 9, Shards: 3, ShardSize: 4, RefSize: 4,
		Variant: pbft.VariantAHLPlus, Clients: 1, SendReplies: true,
		Costs: tee.FreeCosts(), Behaviors: behaviors,
	}
	// One equivocator per shard committee (within f=1).
	byzantine := make(map[simnet.NodeID]bool)
	for sh := 0; sh < 3; sh++ {
		id := simnet.NodeID(sh*4 + 3)
		behaviors[id] = pbft.BehaviorEquivocate
		byzantine[id] = true
	}
	s := NewSystem(cfg)
	s.Seed(30, 1000)

	// ~2% deterministic message loss on top.
	count := 0
	s.Net.SetFilter(func(m simnet.Message) (time.Duration, bool) {
		count++
		return 0, count%47 != 0
	})

	done := 0
	n := 0
	for i := 0; i < 30 && n < 6; i++ {
		from, to := Account(i), Account((i+7)%30)
		if from == to || s.ShardOfKey(from) == s.ShardOfKey(to) {
			continue
		}
		n++
		d := s.PaymentDTx("chaos"+strconv.Itoa(i), from, to, 2)
		s.Engine.Schedule(time.Duration(n)*2*time.Second, func() {
			s.Client(0).SubmitDistributed(d, func(txn.Result) { done++ })
		})
	}
	s.Run(180 * time.Second)

	if done == 0 {
		t.Fatal("no payment resolved under chaos")
	}
	// Equivocating replicas may hold whatever they like; the honest ones
	// must agree.
	assertSystemConverged(t, s, byzantine)

	// Cross-replica state digests: honest replicas that executed the same
	// number of write-sets hold byte-identical state.
	for i, bc := range s.ShardCommittees {
		var prev *pbft.Replica
		for _, r := range bc.Replicas {
			if byzantine[r.Endpoint().ID()] {
				continue
			}
			if prev != nil && prev.Store().Version() == r.Store().Version() {
				if prev.Store().Digest() != r.Store().Digest() {
					t.Fatalf("shard %d: same version, different state digest", i)
				}
			}
			prev = r
		}
	}
}
