package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/txn"
)

// findSameShardPair returns two seeded accounts living on the same shard.
func findSameShardPair(s *System, accounts int) (string, string) {
	for i := 0; i < accounts; i++ {
		for j := 0; j < accounts; j++ {
			a, b := Account(i), Account(j)
			if i != j && s.ShardOfKey(a) == s.ShardOfKey(b) {
				return a, b
			}
		}
	}
	panic("no same-shard pair")
}

func TestRouterCrossShardPayment(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)
	r := s.NewRouter(0)

	var res *txn.Result
	s.Engine.Schedule(0, func() {
		if _, err := r.Submit(AutoSmallBank, "sendPayment",
			[]string{from, to, "30"}, func(rr txn.Result) { res = &rr }); err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered")
	}
	if !res.Committed {
		t.Fatal("payment aborted, want commit")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 70 {
		t.Fatalf("%s = %d, want 70", from, bal)
	}
	if bal, _ := s.BalanceOnShard(to); bal != 130 {
		t.Fatalf("%s = %d, want 130", to, bal)
	}
}

func TestRouterSingleShardFastPath(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findSameShardPair(s, 20)
	r := s.NewRouter(0)

	var res *txn.Result
	var txid string
	s.Engine.Schedule(0, func() {
		id, err := r.Submit(AutoSmallBank, "sendPayment",
			[]string{from, to, "25"}, func(rr txn.Result) { res = &rr })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
		txid = id
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered")
	}
	if !res.Committed {
		t.Fatal("payment failed, want success")
	}
	if res.TxID != txid {
		t.Fatalf("result txid %q, want %q", res.TxID, txid)
	}
	if bal, _ := s.BalanceOnShard(from); bal != 75 {
		t.Fatalf("%s = %d, want 75", from, bal)
	}
	if bal, _ := s.BalanceOnShard(to); bal != 125 {
		t.Fatalf("%s = %d, want 125", to, bal)
	}
	// The fast path must not involve the reference committee.
	if _, recorded := s.RefCommittee.Replicas[0].Store().Get("T_" + txid); recorded {
		t.Fatal("single-shard tx was coordinated by the reference committee")
	}
}

func TestRouterInsufficientFundsAborts(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)
	r := s.NewRouter(0)

	var res *txn.Result
	s.Engine.Schedule(0, func() {
		r.Submit(AutoSmallBank, "sendPayment",
			[]string{from, to, "5000"}, func(rr txn.Result) { res = &rr })
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered")
	}
	if res.Committed {
		t.Fatal("overdraft committed")
	}
	if bal, _ := s.BalanceOnShard(from); bal != 100 {
		t.Fatalf("%s = %d, want 100 (unchanged)", from, bal)
	}
	// Locks must be released by the abort.
	for _, acc := range []string{from, to} {
		store := s.ShardCommittees[s.ShardOfKey(acc)].Replicas[0].Store()
		if _, locked := store.Get("L_c_" + acc); locked {
			t.Fatalf("lock on %s not released after abort", acc)
		}
	}
}

func TestRouterKVUpdateWithBatching(t *testing.T) {
	s := testSystem(t, 2, 4, 4, 1)
	s.Seed(4, 100)
	r := s.NewRouter(0)

	// Choose three keys such that at least two share a shard (with 2
	// shards and 3 keys that's guaranteed), forcing a prepareBatch op.
	keys := []string{"rk1", "rk2", "rk3"}
	args := make([]string, 0, 6)
	shardSeen := make(map[int]int)
	for i, k := range keys {
		args = append(args, k, "v"+strconv.Itoa(i))
		shardSeen[s.ShardOfKey(k)]++
	}
	batched := false
	for _, cnt := range shardSeen {
		if cnt > 1 {
			batched = true
		}
	}
	if !batched {
		t.Fatal("test setup: expected at least one shard with 2+ keys")
	}

	var res *txn.Result
	s.Engine.Schedule(0, func() {
		r.Submit(AutoKVStore, "update", args, func(rr txn.Result) { res = &rr })
	})
	s.Run(60 * time.Second)

	if res == nil {
		t.Fatal("no outcome delivered")
	}
	if !res.Committed {
		t.Fatal("update aborted, want commit")
	}
	for i, k := range keys {
		store := s.ShardCommittees[s.ShardOfKey(k)].Replicas[0].Store()
		v, ok := store.Get(k)
		if !ok || string(v) != "v"+strconv.Itoa(i) {
			t.Fatalf("%s = %q,%v; want v%d", k, v, ok, i)
		}
		if _, locked := store.Get("L_" + k); locked {
			t.Fatalf("lock on %s not released", k)
		}
	}
}

func TestRouterUnregisteredFnDefaultsToFirstArgPlacement(t *testing.T) {
	s := testSystem(t, 3, 4, 4, 1)
	s.Seed(8, 100)
	r := s.NewRouter(0)

	acc := Account(3)
	var res *txn.Result
	s.Engine.Schedule(0, func() {
		r.Submit(AutoSmallBank, "depositChecking",
			[]string{acc, "11"}, func(rr txn.Result) { res = &rr })
	})
	s.Run(60 * time.Second)

	if res == nil || !res.Committed {
		t.Fatalf("deposit did not commit: %+v", res)
	}
	if bal, _ := s.BalanceOnShard(acc); bal != 111 {
		t.Fatalf("%s = %d, want 111", acc, bal)
	}
}

func TestRouterRejectsMalformedInvocations(t *testing.T) {
	s := testSystem(t, 2, 4, 4, 1)
	r := s.NewRouter(0)

	if _, err := r.Submit(AutoSmallBank, "sendPayment", []string{"only", "two"}, nil); err == nil {
		t.Fatal("malformed sendPayment accepted")
	}
	if _, err := r.Submit(AutoSmallBank, "noArgsNoRule", nil, nil); err == nil {
		t.Fatal("invocation without placement argument accepted")
	}
	if _, err := r.Submit(AutoKVStore, "update", []string{"odd"}, nil); err == nil {
		t.Fatal("odd-length update accepted")
	}
}

func TestRouterTxIDsDistinct(t *testing.T) {
	s := testSystem(t, 2, 4, 4, 2)
	r0, r1 := s.NewRouter(0), s.NewRouter(1)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		for _, r := range []*txn.Router{r0, r1} {
			id, err := r.Submit(AutoSmallBank, "query", []string{Account(i)}, func(txn.Result) {})
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("duplicate txid %q", id)
			}
			if !strings.HasPrefix(id, "r") {
				t.Fatalf("unexpected txid format %q", id)
			}
			seen[id] = true
		}
	}
}
