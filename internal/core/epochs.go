package core

import (
	"encoding/binary"
	"time"

	"repro/internal/blockcrypto"
	"repro/internal/sharding"
)

// Recurring epochs (§5.3): "Shard reconfiguration occurs at every epoch.
// At the end of epoch e-1, nodes obtain the random seed rnd following the
// protocol described in Section 5.1. They compute the new committee
// assignment for epoch e based on rnd."
//
// EnableEpochs drives that loop on a running system: at every epoch
// boundary the beacon protocol runs (modelled as its synchrony bound Δ of
// lock-in delay — the enclave output itself is a fresh uniform value, here
// derived deterministically from the system seed and the epoch number,
// which is exactly how the simulated RandomnessBeacon enclave produces
// it), and the resulting rnd seeds the batched node transition.

// EpochConfig configures recurring shard reconfiguration.
type EpochConfig struct {
	// Interval is the epoch length; every Interval a new assignment takes
	// effect.
	Interval time.Duration
	// Reshard tunes each transition (batch size, state-transfer costs).
	Reshard ReshardConfig
	// OnEpoch, if set, is called when each epoch's rnd locks in.
	OnEpoch func(epoch uint64, rnd uint64)
}

// EnableEpochs starts the recurring §5.3 epoch loop. It must be called
// before Run; the first reconfiguration fires one Interval from now.
func (s *System) EnableEpochs(cfg EpochConfig) {
	if cfg.Interval <= 0 {
		panic("core: epoch interval must be positive")
	}
	delta := sharding.DeltaFor(s.Net.Latency())
	var tick func()
	tick = func() {
		s.epoch++
		epoch := s.epoch
		// The beacon needs Δ to lock in the epoch's randomness (§5.1);
		// only then do nodes learn the new assignment and start moving.
		s.Engine.Schedule(delta, func() {
			rnd := s.EpochRnd(epoch)
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(epoch, rnd)
			}
			s.reshard(epoch, rnd, cfg.Reshard)
		})
		s.Engine.Schedule(cfg.Interval, tick)
	}
	s.Engine.Schedule(cfg.Interval, tick)
}

// Epoch returns the current epoch number (0 until the first transition).
func (s *System) Epoch() uint64 { return s.epoch }

// EpochRnd derives epoch e's beacon value: the lowest enclave output is a
// fresh uniform value, reproduced deterministically from the system seed.
func (s *System) EpochRnd(e uint64) uint64 {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(s.Config.Seed))
	binary.BigEndian.PutUint64(buf[8:], e)
	d := blockcrypto.Hash([]byte("epoch-beacon:"), buf[:])
	return binary.BigEndian.Uint64(d[:8])
}
