package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/consensus/pbft"
	"repro/internal/obs"
	"repro/internal/tee"
	"repro/internal/txn"
)

// runInstrumentedSim drives a fixed cross-shard workload through an
// obs-instrumented simulation and returns the exported trace and
// registry snapshot as bytes.
func runInstrumentedSim(t *testing.T, workers int) (trace, snap []byte) {
	t.Helper()
	s := NewSystem(Config{
		Seed:        7,
		Shards:      3,
		ShardSize:   4,
		RefSize:     4,
		Variant:     pbft.VariantAHLPlus,
		Clients:     2,
		SendReplies: true,
		Costs:       tee.FreeCosts(),
		ExecWorkers: workers,
		Obs:         true,
	})
	s.Seed(20, 100)
	from, to := findCrossShardPair(s, 20)

	done := 0
	s.Engine.Schedule(0, func() {
		for i := 0; i < 6; i++ {
			d := s.PaymentDTx(fmt.Sprintf("trace%d", i), from, to, 1)
			s.Client(i%2).SubmitDistributed(d, func(r txn.Result) { done++ })
		}
	})
	s.Run(120 * time.Second)
	if done != 6 {
		t.Fatalf("only %d/6 transactions completed", done)
	}

	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, s.Obs.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s.Obs.Reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), raw
}

// TestSimTraceDeterministic pins the obs clock seam: with the engine
// clock injected, the exported trace must be byte-identical across runs
// AND across executor worker counts (trace events are recorded on the
// engine goroutine only, so parallel execution cannot reorder them).
// Registry snapshots must be byte-identical across runs of the same
// configuration; across worker counts only the parexec routing counters
// may differ, so they are compared per-configuration.
func TestSimTraceDeterministic(t *testing.T) {
	trace1a, snap1a := runInstrumentedSim(t, 1)
	trace1b, snap1b := runInstrumentedSim(t, 1)
	trace4a, snap4a := runInstrumentedSim(t, 4)
	trace4b, snap4b := runInstrumentedSim(t, 4)

	if len(trace1a) == 0 {
		t.Fatal("instrumented sim recorded no trace events")
	}
	if !bytes.Equal(trace1a, trace1b) {
		t.Error("trace differs across identical runs (workers=1)")
	}
	if !bytes.Equal(trace4a, trace4b) {
		t.Error("trace differs across identical runs (workers=4)")
	}
	if !bytes.Equal(trace1a, trace4a) {
		t.Error("trace differs across worker counts (1 vs 4)")
	}
	if !bytes.Equal(snap1a, snap1b) {
		t.Error("snapshot differs across identical runs (workers=1)")
	}
	if !bytes.Equal(snap4a, snap4b) {
		t.Error("snapshot differs across identical runs (workers=4)")
	}

	// The trace must contain consensus and 2PC lifecycle stages, and the
	// span pairing table must derive at least one complete span from it.
	events, err := obs.ParseTraceJSON(bytes.NewReader(trace1a))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[obs.Stage]bool)
	for _, e := range events {
		seen[e.Stage] = true
	}
	for _, st := range []obs.Stage{
		obs.StagePrePrepare, obs.StageCommitQuorum,
		obs.StageExecStart, obs.StageExecEnd,
		obs.Stage2PCBegin, obs.Stage2PCPrepare,
		obs.Stage2PCVote, obs.Stage2PCDone,
	} {
		if !seen[st] {
			t.Errorf("trace missing stage %s", st)
		}
	}
	spans := obs.SpanDurations(events)
	if len(spans["consensus"]) == 0 {
		t.Error("no consensus spans derived from the trace")
	}
	if len(spans["2pc"]) == 0 {
		t.Error("no 2pc spans derived from the trace")
	}
}

// TestSimSnapshotHasStageHistograms asserts the instrumented sim
// populates the headline metrics the scrape table renders.
func TestSimSnapshotHasStageHistograms(t *testing.T) {
	_, raw := runInstrumentedSim(t, 1)
	snap, err := obs.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"pbft_commit_latency", "pbft_exec_latency",
		"txn_2pc_prepare_wait", "txn_2pc_lock_hold", "txn_2pc_commit_latency",
	} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("histogram %s empty in instrumented sim", name)
		}
	}
	if snap.Counters["txn_2pc_commit_total"] == 0 {
		t.Error("txn_2pc_commit_total = 0, want > 0")
	}
	if snap.Gauges["pbft_pipeline_occupancy_peak"] == 0 {
		t.Error("pbft_pipeline_occupancy_peak = 0, want > 0")
	}
}
