package obs

import (
	"math/bits"
	"sync"
)

// Stage labels one point in a transaction's lifecycle. Per-sequence
// stages (PrePrepare..ExecEnd) describe the consensus instance the
// transaction rode in; per-transaction and per-key stages follow one
// transaction across layers.
type Stage uint8

const (
	// StageSubmit: a client request was admitted at a replica.
	StageSubmit Stage = iota + 1
	// StageBatch: the request was cut into a batch (Arg = batch sequence).
	StageBatch
	// StagePrePrepare: a pre-prepare for Seq was proposed (leader) or
	// accepted (follower).
	StagePrePrepare
	// StageCommitQuorum: Seq reached its commit quorum (Arg = batch size).
	StageCommitQuorum
	// StageWALAppend: the decided batch was journaled (Arg = append ns).
	StageWALAppend
	// StageExecStart / StageExecEnd bracket batch execution (ExecEnd's
	// Arg = batch size).
	StageExecStart
	StageExecEnd
	// StageReply: a client reply for Tx was sent.
	StageReply
	// Stage2PCBegin: reference committee executed begin(Key); prepares
	// were sent to the involved shards.
	Stage2PCBegin
	// Stage2PCPrepare: a shard reached its prepare quorum for Key and
	// injected the lock-acquiring prepare transaction.
	Stage2PCPrepare
	// Stage2PCVote: the shard executed the prepare — locks held, vote
	// sent (Arg = lock-wait ns since Stage2PCPrepare).
	Stage2PCVote
	// Stage2PCDecide: the shard reached its decide quorum and injected
	// the phase-2 (commit/abort) transaction (Arg = 1 commit, 0 abort).
	Stage2PCDecide
	// Stage2PCDone: the phase-2 transaction executed — locks released
	// (Arg = lock-hold ns since Stage2PCVote). On the reference
	// committee: the decision was announced (Arg = 1 commit, 0 abort).
	Stage2PCDone
)

var stageNames = [...]string{
	StageSubmit:       "submit",
	StageBatch:        "batch",
	StagePrePrepare:   "pre-prepare",
	StageCommitQuorum: "commit-quorum",
	StageWALAppend:    "wal-append",
	StageExecStart:    "exec-start",
	StageExecEnd:      "exec-end",
	StageReply:        "reply",
	Stage2PCBegin:     "2pc-begin",
	Stage2PCPrepare:   "2pc-prepare",
	Stage2PCVote:      "2pc-vote",
	Stage2PCDecide:    "2pc-decide",
	Stage2PCDone:      "2pc-done",
}

// String returns the stage's wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "unknown"
}

// stageFromName inverts String for trace re-import.
func stageFromName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n != "" && n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Event is one fixed-size trace record. Key aliases the recording
// layer's transaction-ID string (no copy on the record path).
type Event struct {
	TS    int64
	Node  uint32
	Stage Stage
	Seq   uint64
	Tx    uint64
	Key   string
	Arg   int64
}

// Tracer is a bounded ring of lifecycle events. Recording takes an
// uncontended mutex (the exporter may read concurrently) and writes one
// preallocated slot: 0 allocs/op. Sampling is deterministic — a pure
// function of the transaction ID — so sim-mode traces are byte-identical
// across runs and worker counts.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
	mask  uint64 // sample tx when hash&mask == 0; 0 records all
}

func newTracer(cap, sampleEvery int) *Tracer {
	t := &Tracer{ring: make([]Event, cap)}
	if sampleEvery > 1 {
		// Round down to a power of two so sampling is a single mask.
		t.mask = uint64(1)<<uint(bits.Len64(uint64(sampleEvery))-1) - 1
	}
	return t
}

// SampleTx reports whether per-transaction events for tx are recorded.
func (t *Tracer) SampleTx(tx uint64) bool {
	return t != nil && mix64(tx)&t.mask == 0
}

// SampleKey reports whether per-key (cross-shard 2PC) events for key
// are recorded. The hash is FNV-1a: stable across processes, so every
// shard samples the same transactions.
func (t *Tracer) SampleKey(key string) bool {
	if t == nil {
		return false
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h&t.mask == 0
}

// mix64 is splitmix64's finalizer: client txn IDs are structured
// (client<<48|salt), so sampling on the raw low bits would skew.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of events ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events copies out the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	out := make([]Event, 0, n)
	start := t.next - int(n)
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < int(n); i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
