// Package obs is the repository's flight recorder: an allocation-free
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms; 0 allocs/op on the observe path) and a bounded,
// deterministically sampled per-transaction lifecycle tracer, both
// exportable over HTTP (Prometheus text, JSON snapshot, raw/Chrome
// trace).
//
// obs is clock-agnostic by construction: a Hub takes an injected Clock
// at build time. The live runtime injects WallClock — the one sanctioned
// wall-time source in the instrumented deterministic packages, carrying
// its //ahl:nondeterministic suppression right at the seam — while the
// simulator injects the engine clock, so sim-mode metrics and traces are
// byte-identical across runs. Everything downstream of the Clock is
// deterministic: the registry stores metrics in registration order and
// exports in sorted-name order, and the tracer's ring preserves record
// order.
//
// The package deliberately imports nothing from the rest of the
// repository, so any layer (consensus, txn, storage, transport, cmd) can
// depend on it without cycles.
package obs

import "time"

// Clock is the time source a Hub observes through, returning
// nanoseconds. In the simulator this wraps sim.Engine.Now (engine
// nanoseconds since the epoch); in the live runtime it is WallClock.
// Latency observations only ever subtract two Clock readings, so the
// epoch is irrelevant.
type Clock func() int64

// WallClock is the live runtime's clock and the only sanctioned
// wall-time source inside the instrumented deterministic packages: every
// other wall-clock read is rejected by the ahlvet walltime analyzer,
// which keeps the sim/live clock seam reviewable in exactly one place.
func WallClock() Clock {
	return func() int64 {
		return time.Now().UnixNano() //ahl:nondeterministic obs clock seam: the live flight recorder timestamps with wall time by definition; sim hubs inject the engine clock instead
	}
}

// Options configures a Hub.
type Options struct {
	// TraceCap bounds the trace ring buffer (events). 0 means
	// DefaultTraceCap; negative disables tracing entirely.
	TraceCap int
	// TraceSampleEvery keeps one of every N transactions' per-tx events
	// (rounded down to a power of two); 0 or 1 records all. Per-sequence
	// events (pre-prepare, commit quorum, WAL append, execute) are never
	// sampled out — there are only a handful per batch.
	TraceSampleEvery int
}

// DefaultTraceCap is the default trace ring size. At ~64 bytes an event
// this bounds the recorder at ~1 MiB per node.
const DefaultTraceCap = 16384

// Hub bundles one node's registry, tracer, and clock. A nil *Hub is
// valid everywhere and records nothing — the simulator's benchmark paths
// run hub-less, which is what keeps the published BENCH baselines
// byte-identical with obs compiled in.
type Hub struct {
	Reg   *Registry
	Trace *Tracer
	clock Clock
}

// NewHub builds a Hub around the injected clock.
func NewHub(clock Clock, opts Options) *Hub {
	h := &Hub{Reg: NewRegistry(), clock: clock}
	if opts.TraceCap >= 0 {
		cap := opts.TraceCap
		if cap == 0 {
			cap = DefaultTraceCap
		}
		h.Trace = newTracer(cap, opts.TraceSampleEvery)
	}
	return h
}

// Now reads the hub's clock. Safe on a nil hub (returns 0).
func (h *Hub) Now() int64 {
	if h == nil || h.clock == nil {
		return 0
	}
	return h.clock()
}

// RecordSeq traces a per-sequence lifecycle event (never sampled out).
// Safe on a nil hub.
func (h *Hub) RecordSeq(node uint32, stage Stage, seq uint64, arg int64) {
	if h == nil || h.Trace == nil {
		return
	}
	h.Trace.record(Event{TS: h.clock(), Node: node, Stage: stage, Seq: seq, Arg: arg})
}

// RecordTx traces a per-transaction lifecycle event, subject to the
// tracer's deterministic sampling on tx. Safe on a nil hub.
func (h *Hub) RecordTx(node uint32, stage Stage, seq, tx uint64) {
	if h == nil || h.Trace == nil || !h.Trace.SampleTx(tx) {
		return
	}
	h.Trace.record(Event{TS: h.clock(), Node: node, Stage: stage, Seq: seq, Tx: tx})
}

// RecordKey traces a string-keyed lifecycle event (cross-shard 2PC
// stages keyed by distributed-txn ID), subject to deterministic
// sampling on the key. Safe on a nil hub.
func (h *Hub) RecordKey(node uint32, stage Stage, key string, arg int64) {
	if h == nil || h.Trace == nil || !h.Trace.SampleKey(key) {
		return
	}
	h.Trace.record(Event{TS: h.clock(), Node: node, Stage: stage, Key: key, Arg: arg})
}
