package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), in sorted-name order. Duration
// histograms are exported in seconds (the Prometheus convention); size
// histograms in raw units. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, m := range r.sortedMetrics() {
		family := familyName(m.name)
		if family != lastFamily {
			lastFamily = family
			bw.WriteString("# TYPE ")
			bw.WriteString(family)
			switch m.kind {
			case kindCounter, kindCounterFunc:
				bw.WriteString(" counter\n")
			case kindGauge, kindGaugeFunc:
				bw.WriteString(" gauge\n")
			case kindHistogram:
				bw.WriteString(" histogram\n")
			}
		}
		if m.kind == kindHistogram {
			writePromHistogram(bw, m.name, m.hist)
			continue
		}
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(m.value(), 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// writePromHistogram emits the cumulative _bucket series plus _sum and
// _count for one histogram.
func writePromHistogram(bw *bufio.Writer, name string, h *Histogram) {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i+1:len(name)-1]+","
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		bw.WriteString(base)
		bw.WriteString(`_bucket{`)
		bw.WriteString(labels)
		bw.WriteString(`le="`)
		bw.WriteString(formatBound(BucketBound(i), h.size))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	bw.WriteString(base)
	bw.WriteString("_sum")
	bw.WriteString(suffix)
	bw.WriteByte(' ')
	if h.size {
		bw.WriteString(strconv.FormatInt(h.sum.Load(), 10))
	} else {
		bw.WriteString(strconv.FormatFloat(float64(h.sum.Load())/1e9, 'g', -1, 64))
	}
	bw.WriteByte('\n')
	bw.WriteString(base)
	bw.WriteString("_count")
	bw.WriteString(suffix)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(h.count.Load(), 10))
	bw.WriteByte('\n')
}

// formatBound renders one bucket bound: seconds for duration histograms
// (bounds are microseconds), raw units for size histograms.
func formatBound(bound float64, size bool) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	if size {
		return strconv.FormatFloat(bound, 'g', -1, 64)
	}
	return strconv.FormatFloat(bound/1e6, 'g', -1, 64)
}
