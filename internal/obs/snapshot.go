package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// HistogramSnapshot is a point-in-time copy of one histogram. Buckets
// are non-cumulative per-bucket counts (len HistBuckets), so snapshots
// from different nodes merge by index.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Size    bool     `json:"size,omitempty"` // raw-unit buckets, not microseconds
	Buckets []uint64 `json:"buckets"`
}

// Merge accumulates b into h (bucket-wise).
func (h *HistogramSnapshot) Merge(b HistogramSnapshot) {
	h.Count += b.Count
	h.Sum += b.Sum
	h.Size = h.Size || b.Size
	if h.Buckets == nil {
		h.Buckets = make([]uint64, HistBuckets)
	}
	for i := 0; i < len(b.Buckets) && i < len(h.Buckets); i++ {
		h.Buckets[i] += b.Buckets[i]
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) in the histogram's
// native unit (microseconds for duration histograms), log-interpolating
// inside the landing bucket. Returns 0 for an empty histogram; the +Inf
// bucket reports its lower bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lower := 0.5 // log midpoint stand-in for bucket 0's 0-lower bound
			if i > 0 {
				lower = BucketBound(i - 1)
			}
			upper := BucketBound(i)
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (target - cum) / float64(n)
			return lower * math.Pow(upper/lower, frac)
		}
		cum = next
	}
	return BucketBound(HistBuckets - 2)
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// each metric is read atomically, the set is read under the
// registration lock. It is the JSON wire format of the /snapshot
// endpoint (map keys marshal sorted, so sim-mode snapshots are
// byte-stable).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Safe on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	for _, m := range r.sortedMetrics() {
		switch m.kind {
		case kindCounter:
			s.Counters[m.name] = m.counter.Load()
		case kindCounterFunc:
			s.Counters[m.name] = m.cfn()
		case kindGauge:
			s.Gauges[m.name] = m.gauge.Load()
		case kindGaugeFunc:
			s.Gauges[m.name] = m.gfn()
		case kindHistogram:
			hs := HistogramSnapshot{
				Count:   m.hist.count.Load(),
				Sum:     m.hist.sum.Load(),
				Size:    m.hist.size,
				Buckets: make([]uint64, HistBuckets),
			}
			for i := range m.hist.buckets {
				hs.Buckets[i] = m.hist.buckets[i].Load()
			}
			s.Histograms[m.name] = hs
		}
	}
	return s
}

// ReadSnapshot decodes a /snapshot response — the scrape/aggregate
// path's inverse of Snapshot's JSON marshaling. Nil maps come back
// allocated so callers can merge into the result directly.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, err
	}
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	return s, nil
}

// Summary renders the snapshot as one log-friendly line: sorted
// `name=value` pairs for every nonzero counter and gauge, plus
// `name_count=value` for every nonzero histogram. This is the periodic
// status line ahlnode prints in place of its old bespoke counters.
func (s Snapshot) Summary() string {
	var parts []string
	for _, name := range sortedNames(s.Counters) {
		if v := s.Counters[name]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for _, name := range sortedNames(s.Gauges) {
		if v := s.Gauges[name]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for _, name := range sortedNames(s.Histograms) {
		if h := s.Histograms[name]; h.Count != 0 {
			parts = append(parts, fmt.Sprintf("%s_count=%d", familyName(name), h.Count))
		}
	}
	return strings.Join(parts, " ")
}

// sortedNames returns m's keys in sorted order.
func sortedNames[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
