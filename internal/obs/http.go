package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewHTTPHandler serves one hub's flight-recorder endpoints:
//
//	/metrics        Prometheus text exposition
//	/snapshot       JSON registry snapshot (Snapshot wire format)
//	/trace          recent lifecycle events, raw JSON
//	/trace?format=chrome  same events in Chrome trace format
//	/debug/pprof/*  the standard net/http/pprof profiles
//
// ahlnode mounts this on -metrics-addr.
func NewHTTPHandler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ahl flight recorder\n\n/metrics\n/snapshot\n/trace[?format=chrome]\n/debug/pprof/\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(h.Reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		events := h.Trace.Events()
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChromeTrace(w, events)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteTraceJSON(w, events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
