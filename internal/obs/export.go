package obs

import (
	"encoding/json"
	"io"
)

// jsonEvent is the raw-trace wire format (one line per event).
type jsonEvent struct {
	TS    int64  `json:"ts"`
	Node  uint32 `json:"node"`
	Stage string `json:"stage"`
	Seq   uint64 `json:"seq,omitempty"`
	Tx    uint64 `json:"tx,omitempty"`
	Key   string `json:"key,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
}

// WriteTraceJSON renders events as a JSON array, one event per line,
// oldest first. Output is a pure function of the events, so sim-mode
// exports are byte-identical across runs.
func WriteTraceJSON(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range events {
		b, err := json.Marshal(jsonEvent{
			TS: e.TS, Node: e.Node, Stage: e.Stage.String(),
			Seq: e.Seq, Tx: e.Tx, Key: e.Key, Arg: e.Arg,
		})
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// ParseTraceJSON decodes a WriteTraceJSON export back into events —
// the scrape/aggregate path reading a remote node's /trace endpoint.
// Events with a stage name this build does not know are dropped rather
// than failing the whole trace (version-skewed scrapes degrade softly).
func ParseTraceJSON(r io.Reader) ([]Event, error) {
	var raw []jsonEvent
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	events := make([]Event, 0, len(raw))
	for _, je := range raw {
		st, ok := stageFromName(je.Stage)
		if !ok {
			continue
		}
		events = append(events, Event{
			TS: je.TS, Node: je.Node, Stage: st,
			Seq: je.Seq, Tx: je.Tx, Key: je.Key, Arg: je.Arg,
		})
	}
	return events, nil
}

// SpanDurations folds a trace into per-span duration samples (ns),
// paired exactly as WriteChromeTrace pairs them. The result maps span
// name ("consensus", "journal", "execute", "2pc", ...) to the durations
// observed, in event order.
func SpanDurations(events []Event) map[string][]int64 {
	pending := make(map[pendKey]int64)
	out := make(map[string][]int64)
	for _, e := range events {
		for _, sp := range traceSpans {
			if sp.end == e.Stage {
				k := pendKey{e.Node, sp.start, e.Seq, e.Key}
				if ts0, ok := pending[k]; ok {
					delete(pending, k)
					out[sp.name] = append(out[sp.name], e.TS-ts0)
				}
			}
			if sp.start == e.Stage {
				pending[pendKey{e.Node, e.Stage, e.Seq, e.Key}] = e.TS
			}
		}
	}
	return out
}

// SpanNames lists the span names SpanDurations can produce, in pairing-
// table order — the deterministic iteration order for rendering.
func SpanNames() []string {
	names := make([]string, len(traceSpans))
	for i, sp := range traceSpans {
		names[i] = sp.name
	}
	return names
}

// traceSpans pairs lifecycle stages into Chrome complete events. One
// stage may close one span and open the next (commit-quorum ends
// "consensus" and starts "journal"); 2pc-done closes whichever of its
// three start stages the node actually recorded (begin on the reference
// committee, vote/decide on shards).
var traceSpans = []struct {
	start, end Stage
	name       string
}{
	{StagePrePrepare, StageCommitQuorum, "consensus"},
	{StageCommitQuorum, StageWALAppend, "journal"},
	{StageExecStart, StageExecEnd, "execute"},
	{Stage2PCPrepare, Stage2PCVote, "2pc-lock-wait"},
	{Stage2PCVote, Stage2PCDone, "2pc-lock-hold"},
	{Stage2PCDecide, Stage2PCDone, "2pc-phase2"},
	{Stage2PCBegin, Stage2PCDone, "2pc"},
}

// chromeEvent is one Chrome trace-format (catapult) record. Timestamps
// and durations are microseconds.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur,omitempty"`
	PID  uint32     `json:"pid"`
	TID  uint32     `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Seq uint64 `json:"seq,omitempty"`
	Tx  uint64 `json:"tx,omitempty"`
	Key string `json:"key,omitempty"`
	Arg int64  `json:"arg,omitempty"`
}

// pendKey identifies one open span.
type pendKey struct {
	node  uint32
	stage Stage
	seq   uint64
	key   string
}

// WriteChromeTrace renders events in Chrome trace format ("load the
// file in chrome://tracing or ui.perfetto.dev"): per-node tracks of
// consensus/journal/execute spans, 2PC spans keyed by distributed-txn
// ID, and instants for the unpaired stages. Deterministic for a given
// event slice.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`+"\n"); err != nil {
		return err
	}
	pending := make(map[pendKey]int64)
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for _, e := range events {
		paired := false
		args := chromeArgs{Seq: e.Seq, Tx: e.Tx, Key: e.Key, Arg: e.Arg}
		for _, sp := range traceSpans {
			if sp.end == e.Stage {
				k := pendKey{e.Node, sp.start, e.Seq, e.Key}
				if ts0, ok := pending[k]; ok {
					delete(pending, k)
					paired = true
					err := emit(chromeEvent{
						Name: sp.name, Cat: "ahl", Ph: "X",
						TS: float64(ts0) / 1e3, Dur: float64(e.TS-ts0) / 1e3,
						PID: e.Node, TID: e.Node, Args: args,
					})
					if err != nil {
						return err
					}
				}
			}
			if sp.start == e.Stage {
				pending[pendKey{e.Node, e.Stage, e.Seq, e.Key}] = e.TS
				paired = true
			}
		}
		if !paired {
			err := emit(chromeEvent{
				Name: e.Stage.String(), Cat: "ahl", Ph: "i",
				TS: float64(e.TS) / 1e3, PID: e.Node, TID: e.Node, Args: args,
			})
			if err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
