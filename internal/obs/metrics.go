package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (no-ops), so uninstrumented code paths cost one nil
// check.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. All methods are safe on a
// nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// watermark that survives for post-run scrapes (e.g. peak pipeline
// occupancy after load stops).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Histogram. Bucket i
// holds values in (2^(i-1), 2^i] units — microseconds for duration
// histograms, raw units for size histograms — and the last bucket is
// +Inf. 32 buckets cover 1 µs .. ~35 minutes (or 1 .. 2^30 units).
const HistBuckets = 32

// Histogram is a fixed-bucket exponential histogram. Observe is lock-
// and allocation-free: a bits.Len64 bucket index plus three atomic adds.
// All methods are safe on a nil receiver.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	size    bool // size histogram: raw units, not nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	// Ceiling division: 1001ns is strictly over 1µs, so it belongs in
	// bucket 1 per the (2^(i-1), 2^i] bound convention.
	h.observe((uint64(ns)+999)/1e3, ns)
}

// ObserveSize records a dimensionless value (batch size, group count).
func (h *Histogram) ObserveSize(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.observe(uint64(v), v)
}

func (h *Histogram) observe(unit uint64, sum int64) {
	idx := 0
	if unit > 0 {
		idx = bits.Len64(unit - 1)
	}
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(sum)
}

// BucketBound returns the inclusive upper bound of bucket i in the
// histogram's native unit (microseconds for duration histograms).
// The last bucket is +Inf.
func BucketBound(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1) << uint(i))
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one named registry entry.
type metric struct {
	name    string
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() int64
}

// value reads the entry's scalar value (counters and gauges only).
func (m *metric) value() int64 {
	switch m.kind {
	case kindCounter:
		return int64(m.counter.Load())
	case kindGauge:
		return m.gauge.Load()
	case kindCounterFunc:
		return int64(m.cfn())
	case kindGaugeFunc:
		return m.gfn()
	}
	return 0
}

// Registry is a named-metric registry. Registration (get-or-create by
// name) takes a mutex and may allocate; it happens at setup time. The
// returned handles are then observed lock-free. Metric names may carry
// a Prometheus label suffix, e.g. `transport_peer_queue_depth{peer="a"}`
// — the text before '{' is the family name.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	metrics []*metric // registration order; exports sort by name
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// lookup get-or-creates the named entry, enforcing kind consistency.
func (r *Registry) lookup(name string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*metric) // zero-value Registry is usable
	}
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the named counter, creating it on first use. Safe on
// a nil registry (returns a nil handle, whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter).counter
}

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge).gauge
}

// Histogram returns the named duration histogram (nanosecond Observe,
// microsecond buckets).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram).hist
}

// SizeHistogram returns the named dimensionless histogram (ObserveSize,
// raw-unit buckets).
func (r *Registry) SizeHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.lookup(name, kindHistogram).hist
	h.size = true
	return h
}

// CounterFunc registers a read-at-snapshot counter collector, absorbing
// counters owned elsewhere (e.g. transport TCPStats atomics).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.lookup(name, kindCounterFunc).cfn = fn
}

// GaugeFunc registers a read-at-snapshot gauge collector (e.g. a peer's
// instantaneous send-queue depth).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.lookup(name, kindGaugeFunc).gfn = fn
}

// sortedMetrics returns the entries in name order. Caller must not hold
// r.mu.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// familyName strips the label suffix: `a_total{peer="x"}` → `a_total`.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
