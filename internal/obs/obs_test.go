package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func testHub() *Hub {
	var now int64
	return NewHub(func() int64 { now += 1000; return now }, Options{})
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(10)
	g.SetMax(2)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge after SetMax = %d, want 10", got)
	}
	// Get-or-create returns the same instance.
	if reg.Counter("c") != c {
		t.Fatal("Counter(c) did not return the registered instance")
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle and the hub itself must be no-ops when nil — the
	// uninstrumented path compiles the calls in and must never panic.
	var c *Counter
	c.Inc()
	c.Add(2)
	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	var h *Histogram
	h.Observe(5)
	h.ObserveSize(5)
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(1)
	_ = reg.Snapshot()
	var hub *Hub
	if hub.Now() != 0 {
		t.Fatal("nil hub Now() != 0")
	}
	hub.RecordSeq(0, StagePrePrepare, 1, 0)
	hub.RecordTx(0, StageSubmit, 0, 42)
	hub.RecordKey(0, Stage2PCBegin, "tx", 0)
	var tr *Tracer
	if tr.SampleTx(1) || tr.SampleKey("k") {
		t.Fatal("nil tracer samples")
	}
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer has events")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := &Registry{}
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge on a counter name did not panic")
		}
	}()
	reg.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	reg := &Registry{}
	h := reg.Histogram("h")
	h.Observe(500)              // 0.5µs -> bucket 0 (<=1µs)
	h.Observe(1000)             // exactly 1µs -> bucket 0
	h.Observe(1001)             // just over -> bucket 1
	h.Observe(1_000_000)        // 1ms -> 2^10 = 1024µs bucket, idx 10
	h.Observe(int64(time.Hour)) // huge -> last bucket
	snap := reg.Snapshot().Histograms["h"]
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if snap.Buckets[0] != 2 {
		t.Fatalf("bucket0 = %d, want 2", snap.Buckets[0])
	}
	if snap.Buckets[1] != 1 {
		t.Fatalf("bucket1 = %d, want 1", snap.Buckets[1])
	}
	if snap.Buckets[10] != 1 {
		t.Fatalf("bucket10 = %d, want 1", snap.Buckets[10])
	}
	if snap.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1", snap.Buckets[HistBuckets-1])
	}
	if q := snap.Quantile(0.5); q <= 0 || math.IsNaN(q) {
		t.Fatalf("median = %v", q)
	}
}

func TestHistogramMergeAndQuantile(t *testing.T) {
	reg1, reg2 := &Registry{}, &Registry{}
	h1, h2 := reg1.Histogram("h"), reg2.Histogram("h")
	for i := 0; i < 100; i++ {
		h1.Observe(10_000)     // 10µs
		h2.Observe(10_000_000) // 10ms
	}
	a := reg1.Snapshot().Histograms["h"]
	a.Merge(reg2.Snapshot().Histograms["h"])
	if a.Count != 200 {
		t.Fatalf("merged count = %d", a.Count)
	}
	// Median sits in the low mode, p99 in the high mode.
	if q := a.Quantile(0.50); q > 1000 {
		t.Fatalf("p50 = %vµs, want ~16µs", q)
	}
	if q := a.Quantile(0.99); q < 1000 {
		t.Fatalf("p99 = %vµs, want ~10000µs", q)
	}
}

func TestConcurrentObserve(t *testing.T) {
	// Run with -race: atomic counters and histogram buckets must be safe
	// against concurrent writers plus a concurrent snapshot reader.
	reg := &Registry{}
	h := reg.Histogram("h")
	c := reg.Counter("c")
	g := reg.Gauge("g")
	var wg sync.WaitGroup
	const workers, per = 8, 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i) * 1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			reg.Snapshot()
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	snap := reg.Snapshot().Histograms["h"]
	if snap.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", snap.Count, workers*per)
	}
}

func TestConcurrentTracer(t *testing.T) {
	hub := NewHub(WallClock(), Options{TraceCap: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				hub.RecordSeq(uint32(w), StagePrePrepare, uint64(i), 1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			hub.Trace.Events()
		}
	}()
	wg.Wait()
	<-done
	if total := hub.Trace.Total(); total != 4*5000 {
		t.Fatalf("trace total = %d, want %d", total, 4*5000)
	}
	if n := len(hub.Trace.Events()); n != 64 {
		t.Fatalf("retained = %d, want ring cap 64", n)
	}
}

func TestZeroAllocsOnHotPath(t *testing.T) {
	// The alloc-regression guard the ISSUE pins: observing a metric or
	// recording a trace event must not allocate.
	reg := &Registry{}
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h")
	hub := NewHub(WallClock(), Options{})
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { hub.RecordSeq(1, StagePrePrepare, 7, 3) }); n != 0 {
		t.Fatalf("Hub.RecordSeq allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { hub.RecordKey(1, Stage2PCVote, "ctl1-42", 0) }); n != 0 {
		t.Fatalf("Hub.RecordKey allocates %v/op", n)
	}
}

func TestPrometheusOutput(t *testing.T) {
	reg := &Registry{}
	reg.Counter("requests_total").Add(3)
	reg.Gauge("depth").Set(-2)
	reg.Histogram("lat").Observe(2_000_000) // 2ms
	reg.SizeHistogram("batch").ObserveSize(10)
	reg.CounterFunc("fn_total", func() uint64 { return 9 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 3",
		"depth -2",
		"fn_total 9",
		"# TYPE lat histogram",
		`lat_bucket{le="+Inf"}`,
		"lat_count 1",
		`batch_bucket{le="16"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative and end at the total count.
	if !strings.Contains(out, `lat_bucket{le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", out)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	reg := &Registry{}
	reg.Counter("c").Add(2)
	reg.Gauge("g").Set(-5)
	reg.Histogram("h").Observe(1500)
	snap := reg.Snapshot()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["c"] != 2 || got.Gauges["g"] != -5 || got.Histograms["h"].Count != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTraceExportRoundTrip(t *testing.T) {
	hub := testHub()
	hub.RecordSeq(1, StagePrePrepare, 5, 3)
	hub.RecordSeq(1, StageCommitQuorum, 5, 3)
	hub.RecordKey(2, Stage2PCBegin, "tx-1", 0)
	hub.RecordKey(2, Stage2PCDone, "tx-1", 1)
	events := hub.Trace.Events()
	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTraceJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
	spans := SpanDurations(back)
	if len(spans["consensus"]) != 1 {
		t.Fatalf("consensus spans = %v", spans["consensus"])
	}
	if len(spans["2pc"]) != 1 {
		t.Fatalf("2pc spans = %v", spans["2pc"])
	}
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"name":"consensus"`) {
		t.Fatalf("chrome trace missing consensus span:\n%s", chrome.String())
	}
}

func TestDeterministicSampling(t *testing.T) {
	hub := NewHub(WallClock(), Options{TraceSampleEvery: 4})
	sampled := 0
	for tx := uint64(0); tx < 4096; tx++ {
		if hub.Trace.SampleTx(tx) {
			sampled++
		}
	}
	// splitmix64 mixing: roughly 1/4 of ids sampled.
	if sampled < 800 || sampled > 1300 {
		t.Fatalf("sampled %d of 4096, want ~1024", sampled)
	}
	// Key sampling is a pure function: identical across tracer instances
	// (cross-process stability is what shards rely on).
	other := NewHub(WallClock(), Options{TraceSampleEvery: 4})
	for _, k := range []string{"ctl1-1", "ctl1-2", "ctl9-3.abc", "x"} {
		if hub.Trace.SampleKey(k) != other.Trace.SampleKey(k) {
			t.Fatalf("key sampling differs across instances for %q", k)
		}
	}
}

func TestSummary(t *testing.T) {
	reg := &Registry{}
	reg.Counter("b_total").Add(2)
	reg.Counter("a_total").Add(1)
	reg.Counter("zero_total")
	reg.Gauge("g").Set(3)
	reg.Histogram("h").Observe(10)
	sum := reg.Snapshot().Summary()
	want := "a_total=1 b_total=2 g=3 h_count=1"
	if sum != want {
		t.Fatalf("summary = %q, want %q", sum, want)
	}
}
