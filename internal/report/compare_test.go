package report

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// The CI gate's contract (acceptance criterion): a >15% simulated
// throughput regression must be flagged; smaller movements and
// lower-better/analytic metrics must not trip it.
func TestCompareFlagsThroughputRegression(t *testing.T) {
	base := fixtureReport("baseline", 1)
	bad := fixtureReport("candidate", 0.8) // 20% tps drop on fig8's AHL+ column

	d := Compare(base, bad)
	reg := d.Regressions(15)
	if len(reg) != 1 || reg[0].ID != "fig8" {
		t.Fatalf("want exactly fig8 flagged at 15%%, got %+v", reg)
	}
	if reg[0].DeltaPct > -15 {
		t.Fatalf("delta should be below -15%%: %+v", reg[0])
	}
	// At a 25% threshold the same 20% drop passes.
	if reg := d.Regressions(25); len(reg) != 0 {
		t.Fatalf("20%% drop should pass a 25%% gate, got %+v", reg)
	}

	var sb strings.Builder
	d.WriteMarkdown(&sb, 15)
	out := sb.String()
	for _, want := range []string{"REGRESSION", "fig8", "1 gated metric(s) regressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCompareNoFalsePositives(t *testing.T) {
	base := fixtureReport("baseline", 1)
	same := fixtureReport("candidate", 1)
	d := Compare(base, same)
	if reg := d.Regressions(15); len(reg) != 0 {
		t.Fatalf("identical reports flagged: %+v", reg)
	}
	better := fixtureReport("candidate", 1.5)
	if reg := Compare(base, better).Regressions(15); len(reg) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", reg)
	}
}

// Latency (lower-better) metrics are tracked with the right sign but
// never gate the build.
func TestCompareLatencyDirectionAndGating(t *testing.T) {
	base := fixtureReport("baseline", 1)
	worse := fixtureReport("candidate", 1)
	// Double fig15's cluster latencies: strictly worse, but ungated.
	for i := range worse.Experiments {
		if worse.Experiments[i].ID != "fig15" {
			continue
		}
		worse.Experiments[i].Table.Rows[0][4] = "190ms" // was 95ms
	}
	d := Compare(base, worse)
	var lat *MetricDelta
	for i := range d.Deltas {
		if d.Deltas[i].ID == "fig15" {
			lat = &d.Deltas[i]
		}
	}
	if lat == nil {
		t.Fatal("fig15 metric missing from diff")
	}
	if lat.DeltaPct >= 0 {
		t.Fatalf("doubled latency should be a negative (worse) delta: %+v", lat)
	}
	if lat.Gated {
		t.Fatalf("latency metric must not gate: %+v", lat)
	}
	if reg := d.Regressions(15); len(reg) != 0 {
		t.Fatalf("ungated latency regression tripped the gate: %+v", reg)
	}
}

// Comparing across scale tiers must never gate — the deltas measure the
// tier change, not a code change.
func TestCompareScaleMismatchDisarmsGate(t *testing.T) {
	base := fixtureReport("baseline", 1)
	bad := fixtureReport("candidate", 0.5)
	bad.Scale = "full"
	d := Compare(base, bad)
	if !d.ScaleMismatch {
		t.Fatal("scale mismatch not detected")
	}
	if reg := d.Regressions(15); len(reg) != 0 {
		t.Fatalf("cross-tier comparison tripped the gate: %+v", reg)
	}
}

// A metric that extracted from the baseline but not from the candidate
// (every sweep cell livelocked to "-") is a total collapse and must trip
// the gate as -100%, not vanish from the diff.
func TestCompareFlagsLostMetricAsRegression(t *testing.T) {
	base := fixtureReport("baseline", 1)
	dead := fixtureReport("candidate", 1)
	for i := range dead.Experiments {
		if dead.Experiments[i].ID != "fig8" {
			continue
		}
		for _, row := range dead.Experiments[i].Table.Rows {
			row[4] = "-" // AHL+ column unparsable everywhere
		}
	}
	d := Compare(base, dead)
	reg := d.Regressions(15)
	if len(reg) != 1 || reg[0].ID != "fig8" || !reg[0].LostInNew || reg[0].DeltaPct != -100 {
		t.Fatalf("lost metric not gated: %+v", reg)
	}
	var sb strings.Builder
	d.WriteMarkdown(&sb, 15)
	if !strings.Contains(sb.String(), "not extractable") {
		t.Fatalf("markdown missing lost-metric cell:\n%s", sb.String())
	}
}

// Legacy reports (pre-table-payload schema) and aggregate-only entries
// have nil Tables; Compare must degrade to a coverage note, not panic.
func TestCompareHandlesEntriesWithoutTables(t *testing.T) {
	legacy := fixtureReport("legacy", 1)
	for i := range legacy.Experiments {
		legacy.Experiments[i].Table = nil
	}
	modern := fixtureReport("modern", 1)
	d := Compare(legacy, modern)
	if len(d.Deltas) != 0 {
		t.Fatalf("metrics extracted from nil tables: %+v", d.Deltas)
	}
	found := false
	for _, id := range d.OnlyNew {
		if id == "fig8" {
			found = true
		}
	}
	if !found {
		t.Fatalf("table-less fig8 not surfaced as coverage gap: OnlyNew=%v", d.OnlyNew)
	}
	var sb strings.Builder
	d.WriteMarkdown(&sb, 15) // must not panic
}

func TestCompareCoverageChanges(t *testing.T) {
	base := fixtureReport("baseline", 1)
	trimmed := fixtureReport("candidate", 1)
	trimmed.Experiments = trimmed.Experiments[:1] // drop fig15/table2/eq2
	d := Compare(base, trimmed)
	found := false
	for _, id := range d.OnlyOld {
		if id == "fig15" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped experiment not surfaced: OnlyOld=%v", d.OnlyOld)
	}
}

func TestMetricExtraction(t *testing.T) {
	tbl := &bench.TableData{
		Cols: []string{"mode", "x", "AHL+"},
		Rows: [][]string{
			{"N", "7", "100"},
			{"N", "19", "250"},
			{"N", "31", "-"}, // livelocked: must be skipped, not zero
			{"f", "1", "9999"},
		},
	}
	m := &Metric{Name: "t", Col: "AHL+", Where: []Cond{{Col: "mode", Equals: "N"}}, Agg: "max", Unit: "tps"}
	v, ok := m.Extract(tbl)
	if !ok || v != 250 {
		t.Fatalf("Extract = %v, %v; want 250", v, ok)
	}
	if !m.Gated() {
		t.Fatal("tps metric should gate")
	}
	spark, label, ok := m.Sparkline(tbl)
	if !ok || len([]rune(spark)) != 2 || !strings.Contains(label, "2 points") {
		t.Fatalf("sparkline = %q (%q), %v", spark, label, ok)
	}

	if _, ok := (&Metric{Name: "t", Col: "missing"}).Extract(tbl); ok {
		t.Fatal("extracted from a missing column")
	}
	ratio := &Metric{Name: "r", Col: "AHL+", DivBy: "x", Where: []Cond{{Col: "mode", Equals: "N"}}, Agg: "min"}
	if v, ok := ratio.Extract(tbl); !ok || v < 13.15 || v > 13.17 {
		t.Fatalf("ratio extract = %v, %v; want ~13.16 (250/19)", v, ok)
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"123", 123, true},
		{"1.5", 1.5, true},
		{"1.05e-05", 1.05e-05, true},
		{"483ms", 483, true},
		{"1.2s", 1200, true},
		{"55.3µs", 0.0553, true},
		{"stalled", 0, false},
		{"-", 0, false},
		{">N", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCell(c.in)
		if ok != c.ok || (ok && !approx(got, c.want)) {
			t.Fatalf("parseCell(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

// Every registered experiment must be keyed to a paper artifact, and
// every declared key metric must actually extract from the checked-in
// smoke baseline — this pins the targets registry, the experiment
// registry, and BENCH_smoke.json together so none can drift silently.
// (Adding an experiment therefore requires regenerating the baseline,
// which is exactly the workflow the CI gate depends on.)
func TestTargetsCoverRegistryAndBaseline(t *testing.T) {
	for _, e := range bench.All() {
		tgt, ok := targets[e.ID]
		if !ok {
			t.Errorf("experiment %s has no paper target entry", e.ID)
			continue
		}
		if tgt.Artifact == "" || tgt.Artifact == "—" {
			t.Errorf("experiment %s has no paper artifact key", e.ID)
		}
	}

	base, err := Load("../../BENCH_smoke.json")
	if err != nil {
		t.Fatalf("checked-in smoke baseline unreadable: %v", err)
	}
	if base.Scale != "smoke" {
		t.Fatalf("baseline is %q tier, want smoke", base.Scale)
	}
	for _, e := range bench.All() {
		entry, ok := findEntry(base, e.ID)
		if !ok || entry.Table == nil {
			t.Errorf("baseline missing experiment %s (regenerate BENCH_smoke.json)", e.ID)
			continue
		}
		m := TargetFor(e.ID).Metric
		if m == nil {
			continue
		}
		if _, ok := m.Extract(entry.Table); !ok {
			t.Errorf("%s: key metric %q does not extract from the baseline table (cols %v)",
				e.ID, m.Name, entry.Table.Cols)
		}
	}
}
