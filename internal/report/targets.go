package report

// The paper-target registry: every experiment id in internal/bench keyed
// to its artifact in the paper, plus — where the paper (or its notes
// reproduced in the experiment tables) states a headline number — a
// numeric target for the key metric. Metrics without a stated paper
// number carry a qualitative shape target instead; their values are still
// tracked across PRs by the comparator.
//
// Numeric targets deliberately come only from values the paper states
// outright (e.g. ">3000 tps at 36 shards", "~80-node committees at 25%",
// "stale rate 3% at N=128"); nothing is read off plot pixels.

// Target keys one experiment to its paper artifact and reproduction
// target.
type Target struct {
	// Artifact names the paper table/figure/equation ("Figure 8").
	Artifact string
	// Metric is the experiment's key metric; nil when the table has no
	// meaningful scalar (e.g. the Figure 12 time series).
	Metric *Metric
	// Paper is the paper's headline value for Metric; 0 means the paper
	// states no number and PaperNote describes the shape target.
	Paper float64
	// Floor marks Paper as a bound the paper asserts ("stays above X")
	// rather than a point value; the delta column then reports whether
	// the bound is met instead of a misleading percentage.
	Floor bool
	// PaperNote is the qualitative reproduction target.
	PaperNote string
	// Static marks tables reproduced by construction (survey tables,
	// cost tables copied from the paper's measurements).
	Static bool
}

// TargetFor returns the target spec for an experiment id; unknown ids get
// an empty artifact and no metric, so rendering degrades gracefully.
func TargetFor(id string) Target {
	if t, ok := targets[id]; ok {
		return t
	}
	return Target{Artifact: "—"}
}

var targets = map[string]Target{
	"fig2": {
		Artifact: "Figure 2 (§2)",
		Metric: &Metric{Name: "peak HL throughput (N sweep)", Col: "HL",
			Where: []Cond{{Col: "sweep", Equals: "N"}}, Agg: "max", Unit: "tps"},
		PaperNote: "PBFT (HL) outperforms the lockstep protocols at scale; Tendermint wins only at N=1, where HL's REST cap binds",
	},
	"fig8": {
		Artifact: "Figure 8 (§7)",
		Metric: &Metric{Name: "peak AHL+ throughput (N sweep)", Col: "AHL+",
			Where: []Cond{{Col: "mode", Equals: "N"}}, Agg: "max", Unit: "tps"},
		PaperNote: "HL/AHL livelock beyond N=67; AHL+ and AHLR sustain throughput to N=79, AHL+ > AHLR",
	},
	"fig9": {
		Artifact: "Figure 9 (§7)",
		Metric: &Metric{Name: "peak AHL+ throughput on GCP", Col: "AHL+",
			Agg: "max", Unit: "tps"},
		Paper:     200,
		Floor:     true,
		PaperNote: "HL and AHL show no throughput on GCP; AHL+/AHLR stay above 200 tps (the target is that floor)",
	},
	"fig10": {
		Artifact: "Figure 10 (§7)",
		Metric: &Metric{Name: "AHL+ ablation throughput (no failures)", Col: "tps (no failures, N=19)",
			Where: []Cond{{Col: "config", Prefix: "AHL + op1,2 "}}, Agg: "first", Unit: "tps"},
		PaperNote: "op2 helps most without failures, op1 most under failures; AHL+ (op1+op2) is best overall",
	},
	"fig11": {
		Artifact: "Figure 11 (§7)",
		Metric: &Metric{Name: "committee size at 25% adversary", Col: "ours",
			Where: []Cond{{Col: "metric", Prefix: "committee size"}, {Col: "x", Equals: "25.0"}},
			Agg:   "first", Unit: "nodes", LowerBetter: true},
		Paper:     80,
		PaperNote: "~80-node committees suffice at a 25% adversary vs 600+ under the 1/3 rule; the beacon forms shards up to 32× faster than RandHound",
	},
	"fig11x": {
		Artifact: "§5.1 extension",
		Metric: &Metric{Name: "beacon messages at l=log N", Col: "messages",
			Agg: "last", Unit: "msgs", LowerBetter: true},
		PaperNote: "l trades repeat probability (1-2^-l)^N against O(2^-l N²) communication; l=log N gives O(N) messages",
	},
	"fig12": {
		Artifact:  "Figure 12 (§7)",
		PaperNote: "swap-all drops to zero for ~80s then spikes on backlog; swap-log(n) tracks the no-reshard baseline",
	},
	"fig13": {
		Artifact: "Figure 13 (§7)",
		Metric: &Metric{Name: "peak AHL+ throughput with reference committee", Col: "value",
			Where: []Cond{{Col: "metric", Prefix: "AHL+ w/ R tps"}}, Agg: "max", Unit: "tps"},
		PaperNote: "throughput scales linearly with shards until the reference committee becomes the bottleneck; abort rate rises with Zipf skew",
	},
	"fig13x": {
		Artifact: "§6.2 extension",
		Metric: &Metric{Name: "peak committed throughput (R scale-out)", Col: "committed tps",
			Agg: "max", Unit: "tps"},
		PaperNote: "running multiple parallel instances of R raises committed throughput until the shards saturate",
	},
	"fig13r": {
		Artifact: "§6.4 extension",
		Metric: &Metric{Name: "peak goodput under retries", Col: "goodput tps",
			Agg: "max", Unit: "tps"},
		PaperNote: "retries trade goodput for logical success rate under skew (2PL no-wait aborts)",
	},
	"fig14": {
		Artifact: "Figure 14 (§7)",
		Metric: &Metric{Name: "peak throughput at 12.5% adversary", Col: "tps",
			Where: []Cond{{Col: "adversary", Equals: "12.5%"}}, Agg: "max", Unit: "tps"},
		Paper:     3000,
		PaperNote: ">3000 tps at 36 shards (12.5% adversary, committees of 27 = 972 nodes); 954 tps at 25% (committees of 79)",
	},
	"fig15": {
		Artifact: "Figure 15 (§7)",
		Metric: &Metric{Name: "best AHL+ commit latency (cluster)", Col: "AHL+",
			Where: []Cond{{Col: "env", Equals: "cluster"}}, Agg: "min", Unit: "ms", LowerBetter: true},
		PaperNote: "latency grows with N and with WAN round-trips; attested variants stay responsive where HL stalls",
	},
	"fig16": {
		Artifact: "Figure 16 (§7)",
		Metric: &Metric{Name: "worst-case AHL+ view changes", Col: "AHL+",
			Where: []Cond{{Col: "mode", Equals: "worst f"}}, Agg: "max", Unit: "", LowerBetter: true},
		PaperNote: "view changes stay bounded for the attested variants even under equivocating leaders",
	},
	"fig17": {
		Artifact: "Figure 17 (§7)",
		Metric: &Metric{Name: "consensus/execution CPU ratio (AHL+)", Col: "ratio",
			Where: []Cond{{Col: "protocol", Equals: "ahl+"}}, Agg: "max", Unit: "×"},
		Paper:     10,
		PaperNote: "execution cost is an order of magnitude below consensus cost",
	},
	"fig18": {
		Artifact: "Figure 18 (§7)",
		Metric: &Metric{Name: "peak SmallBank AHL+ sharded throughput", Col: "SB-AHL+",
			Agg: "max", Unit: "tps"},
		PaperNote: "sharded throughput scales with total nodes; AHL+'s smaller committees beat HL's at equal node budget",
	},
	"fig19": {
		Artifact: "Figure 19 (§7)",
		Metric: &Metric{Name: "peak AHL+ throughput (GCP client sweep)", Col: "AHL+",
			Agg: "max", Unit: "tps"},
		PaperNote: "throughput tracks the offered aggregate rate until consensus saturates",
	},
	"fig20": {
		Artifact: "Figure 20 (§7)",
		Metric: &Metric{Name: "peak AHL+ throughput (cluster client sweep)", Col: "AHL+",
			Agg: "max", Unit: "tps"},
		PaperNote: "KVStore and SmallBank saturate at similar rates — execution is not the bottleneck",
	},
	"fig21": {
		Artifact: "Figure 21 (§7)",
		Metric: &Metric{Name: "best PoET+/PoET throughput ratio", Col: "PoET+ tps",
			DivBy: "PoET tps", Agg: "max", Unit: "×"},
		Paper:     4,
		PaperNote: "PoET+ maintains up to 4× higher throughput at N=128",
	},
	"fig22": {
		Artifact: "Figure 22 (§7)",
		Metric: &Metric{Name: "worst PoET+ stale-block rate", Col: "PoET+",
			Agg: "max", Unit: "", LowerBetter: true},
		Paper:     0.03,
		PaperNote: "stale rate grows with N and block size; PoET+ cuts it ~5× (15% → 3% at N=128)",
	},
	"faults-loss": {
		Artifact: "§3.3 / §7 resilience (extension)",
		Metric: &Metric{Name: "committed tps under 10% message drop", Col: "committed tps",
			Where: []Cond{{Col: "fault", Equals: "drop"}, {Col: "rate", Equals: "0.1000"}},
			Agg:   "first", Unit: "tps"},
		PaperNote: "the partial-synchrony assumption (messages sent repeatedly with a finite timeout eventually arrive) holds end-to-end: throughput degrades with the injected loss/delay rate but every transaction terminates atomically — no unresolved transactions, no 2PL lock residue",
	},
	"faults-crash": {
		Artifact: "§3.1 fault model (extension)",
		Metric: &Metric{Name: "leader-crash recovery latency at f=1", Col: "value",
			Where: []Cond{{Col: "metric", Prefix: "recovery latency"}, {Col: "x", Equals: "1"}},
			Agg:   "first", Unit: "ms", LowerBetter: true},
		PaperNote: "up to f crash(-recovery) faults per 2f+1 committee are absorbed: the view change replaces a dead leader within a few progress timeouts and recovered replicas catch up by state sync/replay",
	},
	"faults-partition": {
		Artifact: "§3.3 partial synchrony (extension)",
		Metric: &Metric{Name: "committed tps under a 30s shard partition", Col: "committed tps",
			Where: []Cond{{Col: "partition", Equals: "30s"}}, Agg: "first", Unit: "tps"},
		PaperNote: "2PC blocks only for transactions touching the cut shard; after the heal, capped-backoff retransmission drains every blocked transaction with all locks released",
	},
	"faults-byz": {
		Artifact: "Figure 8 claim, whole-system (extension)",
		Metric: &Metric{Name: "committed tps with an equivocator per committee", Col: "committed tps",
			Where: []Cond{{Col: "behavior", Equals: "equivocate"}}, Agg: "first", Unit: "tps"},
		PaperNote: "the trusted log makes equivocation unproduceable, so an equivocating replica per committee costs nothing; a silent replica costs throughput (client retries route around it) but never safety",
	},
	"faults-2pc": {
		Artifact: "§6.2 coordinator replication (extension)",
		Metric: &Metric{Name: "committed tps with coordinator crash at first decide", Col: "committed tps",
			Where: []Cond{{Col: "crash point", Prefix: "first CommitTx"}, {Col: "outage", Equals: "crash-stop"}},
			Agg:   "first", Unit: "tps"},
		PaperNote: "the 2PC coordinator is a replicated state machine: a reference replica dying at any protocol point (even crash-stop) cannot block or half-apply a transaction",
	},
	"fig-read": {
		Artifact: "§4/§6 read path (extension)",
		Metric: &Metric{Name: "worst-case conservation violations", Col: "violations",
			Agg: "max", Unit: ""},
		PaperNote: "height-pinned scatter-gather sweeps resolve in-flight 2PC residues to an exactly conserved total (violations 0 at every reader count), and write tps is identical with 0, 1, or 4 concurrent readers — reads take no locks and enter no consensus",
	},
	"fig-readx": {
		Artifact: "§4 read path paging (extension)",
		Metric: &Metric{Name: "rows per ordered scan sweep", Col: "rows/sweep",
			Agg: "max", Unit: "rows"},
		PaperNote: "the gateway's k-way merge streams every checking row in global key order regardless of page size; shrinking pages adds round-trips per sweep but never changes the row stream",
	},
	"table1": {
		Artifact:  "Table 1 (§2)",
		Static:    true,
		PaperNote: "survey of sharded-blockchain evaluation methodology, reproduced verbatim",
	},
	"table2": {
		Artifact:  "Table 2 (§7)",
		Static:    true,
		PaperNote: "enclave operation costs injected into the simulation reproduce the paper's Skylake measurements",
	},
	"table3": {
		Artifact:  "Table 3 (§7)",
		Static:    true,
		PaperNote: "inter-region GCP delay matrix used by the simulated WAN environment",
	},
	"eq1": {
		Artifact: "Equation 1 (§5)",
		Metric: &Metric{Name: "required committee size, 25% adversary, f=(n-1)/2", Col: "n",
			Where: []Cond{{Col: "adversary", Equals: "0.2500"}, {Col: "rule", Prefix: "f=(n-1)/2"}},
			Agg:   "first", Unit: "nodes", LowerBetter: true},
		Paper:     80,
		PaperNote: "hypergeometric committee sizing: ~80 nodes at 25% under the 1/2 rule vs 600+ under the 1/3 rule",
	},
	"eq2": {
		Artifact: "Equation 2 (§5)",
		Metric: &Metric{Name: "transition fault probability at B=log(n)=6", Col: "Pr[faulty during transition]",
			Where: []Cond{{Col: "B", Equals: "6"}}, Agg: "first", Unit: "", LowerBetter: true},
		Paper:     1e-5,
		PaperNote: "batched swaps of B=log(n) nodes keep the epoch-transition fault probability ≈1e-5",
	},
	"eq3": {
		Artifact: "Equation 3 (Appendix B)",
		Metric: &Metric{Name: "cross-shard fraction, d=2, k=16", Col: "Pr[cross-shard]",
			Where: []Cond{{Col: "d", Equals: "2"}, {Col: "k", Equals: "16"}}, Agg: "first", Unit: ""},
		PaperNote: "the vast majority of multi-argument transactions are cross-shard",
	},
}
