package report

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureReport builds a small deterministic report exercising every
// renderer feature: numeric paper targets, shape-only targets, static
// tables, sparkline series, duration cells and unparsable cells.
func fixtureReport(label string, tpsScale float64) *bench.Report {
	r := &bench.Report{Label: label, Scale: "smoke",
		ScaleParams: &bench.ScaleParams{MaxN: 7, DurationMS: 1000, Nodes: 24}}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	r.Experiments = append(r.Experiments,
		bench.ExperimentEntry{ID: "fig8", Title: "AHL+ vs HL/AHL/AHLR on the local cluster", Rows: 3,
			Table: &bench.TableData{
				Cols: []string{"mode", "x", "HL", "AHL", "AHL+", "AHLR"},
				Rows: [][]string{
					{"N", "7", f(900 * tpsScale), "850", f(1200 * tpsScale), "1100"},
					{"N", "19", f(400 * tpsScale), "380", f(1500 * tpsScale), "1350"},
					{"f", "1", "300", "500", "700", "650"},
				},
				Notes: []string{"paper: AHL+ > AHLR"},
			}},
		bench.ExperimentEntry{ID: "fig15", Title: "Consensus latency vs N", Rows: 2,
			Table: &bench.TableData{
				Cols: []string{"env", "N", "HL", "AHL", "AHL+", "AHLR"},
				Rows: [][]string{
					{"cluster", "7", "120ms", "110ms", "95ms", "100ms"},
					{"cluster", "19", "stalled", "250ms", "140ms", "160ms"},
				},
			}},
		bench.ExperimentEntry{ID: "table2", Title: "Runtime costs of enclave operations", Rows: 1,
			Table: &bench.TableData{
				Cols: []string{"operation", "time"},
				Rows: [][]string{{"ECDSA signing", "458µs"}},
			}},
		bench.ExperimentEntry{ID: "eq2", Title: "Epoch-transition safety bound", Rows: 2,
			Table: &bench.TableData{
				Cols: []string{"B", "Pr[faulty during transition]"},
				Rows: [][]string{{"1", "6.1e-07"}, {"6", "1.05e-05"}},
			}},
	)
	return r
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/report -update`): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s — run `go test ./internal/report -update` and review the diff.\n--- got ---\n%s", path, got)
	}
}

func TestRenderGolden(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, fixtureReport("golden", 1)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Structural assertions independent of the golden bytes.
	for _, want := range []string{
		"# EXPERIMENTS",
		"## fig8 — Figure 8 (§7)",
		"**Key metric:** peak AHL+ throughput (N sweep) = **1500 tps**",
		"reproduced by construction",
		"paper: 1e-05", // eq2 numeric target
		"% of paper",   // delta column present
		"| [fig8](#",   // index links
		"`▁█`",         // fig8 sparkline over the two N rows
		"95.0 ms",      // fig15 latency metric parsed from "95ms"
		"Figure 15 (§7)",
		"Table 2 (§7)",
		"Equation 2 (§5)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "golden_experiments.md", out)
}

func TestRenderTrajectoryGolden(t *testing.T) {
	old := fixtureReport("pr1", 1)
	newer := fixtureReport("pr2", 1.2)
	var sb strings.Builder
	if err := Render(&sb, old, newer); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## Trajectory") {
		t.Fatalf("multi-report render missing trajectory section:\n%s", out)
	}
	if !strings.Contains(out, "+20.0%") {
		t.Fatalf("trajectory missing first→last delta:\n%s", out)
	}
	checkGolden(t, "golden_trajectory.md", out)
}

func TestRenderDeterministic(t *testing.T) {
	a, b := &strings.Builder{}, &strings.Builder{}
	// Volatile fields must not leak into the rendered markdown.
	r1 := fixtureReport("same", 1)
	r2 := fixtureReport("same", 1)
	r1.CreatedAt, r2.CreatedAt = "2026-01-01T00:00:00Z", "2026-06-30T23:59:59Z"
	r1.GoVersion, r2.GoVersion = "go1.24.0", "go1.99.9"
	r1.CPUs, r2.CPUs = 1, 64
	r1.Workers, r2.Workers = 1, 16
	r1.GitRevision, r2.GitRevision = "abc123", "def456-dirty"
	r1.TotalMS, r2.TotalMS = 100, 99999
	for i := range r1.Experiments {
		r1.Experiments[i].WallMS = 1
		r2.Experiments[i].WallMS = 99999
	}
	if err := Render(a, r1); err != nil {
		t.Fatal(err)
	}
	if err := Render(b, r2); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("rendered markdown depends on volatile report fields")
	}
}
