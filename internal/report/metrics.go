package report

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

// Cond restricts metric extraction to table rows whose cell in Col
// matches. Equals compares the formatted cell verbatim; Prefix matches
// the cell's leading characters. Both empty means "any value".
type Cond struct {
	Col    string
	Equals string
	Prefix string
}

func (c Cond) match(cell string) bool {
	if c.Equals != "" {
		return cell == c.Equals
	}
	if c.Prefix != "" {
		return strings.HasPrefix(cell, c.Prefix)
	}
	return true
}

// Metric locates one scalar in an experiment table: the Agg aggregate of
// column Col over the rows selected by Where. Cells that do not parse as
// numbers (e.g. "-", "stalled", ">N") are skipped, which is how livelocked
// configurations drop out of a peak-throughput metric.
type Metric struct {
	// Name labels the metric in rendered output ("peak AHL+ throughput").
	Name string
	// Col is the column holding the values.
	Col string
	// DivBy optionally divides each value by the same row's cell in this
	// column (ratio metrics such as PoET+/PoET).
	DivBy string
	// Where filters rows; all conditions must match.
	Where []Cond
	// Agg is "max", "min", "first" or "last" over the selected values.
	Agg string
	// Unit annotates rendered values ("tps", "ms", "×", ...).
	Unit string
	// LowerBetter inverts the improvement direction (latency, abort
	// rates, view changes).
	LowerBetter bool
}

// Gated reports whether the comparator's regression gate applies to this
// metric: simulated throughput is the reproduction's contract, so only
// higher-is-better throughput metrics fail CI. Latency/ratio/analytic
// metrics are tracked but informational.
func (m *Metric) Gated() bool { return m != nil && m.Unit == "tps" && !m.LowerBetter }

// Extract computes the metric over the table. ok is false when the metric
// cannot be computed (missing column, no parsable selected cells).
func (m *Metric) Extract(t *bench.TableData) (v float64, ok bool) {
	vals := m.series(t)
	if len(vals) == 0 {
		return 0, false
	}
	switch m.Agg {
	case "min":
		v = vals[0]
		for _, x := range vals {
			if x < v {
				v = x
			}
		}
	case "first":
		v = vals[0]
	case "last":
		v = vals[len(vals)-1]
	default: // "max"
		v = vals[0]
		for _, x := range vals {
			if x > v {
				v = x
			}
		}
	}
	return v, true
}

// series returns the metric's parsed values in row order. A nil table
// (entries recorded without payloads, e.g. pre-schema reports) yields no
// values.
func (m *Metric) series(t *bench.TableData) []float64 {
	if t == nil {
		return nil
	}
	col := colIndex(t, m.Col)
	if col < 0 {
		return nil
	}
	div := -1
	if m.DivBy != "" {
		if div = colIndex(t, m.DivBy); div < 0 {
			return nil
		}
	}
	conds := make([]int, len(m.Where))
	for i, c := range m.Where {
		if conds[i] = colIndex(t, c.Col); conds[i] < 0 {
			return nil
		}
	}
	var vals []float64
rows:
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		for i, c := range m.Where {
			if conds[i] >= len(row) || !c.match(row[conds[i]]) {
				continue rows
			}
		}
		v, ok := parseCell(row[col])
		if !ok {
			continue
		}
		if div >= 0 {
			d, ok := parseCell(row[div])
			if !ok || d == 0 {
				continue
			}
			v /= d
		}
		vals = append(vals, v)
	}
	return vals
}

// Sparkline renders the metric's row-ordered series as 8-level block
// characters, with a label describing the range. Series shorter than two
// points render nothing.
func (m *Metric) Sparkline(t *bench.TableData) (spark, label string, ok bool) {
	vals := m.series(t)
	if len(vals) < 2 {
		return "", "", false
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[i])
	}
	label = fmt.Sprintf("%s, %d points, %s → %s",
		m.Name, len(vals), formatValue(lo, m.Unit), formatValue(hi, m.Unit))
	return b.String(), label, true
}

func colIndex(t *bench.TableData, name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// parseCell turns a formatted table cell back into a number. Durations
// ("483ms", "1.2s", "55.3µs") normalize to milliseconds.
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if v, err := strconv.ParseFloat(strings.ReplaceAll(s, ",", ""), 64); err == nil {
		return v, true
	}
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d) / float64(time.Millisecond), true
	}
	return 0, false
}
