package report

import (
	"fmt"
	"io"

	"repro/internal/bench"
)

// MetricDelta is one key metric's movement between two reports.
type MetricDelta struct {
	ID     string
	Metric string
	Unit   string
	Old    float64
	New    float64
	// DeltaPct is the relative change in the improvement direction:
	// positive is better, negative is worse, regardless of whether the
	// metric is higher- or lower-better.
	DeltaPct float64
	// Gated marks metrics the regression gate applies to (simulated
	// throughput); see Metric.Gated.
	Gated bool
	// LostInNew marks a metric that extracted from the old report but
	// not the new one (e.g. every sweep point livelocked and rendered
	// "-"): a total collapse, reported as -100% so gated metrics fail
	// the gate instead of silently vanishing from the diff.
	LostInNew bool
}

// Diff is the comparison of two benchmark reports.
type Diff struct {
	Old, New *bench.Report
	// Deltas holds one entry per key metric present in both reports, in
	// display order.
	Deltas []MetricDelta
	// OnlyOld / OnlyNew list experiment ids present in one report only
	// (coverage changes surface in review instead of vanishing).
	OnlyOld, OnlyNew []string
	// ScaleMismatch is set when the reports ran at different tiers, in
	// which case metric deltas measure the tier change, not a code
	// change, and the gate refuses to fail the build on them.
	ScaleMismatch bool
}

// Compare diffs two reports metric by metric using the paper-target
// registry's key metrics.
func Compare(oldR, newR *bench.Report) *Diff {
	d := &Diff{Old: oldR, New: newR,
		ScaleMismatch: oldR.Scale != newR.Scale && oldR.Scale != "" && newR.Scale != ""}
	for _, id := range metricIDs([]*bench.Report{oldR, newR}) {
		// An entry without table content (legacy pre-schema reports,
		// aggregate-only entries) carries no comparable metric; treat it
		// as absent so the diff degrades to a coverage note instead of
		// failing on old BENCH_*.json files.
		oe, okO := findEntry(oldR, id)
		ne, okN := findEntry(newR, id)
		okO = okO && oe.Table != nil
		okN = okN && ne.Table != nil
		if !okO && !okN {
			continue
		}
		if !okO {
			d.OnlyNew = append(d.OnlyNew, id)
			continue
		}
		if !okN {
			d.OnlyOld = append(d.OnlyOld, id)
			continue
		}
		m := TargetFor(id).Metric
		ov, okO := m.Extract(oe.Table)
		nv, okN := m.Extract(ne.Table)
		if !okO && !okN {
			continue
		}
		if !okO {
			// Newly extractable (e.g. a column gained parsable values):
			// new coverage, nothing to diff against.
			d.OnlyNew = append(d.OnlyNew, id+" (metric newly extractable)")
			continue
		}
		if !okN {
			d.Deltas = append(d.Deltas, MetricDelta{
				ID: id, Metric: m.Name, Unit: m.Unit,
				Old: ov, DeltaPct: -100, Gated: m.Gated(), LostInNew: true,
			})
			continue
		}
		delta := 0.0
		if ov != 0 {
			delta = 100 * (nv - ov) / ov
			if m.LowerBetter {
				delta = -delta
			}
			if delta == 0 {
				delta = 0 // normalize -0.0 so unchanged metrics print +0.0%
			}
		}
		d.Deltas = append(d.Deltas, MetricDelta{
			ID: id, Metric: m.Name, Unit: m.Unit,
			Old: ov, New: nv, DeltaPct: delta, Gated: m.Gated(),
		})
	}
	// Coverage changes among non-metric experiments too.
	for _, e := range oldR.Experiments {
		if _, ok := findEntry(newR, e.ID); !ok && TargetFor(e.ID).Metric == nil {
			d.OnlyOld = append(d.OnlyOld, e.ID)
		}
	}
	for _, e := range newR.Experiments {
		if _, ok := findEntry(oldR, e.ID); !ok && TargetFor(e.ID).Metric == nil {
			d.OnlyNew = append(d.OnlyNew, e.ID)
		}
	}
	return d
}

// Regressions returns the gated metrics that worsened by more than
// thresholdPct. Comparisons across different scale tiers never gate.
func (d *Diff) Regressions(thresholdPct float64) []MetricDelta {
	if d.ScaleMismatch {
		return nil
	}
	var out []MetricDelta
	for _, m := range d.Deltas {
		if m.Gated && m.DeltaPct < -thresholdPct {
			out = append(out, m)
		}
	}
	return out
}

// WriteMarkdown renders the diff, flagging regressions beyond
// thresholdPct (<= 0 disables flagging).
func (d *Diff) WriteMarkdown(w io.Writer, thresholdPct float64) {
	fmt.Fprintf(w, "# Benchmark comparison: %s → %s\n\n",
		labelOf(d.Old), labelOf(d.New))
	if d.Old.GitRevision != "" || d.New.GitRevision != "" {
		fmt.Fprintf(w, "Revisions: `%s` → `%s`.\n",
			firstNonEmpty(d.Old.GitRevision, "?"), firstNonEmpty(d.New.GitRevision, "?"))
	}
	fmt.Fprintf(w, "Scale: %s → %s.",
		firstNonEmpty(d.Old.Scale, "?"), firstNonEmpty(d.New.Scale, "?"))
	if d.ScaleMismatch {
		fmt.Fprintf(w, " **Tiers differ — deltas reflect the scale change and are not gated.**")
	}
	fmt.Fprintf(w, "\n\n")
	if d.Old.TotalMS > 0 && d.New.TotalMS > 0 {
		fmt.Fprintf(w, "Total wall clock (informational, machine-dependent): %.1fs → %.1fs.\n\n",
			d.Old.TotalMS/1000, d.New.TotalMS/1000)
	}

	fmt.Fprintf(w, "| experiment | metric | old | new | Δ (better↑) | gate |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	for _, m := range d.Deltas {
		status := ""
		switch {
		case m.Gated && thresholdPct > 0 && m.DeltaPct < -thresholdPct && !d.ScaleMismatch:
			status = fmt.Sprintf("**REGRESSION** (>%.0f%%)", thresholdPct)
		case m.Gated:
			status = "ok"
		}
		newCell := formatValue(m.New, m.Unit)
		if m.LostInNew {
			newCell = "not extractable"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %+.1f%% | %s |\n",
			m.ID, m.Metric, formatValue(m.Old, m.Unit), newCell,
			m.DeltaPct, status)
	}
	fmt.Fprintf(w, "\n")
	if len(d.OnlyOld) > 0 {
		fmt.Fprintf(w, "Only in %s: %v.\n", labelOf(d.Old), d.OnlyOld)
	}
	if len(d.OnlyNew) > 0 {
		fmt.Fprintf(w, "Only in %s: %v.\n", labelOf(d.New), d.OnlyNew)
	}
	if reg := d.Regressions(thresholdPct); thresholdPct > 0 {
		if len(reg) > 0 {
			fmt.Fprintf(w, "\n%d gated metric(s) regressed more than %.0f%%.\n", len(reg), thresholdPct)
		} else {
			fmt.Fprintf(w, "\nNo gated metric regressed more than %.0f%%.\n", thresholdPct)
		}
	}
}

func labelOf(r *bench.Report) string {
	return firstNonEmpty(r.Label, "(unlabeled)")
}
