// Package query is the streaming scatter-gather read layer over the
// sharded ledger: relational operators evaluated per shard against
// height-pinned snapshots, composed by a gateway-side planner into one
// globally consistent answer.
//
// # Operators
//
// Evaluation is built from pure pull-based streaming operators in the
// datalog-engine style: Scan (ordered range over a chain.Reader, with
// predicate and projection pushed down to the shard), Filter, Project,
// ordered k-way Merge, and the Count/Sum/GroupSum folds. The shard side
// composes Scan+Filter+fold and ships bounded pages; the gateway composes
// Merge over the per-shard streams, so a full-cluster ordered scan never
// materializes more than one page per shard.
//
// # Wire protocol
//
// Two messages carry everything: MsgQueryRequest (a sub-query: pin
// acquisition, a scan page, or a commit-resolution probe) and
// MsgQueryChunk (one bounded page of rows/partials, with a resume key for
// the next page). Paging is stateless on the server — every page request
// carries the full sub-query plus the resume key, and the server
// re-attaches to the pinned version via Store.ReaderAt — so replicas keep
// no per-query state and a lost chunk costs one page, not a cursor leak.
//
// # Consistency
//
// A query runs at one pin per shard: the shard's latest sealed block
// version, acquired in a single scatter round (or supplied by the caller
// to share a cut across several scans). Every page of every sub-query
// reads the exact sealed version it was pinned to — never the mutable
// head — so results are height-consistent per shard by construction, and
// the read path takes no 2PL locks and never blocks execution. If the
// stable checkpoint overtakes a pin between pages the server answers with
// the typed pruned error and the caller re-pins; results are all-or-
// nothing, never a mix of versions.
//
// Across shards, the pins form a cut that may slice through an in-flight
// two-phase commit: shard A pinned after its commit-phase executed, shard
// B before. The staged-residue protocol repairs this: a scan of the 2PL
// staging prefix yields each shard's pending deltas, and a resolution
// round asks every shard whether the owning transaction had committed at
// or before its pin (served from the store's commit-record index). If any
// shard committed it, the cut already contains that shard's effects, so
// the other shards' staged deltas are applied to the answer. The
// remaining hazard window — one shard pinned before its prepare while
// another pinned after its commit — requires the pin scatter (microseconds
// apart) to straddle a full prepare-to-commit span (two consensus rounds);
// the conservation helper additionally retries on mismatch-prone errors,
// and the live smoke test asserts exactness under sustained write load.
package query
