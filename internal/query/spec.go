package query

import (
	"strconv"
)

// Kind selects what a sub-query asks of a shard replica.
type Kind uint8

const (
	// KindPin asks for the shard's latest sealed block version: the pin
	// all of the query's subsequent pages read at.
	KindPin Kind = iota
	// KindScan evaluates one page of an ordered range scan (with pushed-
	// down predicate, projection, and aggregate) at the pinned version.
	KindScan
	// KindResolve asks whether each listed distributed transaction had
	// committed on this shard at or before the pin (commit-record index).
	KindResolve
)

// PredOp is a pushed-down predicate on the numeric value of a row.
type PredOp uint8

const (
	PredAny PredOp = iota // no predicate
	PredEq
	PredNe
	PredLt
	PredGe
)

// Pred is a value predicate evaluated shard-side before a row is counted,
// summed, or shipped. Values that do not parse as int64 fail every
// predicate except PredAny.
type Pred struct {
	Op  PredOp
	Val int64
}

// Match reports whether a stored value satisfies the predicate.
func (p Pred) Match(v []byte) bool {
	if p.Op == PredAny {
		return true
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return false
	}
	switch p.Op {
	case PredEq:
		return n == p.Val
	case PredNe:
		return n != p.Val
	case PredLt:
		return n < p.Val
	case PredGe:
		return n >= p.Val
	}
	return false
}

// Proj selects the shard-side projection.
type Proj uint8

const (
	// ProjKV emits raw key/value rows.
	ProjKV Proj = iota
	// ProjStagedDelta interprets the scanned range as 2PL staging entries
	// and emits (txid, key, delta) triples, where delta is the staged
	// numeric value minus the currently committed one — the amount the
	// in-flight transaction would add to the key if it commits. Entries
	// that are not numeric stage records are skipped.
	ProjStagedDelta
)

// Agg selects the shard-side aggregate fold; partials from each shard
// combine losslessly at the gateway.
type Agg uint8

const (
	AggNone Agg = iota // ship rows
	AggCount
	AggSum
	AggGroupSum // group by the first GroupLen bytes of the key
)

// Spec is the shard-independent body of a query: what to scan and how to
// reduce it. The same Spec goes to every target shard.
type Spec struct {
	Kind     Kind
	Start    string // range start (inclusive)
	End      string // range end (exclusive); "" = unbounded
	Pred     Pred
	Proj     Proj
	Agg      Agg
	GroupLen int // AggGroupSum: group-key prefix length
}

// Row is one projected key/value pair.
type Row struct {
	K string
	V []byte
}

// StagedDelta is one in-flight 2PL residue: transaction Txid has staged a
// change of Delta to key Key but not yet committed it at the pin.
type StagedDelta struct {
	Txid  string
	Key   string
	Delta int64
}

// Group is one AggGroupSum partial.
type Group struct {
	Key   string
	Sum   int64
	Count uint64
}

// Resolution is one shard's answer about a distributed transaction:
// Committed reports whether its staged state was applied at or before the
// shard's pin (Version is the applying block version when known).
type Resolution struct {
	Txid      string
	Committed bool
	Version   uint64
}
