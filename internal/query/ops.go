package query

import (
	"sort"
	"strconv"

	"repro/internal/chain"
)

// Stream is a pull-based stream of rows in ascending key order. Operators
// compose by wrapping: each Next call does O(1) work beyond its input,
// and nothing is materialized until a fold consumes the stream.
type Stream interface {
	// Next returns the next row; ok is false when the stream is finished.
	Next() (Row, bool)
}

// Scan streams a chain.Reader's ordered range [start, end). Row values
// alias the reader's immutable storage; downstream operators must copy
// before retaining or mutating.
func Scan(r *chain.Reader, start, end string) Stream {
	return &scanStream{it: r.Iter(start, end)}
}

type scanStream struct{ it *chain.Iter }

func (s *scanStream) Next() (Row, bool) {
	k, v, ok := s.it.Next()
	if !ok {
		return Row{}, false
	}
	return Row{K: k, V: v}, true
}

// Filter passes through rows for which keep returns true (σ).
func Filter(s Stream, keep func(Row) bool) Stream {
	return &filterStream{s: s, keep: keep}
}

type filterStream struct {
	s    Stream
	keep func(Row) bool
}

func (f *filterStream) Next() (Row, bool) {
	for {
		row, ok := f.s.Next()
		if !ok {
			return Row{}, false
		}
		if f.keep(row) {
			return row, true
		}
	}
}

// Project rewrites each row (π). The projection must not change relative
// key order if the output feeds an ordered operator like Merge.
func Project(s Stream, f func(Row) Row) Stream {
	return &projectStream{s: s, f: f}
}

type projectStream struct {
	s Stream
	f func(Row) Row
}

func (p *projectStream) Next() (Row, bool) {
	row, ok := p.s.Next()
	if !ok {
		return Row{}, false
	}
	return p.f(row), true
}

// Merge combines ordered streams into one ordered stream (k-way merge).
// Ties between streams break in argument order, so the merge of disjoint
// per-shard key spaces is deterministic regardless of arrival order.
func Merge(ss ...Stream) Stream {
	m := &mergeStream{srcs: ss, heads: make([]Row, len(ss)), live: make([]bool, len(ss))}
	for i, s := range ss {
		m.heads[i], m.live[i] = s.Next()
	}
	return m
}

type mergeStream struct {
	srcs  []Stream
	heads []Row
	live  []bool
}

func (m *mergeStream) Next() (Row, bool) {
	best := -1
	for i, alive := range m.live {
		if alive && (best < 0 || m.heads[i].K < m.heads[best].K) {
			best = i
		}
	}
	if best < 0 {
		return Row{}, false
	}
	row := m.heads[best]
	m.heads[best], m.live[best] = m.srcs[best].Next()
	return row, true
}

// Count drains the stream and returns the row count.
func Count(s Stream) uint64 {
	var n uint64
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// Sum drains the stream, summing values that parse as int64; count is the
// number of summed rows (non-numeric rows are skipped, not errors — the
// predicate layer is where strictness belongs).
func Sum(s Stream) (sum int64, count uint64) {
	for {
		row, ok := s.Next()
		if !ok {
			return sum, count
		}
		n, err := strconv.ParseInt(string(row.V), 10, 64)
		if err != nil {
			continue
		}
		sum += n
		count++
	}
}

// GroupSum drains the stream, grouping rows by the first groupLen bytes
// of the key and summing numeric values per group. Groups come back in
// key order. A key shorter than groupLen is its own group.
func GroupSum(s Stream, groupLen int) []Group {
	acc := make(map[string]*Group)
	for {
		row, ok := s.Next()
		if !ok {
			break
		}
		gk := row.K
		if groupLen > 0 && len(gk) > groupLen {
			gk = gk[:groupLen]
		}
		g := acc[gk]
		if g == nil {
			g = &Group{Key: gk}
			acc[gk] = g
		}
		if n, err := strconv.ParseInt(string(row.V), 10, 64); err == nil {
			g.Sum += n
		}
		g.Count++
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		out = append(out, *acc[k])
	}
	return out
}

// MergeGroups combines per-shard AggGroupSum partials into one key-ordered
// result (the gateway's fold).
func MergeGroups(parts ...[]Group) []Group {
	acc := make(map[string]*Group)
	for _, part := range parts {
		for _, g := range part {
			a := acc[g.Key]
			if a == nil {
				a = &Group{Key: g.Key}
				acc[g.Key] = a
			}
			a.Sum += g.Sum
			a.Count += g.Count
		}
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		out = append(out, *acc[k])
	}
	return out
}
