package query

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Gateway-side typed errors. ErrPruned aliases the chain error so callers
// can retry on either end's report with one errors.Is check.
var (
	ErrNoPin    = errors.New("query: shard has no sealed state to pin")
	ErrBadQuery = errors.New("query: malformed query or reply")
)

// Query is one scatter-gather read: the same Spec fanned out to one
// replica per shard, merged back into a single Result. All callbacks run
// on the gateway's event-loop goroutine.
type Query struct {
	// Targets holds one replica per shard; index i is sub-query i.
	Targets []simnet.NodeID
	Spec    Spec
	// Pins optionally fixes the per-shard versions to read at (same
	// length as Targets). Nil means "acquire pins first" — one extra
	// scatter round. Supplying pins lets several scans share one cut.
	Pins []uint64
	// PageLimit bounds entries examined per chunk (server-clamped).
	PageLimit int
	// Txids is the KindResolve probe list.
	Txids []string
	// OnRow, when set, streams merged rows in global key order instead of
	// accumulating them in Result.Rows.
	OnRow func(Row)
	// OnDone receives the final result or the first error. Exactly one
	// call, after which the query id is dead.
	OnDone func(*Result, error)
}

// Result is the gateway's fold of all sub-query chunks.
type Result struct {
	Pins     []uint64 // per-shard pinned versions (index = Targets index)
	Rows     []Row    // merged rows (AggNone, no OnRow)
	RowCount int      // rows emitted (including via OnRow)
	Count    uint64
	Sum      int64
	Groups   []Group
	Deltas   []StagedDelta
	Resolved map[string]bool // txid -> committed at/before some shard's pin
}

// Gateway scatters sub-queries from a client endpoint and gathers the
// chunk streams. It wraps the endpoint's existing handler (the
// txn.Client), passing all non-query traffic through, and keeps one page
// outstanding per source — arriving chunks immediately trigger the next
// page request, so the k-way merge is fed ahead of consumption. All state
// is confined to the endpoint's event-loop goroutine; there are no locks
// and no clocks here (deadlines belong to the caller).
type Gateway struct {
	ep      *simnet.Endpoint
	inner   simnet.Handler
	nextQID uint64
	jobs    map[uint64]*job
}

// NewGateway interposes a gateway on the endpoint's handler chain.
func NewGateway(ep *simnet.Endpoint) *Gateway {
	g := &Gateway{ep: ep, inner: ep.Handler(), jobs: make(map[uint64]*job)}
	ep.SetHandler(g)
	return g
}

// Cost implements simnet.Handler.
func (g *Gateway) Cost(m simnet.Message) time.Duration {
	if m.Type == MsgQueryChunk {
		return chunkCost
	}
	if g.inner != nil {
		return g.inner.Cost(m)
	}
	return 0
}

// Handle implements simnet.Handler.
func (g *Gateway) Handle(m simnet.Message) {
	if m.Type != MsgQueryChunk {
		if g.inner != nil {
			g.inner.Handle(m)
		}
		return
	}
	ch, ok := m.Payload.(*Chunk)
	if !ok {
		return
	}
	if j := g.jobs[ch.QID]; j != nil {
		j.onChunk(ch)
	}
}

// Start launches a query. Must be called from the event-loop goroutine.
func (g *Gateway) Start(q *Query) error {
	if len(q.Targets) == 0 || q.OnDone == nil {
		return fmt.Errorf("%w: need targets and OnDone", ErrBadQuery)
	}
	if q.Pins != nil && len(q.Pins) != len(q.Targets) {
		return fmt.Errorf("%w: %d pins for %d targets", ErrBadQuery, len(q.Pins), len(q.Targets))
	}
	if q.Spec.Kind == KindResolve && q.Pins == nil {
		return fmt.Errorf("%w: resolve requires preset pins", ErrBadQuery)
	}
	g.nextQID++
	j := &job{g: g, q: q, qid: g.nextQID, srcs: make([]source, len(q.Targets))}
	g.jobs[j.qid] = j
	j.start()
	return nil
}

func (g *Gateway) send(to simnet.NodeID, req *Request) {
	g.ep.Send(simnet.Message{
		To:      to,
		Class:   simnet.ClassRequest,
		Type:    MsgQueryRequest,
		Payload: req,
		Size:    wire.PayloadSize(MsgQueryRequest, req),
	})
}

type source struct {
	buf     []Row // chunk rows awaiting the ordered merge
	waiting bool  // a request is outstanding
	done    bool  // server reported no further pages
}

type job struct {
	g       *Gateway
	q       *Query
	qid     uint64
	pinning bool
	pins    []uint64
	pinLeft int
	srcs    []source
	res     *Result
	parts   [][]Group // per-source group partials
	dead    bool
}

func (j *job) start() {
	if j.q.Pins != nil {
		j.pins = append([]uint64(nil), j.q.Pins...)
		j.run()
		return
	}
	j.pinning = true
	j.pins = make([]uint64, len(j.q.Targets))
	j.pinLeft = len(j.q.Targets)
	for i, t := range j.q.Targets {
		j.srcs[i].waiting = true
		j.g.send(t, &Request{QID: j.qid, Sub: uint32(i), Spec: Spec{Kind: KindPin}})
	}
}

// run begins the post-pin phase: scan paging or the resolve probe.
func (j *job) run() {
	j.pinning = false
	j.res = &Result{Pins: append([]uint64(nil), j.pins...)}
	switch j.q.Spec.Kind {
	case KindScan:
		j.parts = make([][]Group, len(j.q.Targets))
		for i := range j.q.Targets {
			j.page(i, j.q.Spec.Start)
		}
	case KindResolve:
		j.res.Resolved = make(map[string]bool, len(j.q.Txids))
		for _, txid := range j.q.Txids {
			j.res.Resolved[txid] = false
		}
		for i, t := range j.q.Targets {
			j.srcs[i].waiting = true
			j.g.send(t, &Request{QID: j.qid, Sub: uint32(i),
				Spec: Spec{Kind: KindResolve}, Pin: j.pins[i], Txids: j.q.Txids})
		}
	default:
		j.fail(fmt.Errorf("%w: kind %d", ErrBadQuery, j.q.Spec.Kind))
	}
}

func (j *job) page(i int, start string) {
	spec := j.q.Spec
	spec.Start = start
	j.srcs[i].waiting = true
	j.g.send(j.q.Targets[i], &Request{QID: j.qid, Sub: uint32(i),
		Spec: spec, Pin: j.pins[i], Limit: j.q.PageLimit})
}

func (j *job) fail(err error) {
	j.dead = true
	delete(j.g.jobs, j.qid)
	j.q.OnDone(nil, err)
}

func (j *job) onChunk(ch *Chunk) {
	sub := int(ch.Sub)
	if j.dead || sub < 0 || sub >= len(j.srcs) || !j.srcs[sub].waiting {
		return
	}
	j.srcs[sub].waiting = false
	if ch.Err != ErrCodeNone {
		j.fail(chunkErr(ch.Err))
		return
	}
	if j.pinning {
		j.pins[sub] = ch.Version
		j.pinLeft--
		if j.pinLeft == 0 {
			j.run()
		}
		return
	}
	s := &j.srcs[sub]
	switch j.q.Spec.Kind {
	case KindResolve:
		s.done = true
		for _, r := range ch.Resolved {
			if r.Committed {
				j.res.Resolved[r.Txid] = true
			}
		}
	case KindScan:
		j.res.Count += ch.Count
		j.res.Sum += ch.Sum
		if len(ch.Groups) > 0 {
			j.parts[sub] = append(j.parts[sub], ch.Groups...)
		}
		j.res.Deltas = append(j.res.Deltas, ch.Deltas...)
		s.buf = append(s.buf, ch.Rows...)
		if ch.Next != "" {
			j.page(sub, ch.Next) // prefetch while the merge drains
		} else {
			s.done = true
		}
		j.drainMerge()
	}
	j.maybeFinish()
}

// drainMerge emits buffered rows in global key order: the smallest head
// can go out only while no source that might still produce a smaller key
// (not done, buffer empty) blocks the merge.
func (j *job) drainMerge() {
	for {
		best := -1
		for i := range j.srcs {
			s := &j.srcs[i]
			if len(s.buf) == 0 {
				if !s.done {
					return // must wait for this source's next page
				}
				continue
			}
			if best < 0 || s.buf[0].K < j.srcs[best].buf[0].K {
				best = i
			}
		}
		if best < 0 {
			return
		}
		row := j.srcs[best].buf[0]
		j.srcs[best].buf = j.srcs[best].buf[1:]
		j.res.RowCount++
		if j.q.OnRow != nil {
			j.q.OnRow(row)
		} else {
			j.res.Rows = append(j.res.Rows, row)
		}
	}
}

func (j *job) maybeFinish() {
	for i := range j.srcs {
		if !j.srcs[i].done || len(j.srcs[i].buf) > 0 {
			return
		}
	}
	if len(j.parts) > 0 {
		j.res.Groups = MergeGroups(j.parts...)
	}
	j.dead = true
	delete(j.g.jobs, j.qid)
	j.q.OnDone(j.res, nil)
}

func chunkErr(code uint8) error {
	switch code {
	case ErrCodePruned:
		return chain.ErrHeightPruned
	case ErrCodeUnknown:
		return ErrNoPin
	}
	return ErrBadQuery
}
