package query

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func storeWith(kv map[string]string) *chain.Store {
	s := chain.NewStore()
	var ws chain.WriteSet
	for k, v := range kv {
		ws = append(ws, chain.Write{Key: k, Value: []byte(v)})
	}
	s.Apply(ws)
	s.Seal()
	return s
}

func TestOperators(t *testing.T) {
	s := storeWith(map[string]string{
		"c_a": "10", "c_b": "20", "c_c": "junk", "s_a": "5", "z": "1",
	})
	r := s.Head()

	rows := 0
	for st := Scan(r, "c_", chain.PrefixEnd("c_")); ; {
		if _, ok := st.Next(); !ok {
			break
		}
		rows++
	}
	if rows != 3 {
		t.Fatalf("scan rows %d, want 3", rows)
	}

	sum, n := Sum(Filter(Scan(r, "c_", chain.PrefixEnd("c_")), func(row Row) bool {
		return Pred{Op: PredGe, Val: 15}.Match(row.V)
	}))
	if sum != 20 || n != 1 {
		t.Fatalf("filtered sum %d/%d, want 20/1", sum, n)
	}

	proj := Project(Scan(r, "s_", chain.PrefixEnd("s_")), func(row Row) Row {
		return Row{K: row.K, V: append([]byte("x"), row.V...)}
	})
	if row, ok := proj.Next(); !ok || string(row.V) != "x5" {
		t.Fatalf("project gave %q", row.V)
	}

	groups := GroupSum(Scan(r, "", ""), 2)
	// Groups: "c_" (10+20, 3 rows incl. junk), "s_" (5), "z" (1).
	if len(groups) != 3 || groups[0].Key != "c_" || groups[0].Sum != 30 || groups[0].Count != 3 {
		t.Fatalf("groups = %+v", groups)
	}

	merged := Merge(Scan(r, "c_", chain.PrefixEnd("c_")), Scan(r, "s_", chain.PrefixEnd("s_")))
	var keys []string
	for {
		row, ok := merged.Next()
		if !ok {
			break
		}
		keys = append(keys, row.K)
	}
	want := []string{"c_a", "c_b", "c_c", "s_a"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("merge order %v, want %v", keys, want)
	}
}

func TestMergeInterleavesOrdered(t *testing.T) {
	a := storeWith(map[string]string{"a": "1", "c": "3", "e": "5"}).Head()
	b := storeWith(map[string]string{"b": "2", "d": "4"}).Head()
	m := Merge(Scan(a, "", ""), Scan(b, "", ""))
	var got []string
	for {
		row, ok := m.Next()
		if !ok {
			break
		}
		got = append(got, row.K)
	}
	if fmt.Sprint(got) != "[a b c d e]" {
		t.Fatalf("merge = %v", got)
	}
}

func TestAnswerPaging(t *testing.T) {
	s := chain.NewStore()
	var ws chain.WriteSet
	for i := 0; i < 100; i++ {
		ws = append(ws, chain.Write{Key: fmt.Sprintf("k%03d", i), Value: []byte("1")})
	}
	s.Apply(ws)
	s.Seal()
	pin, _ := s.LatestSealed()

	var total uint64
	start := ""
	pages := 0
	for {
		ch := Answer(s, &Request{
			Spec: Spec{Kind: KindScan, Start: start, Proj: ProjKV, Agg: AggCount},
			Pin:  pin, Limit: 30,
		})
		if ch.Err != ErrCodeNone {
			t.Fatalf("page err %d", ch.Err)
		}
		total += ch.Count
		pages++
		if ch.Next == "" {
			break
		}
		start = ch.Next
	}
	if total != 100 || pages != 4 {
		t.Fatalf("paged count %d over %d pages, want 100 over 4", total, pages)
	}

	// Pruned pins answer typed, not empty.
	s.Apply(chain.WriteSet{{Key: "x", Value: []byte("1")}})
	s.Seal()
	s.SetFloor(s.Version())
	ch := Answer(s, &Request{Spec: Spec{Kind: KindScan}, Pin: pin})
	if ch.Err != ErrCodePruned {
		t.Fatalf("pruned pin gave err %d, want %d", ch.Err, ErrCodePruned)
	}
	if ch = Answer(s, &Request{Spec: Spec{Kind: KindScan}, Pin: 999}); ch.Err != ErrCodeUnknown {
		t.Fatalf("unknown pin gave err %d", ch.Err)
	}
}

func TestAnswerRowsDoNotAliasStore(t *testing.T) {
	s := storeWith(map[string]string{"k": "abc"})
	pin, _ := s.LatestSealed()
	ch := Answer(s, &Request{Spec: Spec{Kind: KindScan, Proj: ProjKV, Agg: AggNone}, Pin: pin})
	if len(ch.Rows) != 1 {
		t.Fatalf("rows %d", len(ch.Rows))
	}
	ch.Rows[0].V[0] = 'z'
	if v, _ := s.Get("k"); string(v) != "abc" {
		t.Fatal("chunk row aliased store storage")
	}
}

// gatewayNet assembles a client gateway plus one query service per shard
// store on a simulated network.
func gatewayNet(t *testing.T, stores []*chain.Store) (*sim.Engine, *Gateway, []simnet.NodeID) {
	t.Helper()
	e := sim.NewEngine(1)
	n := simnet.New(e, simnet.Uniform{Base: time.Millisecond})
	var targets []simnet.NodeID
	for i, st := range stores {
		ep := n.Attach(simnet.NodeID(i+1), simnet.DefaultSharedQueue())
		AttachService(ep, st)
		targets = append(targets, ep.ID())
	}
	cep := n.Attach(99, simnet.DefaultSharedQueue())
	return e, NewGateway(cep), targets
}

func TestGatewayScatterSum(t *testing.T) {
	s0 := storeWith(map[string]string{"c_a": "100", "c_b": "50", "s_a": "7"})
	s1 := storeWith(map[string]string{"c_c": "25", "s_c": "3"})
	e, g, targets := gatewayNet(t, []*chain.Store{s0, s1})

	var got *Result
	e.Schedule(0, func() {
		err := g.Start(&Query{
			Targets: targets,
			Spec:    Spec{Kind: KindScan, Start: "c_", End: chain.PrefixEnd("c_"), Proj: ProjKV, Agg: AggSum},
			OnDone:  func(r *Result, err error) { got = r; checkErr(t, err) },
		})
		checkErr(t, err)
	})
	e.RunUntilIdle()
	if got == nil {
		t.Fatal("query never completed")
	}
	if got.Sum != 175 || got.Count != 3 {
		t.Fatalf("sum %d count %d, want 175/3", got.Sum, got.Count)
	}
	if len(got.Pins) != 2 || got.Pins[0] != 1 || got.Pins[1] != 1 {
		t.Fatalf("pins %v", got.Pins)
	}
}

func TestGatewayOrderedMergeAcrossPages(t *testing.T) {
	// Interleaved key spaces across two shards force real merging, and a
	// tiny page size forces multi-page streaming.
	s0, s1 := chain.NewStore(), chain.NewStore()
	var want []string
	var ws0, ws1 chain.WriteSet
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%03d", i)
		want = append(want, k)
		w := chain.Write{Key: k, Value: []byte(strconv.Itoa(i))}
		if i%2 == 0 {
			ws0 = append(ws0, w)
		} else {
			ws1 = append(ws1, w)
		}
	}
	s0.Apply(ws0)
	s0.Seal()
	s1.Apply(ws1)
	s1.Seal()
	e, g, targets := gatewayNet(t, []*chain.Store{s0, s1})

	var got []string
	e.Schedule(0, func() {
		err := g.Start(&Query{
			Targets:   targets,
			Spec:      Spec{Kind: KindScan, Proj: ProjKV, Agg: AggNone},
			PageLimit: 7,
			OnRow:     func(row Row) { got = append(got, row.K) },
			OnDone:    func(r *Result, err error) { checkErr(t, err) },
		})
		checkErr(t, err)
	})
	e.RunUntilIdle()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged order mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestGatewayPrunedPinFailsTyped(t *testing.T) {
	s0 := storeWith(map[string]string{"c_a": "1"})
	e, g, targets := gatewayNet(t, []*chain.Store{s0})
	var gotErr error
	e.Schedule(0, func() {
		err := g.Start(&Query{
			Targets: targets,
			Pins:    []uint64{1},
			Spec:    Spec{Kind: KindScan, Proj: ProjKV, Agg: AggCount},
			OnDone:  func(_ *Result, err error) { gotErr = err },
		})
		checkErr(t, err)
		// Advance the store past the pin before the scan arrives.
		s0.Apply(chain.WriteSet{{Key: "c_b", Value: []byte("2")}})
		s0.Seal()
		s0.SetFloor(s0.Version())
	})
	e.RunUntilIdle()
	if !errors.Is(gotErr, chain.ErrHeightPruned) {
		t.Fatalf("err = %v, want ErrHeightPruned", gotErr)
	}
}

func TestConservationResolvesResidues(t *testing.T) {
	// Shard 0 committed the payment (c_a 100→75, commit recorded); shard 1
	// is pinned pre-commit: c_c still 25 with a staged +25. The resolve
	// round must apply shard 1's residue because shard 0 committed at its
	// pin.
	s0 := chain.NewStore()
	s0.Apply(chain.WriteSet{{Key: "c_a", Value: []byte("100")}})
	s0.Apply(chain.WriteSet{{Key: "c_a", Value: []byte("75")}})
	s0.RecordCommit("tx9")
	s0.Seal()

	s1 := chain.NewStore()
	s1.Apply(chain.WriteSet{
		{Key: "c_c", Value: []byte("25")},
		{Key: "S_tx9\x00c_c", Value: append([]byte{1}, []byte("50")...)},
		{Key: "L_c_c", Value: []byte("tx9")},
	})
	s1.Seal()

	e, g, targets := gatewayNet(t, []*chain.Store{s0, s1})
	var got *ConservationResult
	e.Schedule(0, func() {
		Conservation(g, targets, 1, func(r *ConservationResult, err error) {
			checkErr(t, err)
			got = r
		})
	})
	e.RunUntilIdle()
	if got == nil {
		t.Fatal("conservation never completed")
	}
	if got.Checking != 100 {
		t.Fatalf("checking %d, want 100", got.Checking)
	}
	if len(got.Residues) != 1 || got.Residues[0].Delta != 25 {
		t.Fatalf("residues %+v", got.Residues)
	}
	if got.Applied != 25 || got.Total != 125 {
		t.Fatalf("applied %d total %d, want 25/125", got.Applied, got.Total)
	}
}

func TestConservationIgnoresUncommittedResidues(t *testing.T) {
	// Both shards pinned mid-prepare: staged deltas exist but no commit
	// record anywhere, so nothing is applied and totals are the committed
	// values only.
	s0 := chain.NewStore()
	s0.Apply(chain.WriteSet{
		{Key: "c_a", Value: []byte("100")},
		{Key: "S_tx1\x00c_a", Value: append([]byte{1}, []byte("75")...)},
	})
	s0.Seal()
	s1 := chain.NewStore()
	s1.Apply(chain.WriteSet{
		{Key: "c_b", Value: []byte("50")},
		{Key: "S_tx1\x00c_b", Value: append([]byte{1}, []byte("75")...)},
	})
	s1.Seal()

	e, g, targets := gatewayNet(t, []*chain.Store{s0, s1})
	var got *ConservationResult
	e.Schedule(0, func() {
		Conservation(g, targets, 1, func(r *ConservationResult, err error) {
			checkErr(t, err)
			got = r
		})
	})
	e.RunUntilIdle()
	if got == nil {
		t.Fatal("conservation never completed")
	}
	if got.Applied != 0 || got.Total != 150 {
		t.Fatalf("applied %d total %d, want 0/150", got.Applied, got.Total)
	}
	if len(got.Residues) != 2 {
		t.Fatalf("residues %+v", got.Residues)
	}
}

func checkErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
