package query

import (
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Message types of the scatter-gather read protocol.
const (
	MsgQueryRequest = "query/request"
	MsgQueryChunk   = "query/chunk"
)

// Chunk error codes (kept as a wire byte, mapped to typed errors at the
// gateway).
const (
	ErrCodeNone uint8 = iota
	// ErrCodePruned: the pin fell below the shard's retention floor (the
	// stable checkpoint advanced past it); re-pin and retry.
	ErrCodePruned
	// ErrCodeUnknown: the pin is not a sealed version on this replica
	// (or nothing is sealed yet).
	ErrCodeUnknown
	// ErrCodeBad: malformed request.
	ErrCodeBad
)

// Request is one sub-query sent to a shard replica. Paging is stateless:
// every page carries the full Spec plus the resume Start, so the server
// holds no cursor state between chunks.
type Request struct {
	QID uint64 // gateway-chosen query id
	Sub uint32 // sub-query index (the target's slot in the scatter)
	Spec
	Pin   uint64   // sealed version to read at (KindScan/KindResolve)
	Limit int      // max entries examined this page (server-clamped)
	Txids []string // KindResolve: transactions to look up
}

// Chunk is one bounded page of results. Next carries the resume key for
// the following page; empty means the sub-query is exhausted.
type Chunk struct {
	QID      uint64
	Sub      uint32
	Version  uint64 // KindPin: latest sealed; otherwise echo of the pin
	Next     string
	Rows     []Row
	Deltas   []StagedDelta
	Count    uint64
	Sum      int64
	Groups   []Group
	Resolved []Resolution
	Err      uint8
}

func init() {
	wire.Register(MsgQueryRequest, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*Request)
			e.Uvarint(m.QID)
			e.Uvarint(uint64(m.Sub))
			e.Byte(byte(m.Kind))
			e.Uvarint(m.Pin)
			e.String(m.Start)
			e.String(m.End)
			e.Byte(byte(m.Pred.Op))
			e.Duration(m.Pred.Val)
			e.Byte(byte(m.Proj))
			e.Byte(byte(m.Agg))
			e.Int(m.GroupLen)
			e.Int(m.Limit)
			wire.PutStrings(e, m.Txids)
		},
		Decode: func(d *wire.Decoder) any {
			m := &Request{QID: d.Uvarint(), Sub: uint32(d.Uvarint())}
			m.Kind = Kind(d.Byte())
			m.Pin = d.Uvarint()
			m.Start = d.String()
			m.End = d.String()
			m.Pred.Op = PredOp(d.Byte())
			m.Pred.Val = d.Duration()
			m.Proj = Proj(d.Byte())
			m.Agg = Agg(d.Byte())
			m.GroupLen = d.Int()
			m.Limit = d.Int()
			m.Txids = wire.Strings(d)
			return m
		},
	})

	wire.Register(MsgQueryChunk, wire.Codec{
		Encode: func(e *wire.Encoder, p any) {
			m := p.(*Chunk)
			e.Uvarint(m.QID)
			e.Uvarint(uint64(m.Sub))
			e.Uvarint(m.Version)
			e.String(m.Next)
			e.Byte(m.Err)
			e.Uvarint(uint64(len(m.Rows)))
			for _, r := range m.Rows {
				e.String(r.K)
				e.ByteSlice(r.V)
			}
			e.Uvarint(uint64(len(m.Deltas)))
			for _, sd := range m.Deltas {
				e.String(sd.Txid)
				e.String(sd.Key)
				e.Duration(sd.Delta)
			}
			e.Uvarint(m.Count)
			e.Duration(m.Sum)
			e.Uvarint(uint64(len(m.Groups)))
			for _, g := range m.Groups {
				e.String(g.Key)
				e.Duration(g.Sum)
				e.Uvarint(g.Count)
			}
			e.Uvarint(uint64(len(m.Resolved)))
			for _, r := range m.Resolved {
				e.String(r.Txid)
				e.Bool(r.Committed)
				e.Uvarint(r.Version)
			}
		},
		Decode: func(d *wire.Decoder) any {
			m := &Chunk{QID: d.Uvarint(), Sub: uint32(d.Uvarint())}
			m.Version = d.Uvarint()
			m.Next = d.String()
			m.Err = d.Byte()
			n := d.Count(2)
			m.Rows = make([]Row, 0, wire.CapHint(n))
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Rows = append(m.Rows, Row{K: d.String(), V: d.ByteSlice()})
			}
			n = d.Count(3)
			m.Deltas = make([]StagedDelta, 0, wire.CapHint(n))
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Deltas = append(m.Deltas, StagedDelta{Txid: d.String(), Key: d.String(), Delta: d.Duration()})
			}
			m.Count = d.Uvarint()
			m.Sum = d.Duration()
			n = d.Count(3)
			m.Groups = make([]Group, 0, wire.CapHint(n))
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Groups = append(m.Groups, Group{Key: d.String(), Sum: d.Duration(), Count: d.Uvarint()})
			}
			n = d.Count(3)
			m.Resolved = make([]Resolution, 0, wire.CapHint(n))
			for i := 0; i < n && d.Err() == nil; i++ {
				m.Resolved = append(m.Resolved, Resolution{Txid: d.String(), Committed: d.Bool(), Version: d.Uvarint()})
			}
			return m
		},
	})
}

// WireSamples returns one populated message per query wire type; test
// support for the wire package's round-trip and fuzz corpus.
func WireSamples() []simnet.Message {
	msg := func(typ string, payload any) simnet.Message {
		return simnet.Message{From: 12, To: 3, Class: simnet.ClassRequest, Type: typ, Payload: payload}
	}
	return []simnet.Message{
		msg(MsgQueryRequest, &Request{
			QID: 7, Sub: 1,
			Spec: Spec{Kind: KindScan, Start: "c_", End: "c`",
				Pred: Pred{Op: PredGe, Val: 100}, Proj: ProjKV, Agg: AggSum, GroupLen: 2},
			Pin: 42, Limit: 256, Txids: []string{"ctl1-9"},
		}),
		msg(MsgQueryChunk, &Chunk{
			QID: 7, Sub: 1, Version: 42, Next: "c_acc7",
			Rows:     []Row{{K: "c_acc1", V: []byte("1000000")}},
			Deltas:   []StagedDelta{{Txid: "ctl1-9", Key: "c_acc1", Delta: -25}},
			Count:    1, Sum: 1000000,
			Groups:   []Group{{Key: "c_", Sum: 1000000, Count: 1}},
			Resolved: []Resolution{{Txid: "ctl1-9", Committed: true, Version: 41}},
		}),
	}
}
