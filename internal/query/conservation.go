package query

import (
	"errors"

	"repro/internal/chain"
	"repro/internal/chaincode"
	"repro/internal/simnet"
)

// ConservationResult is the outcome of a height-consistent balance sweep:
// committed checking + savings totals at one cut of per-shard pins, plus
// the in-flight 2PC residues resolved against that cut.
type ConservationResult struct {
	Pins     []uint64
	Checking int64
	Savings  int64
	Accounts uint64 // checking rows summed
	// Residues are the staged deltas observed at the cut; Applied is the
	// portion added to Total because the owning transaction had already
	// committed on some shard at its pin.
	Residues []StagedDelta
	Applied  int64
	Total    int64
}

// Conservation runs the balance-conservation query: three scatter scans
// sharing one cut (checking sum, savings sum, staged residues) and a
// resolve round for the residues' owning transactions. On pin loss
// (checkpoint overtook the cut mid-query) it re-pins and retries up to
// attempts times. done runs on the gateway's event-loop goroutine.
func Conservation(g *Gateway, targets []simnet.NodeID, attempts int, done func(*ConservationResult, error)) {
	if attempts < 1 {
		attempts = 1
	}
	conserve(g, targets, attempts, done)
}

func conserve(g *Gateway, targets []simnet.NodeID, attempts int, done func(*ConservationResult, error)) {
	retryable := func(err error) bool {
		return errors.Is(err, chain.ErrHeightPruned) || errors.Is(err, ErrNoPin)
	}
	fail := func(err error) {
		if attempts > 1 && retryable(err) {
			conserve(g, targets, attempts-1, done)
			return
		}
		done(nil, err)
	}
	out := &ConservationResult{}

	sumSpec := func(prefix string) Spec {
		return Spec{Kind: KindScan, Start: prefix, End: chain.PrefixEnd(prefix), Proj: ProjKV, Agg: AggSum}
	}

	// Step 4: resolve residue owners against the cut; apply deltas of
	// transactions some shard had committed by its pin.
	resolve := func() {
		if len(out.Residues) == 0 {
			out.Total = out.Checking + out.Savings
			done(out, nil)
			return
		}
		seen := make(map[string]bool, len(out.Residues))
		var txids []string
		for _, sd := range out.Residues {
			if !seen[sd.Txid] {
				seen[sd.Txid] = true
				txids = append(txids, sd.Txid)
			}
		}
		err := g.Start(&Query{
			Targets: targets, Pins: out.Pins,
			Spec:  Spec{Kind: KindResolve},
			Txids: txids,
			OnDone: func(res *Result, err error) {
				if err != nil {
					fail(err)
					return
				}
				for _, sd := range out.Residues {
					if res.Resolved[sd.Txid] {
						out.Applied += sd.Delta
					}
				}
				out.Total = out.Checking + out.Savings + out.Applied
				done(out, nil)
			},
		})
		if err != nil {
			fail(err)
		}
	}

	// Step 3: staged 2PL residues at the same cut.
	residues := func() {
		err := g.Start(&Query{
			Targets: targets, Pins: out.Pins,
			Spec: Spec{Kind: KindScan,
				Start: chaincode.StagePrefix, End: chain.PrefixEnd(chaincode.StagePrefix),
				Proj: ProjStagedDelta},
			OnDone: func(res *Result, err error) {
				if err != nil {
					fail(err)
					return
				}
				out.Residues = res.Deltas
				resolve()
			},
		})
		if err != nil {
			fail(err)
		}
	}

	// Step 2: savings sum at the same cut.
	savings := func() {
		err := g.Start(&Query{
			Targets: targets, Pins: out.Pins,
			Spec: sumSpec("s_"),
			OnDone: func(res *Result, err error) {
				if err != nil {
					fail(err)
					return
				}
				out.Savings = res.Sum
				residues()
			},
		})
		if err != nil {
			fail(err)
		}
	}

	// Step 1: acquire the cut (one pin scatter) and sum checking balances.
	err := g.Start(&Query{
		Targets: targets,
		Spec:    sumSpec("c_"),
		OnDone: func(res *Result, err error) {
			if err != nil {
				fail(err)
				return
			}
			out.Pins = res.Pins
			out.Checking = res.Sum
			out.Accounts = res.Count
			savings()
		},
	})
	if err != nil {
		fail(err)
	}
}
